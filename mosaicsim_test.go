package mosaicsim

// End-to-end tests of the public facade.

import (
	"context"
	"strings"
	"testing"
)

const facadeSrc = `
void kernel(double* A, double* B, long n) {
  long tid = tile_id();
  long nt = num_tiles();
  long chunk = (n + nt - 1) / nt;
  long lo = tid * chunk;
  long hi = lo + chunk;
  if (hi > n) { hi = n; }
  for (long i = lo; i < hi; i++) {
    B[i] = 2.0 * A[i] + 1.0;
  }
}
`

func setupFacade(t *testing.T, n int) (*Kernel, *Memory, []uint64, uint64) {
	t.Helper()
	mod, err := Compile(facadeSrc, "facade")
	if err != nil {
		t.Fatal(err)
	}
	k, err := KernelOf(mod, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(1 << 22)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	pa := mem.AllocF64(vals)
	pb := mem.Alloc(int64(n)*8, 64)
	return k, mem, []uint64{ArgPtr(pa), ArgPtr(pb), ArgI64(int64(n))}, pb
}

func TestFacadePipeline(t *testing.T) {
	k, mem, args, pb := setupFacade(t, 256)
	tr, err := k.Trace(mem, args, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tiles) != 4 {
		t.Fatalf("tiles = %d", len(tr.Tiles))
	}
	for i := 0; i < 256; i++ {
		want := 2*float64(i) + 1
		if got := mem.ReadF64(pb + uint64(i)*8); got != want {
			t.Fatalf("B[%d] = %g, want %g", i, got, want)
		}
	}
	res, err := Simulate(XeonSystem(4), k, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instrs != tr.TotalDynInstrs() {
		t.Errorf("result: %+v", res)
	}
}

func TestFacadeDecouple(t *testing.T) {
	mod, err := Compile(facadeSrc, "facade")
	if err != nil {
		t.Fatal(err)
	}
	k, err := KernelOf(mod, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	access, execute, err := Decouple(k)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(access.Fn.Ident, ".access") || !strings.HasSuffix(execute.Fn.Ident, ".execute") {
		t.Errorf("slice names: %q, %q", access.Fn.Ident, execute.Fn.Ident)
	}
	// Trace the pair and confirm the decoupled run computes the same values.
	mem := NewMemory(1 << 22)
	n := 128
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	pa := mem.AllocF64(vals)
	pb := mem.Alloc(int64(n)*8, 64)
	args := []uint64{ArgPtr(pa), ArgPtr(pb), ArgI64(int64(n))}
	tr, err := TraceTiles([]*Function{access.Fn, execute.Fn}, mem, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tiles) != 2 {
		t.Fatalf("tiles = %d", len(tr.Tiles))
	}
	for i := 0; i < n; i++ {
		want := 2*float64(i) + 1
		if got := mem.ReadF64(pb + uint64(i)*8); got != want {
			t.Fatalf("decoupled B[%d] = %g, want %g", i, got, want)
		}
	}
	// Simulate the heterogeneous pair.
	ino := InOrderCore()
	ino.DecoupledSupply = true
	sys, err := NewSystem("dae", []TileSpec{
		{Cfg: ino, Graph: access.Graph, TT: tr.Tiles[0]},
		{Cfg: ino, Graph: execute.Graph, TT: tr.Tiles[1]},
	}, TableIIMem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if sys.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestFacadeParseIR(t *testing.T) {
	mod, err := ParseIR("func @f(%n: i64) {\nentry:\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := KernelOf(mod, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := KernelOf(mod, "missing"); err == nil {
		t.Error("missing kernel accepted")
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile("void kernel() { oops(); }", "bad"); err == nil {
		t.Error("bad source accepted")
	}
}
