package mosaicsim

// The benchmark harness regenerates every paper artifact under `go test
// -bench` (one benchmark per table/figure, DESIGN.md §4) and reports the
// headline metric of each as a custom benchmark metric. Ablation benchmarks
// quantify the design choices DESIGN.md §6 calls out. Benchmarks run at Tiny
// workload scale so `-bench=.` stays minutes-fast; cmd/experiments runs the
// same code at Small scale for the EXPERIMENTS.md numbers.

import (
	"context"
	"strings"
	"testing"
	"time"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/experiments"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

func runExperiment(b *testing.B, id, metric string) {
	b.Helper()
	var val float64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(workloads.Tiny)
		rep, err := r.Run(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			val = rep.Values[metric]
		}
	}
	if metric != "" {
		b.ReportMetric(val, strings.ReplaceAll(metric, " ", "_"))
	}
}

func BenchmarkFig01Trends(b *testing.B) { runExperiment(b, "fig1", "cores2017") }
func BenchmarkTab01System(b *testing.B) { runExperiment(b, "tab1", "dram_gbs") }
func BenchmarkTab02DAE(b *testing.B)    { runExperiment(b, "tab2", "ooo_area") }
func BenchmarkFig05Accuracy(b *testing.B) {
	runExperiment(b, "fig5", "geomean")
}
func BenchmarkFig06IPC(b *testing.B) { runExperiment(b, "fig6", "sgemm") }
func BenchmarkFig07BFSScaling(b *testing.B) {
	runExperiment(b, "fig7", "sim8")
}
func BenchmarkFig08SGEMMScaling(b *testing.B) {
	runExperiment(b, "fig8", "sim8")
}
func BenchmarkFig09SPMVScaling(b *testing.B) {
	runExperiment(b, "fig9", "sim8")
}
func BenchmarkFig10AccelDSE(b *testing.B) {
	runExperiment(b, "fig10", "acc_sgemm/rtl")
}
func BenchmarkFig11DAE(b *testing.B) {
	runExperiment(b, "fig11", "4 DAE pairs (OoO-area-equiv heterogeneous)")
}
func BenchmarkFig12SparseDense(b *testing.B) {
	runExperiment(b, "fig12", "sgemm/Accel")
}
func BenchmarkFig13Combined(b *testing.B) {
	runExperiment(b, "fig13", "4+4 InO DAE w/Accel/equal (50/50)")
}
func BenchmarkFig14DNNEDP(b *testing.B) { runExperiment(b, "fig14", "RecSys") }
func BenchmarkStorage(b *testing.B)     { runExperiment(b, "storage", "sgemm") }

// benchmarkSweep drives a batch of experiments through one Runner at the
// given worker-pool width; the serial/parallel pair below quantifies the
// sweep engine's throughput win (output is identical either way, per
// TestParallelSweepDeterminism).
func benchmarkSweep(b *testing.B, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(workloads.Tiny)
		r.Jobs = jobs
		for _, id := range []string{"fig5", "fig11", "fig12"} {
			if _, err := r.Run(context.Background(), id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweep(b, 0) }

// BenchmarkSimulatorMIPS measures raw simulation speed in millions of
// simulated instructions per host second (§VI-B reports 0.47 MIPS
// single-threaded for the original; Sniper 0.45, gem5 0.053).
func BenchmarkSimulatorMIPS(b *testing.B) {
	w := workloads.SGEMM()
	g, tr, err := w.Trace(1, workloads.Small)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.XeonSystem(1)
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := soc.NewSPMD(cfg, g, tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
		instrs += sys.Result().Instrs
	}
	b.StopTimer()
	seconds := b.Elapsed().Seconds()
	if seconds > 0 {
		b.ReportMetric(float64(instrs)/seconds/1e6, "MIPS")
	}
}

// simCycles runs a workload on one configured core and returns cycles.
func simCycles(b *testing.B, w *workloads.Workload, core config.CoreConfig, mem config.MemConfig) int64 {
	return simCyclesAt(b, w, core, mem, workloads.Tiny)
}

func simCyclesAt(b *testing.B, w *workloads.Workload, core config.CoreConfig, mem config.MemConfig, s workloads.Scale) int64 {
	b.Helper()
	g, tr, err := w.Trace(1, s)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := soc.NewSPMD(&config.SystemConfig{
		Name: "ablate", Cores: []config.CoreSpec{{Core: core, Count: 1}}, Mem: mem,
	}, g, tr, nil)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Run(context.Background(), 0); err != nil {
		b.Fatal(err)
	}
	return sys.Cycles
}

// Ablation benchmarks: each reports the speedup delivered by the design
// choice (cycles without the feature / cycles with it).

func BenchmarkAblationAliasSpec(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		on := config.OutOfOrderCore()
		off := on
		off.PerfectAliasSpec = false
		w := workloads.SPMV()
		ratio = float64(simCycles(b, w, off, config.TableIIMem())) /
			float64(simCycles(b, w, on, config.TableIIMem()))
	}
	b.ReportMetric(ratio, "speedup")
}

func BenchmarkAblationPrefetch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		memOn := config.TableIIMem()
		memOn.L1.PrefetchDegree = 4
		memOn.L2.PrefetchDegree = 4
		memOff := config.TableIIMem()
		// Small scale: the stream must exceed the caches for prefetching to
		// matter.
		w := workloads.Stencil()
		ratio = float64(simCyclesAt(b, w, config.OutOfOrderCore(), memOff, workloads.Small)) /
			float64(simCyclesAt(b, w, config.OutOfOrderCore(), memOn, workloads.Small))
	}
	b.ReportMetric(ratio, "speedup")
}

func BenchmarkAblationDRAMModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		simple := config.TableIIMem()
		banked := config.TableIIMem()
		banked.DRAM = config.BankedDRAMDefaults(banked.DRAM.BandwidthGBs)
		w := workloads.LBM()
		ratio = float64(simCyclesAt(b, w, config.OutOfOrderCore(), banked, workloads.Small)) /
			float64(simCyclesAt(b, w, config.OutOfOrderCore(), simple, workloads.Small))
	}
	b.ReportMetric(ratio, "banked/simple")
}

func BenchmarkAblationBranch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		perfect := config.OutOfOrderCore()
		perfect.Branch = config.BranchPerfect
		none := config.OutOfOrderCore()
		none.Branch = config.BranchNone
		w := workloads.BFS()
		ratio = float64(simCycles(b, w, none, config.TableIIMem())) /
			float64(simCycles(b, w, perfect, config.TableIIMem()))
	}
	b.ReportMetric(ratio, "speedup")
}

func BenchmarkAblationDBBSpec(b *testing.B) {
	// Live-DBB limits: hardware loop unrolling in pre-RTL accelerator tiles
	// (§III-A).
	var ratio float64
	for i := 0; i < b.N; i++ {
		one := config.AcceleratorTileCore(1)
		eight := config.AcceleratorTileCore(8)
		w := workloads.Stencil()
		ratio = float64(simCycles(b, w, one, config.TableIIMem())) /
			float64(simCycles(b, w, eight, config.TableIIMem()))
	}
	b.ReportMetric(ratio, "speedup")
}

func BenchmarkAblationAccelModel(b *testing.B) {
	// Closed-form vs cycle-level pipeline evaluation of one accelerator
	// invocation: the closed form is the fast path §VI-B credits for
	// higher simulation speed.
	a := accel.NewSGEMM(accel.DesignPoint{PLMBytes: 64 << 10, Lanes: 16})
	params := []int64{0, 0, 0, 512, 512, 512}
	var cf, pipe int64
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			cf, err = a.ClosedForm(params)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			pipe, err = a.SimulatePipeline(params)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if pipe > 0 {
		b.ReportMetric(float64(cf)/float64(pipe), "cf/pipe")
	}
}

// BenchmarkTraceEncode measures trace serialization throughput (the §VI-B
// storage path).
func BenchmarkTraceEncode(b *testing.B) {
	w := workloads.SGEMM()
	_, tr, err := w.Trace(1, workloads.Small)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		n, err := tr.EncodedSize()
		if err != nil {
			b.Fatal(err)
		}
		bytes = n
	}
	b.ReportMetric(float64(bytes), "trace-bytes")
}

// BenchmarkCompileO2 measures the front-end with the full O2 pipeline —
// parse, IR build, and seven pass applications with a verify run after each.
// The gate in CI keeps pipeline cost from silently eating the compile stage's
// budget as passes grow.
func BenchmarkCompileO2(b *testing.B) {
	w := workloads.SGEMM()
	opt := ir.OptConfig{Level: "O2"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cc.CompileWithOpt(w.Src, w.Name, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTG measures the Dynamic Trace Generator's native-execution speed.
func BenchmarkDTG(b *testing.B) {
	w := workloads.SGEMM()
	var total int64
	for i := 0; i < b.N; i++ {
		_, tr, err := w.Trace(1, workloads.Small)
		if err != nil {
			b.Fatal(err)
		}
		total += tr.TotalDynInstrs()
	}
	seconds := b.Elapsed().Seconds()
	if seconds > 0 {
		b.ReportMetric(float64(total)/seconds/1e6, "MIPS")
	}
}

// BenchmarkAblationCoherence reports the slowdown the directory protocol
// (§V-A future-work extension) adds on a shared histogram hammered by four
// tiles.
func BenchmarkAblationCoherence(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		w := workloads.HISTO()
		g, tr, err := w.Trace(4, workloads.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		run := func(directory bool) int64 {
			mem := config.TableIIMem()
			mem.Directory = directory
			sys, err := soc.NewSPMD(&config.SystemConfig{
				Name:  "coh",
				Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 4}},
				Mem:   mem,
			}, g, tr, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(context.Background(), 0); err != nil {
				b.Fatal(err)
			}
			return sys.Cycles
		}
		ratio = float64(run(true)) / float64(run(false))
	}
	b.ReportMetric(ratio, "coherent/incoherent")
}

// BenchmarkAblationNoC reports the slowdown of DAE pair communication over a
// 2D mesh with per-hop latency versus an idealized flat fabric.
func BenchmarkAblationNoC(b *testing.B) {
	src := `
void kernel(double* A, double* out, long n) {
  // Request-response ping-pong between mesh corners: round-trip link
  // latency sits on the critical path.
  long tid = tile_id();
  if (tid == 0) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
      send(3, A[i]);
      acc += recv_double(3);
    }
    out[0] = acc;
  } else {
    if (tid == 3) {
      for (long i = 0; i < n; i++) {
        send(0, recv_double(0));
      }
    }
  }
}
`
	mod, err := cc.Compile(src, "noc")
	if err != nil {
		b.Fatal(err)
	}
	f := mod.Func("kernel")
	var ratio float64
	for i := 0; i < b.N; i++ {
		m := interp.NewMemory(1 << 22)
		args := []uint64{m.AllocF64(make([]float64, 500)), m.Alloc(8, 8), 500}
		res, err := interp.Run(f, m, args, interp.Options{NumTiles: 4})
		if err != nil {
			b.Fatal(err)
		}
		g := ddg.Build(f)
		run := func(noc *config.NoCConfig) int64 {
			sys, err := soc.NewSPMD(&config.SystemConfig{
				Name:  "noc",
				Cores: []config.CoreSpec{{Core: config.InOrderCore(), Count: 4}},
				Mem:   config.TableIIMem(),
				NoC:   noc,
			}, g, res.Trace, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(context.Background(), 0); err != nil {
				b.Fatal(err)
			}
			return sys.Cycles
		}
		ratio = float64(run(&config.NoCConfig{MeshWidth: 2, HopCycles: 40})) / float64(run(nil))
	}
	b.ReportMetric(ratio, "mesh/flat")
}

// benchmarkStepWorkers simulates a 64-tile SPMD mesh at the given
// tile-stepping parallelism; the sequential/sharded pair below quantifies
// the parallel Interleaver's throughput win on a wide system (results are
// bit-identical either way, per TestParallelSteppingDeterminism and the
// golden-matrix worker legs). The win scales with host cores: on a
// single-core host the sharded leg only measures the coordination overhead.
func benchmarkStepWorkers(b *testing.B, workers int) {
	b.Helper()
	w := workloads.SGEMM()
	g, tr, err := w.Trace(64, workloads.Small)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &config.SystemConfig{
		Name:  "step-workers",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 64}},
		Mem:   config.TableIIMem(),
		NoC:   &config.NoCConfig{MeshWidth: 8, HopCycles: 4},
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := soc.NewSPMD(cfg, g, tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.StepWorkers = workers
		if err := sys.Run(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
		if workers > 1 && sys.ParallelPhases == 0 {
			b.Fatal("parallel stepper never engaged")
		}
		cycles = sys.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkStepSequential(b *testing.B) { benchmarkStepWorkers(b, 1) }
func BenchmarkStepSharded8(b *testing.B)   { benchmarkStepWorkers(b, 8) }

// benchmarkStepCoherent simulates a 64-tile directory-coherent SPMD mesh at
// the given tile-stepping parallelism. Coherent hierarchies used to force
// the sequential fallback; with invalidations staged and epoch-committed
// they shard like any other topology (bit-identical results, per
// TestCoherentSystemStepsParallel and the cfg/coherence golden worker legs).
// As with the pair above, the win scales with host cores: on a single-core
// host the sharded leg only measures the coordination overhead.
func benchmarkStepCoherent(b *testing.B, workers int) {
	b.Helper()
	w := workloads.SGEMM()
	g, tr, err := w.Trace(64, workloads.Small)
	if err != nil {
		b.Fatal(err)
	}
	mc := config.TableIIMem()
	mc.Directory = true
	cfg := &config.SystemConfig{
		Name:  "step-coherent",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 64}},
		Mem:   mc,
		NoC:   &config.NoCConfig{MeshWidth: 8, HopCycles: 4},
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := soc.NewSPMD(cfg, g, tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		sys.StepWorkers = workers
		if err := sys.Run(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
		if workers > 1 && sys.ParallelPhases == 0 {
			b.Fatal("parallel stepper never engaged on the coherent mesh")
		}
		cycles = sys.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkStepCoherent64Sequential(b *testing.B) { benchmarkStepCoherent(b, 1) }
func BenchmarkStepCoherent64Sharded8(b *testing.B)   { benchmarkStepCoherent(b, 8) }

// replaySweepSrc is the sweep benchmark's kernel: a reduction over A (real
// cache and DRAM traffic) followed by an accelerator offload — the same shape
// the replay equivalence matrix pins down in internal/sim, so every leg the
// benchmark replays is one the matrix has proven bit-exact.
const replaySweepSrc = `
void kernel(float* A, float* B, float* C, long dim) {
  long tid = tile_id();
  if (tid == 0) {
    float s = 0.0;
    for (long i = 0; i < dim*dim; i++) { s = s + A[i]; }
    C[0] = s;
    acc_sgemm(A, B, C, dim, dim, dim);
  }
}
`

// BenchmarkSweepReplay measures the schedule-capture replay win on a
// timing-only Pareto sweep (DESIGN.md §5f): 100 legs over a mem-class-latency
// × DRAM-bandwidth grid share one recorded schedule, so every leg after the
// first is answered analytically instead of re-simulated. The reported
// "speedup" metric is the recording (full-simulation) leg's wall time divided
// by the mean replayed leg's; the acceptance bar is >=10x. A leg that falls
// back to full simulation fails the benchmark — the sweep is timing-only by
// construction, so a fallback means the classifier regressed.
func BenchmarkSweepReplay(b *testing.B) {
	w := workloads.SGEMMAccel()
	w.Name = "replay-sweep"
	w.Src = replaySweepSrc
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 4}
	models := map[string]soc.AccelModel{}
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		models[name] = &accel.Model{
			Acc:       accel.ByName(name, dp),
			Mode:      accel.ModeClosedForm,
			SystemMHz: 2000,
			MaxMemGBs: 24,
		}
	}
	// 10×10 grid; bandwidth sweeps upward from the Table II baseline so the
	// simple-DRAM refit certificate always holds (budget only grows).
	legs := make([]*config.SystemConfig, 0, 100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			c := config.OutOfOrderCore()
			c.Branch = config.BranchPerfect
			c.Latencies = map[string]int64{"mem": int64(1 + 7*i)}
			mem := config.TableIIMem()
			mem.DRAM.BandwidthGBs = float64(24 + 8*j)
			legs = append(legs, &config.SystemConfig{
				Name:  "replay-sweep",
				Cores: []config.CoreSpec{{Core: c, Count: 1}},
				Mem:   mem,
			})
		}
	}
	run := func(cache *sim.Cache, cfg *config.SystemConfig) sim.ReplayOutcome {
		s, err := sim.NewSession(sim.Options{
			Workload: w,
			Scale:    workloads.Tiny,
			Config:   cfg,
			Accels:   models,
			Cache:    cache,
			Replay:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		return s.Replay()
	}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := sim.NewCache()
		start := time.Now()
		if out := run(cache, legs[0]); !out.Recorded {
			b.Fatalf("recording leg published no schedule (reason: %q)", out.Reason)
		}
		record := time.Since(start)
		start = time.Now()
		for k, cfg := range legs[1:] {
			if out := run(cache, cfg); !out.Replayed {
				b.Fatalf("timing-only leg %d fell back: %q", k+1, out.Reason)
			}
		}
		perLeg := time.Since(start) / time.Duration(len(legs)-1)
		if perLeg > 0 {
			speedup = float64(record) / float64(perLeg)
		}
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(len(legs)), "legs")
}

// BenchmarkAblationDynamicBranch compares the gshare dynamic predictor
// (§III-C future-work extension) against static prediction on the branchy
// tpacf kernel.
func BenchmarkAblationDynamicBranch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		dyn := config.OutOfOrderCore()
		dyn.Branch = config.BranchDynamic
		stat := config.OutOfOrderCore()
		stat.Branch = config.BranchStatic
		w := workloads.TPACF()
		ratio = float64(simCycles(b, w, stat, config.TableIIMem())) /
			float64(simCycles(b, w, dyn, config.TableIIMem()))
	}
	b.ReportMetric(ratio, "speedup")
}
