package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/metrics"
)

// CoordinatorOptions tunes the fleet side of a manager.
type CoordinatorOptions struct {
	// LeaseTTL is how long a lease survives without renewal. Zero means
	// 15s. Expiry scans run at a quarter of this.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to report at. Zero means
	// LeaseTTL / 3, so a worker gets ~three renewal chances per TTL.
	Heartbeat time.Duration
	// WorkerTimeout is how long a silent worker stays in the fleet gauge
	// before being dropped. Zero means 3 × Heartbeat.
	WorkerTimeout time.Duration
}

// Coordinator exposes a jobs.Manager to a worker fleet over HTTP. It owns
// no execution of its own — typically the manager runs with Workers < 0
// (coordinator mode) so every job is executed by a lease.
type Coordinator struct {
	mgr  *jobs.Manager
	opts CoordinatorOptions
	mux  *http.ServeMux

	mu      sync.Mutex
	workers map[string]*workerInfo

	mWorkers    *metrics.Gauge
	mLeases     *metrics.Counter
	mHeartbeats *metrics.Counter
	mLost       *metrics.Counter
}

// workerInfo is the coordinator's view of one registered worker.
type workerInfo struct {
	slots    int
	lastSeen time.Time
}

// NewCoordinator wraps mgr with the /cluster/v1/ protocol surface. Call
// Run to drive lease expiry; mount the Coordinator itself beside the
// public API (it routes only /cluster/v1/* paths).
func NewCoordinator(mgr *jobs.Manager, opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.LeaseTTL / 3
	}
	if opts.WorkerTimeout <= 0 {
		opts.WorkerTimeout = 3 * opts.Heartbeat
	}
	reg := mgr.Registry()
	c := &Coordinator{
		mgr:     mgr,
		opts:    opts,
		mux:     http.NewServeMux(),
		workers: make(map[string]*workerInfo),
		mWorkers: reg.Gauge("mosaicd_fleet_workers",
			"Workers currently registered and heartbeating.", nil),
		mLeases: reg.Counter("mosaicd_fleet_leases_granted_total",
			"Leases granted to fleet workers.", nil),
		mHeartbeats: reg.Counter("mosaicd_fleet_heartbeats_total",
			"Heartbeats received from fleet workers.", nil),
		mLost: reg.Counter("mosaicd_fleet_workers_lost_total",
			"Workers dropped after going silent past the worker timeout.", nil),
	}
	c.mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	c.mux.HandleFunc("POST /cluster/v1/lease", c.handleLease)
	c.mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /cluster/v1/jobs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("POST /cluster/v1/jobs/{id}/complete", c.handleComplete)
	return c
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Run drives the time-based half of the protocol — lease expiry and silent-
// worker pruning — until ctx is cancelled. Scans run at a quarter of the
// lease TTL so an expired lease requeues well within one extra TTL.
func (c *Coordinator) Run(ctx context.Context) {
	period := c.opts.LeaseTTL / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			c.mgr.ExpireLeases(now)
			c.prune(now)
		}
	}
}

// prune forgets workers silent past the worker timeout. Their leases are
// reclaimed separately by ExpireLeases; this only keeps the fleet gauge
// honest.
func (c *Coordinator) prune(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, wi := range c.workers {
		if now.Sub(wi.lastSeen) > c.opts.WorkerTimeout {
			delete(c.workers, name)
			c.mLost.Inc()
		}
	}
	c.mWorkers.Set(int64(len(c.workers)))
}

// touch records a sighting of worker name, registering it if needed.
func (c *Coordinator) touch(name string, slots int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.workers[name]
	if wi == nil {
		wi = &workerInfo{slots: 1}
		c.workers[name] = wi
	}
	if slots > 0 {
		wi.slots = slots
	}
	wi.lastSeen = time.Now()
	c.mWorkers.Set(int64(len(c.workers)))
}

// Workers returns the number of currently registered workers.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// decode unmarshals a request body strictly, rejecting unknown fields.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps protocol errors onto status codes: a lost lease is 409 (the
// worker must abandon the run), an unknown job 404, anything else 400.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrLeaseLost):
		code = http.StatusConflict
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("bad register body: %w", err))
		return
	}
	if req.Name == "" {
		writeErr(w, errors.New("register: worker name is required"))
		return
	}
	c.touch(req.Name, req.Slots)
	writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseTTL:       c.opts.LeaseTTL,
		HeartbeatEvery: c.opts.Heartbeat,
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("bad lease body: %w", err))
		return
	}
	if req.Name == "" {
		writeErr(w, errors.New("lease: worker name is required"))
		return
	}
	c.touch(req.Name, 0)
	affinity := make(map[uint64]bool, len(req.Affinity))
	for _, h := range req.Affinity {
		affinity[h] = true
	}
	lease, ok := c.mgr.LeaseJob(req.Name, affinity, c.opts.LeaseTTL)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.mLeases.Inc()
	writeJSON(w, http.StatusOK, lease)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("bad heartbeat body: %w", err))
		return
	}
	if req.Name == "" {
		writeErr(w, errors.New("heartbeat: worker name is required"))
		return
	}
	c.touch(req.Name, 0)
	c.mHeartbeats.Inc()
	var resp HeartbeatResponse
	for _, id := range req.Running {
		if err := c.mgr.RenewLease(id, req.Name, c.opts.LeaseTTL); err != nil {
			resp.Lost = append(resp.Lost, id)
		}
	}
	resp.Cancels = c.mgr.TakeCancels(req.Name)
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req EventRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("bad event body: %w", err))
		return
	}
	if err := c.mgr.AppendRemote(r.PathValue("id"), req.Name, req.Event); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, fmt.Errorf("bad complete body: %w", err))
		return
	}
	if err := c.mgr.CompleteLease(r.PathValue("id"), req.Name, req.Report, req.Error); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}
