package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mosaicsim/internal/jobs"
)

// WorkerOptions configures one fleet worker.
type WorkerOptions struct {
	// Name identifies this worker to the coordinator. Required.
	Name string
	// Coordinator is the coordinator's base URL (no trailing slash).
	Coordinator string
	// Manager executes leased jobs locally — the same engine stack a
	// standalone daemon runs, so a fleet report is byte-identical to a
	// single-process one. Required; typically built with its own cache,
	// registry, and Workers > 0.
	Manager *jobs.Manager
	// Slots caps concurrently leased jobs. Zero means 1.
	Slots int
	// Poll is the idle wait between lease requests when the queue is dry
	// or the coordinator is unreachable. Zero means 250ms.
	Poll time.Duration
	// Client is the HTTP client to use; nil means a 10s-timeout client.
	Client *http.Client
}

// Worker leases jobs from a coordinator and runs them on a local manager.
// It forwards stage/progress events as they happen, renews its leases
// through heartbeats, and completes each job with the local report. The
// affinity hashes of executed jobs accumulate and ride future lease
// requests, so repeat work lands on this worker's warm caches.
type Worker struct {
	opts WorkerOptions

	mu       sync.Mutex
	ttl      time.Duration
	hb       time.Duration
	inflight map[string]string // coordinator job ID → local job ID
	affinity map[uint64]bool
}

// NewWorker validates opts and builds a worker. Run starts it.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" {
		return nil, errors.New("cluster: worker name is required")
	}
	if opts.Coordinator == "" {
		return nil, errors.New("cluster: coordinator URL is required")
	}
	if opts.Manager == nil {
		return nil, errors.New("cluster: worker needs a local manager")
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	opts.Coordinator = strings.TrimRight(opts.Coordinator, "/")
	return &Worker{
		opts:     opts,
		inflight: make(map[string]string),
		affinity: make(map[uint64]bool),
	}, nil
}

// Run registers with the coordinator and works until ctx is cancelled,
// then drains: no new leases are taken, in-flight jobs finish and complete
// (heartbeats continue so their leases stay alive), and Run returns.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	// Heartbeats outlive ctx: they carry lease renewals for the drain.
	hbCtx, stopHB := context.WithCancel(context.Background())
	defer stopHB()
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(hbCtx)
	}()

	var wg sync.WaitGroup
	for ctx.Err() == nil {
		if w.inflightCount() >= w.opts.Slots {
			sleep(ctx, w.opts.Poll)
			continue
		}
		lease, err := w.lease()
		if err != nil || lease == nil {
			sleep(ctx, w.opts.Poll)
			continue
		}
		// Reserve the slot before execute() runs: the next loop iteration
		// must see this lease in flight or Slots would not bound anything.
		w.mu.Lock()
		w.inflight[lease.JobID] = ""
		w.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.execute(lease)
		}()
	}
	wg.Wait()
	stopHB()
	hbDone.Wait()
	return ctx.Err()
}

// register announces the worker, retrying until the coordinator answers or
// ctx is cancelled, and adopts the returned lease TTL and heartbeat
// interval.
func (w *Worker) register(ctx context.Context) error {
	req := RegisterRequest{Name: w.opts.Name, Slots: w.opts.Slots}
	for {
		var resp RegisterResponse
		_, err := w.post("/cluster/v1/register", req, &resp)
		if err == nil {
			w.mu.Lock()
			w.ttl = resp.LeaseTTL
			w.hb = resp.HeartbeatEvery
			if w.hb <= 0 {
				w.hb = 5 * time.Second
			}
			w.mu.Unlock()
			return nil
		}
		if !sleep(ctx, w.opts.Poll) {
			return fmt.Errorf("cluster: register with %s: %w", w.opts.Coordinator, err)
		}
	}
}

// heartbeatLoop reports liveness at the coordinator's interval, renewing
// every in-flight lease and aborting local runs the coordinator cancelled
// or no longer credits to us.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	period := w.hb
	w.mu.Unlock()
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req := HeartbeatRequest{Name: w.opts.Name, Running: w.runningIDs()}
		var resp HeartbeatResponse
		if _, err := w.post("/cluster/v1/heartbeat", req, &resp); err != nil {
			continue // transient: leases survive until the TTL, keep trying
		}
		for _, id := range append(resp.Cancels, resp.Lost...) {
			w.abortLocal(id)
		}
	}
}

// lease asks for one job; nil without error means the queue is dry.
func (w *Worker) lease() (*jobs.Lease, error) {
	w.mu.Lock()
	hashes := make([]uint64, 0, len(w.affinity))
	for h := range w.affinity {
		hashes = append(hashes, h)
	}
	w.mu.Unlock()
	var lease jobs.Lease
	code, err := w.post("/cluster/v1/lease", LeaseRequest{Name: w.opts.Name, Affinity: hashes}, &lease)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &lease, nil
}

// execute runs one leased job on the local manager, forwarding its stage
// and progress events, and completes the lease with the local outcome.
func (w *Worker) execute(l *jobs.Lease) {
	defer func() {
		w.mu.Lock()
		delete(w.inflight, l.JobID)
		w.mu.Unlock()
	}()
	j, err := w.opts.Manager.Submit(l.Spec)
	if err != nil {
		w.complete(l.JobID, nil, fmt.Sprintf("worker %s: submit: %v", w.opts.Name, err))
		return
	}
	w.mu.Lock()
	w.inflight[l.JobID] = j.ID
	w.mu.Unlock()
	next := 0
	for {
		evs, more, done := j.EventsSince(next)
		for _, e := range evs {
			if e.Type != "state" {
				w.postEvent(l.JobID, e)
			}
		}
		next += len(evs)
		if done {
			break
		}
		<-more
	}
	// The local caches are warm for this spec now, whatever the outcome:
	// claim affinity before completing so the hash is visible as soon as
	// the coordinator learns the job finished.
	w.mu.Lock()
	w.affinity[l.Affinity] = true
	w.mu.Unlock()
	switch st := j.Status(); st.State {
	case jobs.StateDone:
		w.complete(l.JobID, st.Report, "")
	case jobs.StateCancelled:
		// Cancels originate at the coordinator, which already finished the
		// job there; this completion is a no-op 409 that keeps the
		// protocol honest if the local cancel had another cause.
		w.complete(l.JobID, nil, "cancelled on worker "+w.opts.Name)
	default:
		w.complete(l.JobID, nil, st.Error)
	}
}

// complete reports a leased job's outcome, retrying transient failures. A
// 409 means the lease was lost (expired, cancelled, or finished elsewhere)
// — the run is abandoned without further noise.
func (w *Worker) complete(id string, report json.RawMessage, errMsg string) {
	req := CompleteRequest{Name: w.opts.Name, Report: report, Error: errMsg}
	for attempt := 0; attempt < 5; attempt++ {
		code, err := w.post("/cluster/v1/jobs/"+id+"/complete", req, nil)
		if err == nil || code == http.StatusConflict || code == http.StatusNotFound {
			return
		}
		time.Sleep(w.opts.Poll)
	}
}

// postEvent forwards one event, best-effort: a dropped progress tick costs
// observability, never correctness, so failures are not retried.
func (w *Worker) postEvent(id string, e jobs.Event) {
	_, _ = w.post("/cluster/v1/jobs/"+id+"/events", EventRequest{Name: w.opts.Name, Event: e}, nil)
}

// abortLocal cancels the local run backing coordinator job id, if any. A
// reserved slot whose local submit has not landed yet ("" entry) is waited
// out briefly — cancels are delivered once per heartbeat and must not be
// dropped into that window.
func (w *Worker) abortLocal(id string) {
	for i := 0; i < 50; i++ {
		w.mu.Lock()
		local, ok := w.inflight[id]
		w.mu.Unlock()
		if !ok {
			return // already finished
		}
		if local != "" {
			_, _ = w.opts.Manager.Cancel(local)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (w *Worker) inflightCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.inflight)
}

// runningIDs snapshots the coordinator job IDs currently executing here.
func (w *Worker) runningIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.inflight))
	for id := range w.inflight {
		ids = append(ids, id)
	}
	return ids
}

// Affinity returns a copy of the artifact-affinity hashes this worker has
// executed (its warm-cache claim on future leases).
func (w *Worker) Affinity() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, 0, len(w.affinity))
	for h := range w.affinity {
		out = append(out, h)
	}
	return out
}

// post sends one JSON request and decodes a 200 response into resp (when
// non-nil). Non-2xx statuses return the decoded error message.
func (w *Worker) post(path string, req, resp any) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hr, err := w.opts.Client.Post(w.opts.Coordinator+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer hr.Body.Close()
	body, _ := io.ReadAll(hr.Body)
	if hr.StatusCode >= 400 {
		var ae struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return hr.StatusCode, fmt.Errorf("cluster: %s: %s: %s", path, hr.Status, msg)
	}
	if resp != nil && hr.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, resp); err != nil {
			return hr.StatusCode, fmt.Errorf("cluster: %s: decode response: %w", path, err)
		}
	}
	return hr.StatusCode, nil
}

// sleep waits for d or ctx, reporting whether the full wait elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
