// Package cluster turns mosaicd into a fleet: a coordinator that owns the
// job queue and the durable store, and workers that lease jobs over
// HTTP/JSON, execute them on their own local engine stack, and report back.
//
// The protocol (all under /cluster/v1/, mounted beside the public API):
//
//	POST /cluster/v1/register           worker announces itself     → lease TTL + heartbeat interval
//	POST /cluster/v1/lease              request one job             → 200 jobs.Lease, or 204 when idle
//	POST /cluster/v1/heartbeat          liveness + renew leases     → cancels to propagate, leases lost
//	POST /cluster/v1/jobs/{id}/events   forward one stage/progress event
//	POST /cluster/v1/jobs/{id}/complete report (or error) for a leased job
//
// Design invariants, shared with internal/jobs:
//
//   - The coordinator owns every lifecycle edge. Workers forward only stage
//     and progress events, so each job's history is decided by one process
//     and the persisted log is a single total order.
//   - Leases carry the job's artifact-affinity hash. Workers accumulate the
//     hashes they have executed and send them with lease requests; the
//     coordinator prefers affinity matches (warm trace/schedule caches) and
//     otherwise lets the worker steal the front of the queue.
//   - Liveness is lease-based, not connection-based: a SIGKILL'd worker
//     simply stops renewing, its leases expire, and the jobs requeue. No
//     job is ever stranded by a dead worker.
//   - Reports are opaque bytes end to end: the worker's local engine emits
//     json.Marshal(soc.Result), the coordinator stores and serves it
//     verbatim, so a fleet-executed job is byte-identical to the
//     single-process sim.Session path.
package cluster

import (
	"encoding/json"
	"time"

	"mosaicsim/internal/jobs"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name identifies the worker across its whole lifetime; leases,
	// heartbeats, and completions all carry it.
	Name string `json:"name"`
	// Slots is the worker's concurrent-job capacity (informational).
	Slots int `json:"slots"`
}

// RegisterResponse hands the worker the coordinator's timing contract.
type RegisterResponse struct {
	// LeaseTTL is how long a granted lease lives without renewal.
	LeaseTTL time.Duration `json:"leaseTTL"`
	// HeartbeatEvery is how often the worker must heartbeat (each
	// heartbeat renews all of the worker's leases).
	HeartbeatEvery time.Duration `json:"heartbeatEvery"`
}

// LeaseRequest asks for one job.
type LeaseRequest struct {
	Name string `json:"name"`
	// Affinity lists the artifact-affinity hashes of jobs this worker has
	// executed (its warm caches). The coordinator prefers a queued job
	// matching one of them.
	Affinity []uint64 `json:"affinity,omitempty"`
}

// HeartbeatRequest reports liveness and the leases the worker still holds.
type HeartbeatRequest struct {
	Name string `json:"name"`
	// Running lists the coordinator job IDs the worker is executing; each
	// is renewed for another lease TTL.
	Running []string `json:"running,omitempty"`
}

// HeartbeatResponse carries the coordinator's instructions back.
type HeartbeatResponse struct {
	// Cancels are leased jobs cancelled client-side; the worker must abort
	// their local runs.
	Cancels []string `json:"cancels,omitempty"`
	// Lost are jobs from Running whose lease the worker no longer holds
	// (expired and requeued, or finished elsewhere); the worker must abort
	// them and report nothing further.
	Lost []string `json:"lost,omitempty"`
}

// EventRequest forwards one stage or progress event from the worker's local
// run.
type EventRequest struct {
	Name  string     `json:"name"`
	Event jobs.Event `json:"event"`
}

// CompleteRequest finishes a leased job: a report, or an error message.
type CompleteRequest struct {
	Name   string          `json:"name"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}
