package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/sim"
)

// waitTerminal blocks until the coordinator-side job is terminal, driven by
// its event stream.
func waitTerminal(t *testing.T, j *jobs.Job, timeout time.Duration) jobs.State {
	t.Helper()
	deadline := time.After(timeout)
	next := 0
	for {
		evs, more, done := j.EventsSince(next)
		next += len(evs)
		if done {
			return j.State()
		}
		select {
		case <-more:
		case <-deadline:
			t.Fatalf("job %s not terminal after %v (state %s)", j.ID, timeout, j.State())
		}
	}
}

func shutdown(t *testing.T, m *jobs.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// postJSON drives the coordinator's HTTP surface directly, playing a raw
// worker (useful for simulating one that dies: it just stops calling).
func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if resp != nil && hr.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return hr.StatusCode
}

// TestFleetGoldenSeam is the fleet determinism contract: a job executed by
// a remote worker — leased over HTTP, run on the worker's own engine stack,
// completed with its report — must be byte-identical to the same spec run
// through sim.Session directly. It also checks the coordinator's event log
// is a single total order: queued first, a running edge naming the worker,
// forwarded stage events, and a terminal done edge.
func TestFleetGoldenSeam(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(coord)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go coord.Run(ctx)

	workerMgr := jobs.NewManager(jobs.Options{Workers: 1})
	defer shutdown(t, workerMgr)
	w, err := NewWorker(WorkerOptions{
		Name: "w1", Coordinator: srv.URL, Manager: workerMgr, Poll: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = w.Run(ctx) }()

	spec := jobs.Spec{Workload: "sgemm", Scale: "tiny"}
	j, err := coordMgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != jobs.StateDone {
		t.Fatalf("fleet job finished %s: %s", st, j.Status().Error)
	}
	got := j.Report()

	// The reference: the same spec lowered straight onto a Session.
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := norm.SessionOptions(sim.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fleet report differs from direct Session run:\n got %s\nwant %s", got, want)
	}

	evs, _, _ := j.EventsSince(0)
	if len(evs) == 0 || evs[0].State != jobs.StateQueued {
		t.Fatalf("first event is not the queued edge: %+v", evs)
	}
	var sawRunning, sawStage, sawDone bool
	for i, e := range evs {
		if e.Seq != i {
			t.Errorf("event %d has seq %d: log is not a single total order", i, e.Seq)
		}
		switch {
		case e.Type == "state" && e.State == jobs.StateRunning:
			sawRunning = true
			if e.Worker != "w1" || e.Attempt != 1 {
				t.Errorf("running edge lacks lease identity: %+v", e)
			}
		case e.Type == "stage":
			sawStage = true
		case e.Type == "state" && e.State == jobs.StateDone:
			sawDone = true
		}
	}
	if !sawRunning || !sawStage || !sawDone {
		t.Errorf("event log missing edges (running %v, stage %v, done %v): %+v",
			sawRunning, sawStage, sawDone, evs)
	}

	cancel()
	<-workerDone
	if coord.Workers() == 0 {
		t.Error("worker never registered with the coordinator")
	}
}

// TestLeaseExpiryRequeuesToSecondWorker simulates a worker SIGKILL: w1
// leases a job over raw HTTP and goes silent; the coordinator's expiry scan
// requeues it; a real Worker (w2, stub engine) picks it up as attempt 2 and
// completes it. The dead worker's late completion must be refused.
func TestLeaseExpiryRequeuesToSecondWorker(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: 60 * time.Millisecond})
	srv := httptest.NewServer(coord)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go coord.Run(ctx)

	j, err := coordMgr.Submit(jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}

	var lease jobs.Lease
	if code := postJSON(t, srv.URL+"/cluster/v1/lease", LeaseRequest{Name: "w1"}, &lease); code != http.StatusOK {
		t.Fatalf("lease status %d", code)
	}
	if lease.JobID != j.ID || lease.Attempt != 1 {
		t.Fatalf("unexpected lease %+v", lease)
	}
	// w1 now "dies": no heartbeat, no completion. The lease must lapse and
	// the job requeue (front of class) within a few TTLs.
	requeued := time.After(2 * time.Second)
	for j.State() != jobs.StateQueued {
		select {
		case <-requeued:
			t.Fatalf("job never requeued after lease expiry (state %s)", j.State())
		case <-time.After(10 * time.Millisecond):
		}
	}

	report := json.RawMessage(`{"ok":true,"attempt":2}`)
	workerMgr := jobs.NewManager(jobs.Options{Workers: 1,
		Runner: func(ctx context.Context, lj *jobs.Job) (json.RawMessage, error) { return report, nil }})
	defer shutdown(t, workerMgr)
	w2, err := NewWorker(WorkerOptions{
		Name: "w2", Coordinator: srv.URL, Manager: workerMgr, Poll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w2Done := make(chan struct{})
	go func() { defer close(w2Done); _ = w2.Run(ctx) }()

	if st := waitTerminal(t, j, 10*time.Second); st != jobs.StateDone {
		t.Fatalf("requeued job finished %s: %s", st, j.Status().Error)
	}
	st := j.Status()
	if st.Attempts != 2 || st.Worker != "w2" {
		t.Errorf("status after requeue = attempts %d worker %q, want 2 on w2", st.Attempts, st.Worker)
	}
	if string(st.Report) != string(report) {
		t.Errorf("report = %s, want %s", st.Report, report)
	}

	// The affinity hash of the executed job must now ride w2's leases.
	if len(w2.Affinity()) != 1 {
		t.Errorf("w2 affinity set = %v, want one hash", w2.Affinity())
	}

	// w1 rises from the dead: its completion must bounce with 409.
	code := postJSON(t, srv.URL+"/cluster/v1/jobs/"+j.ID+"/complete",
		CompleteRequest{Name: "w1", Report: json.RawMessage(`{"stale":true}`)}, nil)
	if code != http.StatusConflict {
		t.Errorf("stale completion status = %d, want 409", code)
	}
	if string(j.Report()) != string(report) {
		t.Errorf("stale completion overwrote the report: %s", j.Report())
	}

	cancel()
	<-w2Done
}

// TestLeaseAffinityPreference: a worker advertising the affinity hash of a
// deeper-queued job receives that job, not the front of the queue — and a
// worker with no affinity steals the front as usual.
func TestLeaseAffinityPreference(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	specA := jobs.Spec{Workload: "sgemm", Scale: "tiny"}
	specB := jobs.Spec{Workload: "spmv", Scale: "tiny"}
	if _, err := coordMgr.Submit(specA); err != nil {
		t.Fatal(err)
	}
	jb, err := coordMgr.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	normB, err := specB.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	var warm jobs.Lease
	code := postJSON(t, srv.URL+"/cluster/v1/lease",
		LeaseRequest{Name: "warm", Affinity: []uint64{normB.AffinityHash()}}, &warm)
	if code != http.StatusOK {
		t.Fatalf("lease status %d", code)
	}
	if warm.JobID != jb.ID {
		t.Errorf("affine worker got %s (%s), want the matching job %s",
			warm.JobID, warm.Spec.Workload, jb.ID)
	}
	if warm.Affinity != normB.AffinityHash() {
		t.Errorf("lease affinity %d != spec hash %d", warm.Affinity, normB.AffinityHash())
	}

	var cold jobs.Lease
	code = postJSON(t, srv.URL+"/cluster/v1/lease", LeaseRequest{Name: "cold"}, &cold)
	if code != http.StatusOK {
		t.Fatalf("second lease status %d", code)
	}
	if cold.Spec.Workload != "sgemm" {
		t.Errorf("cold worker stole %q, want the queue front sgemm", cold.Spec.Workload)
	}

	if code := postJSON(t, srv.URL+"/cluster/v1/lease", LeaseRequest{Name: "cold"}, nil); code != http.StatusNoContent {
		t.Errorf("empty-queue lease status = %d, want 204", code)
	}

	// Unwind both leases so shutdown drains cleanly.
	postJSON(t, srv.URL+"/cluster/v1/jobs/"+warm.JobID+"/complete",
		CompleteRequest{Name: "warm", Report: json.RawMessage(`{}`)}, nil)
	postJSON(t, srv.URL+"/cluster/v1/jobs/"+cold.JobID+"/complete",
		CompleteRequest{Name: "cold", Report: json.RawMessage(`{}`)}, nil)
}

// TestHeartbeatCarriesCancelsAndLost: a client cancel on a leased job rides
// the next heartbeat back to its worker, and a heartbeat renewing a lease
// the worker no longer holds reports it lost.
func TestHeartbeatCarriesCancelsAndLost(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	j, err := coordMgr.Submit(jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	var lease jobs.Lease
	if code := postJSON(t, srv.URL+"/cluster/v1/lease", LeaseRequest{Name: "w1"}, &lease); code != http.StatusOK {
		t.Fatalf("lease status %d", code)
	}

	// Heartbeat renews while the lease is held: nothing lost, no cancels.
	var hb HeartbeatResponse
	postJSON(t, srv.URL+"/cluster/v1/heartbeat", HeartbeatRequest{Name: "w1", Running: []string{j.ID}}, &hb)
	if len(hb.Cancels) != 0 || len(hb.Lost) != 0 {
		t.Fatalf("clean heartbeat returned %+v", hb)
	}

	if _, err := coordMgr.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/cluster/v1/heartbeat", HeartbeatRequest{Name: "w1", Running: []string{j.ID}}, &hb)
	if len(hb.Cancels) != 1 || hb.Cancels[0] != j.ID {
		t.Errorf("cancel did not ride the heartbeat: %+v", hb)
	}
	if len(hb.Lost) != 1 || hb.Lost[0] != j.ID {
		t.Errorf("cancelled lease not reported lost: %+v", hb)
	}
	if st := j.State(); st != jobs.StateCancelled {
		t.Errorf("job state = %s, want cancelled", st)
	}

	// Forwarding an event for a lost lease is refused with 409, and workers
	// may never emit lifecycle edges at all.
	code := postJSON(t, srv.URL+"/cluster/v1/jobs/"+j.ID+"/events",
		EventRequest{Name: "w1", Event: jobs.Event{Type: "progress", Cycle: 1}}, nil)
	if code != http.StatusConflict {
		t.Errorf("event for lost lease status = %d, want 409", code)
	}
	code = postJSON(t, srv.URL+"/cluster/v1/jobs/"+j.ID+"/events",
		EventRequest{Name: "w1", Event: jobs.Event{Type: "state", State: jobs.StateDone}}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("lifecycle edge from worker status = %d, want 400", code)
	}
}

// TestWorkerRegisterTimingContract: register hands back the coordinator's
// lease TTL and heartbeat interval, and an unnamed worker is refused.
func TestWorkerRegisterTimingContract(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: 12 * time.Second})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	var resp RegisterResponse
	code := postJSON(t, srv.URL+"/cluster/v1/register", RegisterRequest{Name: "w1", Slots: 2}, &resp)
	if code != http.StatusOK {
		t.Fatalf("register status %d", code)
	}
	if resp.LeaseTTL != 12*time.Second || resp.HeartbeatEvery != 4*time.Second {
		t.Errorf("timing contract = %+v, want 12s TTL / 4s heartbeat", resp)
	}
	if coord.Workers() != 1 {
		t.Errorf("registered workers = %d, want 1", coord.Workers())
	}
	if code := postJSON(t, srv.URL+"/cluster/v1/register", RegisterRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("unnamed register status = %d, want 400", code)
	}
}

// TestTwoWorkersSplitTheQueue runs a small batch across two stub-engine
// workers and checks every job completes exactly once with its own report —
// the work-stealing path under real concurrency (meaningful under -race).
func TestTwoWorkersSplitTheQueue(t *testing.T) {
	coordMgr := jobs.NewManager(jobs.Options{Workers: -1, QueueDepth: 32})
	defer shutdown(t, coordMgr)
	coord := NewCoordinator(coordMgr, CoordinatorOptions{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(coord)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go coord.Run(ctx)

	mkWorker := func(name string) (*Worker, *jobs.Manager) {
		mgr := jobs.NewManager(jobs.Options{Workers: 2,
			Runner: func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
				return json.RawMessage(fmt.Sprintf(`{"by":%q,"workload":%q}`, name, j.Spec.Workload)), nil
			}})
		w, err := NewWorker(WorkerOptions{
			Name: name, Coordinator: srv.URL, Manager: mgr, Slots: 2, Poll: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, mgr
	}
	w1, m1 := mkWorker("w1")
	w2, m2 := mkWorker("w2")
	defer shutdown(t, m1)
	defer shutdown(t, m2)
	d1, d2 := make(chan struct{}), make(chan struct{})
	go func() { defer close(d1); _ = w1.Run(ctx) }()
	go func() { defer close(d2); _ = w2.Run(ctx) }()

	var batch []*jobs.Job
	for i := 0; i < 8; i++ {
		j, err := coordMgr.Submit(jobs.Spec{Workload: "sgemm", Scale: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, j)
	}
	for _, j := range batch {
		if st := waitTerminal(t, j, 15*time.Second); st != jobs.StateDone {
			t.Fatalf("job %s finished %s: %s", j.ID, st, j.Status().Error)
		}
		var rep struct{ By, Workload string }
		if err := json.Unmarshal(j.Report(), &rep); err != nil {
			t.Fatalf("job %s report %s: %v", j.ID, j.Report(), err)
		}
		if rep.By != "w1" && rep.By != "w2" {
			t.Errorf("job %s completed by %q", j.ID, rep.By)
		}
	}
	cancel()
	<-d1
	<-d2
}
