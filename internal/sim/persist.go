package sim

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mosaicsim/internal/replay"
	"mosaicsim/internal/trace"
)

// This file is the cache's persistence boundary: export the expensive,
// serializable artifacts (dynamic traces and recorded timing schedules) as
// opaque named blobs, and import them back after a restart. Compiled
// kernels, DDGs, and DAE slices are deliberately NOT serialized — they
// rebuild cheaply and deterministically through the compile singleflight,
// and their in-memory graphs are cyclic (hostile to any codec). An imported
// trace is staged, not installed: Session.Artifact adopts it lazily inside
// the build closure, re-compiling the (cheap) kernel and graph around it
// and skipping only the expensive TraceWith/TracePairs step, so artifact
// structure and singleflight semantics stay identical to a cold build.
//
// Blob format: one JSON header line (the artifact kind and its full cache
// key) followed by the payload — the trace's own binary codec
// (trace.WriteTo/trace.Read), or the schedule as JSON. Blob names are
// content addresses derived from the key, so a store can write-if-absent.

// blobHeader is the first (newline-terminated) line of every exported blob.
type blobHeader struct {
	Kind string `json:"kind"` // "trace" or "sched"
	Key  Key    `json:"key"`
	// Struct is the schedule's structural config hash ("sched" blobs only).
	Struct uint64 `json:"struct,omitempty"`
}

// blobName derives the content-addressed blob name for a header: the kind
// plus a hash of the canonical header JSON, so equal keys collide (by
// design — the blob is already present) and distinct keys cannot.
func blobName(h blobHeader) string {
	b, _ := json.Marshal(h)
	sum := sha256.Sum256(b)
	return h.Kind + "-" + hex.EncodeToString(sum[:16])
}

// ExportArtifacts streams every serializable completed artifact — traced
// artifacts and recorded schedules, staged imports included — to fn as
// (name, blob) pairs. fn is typically store.PutArtifact; iteration stops on
// its first error.
func (c *Cache) ExportArtifacts(fn func(name string, data []byte) error) error {
	type traceEntry struct {
		key Key
		tr  *trace.Trace
	}
	type schedEntry struct {
		key schedKey
		s   *replay.Schedule
	}
	c.mu.Lock()
	var traces []traceEntry
	seen := map[Key]bool{}
	for k, f := range c.arts.m {
		if f.completed && f.err == nil && f.val != nil && f.val.Trace != nil {
			traces = append(traces, traceEntry{k, f.val.Trace})
			seen[k] = true
		}
	}
	for k, tr := range c.imported {
		if !seen[k] {
			traces = append(traces, traceEntry{k, tr})
		}
	}
	var scheds []schedEntry
	for k, f := range c.scheds.m {
		if f.completed && f.err == nil && f.val != nil {
			scheds = append(scheds, schedEntry{k, f.val})
		}
	}
	c.mu.Unlock()
	for _, e := range traces {
		hdr := blobHeader{Kind: "trace", Key: e.key}
		var buf bytes.Buffer
		hb, err := json.Marshal(hdr)
		if err != nil {
			return fmt.Errorf("sim: export: %w", err)
		}
		buf.Write(hb)
		buf.WriteByte('\n')
		if _, err := e.tr.WriteTo(&buf); err != nil {
			return fmt.Errorf("sim: export trace %s: %w", e.key.Kernel, err)
		}
		if err := fn(blobName(hdr), buf.Bytes()); err != nil {
			return err
		}
	}
	for _, e := range scheds {
		hdr := blobHeader{Kind: "sched", Key: e.key.Key, Struct: e.key.Struct}
		var buf bytes.Buffer
		hb, err := json.Marshal(hdr)
		if err != nil {
			return fmt.Errorf("sim: export: %w", err)
		}
		buf.Write(hb)
		buf.WriteByte('\n')
		sb, err := json.Marshal(e.s)
		if err != nil {
			return fmt.Errorf("sim: export schedule %s: %w", e.key.Kernel, err)
		}
		buf.Write(sb)
		if err := fn(blobName(hdr), buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// ImportArtifact decodes one exported blob back into the cache: a trace is
// staged for lazy adoption by the next Artifact build under its key, and a
// schedule is installed directly (first writer wins; imports never count as
// newly recorded). Unknown kinds and corrupt payloads are errors — a store
// blob is content-addressed, so corruption means disk damage, not version
// skew.
func (c *Cache) ImportArtifact(name string, data []byte) error {
	r := bufio.NewReader(bytes.NewReader(data))
	line, err := r.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("sim: import %s: missing header: %w", name, err)
	}
	var hdr blobHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return fmt.Errorf("sim: import %s: bad header: %w", name, err)
	}
	switch hdr.Kind {
	case "trace":
		tr, err := trace.Read(r)
		if err != nil {
			return fmt.Errorf("sim: import %s: %w", name, err)
		}
		c.mu.Lock()
		if c.imported == nil {
			c.imported = map[Key]*trace.Trace{}
		}
		if _, ok := c.imported[hdr.Key]; !ok {
			c.imported[hdr.Key] = tr
		}
		c.mu.Unlock()
		return nil
	case "sched":
		var s replay.Schedule
		dec := json.NewDecoder(r)
		if err := dec.Decode(&s); err != nil {
			return fmt.Errorf("sim: import %s: %w", name, err)
		}
		c.putImportedSchedule(hdr.Key, hdr.Struct, &s)
		return nil
	default:
		return fmt.Errorf("sim: import %s: unknown artifact kind %q", name, hdr.Kind)
	}
}

// putImportedSchedule installs a schedule like PutSchedule but without
// bumping the recorded counter: an import restores prior work, it does not
// capture new work.
func (c *Cache) putImportedSchedule(key Key, structHash uint64, s *replay.Schedule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk := schedKey{Key: key, Struct: structHash}
	if _, ok := c.scheds.m[sk]; ok {
		return
	}
	done := make(chan struct{})
	close(done)
	c.scheds.m[sk] = &flight[*replay.Schedule]{done: done, val: s, completed: true}
	c.scheds.touch(sk)
	c.scheds.evictOver(c.max, &c.evicted)
}

// importedTrace returns the staged imported trace for key, or nil. The
// entry stays staged (it is the durable copy an evicted artifact re-adopts)
// — Session.Artifact wraps it in a fresh Artifact per build.
func (c *Cache) importedTrace(key Key) *trace.Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.imported[key]
}

// ImportedCount reports how many traces are staged for adoption (startup
// logging).
func (c *Cache) ImportedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.imported)
}
