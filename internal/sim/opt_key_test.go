package sim

import (
	"context"
	"reflect"
	"testing"

	"mosaicsim/internal/ir"
	"mosaicsim/internal/workloads"
)

// TestKeySeparatesOptLevels pins the cache-aliasing hazard closed: the same
// source at different opt configs must never share a cache key, while an
// explicit O0 and the zero config (which compile identically by
// construction) must share one.
func TestKeySeparatesOptLevels(t *testing.T) {
	w := workloads.ByName("sgemm")
	o0 := w.WithOpt(ir.OptConfig{Level: "O0"})
	o1 := w.WithOpt(ir.OptConfig{Level: "O1"})
	o2 := w.WithOpt(ir.OptConfig{Level: "O2"})
	o2u8 := w.WithOpt(ir.OptConfig{Level: "O2", Unroll: 8})

	kDefault := KeyFor(w, workloads.Small, 1, SliceNone, nil)
	k0 := KeyFor(o0, workloads.Small, 1, SliceNone, nil)
	k1 := KeyFor(o1, workloads.Small, 1, SliceNone, nil)
	k2 := KeyFor(o2, workloads.Small, 1, SliceNone, nil)
	k2u8 := KeyFor(o2u8, workloads.Small, 1, SliceNone, nil)

	if kDefault != k0 {
		t.Error("explicit O0 and the default config diverge; O0 is bit-identical and must share cache entries")
	}
	distinct := map[Key]string{k0: "O0", k1: "O1", k2: "O2", k2u8: "O2u8"}
	if len(distinct) != 4 {
		t.Fatalf("opt-level keys collide: O0=%v O1=%v O2=%v O2u8=%v", k0, k1, k2, k2u8)
	}
}

// TestReplayOptLevelDeltaFallsBack extends the replay equivalence matrix
// along the software axis: a schedule recorded at O0 must never answer a
// run of the same source at O2. The opt hash lives in the cache key, so
// the O2 leg finds no schedule, declares why, runs the full simulation,
// and matches a from-scratch O2 simulation bit for bit.
func TestReplayOptLevelDeltaFallsBack(t *testing.T) {
	cache := NewCache()
	base := replayBaseConfig()
	models := accelModelsAt(4, 24)

	_, recOut := runLeg(t, cache, cloneSys(t, base), models, true)
	if !recOut.Recorded {
		t.Fatalf("recording run did not publish a schedule (reason: %q)", recOut.Reason)
	}

	optW := replayW.WithOpt(ir.OptConfig{Level: "O2"})
	run := func(useReplay bool) (interface{}, ReplayOutcome) {
		s, err := NewSession(Options{
			Workload: optW,
			Scale:    workloads.Tiny,
			Config:   cloneSys(t, base),
			Accels:   models,
			Cache:    cache,
			Replay:   useReplay,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, s.Replay()
	}

	fullRes, _ := run(false)
	replRes, out := run(true)

	if !out.Attempted {
		t.Fatal("replay was not attempted despite Replay: true")
	}
	if out.Replayed {
		t.Fatal("an opt-level delta replayed from an O0 schedule; opt levels must never alias")
	}
	if out.Reason == "" {
		t.Error("fallback must carry a declared reason")
	}
	if !reflect.DeepEqual(replRes, fullRes) {
		t.Errorf("fallback result differs from full simulation:\nreplay path: %+v\nfull:        %+v", replRes, fullRes)
	}
}
