package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestExportImportRoundTrip is the artifact-index determinism contract: a
// cache's traces and recorded schedules, exported as blobs and imported
// into a fresh cache (a restarted daemon, or a fleet worker's warm start),
// must answer the same submission with a byte-identical report — the
// imported trace adopted without re-tracing, the imported schedule replayed
// without re-simulating.
func TestExportImportRoundTrip(t *testing.T) {
	w := spinWorkload("persist-rt", 2_000)
	cfg := oneTileConfig("persist-rt-cfg")
	run := func(c *Cache) ([]byte, *Session) {
		s, err := NewSession(Options{Workload: w, Config: cfg, Replay: true, Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b, s
	}

	c1 := NewCache()
	want, _ := run(c1)
	if c1.ReplayCounters().Recorded != 1 {
		t.Fatalf("recorded = %d, want 1", c1.ReplayCounters().Recorded)
	}

	blobs := map[string][]byte{}
	if err := c1.ExportArtifacts(func(name string, data []byte) error {
		if _, dup := blobs[name]; dup {
			t.Errorf("duplicate blob name %q", name)
		}
		blobs[name] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("exported %d blobs, want 2 (one trace, one schedule)", len(blobs))
	}

	// Export is deterministic: a second pass produces the same names and
	// bytes (the store relies on this for write-if-absent).
	if err := c1.ExportArtifacts(func(name string, data []byte) error {
		prev, ok := blobs[name]
		if !ok {
			t.Errorf("second export produced new name %q", name)
		} else if !reflect.DeepEqual(prev, data) {
			t.Errorf("blob %q bytes differ between exports", name)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache()
	for name, data := range blobs {
		if err := c2.ImportArtifact(name, data); err != nil {
			t.Fatalf("import %s: %v", name, err)
		}
	}
	if c2.ImportedCount() != 1 {
		t.Fatalf("staged traces = %d, want 1", c2.ImportedCount())
	}

	got, s2 := run(c2)
	if string(got) != string(want) {
		t.Errorf("report after import differs:\n got %s\nwant %s", got, want)
	}
	// The run must have been answered from the imported schedule, not
	// re-simulated, and imports must not count as newly recorded.
	if !s2.Replay().Replayed {
		t.Errorf("run after import was not replayed (reason %q)", s2.Replay().Reason)
	}
	rc := c2.ReplayCounters()
	if rc.Recorded != 0 {
		t.Errorf("imported schedule counted as recorded (%d)", rc.Recorded)
	}
	if rc.Hits != 1 {
		t.Errorf("replay hits = %d, want 1", rc.Hits)
	}
}

// TestImportedTraceAdopted forces the full-simulation path (no schedule)
// and checks the imported trace is adopted by the Artifact build instead of
// re-tracing.
func TestImportedTraceAdopted(t *testing.T) {
	w := spinWorkload("persist-adopt", 2_000)
	cfg := oneTileConfig("persist-adopt-cfg")
	c1 := NewCache()
	s1, err := NewSession(Options{Workload: w, Config: cfg, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var blobs []struct {
		name string
		data []byte
	}
	if err := c1.ExportArtifacts(func(name string, data []byte) error {
		blobs = append(blobs, struct {
			name string
			data []byte
		}{name, append([]byte(nil), data...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("exported %d blobs, want 1 (replay off records no schedule)", len(blobs))
	}

	c2 := NewCache()
	for _, b := range blobs {
		if err := c2.ImportArtifact(b.name, b.data); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := NewSession(Options{Workload: w, Config: cfg, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	art, err := s2.Artifact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if art.Trace != c2.importedTrace(s2.Key()) {
		t.Error("artifact build re-traced instead of adopting the imported trace")
	}
	res2, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if string(b1) != string(b2) {
		t.Errorf("report over imported trace differs:\n got %s\nwant %s", b2, b1)
	}
}

// TestImportArtifactRejectsCorruptBlobs: corrupt payloads error instead of
// silently installing garbage.
func TestImportArtifactRejectsCorruptBlobs(t *testing.T) {
	c := NewCache()
	if err := c.ImportArtifact("x", []byte("not json\n")); err == nil {
		t.Error("bad header accepted")
	}
	if err := c.ImportArtifact("x", []byte(`{"kind":"bogus","key":{}}`+"\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := c.ImportArtifact("x", []byte(`{"kind":"trace","key":{}}`+"\ngarbage")); err == nil {
		t.Error("corrupt trace payload accepted")
	}
}
