// Package sim is MosaicSim-Go's reusable, cancellable simulation-session
// engine. It owns the paper's full pipeline (§II) as typed, individually
// addressable stages —
//
//	Compile → DDG → Trace → BuildSystem → Run → Report
//
// — behind one Session API, so every driver (the CLI tools, the experiment
// harness, the examples, the benchmarks, and future serving frontends)
// composes the same engine instead of re-wiring the pipeline. Artifacts up
// to the trace are content-keyed and shared through a singleflight Cache;
// systems and runs are per-session. Everything downstream of a Session
// honors context.Context: cancelling a session's context aborts compilation
// waits, returns mid-simulation from soc.System.Run at interleave and
// horizon-jump boundaries, and (through internal/parallel) abandons queued
// sweep legs.
package sim

import (
	"context"
	"fmt"
	"sync"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	replaypkg "mosaicsim/internal/replay"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Stage names one pipeline stage for error attribution and addressing.
type Stage string

// The pipeline stages, in order.
const (
	StageCompile Stage = "compile"
	StageDDG     Stage = "ddg"
	StageTrace   Stage = "trace"
	StageBuild   Stage = "build-system"
	StageRun     Stage = "run"
	StageReport  Stage = "report"
)

// SliceMode selects how a session maps the kernel onto tiles.
type SliceMode int

const (
	// SliceNone runs the kernel SPMD: every tile executes the same kernel.
	SliceNone SliceMode = iota
	// SliceDAE applies the DeSC-style Decoupled Access/Execute pass
	// (§VII-A): even tiles run the access slice, odd tiles the execute
	// slice, in pairs.
	SliceDAE
)

func (m SliceMode) String() string {
	if m == SliceDAE {
		return "dae"
	}
	return "spmd"
}

// StageError attributes a pipeline failure to its stage and kernel. It
// wraps the underlying error, so errors.Is / errors.As see through it
// (e.g. errors.Is(err, context.Canceled) after a cancelled run).
type StageError struct {
	Stage  Stage
	Kernel string
	Err    error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("sim: %s stage of %q: %v", e.Stage, e.Kernel, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Options configures a Session. Workload is required; the remaining fields
// are needed only by the stages that consume them (e.g. Config may stay nil
// for a session used only up to the Trace stage with explicit Tiles).
type Options struct {
	// Workload is the kernel under simulation: a built-in benchmark or an
	// ad-hoc workloads.Workload composed by the caller.
	Workload *workloads.Workload
	// Scale selects the workload's input size.
	Scale workloads.Scale
	// Tiles is the traced tile count. Zero derives it from Config's tile
	// count (either declaration form). SliceDAE requires an even count
	// (access/execute pairs).
	Tiles int
	// Slicing selects SPMD replication or DAE pair decomposition.
	Slicing SliceMode
	// Config describes the simulated system for BuildSystem/Run. Its total
	// core count must match Tiles when both are set.
	Config *config.SystemConfig
	// Accels maps accelerator intrinsics to performance models.
	Accels map[string]soc.AccelModel
	// Limit bounds the run's simulated cycles (0 = soc.DefaultCycleLimit).
	Limit int64
	// DisableCycleSkipping forces the naive cycle-by-cycle Interleaver loop.
	DisableCycleSkipping bool
	// StepWorkers, when positive, overrides the config's step_workers: tile
	// stepping is sharded across that many goroutines with results
	// bit-identical to sequential stepping (1 forces sequential).
	StepWorkers int
	// Replay enables schedule-capture timing replay (internal/replay): a
	// full run records its event schedule into the cache, and a later Run
	// whose config differs from a recorded one only in provably replayable
	// timing parameters is answered analytically — bit-exactly equal to full
	// re-simulation — without building or stepping a system. Ineligible
	// deltas fall back to full simulation with the reason in Replay().
	// Recording is skipped under DisableCycleSkipping (those runs exist to
	// validate the stepping engine itself).
	Replay bool
	// Progress, when non-nil, receives in-flight simulation progress from
	// the Run stage (wired to soc.System.OnProgress on every system this
	// session builds). It is called from the simulating goroutine at
	// interleave boundaries; keep it cheap and do your own throttling.
	Progress func(soc.ProgressUpdate)
	// Cache shares pipeline artifacts across sessions; nil uses the
	// process-wide DefaultCache.
	Cache *Cache
}

// Session drives one kernel through the pipeline. Stage methods are
// idempotent and safe for concurrent use; artifacts come from the shared
// cache, while the built system and its result belong to this session.
type Session struct {
	opts  Options
	cache *Cache
	// roles is the per-tile role sequence resolved from the topology (nil
	// when the config declares none: the slicing mode implies it).
	roles []string

	mu     sync.Mutex
	sys    *soc.System // last-built (and possibly run) system
	res    soc.Result
	ran    bool
	replay ReplayOutcome
}

// ReplayOutcome reports what the replay engine did for the session's last
// Run: whether replay was attempted, whether the run was answered from a
// recorded schedule (and under which delta families), or why it fell back,
// and whether this run recorded a new schedule for later legs. Stepped and
// Skipped mirror the cycle-skipper accounting of the replayed run, since a
// replayed session never builds a live soc.System to read them from.
type ReplayOutcome struct {
	Attempted bool
	Replayed  bool
	Recorded  bool
	Families  []string
	Reason    string
	Stepped   int64
	Skipped   int64
}

// NewSession validates opts and binds a session to its cache. A declarative
// topology (Config.Tiles) is resolved here: tile kinds are checked against
// the registry and access/execute roles select DAE slicing, so a bad
// topology fails at session creation, not mid-pipeline.
func NewSession(opts Options) (*Session, error) {
	if opts.Workload == nil {
		return nil, fmt.Errorf("sim: Options.Workload is required")
	}
	var roles []string
	if opts.Config != nil {
		var err error
		roles, err = soc.Roles(opts.Config)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if opts.Tiles == 0 {
			opts.Tiles = len(roles)
		}
		if len(roles) != opts.Tiles {
			return nil, fmt.Errorf("sim: config %q instantiates %d cores but the session traces %d tiles",
				opts.Config.Name, len(roles), opts.Tiles)
		}
		for _, r := range roles {
			if r == config.RoleAccess || r == config.RoleExecute {
				// The topology declares DAE roles; the slicing mode
				// follows from it.
				opts.Slicing = SliceDAE
				break
			}
		}
	}
	if opts.Tiles < 0 {
		return nil, fmt.Errorf("sim: negative tile count %d", opts.Tiles)
	}
	if opts.Slicing == SliceDAE && opts.Tiles%2 != 0 {
		return nil, fmt.Errorf("sim: DAE slicing needs an even tile count (access/execute pairs), got %d", opts.Tiles)
	}
	c := opts.Cache
	if c == nil {
		c = DefaultCache
	}
	return &Session{opts: opts, cache: c, roles: roles}, nil
}

// Key returns the session's content key into the artifact cache, topology
// hash included.
func (s *Session) Key() Key {
	return KeyFor(s.opts.Workload, s.opts.Scale, s.opts.Tiles, s.opts.Slicing, s.roles)
}

// fail wraps err in a StageError unless it already is one (an inner stage
// failed first — keep its attribution).
func (s *Session) fail(st Stage, err error) error {
	var se *StageError
	if ok := asStageError(err, &se); ok {
		return err
	}
	return &StageError{Stage: st, Kernel: s.opts.Workload.Name, Err: err}
}

// Compile runs (or joins) the compile stage: mini-C to verified IR.
func (s *Session) Compile(ctx context.Context) (*ir.Function, error) {
	ctx = orBackground(ctx)
	w := s.opts.Workload
	k := kernelKey{Kernel: w.Name, SrcHash: KeyOf(w, 0, 0, SliceNone).SrcHash}
	f, err := single(ctx, s.cache, &s.cache.kernels, k, func() (*ir.Function, error) {
		f, err := w.Kernel()
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, fmt.Errorf("workload %s: module has no function %q", w.Name, "kernel")
		}
		return f, nil
	})
	if err != nil {
		return nil, s.fail(StageCompile, err)
	}
	return f, nil
}

// Graph runs the DDG stage: the kernel's static data-dependence graph
// (SliceNone sessions; DAE sessions address their slice graphs via
// Artifact).
func (s *Session) Graph(ctx context.Context) (*ddg.Graph, error) {
	ctx = orBackground(ctx)
	f, err := s.Compile(ctx)
	if err != nil {
		return nil, err
	}
	w := s.opts.Workload
	k := kernelKey{Kernel: w.Name, SrcHash: KeyOf(w, 0, 0, SliceNone).SrcHash}
	g, err := single(ctx, s.cache, &s.cache.graphs, k, func() (*ddg.Graph, error) {
		return ddg.Build(f), nil
	})
	if err != nil {
		return nil, s.fail(StageDDG, err)
	}
	return g, nil
}

// slicesOf runs the DAE compiler pass (cached per kernel).
func (s *Session) slicesOf(ctx context.Context) (*sliced, error) {
	f, err := s.Compile(ctx)
	if err != nil {
		return nil, err
	}
	w := s.opts.Workload
	k := kernelKey{Kernel: w.Name, SrcHash: KeyOf(w, 0, 0, SliceNone).SrcHash}
	sl, err := single(ctx, s.cache, &s.cache.slices, k, func() (*sliced, error) {
		sls, err := dae.Slice(f)
		if err != nil {
			return nil, err
		}
		return &sliced{slices: sls, access: ddg.Build(sls.Access), execute: ddg.Build(sls.Execute)}, nil
	})
	if err != nil {
		return nil, s.fail(StageDDG, err)
	}
	return sl, nil
}

// Artifact runs the pipeline through the Trace stage, returning the cached
// compile/DDG/trace bundle for this session's key.
func (s *Session) Artifact(ctx context.Context) (*Artifact, error) {
	ctx = orBackground(ctx)
	if s.opts.Tiles <= 0 {
		return nil, s.fail(StageTrace, fmt.Errorf("session has no tile count (set Options.Tiles or Options.Config)"))
	}
	art, err := single(ctx, s.cache, &s.cache.arts, s.Key(), func() (*Artifact, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch s.opts.Slicing {
		case SliceDAE:
			sl, err := s.slicesOf(ctx)
			if err != nil {
				return nil, err
			}
			f, err := s.Compile(ctx)
			if err != nil {
				return nil, err
			}
			tr := s.cache.importedTrace(s.Key())
			if tr == nil {
				tr, err = s.opts.Workload.TracePairs(sl.slices.Access, sl.slices.Execute, s.opts.Tiles/2, s.opts.Scale)
				if err != nil {
					return nil, err
				}
			}
			return &Artifact{
				Fn: f, Trace: tr,
				Slices: sl.slices, AccessGraph: sl.access, ExecuteGraph: sl.execute,
			}, nil
		default:
			f, err := s.Compile(ctx)
			if err != nil {
				return nil, err
			}
			g, err := s.Graph(ctx)
			if err != nil {
				return nil, err
			}
			// A trace imported from a store (a restart, or a fleet worker's
			// warm start) satisfies the expensive step; the cheap compile
			// and graph stages above rebuilt deterministically around it.
			tr := s.cache.importedTrace(s.Key())
			if tr == nil {
				tr, err = s.opts.Workload.TraceWith(f, s.opts.Tiles, s.opts.Scale)
				if err != nil {
					return nil, err
				}
			}
			return &Artifact{Fn: f, Graph: g, Trace: tr}, nil
		}
	})
	if err != nil {
		return nil, s.fail(StageTrace, err)
	}
	return art, nil
}

// Trace runs the pipeline through the Trace stage and returns the dynamic
// trace.
func (s *Session) Trace(ctx context.Context) (*trace.Trace, error) {
	art, err := s.Artifact(ctx)
	if err != nil {
		return nil, err
	}
	return art.Trace, nil
}

// BuildSystem runs the BuildSystem stage: a fresh soc.System composed from
// the session's config over the (cached) traced artifact. Each call builds a
// new system, since a run consumes it.
func (s *Session) BuildSystem(ctx context.Context) (*soc.System, error) {
	ctx = orBackground(ctx)
	if s.opts.Config == nil {
		return nil, s.fail(StageBuild, fmt.Errorf("session has no system config (set Options.Config)"))
	}
	art, err := s.Artifact(ctx)
	if err != nil {
		return nil, err
	}
	sys, err := soc.Build(s.opts.Config, soc.Binding{
		Graph:   art.Graph,
		Access:  art.AccessGraph,
		Execute: art.ExecuteGraph,
		Trace:   art.Trace,
		PairDAE: s.opts.Slicing == SliceDAE,
	}, s.opts.Accels)
	if err != nil {
		return nil, s.fail(StageBuild, err)
	}
	sys.DisableCycleSkipping = s.opts.DisableCycleSkipping
	if s.opts.StepWorkers > 0 {
		sys.StepWorkers = s.opts.StepWorkers
	}
	sys.OnProgress = s.opts.Progress
	s.mu.Lock()
	s.sys = sys
	s.ran = false
	s.mu.Unlock()
	return sys, nil
}

// Run drives the full pipeline: it builds a fresh system over the cached
// artifact, simulates it under ctx (and the session's cycle limit), and
// returns the system-wide report. Cancelling ctx mid-simulation returns
// promptly with an error wrapping context.Canceled (or DeadlineExceeded,
// with the effective deadline and cycle limit in the message).
func (s *Session) Run(ctx context.Context) (soc.Result, error) {
	ctx = orBackground(ctx)
	replayOn := s.opts.Replay && s.opts.Config != nil && !s.opts.DisableCycleSkipping
	var structHash uint64
	var out ReplayOutcome
	if replayOn {
		out.Attempted = true
		h, err := replaypkg.StructHash(s.opts.Config)
		if err != nil {
			// An unresolvable config will fail BuildSystem with a better
			// error; just disable replay and take the full path.
			replayOn = false
			out.Reason = err.Error()
		} else {
			structHash = h
			if sched := s.cache.Schedule(s.Key(), h); sched != nil {
				dec := replaypkg.Classify(sched, s.opts.Config, s.opts.Accels, s.opts.Limit)
				if dec.Eligible {
					res, stepped, skipped := replaypkg.Evaluate(sched, dec)
					s.cache.noteReplay(true)
					out.Replayed = true
					out.Families = dec.Families
					out.Stepped = stepped
					out.Skipped = skipped
					s.mu.Lock()
					s.sys = nil // no live system backs a replayed result
					s.res = res
					s.ran = true
					s.replay = out
					s.mu.Unlock()
					return res, nil
				}
				s.cache.noteReplay(false)
				out.Reason = dec.Reason
			} else {
				out.Reason = "no recorded schedule"
			}
		}
	}
	sys, err := s.BuildSystem(ctx)
	if err != nil {
		return soc.Result{}, err
	}
	var rec *replaypkg.Recorder
	if replayOn {
		rec = replaypkg.NewRecorder()
		sys.SetRecorder(rec)
	}
	if err := sys.Run(ctx, s.opts.Limit); err != nil {
		return soc.Result{}, s.fail(StageRun, err)
	}
	res := sys.Result()
	if rec != nil {
		if sched, err := rec.Build(s.opts.Config, sys, res); err == nil {
			out.Recorded = s.cache.PutSchedule(s.Key(), structHash, sched)
		}
	}
	s.mu.Lock()
	s.res = res
	s.ran = true
	s.replay = out
	s.mu.Unlock()
	return res, nil
}

// Replay reports the replay engine's outcome for the last Run (the zero
// value before any Run, or when Options.Replay is off).
func (s *Session) Replay() ReplayOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// Report returns the last completed run's system-wide estimate.
func (s *Session) Report() (soc.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ran {
		return soc.Result{}, s.fail(StageReport, fmt.Errorf("no completed run (call Run first)"))
	}
	return s.res, nil
}

// System returns the session's last-built system (nil before BuildSystem),
// for drivers that report component-level statistics.
func (s *Session) System() *soc.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys
}

// orBackground treats a nil ctx as context.Background().
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// asStageError is errors.As specialized to *StageError without forcing every
// caller through the reflection path for the common nil case.
func asStageError(err error, target **StageError) bool {
	for err != nil {
		if se, ok := err.(*StageError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
