package sim

import (
	"context"
	"testing"

	"mosaicsim/internal/workloads"
)

// buildArtifact traces one tiny ad-hoc workload through the given cache and
// returns its key.
func buildArtifact(t *testing.T, c *Cache, name string) Key {
	t.Helper()
	w := spinWorkload(name, 500)
	s, err := NewSession(Options{
		Workload: w,
		Scale:    workloads.Tiny,
		Config:   oneTileConfig(name),
		Cache:    c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Artifact(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s.Key()
}

func TestCacheCounters(t *testing.T) {
	c := NewCache()
	ka := buildArtifact(t, c, "ctr-a")
	before := c.Counters()
	if before.Misses == 0 {
		t.Fatalf("first build recorded no misses: %+v", before)
	}
	if before.Evictions != 0 {
		t.Fatalf("fresh cache has evictions: %+v", before)
	}
	// Same workload again: every layer hits, misses stay put. (The first
	// build may itself record hits — later stages re-fetch earlier layers —
	// so compare against its baseline rather than zero.)
	buildArtifact(t, c, "ctr-a")
	after := c.Counters()
	if after.Hits <= before.Hits {
		t.Fatalf("repeat build recorded no new hits: %+v -> %+v", before, after)
	}
	if after.Misses != before.Misses {
		t.Fatalf("repeat build re-missed: %+v -> %+v", before, after)
	}
	if !c.HasArtifact(ka) {
		t.Error("HasArtifact = false for a resident artifact")
	}
}

func TestHasArtifactIsAPeek(t *testing.T) {
	c := NewCache()
	key := KeyOf(spinWorkload("peek", 500), workloads.Tiny, 1, SliceNone)
	if c.HasArtifact(key) {
		t.Fatal("HasArtifact = true on an empty cache")
	}
	before := c.Counters()
	c.HasArtifact(key)
	if got := c.Counters(); got != before {
		t.Fatalf("peek moved counters: %+v -> %+v", before, got)
	}
	built := buildArtifact(t, c, "peek")
	if built != key {
		t.Fatalf("KeyOf %+v != session key %+v", key, built)
	}
	if !c.HasArtifact(key) {
		t.Error("HasArtifact = false after build")
	}
}

func TestCacheLRUEvictsBeyondCap(t *testing.T) {
	c := NewCache()
	c.SetMaxEntries(2)
	buildArtifact(t, c, "lru-a")
	buildArtifact(t, c, "lru-b")
	kc := buildArtifact(t, c, "lru-c")
	got := c.Counters()
	if got.Evictions == 0 {
		t.Fatalf("three distinct kernels under a cap of 2 evicted nothing: %+v", got)
	}
	// Four layers, each capped at 2 (the SPMD path leaves the DAE layer
	// empty, but no layer may exceed the cap).
	if n := c.Entries(); n > 8 {
		t.Fatalf("cache holds %d entries, want <= 8 under a per-layer cap of 2", n)
	}
	// The newest artifact survived; rebuilding an evicted one is a miss.
	if !c.HasArtifact(kc) {
		t.Error("most-recently-built artifact was evicted")
	}
	missesBefore := got.Misses
	buildArtifact(t, c, "lru-a")
	if after := c.Counters(); after.Misses == missesBefore {
		t.Error("rebuilding an evicted artifact did not miss (stale entry served?)")
	}
}

func TestCacheLRUKeepsRecentlyTouched(t *testing.T) {
	c := NewCache()
	c.SetMaxEntries(2)
	ka := buildArtifact(t, c, "hot-a")
	kb := buildArtifact(t, c, "hot-b")
	// Touch a: it becomes most-recently used, so the next eviction takes b.
	buildArtifact(t, c, "hot-a")
	buildArtifact(t, c, "hot-c")
	if !c.HasArtifact(ka) {
		t.Error("recently-touched artifact a was evicted")
	}
	if c.HasArtifact(kb) {
		t.Error("least-recently-used artifact b survived past the cap")
	}
}

func TestSetMaxEntriesEvictsImmediately(t *testing.T) {
	c := NewCache()
	buildArtifact(t, c, "imm-a")
	buildArtifact(t, c, "imm-b")
	buildArtifact(t, c, "imm-c")
	if ev := c.Counters().Evictions; ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
	c.SetMaxEntries(1)
	if ev := c.Counters().Evictions; ev == 0 {
		t.Fatal("SetMaxEntries did not evict an over-cap cache")
	}
	if n := c.Entries(); n > 4 {
		t.Fatalf("cache holds %d entries after capping at 1/layer, want <= 4", n)
	}
	// Unbounding again (n <= 0) stops eviction without dropping anything.
	c.SetMaxEntries(0)
	evBefore := c.Counters().Evictions
	buildArtifact(t, c, "imm-d")
	buildArtifact(t, c, "imm-e")
	if ev := c.Counters().Evictions; ev != evBefore {
		t.Fatalf("unbounded cache evicted again: %d -> %d", evBefore, ev)
	}
}
