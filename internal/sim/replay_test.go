package sim

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

// replayMemSrc is the matrix's workload: a reduction over A (real cache and
// DRAM traffic, so memory-latency knobs are provably bound) followed by an
// accelerator offload (so accel deltas exercise the quiet-window shift).
const replayMemSrc = `
void kernel(float* A, float* B, float* C, long dim) {
  long tid = tile_id();
  if (tid == 0) {
    float s = 0.0;
    for (long i = 0; i < dim*dim; i++) { s = s + A[i]; }
    C[0] = s;
    acc_sgemm(A, B, C, dim, dim, dim);
  }
}
`

// replayWorkload reuses the sgemm-accel setup (matrix allocation plus the
// functional accelerator registry) under the traffic-generating kernel.
func replayWorkload() *workloads.Workload {
	w := workloads.SGEMMAccel()
	w.Name = "replay-sgemm-mem"
	w.Src = replayMemSrc
	return w
}

var replayW = replayWorkload()

// cloneSys deep-copies a system config through JSON so matrix cases can
// mutate their own copy (configs carry maps and raw-JSON tile overrides).
func cloneSys(t *testing.T, sc *config.SystemConfig) *config.SystemConfig {
	t.Helper()
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var out config.SystemConfig
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// accelModelsAt builds closed-form accelerator models at a design point —
// the timing-only accelerator delta the replay matrix sweeps.
func accelModelsAt(lanes int, maxGBs float64) map[string]soc.AccelModel {
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: lanes}
	out := map[string]soc.AccelModel{}
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		out[name] = &accel.Model{
			Acc:       accel.ByName(name, dp),
			Mode:      accel.ModeClosedForm,
			SystemMHz: 2000,
			MaxMemGBs: maxGBs,
		}
	}
	return out
}

// replayBaseConfig is the matrix's recorded baseline: one out-of-order tile
// with a perfect branch predictor (so the mispredict-penalty knob is
// provably unread) over the Table II memory system.
func replayBaseConfig() *config.SystemConfig {
	c := config.OutOfOrderCore()
	c.Branch = config.BranchPerfect
	return &config.SystemConfig{
		Name:  "replay-matrix",
		Cores: []config.CoreSpec{{Core: c, Count: 1}},
		Mem:   config.TableIIMem(),
	}
}

// runLeg runs one sweep leg and returns the result plus the replay outcome.
func runLeg(t *testing.T, cache *Cache, cfg *config.SystemConfig, models map[string]soc.AccelModel, useReplay bool) (soc.Result, ReplayOutcome) {
	t.Helper()
	s, err := NewSession(Options{
		Workload: replayW,
		Scale:    workloads.Tiny,
		Config:   cfg,
		Accels:   models,
		Cache:    cache,
		Replay:   useReplay,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, s.Replay()
}

// TestReplayEquivalenceMatrix is the replay engine's correctness bar: for a
// grid of timing-parameter deltas against one recorded schedule, every delta
// the classifier admits must replay to a Result bit-exactly equal to a full
// re-simulation, and every delta it must not admit falls back with a declared
// reason (and full simulation runs) — never a silently wrong number.
func TestReplayEquivalenceMatrix(t *testing.T) {
	cache := NewCache()
	base := replayBaseConfig()
	baseModels := accelModelsAt(4, 24)

	// The recording run: a full simulation that captures the schedule.
	recRes, recOut := runLeg(t, cache, cloneSys(t, base), baseModels, true)
	if recOut.Replayed {
		t.Fatal("first run replayed; nothing should be recorded yet")
	}
	if !recOut.Recorded {
		t.Fatalf("recording run did not publish a schedule (reason: %q)", recOut.Reason)
	}
	if recRes.AccelCalls == 0 {
		t.Fatal("baseline run made no accelerator calls; the matrix needs them")
	}
	if recRes.L1.Accesses == 0 || recRes.DRAM.Reads+recRes.DRAM.Writebacks == 0 {
		t.Fatalf("baseline run generated no memory traffic (L1 %d, DRAM %d); the bound-knob cases need it",
			recRes.L1.Accesses, recRes.DRAM.Reads+recRes.DRAM.Writebacks)
	}

	cases := []struct {
		name     string
		eligible bool
		family   string // required in Families when non-empty
		mutate   func(sc *config.SystemConfig)
		models   map[string]soc.AccelModel // nil = baseline models
	}{
		{
			name: "identical", eligible: true, family: "identical",
			mutate: func(sc *config.SystemConfig) {},
		},
		{
			name: "mem-class-latency", eligible: true, family: "inert-knob",
			mutate: func(sc *config.SystemConfig) {
				sc.Cores[0].Core.Latencies = map[string]int64{"mem": 77}
			},
		},
		{
			name: "mispredict-penalty-perfect-branch", eligible: true, family: "inert-knob",
			mutate: func(sc *config.SystemConfig) {
				sc.Cores[0].Core.MispredictPenalty = 50
			},
		},
		{
			name: "atomic-extra-latency-no-atomics", eligible: true, family: "inert-knob",
			mutate: func(sc *config.SystemConfig) {
				sc.Cores[0].Core.AtomicExtraLatency = 9
			},
		},
		{
			name: "dram-bandwidth-up", eligible: true,
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.DRAM.BandwidthGBs = 48
			},
		},
		{
			name: "banked-knobs-under-simple-model", eligible: true, family: "inert-knob",
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.DRAM.TCAS, sc.Mem.DRAM.TRCD = 28, 28
				sc.Mem.DRAM.Banks = 16
			},
		},
		{
			name: "accel-slower", eligible: true, family: "accel-shift",
			mutate: func(sc *config.SystemConfig) {},
			models: accelModelsAt(1, 24),
		},
		{
			name: "accel-faster", eligible: true, family: "accel-shift",
			mutate: func(sc *config.SystemConfig) {},
			models: accelModelsAt(16, 24),
		},
		{
			name: "accel-same-point-rebuilt", eligible: true, family: "identical",
			mutate: func(sc *config.SystemConfig) {},
			models: accelModelsAt(4, 24),
		},
		{
			name: "l1-latency-with-accesses", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.L1.LatencyCycles = 3
			},
		},
		{
			name: "dram-min-latency-with-traffic", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.DRAM.MinLatency = 150
			},
		},
		{
			name: "l1-mshrs", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.L1.MSHRs = 4
			},
		},
		{
			name: "int-alu-latency", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Cores[0].Core.Latencies = map[string]int64{"int_alu": 3}
			},
		},
		{
			name: "inorder-flip", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Cores[0].Core.InOrder = true
			},
		},
		{
			name: "dram-model-switch", eligible: false,
			mutate: func(sc *config.SystemConfig) {
				sc.Mem.DRAM = config.BankedDRAMDefaults(24)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			models := tc.models
			if models == nil {
				models = baseModels
			}
			fullRes, _ := runLeg(t, cache, cloneSys(t, func() *config.SystemConfig {
				sc := cloneSys(t, base)
				tc.mutate(sc)
				return sc
			}()), models, false)
			sc := cloneSys(t, base)
			tc.mutate(sc)
			replRes, out := runLeg(t, cache, sc, models, true)

			if !reflect.DeepEqual(replRes, fullRes) {
				t.Errorf("replay path result differs from full simulation:\nreplay: %+v\nfull:   %+v", replRes, fullRes)
			}
			if tc.eligible {
				if !out.Replayed {
					t.Fatalf("expected replay, got fallback: %q", out.Reason)
				}
				if tc.family != "" {
					found := false
					for _, f := range out.Families {
						if f == tc.family {
							found = true
						}
					}
					if !found {
						t.Errorf("families = %v, want %q included", out.Families, tc.family)
					}
				}
			} else {
				if out.Replayed {
					t.Fatalf("ineligible delta was replayed (families %v)", out.Families)
				}
				if out.Reason == "" {
					t.Error("fallback must carry a declared reason")
				}
			}
		})
	}
}

// TestReplayBoundMispredictFallsBack pins the bound-knob side of the
// mispredict case: under a static predictor that actually mispredicts, a
// penalty delta must fall back (and full simulation must disagree with the
// recorded result, proving the fallback was load-bearing).
func TestReplayBoundMispredictFallsBack(t *testing.T) {
	cache := NewCache()
	base := replayBaseConfig()
	base.Cores[0].Core.Branch = config.BranchStatic
	baseModels := accelModelsAt(4, 24)

	recRes, recOut := runLeg(t, cache, cloneSys(t, base), baseModels, true)
	if !recOut.Recorded {
		t.Fatalf("recording run did not publish a schedule (reason: %q)", recOut.Reason)
	}
	if recRes.CoreStats[0].Mispredict == 0 {
		t.Skip("workload mispredicts nothing under the static predictor; bound-knob case not exercisable here")
	}

	sc := cloneSys(t, base)
	sc.Cores[0].Core.MispredictPenalty = 50
	replRes, out := runLeg(t, cache, sc, baseModels, true)
	if out.Replayed {
		t.Fatalf("penalty delta with %d mispredicts must not replay", recRes.CoreStats[0].Mispredict)
	}
	if out.Reason == "" {
		t.Error("fallback must carry a declared reason")
	}
	if replRes.Cycles == recRes.Cycles {
		t.Error("penalty delta did not change cycles; the case proves nothing")
	}
}

// TestReplayKnobFuzz is the property test: random perturbations of a menu of
// timing and structural knobs must either replay bit-exactly or declare a
// fallback — a silently wrong number is the one forbidden outcome.
func TestReplayKnobFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing many full simulations")
	}
	cache := NewCache()
	base := replayBaseConfig()
	baseModels := accelModelsAt(4, 24)
	if _, out := runLeg(t, cache, cloneSys(t, base), baseModels, true); !out.Recorded {
		t.Fatalf("recording run did not publish a schedule (reason: %q)", out.Reason)
	}

	type knob struct {
		name  string
		apply func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel
	}
	knobs := []knob{
		{"mem-latency", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			if sc.Cores[0].Core.Latencies == nil {
				sc.Cores[0].Core.Latencies = map[string]int64{}
			}
			sc.Cores[0].Core.Latencies["mem"] = int64(1 + r.Intn(100))
			return nil
		}},
		{"mispredict-penalty", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Cores[0].Core.MispredictPenalty = int64(1 + r.Intn(60))
			return nil
		}},
		{"atomic-latency", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Cores[0].Core.AtomicExtraLatency = int64(r.Intn(20))
			return nil
		}},
		{"dram-bandwidth", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Mem.DRAM.BandwidthGBs = float64(8 + r.Intn(96))
			return nil
		}},
		{"dram-min-latency", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Mem.DRAM.MinLatency = int64(50 + r.Intn(300))
			return nil
		}},
		{"l1-latency", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Mem.L1.LatencyCycles = int64(1 + r.Intn(5))
			return nil
		}},
		{"l1-mshrs", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Mem.L1.MSHRs = 2 + r.Intn(14)
			return nil
		}},
		{"issue-width", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			sc.Cores[0].Core.IssueWidth = 1 + r.Intn(8)
			return nil
		}},
		{"accel-lanes", func(sc *config.SystemConfig, r *rand.Rand) map[string]soc.AccelModel {
			return accelModelsAt(1<<r.Intn(5), 24)
		}},
	}

	r := rand.New(rand.NewSource(20260809))
	for it := 0; it < 12; it++ {
		sc := cloneSys(t, base)
		models := baseModels
		n := 1 + r.Intn(3)
		names := make([]string, 0, n)
		for j := 0; j < n; j++ {
			k := knobs[r.Intn(len(knobs))]
			names = append(names, k.name)
			if m := k.apply(sc, r); m != nil {
				models = m
			}
		}
		replRes, out := runLeg(t, cache, sc, models, true)
		if !out.Replayed && out.Reason == "" {
			t.Fatalf("iter %d (%v): fallback without a declared reason", it, names)
		}
		fullSC := cloneSys(t, sc)
		fullRes, _ := runLeg(t, cache, fullSC, models, false)
		if !reflect.DeepEqual(replRes, fullRes) {
			t.Fatalf("iter %d (%v): replayed=%v families=%v reason=%q\nreplay: %+v\nfull:   %+v",
				it, names, out.Replayed, out.Families, out.Reason, replRes, fullRes)
		}
	}
}
