package sim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mosaicsim/internal/config"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/workloads"
)

// spinSrc is a long serial-dependence loop: with cycle skipping disabled its
// simulation runs for hundreds of milliseconds, long enough that a test can
// cancel it mid-run.
const spinSrc = `
void kernel(double* A, long n) {
  double acc = 0.0;
  long j = 0;
  for (long i = 0; i < n; i++) {
    acc = acc + A[j] * 1.0000001;
    j = j + 1;
    if (j >= 64) { j = 0; }
  }
  A[0] = acc;
}
`

// spinWorkload builds an ad-hoc workload whose traced length is n loop
// iterations.
func spinWorkload(name string, n int64) *workloads.Workload {
	return &workloads.Workload{
		Name: name,
		Src:  spinSrc,
		Setup: func(mem *interp.Memory, s workloads.Scale) workloads.Instance {
			vals := make([]float64, 64)
			for i := range vals {
				vals[i] = float64(i)
			}
			pa := mem.AllocF64(vals)
			return workloads.Instance{Args: []uint64{interp.ArgPtr(pa), interp.ArgI64(n)}}
		},
	}
}

func oneTileConfig(name string) *config.SystemConfig {
	return &config.SystemConfig{
		Name:  name,
		Cores: []config.CoreSpec{{Core: config.InOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}
}

// TestRunCancelMidSimulation is the engine's promptness contract: cancelling
// the context mid-run returns a wrapped context.Canceled within 100ms.
func TestRunCancelMidSimulation(t *testing.T) {
	w := spinWorkload("spin-cancel", 1_000_000)
	s, err := NewSession(Options{
		Workload:             w,
		Config:               oneTileConfig("spin-cancel"),
		Cache:                NewCache(),
		DisableCycleSkipping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm the trace so the cancel lands in the Run stage, not the DTG.
	if _, err := s.Artifact(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(ctx)
		done <- err
	}()
	// Wait for BuildSystem to hand off to the simulation loop (System()
	// becomes non-nil exactly then) so the cancel measurably lands mid-run;
	// the 100ms promptness contract is about the run stage, and the system
	// build under the race detector alone can exceed it.
	buildDeadline := time.Now().Add(10 * time.Second)
	for s.System() == nil {
		if time.Now().After(buildDeadline) {
			t.Fatal("system never built")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		waited := time.Since(start)
		if err == nil {
			t.Fatal("run finished before the cancel landed; enlarge spinWorkload's n")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want a chain wrapping context.Canceled", err)
		}
		var se *StageError
		if !errors.As(err, &se) || se.Stage != StageRun {
			t.Errorf("err = %v, want a StageError attributed to the run stage", err)
		}
		if waited > 100*time.Millisecond {
			t.Errorf("run returned %v after cancel, promised within 100ms", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestRunPreCanceledContext: a context that is already dead fails fast without
// simulating, and the error still unwraps to context.Canceled.
func TestRunPreCanceledContext(t *testing.T) {
	w := spinWorkload("spin-precancel", 1_000_000)
	s, err := NewSession(Options{
		Workload: w,
		Config:   oneTileConfig("spin-precancel"),
		Cache:    NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("pre-canceled run took %v, want a fast return", d)
	}
}

// TestRunDeadlineReportsBudgets: a timed-out run wraps DeadlineExceeded and
// the message names both the deadline and the cycle limit it ran under.
func TestRunDeadlineReportsBudgets(t *testing.T) {
	w := spinWorkload("spin-deadline", 1_000_000)
	s, err := NewSession(Options{
		Workload:             w,
		Config:               oneTileConfig("spin-deadline"),
		Cache:                NewCache(),
		DisableCycleSkipping: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Artifact(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = s.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadline") || !strings.Contains(msg, "cycle limit") {
		t.Errorf("timeout error %q should report the deadline and the cycle limit", msg)
	}
}

// TestCacheSharesArtifacts: sessions with the same key and cache share one
// traced artifact; a different cache re-traces.
func TestCacheSharesArtifacts(t *testing.T) {
	w, err := workloads.Resolve("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	mk := func(cache *Cache) *Artifact {
		s, err := NewSession(Options{Workload: w, Scale: workloads.Tiny, Tiles: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		art, err := s.Artifact(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return art
	}
	a1, a2 := mk(c), mk(c)
	if a1 != a2 {
		t.Error("same key and cache produced distinct artifacts; cache is not sharing")
	}
	if a3 := mk(NewCache()); a3 == a1 {
		t.Error("distinct caches returned the same artifact pointer")
	}
}

// TestCacheSingleflight: concurrent sessions with the same key build the
// artifact exactly once.
func TestCacheSingleflight(t *testing.T) {
	w, err := workloads.Resolve("spmv")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	const callers = 8
	arts := make([]*Artifact, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSession(Options{Workload: w, Scale: workloads.Tiny, Tiles: 2, Cache: c})
			if err != nil {
				t.Error(err)
				return
			}
			art, err := s.Artifact(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("caller %d got a different artifact; singleflight duplicated work", i)
		}
	}
}

// TestCancelDoesNotPoisonCache: an artifact build that died of cancellation
// is evicted, so the next caller rebuilds instead of inheriting the error.
func TestCancelDoesNotPoisonCache(t *testing.T) {
	w := spinWorkload("spin-poison", 50_000)
	c := NewCache()
	s, err := NewSession(Options{Workload: w, Tiles: 1, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Artifact(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled artifact build returned %v, want context.Canceled", err)
	}
	if _, err := s.Artifact(context.Background()); err != nil {
		t.Fatalf("artifact slot stayed poisoned after a canceled build: %v", err)
	}
}

// TestStageErrorAttribution: a kernel that fails to compile reports the
// compile stage and the workload name, and the attribution survives the
// outer stages unchanged.
func TestStageErrorAttribution(t *testing.T) {
	w := &workloads.Workload{
		Name: "broken",
		Src:  "void kernel() { oops(); }",
		Setup: func(mem *interp.Memory, s workloads.Scale) workloads.Instance {
			return workloads.Instance{}
		},
	}
	s, err := NewSession(Options{Workload: w, Tiles: 1, Config: oneTileConfig("broken"), Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background())
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StageError", err)
	}
	if se.Stage != StageCompile || se.Kernel != "broken" {
		t.Errorf("attribution = %s/%s, want compile/broken", se.Stage, se.Kernel)
	}
}

func TestNewSessionValidation(t *testing.T) {
	w, err := workloads.Resolve("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := NewSession(Options{Workload: w, Tiles: 3, Slicing: SliceDAE}); err == nil {
		t.Error("odd DAE tile count accepted")
	}
	if _, err := NewSession(Options{Workload: w, Tiles: 3, Config: oneTileConfig("mismatch")}); err == nil {
		t.Error("tile/config core-count mismatch accepted")
	}
	// Tiles derives from the config when unset.
	s, err := NewSession(Options{Workload: w, Config: config.XeonSystem(4)})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.Key(); k.Tiles != 4 {
		t.Errorf("derived tile count = %d, want 4", k.Tiles)
	}
}

func TestReportBeforeRun(t *testing.T) {
	w, err := workloads.Resolve("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(Options{Workload: w, Tiles: 1, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	var se *StageError
	if _, err := s.Report(); !errors.As(err, &se) || se.Stage != StageReport {
		t.Errorf("Report before Run returned %v, want a report-stage error", err)
	}
}
