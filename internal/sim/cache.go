package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sync"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/replay"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Key identifies one cached pipeline artifact by content: the kernel's name
// and source hash, the workload scale, the traced tile count, the slicing
// mode, and the topology hash. Two sessions asking for the same key share
// one compilation and one tracing run no matter which driver they belong to.
type Key struct {
	Kernel  string
	SrcHash uint64
	Scale   workloads.Scale
	Tiles   int
	Mode    SliceMode
	// Topo hashes the per-tile role sequence — the trace-relevant
	// projection of the topology. Deliberately excluded: core kinds,
	// clocks, memory, NoC — none of them affect the traced artifact, so
	// sessions over different microarchitectures keep sharing traces.
	Topo uint64
}

// KeyOf builds the artifact cache key for a workload at a tile count, with
// the role sequence the slicing mode implies (all-SPMD, or alternating
// access/execute pairs for SliceDAE).
func KeyOf(w *workloads.Workload, scale workloads.Scale, tiles int, mode SliceMode) Key {
	return KeyFor(w, scale, tiles, mode, rolesOf(mode, tiles))
}

// KeyFor builds the artifact cache key for an explicit per-tile role
// sequence (empty-string roles are SPMD). SrcHash covers both the kernel
// source and the canonical hash of the workload's optimization config, so
// the same source compiled at different opt levels (or pass lists, or
// unroll factors) yields distinct keys across every cache layer — compiled
// kernels, DDGs, traces, and recorded replay schedules never alias across
// opt levels; a replay lookup under a different opt level misses and falls
// back to a full run with a declared reason.
func KeyFor(w *workloads.Workload, scale workloads.Scale, tiles int, mode SliceMode, roles []string) Key {
	h := fnv.New64a()
	h.Write([]byte(w.Src))
	var opt [8]byte
	binary.LittleEndian.PutUint64(opt[:], w.Opt.Hash())
	h.Write(opt[:])
	return Key{Kernel: w.Name, SrcHash: h.Sum64(), Scale: scale, Tiles: tiles, Mode: mode, Topo: topoHash(mode, tiles, roles)}
}

// rolesOf is the role sequence a slicing mode implies over tiles with no
// declared roles.
func rolesOf(mode SliceMode, tiles int) []string {
	roles := make([]string, tiles)
	if mode == SliceDAE {
		for i := range roles {
			roles[i] = config.RoleAccess
			if i%2 == 1 {
				roles[i] = config.RoleExecute
			}
		}
	}
	return roles
}

// topoHash hashes the effective role sequence. Topologies that declare no
// roles hash identically to the sequence their slicing mode implies, so
// legacy Cores configs and declarative Tiles configs describing the same
// system share artifacts.
func topoHash(mode SliceMode, tiles int, roles []string) uint64 {
	eff := rolesOf(mode, tiles)
	for i, r := range roles {
		if i < len(eff) && r != "" && r != config.RoleSPMD {
			eff[i] = r
		}
	}
	h := fnv.New64a()
	for _, r := range eff {
		h.Write([]byte(r))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// schedKey identifies one recorded timing schedule: the traced artifact's
// key plus the structural hash of the system configuration it ran under
// (replay.StructHash — timing-only knob deltas hash equal, so a sweep leg
// finds the schedule; structural deltas hash differently, so they miss and
// fall back to full simulation by construction).
type schedKey struct {
	Key
	Struct uint64
}

// kernelKey identifies a compiled kernel (and its DAE slices) independent of
// scale and tile count.
type kernelKey struct {
	Kernel  string
	SrcHash uint64
}

// Artifact bundles the cacheable outputs of the Compile → DDG → Trace
// stages. SPMD artifacts fill Fn/Graph/Trace; DAE artifacts additionally
// carry the access/execute slices and their graphs (Graph is the unsliced
// kernel's).
type Artifact struct {
	Fn    *ir.Function
	Graph *ddg.Graph
	Trace *trace.Trace

	Slices       *dae.Slices
	AccessGraph  *ddg.Graph
	ExecuteGraph *ddg.Graph
}

// sliced is the cached result of the DAE compiler pass on one kernel.
type sliced struct {
	slices  *dae.Slices
	access  *ddg.Graph
	execute *ddg.Graph
}

// flight is one singleflight slot: the first caller builds, everyone else
// waits on done. A slot that finished with a context error is evicted so the
// cancellation of one session never poisons the cache for the others.
// completed is guarded by the owning Cache's mutex and marks the slot as
// holding a final value — only completed slots are LRU-evictable, since an
// in-flight slot still has joiners arriving through the map.
type flight[T any] struct {
	done      chan struct{}
	val       T
	err       error
	completed bool
}

// layer is one content-keyed singleflight map plus its LRU bookkeeping.
// order holds keys from least- to most-recently used; it is maintained only
// while the owning cache is bounded-or-instrumented, which every cache is,
// and its O(n) touch is fine at the entry counts a cap implies (hundreds).
type layer[K comparable, T any] struct {
	m     map[K]*flight[T]
	order []K
}

func newLayer[K comparable, T any]() layer[K, T] {
	return layer[K, T]{m: map[K]*flight[T]{}}
}

// touch moves key to the most-recently-used end.
func (l *layer[K, T]) touch(key K) {
	for i, k := range l.order {
		if k == key {
			copy(l.order[i:], l.order[i+1:])
			l.order[len(l.order)-1] = key
			return
		}
	}
	l.order = append(l.order, key)
}

// remove drops key from the map and the LRU order.
func (l *layer[K, T]) remove(key K) {
	delete(l.m, key)
	for i, k := range l.order {
		if k == key {
			l.order = append(l.order[:i], l.order[i+1:]...)
			return
		}
	}
}

// evictOver drops least-recently-used completed entries until the layer is
// within max entries, bumping evicted once per drop. In-flight entries are
// skipped: their builders and joiners still reach them through the map.
func (l *layer[K, T]) evictOver(max int, evicted *int64) {
	if max <= 0 {
		return
	}
	for i := 0; len(l.m) > max && i < len(l.order); {
		key := l.order[i]
		if f := l.m[key]; f != nil && f.completed {
			l.remove(key)
			*evicted++
			continue // order shifted down; re-check index i
		}
		i++
	}
}

// CacheCounters is a point-in-time snapshot of a cache's lookup and
// eviction activity. Hits include singleflight joins of in-flight builds —
// a deduplicated build is exactly the work a hit saves.
type CacheCounters struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Cache is the engine's content-keyed artifact store. It unifies what used
// to be three private caches — the experiment runner's trace and DAE caches
// and the workload suite's per-instance compile singleflight — behind one
// concurrency-safe, context-aware singleflight per layer (compiled kernels,
// kernel graphs, DAE slices, traced artifacts).
//
// A cache is unbounded by default (the right shape for one-shot CLI sweeps
// over a finite workload list). Long-running daemons call SetMaxEntries to
// bound each layer with LRU eviction so artifact memory cannot grow without
// limit; singleflight semantics are unchanged — an evicted key simply
// rebuilds on next use.
type Cache struct {
	mu      sync.Mutex
	max     int // per-layer entry cap; 0 = unbounded
	hits    int64
	misses  int64
	evicted int64

	replayHits      int64
	replayFallbacks int64
	replayRecorded  int64

	kernels layer[kernelKey, *ir.Function]
	graphs  layer[kernelKey, *ddg.Graph]
	slices  layer[kernelKey, *sliced]
	arts    layer[Key, *Artifact]
	scheds  layer[schedKey, *replay.Schedule]

	// imported stages traces restored from a store (ImportArtifact) for
	// lazy adoption by Artifact builds; see persist.go.
	imported map[Key]*trace.Trace
}

// NewCache builds an empty, unbounded cache.
func NewCache() *Cache {
	return &Cache{
		kernels: newLayer[kernelKey, *ir.Function](),
		graphs:  newLayer[kernelKey, *ddg.Graph](),
		slices:  newLayer[kernelKey, *sliced](),
		arts:    newLayer[Key, *Artifact](),
		scheds:  newLayer[schedKey, *replay.Schedule](),
	}
}

// SetMaxEntries bounds every layer of the cache at n entries, evicting
// least-recently-used completed entries beyond it (n <= 0 restores the
// unbounded default). The traced-artifact layer dominates memory — traces
// are the large artifact — but the kernel-level layers obey the same cap so
// no layer grows without limit.
func (c *Cache) SetMaxEntries(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = n
	if n > 0 {
		c.kernels.evictOver(n, &c.evicted)
		c.graphs.evictOver(n, &c.evicted)
		c.slices.evictOver(n, &c.evicted)
		c.arts.evictOver(n, &c.evicted)
		c.scheds.evictOver(n, &c.evicted)
	}
}

// Counters returns a snapshot of the cache's hit/miss/eviction counters.
func (c *Cache) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{Hits: c.hits, Misses: c.misses, Evictions: c.evicted}
}

// Entries returns the total live entries across all layers (in-flight
// included).
func (c *Cache) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.kernels.m) + len(c.graphs.m) + len(c.slices.m) + len(c.arts.m) + len(c.scheds.m)
}

// ReplayCounters is a point-in-time snapshot of the cache's schedule-replay
// activity: Hits counts runs answered analytically from a recorded schedule,
// Fallbacks counts runs that found a schedule but whose config delta the
// classifier declared ineligible (full simulation ran instead), and Recorded
// counts schedules captured and published. Cold runs with no schedule under
// their key count in none of the three.
type ReplayCounters struct {
	Hits      int64
	Fallbacks int64
	Recorded  int64
}

// ReplayCounters returns a snapshot of the schedule-replay counters.
func (c *Cache) ReplayCounters() ReplayCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ReplayCounters{Hits: c.replayHits, Fallbacks: c.replayFallbacks, Recorded: c.replayRecorded}
}

// noteReplay records the outcome of one replay attempt that found a
// schedule: a hit (replayed) or a fallback (classifier declined).
func (c *Cache) noteReplay(hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit {
		c.replayHits++
	} else {
		c.replayFallbacks++
	}
}

// Schedule returns the recorded schedule for (key, structHash), or nil if
// none is resident. Unlike the singleflight layers there is no build slot:
// recording rides along a full simulation, so lookups are pure peeks (they
// do refresh the entry's LRU position).
func (c *Cache) Schedule(key Key, structHash uint64) *replay.Schedule {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk := schedKey{Key: key, Struct: structHash}
	f, ok := c.scheds.m[sk]
	if !ok || !f.completed || f.err != nil {
		return nil
	}
	c.scheds.touch(sk)
	return f.val
}

// PutSchedule publishes a recorded schedule under (key, structHash).
// First writer wins: concurrent sweep legs may each record the same
// schedule, and the one already resident is the one later legs already
// replayed against, so a second publish is dropped. Reports whether the
// schedule was stored.
func (c *Cache) PutSchedule(key Key, structHash uint64, s *replay.Schedule) bool {
	if s == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sk := schedKey{Key: key, Struct: structHash}
	if _, ok := c.scheds.m[sk]; ok {
		return false
	}
	done := make(chan struct{})
	close(done)
	c.scheds.m[sk] = &flight[*replay.Schedule]{done: done, val: s, completed: true}
	c.scheds.touch(sk)
	c.replayRecorded++
	c.scheds.evictOver(c.max, &c.evicted)
	return true
}

// HasArtifact reports whether the traced artifact for key is resident and
// completed. It is a peek — it neither counts as a lookup nor refreshes the
// entry's LRU position — so callers can attribute an upcoming stage as a
// hit or miss without disturbing the cache.
func (c *Cache) HasArtifact(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.arts.m[key]
	return ok && f.completed && f.err == nil
}

// DefaultCache is the process-wide artifact cache sessions use unless their
// options name another: every driver in one process (CLI sweeps, examples,
// benchmarks) shares compilations and traces through it.
var DefaultCache = NewCache()

// isCtxErr reports whether err came from a cancelled or expired context.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// single is the context-aware singleflight: the first caller for key runs
// build; concurrent callers block until it finishes (or their own ctx is
// cancelled) and share the result. Results are cached until evicted, except
// context errors, which evict the slot immediately so the next caller
// retries.
func single[K comparable, T any](ctx context.Context, c *Cache, l *layer[K, T], key K, build func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		f, ok := l.m[key]
		if !ok {
			f = &flight[T]{done: make(chan struct{})}
			l.m[key] = f
			l.touch(key)
			c.misses++
			c.mu.Unlock()
			f.val, f.err = build()
			c.mu.Lock()
			f.completed = true
			if f.err != nil && isCtxErr(f.err) {
				// Evict before closing done: a joiner that wakes and retries
				// must not find this dead slot still in the map.
				if l.m[key] == f {
					l.remove(key)
				}
			} else {
				l.evictOver(c.max, &c.evicted)
			}
			c.mu.Unlock()
			close(f.done)
			return f.val, f.err
		}
		c.hits++
		l.touch(key)
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && isCtxErr(f.err) {
				// The builder's context died, not ours: retry unless ours
				// is gone too.
				if ctx.Err() != nil {
					var zero T
					return zero, ctx.Err()
				}
				continue
			}
			return f.val, f.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
