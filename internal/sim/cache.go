package sim

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"

	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Key identifies one cached pipeline artifact by content: the kernel's name
// and source hash, the workload scale, the traced tile count, and the
// slicing mode. Two sessions asking for the same key share one compilation
// and one tracing run no matter which driver they belong to.
type Key struct {
	Kernel  string
	SrcHash uint64
	Scale   workloads.Scale
	Tiles   int
	Mode    SliceMode
}

// KeyOf builds the artifact cache key for a workload at a tile count.
func KeyOf(w *workloads.Workload, scale workloads.Scale, tiles int, mode SliceMode) Key {
	h := fnv.New64a()
	h.Write([]byte(w.Src))
	return Key{Kernel: w.Name, SrcHash: h.Sum64(), Scale: scale, Tiles: tiles, Mode: mode}
}

// kernelKey identifies a compiled kernel (and its DAE slices) independent of
// scale and tile count.
type kernelKey struct {
	Kernel  string
	SrcHash uint64
}

// Artifact bundles the cacheable outputs of the Compile → DDG → Trace
// stages. SPMD artifacts fill Fn/Graph/Trace; DAE artifacts additionally
// carry the access/execute slices and their graphs (Graph is the unsliced
// kernel's).
type Artifact struct {
	Fn    *ir.Function
	Graph *ddg.Graph
	Trace *trace.Trace

	Slices       *dae.Slices
	AccessGraph  *ddg.Graph
	ExecuteGraph *ddg.Graph
}

// sliced is the cached result of the DAE compiler pass on one kernel.
type sliced struct {
	slices  *dae.Slices
	access  *ddg.Graph
	execute *ddg.Graph
}

// flight is one singleflight slot: the first caller builds, everyone else
// waits on done. A slot that finished with a context error is evicted so the
// cancellation of one session never poisons the cache for the others.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Cache is the engine's content-keyed artifact store. It unifies what used
// to be three private caches — the experiment runner's trace and DAE caches
// and the workload suite's per-instance compile singleflight — behind one
// concurrency-safe, context-aware singleflight per layer (compiled kernels,
// kernel graphs, DAE slices, traced artifacts).
type Cache struct {
	mu      sync.Mutex
	kernels map[kernelKey]*flight[*ir.Function]
	graphs  map[kernelKey]*flight[*ddg.Graph]
	slices  map[kernelKey]*flight[*sliced]
	arts    map[Key]*flight[*Artifact]
}

// NewCache builds an empty cache.
func NewCache() *Cache {
	return &Cache{
		kernels: map[kernelKey]*flight[*ir.Function]{},
		graphs:  map[kernelKey]*flight[*ddg.Graph]{},
		slices:  map[kernelKey]*flight[*sliced]{},
		arts:    map[Key]*flight[*Artifact]{},
	}
}

// DefaultCache is the process-wide artifact cache sessions use unless their
// options name another: every driver in one process (CLI sweeps, examples,
// benchmarks) shares compilations and traces through it.
var DefaultCache = NewCache()

// isCtxErr reports whether err came from a cancelled or expired context.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// single is the context-aware singleflight: the first caller for key runs
// build; concurrent callers block until it finishes (or their own ctx is
// cancelled) and share the result. Results are cached forever, except
// context errors, which evict the slot so the next caller retries.
func single[K comparable, T any](ctx context.Context, c *Cache, m map[K]*flight[T], key K, build func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		f, ok := m[key]
		if !ok {
			f = &flight[T]{done: make(chan struct{})}
			m[key] = f
			c.mu.Unlock()
			f.val, f.err = build()
			if f.err != nil && isCtxErr(f.err) {
				c.mu.Lock()
				if m[key] == f {
					delete(m, key)
				}
				c.mu.Unlock()
			}
			close(f.done)
			return f.val, f.err
		}
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil && isCtxErr(f.err) {
				// The builder's context died, not ours: retry unless ours
				// is gone too.
				if ctx.Err() != nil {
					var zero T
					return zero, ctx.Err()
				}
				continue
			}
			return f.val, f.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
