// Package metrics is MosaicSim-Go's instrumentation layer: a small,
// dependency-free registry of counters, gauges, and histograms that renders
// itself in the Prometheus text exposition format. It exists so the serving
// layer (internal/jobs, internal/server, cmd/mosaicd) can expose live
// operational state — jobs by state, queue depth, stage latencies,
// artifact-cache hits — to any Prometheus-compatible scraper without pulling
// a client library into the module.
//
// The registry is deliberately tiny: fixed metric families registered once at
// startup (registration is not expected on hot paths), lock-free counter and
// gauge updates, and a mutex-guarded histogram whose Observe cost is one
// lock plus a linear bucket scan. Families render in registration order, and
// instruments within a family in their registration order, so /metrics
// output is deterministic for a given startup sequence.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key/value pairs attached to one instrument. Two
// instruments of the same family (name) with different labels are distinct
// time series, e.g. jobs_total{state="done"} vs jobs_total{state="failed"}.
type Labels map[string]string

// render returns the label set in canonical `{k="v",...}` form (keys sorted,
// values escaped), or "" for an empty set.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// instrument is one time series: it writes its sample lines given its
// family name and rendered labels.
type instrument interface {
	write(w io.Writer, name, labels string)
}

// series pairs an instrument with its labels inside a family.
type series struct {
	labels string
	inst   instrument
}

// family groups every series sharing one metric name, type, and help string.
type family struct {
	name, help, typ string
	series          []series
	keys            map[string]bool // rendered label sets, for duplicate detection
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register adds one series, creating its family on first use. It panics on a
// name registered under two types or a duplicate (name, labels) pair — both
// are programming errors in startup code, not runtime conditions.
func (r *Registry) register(name, help, typ string, labels Labels, inst instrument) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, keys: map[string]bool{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	ls := labels.render()
	if f.keys[ls] {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, ls))
	}
	f.keys[ls] = true
	f.series = append(f.series, series{labels: ls, inst: inst})
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, c)
	return c
}

// CounterVec is a family of counters distinguished by one label whose values
// arrive at runtime (e.g. tenant names), unlike the fixed label sets startup
// code registers. Series are created lazily on first use and registered into
// the family like any other, so they render in first-use order.
type CounterVec struct {
	r          *Registry
	name, help string
	label      string
	extra      Labels
	mu         sync.Mutex
	byValue    map[string]*Counter
}

// CounterVec registers a lazily-populated counter family keyed by one label.
// extra labels (may be nil) are constant across every series.
func (r *Registry) CounterVec(name, help, label string, extra Labels) *CounterVec {
	return &CounterVec{r: r, name: name, help: help, label: label, extra: extra, byValue: map[string]*Counter{}}
}

// With returns the counter for one label value, creating and registering its
// series on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.byValue[value]; c != nil {
		return c
	}
	ls := Labels{v.label: value}
	for k, val := range v.extra {
		ls[k] = val
	}
	c := v.r.Counter(v.name, v.help, ls)
	v.byValue[value] = c
	return c
}

// counterFunc samples an external monotonic value at scrape time (e.g. a
// cache's internal hit counter).
type counterFunc func() int64

func (f counterFunc) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, f())
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	r.register(name, help, "counter", labels, counterFunc(fn))
}

// gaugeFunc samples an external level at scrape time (e.g. a derived ratio).
type gaugeFunc func() float64

func (f gaugeFunc) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %g\n", name, labels, f())
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, gaugeFunc(fn))
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, g)
	return g
}

// DefBuckets are the default histogram buckets, in seconds: the standard
// latency ladder from 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram accumulates observations into cumulative buckets plus a running
// sum and count, exactly as the Prometheus histogram type expects.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending, +Inf implicit
	counts []uint64  // per-bound non-cumulative counts; counts[len(bounds)] = +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of quantile q (0..1) by linear interpolation
// within the owning bucket, the same estimate PromQL's histogram_quantile
// computes. It returns 0 with no observations; values beyond the last finite
// bucket clamp to that bound.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	lower := 0.0
	for i, bound := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if float64(cum) >= rank {
			if h.counts[i] == 0 {
				return bound
			}
			frac := (rank - float64(prev)) / float64(h.counts[i])
			return lower + (bound-lower)*math.Min(1, math.Max(0, frac))
		}
		lower = bound
	}
	// Observation(s) above the last finite bucket: clamp, as PromQL does.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Merge `le` into any existing label set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count)
}

// Histogram registers and returns a histogram series with the given bucket
// upper bounds (nil selects DefBuckets). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending at %v", name, buckets[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...), counts: make([]uint64, len(buckets)+1)}
	r.register(name, help, "histogram", labels, h)
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE headers followed by one line per
// sample, families in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.inst.write(w, f.name, s.labels)
		}
	}
}
