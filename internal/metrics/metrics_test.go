package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs by terminal state.", Labels{"state": "done"})
	c2 := r.Counter("jobs_total", "Jobs by terminal state.", Labels{"state": "failed"})
	g := r.Gauge("queue_depth", "Queued jobs.", nil)
	c.Inc()
	c.Add(2)
	c2.Inc()
	g.Set(7)
	g.Add(-3)
	out := render(r)
	for _, want := range []string{
		"# HELP jobs_total Jobs by terminal state.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order: jobs_total before queue_depth.
	if strings.Index(out, "jobs_total") > strings.Index(out, "queue_depth") {
		t.Errorf("families out of registration order:\n%s", out)
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.CounterFunc("cache_hits_total", "h", nil, func() int64 { return v })
	v++
	if out := render(r); !strings.Contains(out, "cache_hits_total 42") {
		t.Errorf("CounterFunc not sampled at scrape time:\n%s", out)
	}
}

func TestHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "Stage latency.", Labels{"stage": "run"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	out := render(r)
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="run",le="0.1"} 1`,
		`stage_seconds_bucket{stage="run",le="1"} 2`,
		`stage_seconds_bucket{stage="run",le="+Inf"} 3`,
		`stage_seconds_sum{stage="run"} 5.55`,
		`stage_seconds_count{stage="run"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "q", nil, []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in le=1
	}
	if got := h.Quantile(0.5); got <= 0 || got > 1 {
		t.Errorf("p50 = %v, want within (0,1]", got)
	}
	h.Observe(100) // above last finite bucket
	if got := h.Quantile(0.999); math.Abs(got-4) > 1e-9 {
		t.Errorf("overflow quantile = %v, want clamp to 4", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h", Labels{"k": "a\"b\\c\nd"})
	if out := render(r); !strings.Contains(out, `m{k="a\"b\\c\nd"} 0`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "h", Labels{"a": "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (name, labels) registration did not panic")
		}
	}()
	r.Counter("dup", "h", Labels{"a": "1"})
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tm", "h", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("same name under two types did not panic")
		}
	}()
	r.Gauge("tm", "h", nil)
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc", "h", nil)
	h := r.Histogram("hh", "h", nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
