package ir

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// OptConfig selects which optimization passes run over a freshly built module.
// The zero value is O0: no passes, bit-identical to the unoptimized build.
//
// A config is resolved to a concrete pass list either from a named level
// (O0/O1/O2) or from an explicit Passes list, which overrides the level. The
// resolved list — not the raw fields — is the canonical identity of the
// config: Hash is computed over it, so `Level:"O0"`, `Level:""`, and an empty
// explicit list all alias, while any two configs that would run a different
// pass sequence (or the same sequence with a different unroll factor) never
// collide. sim.KeyFor folds Hash into SrcHash, which is what keeps artifact
// cache entries and recorded replay schedules for different opt levels
// distinct structures.
type OptConfig struct {
	// Level is a named optimization level: "O0" (or "", the default),
	// "O1", or "O2".
	Level string
	// Passes is an explicit ordered pass list (names from PassNames).
	// When non-empty it overrides Level.
	Passes []string
	// Unroll is the loop-unrolling factor used by the "unroll" pass.
	// 0 selects the default factor (4); 1 disables unrolling; values
	// above MaxUnroll are rejected.
	Unroll int
}

// DefaultUnroll is the loop-unrolling factor used when OptConfig.Unroll is 0.
const DefaultUnroll = 4

// MaxUnroll bounds the accepted loop-unrolling factor.
const MaxUnroll = 16

// PassNames lists the implemented pass names in canonical order.
var PassNames = []string{"constfold", "dce", "cse", "strength", "unroll"}

// levelPasses maps each named level to its deterministic pass ordering.
// O2 re-runs constfold and cse after unrolling so the cloned iterations are
// cleaned up, and finishes with dce so identities rewritten by strength
// reduction leave no dead residue.
var levelPasses = map[string][]string{
	"O0": nil,
	"O1": {"constfold", "dce"},
	"O2": {"constfold", "strength", "cse", "unroll", "constfold", "cse", "dce"},
}

// ParseOptConfig builds an OptConfig from CLI-style inputs: level is "0", "1",
// "2" (with or without the "O" prefix; empty means O0), passes is an optional
// comma-separated explicit pass list overriding the level, and unroll is the
// loop-unrolling factor (0 = default). The returned config is validated.
func ParseOptConfig(level, passes string, unroll int) (OptConfig, error) {
	cfg := OptConfig{Unroll: unroll}
	switch l := strings.ToUpper(strings.TrimSpace(level)); l {
	case "", "0", "O0":
		cfg.Level = "O0"
	case "1", "O1":
		cfg.Level = "O1"
	case "2", "O2":
		cfg.Level = "O2"
	default:
		return OptConfig{}, fmt.Errorf("ir: unknown opt level %q (have O0, O1, O2)", level)
	}
	if s := strings.TrimSpace(passes); s != "" {
		for _, name := range strings.Split(s, ",") {
			cfg.Passes = append(cfg.Passes, strings.TrimSpace(name))
		}
	}
	if _, err := cfg.PassList(); err != nil {
		return OptConfig{}, err
	}
	return cfg, nil
}

// PassList resolves the config to its concrete ordered pass-name list,
// validating pass names, the level, and the unroll factor.
func (c OptConfig) PassList() ([]string, error) {
	if c.Unroll < 0 || c.Unroll > MaxUnroll {
		return nil, fmt.Errorf("ir: unroll factor %d out of range [0, %d]", c.Unroll, MaxUnroll)
	}
	if len(c.Passes) > 0 {
		for _, name := range c.Passes {
			if !knownPass(name) {
				return nil, fmt.Errorf("ir: unknown pass %q (have %s)", name, strings.Join(PassNames, ", "))
			}
		}
		return c.Passes, nil
	}
	level := c.Level
	if level == "" {
		level = "O0"
	}
	passes, ok := levelPasses[level]
	if !ok {
		return nil, fmt.Errorf("ir: unknown opt level %q (have O0, O1, O2)", c.Level)
	}
	return passes, nil
}

func knownPass(name string) bool {
	for _, p := range PassNames {
		if p == name {
			return true
		}
	}
	return false
}

// UnrollFactor returns the effective loop-unrolling factor.
func (c OptConfig) UnrollFactor() int {
	if c.Unroll == 0 {
		return DefaultUnroll
	}
	return c.Unroll
}

// IsDefault reports whether the config is the zero O0 config (no passes, no
// explicit fields set).
func (c OptConfig) IsDefault() bool {
	return (c.Level == "" || c.Level == "O0") && len(c.Passes) == 0 && c.Unroll == 0
}

// Hash returns the canonical 64-bit identity of the config: an FNV-1a hash
// over the resolved pass list, with the effective unroll factor appended only
// when the "unroll" pass is in the list (a factor attached to a config that
// never unrolls does not change what runs, so it must not change the hash).
// Invalid configs hash over their raw fields; they fail later at compile.
func (c OptConfig) Hash() uint64 {
	h := fnv.New64a()
	passes, err := c.PassList()
	if err != nil {
		fmt.Fprintf(h, "invalid|%s|%s|%d", c.Level, strings.Join(c.Passes, ","), c.Unroll)
		return h.Sum64()
	}
	for _, name := range passes {
		h.Write([]byte(name))
		h.Write([]byte{0})
		if name == "unroll" {
			fmt.Fprintf(h, "x%d", c.UnrollFactor())
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// String renders the config for CLI headers: the level name (or "custom" for
// an explicit pass list) followed by the resolved pass sequence, e.g.
// "O2 [constfold strength cse unroll:4 constfold cse dce]".
func (c OptConfig) String() string {
	passes, err := c.PassList()
	if err != nil {
		return "invalid opt config: " + err.Error()
	}
	if len(passes) == 0 {
		return "O0"
	}
	name := c.Level
	if len(c.Passes) > 0 {
		name = "custom"
	}
	parts := make([]string, len(passes))
	for i, p := range passes {
		if p == "unroll" {
			p = fmt.Sprintf("unroll:%d", c.UnrollFactor())
		}
		parts[i] = p
	}
	return fmt.Sprintf("%s [%s]", name, strings.Join(parts, " "))
}
