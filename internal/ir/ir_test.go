package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// vecAddSrc is the paper's Figure 3 example: for (i=0;i<4;i++) C[i]=A[i]+B[i],
// expressed in the textual IR.
const vecAddSrc = `
module vecadd
global @A f64 16
global @B f64 16
global @C f64 16

func @kernel(%A: ptr, %B: ptr, %C: ptr, %n: i64) {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i.next, %loop]
  %pa = gep %A, %i, 8
  %a = load f64, %pa
  %pb = gep %B, %i, 8
  %b = load f64, %pb
  %sum = fadd %a, %b
  %pc = gep %C, %i, 8
  store %sum, %pc
  %i.next = add %i, 1
  %done = icmp eq %i.next, %n
  condbr %done, %exit, %loop
exit:
  ret
}
`

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int64
	}{
		{I1, 1}, {I8, 1}, {I32, 4}, {I64, 8}, {F32, 4}, {F64, 8}, {Ptr, 8}, {Void, 0},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.ty, got, c.size)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	for _, ty := range []Type{I1, I8, I32, I64} {
		if !ty.IsInt() || ty.IsFloat() {
			t.Errorf("%s should be int-only", ty)
		}
	}
	for _, ty := range []Type{F32, F64} {
		if !ty.IsFloat() || ty.IsInt() {
			t.Errorf("%s should be float-only", ty)
		}
	}
}

func TestTypeRoundTrip(t *testing.T) {
	for _, ty := range []Type{Void, I1, I8, I32, I64, F32, F64, Ptr} {
		got, ok := TypeFromName(ty.String())
		if !ok || got != ty {
			t.Errorf("TypeFromName(%q) = %v, %v", ty.String(), got, ok)
		}
	}
	if _, ok := TypeFromName("i128"); ok {
		t.Error("TypeFromName accepted unknown type")
	}
}

func TestOpcodeRoundTrip(t *testing.T) {
	for op := Opcode(1); op < numOpcodes; op++ {
		got, ok := OpcodeFromName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeFromName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	for _, op := range []Opcode{OpBr, OpCondBr, OpRet} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Opcode{OpLoad, OpStore, OpAtomicAdd} {
		if !op.IsMemory() {
			t.Errorf("%s should be a memory op", op)
		}
	}
	if OpAdd.IsTerminator() || OpAdd.IsMemory() {
		t.Error("add misclassified")
	}
}

func TestConstValues(t *testing.T) {
	c := ConstInt(I64, -42)
	if c.Int() != -42 {
		t.Errorf("ConstInt round trip: got %d", c.Int())
	}
	f := ConstFloat(F64, 3.5)
	if f.Float() != 3.5 {
		t.Errorf("ConstFloat round trip: got %g", f.Float())
	}
	f32 := ConstFloat(F32, 1.25)
	if f32.Float() != 1.25 {
		t.Errorf("ConstFloat f32 round trip: got %g", f32.Float())
	}
	if !strings.Contains(ConstBool(true).Name(), "1") {
		t.Errorf("ConstBool(true).Name() = %q", ConstBool(true).Name())
	}
}

func TestParseVecAdd(t *testing.T) {
	m, err := Parse(vecAddSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Ident != "vecadd" {
		t.Errorf("module name = %q", m.Ident)
	}
	if len(m.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(m.Globals))
	}
	f := m.Func("kernel")
	if f == nil {
		t.Fatal("kernel not found")
	}
	if len(f.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(f.Params))
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(f.Blocks))
	}
	loop := f.BlockByName("loop")
	if loop == nil {
		t.Fatal("loop block missing")
	}
	if got := len(loop.Instrs); got != 11 {
		t.Errorf("loop has %d instrs, want 11", got)
	}
	phi := loop.Instrs[0]
	if phi.Op != OpPhi || len(phi.Args) != 2 || len(phi.Incoming) != 2 {
		t.Errorf("first loop instr should be a 2-way phi, got %v", phi)
	}
	term := loop.Terminator()
	if term == nil || term.Op != OpCondBr {
		t.Errorf("loop terminator = %v, want condbr", term)
	}
	if term.Targets[0].Ident != "exit" || term.Targets[1].Ident != "loop" {
		t.Errorf("condbr targets = %q, %q", term.Targets[0].Ident, term.Targets[1].Ident)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m1 := MustParse(vecAddSrc)
	text := m1.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, text)
	}
	if m2.String() != text {
		t.Errorf("print/parse/print not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, m2.String())
	}
}

func TestAssignIDs(t *testing.T) {
	m := MustParse(vecAddSrc)
	f := m.Func("kernel")
	f.AssignIDs()
	if f.NumInstrs() != 13 {
		t.Errorf("NumInstrs = %d, want 13", f.NumInstrs())
	}
	// 4 params + 9 result-producing instructions (store/br/condbr/ret have none).
	if f.NumValues() != 13 {
		t.Errorf("NumValues = %d, want 13", f.NumValues())
	}
	seen := map[int]bool{}
	for _, in := range f.Instrs() {
		if in.HasResult() {
			if seen[in.ID] {
				t.Errorf("duplicate value ID %d", in.ID)
			}
			seen[in.ID] = true
		}
	}
	if got := f.InstrByIdx(0).Op; got != OpBr {
		t.Errorf("InstrByIdx(0) = %s, want br", got)
	}
	if got := f.InstrByIdx(f.NumInstrs() - 1).Op; got != OpRet {
		t.Errorf("last instr = %s, want ret", got)
	}
	if f.InstrByIdx(f.NumInstrs()) != nil {
		t.Error("InstrByIdx out of range should be nil")
	}
}

func TestBuilderConstructsVerifiableLoop(t *testing.T) {
	m := NewModule("built")
	b := NewBuilder(m)
	a := NewParam("A", Ptr)
	n := NewParam("n", I64)
	b.NewFunc("sumk", a, n)
	entry := b.Cur
	loop := b.Block("loop")
	exit := b.Block("exit")
	b.SetBlock(entry)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(I64)
	acc := b.Phi(F64)
	p := b.GEP(a, i, 8)
	v := b.Load(F64, p)
	acc2 := b.FAdd(acc, v)
	i2 := b.Add(i, ConstInt(I64, 1))
	done := b.ICmp(PredEQ, i2, n)
	b.CondBr(done, exit, loop)
	AddIncoming(i, ConstInt(I64, 0), entry)
	AddIncoming(i, i2, loop)
	AddIncoming(acc, ConstFloat(F64, 0), entry)
	AddIncoming(acc, acc2, loop)
	b.SetBlock(exit)
	st := b.GEP(a, ConstInt(I64, 0), 8)
	b.Store(acc2, st)
	b.Ret(nil)
	if err := b.Finish(); err != nil {
		t.Fatalf("builder-made function fails verification: %v", err)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"missing terminator",
			"func @f(%n: i64) {\nentry:\n  %x = add %n, 1\n}\n",
			"terminator",
		},
		{
			"use before def",
			"func @f(%n: i64) {\nentry:\n  %y = add %x, 1\n  %x = add %n, 1\n  ret\n}\n",
			"before its definition",
		},
		{
			"phi wrong preds",
			"func @f(%n: i64) {\nentry:\n  br %b\nb:\n  %p = phi i64 [1, %entry], [2, %b]\n  ret\n}\n",
			"predecessor",
		},
		{
			"float op int operand",
			"func @f(%n: i64) {\nentry:\n  %x = fadd %n, %n\n  ret\n}\n",
			"non-float",
		},
		{
			"condbr non-bool",
			"func @f(%n: i64) {\nentry:\n  condbr %n, %a, %b\na:\n  ret\nb:\n  ret\n}\n",
			"i1",
		},
		{
			"unknown block target",
			"func @f(%n: i64) {\nentry:\n  br %nowhere\n}\n",
			"nowhere",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err.Error(), c.want)
			}
		})
	}
}

func TestVerifyModuleDuplicates(t *testing.T) {
	m := NewModule("dup")
	m.AddGlobal("g", I64, 4)
	m.AddGlobal("g", I64, 4)
	b := NewBuilder(m)
	b.NewFunc("f")
	b.Ret(nil)
	err := VerifyModule(m)
	if err == nil || !strings.Contains(err.Error(), "duplicate global") {
		t.Errorf("want duplicate-global error, got %v", err)
	}
}

func TestCFGAndDominators(t *testing.T) {
	src := `
func @diamond(%c: i1) {
entry:
  condbr %c, %then, %els
then:
  br %join
els:
  br %join
join:
  ret
}
`
	m := MustParse(src)
	f := m.Func("diamond")
	cfg := BuildCFG(f)
	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if len(cfg.Preds[join.ID]) != 2 {
		t.Errorf("join preds = %d, want 2", len(cfg.Preds[join.ID]))
	}
	if cfg.IDom[join.ID] != entry {
		t.Errorf("idom(join) = %v, want entry", cfg.IDom[join.ID])
	}
	if !cfg.Dominates(entry, join) || !cfg.Dominates(entry, then) {
		t.Error("entry should dominate everything")
	}
	if cfg.Dominates(then, join) || cfg.Dominates(els, join) {
		t.Error("branch arms must not dominate the join")
	}
	if !cfg.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
	kids := cfg.DomTreeChildren(entry)
	if len(kids) != 3 {
		t.Errorf("entry dom-tree children = %d, want 3", len(kids))
	}
}

func TestCFGLoop(t *testing.T) {
	m := MustParse(vecAddSrc)
	f := m.Func("kernel")
	cfg := BuildCFG(f)
	loop := f.BlockByName("loop")
	if len(cfg.Preds[loop.ID]) != 2 {
		t.Errorf("loop preds = %d, want 2 (entry + itself)", len(cfg.Preds[loop.ID]))
	}
	if cfg.IDom[loop.ID] != f.Entry() {
		t.Error("idom(loop) should be entry")
	}
	if got := len(cfg.RPO); got != 3 {
		t.Errorf("RPO covers %d blocks, want 3", got)
	}
	if cfg.RPO[0] != f.Entry() {
		t.Error("RPO must start at entry")
	}
}

func TestUnreachableBlockTolerated(t *testing.T) {
	src := `
func @f(%n: i64) {
entry:
  ret
dead:
  br %dead
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("unreachable blocks should verify: %v", err)
	}
	cfg := BuildCFG(m.Func("f"))
	if cfg.Reachable(m.Func("f").BlockByName("dead")) {
		t.Error("dead block should be unreachable")
	}
}

func TestMemoryInstrAccessors(t *testing.T) {
	m := MustParse(vecAddSrc)
	f := m.Func("kernel")
	var load, store *Instr
	for _, in := range f.Instrs() {
		switch in.Op {
		case OpLoad:
			if load == nil {
				load = in
			}
		case OpStore:
			store = in
		}
	}
	if load == nil || store == nil {
		t.Fatal("expected load and store in vecadd")
	}
	if load.AddrOperand() == nil || load.AccessType() != F64 {
		t.Errorf("load accessors wrong: addr=%v ty=%v", load.AddrOperand(), load.AccessType())
	}
	if store.AddrOperand() == nil || store.AccessType() != F64 {
		t.Errorf("store accessors wrong: addr=%v ty=%v", store.AddrOperand(), store.AccessType())
	}
	if add := f.InstrByIdx(1); add.AddrOperand() != nil {
		t.Error("non-memory op should have nil AddrOperand")
	}
}

func TestCallParsing(t *testing.T) {
	src := `
func @k() {
entry:
  %tid = call i64 tile_id()
  %nt = call i64 num_tiles()
  call void send(%tid, %nt)
  %v = call i64 recv(%tid)
  %r = call f64 sqrt(2.0)
  ret
}
`
	m := MustParse(src)
	f := m.Func("k")
	instrs := f.Instrs()
	if instrs[0].Callee != "tile_id" || instrs[0].Ty != I64 || len(instrs[0].Args) != 0 {
		t.Errorf("tile_id parsed wrong: %+v", instrs[0])
	}
	if instrs[2].Callee != "send" || instrs[2].Ty != Void || len(instrs[2].Args) != 2 {
		t.Errorf("send parsed wrong: %+v", instrs[2])
	}
	if instrs[4].Callee != "sqrt" || instrs[4].Args[0].Type() != F64 {
		t.Errorf("sqrt parsed wrong: %+v", instrs[4])
	}
}

func TestGlobalValue(t *testing.T) {
	g := &Global{Ident: "A", Elem: F64, Count: 100}
	if g.Type() != Ptr {
		t.Error("global should evaluate to a pointer")
	}
	if g.ByteSize() != 800 {
		t.Errorf("ByteSize = %d, want 800", g.ByteSize())
	}
}

// TestRoundTripProperty: randomly built straight-line functions survive
// print -> parse -> print as a fixed point.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModule("rt")
		b := NewBuilder(m)
		pa := NewParam("a", I64)
		pb := NewParam("b", I64)
		pf := NewParam("x", F64)
		pp := NewParam("p", Ptr)
		b.NewFunc("k", pa, pb, pf, pp)
		intVals := []Value{pa, pb}
		fltVals := []Value{pf}
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				v := b.Add(intVals[rng.Intn(len(intVals))], ConstInt(I64, int64(rng.Intn(100))))
				intVals = append(intVals, v)
			case 1:
				v := b.Mul(intVals[rng.Intn(len(intVals))], intVals[rng.Intn(len(intVals))])
				intVals = append(intVals, v)
			case 2:
				v := b.FAdd(fltVals[rng.Intn(len(fltVals))], ConstFloat(F64, float64(rng.Intn(50))+0.5))
				fltVals = append(fltVals, v)
			case 3:
				addr := b.GEP(pp, intVals[rng.Intn(len(intVals))], 8)
				v := b.Load(F64, addr)
				fltVals = append(fltVals, v)
			case 4:
				addr := b.GEP(pp, intVals[rng.Intn(len(intVals))], 8)
				b.Store(fltVals[rng.Intn(len(fltVals))], addr)
			case 5:
				v := b.ICmp(PredLT, intVals[rng.Intn(len(intVals))], intVals[rng.Intn(len(intVals))])
				v2 := b.Select(v, intVals[rng.Intn(len(intVals))], intVals[rng.Intn(len(intVals))])
				intVals = append(intVals, v2)
			}
		}
		b.Ret(nil)
		if err := b.Finish(); err != nil {
			t.Logf("builder verify: %v", err)
			return false
		}
		text1 := m.String()
		m2, err := Parse(text1)
		if err != nil {
			t.Logf("reparse: %v\n%s", err, text1)
			return false
		}
		text2 := m2.String()
		if text1 != text2 {
			t.Logf("not a fixed point:\n%s\nvs\n%s", text1, text2)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
