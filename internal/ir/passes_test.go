package ir

import (
	"strings"
	"testing"
)

// runPasses parses src, runs the named passes over it, and returns the module.
func runPasses(t *testing.T, src string, passes ...string) *Module {
	t.Helper()
	m := MustParse(src)
	p, err := NewPipeline(OptConfig{Passes: passes})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if err := p.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return m
}

func countOps(f *Function, op Opcode) int {
	n := 0
	for _, in := range f.Instrs() {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestConstFoldArithChain(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr) {
entry:
  %a = add 2, 3
  %b = mul %a, 4
  %p = gep %P, %b, 8
  store %b, %p
  ret
}
`, "constfold")
	f := m.Func("kernel")
	if got := countOps(f, OpAdd) + countOps(f, OpMul); got != 0 {
		t.Fatalf("constant arithmetic not folded, %d ops remain:\n%s", got, f)
	}
	st := f.Instrs()[1]
	c, ok := st.Args[0].(*Const)
	if st.Op != OpStore || !ok || c.Bits != 20 {
		t.Fatalf("store operand not folded to 20:\n%s", f)
	}
}

func TestConstFoldBranchAndPhi(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr) {
entry:
  %c = icmp lt 1, 2
  condbr %c, %then, %else
then:
  br %join
else:
  br %join
join:
  %x = phi i64 [7, %then], [9, %else]
  %p = gep %P, %x, 8
  store %x, %p
  ret
}
`, "constfold")
	f := m.Func("kernel")
	if len(f.Blocks) != 3 {
		t.Fatalf("dead branch arm not pruned, %d blocks remain:\n%s", len(f.Blocks), f)
	}
	if got := countOps(f, OpPhi); got != 0 {
		t.Fatalf("single-incoming phi not forwarded:\n%s", f)
	}
	st := f.BlockByName("join").Instrs[1]
	if c, ok := st.Args[0].(*Const); !ok || c.Bits != 7 {
		t.Fatalf("store did not receive the taken-arm constant:\n%s", f)
	}
}

func TestConstFoldKeepsDivByZero(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr) {
entry:
  %d = sdiv 1, 0
  store %d, %P
  ret
}
`, "constfold")
	if got := countOps(m.Func("kernel"), OpSDiv); got != 1 {
		t.Fatalf("sdiv by zero must not fold (interp traps at runtime):\n%s", m.Func("kernel"))
	}
}

func TestDCERemovesPureKeepsMemory(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr, %a: i64, %b: i64) {
entry:
  %dead = add %a, %b
  %chain = mul %dead, 3
  %l = load i64, %P
  %z = sdiv %a, 0
  ret
}
`, "dce")
	f := m.Func("kernel")
	if got := countOps(f, OpAdd) + countOps(f, OpMul); got != 0 {
		t.Fatalf("dead pure chain not removed:\n%s", f)
	}
	if countOps(f, OpLoad) != 1 {
		t.Fatalf("dead load must be kept (observable in the memory trace):\n%s", f)
	}
	if countOps(f, OpSDiv) != 1 {
		t.Fatalf("dead sdiv with zero divisor must be kept (interp traps):\n%s", f)
	}
}

func TestCSEDeduplicatesDominatedComputations(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr, %a: i64, %b: i64) {
entry:
  %x = add %a, %b
  %y = add %a, %b
  %p = gep %P, %x, 8
  %q = gep %P, %y, 8
  store %x, %p
  store %y, %q
  ret
}
`, "cse")
	f := m.Func("kernel")
	if got := countOps(f, OpAdd); got != 1 {
		t.Fatalf("duplicate add not merged, %d remain:\n%s", got, f)
	}
	if got := countOps(f, OpGEP); got != 1 {
		t.Fatalf("geps should merge once operands do, %d remain:\n%s", got, f)
	}
}

func TestCSESkipsNonDominatingSiblings(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr, %a: i64, %c: i1) {
entry:
  condbr %c, %t, %f
t:
  %x = add %a, 1
  store %x, %P
  br %join
f:
  %y = add %a, 1
  store %y, %P
  br %join
join:
  ret
}
`, "cse")
	f := m.Func("kernel")
	if got := countOps(f, OpAdd); got != 2 {
		t.Fatalf("sibling branches must not CSE into each other, %d adds remain:\n%s", got, f)
	}
}

func TestStrengthReduction(t *testing.T) {
	m := runPasses(t, `
module m
func @kernel(%P: ptr, %a: i64) {
entry:
  %m8 = mul %a, 8
  %id = add %a, 0
  %z = mul %a, 0
  %p = gep %P, %m8, 8
  store %id, %p
  store %z, %p
  ret
}
`, "strength")
	f := m.Func("kernel")
	if countOps(f, OpMul) != 0 || countOps(f, OpShl) != 1 {
		t.Fatalf("mul-by-8 should become one shl:\n%s", f)
	}
	if countOps(f, OpAdd) != 0 {
		t.Fatalf("x+0 should forward its operand:\n%s", f)
	}
	sts := []*Instr{}
	for _, in := range f.Instrs() {
		if in.Op == OpStore {
			sts = append(sts, in)
		}
	}
	if _, ok := sts[0].Args[0].(*Param); !ok {
		t.Fatalf("first store should receive %%a directly:\n%s", f)
	}
	if c, ok := sts[1].Args[0].(*Const); !ok || c.Bits != 0 {
		t.Fatalf("second store should receive constant 0:\n%s", f)
	}
}

const unrollLoopSrc = `
module m
func @kernel(%A: ptr, %n: i64) {
entry:
  br %head
head:
  %i = phi i64 [0, %entry], [%i.next, %latch]
  %c = icmp lt %i, %n
  condbr %c, %body, %exit
body:
  %p = gep %A, %i, 8
  %v = load i64, %p
  %v2 = add %v, 1
  store %v2, %p
  br %latch
latch:
  %i.next = add %i, 1
  br %head
exit:
  %last = gep %A, %i, 8
  store %i, %last
  ret
}
`

func TestLoopUnroll(t *testing.T) {
	m := MustParse(unrollLoopSrc)
	p, err := NewPipeline(OptConfig{Passes: []string{"unroll"}, Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(m); err != nil {
		t.Fatalf("unroll pipeline: %v", err)
	}
	f := m.Func("kernel")
	// 5 original blocks + 3 copies of the 3-block loop.
	if len(f.Blocks) != 14 {
		t.Fatalf("expected 14 blocks after 4x unroll, got %d:\n%s", len(f.Blocks), f)
	}
	// Every copy retains its exit check.
	if got := countOps(f, OpCondBr); got != 4 {
		t.Fatalf("expected 4 exit checks after 4x unroll, got %d:\n%s", got, f)
	}
	// The header's back edge now comes from the last cloned latch.
	phi := f.BlockByName("head").Instrs[0]
	found := false
	for _, from := range phi.Incoming {
		if from.Ident == "latch.u3" {
			found = true
		}
	}
	if !found {
		t.Fatalf("header phi not rewired to the final copy's latch:\n%s", f)
	}
	// %i escapes the loop into the exit block: it must have been routed
	// through an LCSSA phi covering all four headers.
	exit := f.BlockByName("exit")
	lc := exit.Instrs[0]
	if lc.Op != OpPhi || len(lc.Incoming) != 4 {
		t.Fatalf("expected a 4-way LCSSA phi in the exit block:\n%s", f)
	}
}

func TestLoopUnrollSkipsRotatedAndNestedLoops(t *testing.T) {
	// vecAddSrc's loop is rotated (the header is its own latch) and must be
	// left alone; a nested loop's outer header must also be skipped while
	// the inner loop unrolls.
	m := MustParse(vecAddSrc)
	before := len(m.Func("kernel").Blocks)
	p, err := NewPipeline(OptConfig{Passes: []string{"unroll"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Func("kernel").Blocks); got != before {
		t.Fatalf("rotated loop should not unroll: %d -> %d blocks", before, got)
	}

	nested := `
module m
func @kernel(%A: ptr, %n: i64) {
entry:
  br %ohead
ohead:
  %i = phi i64 [0, %entry], [%i.next, %olatch]
  %oc = icmp lt %i, %n
  condbr %oc, %ihead, %oexit
ihead:
  %j = phi i64 [0, %ohead], [%j.next, %ilatch]
  %ic = icmp lt %j, %n
  condbr %ic, %ibody, %iexit
ibody:
  %p = gep %A, %j, 8
  store %j, %p
  br %ilatch
ilatch:
  %j.next = add %j, 1
  br %ihead
iexit:
  br %olatch
olatch:
  %i.next = add %i, 1
  br %ohead
oexit:
  ret
}
`
	m2 := MustParse(nested)
	if err := p.Run(m2); err != nil {
		t.Fatal(err)
	}
	f2 := m2.Func("kernel")
	if f2.BlockByName("ihead.u1") == nil {
		t.Fatalf("inner loop should unroll:\n%s", f2)
	}
	if f2.BlockByName("ohead.u1") != nil {
		t.Fatalf("outer loop must not unroll (not innermost):\n%s", f2)
	}
}

func TestPipelineO2EndToEnd(t *testing.T) {
	cfg := OptConfig{Level: "O2"}
	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Passes) < 5 {
		t.Fatalf("O2 should run at least 5 passes, got %d", len(p.Passes))
	}
	m := MustParse(unrollLoopSrc)
	if err := p.Run(m); err != nil {
		t.Fatalf("O2 pipeline: %v", err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatalf("O2 output fails verification: %v", err)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	render := func() string {
		m := MustParse(unrollLoopSrc)
		p, err := NewPipeline(OptConfig{Level: "O2"})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(m); err != nil {
			t.Fatal(err)
		}
		return m.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("O2 pipeline output not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestOptConfigHash(t *testing.T) {
	var zero OptConfig
	o0 := OptConfig{Level: "O0"}
	o1 := OptConfig{Level: "O1"}
	o2 := OptConfig{Level: "O2"}
	if zero.Hash() != o0.Hash() {
		t.Fatal("zero config must hash as O0")
	}
	if o0.Hash() == o2.Hash() || o1.Hash() == o2.Hash() || o0.Hash() == o1.Hash() {
		t.Fatal("distinct levels must hash distinctly")
	}
	// The unroll factor only matters when the unroll pass actually runs.
	if (OptConfig{Level: "O1", Unroll: 8}).Hash() != o1.Hash() {
		t.Fatal("unroll factor must not perturb a pipeline without unroll")
	}
	if (OptConfig{Level: "O2", Unroll: 8}).Hash() == o2.Hash() {
		t.Fatal("unroll factor must distinguish pipelines that unroll")
	}
	// An explicit pass list identical to a level's resolution aliases it.
	passes, err := o2.PassList()
	if err != nil {
		t.Fatal(err)
	}
	if (OptConfig{Passes: passes}).Hash() != o2.Hash() {
		t.Fatal("explicit O2 pass list must hash like O2")
	}
}

func TestParseOptConfig(t *testing.T) {
	for _, lvl := range []string{"", "0", "O0", "o0"} {
		cfg, err := ParseOptConfig(lvl, "", 0)
		if err != nil || !cfg.IsDefault() {
			t.Fatalf("ParseOptConfig(%q) = %+v, %v; want default O0", lvl, cfg, err)
		}
	}
	cfg, err := ParseOptConfig("2", "", 0)
	if err != nil || cfg.Level != "O2" {
		t.Fatalf("ParseOptConfig(2) = %+v, %v", cfg, err)
	}
	cfg, err = ParseOptConfig("", "constfold, dce", 0)
	if err != nil || len(cfg.Passes) != 2 {
		t.Fatalf("explicit pass list: %+v, %v", cfg, err)
	}
	if _, err := ParseOptConfig("3", "", 0); err == nil {
		t.Fatal("unknown level must error")
	}
	if _, err := ParseOptConfig("", "constfolded", 0); err == nil {
		t.Fatal("unknown pass must error")
	}
	if _, err := ParseOptConfig("2", "", MaxUnroll+1); err == nil {
		t.Fatal("out-of-range unroll must error")
	}
	if got := (OptConfig{Level: "O2"}).String(); !strings.Contains(got, "unroll:4") {
		t.Fatalf("String should render the effective unroll factor, got %q", got)
	}
}

// TestLoopUnrollLCSSAAllExitUses is a regression test: the LCSSA rewrite
// inserts phis into the exit block while scanning it, and an in-place
// insertion used to shift later instructions past the scan, leaving their
// loop-defined operands pointing at the original header phi (and so losing
// every cloned iteration's update). Every exit-block use of a loop value
// must read an .lcssa phi with one incoming per retained exit check.
func TestLoopUnrollLCSSAAllExitUses(t *testing.T) {
	m := MustParse(`
module m
func @kernel(%A: ptr, %n: i64) {
entry:
  br %head
head:
  %i = phi i64 [0, %entry], [%i.next, %latch]
  %a = phi i64 [1, %entry], [%a.next, %latch]
  %b = phi i64 [2, %entry], [%b.next, %latch]
  %c = icmp lt %i, %n
  condbr %c, %body, %exit
body:
  %a.next = add %a, 3
  %b.next = add %b, 5
  br %latch
latch:
  %i.next = add %i, 1
  br %head
exit:
  %p0 = gep %A, 0, 8
  store %a, %p0
  %p1 = gep %A, 1, 8
  store %b, %p1
  %p2 = gep %A, 2, 8
  store %i, %p2
  ret
}
`)
	p, err := NewPipeline(OptConfig{Passes: []string{"unroll"}, Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("kernel")
	var exit *Block
	for _, b := range f.Blocks {
		if b.Ident == "exit" {
			exit = b
		}
	}
	if exit == nil {
		t.Fatal("exit block missing after unroll")
	}
	stores := 0
	for _, in := range exit.Instrs {
		if in.Op != OpStore {
			continue
		}
		stores++
		d, ok := in.Args[0].(*Instr)
		if !ok || d.Op != OpPhi || d.Parent != exit {
			t.Fatalf("store %d reads %v, want an lcssa phi in exit", stores, in.Args[0])
		}
		if len(d.Incoming) != 4 {
			t.Fatalf("lcssa phi %s has %d incomings, want 4", d.Ident, len(d.Incoming))
		}
	}
	if stores != 3 {
		t.Fatalf("expected 3 stores in exit, found %d", stores)
	}
}
