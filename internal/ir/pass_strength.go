package ir

import "math/bits"

// strengthReduce rewrites integer operations into cheaper equivalents:
// multiplication by a power-of-two constant becomes a shift, and algebraic
// identities (x*1, x+0, x-0, x|0, x^0, shifts by 0) forward the untouched
// operand while x*0 and x&0 become the zero constant. Everything here is
// exact under the interpreter's modulo-2^width arithmetic; deliberately out
// of scope are signed division by powers of two (an arithmetic shift rounds
// toward negative infinity, sdiv toward zero) and all floating-point
// identities (x+0.0 and x*1.0 are not bit-identities under -0.0 and NaN).
// Identity forwarding additionally requires the forwarded operand's declared
// type to equal the instruction's result type, so every downstream consumer
// keeps interpreting the value at the same width.
type strengthReduce struct{}

func (strengthReduce) Name() string { return "strength" }

func (p strengthReduce) Run(f *Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); {
			in := b.Instrs[i]
			fwd, remove, rewrote := p.reduce(in)
			if rewrote {
				changed = true
			}
			if remove {
				replaceUses(f, in, fwd)
				removeInstr(b, i)
				changed = true
				continue
			}
			i++
		}
	}
	return changed
}

// constOperand returns (other operand, constant, true) when either operand of
// a commutative instruction is a constant, preferring the right-hand side.
func constOperand(in *Instr) (Value, *Const, bool) {
	if k, ok := in.Args[1].(*Const); ok {
		return in.Args[0], k, true
	}
	if k, ok := in.Args[0].(*Const); ok {
		return in.Args[1], k, true
	}
	return nil, nil, false
}

// reduce inspects one instruction and either rewrites it in place (mul→shl,
// reported via rewrote), or returns a replacement value for its uses plus
// remove=true, or leaves it alone.
func (p strengthReduce) reduce(in *Instr) (fwd Value, remove, rewrote bool) {
	if !in.Ty.IsInt() {
		return nil, false, false
	}
	switch in.Op {
	case OpMul:
		x, k, ok := constOperand(in)
		if !ok {
			return nil, false, false
		}
		switch v := foldSignExt(k.Bits, k.Ty); {
		case v == 0:
			return &Const{Ty: in.Ty, Bits: 0}, true, false
		case v == 1 && x.Type() == in.Ty:
			return x, true, false
		case v > 1 && v&(v-1) == 0:
			// x * 2^s == x << s modulo 2^64, so the truncated results agree
			// at every width.
			in.Op = OpShl
			in.Args = []Value{x, &Const{Ty: in.Ty, Bits: uint64(bits.TrailingZeros64(uint64(v)))}}
			return nil, false, true
		}
	case OpAdd:
		if x, k, ok := constOperand(in); ok && foldSignExt(k.Bits, k.Ty) == 0 && x.Type() == in.Ty {
			return x, true, false
		}
	case OpSub, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		x := in.Args[0]
		if k, ok := in.Args[1].(*Const); ok && foldSignExt(k.Bits, k.Ty) == 0 && x.Type() == in.Ty {
			return x, true, false
		}
	case OpAnd:
		if _, k, ok := constOperand(in); ok && foldSignExt(k.Bits, k.Ty) == 0 {
			return &Const{Ty: in.Ty, Bits: 0}, true, false
		}
	}
	return nil, false, false
}
