package ir

import "fmt"

// loopUnroll replicates innermost loop bodies Factor times. The transform
// needs no trip-count analysis because every copy keeps its exit check: the
// original header's conditional branch is cloned into each copy, so the loop
// can still exit after any iteration. What unrolling buys is a longer
// straight-line region for the later constfold/cse pipeline stages and a
// different dynamic-basic-block shape for the timing model — exactly the
// software axis an opt-level sweep explores.
//
// Only loops with a simple, provably safe shape are unrolled:
//
//   - natural loop of a single back edge latch→header, latch ending in an
//     unconditional branch;
//   - the header ends in a condbr whose sole loop-exiting edge is the loop's
//     only exit, and the exit block's only predecessor is the header;
//   - every loop block is dominated by the header and branches only within
//     the loop (no breaks, no returns);
//   - innermost only (no nested back edges), and bounded total growth.
//
// Loop-defined values used after the loop are first rewritten into LCSSA
// phis in the exit block, which then pick up one incoming edge per cloned
// header alongside any pre-existing exit phis.
type loopUnroll struct {
	// Factor is the total iteration count per unrolled body copy (>= 2).
	Factor int
}

// maxUnrollGrowth caps the instructions added per function by this pass.
const maxUnrollGrowth = 2048

func (p *loopUnroll) Name() string { return "unroll" }

func (p *loopUnroll) Run(f *Function) bool {
	if p.Factor < 2 {
		return false
	}
	changed := false
	done := map[*Block]bool{}
	budget := maxUnrollGrowth
	// Unrolling one loop invalidates the CFG analysis, so loops are found
	// and transformed one at a time, headers marked done to guarantee
	// termination (clones never introduce candidates with an unmarked
	// original header except inner copies, which the growth budget bounds).
	for iter := 0; iter < 64; iter++ {
		f.assignIDs()
		cfg := BuildCFG(f)
		cand := findUnrollable(f, cfg, done, (p.Factor - 1), budget)
		if cand == nil {
			return changed
		}
		done[cand.header] = true
		budget -= cand.size * (p.Factor - 1)
		unrollOne(f, cand, p.Factor)
		changed = true
	}
	return changed
}

// unrollCandidate describes one loop that passed every safety check.
type unrollCandidate struct {
	header *Block
	latch  *Block
	exit   *Block
	blocks []*Block // loop blocks in layout order (header first)
	inLoop map[*Block]bool
	size   int // instruction count across the loop
}

// findUnrollable scans blocks in layout order for the first loop meeting the
// shape restrictions, whose cloned growth fits the remaining budget.
func findUnrollable(f *Function, cfg *CFG, done map[*Block]bool, copies, budget int) *unrollCandidate {
	for _, h := range f.Blocks {
		if done[h] || !cfg.Reachable(h) {
			continue
		}
		term := h.Terminator()
		if term == nil || term.Op != OpCondBr {
			continue
		}
		preds := cfg.Preds[h.ID]
		if len(preds) != 2 {
			continue
		}
		var latch *Block
		backEdges := 0
		for _, pp := range preds {
			if cfg.Reachable(pp) && cfg.Dominates(h, pp) {
				latch = pp
				backEdges++
			}
		}
		if backEdges != 1 || latch == h {
			continue
		}
		if lt := latch.Terminator(); lt == nil || lt.Op != OpBr {
			continue
		}
		// Natural loop of the back edge: blocks reaching the latch without
		// passing the header.
		inLoop := map[*Block]bool{h: true}
		work := []*Block{latch}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if inLoop[b] {
				continue
			}
			inLoop[b] = true
			work = append(work, cfg.Preds[b.ID]...)
		}
		cand := &unrollCandidate{header: h, latch: latch, inLoop: inLoop}
		if !checkUnrollShape(f, cfg, cand, term) {
			continue
		}
		if cand.size*copies > budget {
			continue
		}
		return cand
	}
	return nil
}

// checkUnrollShape validates every structural restriction on cand, filling
// in its exit, ordered block list, and size.
func checkUnrollShape(f *Function, cfg *CFG, cand *unrollCandidate, term *Instr) bool {
	h, latch, inLoop := cand.header, cand.latch, cand.inLoop
	// The header's condbr must have exactly one in-loop target; the other is
	// the loop's sole exit.
	switch t0, t1 := inLoop[term.Targets[0]], inLoop[term.Targets[1]]; {
	case t0 && !t1:
		cand.exit = term.Targets[1]
	case t1 && !t0:
		cand.exit = term.Targets[0]
	default:
		return false
	}
	if ep := cfg.Preds[cand.exit.ID]; len(ep) != 1 || ep[0] != h {
		return false
	}
	for _, b := range f.Blocks {
		if !inLoop[b] {
			continue
		}
		cand.blocks = append(cand.blocks, b)
		cand.size += len(b.Instrs)
		if !cfg.Reachable(b) || !cfg.Dominates(h, b) {
			return false
		}
		t := b.Terminator()
		if t == nil {
			return false
		}
		for _, s := range t.Targets {
			if !inLoop[s] && !(b == h && s == cand.exit) {
				return false // a second exit (break or return)
			}
			if s == h && b != latch {
				return false // a second back edge
			}
			// Innermost only: a branch to an in-loop dominator that is not
			// the loop's own back edge marks a nested loop.
			if inLoop[s] && s != h && cfg.Dominates(s, b) {
				return false
			}
		}
		if t.Op == OpRet {
			return false
		}
	}
	return true
}

// unrollOne rewrites one validated loop in place with factor k.
func unrollOne(f *Function, cand *unrollCandidate, k int) {
	h, latch, exit := cand.header, cand.latch, cand.exit

	// Header phis and their back-edge values drive the copy-to-copy value
	// flow; record the latch entry index of each.
	type headerPhi struct {
		phi      *Instr
		latchIdx int
		next     Value // value flowing along the back edge
	}
	var phis []headerPhi
	for _, in := range h.Instrs {
		if in.Op != OpPhi {
			break
		}
		for j, from := range in.Incoming {
			if from == latch {
				phis = append(phis, headerPhi{phi: in, latchIdx: j, next: in.Args[j]})
				break
			}
		}
	}

	// LCSSA: route every outside-the-loop use of a loop-defined value
	// through a phi in the exit block, so cloned headers can contribute
	// their own copy of the value. Uses inside exit phis along the edge
	// from the header stay put — the cloning step extends those directly.
	insertAt := 0
	for insertAt < len(exit.Instrs) && exit.Instrs[insertAt].Op == OpPhi {
		insertAt++
	}
	lcssa := map[*Instr]*Instr{}
	lcssaFor := func(d *Instr) *Instr {
		if p, ok := lcssa[d]; ok {
			return p
		}
		p := &Instr{
			Op: OpPhi, Ty: d.Ty, Ident: d.Ident + ".lcssa",
			Args: []Value{d}, Incoming: []*Block{h}, Parent: exit,
		}
		exit.Instrs = append(exit.Instrs[:insertAt], append([]*Instr{p}, exit.Instrs[insertAt:]...)...)
		insertAt++
		lcssa[d] = p
		return p
	}
	for _, b := range f.Blocks {
		if cand.inLoop[b] {
			continue
		}
		// Snapshot: lcssaFor inserts phis into exit.Instrs mid-walk, and an
		// in-place append would shift later instructions past the ranged
		// length, silently skipping their uses.
		instrs := append([]*Instr(nil), b.Instrs...)
		for _, in := range instrs {
			if _, isNew := lcssa[in]; isNew {
				continue // the lcssa phis themselves keep their loop operand
			}
			for j, a := range in.Args {
				d, ok := a.(*Instr)
				if !ok || !cand.inLoop[d.Parent] {
					continue
				}
				if in.Op == OpPhi && cand.inLoop[in.Incoming[j]] {
					continue // exit-phi entry along the header edge
				}
				in.Args[j] = lcssaFor(d)
			}
		}
	}

	// Original incoming values of the exit phis along the header edge, to be
	// re-resolved per copy.
	type exitPhi struct {
		phi *Instr
		v   Value
	}
	var exitPhis []exitPhi
	for _, in := range exit.Instrs {
		if in.Op != OpPhi {
			break
		}
		for j, from := range in.Incoming {
			if from == h {
				exitPhis = append(exitPhis, exitPhi{phi: in, v: in.Args[j]})
				break
			}
		}
	}

	resolve := func(m map[Value]Value, v Value) Value {
		if nv, ok := m[v]; ok {
			return nv
		}
		return v
	}

	prevVals := map[Value]Value{}
	var cloneHeaders, cloneLatches []*Block
	for i := 1; i < k; i++ {
		vals := map[Value]Value{}
		blocks := map[*Block]*Block{}
		// The copy's header has no phis: each header phi resolves to the
		// value the previous copy sends along its back edge.
		for _, hp := range phis {
			vals[hp.phi] = resolve(prevVals, hp.next)
		}
		// Pass 1: clone shells so forward references (phi back edges of the
		// original loop body's internal joins) resolve.
		for _, b := range cand.blocks {
			nb := &Block{Ident: fmt.Sprintf("%s.u%d", b.Ident, i), Parent: f}
			blocks[b] = nb
			for _, in := range b.Instrs {
				if b == h && in.Op == OpPhi {
					continue
				}
				ident := in.Ident
				if ident != "" {
					ident = fmt.Sprintf("%s.u%d", ident, i)
				}
				shell := &Instr{
					Op: in.Op, Ty: in.Ty, Ident: ident, Pred: in.Pred,
					Cast: in.Cast, Scale: in.Scale, Callee: in.Callee,
				}
				nb.append(shell)
				vals[in] = shell
			}
		}
		// Pass 2: fill operands, phi incomings, and branch targets.
		for _, b := range cand.blocks {
			nb := blocks[b]
			src := b.Instrs
			if b == h {
				src = src[len(phis):]
			}
			for j, in := range src {
				cl := nb.Instrs[j]
				cl.Args = make([]Value, len(in.Args))
				for ai, a := range in.Args {
					cl.Args[ai] = resolve(vals, a)
				}
				if len(in.Incoming) > 0 {
					cl.Incoming = make([]*Block, len(in.Incoming))
					for bi, from := range in.Incoming {
						cl.Incoming[bi] = blocks[from]
					}
				}
				if len(in.Targets) > 0 {
					cl.Targets = make([]*Block, len(in.Targets))
					for ti, tgt := range in.Targets {
						switch {
						case b == latch && tgt == h:
							// The copy's latch provisionally branches back to
							// the original header; the next copy (or the
							// final stitch) re-targets the previous latch.
							cl.Targets[ti] = h
						case tgt == exit:
							cl.Targets[ti] = exit
						default:
							cl.Targets[ti] = blocks[tgt]
						}
					}
				}
			}
		}
		cloneHeaders = append(cloneHeaders, blocks[h])
		cloneLatches = append(cloneLatches, blocks[latch])
		// The cloned header still exits the loop; extend every exit phi with
		// this copy's edge.
		for _, ep := range exitPhis {
			ep.phi.Args = append(ep.phi.Args, resolve(vals, ep.v))
			ep.phi.Incoming = append(ep.phi.Incoming, blocks[h])
		}
		for _, b := range cand.blocks {
			f.Blocks = append(f.Blocks, blocks[b])
		}
		prevVals = vals
	}
	// Chain the copies only now: each latch falls through into the next
	// copy's header. Rewiring during cloning would corrupt later copies,
	// which clone the original latch's terminator. The final copy's latch
	// already branches back to the original header from cloning.
	chain := latch
	for i, ch := range cloneHeaders {
		chain.Terminator().Targets[0] = ch
		chain = cloneLatches[i]
	}
	// Stitch the final copy's back edge into the original header.
	for _, hp := range phis {
		hp.phi.Incoming[hp.latchIdx] = cloneLatches[len(cloneLatches)-1]
		hp.phi.Args[hp.latchIdx] = resolve(prevVals, hp.next)
	}
}
