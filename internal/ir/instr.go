package ir

import (
	"fmt"
	"sync"
)

// Instr is a single static IR instruction. Instructions are SSA values: an
// instruction that defines a result can be used as an operand elsewhere.
//
// A static instruction corresponds to a node of the static data-dependence
// graph; each dynamic execution of it (one per dynamic basic block, DBB) is a
// node of the dynamic graph the simulator schedules.
type Instr struct {
	Op    Opcode
	Ty    Type    // result type (Void if no result)
	Ident string  // SSA name, without the leading '%'
	Pred  CmpPred // for OpICmp / OpFCmp
	Cast  CastKind

	// Operands in positional order. Conventions per opcode:
	//   binary ops:  [lhs, rhs]
	//   icmp/fcmp:   [lhs, rhs]
	//   select:      [cond, ifTrue, ifFalse]
	//   cast:        [src]
	//   gep:         [base, index]           (byte offset = index * Scale)
	//   load:        [addr]
	//   store:       [value, addr]
	//   atomicadd:   [addr, delta]
	//   phi:         incoming values, aligned with Incoming blocks
	//   br:          []                      (target in Targets[0])
	//   condbr:      [cond]                  (then/else in Targets[0],[1])
	//   ret:         [] or [value]
	//   call:        arguments
	Args []Value

	// Scale is the element stride in bytes for OpGEP.
	Scale int64

	// Incoming lists the predecessor block for each phi operand.
	Incoming []*Block

	// Targets lists successor blocks for br (1) and condbr (2: then, else).
	Targets []*Block

	// Callee is the intrinsic name for OpCall.
	Callee string

	// Parent is the containing basic block.
	Parent *Block

	// ID is the dense per-function value ID assigned by Function.AssignIDs.
	// Parameters and instructions share one ID space.
	ID int

	// Idx is the instruction's position within its function in layout order
	// (used as the static-node ID by the DDG and the simulator).
	Idx int
}

// Type implements Value.
func (in *Instr) Type() Type { return in.Ty }

// Name implements Value.
func (in *Instr) Name() string { return in.Ident }

// HasResult reports whether the instruction defines an SSA value.
func (in *Instr) HasResult() bool { return in.Ty != Void }

// IsTerminator reports whether the instruction ends its basic block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// IsMemory reports whether the instruction accesses simulated memory.
func (in *Instr) IsMemory() bool { return in.Op.IsMemory() }

// AddrOperand returns the operand holding the memory address for load, store
// and atomicadd instructions, or nil for other opcodes.
func (in *Instr) AddrOperand() Value {
	switch in.Op {
	case OpLoad:
		return in.Args[0]
	case OpStore:
		return in.Args[1]
	case OpAtomicAdd:
		return in.Args[0]
	}
	return nil
}

// AccessType returns the scalar type a memory instruction transfers.
func (in *Instr) AccessType() Type {
	switch in.Op {
	case OpLoad, OpAtomicAdd:
		return in.Ty
	case OpStore:
		return in.Args[0].Type()
	}
	return Void
}

func (in *Instr) String() string {
	s := in.Op.String()
	if in.Ident != "" {
		s = "%" + in.Ident + " = " + s
	}
	return fmt.Sprintf("%s (block %s)", s, blockName(in.Parent))
}

func blockName(b *Block) string {
	if b == nil {
		return "<detached>"
	}
	return b.Ident
}

// Block is a basic block: a single-entry, single-exit sequence of
// instructions ending in a terminator. Each dynamic execution of a block is a
// DBB (dynamic basic block) in MosaicSim's execution model.
type Block struct {
	Ident  string
	Instrs []*Instr
	Parent *Function

	// ID is the block's dense index within its function, assigned at
	// Function.AssignIDs time and used as the basic-block ID in control-flow
	// traces.
	ID int
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated (verification rejects both).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's successor blocks in target order.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Targets
}

// append adds an instruction to the end of the block and sets its parent.
func (b *Block) append(in *Instr) *Instr {
	in.Parent = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Function is a kernel: a named collection of basic blocks in layout order,
// with Blocks[0] as the entry block.
type Function struct {
	Ident  string
	Params []*Param
	Blocks []*Block
	Parent *Module

	assignOnce sync.Once
	numValues  int // valid after AssignIDs
	numInstrs  int
}

// Name returns the function's name.
func (f *Function) Name() string { return f.Ident }

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// AssignIDs assigns dense IDs: block IDs in layout order, instruction Idx in
// layout order, and a shared value-ID space over parameters followed by
// result-producing instructions. It must be called (it is idempotent) before
// the function is consumed by the DDG generator, interpreter, or simulator.
// The assignment runs once per function: consumers (ddg.Build, dae.Slice)
// call it defensively on functions that may be shared across concurrent
// sweep legs, and redundant re-writes would race with readers.
func (f *Function) AssignIDs() {
	f.assignOnce.Do(f.assignIDs)
}

func (f *Function) assignIDs() {
	id := 0
	for i, p := range f.Params {
		p.Index = i
		p.ID = id
		id++
	}
	idx := 0
	for bi, b := range f.Blocks {
		b.ID = bi
		for _, in := range b.Instrs {
			in.Idx = idx
			idx++
			if in.HasResult() {
				in.ID = id
				id++
			} else {
				in.ID = -1
			}
		}
	}
	f.numValues = id
	f.numInstrs = idx
}

// NumValues returns the size of the dense value-ID space (parameters plus
// result-producing instructions). Valid after AssignIDs.
func (f *Function) NumValues() int { return f.numValues }

// NumInstrs returns the number of static instructions. Valid after AssignIDs.
func (f *Function) NumInstrs() int { return f.numInstrs }

// InstrByIdx returns the static instruction with the given layout index.
func (f *Function) InstrByIdx(idx int) *Instr {
	for _, b := range f.Blocks {
		if idx < len(b.Instrs) {
			return b.Instrs[idx]
		}
		idx -= len(b.Instrs)
	}
	return nil
}

// Instrs returns all instructions in layout order.
func (f *Function) Instrs() []*Instr {
	out := make([]*Instr, 0, f.numInstrs)
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// BlockByName returns the block with the given label, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Ident == name {
			return b
		}
	}
	return nil
}

// Module is a compilation unit: kernels plus module-level array globals.
type Module struct {
	Ident   string
	Funcs   []*Function
	Globals []*Global
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module { return &Module{Ident: name} }

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Ident == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Ident == name {
			return g
		}
	}
	return nil
}

// AddGlobal declares a module-level array and returns it.
func (m *Module) AddGlobal(name string, elem Type, count int64) *Global {
	g := &Global{Ident: name, Elem: elem, Count: count}
	m.Globals = append(m.Globals, g)
	return g
}
