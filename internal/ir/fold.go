package ir

import "math"

// This file mirrors internal/interp's scalar semantics exactly (signExt,
// truncTo, toFloat, fromFloat and the per-opcode arithmetic), so that
// compile-time folding is bit-identical to running the instruction in the
// interpreter. internal/testgen pins the equivalence over generated kernels;
// any divergence between these helpers and interp is a bug here.

func foldSignExt(bits uint64, ty Type) int64 {
	switch ty {
	case I1:
		return int64(bits & 1)
	case I8:
		return int64(int8(bits))
	case I32:
		return int64(int32(bits))
	default:
		return int64(bits)
	}
}

func foldTrunc(v uint64, ty Type) uint64 {
	switch ty {
	case I1:
		return v & 1
	case I8:
		return v & 0xff
	case I32:
		return v & 0xffffffff
	default:
		return v
	}
}

func foldToFloat(bits uint64, ty Type) float64 {
	if ty == F32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

func foldFromFloat(v float64, ty Type) uint64 {
	if ty == F32 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

func foldCmpInt(p CmpPred, a, b int64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	case PredGE:
		return a >= b
	}
	return false
}

func foldCmpFloat(p CmpPred, a, b float64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredLT:
		return a < b
	case PredLE:
		return a <= b
	case PredGT:
		return a > b
	case PredGE:
		return a >= b
	}
	return false
}

func foldBoolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// foldInstr evaluates in when every operand is a constant, returning the
// result constant or nil when the instruction cannot (or must not) be folded.
// sdiv/srem with a zero divisor are never folded: the interpreter reports a
// runtime error there, and folding would erase it.
func foldInstr(in *Instr) *Const {
	for _, a := range in.Args {
		if _, ok := a.(*Const); !ok {
			return nil
		}
	}
	arg := func(i int) uint64 { return in.Args[i].(*Const).Bits }
	ty := in.Ty
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		a, b := arg(0), arg(1)
		var res uint64
		switch in.Op {
		case OpAdd:
			res = a + b
		case OpSub:
			res = a - b
		case OpMul:
			res = a * b
		case OpSDiv:
			sb := foldSignExt(b, ty)
			if sb == 0 {
				return nil
			}
			res = uint64(foldSignExt(a, ty) / sb)
		case OpSRem:
			sb := foldSignExt(b, ty)
			if sb == 0 {
				return nil
			}
			res = uint64(foldSignExt(a, ty) % sb)
		case OpAnd:
			res = a & b
		case OpOr:
			res = a | b
		case OpXor:
			res = a ^ b
		case OpShl:
			res = a << (b & 63)
		case OpLShr:
			res = foldTrunc(a, ty) >> (b & 63)
		case OpAShr:
			res = uint64(foldSignExt(a, ty) >> (b & 63))
		}
		return &Const{Ty: ty, Bits: foldTrunc(res, ty)}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		a := foldToFloat(arg(0), in.Args[0].Type())
		b := foldToFloat(arg(1), in.Args[1].Type())
		var res float64
		switch in.Op {
		case OpFAdd:
			res = a + b
		case OpFSub:
			res = a - b
		case OpFMul:
			res = a * b
		case OpFDiv:
			res = a / b
		}
		return &Const{Ty: ty, Bits: foldFromFloat(res, ty)}
	case OpICmp:
		a := foldSignExt(arg(0), in.Args[0].Type())
		b := foldSignExt(arg(1), in.Args[1].Type())
		return &Const{Ty: I1, Bits: foldBoolBits(foldCmpInt(in.Pred, a, b))}
	case OpFCmp:
		a := foldToFloat(arg(0), in.Args[0].Type())
		b := foldToFloat(arg(1), in.Args[1].Type())
		return &Const{Ty: I1, Bits: foldBoolBits(foldCmpFloat(in.Pred, a, b))}
	case OpCast:
		src := arg(0)
		srcTy := in.Args[0].Type()
		var res uint64
		switch in.Cast {
		case CastTrunc:
			res = foldTrunc(src, in.Ty)
		case CastZExt:
			res = foldTrunc(src, srcTy)
		case CastSExt:
			res = foldTrunc(uint64(foldSignExt(src, srcTy)), in.Ty)
		case CastSIToFP:
			res = foldFromFloat(float64(foldSignExt(src, srcTy)), in.Ty)
		case CastFPToSI:
			res = foldTrunc(uint64(int64(foldToFloat(src, srcTy))), in.Ty)
		case CastFPExt, CastFPTrunc:
			res = foldFromFloat(foldToFloat(src, srcTy), in.Ty)
		case CastBitcast:
			res = src
		default:
			return nil
		}
		return &Const{Ty: ty, Bits: res}
	}
	return nil
}
