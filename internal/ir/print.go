package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual IR format accepted by Parse.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Ident)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%s %s %d\n", g.Ident, g.Elem, g.Count)
	}
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function in the textual IR format.
func (f *Function) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func @%s(", f.Ident)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%%%s: %s", p.Ident, p.Ty)
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Ident)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", formatInstr(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func operandStr(v Value) string {
	switch x := v.(type) {
	case *Const:
		if x.Ty == I64 || (x.Ty == F64 && strings.ContainsAny(x.Name(), ".e")) {
			return x.Name()
		}
		// Non-default constant types are printed with an explicit type so the
		// round trip through the parser preserves them.
		return x.Ty.String() + " " + x.Name()
	case *Global:
		return "@" + x.Ident
	default:
		return "%" + v.Name()
	}
}

func formatInstr(in *Instr) string {
	var sb strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&sb, "%%%s = ", in.Ident)
	}
	switch in.Op {
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred, operandStr(in.Args[0]), operandStr(in.Args[1]))
	case OpCast:
		fmt.Fprintf(&sb, "cast %s %s, %s", in.Cast, in.Ty, operandStr(in.Args[0]))
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s, %d", operandStr(in.Args[0]), operandStr(in.Args[1]), in.Scale)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Ty, operandStr(in.Args[0]))
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Ty)
		for i := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %%%s]", operandStr(in.Args[i]), in.Incoming[i].Ident)
		}
	case OpBr:
		fmt.Fprintf(&sb, "br %%%s", in.Targets[0].Ident)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, %%%s, %%%s", operandStr(in.Args[0]), in.Targets[0].Ident, in.Targets[1].Ident)
	case OpRet:
		sb.WriteString("ret")
		if len(in.Args) == 1 {
			sb.WriteString(" " + operandStr(in.Args[0]))
		}
	case OpCall:
		fmt.Fprintf(&sb, "call %s %s(", in.Ty, in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(operandStr(a))
		}
		sb.WriteString(")")
	default:
		sb.WriteString(in.Op.String())
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(" " + operandStr(a))
		}
	}
	return sb.String()
}
