// Package ir implements the SSA intermediate representation that MosaicSim-Go
// simulates. It plays the role LLVM IR plays in the original MosaicSim: an
// ISA-agnostic instruction set with explicit basic-block structure from which
// static data-dependence graphs and dynamic traces are derived.
//
// The subset implemented here covers everything the simulator's execution
// model consumes: integer/float arithmetic, comparisons, casts, address
// computation (gep), memory operations, phi nodes, control flow, atomic
// read-modify-write, and intrinsic calls (tile queries, inter-tile send/recv,
// accelerator invocations, math builtins).
package ir

import "fmt"

// Type is the type of an IR value. All types are first-class scalars; arrays
// live in memory and are accessed through pointers, as in LLVM.
type Type uint8

// Scalar types supported by the IR.
const (
	Void Type = iota
	I1        // boolean / 1-bit integer
	I8
	I32
	I64
	F32
	F64
	Ptr // byte-addressed pointer, 8 bytes
)

// Size returns the size of the type in bytes as laid out in simulated memory.
func (t Type) Size() int64 {
	switch t {
	case I1, I8:
		return 1
	case I32, F32:
		return 4
	case I64, F64, Ptr:
		return 8
	default:
		return 0
	}
}

// IsInt reports whether t is an integer type (including I1).
func (t Type) IsInt() bool { return t == I1 || t == I8 || t == I32 || t == I64 }

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I8:
		return "i8"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// TypeFromName parses a type name as used in the textual IR format.
func TypeFromName(s string) (Type, bool) {
	switch s {
	case "void":
		return Void, true
	case "i1":
		return I1, true
	case "i8":
		return I8, true
	case "i32":
		return I32, true
	case "i64":
		return I64, true
	case "f32":
		return F32, true
	case "f64":
		return F64, true
	case "ptr":
		return Ptr, true
	}
	return Void, false
}

// Opcode identifies an IR instruction kind.
type Opcode uint8

// Instruction opcodes.
const (
	OpInvalid Opcode = iota

	// Integer arithmetic and bitwise logic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons (result type I1).
	OpICmp
	OpFCmp

	// Ternary select: select cond, a, b.
	OpSelect

	// Type conversion; the kind is carried in Instr.Cast.
	OpCast

	// Address computation: gep base, index, scale -> base + index*scale.
	OpGEP

	// Memory operations.
	OpLoad
	OpStore

	// Atomic read-modify-write add; returns the old value.
	OpAtomicAdd

	// SSA phi node.
	OpPhi

	// Control flow (block terminators).
	OpBr
	OpCondBr
	OpRet

	// Intrinsic call (tile_id, send, recv, accelerator API, math builtins).
	OpCall

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpSelect: "select", OpCast: "cast", OpGEP: "gep",
	OpLoad: "load", OpStore: "store", OpAtomicAdd: "atomicadd",
	OpPhi: "phi", OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpCall: "call",
}

func (op Opcode) String() string {
	if op < numOpcodes {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// OpcodeFromName parses an opcode mnemonic used by the textual IR format.
func OpcodeFromName(s string) (Opcode, bool) {
	for op := Opcode(1); op < numOpcodes; op++ {
		if opcodeNames[op] == s {
			return op, true
		}
	}
	return OpInvalid, false
}

// IsTerminator reports whether the opcode terminates a basic block. In
// MosaicSim's terminology these are the "terminator nodes" whose completion
// (or speculation past) launches the next dynamic basic block.
func (op Opcode) IsTerminator() bool { return op == OpBr || op == OpCondBr || op == OpRet }

// IsMemory reports whether the opcode accesses simulated memory and therefore
// gets a dynamic cost from the memory hierarchy.
func (op Opcode) IsMemory() bool { return op == OpLoad || op == OpStore || op == OpAtomicAdd }

// HasResult reports whether instructions with this opcode define an SSA value.
func (op Opcode) HasResult() bool {
	switch op {
	case OpStore, OpBr, OpCondBr, OpRet:
		return false
	case OpCall:
		// Calls may or may not produce a value; decided per-instruction.
		return true
	default:
		return true
	}
}

// CmpPred is a comparison predicate for icmp/fcmp. Integer comparisons use
// signed semantics; float comparisons use ordered semantics.
type CmpPred uint8

// Comparison predicates.
const (
	PredEQ CmpPred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

var predNames = [...]string{PredEQ: "eq", PredNE: "ne", PredLT: "lt", PredLE: "le", PredGT: "gt", PredGE: "ge"}

func (p CmpPred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// PredFromName parses a predicate mnemonic.
func PredFromName(s string) (CmpPred, bool) {
	for i, n := range predNames {
		if n == s {
			return CmpPred(i), true
		}
	}
	return PredEQ, false
}

// CastKind distinguishes the conversion performed by an OpCast instruction.
type CastKind uint8

// Cast kinds.
const (
	CastNone CastKind = iota
	CastTrunc
	CastZExt
	CastSExt
	CastSIToFP
	CastFPToSI
	CastFPExt
	CastFPTrunc
	CastBitcast
)

var castNames = [...]string{
	CastNone: "none", CastTrunc: "trunc", CastZExt: "zext", CastSExt: "sext",
	CastSIToFP: "sitofp", CastFPToSI: "fptosi", CastFPExt: "fpext",
	CastFPTrunc: "fptrunc", CastBitcast: "bitcast",
}

func (k CastKind) String() string {
	if int(k) < len(castNames) {
		return castNames[k]
	}
	return fmt.Sprintf("cast(%d)", uint8(k))
}

// CastFromName parses a cast-kind mnemonic.
func CastFromName(s string) (CastKind, bool) {
	for i, n := range castNames {
		if n == s {
			return CastKind(i), true
		}
	}
	return CastNone, false
}
