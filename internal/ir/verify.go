package ir

import (
	"errors"
	"fmt"
)

// VerifyError describes a structural or type error found in a function.
type VerifyError struct {
	Fn    string
	Block string
	Instr string
	Msg   string
}

func (e *VerifyError) Error() string {
	loc := e.Fn
	if e.Block != "" {
		loc += ":" + e.Block
	}
	if e.Instr != "" {
		loc += ":" + e.Instr
	}
	return fmt.Sprintf("ir verify %s: %s", loc, e.Msg)
}

// Verify checks structural invariants of f: every block is non-empty and ends
// in exactly one terminator, phi nodes appear first and cover every
// predecessor exactly once, operand types are consistent, and every use is
// dominated by its definition. AssignIDs must have run.
func Verify(f *Function) error {
	var errs []error
	fail := func(b *Block, in *Instr, format string, args ...any) {
		e := &VerifyError{Fn: f.Ident, Msg: fmt.Sprintf(format, args...)}
		if b != nil {
			e.Block = b.Ident
		}
		if in != nil {
			e.Instr = in.Op.String()
			if in.Ident != "" {
				e.Instr = "%" + in.Ident
			}
		}
		errs = append(errs, e)
	}

	if len(f.Blocks) == 0 {
		fail(nil, nil, "function has no blocks")
		return errors.Join(errs...)
	}

	// Block-local structure.
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			fail(b, nil, "empty block")
			continue
		}
		if b.Terminator() == nil {
			fail(b, nil, "block does not end in a terminator")
		}
		inPhis := true
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				fail(b, in, "terminator in the middle of a block")
			}
			if in.Op == OpPhi {
				if !inPhis {
					fail(b, in, "phi after non-phi instruction")
				}
			} else {
				inPhis = false
			}
			checkInstr(f, b, in, fail)
		}
	}

	cfg := BuildCFG(f)

	// Phi incoming edges must exactly match predecessors.
	for _, b := range f.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		preds := cfg.Preds[b.ID]
		for _, in := range b.Instrs {
			if in.Op != OpPhi {
				break
			}
			if len(in.Args) != len(in.Incoming) {
				fail(b, in, "phi has %d values but %d incoming blocks", len(in.Args), len(in.Incoming))
				continue
			}
			if len(in.Incoming) != len(preds) {
				fail(b, in, "phi covers %d predecessors, block has %d", len(in.Incoming), len(preds))
			}
			seen := map[*Block]bool{}
			for _, from := range in.Incoming {
				if seen[from] {
					fail(b, in, "duplicate incoming block %q", from.Ident)
				}
				seen[from] = true
				found := false
				for _, p := range preds {
					if p == from {
						found = true
						break
					}
				}
				if !found {
					fail(b, in, "incoming block %q is not a predecessor", from.Ident)
				}
			}
		}
	}

	// Dominance: each non-phi use must be dominated by its definition; phi
	// uses must be dominated at the end of the incoming block.
	defBlock := map[Value]*Block{}
	defPos := map[*Instr]int{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.HasResult() {
				defBlock[in] = b
				defPos[in] = i
			}
		}
	}
	for _, b := range f.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		for pos, in := range b.Instrs {
			for ai, arg := range in.Args {
				def, ok := arg.(*Instr)
				if !ok {
					continue // constants, params, globals dominate everything
				}
				db, defined := defBlock[def]
				if !defined {
					fail(b, in, "operand %%%s is not defined in this function", def.Ident)
					continue
				}
				if in.Op == OpPhi {
					from := in.Incoming[ai]
					if !cfg.Reachable(from) {
						continue
					}
					if !cfg.Dominates(db, from) {
						fail(b, in, "phi operand %%%s does not dominate incoming edge from %q", def.Ident, from.Ident)
					}
					continue
				}
				if db == b {
					if defPos[def] >= pos {
						fail(b, in, "use of %%%s before its definition", def.Ident)
					}
				} else if !cfg.Dominates(db, b) {
					fail(b, in, "definition of %%%s does not dominate its use", def.Ident)
				}
			}
		}
	}

	return errors.Join(errs...)
}

func checkInstr(f *Function, b *Block, in *Instr, fail func(*Block, *Instr, string, ...any)) {
	argc := func(n int) bool {
		if len(in.Args) != n {
			fail(b, in, "expected %d operands, have %d", n, len(in.Args))
			return false
		}
		return true
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		if argc(2) {
			if !in.Ty.IsInt() && in.Ty != Ptr {
				fail(b, in, "integer op with result type %s", in.Ty)
			}
			if in.Args[0].Type().IsFloat() || in.Args[1].Type().IsFloat() {
				fail(b, in, "integer op with float operand")
			}
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if argc(2) {
			if !in.Ty.IsFloat() {
				fail(b, in, "float op with result type %s", in.Ty)
			}
			if !in.Args[0].Type().IsFloat() || !in.Args[1].Type().IsFloat() {
				fail(b, in, "float op with non-float operand")
			}
		}
	case OpICmp:
		if argc(2) && in.Ty != I1 {
			fail(b, in, "icmp result must be i1")
		}
	case OpFCmp:
		if argc(2) {
			if in.Ty != I1 {
				fail(b, in, "fcmp result must be i1")
			}
			if !in.Args[0].Type().IsFloat() {
				fail(b, in, "fcmp with non-float operand")
			}
		}
	case OpSelect:
		if argc(3) {
			if in.Args[0].Type() != I1 {
				fail(b, in, "select condition must be i1")
			}
			if in.Args[1].Type() != in.Args[2].Type() {
				fail(b, in, "select arm types differ: %s vs %s", in.Args[1].Type(), in.Args[2].Type())
			}
		}
	case OpCast:
		if argc(1) && in.Cast == CastNone {
			fail(b, in, "cast without a kind")
		}
	case OpGEP:
		if argc(2) {
			if in.Args[0].Type() != Ptr {
				fail(b, in, "gep base must be ptr, have %s", in.Args[0].Type())
			}
			if in.Scale <= 0 {
				fail(b, in, "gep scale must be positive, have %d", in.Scale)
			}
		}
	case OpLoad:
		if argc(1) {
			if in.Args[0].Type() != Ptr {
				fail(b, in, "load address must be ptr")
			}
			if in.Ty == Void {
				fail(b, in, "load must have a result type")
			}
		}
	case OpStore:
		if argc(2) && in.Args[1].Type() != Ptr {
			fail(b, in, "store address must be ptr")
		}
	case OpAtomicAdd:
		if argc(2) && in.Args[0].Type() != Ptr {
			fail(b, in, "atomicadd address must be ptr")
		}
	case OpPhi:
		if len(in.Args) == 0 {
			fail(b, in, "phi with no incoming values")
		}
		for _, a := range in.Args {
			if a.Type() != in.Ty {
				fail(b, in, "phi operand type %s != result type %s", a.Type(), in.Ty)
			}
		}
	case OpBr:
		if len(in.Targets) != 1 {
			fail(b, in, "br must have exactly 1 target")
		}
	case OpCondBr:
		if argc(1) {
			if in.Args[0].Type() != I1 {
				fail(b, in, "condbr condition must be i1")
			}
		}
		if len(in.Targets) != 2 {
			fail(b, in, "condbr must have exactly 2 targets")
		}
	case OpRet:
		if len(in.Args) > 1 {
			fail(b, in, "ret takes at most one value")
		}
	case OpCall:
		if in.Callee == "" {
			fail(b, in, "call without callee")
		}
	default:
		fail(b, in, "unknown opcode %d", uint8(in.Op))
	}
	for _, t := range in.Targets {
		if t.Parent != f {
			fail(b, in, "branch target %q belongs to another function", t.Ident)
		}
	}
}

// VerifyModule verifies every function in m.
func VerifyModule(m *Module) error {
	var errs []error
	seen := map[string]bool{}
	for _, g := range m.Globals {
		if seen["g:"+g.Ident] {
			errs = append(errs, fmt.Errorf("ir verify %s: duplicate global @%s", m.Ident, g.Ident))
		}
		seen["g:"+g.Ident] = true
		if g.Count <= 0 {
			errs = append(errs, fmt.Errorf("ir verify %s: global @%s has non-positive count", m.Ident, g.Ident))
		}
	}
	for _, f := range m.Funcs {
		if seen["f:"+f.Ident] {
			errs = append(errs, fmt.Errorf("ir verify %s: duplicate function @%s", m.Ident, f.Ident))
		}
		seen["f:"+f.Ident] = true
		f.AssignIDs()
		if err := Verify(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
