package ir

import "fmt"

// Builder constructs IR functions programmatically. It is the API the mini-C
// code generator and tests use; names are auto-generated when empty.
type Builder struct {
	Mod  *Module
	Fn   *Function
	Cur  *Block
	next int
}

// NewBuilder returns a builder appending to module m.
func NewBuilder(m *Module) *Builder { return &Builder{Mod: m} }

// NewFunc starts a new function with the given name and parameters and makes
// its entry block current.
func (b *Builder) NewFunc(name string, params ...*Param) *Function {
	f := &Function{Ident: name, Params: params, Parent: b.Mod}
	b.Mod.Funcs = append(b.Mod.Funcs, f)
	b.Fn = f
	b.Cur = nil
	b.next = 0
	b.Block("entry")
	return f
}

// NewParam creates a parameter for use with NewFunc.
func NewParam(name string, ty Type) *Param { return &Param{Ident: name, Ty: ty} }

// Block creates a new basic block in the current function and makes it
// current.
func (b *Builder) Block(name string) *Block {
	blk := &Block{Ident: name, Parent: b.Fn}
	b.Fn.Blocks = append(b.Fn.Blocks, blk)
	b.Cur = blk
	return blk
}

// SetBlock makes an existing block current.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

func (b *Builder) autoName() string {
	b.next++
	return fmt.Sprintf("t%d", b.next)
}

func (b *Builder) emit(in *Instr) *Instr {
	if in.HasResult() && in.Ident == "" {
		in.Ident = b.autoName()
	}
	return b.Cur.append(in)
}

// Bin emits a binary arithmetic/logic instruction. The result type is the
// type of the left operand.
func (b *Builder) Bin(op Opcode, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: op, Ty: lhs.Type(), Args: []Value{lhs, rhs}})
}

// Add emits an integer add.
func (b *Builder) Add(lhs, rhs Value) *Instr { return b.Bin(OpAdd, lhs, rhs) }

// Sub emits an integer subtract.
func (b *Builder) Sub(lhs, rhs Value) *Instr { return b.Bin(OpSub, lhs, rhs) }

// Mul emits an integer multiply.
func (b *Builder) Mul(lhs, rhs Value) *Instr { return b.Bin(OpMul, lhs, rhs) }

// FAdd emits a floating add.
func (b *Builder) FAdd(lhs, rhs Value) *Instr { return b.Bin(OpFAdd, lhs, rhs) }

// FSub emits a floating subtract.
func (b *Builder) FSub(lhs, rhs Value) *Instr { return b.Bin(OpFSub, lhs, rhs) }

// FMul emits a floating multiply.
func (b *Builder) FMul(lhs, rhs Value) *Instr { return b.Bin(OpFMul, lhs, rhs) }

// FDiv emits a floating divide.
func (b *Builder) FDiv(lhs, rhs Value) *Instr { return b.Bin(OpFDiv, lhs, rhs) }

// ICmp emits an integer comparison with result type I1.
func (b *Builder) ICmp(pred CmpPred, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: OpICmp, Ty: I1, Pred: pred, Args: []Value{lhs, rhs}})
}

// FCmp emits a float comparison with result type I1.
func (b *Builder) FCmp(pred CmpPred, lhs, rhs Value) *Instr {
	return b.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: pred, Args: []Value{lhs, rhs}})
}

// Select emits a ternary select.
func (b *Builder) Select(cond, ifTrue, ifFalse Value) *Instr {
	return b.emit(&Instr{Op: OpSelect, Ty: ifTrue.Type(), Args: []Value{cond, ifTrue, ifFalse}})
}

// CastTo emits a type conversion.
func (b *Builder) CastTo(kind CastKind, to Type, v Value) *Instr {
	return b.emit(&Instr{Op: OpCast, Ty: to, Cast: kind, Args: []Value{v}})
}

// GEP emits an address computation: base + index*scale bytes.
func (b *Builder) GEP(base, index Value, scale int64) *Instr {
	return b.emit(&Instr{Op: OpGEP, Ty: Ptr, Args: []Value{base, index}, Scale: scale})
}

// Load emits a typed load from addr.
func (b *Builder) Load(ty Type, addr Value) *Instr {
	return b.emit(&Instr{Op: OpLoad, Ty: ty, Args: []Value{addr}})
}

// Store emits a store of value to addr.
func (b *Builder) Store(value, addr Value) *Instr {
	return b.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{value, addr}})
}

// AtomicAdd emits an atomic fetch-and-add; the result is the old value.
func (b *Builder) AtomicAdd(addr, delta Value) *Instr {
	return b.emit(&Instr{Op: OpAtomicAdd, Ty: delta.Type(), Args: []Value{addr, delta}})
}

// Phi emits an SSA phi node; wire incoming edges with AddIncoming.
func (b *Builder) Phi(ty Type) *Instr {
	return b.emit(&Instr{Op: OpPhi, Ty: ty})
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instr, v Value, from *Block) {
	phi.Args = append(phi.Args, v)
	phi.Incoming = append(phi.Incoming, from)
}

// Br emits an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Targets: []*Block{target}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return b.emit(&Instr{Op: OpCondBr, Ty: Void, Args: []Value{cond}, Targets: []*Block{then, els}})
}

// Ret emits a return; v may be nil for a void return.
func (b *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return b.emit(in)
}

// Call emits an intrinsic call. resTy may be Void.
func (b *Builder) Call(callee string, resTy Type, args ...Value) *Instr {
	return b.emit(&Instr{Op: OpCall, Ty: resTy, Callee: callee, Args: args})
}

// Finish assigns IDs and verifies the function under construction, returning
// the verifier's error if any.
func (b *Builder) Finish() error {
	b.Fn.AssignIDs()
	return Verify(b.Fn)
}
