package ir

import (
	"fmt"
	"math"
)

// Value is anything an instruction can take as an operand: constants,
// function parameters, globals (array base addresses), and the results of
// other instructions.
type Value interface {
	// Type returns the value's scalar type.
	Type() Type
	// Name returns the value's printed name (without sigil for constants).
	Name() string
}

// Const is a compile-time constant. The payload is stored as a raw 64-bit
// pattern; floats use math.Float64bits / Float32bits encodings widened to 64
// bits for F64/F32 respectively.
type Const struct {
	Ty   Type
	Bits uint64
}

// ConstInt returns an integer constant of the given type.
func ConstInt(ty Type, v int64) *Const { return &Const{Ty: ty, Bits: uint64(v)} }

// ConstBool returns an I1 constant.
func ConstBool(b bool) *Const {
	if b {
		return &Const{Ty: I1, Bits: 1}
	}
	return &Const{Ty: I1, Bits: 0}
}

// ConstFloat returns a floating-point constant of type F32 or F64.
func ConstFloat(ty Type, v float64) *Const {
	if ty == F32 {
		return &Const{Ty: F32, Bits: uint64(math.Float32bits(float32(v)))}
	}
	return &Const{Ty: F64, Bits: math.Float64bits(v)}
}

// Int returns the constant interpreted as a signed integer.
func (c *Const) Int() int64 { return int64(c.Bits) }

// Float returns the constant interpreted as a float of its type.
func (c *Const) Float() float64 {
	if c.Ty == F32 {
		return float64(math.Float32frombits(uint32(c.Bits)))
	}
	return math.Float64frombits(c.Bits)
}

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// Name implements Value.
func (c *Const) Name() string {
	if c.Ty.IsFloat() {
		return fmt.Sprintf("%g", c.Float())
	}
	return fmt.Sprintf("%d", c.Int())
}

// Param is a formal parameter of a function. Parameters are runtime inputs
// supplied by the harness (array base pointers, sizes, scalars).
type Param struct {
	Ty    Type
	Ident string
	Index int // position in the function signature
	ID    int // dense value ID assigned by Function.AssignIDs
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// Name implements Value.
func (p *Param) Name() string { return p.Ident }

// Global is a module-level array. Its address in simulated memory is assigned
// by the interpreter's memory image at load time; in the IR it is referenced
// by name and evaluates to its base address (type Ptr).
type Global struct {
	Ident string
	Elem  Type  // element type
	Count int64 // number of elements
}

// Type implements Value: referencing a global yields its base address.
func (g *Global) Type() Type { return Ptr }

// Name implements Value.
func (g *Global) Name() string { return g.Ident }

// ByteSize returns the total size of the global's storage in bytes.
func (g *Global) ByteSize() int64 { return g.Elem.Size() * g.Count }
