package ir

import "fmt"

// Pass is one IR-to-IR transformation over a single function. A pass must be
// deterministic (same input function, same output function) and must preserve
// interpreter semantics: internal/testgen pins every pass sequence against
// internal/interp ground truth over generated kernels.
//
// Passes run under Pipeline, which re-numbers IDs and re-verifies the
// function after every pass, so a pass is free to splice blocks and
// instructions without maintaining IDs itself.
type Pass interface {
	// Name returns the pass's registry name (one of PassNames).
	Name() string
	// Run transforms f in place and reports whether anything changed.
	Run(f *Function) bool
}

// PassError reports a function that failed verification after a pass ran —
// always a pass bug, never a property of the input program.
type PassError struct {
	Pass string // pass name
	Fn   string // function name
	Err  error  // the underlying *VerifyError
}

func (e *PassError) Error() string {
	return fmt.Sprintf("ir: function @%s fails verification after pass %q: %v", e.Fn, e.Pass, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// Pipeline is an ordered pass sequence with verification between passes.
type Pipeline struct {
	Passes []Pass
}

// NewPipeline resolves an OptConfig to a runnable pipeline.
func NewPipeline(cfg OptConfig) (*Pipeline, error) {
	names, err := cfg.PassList()
	if err != nil {
		return nil, err
	}
	p := &Pipeline{}
	for _, name := range names {
		pass, err := passByName(name, cfg.UnrollFactor())
		if err != nil {
			return nil, err
		}
		p.Passes = append(p.Passes, pass)
	}
	return p, nil
}

// passByName instantiates one pass from its registry name.
func passByName(name string, unroll int) (Pass, error) {
	switch name {
	case "constfold":
		return constFold{}, nil
	case "dce":
		return deadCodeElim{}, nil
	case "cse":
		return commonSubexprElim{}, nil
	case "strength":
		return strengthReduce{}, nil
	case "unroll":
		return &loopUnroll{Factor: unroll}, nil
	}
	return nil, fmt.Errorf("ir: unknown pass %q", name)
}

// Run applies the pipeline to every function of m, in module order, running
// passes in their configured order. After each pass the function's dense IDs
// are re-assigned and Verify re-runs; a verification failure is returned as a
// *PassError naming the offending pass. An empty pipeline leaves the module
// untouched (O0 is bit-identical to the unoptimized build).
func (p *Pipeline) Run(m *Module) error {
	if len(p.Passes) == 0 {
		return nil
	}
	for _, f := range m.Funcs {
		for _, pass := range p.Passes {
			pass.Run(f)
			// Re-number blocks, instruction indices, and value IDs: passes
			// splice freely and the verifier (and every later consumer)
			// depends on dense in-layout-order IDs. The private assignIDs is
			// used directly because the sync.Once wrapper only guards the
			// first concurrent assignment on shared functions; here the
			// function is still private to the compile.
			f.assignIDs()
			if err := Verify(f); err != nil {
				return &PassError{Pass: pass.Name(), Fn: f.Ident, Err: err}
			}
		}
	}
	return nil
}

// replaceUses rewrites every operand use of old to new across f. Branch
// targets and phi incoming-block lists are untouched (blocks are not values).
func replaceUses(f *Function, old, new Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// removeInstr deletes in from its parent block, preserving order.
func removeInstr(b *Block, idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}

// removeUnreachable deletes blocks unreachable from the entry and drops phi
// incoming entries that referenced them. Phis in surviving blocks that are
// left with a single incoming value are forwarded to that value (the lone
// predecessor dominates the block, so the replacement is always legal).
// Reports whether anything changed.
func removeUnreachable(f *Function) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	reach := make(map[*Block]bool, len(f.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		reach[b] = true
		for _, s := range b.Succs() {
			if !reach[s] {
				dfs(s)
			}
		}
	}
	dfs(f.Blocks[0])
	if len(reach) == len(f.Blocks) {
		return false
	}
	live := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			live = append(live, b)
		}
	}
	f.Blocks = live
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); {
			in := b.Instrs[i]
			if in.Op != OpPhi {
				break // phis lead their block
			}
			args := in.Args[:0]
			incs := in.Incoming[:0]
			for j, from := range in.Incoming {
				if reach[from] {
					args = append(args, in.Args[j])
					incs = append(incs, from)
				}
			}
			in.Args, in.Incoming = args, incs
			if len(in.Args) == 1 {
				replaceUses(f, in, in.Args[0])
				removeInstr(b, i)
				continue
			}
			i++
		}
	}
	return true
}
