package ir

// CFG holds derived control-flow information for one function: predecessor
// lists, reverse postorder, and the dominator tree. It is computed once and
// consumed by the verifier, the DDG generator, and compiler passes (e.g. the
// DAE slicer).
type CFG struct {
	Fn    *Function
	Preds [][]*Block // indexed by block ID
	RPO   []*Block   // reverse postorder over reachable blocks
	rpoID []int      // block ID -> position in RPO, -1 if unreachable
	IDom  []*Block   // immediate dominator per block ID (entry -> nil)
}

// BuildCFG computes control-flow facts for f. AssignIDs must have run.
func BuildCFG(f *Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		Fn:    f,
		Preds: make([][]*Block, n),
		rpoID: make([]int, n),
		IDom:  make([]*Block, n),
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s.ID] = append(c.Preds[s.ID], b)
		}
	}
	// Postorder DFS from entry.
	visited := make([]bool, n)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.ID] = true
		for _, s := range b.Succs() {
			if !visited[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if entry := f.Entry(); entry != nil {
		dfs(entry)
	}
	c.RPO = make([]*Block, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.rpoID {
		c.rpoID[i] = -1
	}
	for i, b := range c.RPO {
		c.rpoID[b.ID] = i
	}
	c.computeDominators()
	return c
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b *Block) bool { return c.rpoID[b.ID] >= 0 }

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm over
// reverse postorder.
func (c *CFG) computeDominators() {
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	idom := make([]*Block, len(c.Fn.Blocks))
	idom[entry.ID] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO[1:] {
			var newIDom *Block
			for _, p := range c.Preds[b.ID] {
				if !c.Reachable(p) || idom[p.ID] == nil {
					continue
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = c.intersect(idom, p, newIDom)
				}
			}
			if newIDom != nil && idom[b.ID] != newIDom {
				idom[b.ID] = newIDom
				changed = true
			}
		}
	}
	for _, b := range c.RPO {
		if b == entry {
			c.IDom[b.ID] = nil
		} else {
			c.IDom[b.ID] = idom[b.ID]
		}
	}
}

func (c *CFG) intersect(idom []*Block, a, b *Block) *Block {
	for a != b {
		for c.rpoID[a.ID] > c.rpoID[b.ID] {
			a = idom[a.ID]
		}
		for c.rpoID[b.ID] > c.rpoID[a.ID] {
			b = idom[b.ID]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (c *CFG) Dominates(a, b *Block) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := c.IDom[b.ID]
		if next == nil {
			return false
		}
		b = next
	}
}

// DomTreeChildren returns the blocks immediately dominated by b.
func (c *CFG) DomTreeChildren(b *Block) []*Block {
	var out []*Block
	for _, x := range c.RPO {
		if c.IDom[x.ID] == b {
			out = append(out, x)
		}
	}
	return out
}
