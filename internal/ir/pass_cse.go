package ir

import (
	"fmt"
	"strings"
)

// commonSubexprElim deduplicates pure computations: a dominator-tree walk
// with a scoped value-numbering table replaces an instruction with an
// earlier, dominating instruction that computes the same (opcode, type,
// operands) tuple. Only result-producing, side-effect-free opcodes
// participate — never loads, calls, atomics, or phis. sdiv/srem may be
// deduplicated (the surviving dominating instance traps first on a zero
// divisor, preserving interpreter behavior).
type commonSubexprElim struct{}

func (commonSubexprElim) Name() string { return "cse" }

func (commonSubexprElim) Run(f *Function) bool {
	// Operand keys use dense value IDs; re-number in case an earlier pass in
	// the same pipeline (or a standalone test harness) left them stale.
	f.assignIDs()
	cfg := BuildCFG(f)
	changed := false
	avail := map[string]*Instr{}
	var walk func(b *Block)
	walk = func(b *Block) {
		var scope []string
		for i := 0; i < len(b.Instrs); {
			in := b.Instrs[i]
			if !cseable(in) {
				i++
				continue
			}
			key := cseKey(in)
			if prev, ok := avail[key]; ok {
				replaceUses(f, in, prev)
				removeInstr(b, i)
				changed = true
				continue
			}
			avail[key] = in
			scope = append(scope, key)
			i++
		}
		for _, child := range cfg.DomTreeChildren(b) {
			walk(child)
		}
		for _, key := range scope {
			delete(avail, key)
		}
	}
	if entry := f.Entry(); entry != nil {
		walk(entry)
	}
	return changed
}

// cseable reports whether in is a pure, result-producing computation.
func cseable(in *Instr) bool {
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpAShr, OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpICmp, OpFCmp, OpSelect, OpCast, OpGEP:
		return in.HasResult()
	}
	return false
}

// cseKey builds the value-numbering key: opcode, result type, the per-opcode
// modifiers, and one token per operand. Instruction operands key by dense
// value ID, constants by canonical bit pattern (integers truncated to their
// width, since the interpreter never observes the high bits), parameters by
// index, globals by name — all deterministic across runs.
func cseKey(in *Instr) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d|%d|%d|%d", in.Op, in.Ty, in.Pred, in.Cast, in.Scale)
	for _, a := range in.Args {
		switch v := a.(type) {
		case *Const:
			bits := v.Bits
			if v.Ty.IsInt() {
				bits = foldTrunc(bits, v.Ty)
			}
			fmt.Fprintf(&sb, "|c%d:%d", v.Ty, bits)
		case *Param:
			fmt.Fprintf(&sb, "|p%d", v.Index)
		case *Global:
			fmt.Fprintf(&sb, "|g%s", v.Ident)
		case *Instr:
			fmt.Fprintf(&sb, "|v%d", v.ID)
		default:
			fmt.Fprintf(&sb, "|?%p", a)
		}
	}
	return sb.String()
}
