package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module in the textual IR format produced by Module.String.
// The format is line-oriented; ';' and '//' begin comments. On success the
// module is verified and every function has IDs assigned.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if err := VerifyModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse that panics on error; for tests and embedded kernels.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lines []string
	pos   int
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("ir parse line %d: %s", e.line, e.msg) }

func (p *parser) errf(format string, args ...any) error {
	return &parseError{line: p.pos, msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty, non-comment line, trimmed, or "" at EOF.
func (p *parser) next() string {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
	}
	return ""
}

func (p *parser) parseModule() (*Module, error) {
	m := NewModule("module")
	for {
		line := p.next()
		if line == "" {
			break
		}
		switch {
		case strings.HasPrefix(line, "module "):
			m.Ident = strings.TrimSpace(strings.TrimPrefix(line, "module "))
		case strings.HasPrefix(line, "global "):
			if err := p.parseGlobal(m, line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "func "):
			if err := p.parseFunc(m, line); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected module/global/func, got %q", line)
		}
	}
	return m, nil
}

func (p *parser) parseGlobal(m *Module, line string) error {
	// global @name type count
	fields := strings.Fields(line)
	if len(fields) != 4 || !strings.HasPrefix(fields[1], "@") {
		return p.errf("malformed global: %q", line)
	}
	ty, ok := TypeFromName(fields[2])
	if !ok {
		return p.errf("unknown type %q", fields[2])
	}
	n, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return p.errf("bad global count %q", fields[3])
	}
	m.AddGlobal(strings.TrimPrefix(fields[1], "@"), ty, n)
	return nil
}

// pendingInstr is an instruction parsed but with operand/target names not yet
// resolved (SSA allows uses before definitions across blocks).
type pendingInstr struct {
	in      *Instr
	line    int
	args    []string               // raw operand tokens
	argTys  []Type                 // explicit constant types (Void = infer)
	blocks  []string               // raw block-reference names (phi incoming / br targets)
	asPhi   bool                   // args/blocks are parallel phi pairs
	asBr    bool                   // blocks are branch targets
	inferTy func(resolved []Value) // post-resolution fixup (e.g. binop result type)
}

func (p *parser) parseFunc(m *Module, header string) error {
	// func @name(%a: ty, %b: ty) {
	rest := strings.TrimSpace(strings.TrimPrefix(header, "func "))
	open := strings.Index(rest, "(")
	close_ := strings.LastIndex(rest, ")")
	if !strings.HasPrefix(rest, "@") || open < 0 || close_ < open || !strings.HasSuffix(rest, "{") {
		return p.errf("malformed func header: %q", header)
	}
	name := rest[1:open]
	f := &Function{Ident: name, Parent: m}
	paramSrc := strings.TrimSpace(rest[open+1 : close_])
	if paramSrc != "" {
		for _, ps := range strings.Split(paramSrc, ",") {
			parts := strings.SplitN(strings.TrimSpace(ps), ":", 2)
			if len(parts) != 2 || !strings.HasPrefix(parts[0], "%") {
				return p.errf("malformed parameter %q", ps)
			}
			ty, ok := TypeFromName(strings.TrimSpace(parts[1]))
			if !ok {
				return p.errf("unknown parameter type in %q", ps)
			}
			f.Params = append(f.Params, &Param{Ident: strings.TrimPrefix(strings.TrimSpace(parts[0]), "%"), Ty: ty})
		}
	}
	m.Funcs = append(m.Funcs, f)

	values := map[string]Value{}
	for _, prm := range f.Params {
		values[prm.Ident] = prm
	}
	blocks := map[string]*Block{}
	getBlock := func(name string) *Block {
		if b, ok := blocks[name]; ok {
			return b
		}
		b := &Block{Ident: name, Parent: f}
		blocks[name] = b
		return b
	}

	var cur *Block
	var pend []*pendingInstr
	for {
		line := p.next()
		if line == "" {
			return p.errf("unexpected EOF in function @%s", name)
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			b := getBlock(strings.TrimSuffix(line, ":"))
			if len(b.Instrs) > 0 {
				return p.errf("duplicate block label %q", b.Ident)
			}
			f.Blocks = append(f.Blocks, b)
			cur = b
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label: %q", line)
		}
		pi, err := p.parseInstrLine(line)
		if err != nil {
			return err
		}
		cur.append(pi.in)
		if pi.in.Ident != "" {
			if _, dup := values[pi.in.Ident]; dup {
				return p.errf("redefinition of %%%s", pi.in.Ident)
			}
			values[pi.in.Ident] = pi.in
		}
		pend = append(pend, pi)
	}

	// Resolve operands and block references.
	for _, pi := range pend {
		for _, bn := range pi.blocks {
			b, ok := blocks[bn]
			if !ok || b.Parent != f {
				return &parseError{line: pi.line, msg: fmt.Sprintf("unknown block %%%s", bn)}
			}
			if pi.asPhi {
				pi.in.Incoming = append(pi.in.Incoming, b)
			} else {
				pi.in.Targets = append(pi.in.Targets, b)
			}
		}
		resolved := make([]Value, len(pi.args))
		for i, tok := range pi.args {
			v, err := resolveOperand(m, values, tok, pi.argTys[i])
			if err != nil {
				return &parseError{line: pi.line, msg: err.Error()}
			}
			resolved[i] = v
		}
		pi.in.Args = resolved
		if pi.inferTy != nil {
			pi.inferTy(resolved)
		}
	}

	// Ensure blocks referenced but never defined are caught.
	for name, b := range blocks {
		found := false
		for _, fb := range f.Blocks {
			if fb == b {
				found = true
				break
			}
		}
		if !found {
			return p.errf("block %%%s referenced but never defined", name)
		}
	}
	return nil
}

func resolveOperand(m *Module, values map[string]Value, tok string, explicit Type) (Value, error) {
	switch {
	case strings.HasPrefix(tok, "%"):
		v, ok := values[tok[1:]]
		if !ok {
			return nil, fmt.Errorf("unknown value %s", tok)
		}
		return v, nil
	case strings.HasPrefix(tok, "@"):
		g := m.Global(tok[1:])
		if g == nil {
			return nil, fmt.Errorf("unknown global %s", tok)
		}
		return g, nil
	case tok == "true":
		return ConstBool(true), nil
	case tok == "false":
		return ConstBool(false), nil
	default:
		ty := explicit
		if strings.ContainsAny(tok, ".eE") && !strings.HasPrefix(tok, "0x") {
			if ty == Void {
				ty = F64
			}
			fv, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float literal %q", tok)
			}
			return ConstFloat(ty, fv), nil
		}
		iv, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad literal %q", tok)
		}
		if ty == Void {
			ty = I64
		}
		if ty.IsFloat() {
			return ConstFloat(ty, float64(iv)), nil
		}
		return ConstInt(ty, iv), nil
	}
}

// splitOperands splits "a, b, c" at top level (no nesting in this format
// outside phi brackets, which are handled separately).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// operandTok splits an optional explicit type prefix from a constant token:
// "i32 5" -> (I32, "5"); "%x" -> (Void, "%x").
func operandTok(tok string) (Type, string) {
	fields := strings.Fields(tok)
	if len(fields) == 2 {
		if ty, ok := TypeFromName(fields[0]); ok {
			return ty, fields[1]
		}
	}
	return Void, tok
}

func (p *parser) parseInstrLine(line string) (*pendingInstr, error) {
	pi := &pendingInstr{in: &Instr{}, line: p.pos}
	rest := line
	if i := strings.Index(line, "="); i > 0 && strings.HasPrefix(strings.TrimSpace(line), "%") {
		lhs := strings.TrimSpace(line[:i])
		pi.in.Ident = strings.TrimPrefix(lhs, "%")
		rest = strings.TrimSpace(line[i+1:])
	}
	fields := strings.SplitN(rest, " ", 2)
	mnemonic := fields[0]
	body := ""
	if len(fields) == 2 {
		body = strings.TrimSpace(fields[1])
	}
	op, ok := OpcodeFromName(mnemonic)
	if !ok {
		return nil, p.errf("unknown opcode %q", mnemonic)
	}
	pi.in.Op = op

	addArg := func(tok string) {
		ty, t := operandTok(tok)
		pi.args = append(pi.args, t)
		pi.argTys = append(pi.argTys, ty)
	}

	switch op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		ops := splitOperands(body)
		if len(ops) != 2 {
			return nil, p.errf("%s needs 2 operands: %q", mnemonic, line)
		}
		addArg(ops[0])
		addArg(ops[1])
		// Provisional result type so the instruction registers as a value
		// definition during parsing; fixed up after operand resolution.
		pi.in.Ty = I64
		in := pi.in
		pi.inferTy = func(resolved []Value) {
			// Result type comes from the first operand with a known non-const
			// type; constant-only operands default inside resolveOperand.
			in.Ty = resolved[0].Type()
			// Propagate a named operand's type onto bare constants.
			inferConstTypes(in, resolved)
		}
	case OpICmp, OpFCmp:
		sp := strings.SplitN(body, " ", 2)
		if len(sp) != 2 {
			return nil, p.errf("%s needs a predicate: %q", mnemonic, line)
		}
		pred, ok := PredFromName(sp[0])
		if !ok {
			return nil, p.errf("unknown predicate %q", sp[0])
		}
		pi.in.Pred = pred
		pi.in.Ty = I1
		ops := splitOperands(sp[1])
		if len(ops) != 2 {
			return nil, p.errf("%s needs 2 operands: %q", mnemonic, line)
		}
		addArg(ops[0])
		addArg(ops[1])
		in := pi.in
		pi.inferTy = func(resolved []Value) { inferConstTypes(in, resolved) }
	case OpSelect:
		ops := splitOperands(body)
		if len(ops) != 3 {
			return nil, p.errf("select needs 3 operands: %q", line)
		}
		for _, o := range ops {
			addArg(o)
		}
		pi.in.Ty = I64
		in := pi.in
		pi.inferTy = func(resolved []Value) { in.Ty = resolved[1].Type() }
	case OpCast:
		sp := strings.Fields(body)
		if len(sp) < 3 {
			return nil, p.errf("cast needs kind, type, operand: %q", line)
		}
		kind, ok := CastFromName(sp[0])
		if !ok {
			return nil, p.errf("unknown cast kind %q", sp[0])
		}
		ty, ok := TypeFromName(strings.TrimSuffix(sp[1], ","))
		if !ok {
			return nil, p.errf("unknown cast type %q", sp[1])
		}
		pi.in.Cast = kind
		pi.in.Ty = ty
		addArg(strings.TrimSpace(strings.Join(sp[2:], " ")))
	case OpGEP:
		ops := splitOperands(body)
		if len(ops) != 3 {
			return nil, p.errf("gep needs base, index, scale: %q", line)
		}
		scale, err := strconv.ParseInt(ops[2], 10, 64)
		if err != nil {
			return nil, p.errf("bad gep scale %q", ops[2])
		}
		pi.in.Scale = scale
		pi.in.Ty = Ptr
		addArg(ops[0])
		addArg(ops[1])
	case OpLoad:
		ops := splitOperands(body)
		if len(ops) != 2 {
			return nil, p.errf("load needs type, addr: %q", line)
		}
		ty, ok := TypeFromName(ops[0])
		if !ok {
			return nil, p.errf("unknown load type %q", ops[0])
		}
		pi.in.Ty = ty
		addArg(ops[1])
	case OpStore:
		ops := splitOperands(body)
		if len(ops) != 2 {
			return nil, p.errf("store needs value, addr: %q", line)
		}
		pi.in.Ty = Void
		addArg(ops[0])
		addArg(ops[1])
	case OpAtomicAdd:
		ops := splitOperands(body)
		if len(ops) != 2 {
			return nil, p.errf("atomicadd needs addr, delta: %q", line)
		}
		addArg(ops[0])
		addArg(ops[1])
		pi.in.Ty = I64
		in := pi.in
		pi.inferTy = func(resolved []Value) { in.Ty = resolved[1].Type() }
	case OpPhi:
		sp := strings.SplitN(body, " ", 2)
		if len(sp) != 2 {
			return nil, p.errf("phi needs a type: %q", line)
		}
		ty, ok := TypeFromName(sp[0])
		if !ok {
			return nil, p.errf("unknown phi type %q", sp[0])
		}
		pi.in.Ty = ty
		pi.asPhi = true
		rest := sp[1]
		for {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				break
			}
			if rest[0] == ',' {
				rest = rest[1:]
				continue
			}
			if rest[0] != '[' {
				return nil, p.errf("phi expects [value, %%block] pairs: %q", line)
			}
			end := strings.Index(rest, "]")
			if end < 0 {
				return nil, p.errf("unterminated phi pair: %q", line)
			}
			pair := splitOperands(rest[1:end])
			if len(pair) != 2 || !strings.HasPrefix(pair[1], "%") {
				return nil, p.errf("malformed phi pair %q", rest[1:end])
			}
			ty2, tok := operandTok(pair[0])
			if ty2 == Void {
				ty2 = ty
			}
			pi.args = append(pi.args, tok)
			pi.argTys = append(pi.argTys, ty2)
			pi.blocks = append(pi.blocks, strings.TrimPrefix(pair[1], "%"))
			rest = rest[end+1:]
		}
	case OpBr:
		pi.asBr = true
		pi.in.Ty = Void
		t := strings.TrimSpace(body)
		if !strings.HasPrefix(t, "%") {
			return nil, p.errf("br target must be a block: %q", line)
		}
		pi.blocks = append(pi.blocks, strings.TrimPrefix(t, "%"))
	case OpCondBr:
		pi.asBr = true
		pi.in.Ty = Void
		ops := splitOperands(body)
		if len(ops) != 3 || !strings.HasPrefix(ops[1], "%") || !strings.HasPrefix(ops[2], "%") {
			return nil, p.errf("condbr needs cond, %%then, %%else: %q", line)
		}
		addArg(ops[0])
		pi.blocks = append(pi.blocks, strings.TrimPrefix(ops[1], "%"), strings.TrimPrefix(ops[2], "%"))
	case OpRet:
		pi.in.Ty = Void
		if body != "" {
			addArg(body)
		}
	case OpCall:
		// call <type> <callee>(args...)
		sp := strings.SplitN(body, " ", 2)
		if len(sp) != 2 {
			return nil, p.errf("call needs type and callee: %q", line)
		}
		ty, ok := TypeFromName(sp[0])
		if !ok {
			return nil, p.errf("unknown call result type %q", sp[0])
		}
		pi.in.Ty = ty
		rest := strings.TrimSpace(sp[1])
		open := strings.Index(rest, "(")
		if open < 0 || !strings.HasSuffix(rest, ")") {
			return nil, p.errf("malformed call: %q", line)
		}
		pi.in.Callee = strings.TrimSpace(rest[:open])
		for _, o := range splitOperands(rest[open+1 : len(rest)-1]) {
			addArg(o)
		}
	default:
		return nil, p.errf("unhandled opcode %q", mnemonic)
	}
	return pi, nil
}

// inferConstTypes retypes bare integer constants to match a named operand's
// type in binary operations (e.g. `add %i32val, 1` makes the 1 an i32).
func inferConstTypes(in *Instr, resolved []Value) {
	var ty Type
	for _, v := range resolved {
		if _, isConst := v.(*Const); !isConst {
			ty = v.Type()
			break
		}
	}
	if ty == Void {
		return
	}
	for i, v := range resolved {
		if c, isConst := v.(*Const); isConst && c.Ty != ty {
			if ty.IsFloat() && c.Ty == I64 {
				resolved[i] = ConstFloat(ty, float64(c.Int()))
			} else if ty.IsInt() && c.Ty == I64 {
				resolved[i] = ConstInt(ty, c.Int())
			} else if ty == Ptr && c.Ty == I64 {
				resolved[i] = &Const{Ty: Ptr, Bits: c.Bits}
			}
		}
	}
	if in.Ty != I1 && in.Op != OpICmp && in.Op != OpFCmp {
		in.Ty = ty
	}
}
