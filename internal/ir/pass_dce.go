package ir

// deadCodeElim removes pure result-producing instructions with no remaining
// uses, cascading until a fixpoint, and prunes unreachable blocks. Memory
// operations, calls, and terminators are never removed: loads and stores are
// observable in the simulated trace, and calls carry intrinsic side effects
// (barriers, queues, accelerator invocations). sdiv/srem are only removed
// when the divisor is a provably non-zero constant, so a dead division that
// would trap in the interpreter keeps trapping at every opt level.
type deadCodeElim struct{}

func (deadCodeElim) Name() string { return "dce" }

func (deadCodeElim) Run(f *Function) bool {
	changed := removeUnreachable(f)
	uses := make(map[*Instr]int)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if def, ok := a.(*Instr); ok {
					uses[def]++
				}
			}
		}
	}
	for {
		removed := false
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); {
				in := b.Instrs[i]
				if dceRemovable(in) && uses[in] == 0 {
					for _, a := range in.Args {
						if def, ok := a.(*Instr); ok {
							uses[def]--
						}
					}
					removeInstr(b, i)
					removed = true
					changed = true
					continue
				}
				i++
			}
		}
		if !removed {
			return changed
		}
	}
}

// dceRemovable reports whether in may be deleted once it has no uses.
func dceRemovable(in *Instr) bool {
	if !in.HasResult() || in.IsTerminator() || in.IsMemory() || in.Op == OpCall {
		return false
	}
	if in.Op == OpSDiv || in.Op == OpSRem {
		c, ok := in.Args[1].(*Const)
		return ok && foldSignExt(c.Bits, in.Ty) != 0
	}
	return true
}
