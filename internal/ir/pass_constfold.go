package ir

// constFold evaluates instructions whose operands are all constants, forwards
// selects with a constant condition, collapses phis whose incoming values are
// one identical constant, and folds conditional branches on constants into
// unconditional branches (pruning the dead edge from the abandoned target's
// phis and deleting blocks that become unreachable). Folding runs to a
// fixpoint so constants propagate through chains.
type constFold struct{}

func (constFold) Name() string { return "constfold" }

func (p constFold) Run(f *Function) bool {
	changed := false
	for p.round(f) {
		changed = true
	}
	return changed
}

// round performs one sweep over the function and reports whether it changed
// anything.
func (constFold) round(f *Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); {
			in := b.Instrs[i]
			switch {
			case in.Op == OpSelect:
				c, ok := in.Args[0].(*Const)
				if !ok {
					break
				}
				pick := in.Args[2]
				if c.Bits&1 != 0 {
					pick = in.Args[1]
				}
				// The chosen operand dominates the select, and the select
				// dominates all of its uses, so forwarding is always legal.
				replaceUses(f, in, pick)
				removeInstr(b, i)
				changed = true
				continue
			case in.Op == OpPhi:
				c := phiConst(in)
				if c == nil {
					break
				}
				replaceUses(f, in, c)
				removeInstr(b, i)
				changed = true
				continue
			default:
				c := foldInstr(in)
				if c == nil {
					break
				}
				replaceUses(f, in, c)
				removeInstr(b, i)
				changed = true
				continue
			}
			i++
		}
		if foldCondBr(b) {
			changed = true
		}
	}
	if changed {
		// Branch folding can orphan whole blocks; pruning them immediately
		// keeps every surviving phi aligned with its predecessor list.
		removeUnreachable(f)
	}
	return changed
}

// phiConst returns the constant a phi collapses to when every incoming value
// is the same constant (compared canonically: integers by their truncated
// bit pattern, floats by raw bits), or nil.
func phiConst(in *Instr) *Const {
	if len(in.Args) == 0 {
		return nil
	}
	canon := func(c *Const) uint64 {
		if c.Ty.IsInt() {
			return foldTrunc(c.Bits, c.Ty)
		}
		return c.Bits
	}
	first, ok := in.Args[0].(*Const)
	if !ok {
		return nil
	}
	for _, a := range in.Args[1:] {
		c, ok := a.(*Const)
		if !ok || c.Ty != first.Ty || canon(c) != canon(first) {
			return nil
		}
	}
	return &Const{Ty: first.Ty, Bits: canon(first)}
}

// foldCondBr rewrites a condbr on a constant condition into an unconditional
// branch and removes the dead edge from the abandoned target's phis. Reports
// whether it changed the block.
func foldCondBr(b *Block) bool {
	t := b.Terminator()
	if t == nil || t.Op != OpCondBr {
		return false
	}
	c, ok := t.Args[0].(*Const)
	if !ok {
		return false
	}
	live, dead := t.Targets[1], t.Targets[0]
	if c.Bits&1 != 0 {
		live, dead = dead, live
	}
	t.Op = OpBr
	t.Args = nil
	t.Targets = []*Block{live}
	if dead == live {
		return true
	}
	for _, in := range dead.Instrs {
		if in.Op != OpPhi {
			break
		}
		args := in.Args[:0]
		incs := in.Incoming[:0]
		for j, from := range in.Incoming {
			if from != b {
				args = append(args, in.Args[j])
				incs = append(incs, from)
			}
		}
		in.Args, in.Incoming = args, incs
	}
	return true
}
