// Package parallel is the bounded worker pool behind MosaicSim-Go's sweep
// engine. Independent simulations (experiment legs, DSE points, Pareto
// sweeps) fan out across a fixed number of workers while every result is
// collected by index, so a sweep's output is byte-identical no matter how
// many workers ran it or in which order they finished.
//
// The pool budget is process-global: nested sweeps (an experiment fan-out
// whose legs themselves fan out) share one token pool instead of
// multiplying worker counts. A call that asks for an explicit width (jobs >
// 0) gets a dedicated pool of that width — tests and callers that need a
// known concurrency level use this.
//
// Sweeps are cancellable: the *Ctx variants check the context before
// claiming each leg, so cancelling a sweep abandons every queued leg
// deterministically (abandoned legs record the context error at their index)
// while legs already running finish — or, if they observe the same context
// themselves, return early.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	limit  int           // 0 = GOMAXPROCS
	tokens chan struct{} // capacity Limit()-1; admits helper goroutines
)

// Limit returns the global worker budget: the value set by SetLimit, or
// GOMAXPROCS when unset.
func Limit() int {
	mu.Lock()
	defer mu.Unlock()
	if limit > 0 {
		return limit
	}
	return runtime.GOMAXPROCS(0)
}

// SetLimit sets the global worker budget shared by every For call that does
// not request an explicit width (n <= 0 restores the GOMAXPROCS default).
// Call it once at startup — typically from a -jobs flag — before sweeps run.
func SetLimit(n int) {
	mu.Lock()
	defer mu.Unlock()
	limit = n
	tokens = nil // re-sized lazily against the new budget
}

// tokenPool returns the helper-admission channel for the current budget.
func tokenPool() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	if tokens == nil {
		n := limit
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		// n-1 helper tokens: the calling goroutine is the n-th worker.
		cap := n - 1
		if cap < 0 {
			cap = 0
		}
		tokens = make(chan struct{}, cap)
		for i := 0; i < cap; i++ {
			tokens <- struct{}{}
		}
	}
	return tokens
}

// For runs fn(i) for every i in [0, n) and waits for all of them.
//
// jobs > 0 requests a dedicated pool of exactly min(jobs, n) workers;
// jobs <= 0 uses the calling goroutine plus as many helpers as the global
// budget has free. The caller always participates, so For never blocks
// waiting for capacity, and nested calls cannot deadlock.
func For(jobs, n int, fn func(i int)) {
	forCtx(context.Background(), jobs, n, func(i int) error { fn(i); return nil }, nil)
}

// forCtx is the shared worker loop: it claims indices atomically and runs
// fn on each, recording errors by index into errs (when non-nil). Once ctx
// is cancelled, workers keep claiming indices but record ctx.Err() instead
// of running the leg, so the queue drains immediately and every abandoned
// leg is accounted for.
func forCtx(ctx context.Context, jobs, n int, fn func(i int) error, errs []error) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := ctx.Err(); err != nil {
				if errs != nil {
					errs[i] = err
				}
				continue // abandon queued legs, drain the index space
			}
			err := fn(i)
			if errs != nil {
				errs[i] = err
			}
		}
	}
	var wg sync.WaitGroup
	if jobs > 0 {
		// Dedicated pool: exact width, independent of the global budget.
		for w := 0; w < jobs-1 && w < n-1; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
	} else {
		// Shared pool: admit helpers while global tokens are free.
		pool := tokenPool()
	admit:
		for w := 0; w < n-1; w++ {
			select {
			case <-pool:
				wg.Add(1)
				go func() {
					defer func() {
						pool <- struct{}{}
						wg.Done()
					}()
					work()
				}()
			default:
				break admit // budget exhausted
			}
		}
	}
	work()
	wg.Wait()
}

// ForErr is For over fallible legs. Every leg runs (no short-circuiting, so
// result slices the legs fill stay deterministic); the returned error is the
// lowest-indexed one, matching what a serial loop would have hit first.
func ForErr(jobs, n int, fn func(i int) error) error {
	return ForErrCtx(context.Background(), jobs, n, fn)
}

// ForErrCtx is ForErr under a context: cancelling ctx abandons every leg not
// yet started (each records ctx.Err() at its index) while running legs
// finish. The returned error is still the lowest-indexed one, so a leg that
// failed before the cancellation wins over the cancellation itself, exactly
// as a serial loop would have reported it.
func ForErrCtx(ctx context.Context, jobs, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	forCtx(ctx, jobs, n, fn, errs)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
