package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	For(8, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForSerialWhenJobsOne(t *testing.T) {
	// jobs=1 must run on the calling goroutine only, in index order.
	var order []int
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs=1 ran out of order: %v", order[:i+1])
		}
	}
	if len(order) != 50 {
		t.Fatalf("ran %d of 50 legs", len(order))
	}
}

func TestForDedicatedWidthIsBounded(t *testing.T) {
	const jobs, n = 4, 64
	var cur, peak int32
	var mu sync.Mutex
	For(jobs, n, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > jobs {
		t.Errorf("observed %d concurrent workers, pool width is %d", peak, jobs)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	e3, e7 := errors.New("leg 3"), errors.New("leg 7")
	ran := make([]int32, 10)
	err := ForErr(4, 10, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Errorf("want the serial-order first error (leg 3), got %v", err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Errorf("leg %d ran %d times; ForErr must not short-circuit", i, c)
		}
	}
}

func TestSharedBudgetRespectsSetLimit(t *testing.T) {
	SetLimit(2)
	defer SetLimit(0)
	var cur, peak int32
	var mu sync.Mutex
	For(0, 32, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 2 {
		t.Errorf("shared pool ran %d concurrent workers with limit 2", peak)
	}
}

func TestNestedSharedPoolsDoNotMultiply(t *testing.T) {
	SetLimit(3)
	defer SetLimit(0)
	var cur, peak int32
	var mu sync.Mutex
	For(0, 4, func(i int) {
		For(0, 8, func(j int) {
			c := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
		})
	})
	if peak > 3 {
		t.Errorf("nested sweeps peaked at %d concurrent workers with limit 3", peak)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(i int) { ran = true })
	For(0, -1, func(i int) { ran = true })
	if ran {
		t.Error("no legs should run for n <= 0")
	}
	if err := ForErr(2, 0, func(i int) error { return errors.New("x") }); err != nil {
		t.Errorf("empty sweep returned %v", err)
	}
}
