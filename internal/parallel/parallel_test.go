package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	For(8, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForSerialWhenJobsOne(t *testing.T) {
	// jobs=1 must run on the calling goroutine only, in index order.
	var order []int
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("jobs=1 ran out of order: %v", order[:i+1])
		}
	}
	if len(order) != 50 {
		t.Fatalf("ran %d of 50 legs", len(order))
	}
}

func TestForDedicatedWidthIsBounded(t *testing.T) {
	const jobs, n = 4, 64
	var cur, peak int32
	var mu sync.Mutex
	For(jobs, n, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > jobs {
		t.Errorf("observed %d concurrent workers, pool width is %d", peak, jobs)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	e3, e7 := errors.New("leg 3"), errors.New("leg 7")
	ran := make([]int32, 10)
	err := ForErr(4, 10, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if err != e3 {
		t.Errorf("want the serial-order first error (leg 3), got %v", err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Errorf("leg %d ran %d times; ForErr must not short-circuit", i, c)
		}
	}
}

func TestSharedBudgetRespectsSetLimit(t *testing.T) {
	SetLimit(2)
	defer SetLimit(0)
	var cur, peak int32
	var mu sync.Mutex
	For(0, 32, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 2 {
		t.Errorf("shared pool ran %d concurrent workers with limit 2", peak)
	}
}

func TestNestedSharedPoolsDoNotMultiply(t *testing.T) {
	SetLimit(3)
	defer SetLimit(0)
	var cur, peak int32
	var mu sync.Mutex
	For(0, 4, func(i int) {
		For(0, 8, func(j int) {
			c := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if c > peak {
				peak = c
			}
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
		})
	})
	if peak > 3 {
		t.Errorf("nested sweeps peaked at %d concurrent workers with limit 3", peak)
	}
}

// TestForErrCtxAbandonsQueuedLegs: once the context dies, every leg not yet
// started is abandoned (recording ctx.Err() at its index) instead of run, and
// the sweep reports the cancellation.
func TestForErrCtxAbandonsQueuedLegs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 200
	var ran atomic.Int32
	// Serial pool: leg 0 cancels, so legs 1..n-1 are all queued behind a dead
	// context and must be abandoned deterministically.
	err := ForErrCtx(ctx, 1, n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sweep error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("%d legs ran after the cancel; only leg 0 should have", got)
	}
}

// TestForErrCtxEarlierErrorWins: a leg failure that precedes the cancellation
// in index order is what the sweep reports, exactly as a serial loop would.
func TestForErrCtxEarlierErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("leg 2 failed")
	err := ForErrCtx(ctx, 1, 10, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Errorf("sweep error = %v, want the lower-indexed leg failure", err)
	}
}

// TestForErrCtxPreCanceled: a sweep under an already-dead context runs no
// legs at all.
func TestForErrCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForErrCtx(ctx, 4, 50, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("sweep error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d legs ran under a pre-canceled context", got)
	}
}

func TestForErrCtxNilContext(t *testing.T) {
	var ran atomic.Int32
	var nilCtx context.Context // tolerating a nil ctx is part of the contract
	if err := ForErrCtx(nilCtx, 2, 8, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("nil-context sweep returned %v", err)
	}
	if ran.Load() != 8 {
		t.Error("nil-context sweep skipped legs")
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	ran := false
	For(4, 0, func(i int) { ran = true })
	For(0, -1, func(i int) { ran = true })
	if ran {
		t.Error("no legs should run for n <= 0")
	}
	if err := ForErr(2, 0, func(i int) error { return errors.New("x") }); err != nil {
		t.Errorf("empty sweep returned %v", err)
	}
}
