// Package trends reproduces Figure 1 of the paper: 42 years of
// microprocessor trend data (transistor counts, single-thread performance,
// frequency, typical power, and logical core counts), recreated from the
// well-known Rupp dataset the paper cites [7]. The embedded series are
// five-year-sampled representative values; the figure's message — frequency
// and single-thread performance plateau while core counts climb — is in the
// shape, not individual chips.
package trends

import "sort"

// Point is one sampled year of the trend data.
type Point struct {
	Year         int
	TransistorsK float64 // thousands of transistors
	SingleThread float64 // SpecINT x 1000
	FrequencyMHz float64
	PowerW       float64
	Cores        float64 // logical cores
}

// Data returns the embedded trend series ordered by year.
func Data() []Point {
	pts := []Point{
		{1971, 2.3, 0, 0.74, 0.5, 1},
		{1975, 5, 0, 2, 1, 1},
		{1979, 30, 0, 5, 1.5, 1},
		{1983, 120, 0, 10, 2.5, 1},
		{1987, 300, 0.3, 20, 4, 1},
		{1991, 1200, 1.5, 50, 8, 1},
		{1995, 5500, 10, 150, 14, 1},
		{1999, 22000, 60, 500, 25, 1},
		{2003, 100000, 400, 2500, 70, 1},
		{2007, 500000, 1500, 3000, 100, 2},
		{2011, 2000000, 3500, 3300, 110, 8},
		{2015, 5000000, 5500, 3500, 120, 24},
		{2017, 10000000, 7000, 3600, 130, 56},
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Year < pts[j].Year })
	return pts
}

// Plateaued reports whether a series has effectively flattened between two
// years: less than the given growth ratio.
func Plateaued(get func(Point) float64, fromYear, toYear int, maxRatio float64) bool {
	var from, to float64
	for _, p := range Data() {
		if p.Year == fromYear {
			from = get(p)
		}
		if p.Year == toYear {
			to = get(p)
		}
	}
	if from == 0 {
		return false
	}
	return to/from < maxRatio
}
