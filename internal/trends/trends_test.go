package trends

import "testing"

func TestDataOrderedAndComplete(t *testing.T) {
	pts := Data()
	if len(pts) < 10 {
		t.Fatalf("only %d samples", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Year <= pts[i-1].Year {
			t.Error("years not strictly increasing")
		}
		if pts[i].TransistorsK < pts[i-1].TransistorsK {
			t.Error("transistor counts must be non-decreasing (Moore's law era)")
		}
	}
	if pts[0].Year != 1971 || pts[len(pts)-1].Year < 2015 {
		t.Errorf("span %d-%d does not cover the 42-year figure", pts[0].Year, pts[len(pts)-1].Year)
	}
}

func TestFigureOneShape(t *testing.T) {
	// Frequency plateaus after ~2003 while core counts climb — the figure's
	// motivation for heterogeneous parallelism.
	if !Plateaued(func(p Point) float64 { return p.FrequencyMHz }, 2003, 2017, 2) {
		t.Error("frequency did not plateau post-2003")
	}
	if Plateaued(func(p Point) float64 { return p.Cores }, 2007, 2017, 2) {
		t.Error("core counts should keep climbing post-2007")
	}
	if Plateaued(func(p Point) float64 { return p.TransistorsK }, 2003, 2017, 10) {
		t.Error("transistor counts should keep growing")
	}
	if !Plateaued(func(p Point) float64 { return p.PowerW }, 2007, 2017, 2) {
		t.Error("typical power should flatten (Dennard scaling end)")
	}
}

func TestPlateauedMissingYear(t *testing.T) {
	if Plateaued(func(p Point) float64 { return p.PowerW }, 1900, 2017, 2) {
		t.Error("missing baseline year should report false")
	}
}
