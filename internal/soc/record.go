package soc

// Schedule recording: the hooks a replay engine (internal/replay) attaches
// to a full timing run so the run's event schedule can later be re-evaluated
// analytically under new timing parameters.
//
// Two things are recorded. Every accelerator invocation is reported through
// RecordInvoke with the exact inputs the model saw (parameters and the
// concurrency level) and the timing it returned. And whenever the
// event-horizon cycle skipper is about to jump a frozen window whose ONLY
// terminating event is a single accelerator completion — provable from live
// simulator state, see maybeCertify — the window is certified through
// RecordQuietJump. A certified window is the soundness anchor for replaying
// an accelerator-latency delta as a rigid time shift: everything after the
// completion is a pure time translation of the recorded run as long as the
// shifted completion still lands strictly after the window's start (the
// replay engine enforces that margin, plus DRAM-model-specific conditions).

import "mosaicsim/internal/mem"

// ScheduleRecorder observes the events a timing run must expose for
// schedule-capture replay. Implementations must be cheap: the hooks run on
// the simulating goroutine.
type ScheduleRecorder interface {
	// RecordInvoke reports one accelerator invocation: the model inputs
	// (params, concurrent), the issue and completion cycles, and the model's
	// result. params is the live slice — implementations must copy it.
	RecordInvoke(name string, params []int64, concurrent int, issue, complete int64, res AccelResult)
	// RecordQuietJump certifies the frozen window (from, target): at cycle
	// from every component is frozen and the single event ending the window
	// is an accelerator completion at cycle target. coreStalls holds the
	// per-cycle stall increments each core accrues across the window, in
	// Cores order, zeroed for cores that already retired their trace.
	RecordQuietJump(from, target int64, coreStalls []StallSample)
}

// SetRecorder attaches (or, with nil, detaches) a schedule recorder. It must
// be called before Run. Attaching also enables the SimpleDRAM arrival log,
// which the replay engine needs to re-verify the bandwidth budget under
// shifted timings.
func (s *System) SetRecorder(r ScheduleRecorder) {
	s.recorder = r
	if s.accel != nil {
		if r == nil {
			s.accel.onInvoke = nil
		} else {
			s.accel.onInvoke = r.RecordInvoke
		}
	}
	if r != nil {
		s.Hier.EnableDRAMAccessLog()
	}
}

// maybeCertify runs at a horizon jump (every component confirmed frozen at
// now, jump target computed) and certifies the window to the recorder iff
// the ONLY event that can end it is a single accelerator completion at
// target. The conditions, each load-bearing for the rigid-shift replay
// argument:
//
//   - uniform tile clocks: the clock-edge recurrence is then invariant under
//     time translation (mixed clocks give accumulators an absolute phase);
//   - no per-cycle DRAM throttle accrual (thrTick == 0): a throttled stretch
//     scales with the window length;
//   - the hierarchy is drained with no future self-events;
//   - no message is in flight anywhere in the fabric;
//   - the accelerator manager holds exactly one pending release, at target;
//   - exactly one core holds exactly one pending completion, at target, with
//     nothing else outstanding; every other core has no self-scheduled event.
//
// Anything else in flight — a second completion hiding behind the heap head,
// a gated mispredict launch, a future fabric arrival — makes the window's end
// multi-causal and the certificate is simply not issued (replay then falls
// back to full simulation for deltas that would move this completion).
func (s *System) maybeCertify(now, target int64, stallDelta []StallSample, thrTick int64, uniformClocks bool) {
	if !uniformClocks || thrTick != 0 || s.accel == nil || !s.accel.soleEventAt(target) {
		return
	}
	if s.Hier.Busy() || s.Hier.NextEvent(now) < mem.HorizonNone {
		return
	}
	if s.Fabric.Pending() != 0 {
		return
	}
	invoker := -1
	for i, c := range s.Cores {
		if c.SoleCompletionAt(now, target) {
			if invoker >= 0 {
				return // two candidate completions: not sole-event
			}
			invoker = i
		} else if c.NextEvent(now) != mem.HorizonNone {
			return
		}
	}
	if invoker < 0 {
		return
	}
	stalls := make([]StallSample, len(s.Cores))
	for i, c := range s.Cores {
		// Done tiles are skipped by the jump's stall replay; mirror that so
		// the recorded per-cycle increments match what an extended (or
		// shortened) window would actually accrue.
		if p := s.tilePos[c.ID]; !s.tiles[p].Done() {
			stalls[i] = stallDelta[p]
		}
	}
	s.recorder.RecordQuietJump(now, target, stalls)
}
