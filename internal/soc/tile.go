package soc

import (
	"fmt"

	"mosaicsim/internal/core"
	"mosaicsim/internal/mem"
)

// Tile is the Interleaver's unit of composition (§II, §V-A): anything that
// advances under the system clock — a core, an accelerator manager, a future
// DMA engine — implements Tile and the Run loop steps it generically. The
// contract the event-horizon skipper depends on (see DESIGN.md):
//
//   - Step(now) advances the tile by one of its own clock cycles and reports
//     whether it is actively working. Step must be deterministic in the
//     system state: a tile whose Progress() is unchanged by a step (a
//     "frozen" step) must repeat exactly the same externally visible side
//     effects — the same stall-counter increments, no state changes — every
//     cycle until some component's Progress() moves.
//   - Progress() is a monotone counter that changes iff the tile's
//     architectural state changed. It is the skipper's freeze detector.
//   - NextEvent(now) is the earliest future cycle at which a frozen tile
//     could act (mem.HorizonNone when it is waiting purely on others). It
//     may be conservative (early) but never late: skipping jumps to the
//     minimum horizon across tiles, so a late answer would elide a cycle in
//     which the tile had work.
//   - SnapshotStalls/ReplayStalls let the skipper replay a frozen step's
//     stall accounting arithmetically: if delta is the stall sample
//     difference across one frozen step, ReplayStalls(delta, k) must leave
//     the tile exactly as k repeated frozen steps would have.
//   - Done() tiles are excluded from freeze confirmation, horizons, and
//     replay.
//   - MaySync() reports whether the tile's next Step might touch shared
//     synchronization state (barrier arrivals/releases, accelerator
//     invocations). The parallel stepper serializes such steps behind every
//     lower tile position; the answer may be conservative (true when the
//     step turns out not to sync) but never falsely false.
type Tile interface {
	// Kind labels the tile's model family ("ooo", "inorder", "accel", ...)
	// for per-kind breakdowns.
	Kind() string
	// ClockMHz is the tile's clock; the Interleaver derives the per-tile
	// step stride from the ratio against the fastest tile.
	ClockMHz() int
	Step(now int64) bool
	Done() bool
	Progress() uint64
	NextEvent(now int64) int64
	SnapshotStalls() StallSample
	ReplayStalls(delta StallSample, k int64)
	MaySync() bool
	// Stats reports the tile's contribution to per-kind breakdowns.
	Stats() TileStats
}

// StallSample captures every stall counter a frozen step can touch: the
// tile-local counters plus the tile's shard of the fabric back-pressure
// counter (a frozen send retry bumps the sender's FullStall shard, which
// lives outside the tile).
type StallSample struct {
	Core   core.StallSnapshot
	Fabric int64
}

// Sub returns the per-cycle delta between two samples.
func (a StallSample) Sub(b StallSample) StallSample {
	return StallSample{Core: a.Core.Sub(b.Core), Fabric: a.Fabric - b.Fabric}
}

// TileStats is one tile's contribution to a per-kind breakdown: instructions
// (or invocations) retired, cycles spent doing work, and cycles lost to
// stalls. All three are identical with cycle skipping on and off.
type TileStats struct {
	Instrs       int64
	ActiveCycles int64
	StallCycles  int64
}

// CoreTile adapts a core.Core to the Tile interface. The fabric reference is
// for stall accounting only: a frozen core retrying a send increments its
// FullStall shard, so the sample must include it for replay.
type CoreTile struct {
	C      *core.Core
	fabric *Fabric
	kind   string
}

// Kind returns the core preset name ("ooo", "inorder", ...).
func (t *CoreTile) Kind() string { return t.kind }

// ClockMHz implements Tile.
func (t *CoreTile) ClockMHz() int { return t.C.Cfg.ClockMHz }

// Step implements Tile.
func (t *CoreTile) Step(now int64) bool { return t.C.Step(now) }

// Done implements Tile.
func (t *CoreTile) Done() bool { return t.C.Done() }

// Progress implements Tile.
func (t *CoreTile) Progress() uint64 { return t.C.Progress() }

// NextEvent implements Tile.
func (t *CoreTile) NextEvent(now int64) int64 { return t.C.NextEvent(now) }

// SnapshotStalls implements Tile.
func (t *CoreTile) SnapshotStalls() StallSample {
	return StallSample{Core: t.C.StallCounters(), Fabric: t.fabric.fullStallOf(t.C.ID)}
}

// ReplayStalls implements Tile.
func (t *CoreTile) ReplayStalls(delta StallSample, k int64) {
	t.C.AddStallCycles(delta.Core, k)
	t.fabric.addFullStall(t.C.ID, delta.Fabric*k)
}

// MaySync implements Tile.
func (t *CoreTile) MaySync() bool { return t.C.MaySync() }

// Stats implements Tile.
func (t *CoreTile) Stats() TileStats {
	s := t.C.Stats
	return TileStats{
		Instrs:       s.Instrs,
		ActiveCycles: s.Cycles,
		StallCycles:  s.MAOStalls + s.FUStalls + s.WindowStalls + s.CommStalls,
	}
}

// AccelTile owns the system's accelerator models and their outstanding
// invocations. It is a passive tile: invocations are started by cores
// (through core.AccelInvoker) and their completions are delivered through the
// invoking core's completion queue, so the accelerator tile itself never
// holds the system alive (Done is always true), never registers progress,
// and never feeds the horizon — its one job per step is retiring invocations
// whose completion cycle has been reached so concurrent invocations observe
// each other (§IV-B bandwidth sharing).
type AccelTile struct {
	models      map[string]AccelModel
	outstanding map[string]int
	events      accelEventHeap // scheduled outstanding[] decrements

	clockMHz   int // system clock: the accel manager steps every cycle
	EnergyPJ   float64
	Bytes      int64
	Calls      int64
	BusyCycles int64 // summed invocation latencies across all models

	// onInvoke, when non-nil, observes every successful invocation with the
	// exact model inputs and timing (set through System.SetRecorder).
	onInvoke func(name string, params []int64, concurrent int, issue, complete int64, res AccelResult)
}

// newAccelTile builds the accelerator manager for a system whose fastest
// tile runs at clockMHz.
func newAccelTile(models map[string]AccelModel, clockMHz int) *AccelTile {
	return &AccelTile{models: models, outstanding: map[string]int{}, clockMHz: clockMHz}
}

// Kind implements Tile.
func (t *AccelTile) Kind() string { return "accel" }

// ClockMHz implements Tile: the manager runs on the system clock so due
// invocations retire on the cycle they complete.
func (t *AccelTile) ClockMHz() int { return t.clockMHz }

// Step retires invocations whose completion cycle has been reached. It never
// reports activity: pending decrements must not keep a finished system
// running, exactly as the pre-tile Interleaver behaved.
func (t *AccelTile) Step(now int64) bool {
	for t.events.Len() > 0 && t.events[0].at <= now {
		ev := t.events.pop()
		t.outstanding[ev.name]--
	}
	return false
}

// Done implements Tile; the accelerator manager is always passive.
func (t *AccelTile) Done() bool { return true }

// Progress implements Tile. Retiring an invocation is not architectural
// progress — nothing a frozen core could observe changes until it re-invokes
// — so the counter is constant and the tile never blocks a horizon jump.
func (t *AccelTile) Progress() uint64 { return 0 }

// NextEvent implements Tile: completion delivery is owned by the invoking
// core's horizon, so the manager itself never bounds a jump.
func (t *AccelTile) NextEvent(now int64) int64 { return mem.HorizonNone }

// SnapshotStalls implements Tile; the manager accrues no stalls.
func (t *AccelTile) SnapshotStalls() StallSample { return StallSample{} }

// ReplayStalls implements Tile; nothing to replay. (Done tiles are skipped
// by the replay loop anyway.)
func (t *AccelTile) ReplayStalls(delta StallSample, k int64) {}

// MaySync implements Tile. The manager mutates shared invocation state every
// step, but it sits at tile position 0: it is always the first tile its
// worker steps, and invoking cores (MaySync true) wait for it, so no extra
// ordering is needed.
func (t *AccelTile) MaySync() bool { return false }

// Stats implements Tile: invocations as "instructions", summed invocation
// latency as active cycles.
func (t *AccelTile) Stats() TileStats {
	return TileStats{Instrs: t.Calls, ActiveCycles: t.BusyCycles}
}

// invoke runs one accelerator invocation: it queries the model with the
// current concurrency (§IV-A), charges energy and traffic, and schedules the
// outstanding-count decrement at the completion cycle.
func (t *AccelTile) invoke(name string, params []int64, now int64) (int64, error) {
	m, ok := t.models[name]
	if !ok {
		return 0, fmt.Errorf("soc: no accelerator model registered for %q", name)
	}
	concurrent := t.outstanding[name]
	res, err := m.Invoke(params, concurrent)
	if err != nil {
		return 0, err
	}
	t.outstanding[name]++
	t.EnergyPJ += res.EnergyPJ
	t.Bytes += res.Bytes
	t.Calls++
	t.BusyCycles += res.Cycles
	at := now + res.Cycles
	// The invocation stays outstanding until simulated time reaches its
	// completion cycle: Step drains the decrement there, so overlapping
	// invocations observe each other and the §IV-B bandwidth-sharing model
	// engages.
	t.events.push(accelEvent{at: at, name: name})
	if t.onInvoke != nil {
		t.onInvoke(name, params, concurrent, now, at, res)
	}
	return at, nil
}

// soleEventAt reports whether the manager holds exactly one pending release
// and it is due at cycle at — part of the quiet-window certificate: any
// other pending release would mean a second invocation is still in flight.
func (t *AccelTile) soleEventAt(at int64) bool {
	return t.events.Len() == 1 && t.events[0].at == at
}

// KindBreakdown aggregates TileStats over every tile of one kind.
type KindBreakdown struct {
	Kind         string `json:"kind"`
	Tiles        int    `json:"tiles"`
	Instrs       int64  `json:"instrs"`
	ActiveCycles int64  `json:"active_cycles"`
	StallCycles  int64  `json:"stall_cycles"`
}

// TileBreakdown aggregates per-kind cycle and stall totals across the
// system's tiles, in first-appearance order. The accelerator manager appears
// (as kind "accel") only when the run actually invoked a fixed-function
// accelerator, so core-only runs report only core kinds.
func (s *System) TileBreakdown() []KindBreakdown {
	var out []KindBreakdown
	idx := map[string]int{}
	for _, t := range s.tiles {
		if at, ok := t.(*AccelTile); ok && (len(at.models) == 0 || at.Calls == 0) {
			continue
		}
		k := t.Kind()
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, KindBreakdown{Kind: k})
		}
		st := t.Stats()
		out[i].Tiles++
		out[i].Instrs += st.Instrs
		out[i].ActiveCycles += st.ActiveCycles
		out[i].StallCycles += st.StallCycles
	}
	return out
}

// Tiles exposes the system's tile list (accelerator manager first, then
// cores in tile-ID order) for inspection.
func (s *System) Tiles() []Tile { return s.tiles }
