package soc

// Deterministic parallel stepping (the DESIGN.md §5e contract).
//
// The Interleaver's per-iteration tile loop is sharded across a bounded pool
// of persistent workers. Each worker owns a contiguous range of tile
// positions and steps them in increasing position order, publishing a
// per-worker watermark after each tile. All cross-worker waits target
// strictly lower tile positions, so the wait graph is acyclic: the lowest
// unfinished tile can always run, and the phase always terminates.
//
// Two ordering rules make the result bit-identical to sequential stepping:
//
//   - Fabric capacity (soc.go sendHasRoom): a sender observes exactly the
//     receiver pops sequential tile order would have shown — the committed
//     epoch count when the receiver steps later this cycle, the live count
//     (after waiting for the receiver's step) when it steps earlier.
//   - Sync ops: a core whose step may touch shared synchronization state —
//     barrier arrivals/releases or accelerator invocations — first waits
//     for every lower tile position to finish (core.MaySync, a conservative
//     trace-window test). That replicates the sequential prefix those ops
//     observe; tiles without sync ops in flight only touch their own SPSC
//     queues and per-tile shards and run unordered.
//
// The serial phase — memory-hierarchy tick, freeze confirmation, horizon
// jumps, epoch commit — stays on the Run goroutine, unchanged.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// pworker is one worker's slot, padded so adjacent watermarks never share a
// cache line.
type pworker struct {
	lo, hi int        // owned tile-position range [lo, hi)
	start  chan int64 // per-cycle dispatch (the cycle number)
	active bool       // any-tile-active result of the last phase
	// prog is the worker's watermark: base + pos + 1 after finishing the
	// tile at pos. base is seq*len(tiles), with seq a dense per-phase
	// counter (cycles jump under skipping, so they cannot seed the
	// encoding); a stale value from an earlier phase is always below any
	// current-phase target.
	prog atomicPadded
}

type atomicPadded struct {
	v int64
	_ [7]int64
}

// stepEngine shards one system's tile stepping across workers.
type stepEngine struct {
	s        *System
	maxClock int64
	// Shared with Run's loop (workers touch only their owned indices; the
	// serial phase reads and writes them between joins).
	accum, strides []int64
	idleOK         []bool
	stallDelta     []StallSample

	workers []pworker
	owner   []int // tile position -> worker index
	base    int64 // written serially before dispatch, read by workers
	seq     int64
	wg      sync.WaitGroup
}

// startEngine builds and starts the worker pool when parallel stepping is
// both requested and sound. It returns nil — leaving Run on the sequential
// loop — for worker counts <= 1, directory-coherent hierarchies (cross-core
// invalidations are order-sensitive), and zero-latency fabrics (a
// same-cycle-maturing message could be consumed or missed depending on
// worker timing).
func (s *System) startEngine(accum, strides []int64, idleOK []bool, stallDelta []StallSample, maxClock int64) *stepEngine {
	nw := s.StepWorkers
	if nw > len(s.tiles) {
		nw = len(s.tiles)
	}
	if nw <= 1 || (s.Hier != nil && s.Hier.Dir != nil) || s.Fabric.Latency <= 0 {
		return nil
	}
	e := &stepEngine{
		s:          s,
		maxClock:   maxClock,
		accum:      accum,
		strides:    strides,
		idleOK:     idleOK,
		stallDelta: stallDelta,
		workers:    make([]pworker, nw),
		owner:      make([]int, len(s.tiles)),
	}
	nt := len(s.tiles)
	per, rem := nt/nw, nt%nw
	lo := 0
	for w := range e.workers {
		sz := per
		if w < rem {
			sz++
		}
		e.workers[w] = pworker{lo: lo, hi: lo + sz, start: make(chan int64)}
		for p := lo; p < lo+sz; p++ {
			e.owner[p] = w
		}
		lo += sz
	}
	s.Fabric.syncCommitted()
	s.Fabric.engine = e
	for w := range e.workers {
		go e.run(&e.workers[w])
	}
	return e
}

// stop shuts the workers down and detaches the engine from the fabric.
func (e *stepEngine) stop() {
	for w := range e.workers {
		close(e.workers[w].start)
	}
	e.s.Fabric.engine = nil
}

// step runs one parallel tile phase for cycle and reports whether any tile
// is still active — exactly the sequential loop's anyActive.
func (e *stepEngine) step(cycle int64) bool {
	e.seq++
	e.s.ParallelPhases++
	e.base = e.seq * int64(len(e.s.tiles))
	e.wg.Add(len(e.workers))
	for w := range e.workers {
		e.workers[w].start <- cycle
	}
	e.wg.Wait()
	active := false
	for w := range e.workers {
		active = active || e.workers[w].active
	}
	return active
}

// run is one worker's loop: per dispatched cycle, step the owned tile range
// in position order, mirroring the sequential loop's accumulator arithmetic
// and freeze bracketing, and publish the watermark after each position.
func (e *stepEngine) run(w *pworker) {
	for cycle := range w.start {
		base := e.base
		active := false
		for pos := w.lo; pos < w.hi; pos++ {
			t := e.s.tiles[pos]
			e.accum[pos] += e.strides[pos]
			if e.accum[pos] >= e.maxClock {
				e.accum[pos] -= e.maxClock
				if t.MaySync() {
					// The step may arrive at a barrier, test a release, or
					// invoke an accelerator: give it the sequential prefix.
					e.waitAllBelow(base, pos)
				}
				pp := t.Progress()
				before := t.SnapshotStalls()
				if t.Step(cycle) {
					active = true
				}
				if t.Progress() == pp {
					e.stallDelta[pos] = t.SnapshotStalls().Sub(before)
					e.idleOK[pos] = true
				}
			} else if !t.Done() {
				active = true
			}
			atomic.StoreInt64(&w.prog.v, base+int64(pos)+1)
		}
		w.active = active
		e.wg.Done()
	}
}

// waitCore blocks until the tile owning core id has finished its step this
// phase. Callers only ever wait on lower tile positions.
func (e *stepEngine) waitCore(id int) {
	pos := e.s.tilePos[id]
	w := &e.workers[e.owner[pos]]
	target := e.base + int64(pos) + 1
	for atomic.LoadInt64(&w.prog.v) < target {
		runtime.Gosched()
	}
}

// waitAllBelow blocks until every tile position < pos has finished its step
// this phase (positions the caller's own worker owns are already done by
// program order).
func (e *stepEngine) waitAllBelow(base int64, pos int) {
	for i := range e.workers {
		w := &e.workers[i]
		if w.lo >= pos {
			break
		}
		limit := pos
		if w.hi < limit {
			limit = w.hi
		}
		// Positions [w.lo, limit) are done once the watermark reaches
		// base + limit.
		target := base + int64(limit)
		for atomic.LoadInt64(&w.prog.v) < target {
			runtime.Gosched()
		}
	}
}
