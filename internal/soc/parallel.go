package soc

// Deterministic parallel stepping (the DESIGN.md §5e contract).
//
// The Interleaver's per-iteration work is sharded across a bounded pool of
// persistent workers in two phases. Phase A steps the tiles: each worker
// owns a contiguous range of tile positions and steps them in increasing
// position order, publishing a per-worker watermark after each tile. All
// cross-worker waits target strictly lower tile positions, so the wait
// graph is acyclic: the lowest unfinished tile can always run, and the
// phase always terminates. Phase B shards the memory-hierarchy tick: after
// the serial slice ticks the shared levels (DRAM, LLC), each worker ticks
// the private cache stacks of its owned cores and folds its tiles into the
// per-worker progress/freeze reduction the serial phase joins.
//
// Four ordering rules make the result bit-identical to sequential stepping:
//
//   - Fabric capacity (soc.go sendHasRoom): a sender observes exactly the
//     receiver pops sequential tile order would have shown — the committed
//     epoch count when the receiver steps later this cycle, the live count
//     (after waiting for the receiver's step) when it steps earlier.
//   - Same-cycle delivery (soc.go TryRecv): a zero-transfer-cost message is
//     receivable the cycle it is sent, so the receiver of such a pair reads
//     the committed push count when it steps before its sender (this
//     cycle's pushes and future-send maturations are invisible — on a
//     zero-cost pair an arrival value always equals the cycle it was
//     written, so arrival >= now identifies them) and waits for the
//     sender's step otherwise.
//   - Sync ops: a core whose step may touch shared synchronization state —
//     barrier arrivals/releases or accelerator invocations — first waits
//     for every lower tile position to finish (core.MaySync, a conservative
//     trace-window test). That replicates the sequential prefix those ops
//     observe; tiles without sync ops in flight only touch their own SPSC
//     queues and per-tile shards and run unordered.
//   - Staged coherence commits (mem.Hierarchy): with a directory, a core's
//     AccessAt — directory lookup, cross-core invalidations, recall
//     writebacks — is staged per core during phase A and committed at the
//     serial join in (tile-position, issue-seq) order, the exact total
//     order sequential stepping interleaves them in. Nothing in a core's
//     step reads the state those actions change (results arrive through
//     done callbacks fired by later ticks), so deferral is invisible.
//
// The remaining serial phase — shared-level ticks, staged-access drains,
// epoch commit, horizon jumps — stays on the Run goroutine.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// phaseCmd is one per-cycle dispatch to a worker: the cycle number plus
// which phase to run (tile stepping, or the sharded hierarchy tick).
type phaseCmd struct {
	cycle int64
	tick  bool
}

// pworker is one worker's slot, padded so adjacent watermarks never share a
// cache line.
type pworker struct {
	lo, hi int           // owned tile-position range [lo, hi)
	start  chan phaseCmd // per-cycle dispatch
	active bool          // any-tile-active result of the last step phase
	// tickProg and frozen are the worker's slice of the per-cycle
	// progress/freeze reduction, computed in the tick phase: the summed
	// progress counters of its owned tiles and private cache stacks, and
	// whether every owned live tile has confirmed a frozen step.
	tickProg uint64
	frozen   bool
	// prog is the worker's watermark: base + pos + 1 after finishing the
	// tile at pos. base is seq*len(tiles), with seq a dense per-phase
	// counter (cycles jump under skipping, so they cannot seed the
	// encoding); a stale value from an earlier phase is always below any
	// current-phase target.
	prog atomicPadded
}

type atomicPadded struct {
	v int64
	_ [7]int64
}

// stepEngine shards one system's tile stepping across workers.
type stepEngine struct {
	s        *System
	maxClock int64
	// Shared with Run's loop (workers touch only their owned indices; the
	// serial phase reads and writes them between joins).
	accum, strides []int64
	idleOK         []bool
	stallDelta     []StallSample

	workers []pworker
	owner   []int // tile position -> worker index
	base    int64 // written serially before dispatch, read by workers
	seq     int64
	wg      sync.WaitGroup

	// tickProgress and tickConfirmed are the joined reductions of the last
	// tick phase: the progress sum over every tile and private cache stack
	// (uint64 addition is order-independent, so the sharded sum is
	// bit-identical to the sequential one) and the all-tiles-frozen test.
	tickProgress  uint64
	tickConfirmed bool
}

// startEngine builds and starts the worker pool when parallel stepping is
// requested (System.ParallelEligibility). Every topology is eligible: the
// epoch rules above keep directory-coherent hierarchies and zero-latency
// fabrics bit-identical to sequential stepping, so the only fallback —
// returning nil and leaving Run on the sequential loop — is an effective
// worker count <= 1.
func (s *System) startEngine(accum, strides []int64, idleOK []bool, stallDelta []StallSample, maxClock int64) *stepEngine {
	if ok, _ := s.ParallelEligibility(); !ok {
		return nil
	}
	nw := s.StepWorkers
	if nw > len(s.tiles) {
		nw = len(s.tiles)
	}
	e := &stepEngine{
		s:          s,
		maxClock:   maxClock,
		accum:      accum,
		strides:    strides,
		idleOK:     idleOK,
		stallDelta: stallDelta,
		workers:    make([]pworker, nw),
		owner:      make([]int, len(s.tiles)),
	}
	nt := len(s.tiles)
	per, rem := nt/nw, nt%nw
	lo := 0
	for w := range e.workers {
		sz := per
		if w < rem {
			sz++
		}
		e.workers[w] = pworker{lo: lo, hi: lo + sz, start: make(chan phaseCmd)}
		for p := lo; p < lo+sz; p++ {
			e.owner[p] = w
		}
		lo += sz
	}
	s.Fabric.prepareParallel()
	s.Fabric.engine = e
	if s.Hier != nil && s.Hier.Dir != nil {
		s.Hier.SetCoherenceStaging(true)
	}
	for w := range e.workers {
		go e.run(&e.workers[w])
	}
	return e
}

// stop shuts the workers down and detaches the engine from the fabric and
// the hierarchy.
func (e *stepEngine) stop() {
	for w := range e.workers {
		close(e.workers[w].start)
	}
	e.s.Fabric.engine = nil
	if e.s.Hier != nil {
		e.s.Hier.SetCoherenceStaging(false)
	}
}

// step runs one parallel tile phase for cycle and reports whether any tile
// is still active — exactly the sequential loop's anyActive.
func (e *stepEngine) step(cycle int64) bool {
	e.seq++
	e.s.ParallelPhases++
	e.base = e.seq * int64(len(e.s.tiles))
	e.wg.Add(len(e.workers))
	for w := range e.workers {
		e.workers[w].start <- phaseCmd{cycle: cycle}
	}
	e.wg.Wait()
	active := false
	for w := range e.workers {
		active = active || e.workers[w].active
	}
	return active
}

// tick runs one sharded hierarchy-tick phase: the caller has already ticked
// the shared levels serially; workers tick their owned cores' private
// stacks (shared-level accesses they emit are staged per core) and compute
// their reduction slices. The join drains the staged accesses in core order
// and folds the reductions.
func (e *stepEngine) tick(cycle int64) {
	e.s.Hier.BeginTickStage()
	e.wg.Add(len(e.workers))
	for w := range e.workers {
		e.workers[w].start <- phaseCmd{cycle: cycle, tick: true}
	}
	e.wg.Wait()
	e.s.Hier.DrainTickStage()
	prog := uint64(0)
	conf := true
	for w := range e.workers {
		prog += e.workers[w].tickProg
		conf = conf && e.workers[w].frozen
	}
	e.tickProgress = prog
	e.tickConfirmed = conf
}

// run is one worker's loop: per dispatched cycle, either step the owned
// tile range in position order — mirroring the sequential loop's
// accumulator arithmetic and freeze bracketing, publishing the watermark
// after each position — or tick the owned cores' private cache stacks and
// compute the worker's reduction slice.
func (e *stepEngine) run(w *pworker) {
	for cmd := range w.start {
		if cmd.tick {
			e.runTick(w, cmd.cycle)
			e.wg.Done()
			continue
		}
		cycle := cmd.cycle
		base := e.base
		active := false
		for pos := w.lo; pos < w.hi; pos++ {
			t := e.s.tiles[pos]
			e.accum[pos] += e.strides[pos]
			if e.accum[pos] >= e.maxClock {
				e.accum[pos] -= e.maxClock
				if t.MaySync() {
					// The step may arrive at a barrier, test a release, or
					// invoke an accelerator: give it the sequential prefix.
					e.waitAllBelow(base, pos)
				}
				pp := t.Progress()
				before := t.SnapshotStalls()
				if t.Step(cycle) {
					active = true
				}
				if t.Progress() == pp {
					e.stallDelta[pos] = t.SnapshotStalls().Sub(before)
					e.idleOK[pos] = true
				}
			} else if !t.Done() {
				active = true
			}
			atomic.StoreInt64(&w.prog.v, base+int64(pos)+1)
		}
		w.active = active
		e.wg.Done()
	}
}

// runTick is one worker's tick phase. Tile position p >= 1 is core p-1
// (position 0 is the accelerator manager, which has no cache stack), so a
// worker ticks exactly the cores whose tiles it stepped — core state, its
// caches, and its completion callbacks stay on one goroutine per cycle.
func (e *stepEngine) runTick(w *pworker, cycle int64) {
	var prog uint64
	frozen := true
	for pos := w.lo; pos < w.hi; pos++ {
		if pos > 0 {
			e.s.Hier.TickCore(pos-1, cycle)
			prog += uint64(e.s.Hier.ProgressCore(pos - 1))
		}
		t := e.s.tiles[pos]
		prog += t.Progress()
		if !t.Done() && !e.idleOK[pos] {
			frozen = false
		}
	}
	w.tickProg = prog
	w.frozen = frozen
}

// waitCore blocks until the tile owning core id has finished its step this
// phase. Callers only ever wait on lower tile positions.
func (e *stepEngine) waitCore(id int) {
	pos := e.s.tilePos[id]
	w := &e.workers[e.owner[pos]]
	target := e.base + int64(pos) + 1
	for atomic.LoadInt64(&w.prog.v) < target {
		runtime.Gosched()
	}
}

// waitAllBelow blocks until every tile position < pos has finished its step
// this phase (positions the caller's own worker owns are already done by
// program order).
func (e *stepEngine) waitAllBelow(base int64, pos int) {
	for i := range e.workers {
		w := &e.workers[i]
		if w.lo >= pos {
			break
		}
		limit := pos
		if w.hi < limit {
			limit = w.hi
		}
		// Positions [w.lo, limit) are done once the watermark reaches
		// base + limit.
		target := base + int64(limit)
		for atomic.LoadInt64(&w.prog.v) < target {
			runtime.Gosched()
		}
	}
}
