package soc

// Declarative topology construction: a tile-kind registry resolving preset
// names to core configurations, expansion of config.SystemConfig tile lists
// into concrete per-tile specs, and Build — the one topology builder every
// composition path (SPMD, DAE, heterogeneous SoCs) goes through.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trace"
)

// tileKinds maps a declarative tile kind name to its core-config preset.
// Guarded by nothing: registration happens from init functions or test
// setup, before any concurrent use.
var tileKinds = map[string]func() config.CoreConfig{
	"inorder": config.InOrderCore,
	"ooo":     config.OutOfOrderCore,
	"xeon":    config.XeonLikeCore,
	// The pre-RTL accelerator core tile of §III-A: wide, deep, with
	// replicated loop bodies. (Fixed-function accelerator *models* are not
	// tiles of this kind — they are AccelModels invoked through intrinsics
	// and accounted by the system's AccelTile.)
	"accel-tile": func() config.CoreConfig { return config.AcceleratorTileCore(8) },
}

// RegisterTileKind adds (or replaces) a tile-kind preset under name. It is
// meant for init-time extension by embedders; registering after systems are
// being built concurrently is a race.
func RegisterTileKind(name string, preset func() config.CoreConfig) {
	tileKinds[name] = preset
}

// TileKinds lists the registered kind names, sorted.
func TileKinds() []string {
	out := make([]string, 0, len(tileKinds))
	for k := range tileKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ResolveTileKind returns the preset configuration for a registered kind,
// or an error with a did-you-mean suggestion.
func ResolveTileKind(name string) (config.CoreConfig, error) {
	if f, ok := tileKinds[name]; ok {
		return f(), nil
	}
	kinds := TileKinds()
	if s := stats.Closest(name, kinds); s != "" {
		return config.CoreConfig{}, fmt.Errorf("soc: unknown tile kind %q (did you mean %q?)", name, s)
	}
	return config.CoreConfig{}, fmt.Errorf("soc: unknown tile kind %q (registered: %v)", name, kinds)
}

// ResolvedTile is one concrete tile a topology instantiates: its full core
// configuration plus the declarative attributes the builder consumes.
type ResolvedTile struct {
	Cfg      config.CoreConfig
	Kind     string
	Role     string // "" = SPMD
	MeshSlot int    // -1 = default (row-major by tile ID)
}

// ExpandTiles resolves a system config's tile declarations — either legacy
// Cores or declarative Tiles — into one ResolvedTile per tile: kinds are
// looked up in the registry, overrides merged, clocks checked. The result
// order is the tile-ID order the trace binds to.
func ExpandTiles(sc *config.SystemConfig) ([]ResolvedTile, error) {
	var out []ResolvedTile
	for _, cs := range sc.Cores {
		for i := 0; i < cs.Count; i++ {
			out = append(out, ResolvedTile{Cfg: cs.Core, Kind: cs.Core.Name, MeshSlot: -1})
		}
	}
	for i, td := range sc.Tiles {
		rt, n, err := resolveTileDef(sc, i, &td)
		if err != nil {
			return nil, err
		}
		for k := 0; k < n; k++ {
			out = append(out, rt)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("soc: config %q declares no tiles", sc.Name)
	}
	return out, nil
}

// resolveTileDef resolves one declarative tile entry into its ResolvedTile
// and instance count.
func resolveTileDef(sc *config.SystemConfig, i int, td *config.TileDef) (ResolvedTile, int, error) {
	fail := func(err error) (ResolvedTile, int, error) {
		return ResolvedTile{}, 0, fmt.Errorf("soc: config %q: tile %d: %w", sc.Name, i, err)
	}
	var base config.CoreConfig
	kind := td.Kind
	switch {
	case td.Core != nil:
		base = *td.Core
		if kind == "" {
			kind = base.Name
		}
	case kind != "":
		var err error
		base, err = ResolveTileKind(kind)
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("needs a kind or an explicit core config"))
	}
	if len(td.Overrides) > 0 {
		dec := json.NewDecoder(bytes.NewReader(td.Overrides))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&base); err != nil {
			return fail(fmt.Errorf("bad overrides for kind %q: %w", kind, err))
		}
	}
	if td.ClockMHz != 0 {
		base.ClockMHz = td.ClockMHz
	}
	if base.ClockMHz <= 0 {
		return fail(fmt.Errorf("kind %q: clock must be positive, got %d MHz", kind, base.ClockMHz))
	}
	role := td.Role
	if role == config.RoleSPMD {
		role = ""
	}
	slot := -1
	if td.MeshSlot != nil {
		slot = *td.MeshSlot
	}
	n := td.Count
	if n == 0 {
		n = 1
	}
	return ResolvedTile{Cfg: base, Kind: kind, Role: role, MeshSlot: slot}, n, nil
}

// Binding carries the compiled kernel artifacts a topology's tiles replay:
// the whole-kernel graph for SPMD-role tiles and the DAE slice graphs for
// access/execute-role tiles, plus the per-tile dynamic traces. PairDAE
// applies the legacy convention for topologies with no declared roles: even
// tiles take the access slice, odd tiles the execute slice.
type Binding struct {
	Graph   *ddg.Graph
	Access  *ddg.Graph
	Execute *ddg.Graph
	Trace   *trace.Trace
	PairDAE bool
}

// Build is the single topology builder: it expands the config's tile
// declarations, binds each tile to its kernel graph by role, constructs the
// system, and applies the NoC geometry (validated — an undersized mesh is a
// construction error, never silent off-grid placement). Every composition
// path — NewSPMD, sim.Session's BuildSystem, the examples — goes through
// here.
func Build(sc *config.SystemConfig, b Binding, accels map[string]AccelModel) (*System, error) {
	rts, err := ExpandTiles(sc)
	if err != nil {
		return nil, err
	}
	if b.Trace == nil {
		return nil, fmt.Errorf("soc: config %q: no trace bound to the topology", sc.Name)
	}
	if len(rts) > len(b.Trace.Tiles) {
		return nil, fmt.Errorf("soc: config wants more cores (%d+) than traced tiles (%d)", len(b.Trace.Tiles)+1, len(b.Trace.Tiles))
	}
	if len(rts) < len(b.Trace.Tiles) {
		return nil, fmt.Errorf("soc: trace has %d tiles but config instantiates %d cores", len(b.Trace.Tiles), len(rts))
	}
	specs := make([]TileSpec, len(rts))
	for i, rt := range rts {
		role := rt.Role
		if role == "" && b.PairDAE {
			role = config.RoleAccess
			if i%2 == 1 {
				role = config.RoleExecute
			}
		}
		var g *ddg.Graph
		switch role {
		case "":
			g = b.Graph
		case config.RoleAccess:
			g = b.Access
		case config.RoleExecute:
			g = b.Execute
		default:
			return nil, fmt.Errorf("soc: config %q: tile %d: unknown role %q", sc.Name, i, role)
		}
		if g == nil {
			return nil, fmt.Errorf("soc: config %q: tile %d needs the %s kernel graph but the binding has none", sc.Name, i, roleName(role))
		}
		specs[i] = TileSpec{Cfg: rt.Cfg, Kind: rt.Kind, Graph: g, TT: b.Trace.Tiles[i]}
	}
	sys, err := New(sc.Name, specs, sc.Mem, accels)
	if err != nil {
		return nil, err
	}
	sys.StepWorkers = sc.StepWorkers
	sys.Fabric.Latency = sc.EffectiveFabricLatency()
	if sc.NoC != nil {
		w := sc.NoC.MeshWidth
		if w <= 0 || w*w < len(rts) {
			return nil, fmt.Errorf("soc: config %q: a %dx%d mesh cannot place %d tiles", sc.Name, w, w, len(rts))
		}
		sys.Fabric.MeshWidth = w
		sys.Fabric.HopCycles = sc.NoC.HopCycles
		if slots, err := meshSlots(sc.Name, rts, w); err != nil {
			return nil, err
		} else if slots != nil {
			sys.Fabric.Slots = slots
		}
	}
	return sys, nil
}

// meshSlots collects pinned NoC placements (nil when no tile pins one; the
// fabric then places tiles row-major by ID, the legacy layout).
func meshSlots(name string, rts []ResolvedTile, width int) ([]int, error) {
	pinned := 0
	for _, rt := range rts {
		if rt.MeshSlot >= 0 {
			pinned++
		}
	}
	if pinned == 0 {
		return nil, nil
	}
	if pinned != len(rts) {
		return nil, fmt.Errorf("soc: config %q: either every tile pins a mesh_slot or none does (%d of %d pinned)", name, pinned, len(rts))
	}
	slots := make([]int, len(rts))
	seen := map[int]bool{}
	for i, rt := range rts {
		s := rt.MeshSlot
		if s >= width*width {
			return nil, fmt.Errorf("soc: config %q: tile %d: mesh_slot %d outside the %dx%d mesh", name, i, s, width, width)
		}
		if seen[s] {
			return nil, fmt.Errorf("soc: config %q: mesh_slot %d pinned twice", name, s)
		}
		seen[s] = true
		slots[i] = s
	}
	return slots, nil
}

// roleName renders a role for error messages.
func roleName(role string) string {
	if role == "" {
		return "SPMD"
	}
	return role
}

// Roles returns the effective per-tile role sequence of a config — the
// trace-relevant projection of the topology (what slice each tile replays),
// independent of core kinds and clocks so artifact caching still shares
// traces across microarchitectures.
func Roles(sc *config.SystemConfig) ([]string, error) {
	rts, err := ExpandTiles(sc)
	if err != nil {
		return nil, err
	}
	roles := make([]string, len(rts))
	for i, rt := range rts {
		roles[i] = rt.Role
	}
	return roles, nil
}

// ReferenceClockMHz is the topology's first tile clock — the system
// reference clock drivers hand to accelerator models, matching the legacy
// Cores[0] convention.
func ReferenceClockMHz(sc *config.SystemConfig) (int, error) {
	rts, err := ExpandTiles(sc)
	if err != nil {
		return 0, err
	}
	return rts[0].Cfg.ClockMHz, nil
}
