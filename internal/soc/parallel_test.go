package soc

// Tests for the deterministic parallel stepper and the shared-state fixes it
// depends on: pure fabric latency queries, validated NoC geometry, and
// terminal progress updates on every Run exit path.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mosaicsim/internal/config"
	"mosaicsim/internal/interp"
)

// TestTransferCostPure is the regression test for the transferLatency bug:
// the latency computation used to bump HopsTotal as a side effect, so every
// query — including horizon probes and rejected sends — corrupted the NoC
// statistics. The cost query must be pure; hop accounting belongs to
// accepted sends only.
func TestTransferCostPure(t *testing.T) {
	f := NewFabric(1, 1)
	f.MeshWidth = 2
	f.HopCycles = 4
	if lat, hops := f.transferCost(0, 3); lat != 9 || hops != 2 {
		t.Fatalf("transferCost(0,3) = (%d, %d), want (9, 2)", lat, hops)
	}
	if f.HopsTotal() != 0 || f.Sends() != 0 || f.FullStall() != 0 {
		t.Fatalf("latency query mutated counters: hops=%d sends=%d stalls=%d",
			f.HopsTotal(), f.Sends(), f.FullStall())
	}
	if !f.TrySend(0, 3, 0) {
		t.Fatal("send within capacity failed")
	}
	if f.HopsTotal() != 2 || f.Sends() != 1 {
		t.Errorf("accepted send: hops=%d sends=%d, want 2/1", f.HopsTotal(), f.Sends())
	}
	if f.TrySend(0, 3, 0) {
		t.Fatal("send beyond capacity succeeded")
	}
	if f.HopsTotal() != 2 {
		t.Errorf("rejected send charged hops: %d, want 2", f.HopsTotal())
	}
	if f.FullStall() != 1 {
		t.Errorf("FullStall = %d, want 1", f.FullStall())
	}
	// Horizon probes walk the queue fronts; they must not mutate anything.
	f.frontArrivals(func(int, int64) {})
	if f.HopsTotal() != 2 || f.Sends() != 1 || f.Recvs() != 0 {
		t.Errorf("horizon probe mutated counters: hops=%d sends=%d recvs=%d",
			f.HopsTotal(), f.Sends(), f.Recvs())
	}
	// A rejected future-send reservation must not charge hops either.
	if _, ok := f.TrySendFuture(0, 3); ok {
		t.Fatal("future send beyond capacity succeeded")
	}
	if f.HopsTotal() != 2 || f.FullStall() != 2 {
		t.Errorf("rejected future send: hops=%d stalls=%d, want 2/2", f.HopsTotal(), f.FullStall())
	}
}

// TestFabricValidateSlots is the regression test for the unchecked
// Slots[src]/Slots[dst] indexing: a hand-built fabric with a short,
// off-grid, or duplicated Slots table must fail Validate up front instead of
// panicking with an opaque index error mid-run.
func TestFabricValidateSlots(t *testing.T) {
	mk := func() *Fabric {
		f := NewFabric(4, 1)
		f.Tiles = 4
		f.MeshWidth = 2
		return f
	}
	cases := []struct {
		name  string
		build func() *Fabric
		want  string // substring of the error; "" = valid
	}{
		{"valid", func() *Fabric { f := mk(); f.Slots = []int{0, 1, 2, 3}; return f }, ""},
		{"no-slots", mk, ""},
		{"short", func() *Fabric { f := mk(); f.Slots = []int{0, 1}; return f }, "pins only 2"},
		{"off-grid", func() *Fabric { f := mk(); f.Slots = []int{0, 1, 2, 9}; return f }, "outside"},
		{"duplicate", func() *Fabric { f := mk(); f.Slots = []int{0, 1, 2, 2}; return f }, "both pinned"},
		{"slots-without-mesh", func() *Fabric { f := NewFabric(4, 1); f.Slots = []int{0}; return f }, "no mesh"},
		{"undersized-mesh", func() *Fabric { f := mk(); f.Tiles = 5; return f }, "cannot place"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestRunRejectsBadSlots: Run must surface a bad Slots table as an error
// before the first cycle, never as a mid-run panic.
func TestRunRejectsBadSlots(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 4, vecSetup(64), nil)
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "bad-slots",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 4}},
		Mem:   config.TableIIMem(),
		NoC:   &config.NoCConfig{MeshWidth: 2, HopCycles: 1},
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Fabric.Slots = []int{0, 1} // hand-corrupted: 4 tiles, 2 slots
	err = sys.Run(context.Background(), 0)
	if err == nil || !strings.Contains(err.Error(), "Slots") {
		t.Fatalf("want a Slots validation error, got %v", err)
	}
}

// pingPongSrc exercises both queue directions under backpressure: tile 0
// sends up (src < dst) and tile 1 sends down (src > dst), so the parallel
// capacity rule's wait path and committed-epoch path both run.
const pingPongSrc = `
void kernel(double* A, double* out, long n) {
  long tid = tile_id();
  if (tid == 0) {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
      send(1, A[i]);
      acc = acc + recv_double(1);
    }
    out[0] = acc;
  } else {
    for (long i = 0; i < n; i++) {
      double v = recv_double(0);
      send(0, v + v);
    }
  }
}
`

// barrierStepSrc makes every tile rendezvous repeatedly so the ordered-tile
// (MaySync) serialization path runs on every iteration.
const barrierStepSrc = `
void kernel(double* A, long n) {
  long tid = tile_id();
  for (long i = 0; i < n; i++) {
    A[tid * 8] = A[tid * 8] + 1.0;
    barrier();
  }
}
`

// TestParallelSteppingDeterminism asserts the tentpole bar: byte-identical
// Result JSON for step-worker counts 1, 2, and 8, with cycle skipping both
// on and off, across fabrics with backpressure, barriers, and a NoC mesh.
func TestParallelSteppingDeterminism(t *testing.T) {
	tiny := func(cores int, maxMessages int, noc *config.NoCConfig) *config.SystemConfig {
		cc := config.InOrderCore()
		if maxMessages > 0 {
			cc.MaxMessages = maxMessages
		}
		return &config.SystemConfig{
			Name:  "par",
			Cores: []config.CoreSpec{{Core: cc, Count: cores}},
			Mem:   config.TableIIMem(),
			NoC:   noc,
		}
	}
	builds := []struct {
		name  string
		build func(t *testing.T) *System
	}{
		{"pingpong-backpressure", func(t *testing.T) *System {
			g, tr := traceSPMD(t, pingPongSrc, 2, func(m *interp.Memory) []uint64 {
				vals := make([]float64, 300)
				for i := range vals {
					vals[i] = float64(i)
				}
				return []uint64{m.AllocF64(vals), m.Alloc(8, 8), 300}
			}, nil)
			sys, err := NewSPMD(tiny(2, 4, nil), g, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"barriers-4tile", func(t *testing.T) *System {
			g, tr := traceSPMD(t, barrierStepSrc, 4, func(m *interp.Memory) []uint64 {
				return []uint64{m.AllocF64(make([]float64, 64)), 40}
			}, nil)
			sys, err := NewSPMD(tiny(4, 0, nil), g, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"mesh-vecadd", func(t *testing.T) *System {
			g, tr := traceSPMD(t, spmdVecAdd, 4, vecSetup(1024), nil)
			sys, err := NewSPMD(tiny(4, 0, &config.NoCConfig{MeshWidth: 2, HopCycles: 4}), g, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"coherent-directory", func(t *testing.T) *System {
			// Directory coherence: cross-core invalidations ride the staged
			// commit, so worker count must not reorder them.
			g, tr := traceSPMD(t, spmdVecAdd, 4, vecSetup(512), nil)
			sc := tiny(4, 0, nil)
			sc.Mem.Directory = true
			sys, err := NewSPMD(sc, g, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}},
		{"zero-latency-pingpong", func(t *testing.T) *System {
			// A zero-cost fabric delivers messages the cycle they are sent,
			// in both queue directions, under backpressure — the same-cycle
			// visibility rules carry the whole determinism argument.
			g, tr := traceSPMD(t, pingPongSrc, 2, func(m *interp.Memory) []uint64 {
				vals := make([]float64, 300)
				for i := range vals {
					vals[i] = float64(i)
				}
				return []uint64{m.AllocF64(vals), m.Alloc(8, 8), 300}
			}, nil)
			sc := tiny(2, 4, nil)
			zero := int64(0)
			sc.FabricLatency = &zero
			sys, err := NewSPMD(sc, g, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sys.Fabric.Latency != 0 {
				t.Fatalf("fabric_latency knob not applied: latency = %d", sys.Fabric.Latency)
			}
			return sys
		}},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			for _, noskip := range []bool{true, false} {
				var want []byte
				for _, workers := range []int{1, 2, 8} {
					sys := b.build(t)
					sys.DisableCycleSkipping = noskip
					sys.StepWorkers = workers
					if err := sys.Run(context.Background(), 0); err != nil {
						t.Fatalf("run (noskip=%v, workers=%d): %v", noskip, workers, err)
					}
					if workers > 1 && sys.ParallelPhases == 0 {
						t.Fatalf("workers=%d never engaged the parallel stepper", workers)
					}
					got, err := json.Marshal(sys.Result())
					if err != nil {
						t.Fatal(err)
					}
					if workers == 1 {
						want = got
						continue
					}
					if !bytes.Equal(want, got) {
						t.Errorf("workers=%d (noskip=%v) diverged from sequential:\nseq: %s\npar: %s",
							workers, noskip, want, got)
					}
				}
			}
		})
	}
}

// TestCoherentSystemStepsParallel: directory coherence used to force the
// sequential fallback; with invalidations staged per core and committed in
// tile order at the serial join, a coherent system now shards like any
// other — parallel phases run, results match sequential byte for byte, and
// ParallelEligibility explains the remaining fallbacks.
func TestCoherentSystemStepsParallel(t *testing.T) {
	build := func(t *testing.T) *System {
		g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(256), nil)
		mc := config.TableIIMem()
		mc.Directory = true
		sys, err := NewSPMD(&config.SystemConfig{
			Name:  "coh-par",
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 2}},
			Mem:   mc,
		}, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	seq := build(t)
	if ok, reason := seq.ParallelEligibility(); ok {
		t.Errorf("workers=0 reported eligible (%s)", reason)
	}
	if err := seq.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(seq.Result())
	if err != nil {
		t.Fatal(err)
	}

	par := build(t)
	par.StepWorkers = 8
	if ok, reason := par.ParallelEligibility(); !ok {
		t.Errorf("coherent system reported ineligible: %s", reason)
	}
	if err := par.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if par.ParallelPhases == 0 {
		t.Error("coherent system never engaged the parallel stepper")
	}
	got, err := json.Marshal(par.Result())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("coherent parallel run diverged from sequential:\nseq: %s\npar: %s", want, got)
	}
}

// TestRunEmitsTerminalProgress is the regression test for the stale-progress
// bug: OnProgress used to fire only inside the every-128-iteration poll, so
// a finished (or canceled, or limited) run's last streamed update lagged the
// final state by up to the poll interval plus the last horizon jump. Every
// exit path must now emit one final update.
func TestRunEmitsTerminalProgress(t *testing.T) {
	build := func(t *testing.T) *System {
		g, tr := traceSPMD(t, spmdVecAdd, 1, vecSetup(2048), nil)
		sys, err := NewSPMD(&config.SystemConfig{
			Name:  "final-progress",
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
			Mem:   config.TableIIMem(),
		}, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	check := func(t *testing.T, ups []ProgressUpdate, wantCycle int64) {
		t.Helper()
		if len(ups) == 0 {
			t.Fatal("OnProgress never fired")
		}
		last := ups[len(ups)-1]
		if !last.Final {
			t.Fatalf("last update is not Final: %+v", last)
		}
		if wantCycle >= 0 && last.Cycle != wantCycle {
			t.Fatalf("final update cycle = %d, want %d", last.Cycle, wantCycle)
		}
		for _, u := range ups[:len(ups)-1] {
			if u.Final {
				t.Fatalf("non-terminal update marked Final: %+v", u)
			}
		}
	}
	t.Run("done", func(t *testing.T) {
		sys := build(t)
		var ups []ProgressUpdate
		sys.OnProgress = func(u ProgressUpdate) { ups = append(ups, u) }
		if err := sys.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		check(t, ups, sys.Cycles)
	})
	t.Run("limit", func(t *testing.T) {
		sys := build(t)
		var ups []ProgressUpdate
		sys.OnProgress = func(u ProgressUpdate) { ups = append(ups, u) }
		if err := sys.Run(context.Background(), 500); err == nil {
			t.Fatal("expected a cycle-limit error")
		}
		check(t, ups, sys.Cycles)
	})
	t.Run("cancel", func(t *testing.T) {
		sys := build(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ups []ProgressUpdate
		sys.OnProgress = func(u ProgressUpdate) { ups = append(ups, u) }
		if err := sys.Run(ctx, 0); err == nil {
			t.Fatal("expected a cancellation error")
		}
		check(t, ups, -1)
	})
}
