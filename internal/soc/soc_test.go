package soc

import (
	"context"
	"strings"
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/trace"
)

// traceSPMD compiles and traces a kernel across tiles.
func traceSPMD(t *testing.T, src string, tiles int, setup func(m *interp.Memory) []uint64, acc map[string]interp.AccFunc) (*ddg.Graph, *trace.Trace) {
	t.Helper()
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := mod.Func("kernel")
	m := interp.NewMemory(1 << 24)
	args := setup(m)
	res, err := interp.Run(f, m, args, interp.Options{NumTiles: tiles, Acc: acc})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return ddg.Build(f), res.Trace
}

// Block partitioning keeps each tile's accesses line-local (a stride-by-
// num_tiles partition with 64B lines would make every tile touch every
// line).
const spmdVecAdd = `
void kernel(double* A, double* B, double* C, long n) {
  long tid = tile_id();
  long nt = num_tiles();
  long chunk = (n + nt - 1) / nt;
  long lo = tid * chunk;
  long hi = lo + chunk;
  if (hi > n) {
    hi = n;
  }
  for (long i = lo; i < hi; i++) {
    C[i] = A[i] + B[i];
  }
}
`

func vecSetup(n int) func(m *interp.Memory) []uint64 {
	return func(m *interp.Memory) []uint64 {
		pa := m.AllocF64(make([]float64, n))
		pb := m.AllocF64(make([]float64, n))
		pc := m.Alloc(int64(n)*8, 64)
		return []uint64{pa, pb, pc, uint64(n)}
	}
}

func runSPMD(t *testing.T, src string, cores int, coreCfg config.CoreConfig, setup func(m *interp.Memory) []uint64) Result {
	t.Helper()
	g, tr := traceSPMD(t, src, cores, setup, nil)
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "test",
		Cores: []config.CoreSpec{{Core: coreCfg, Count: cores}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 200_000_000); err != nil {
		t.Fatal(err)
	}
	return sys.Result()
}

func TestSingleCoreEndToEnd(t *testing.T) {
	r := runSPMD(t, spmdVecAdd, 1, config.OutOfOrderCore(), vecSetup(512))
	if r.Cycles <= 0 || r.Instrs <= 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("IPC = %.2f out of range", r.IPC)
	}
	if r.L1.Accesses == 0 {
		t.Error("no L1 traffic recorded")
	}
	if r.DRAM.Reads == 0 {
		t.Error("no DRAM traffic for a cold working set")
	}
	if r.EnergyPJ <= 0 {
		t.Error("no energy estimate")
	}
}

func TestMultiCoreScaling(t *testing.T) {
	cycles := map[int]int64{}
	for _, n := range []int{1, 2, 4} {
		r := runSPMD(t, spmdVecAdd, n, config.OutOfOrderCore(), vecSetup(2048))
		cycles[n] = r.Cycles
	}
	if !(cycles[1] > cycles[2] && cycles[2] > cycles[4]) {
		t.Errorf("no parallel speedup: %v", cycles)
	}
	speedup4 := float64(cycles[1]) / float64(cycles[4])
	if speedup4 < 1.8 {
		t.Errorf("4-core speedup %.2fx too low", speedup4)
	}
}

func TestDAEPairThroughFabric(t *testing.T) {
	src := `
void kernel(double* A, double* out, long n) {
  long tid = tile_id();
  if (tid == 0) {
    for (long i = 0; i < n; i++) {
      send(1, A[i]);
    }
  } else {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
      acc += recv_double(0);
    }
    out[0] = acc;
  }
}
`
	g, tr := traceSPMD(t, src, 2, func(m *interp.Memory) []uint64 {
		vals := make([]float64, 400)
		for i := range vals {
			vals[i] = float64(i)
		}
		return []uint64{m.AllocF64(vals), m.Alloc(8, 8), 400}
	}, nil)
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "dae",
		Cores: []config.CoreSpec{{Core: config.InOrderCore(), Count: 2}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 200_000_000); err != nil {
		t.Fatal(err)
	}
	if sys.Fabric.Sends() != 400 || sys.Fabric.Recvs() != 400 {
		t.Errorf("fabric sends=%d recvs=%d, want 400/400", sys.Fabric.Sends(), sys.Fabric.Recvs())
	}
	if sys.Fabric.Pending() != 0 {
		t.Errorf("%d messages stuck in fabric", sys.Fabric.Pending())
	}
}

func TestFabricBackpressure(t *testing.T) {
	f := NewFabric(2, 1)
	if !f.TrySend(0, 1, 0) || !f.TrySend(0, 1, 0) {
		t.Fatal("sends within capacity failed")
	}
	if f.TrySend(0, 1, 0) {
		t.Error("send beyond capacity succeeded")
	}
	if f.FullStall() != 1 {
		t.Errorf("FullStall = %d", f.FullStall())
	}
	if f.TryRecv(1, 0, 0) {
		t.Error("message consumed before its arrival cycle")
	}
	if !f.TryRecv(1, 0, 1) {
		t.Error("matured message not consumed")
	}
	if !f.TrySend(0, 1, 5) {
		t.Error("freed capacity not reusable")
	}
}

type fixedAccel struct {
	cycles int64
	calls  int
}

func (a *fixedAccel) Invoke(params []int64, concurrent int) (AccelResult, error) {
	a.calls++
	return AccelResult{Cycles: a.cycles, Bytes: 1024, EnergyPJ: 5000}, nil
}

func TestAcceleratorThroughSystem(t *testing.T) {
	src := `
void kernel(double* A, long n) {
  acc_fixed(A, n);
  A[0] = 1.0;
}
`
	g, tr := traceSPMD(t, src, 1, func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocF64(make([]float64, 16)), 16}
	}, map[string]interp.AccFunc{"acc_fixed": func(m *interp.Memory, p []int64) {}})
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "accel",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}, g, tr, map[string]AccelModel{"acc_fixed": &fixedAccel{cycles: 30000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 100_000_000); err != nil {
		t.Fatal(err)
	}
	r := sys.Result()
	if r.Cycles < 30000 {
		t.Errorf("cycles %d below accelerator latency", r.Cycles)
	}
	if r.AccelCalls != 1 || r.AccelBytes != 1024 {
		t.Errorf("accel stats wrong: %+v", r)
	}
	if sys.AccelEnergy() != 5000 {
		t.Errorf("accel energy = %g", sys.AccelEnergy())
	}
}

// concAccel records the highest `concurrent` value any invocation observed.
type concAccel struct {
	cycles  int64
	maxConc int
}

func (a *concAccel) Invoke(params []int64, concurrent int) (AccelResult, error) {
	if concurrent > a.maxConc {
		a.maxConc = concurrent
	}
	return AccelResult{Cycles: a.cycles, Bytes: 64, EnergyPJ: 1}, nil
}

// TestAccelConcurrencyObserved: two tiles invoke the same long-running
// accelerator at nearly the same cycle, so the second invocation must see
// concurrent > 0. The old accounting decremented outstanding[] synchronously
// inside Invoke, so concurrent was always 0 and the §IV-B bandwidth-sharing
// scaling never engaged.
func TestAccelConcurrencyObserved(t *testing.T) {
	src := `
void kernel(double* A, long n) {
  acc_fixed(A, n);
  A[tile_id()] = 1.0;
}
`
	g, tr := traceSPMD(t, src, 2, func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocF64(make([]float64, 16)), 16}
	}, map[string]interp.AccFunc{"acc_fixed": func(m *interp.Memory, p []int64) {}})
	ca := &concAccel{cycles: 50000}
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "conc",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 2}},
		Mem:   config.TableIIMem(),
	}, g, tr, map[string]AccelModel{"acc_fixed": ca})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 100_000_000); err != nil {
		t.Fatal(err)
	}
	if sys.AccelCalls() != 2 {
		t.Fatalf("accel calls = %d, want 2", sys.AccelCalls())
	}
	if ca.maxConc < 1 {
		t.Error("overlapping invocations observed concurrent = 0: outstanding[] is decremented before simulated completion")
	}
}

// TestBarrierWithNonParticipantTile: a heterogeneous (DAE-style) system where
// one tile's trace has barrier ops and the other's has none must complete.
// The legacy all-tiles barrier rule waited on the barrier-free tile forever
// and burned the whole cycle limit.
func TestBarrierWithNonParticipantTile(t *testing.T) {
	barSrc := `
void kernel(double* A, long n) {
  A[0] = 1.0;
  barrier();
  A[1] = 2.0;
}
`
	plainSrc := `
void kernel(double* A, long n) {
  for (long i = 0; i < n; i++) {
    A[i] = 3.0;
  }
}
`
	setup := func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocF64(make([]float64, 64)), 64}
	}
	gB, trB := traceSPMD(t, barSrc, 1, setup, nil)
	gP, trP := traceSPMD(t, plainSrc, 1, setup, nil)
	sys, err := New("hetero-barrier", []TileSpec{
		{Cfg: config.InOrderCore(), Graph: gB, TT: trB.Tiles[0]},
		{Cfg: config.InOrderCore(), Graph: gP, TT: trP.Tiles[0]},
	}, config.TableIIMem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 10_000_000); err != nil {
		t.Fatalf("system with a barrier-free tile did not complete: %v", err)
	}
	for i, c := range sys.Cores {
		if !c.Done() {
			t.Errorf("tile %d never finished", i)
		}
	}
}

// TestBarrierCountMismatchIsError: participating tiles whose traces execute
// different numbers of barriers are a guaranteed deadlock; New must say so
// instead of letting Run burn the cycle limit.
func TestBarrierCountMismatchIsError(t *testing.T) {
	oneSrc := `
void kernel(double* A, long n) {
  barrier();
  A[0] = 1.0;
}
`
	twoSrc := `
void kernel(double* A, long n) {
  barrier();
  A[1] = 2.0;
  barrier();
}
`
	setup := func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocF64(make([]float64, 16)), 16}
	}
	g1, tr1 := traceSPMD(t, oneSrc, 1, setup, nil)
	g2, tr2 := traceSPMD(t, twoSrc, 1, setup, nil)
	_, err := New("mismatch", []TileSpec{
		{Cfg: config.InOrderCore(), Graph: g1, TT: tr1.Tiles[0]},
		{Cfg: config.InOrderCore(), Graph: g2, TT: tr2.Tiles[0]},
	}, config.TableIIMem(), nil)
	if err == nil || !strings.Contains(err.Error(), "barrier") {
		t.Errorf("want descriptive barrier-deadlock error, got %v", err)
	}
}

func TestMissingAcceleratorModelFails(t *testing.T) {
	src := `
void kernel(double* A, long n) {
  acc_missing(A, n);
}
`
	g, tr := traceSPMD(t, src, 1, func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocF64(make([]float64, 4)), 4}
	}, map[string]interp.AccFunc{"acc_missing": func(m *interp.Memory, p []int64) {}})
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "x",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("missing accelerator model should panic during simulation")
		}
	}()
	_ = sys.Run(context.Background(), 1_000_000)
}

func TestConfigTraceMismatch(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(64), nil)
	_, err := NewSPMD(&config.SystemConfig{
		Name:  "bad",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 4}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err == nil || !strings.Contains(err.Error(), "traced tiles") {
		t.Errorf("want tile-count mismatch error, got %v", err)
	}
}

func TestSystemDeterminism(t *testing.T) {
	a := runSPMD(t, spmdVecAdd, 4, config.OutOfOrderCore(), vecSetup(1024))
	b := runSPMD(t, spmdVecAdd, 4, config.OutOfOrderCore(), vecSetup(1024))
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Errorf("nondeterministic results: %d/%d vs %d/%d", a.Cycles, a.Instrs, b.Cycles, b.Instrs)
	}
}

func TestMixedClockTiles(t *testing.T) {
	fast := config.OutOfOrderCore() // 2000 MHz
	slow := config.OutOfOrderCore()
	slow.Name = "slow"
	slow.ClockMHz = 1000
	g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(512), nil)
	sys, err := New("mixed", []TileSpec{
		{Cfg: fast, Graph: g, TT: tr.Tiles[0]},
		{Cfg: slow, Graph: g, TT: tr.Tiles[1]},
	}, config.TableIIMem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 200_000_000); err != nil {
		t.Fatal(err)
	}
	f, s := sys.Cores[0], sys.Cores[1]
	if !f.Done() || !s.Done() {
		t.Fatal("tiles not finished")
	}
	if s.FinishCycle() <= f.FinishCycle() {
		t.Errorf("half-clock tile finished at %d, full-clock at %d; slow tile should finish later", s.FinishCycle(), f.FinishCycle())
	}
}

func TestBandwidthBoundScalingIsSublinear(t *testing.T) {
	// A streaming kernel with a tiny per-element compute: with DRAM
	// bandwidth clamped hard, 8 cores cannot be 8x faster than 1.
	src := spmdVecAdd
	low := config.TableIIMem()
	low.DRAM.BandwidthGBs = 2
	cyc := map[int]int64{}
	for _, n := range []int{1, 8} {
		g, tr := traceSPMD(t, src, n, vecSetup(16384), nil)
		sys, err := NewSPMD(&config.SystemConfig{
			Name:  "bw",
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: n}},
			Mem:   low,
		}, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 1_000_000_000); err != nil {
			t.Fatal(err)
		}
		cyc[n] = sys.Cycles
	}
	speedup := float64(cyc[1]) / float64(cyc[8])
	if speedup > 6 {
		t.Errorf("bandwidth-bound speedup %.2fx is implausibly linear", speedup)
	}
	if speedup < 1 {
		t.Errorf("8 cores slower than 1: %.2fx", speedup)
	}
}

func TestNoCHopLatency(t *testing.T) {
	// On a 4-wide mesh, tile 0 -> tile 3 is 3 hops; with 5-cycle hops the
	// message matures 15 cycles later than a directly-attached pair.
	near := NewFabric(16, 1)
	far := NewFabric(16, 1)
	far.MeshWidth = 4
	far.HopCycles = 5
	if !near.TrySend(0, 3, 100) || !far.TrySend(0, 3, 100) {
		t.Fatal("sends failed")
	}
	if !near.TryRecv(3, 0, 101) {
		t.Error("flat fabric message should mature after base latency")
	}
	if far.TryRecv(3, 0, 101+14) {
		t.Error("mesh message matured before the hop latency elapsed")
	}
	if !far.TryRecv(3, 0, 101+15) {
		t.Error("mesh message never matured")
	}
	if far.HopsTotal() != 3 {
		t.Errorf("HopsTotal = %d, want 3", far.HopsTotal())
	}
}

func TestNoCSlowsDAEPairs(t *testing.T) {
	// The same DAE-style ping of messages costs more wall-clock on a mesh
	// with slow links.
	src := `
void kernel(double* A, double* out, long n) {
  long tid = tile_id();
  if (tid == 0) {
    for (long i = 0; i < n; i++) { send(3, A[i]); }
  } else {
    if (tid == 3) {
      double acc = 0.0;
      for (long i = 0; i < n; i++) { acc += recv_double(0); }
      out[0] = acc;
    }
  }
}
`
	run := func(noc *config.NoCConfig) int64 {
		g, tr := traceSPMD(t, src, 4, func(m *interp.Memory) []uint64 {
			return []uint64{m.AllocF64(make([]float64, 500)), m.Alloc(8, 8), 500}
		}, nil)
		cfg := &config.SystemConfig{
			Name:  "noc",
			Cores: []config.CoreSpec{{Core: config.InOrderCore(), Count: 4}},
			Mem:   config.TableIIMem(),
			NoC:   noc,
		}
		sys, err := NewSPMD(cfg, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles
	}
	flat := run(nil)
	mesh := run(&config.NoCConfig{MeshWidth: 2, HopCycles: 40})
	if mesh <= flat {
		t.Errorf("mesh with 40-cycle hops (%d) should be slower than flat fabric (%d)", mesh, flat)
	}
}

func TestDirectoryCoherenceThroughSystem(t *testing.T) {
	// Four tiles atomically hammer one shared counter line: with the
	// directory enabled, ownership ping-pongs and the run slows down.
	src := `
void kernel(long* ctr, long n) {
  long tid = tile_id();
  for (long i = 0; i < n; i++) {
    atomic_add(ctr, 1);
  }
}
`
	run := func(directory bool) int64 {
		g, tr := traceSPMD(t, src, 4, func(m *interp.Memory) []uint64 {
			return []uint64{m.AllocI64([]int64{0}), 200}
		}, nil)
		mem := config.TableIIMem()
		mem.Directory = directory
		cfg := &config.SystemConfig{
			Name:  "coh",
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 4}},
			Mem:   mem,
		}
		sys, err := NewSPMD(cfg, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if directory {
			if sys.Hier.Dir == nil || sys.Hier.Dir.Stats.Invalidations == 0 {
				t.Error("directory recorded no invalidations on a contended counter")
			}
		}
		return sys.Cycles
	}
	coherent := run(true)
	incoherent := run(false)
	if coherent <= incoherent {
		t.Errorf("coherent contended atomics (%d) should be slower than incoherent (%d)", coherent, incoherent)
	}
}

func TestEnergyBreakdownSums(t *testing.T) {
	r := runSPMD(t, spmdVecAdd, 2, config.OutOfOrderCore(), vecSetup(1024))
	if r.Energy.CoresPJ <= 0 || r.Energy.L1PJ <= 0 || r.Energy.DRAMPJ <= 0 {
		t.Errorf("missing energy components: %+v", r.Energy)
	}
	if diff := r.EnergyPJ - r.Energy.TotalPJ(); diff != 0 {
		t.Errorf("EnergyPJ (%g) != component sum (%g)", r.EnergyPJ, r.Energy.TotalPJ())
	}
}

// TestRunCycleLimitError exercises the timeout path: the error must name the
// effective limit so users can tell a too-small explicit limit from the 2^40
// default guard.
func TestRunCycleLimitError(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 1, vecSetup(512), nil)
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "limit-test",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(context.Background(), 10)
	if err == nil {
		t.Fatal("Run(10) completed a 512-element vecadd; expected a cycle-limit error")
	}
	if !strings.Contains(err.Error(), "cycle limit of 10") {
		t.Errorf("timeout error does not surface the effective limit: %v", err)
	}
}

// TestCycleSkippingAccounting checks the Interleaver's skip counters: the
// reported cycle count must equal stepped + skipped - 1 (cycles are
// zero-based), skipping must engage on an idle-heavy run, and disabling it
// must both zero the skip counter and leave the simulated result unchanged.
func TestCycleSkippingAccounting(t *testing.T) {
	build := func() *System {
		g, tr := traceSPMD(t, spmdVecAdd, 1, vecSetup(512), nil)
		sys, err := NewSPMD(&config.SystemConfig{
			Name:  "skip-test",
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
			Mem:   config.TableIIMem(),
		}, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	skip := build()
	if err := skip.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if skip.SkippedCycles == 0 {
		t.Error("cycle skipping never engaged on a DRAM-latency-bound run")
	}
	if got := skip.SteppedCycles + skip.SkippedCycles; got != skip.Cycles+1 {
		t.Errorf("stepped (%d) + skipped (%d) = %d, want cycles+1 = %d",
			skip.SteppedCycles, skip.SkippedCycles, got, skip.Cycles+1)
	}
	naive := build()
	naive.DisableCycleSkipping = true
	if err := naive.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if naive.SkippedCycles != 0 {
		t.Errorf("naive loop reported %d skipped cycles", naive.SkippedCycles)
	}
	if naive.Cycles != skip.Cycles {
		t.Errorf("cycle counts diverge: naive %d, skipping %d", naive.Cycles, skip.Cycles)
	}
}

// TestOnProgressHook checks the in-flight progress callback: it fires during
// a run of any real length, reports monotonically advancing positions, and
// its stepped/skipped split never regresses.
func TestOnProgressHook(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 1, vecSetup(4096), nil)
	sys, err := NewSPMD(&config.SystemConfig{
		Name:  "progress",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ups []ProgressUpdate
	sys.OnProgress = func(u ProgressUpdate) { ups = append(ups, u) }
	if err := sys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if len(ups) == 0 {
		t.Fatal("OnProgress never fired on a multi-thousand-cycle run")
	}
	prev := ProgressUpdate{Cycle: -1}
	for i, u := range ups {
		if u.Cycle < prev.Cycle {
			t.Fatalf("update %d cycle %d regressed below %d", i, u.Cycle, prev.Cycle)
		}
		if u.Stepped < prev.Stepped || u.Skipped < prev.Skipped {
			t.Fatalf("update %d stepped/skipped (%d/%d) regressed below %d/%d",
				i, u.Stepped, u.Skipped, prev.Stepped, prev.Skipped)
		}
		if u.Cycle > sys.Cycles {
			t.Fatalf("update %d cycle %d beyond final cycle count %d", i, u.Cycle, sys.Cycles)
		}
		prev = u
	}
}
