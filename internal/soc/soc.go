// Package soc implements MosaicSim-Go's Interleaver (§II): it composes tile
// models (cores and accelerators), advances them cycle by cycle with
// per-tile clock ratios, carries inter-tile messages through bounded
// communication buffers, and drives the shared memory hierarchy —
// "combining module behaviors into system-wide performance estimates".
package soc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"mosaicsim/internal/config"
	"mosaicsim/internal/core"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/mem"
	"mosaicsim/internal/trace"
)

// AccelResult is what an accelerator performance model reports for one
// invocation (§IV-A): clock cycles, bytes moved to/from memory, and average
// energy.
type AccelResult struct {
	Cycles   int64
	Bytes    int64
	EnergyPJ float64
}

// AccelModel is a pluggable accelerator tile model. Invoke receives the
// traced invocation parameters and the number of already-outstanding
// invocations of the same accelerator, so models can scale execution under
// memory-bandwidth sharing (§IV-B).
type AccelModel interface {
	Invoke(params []int64, concurrent int) (AccelResult, error)
}

// TileSpec instantiates one tile: its core configuration, the kernel DDG it
// replays, and its dynamic trace. DAE systems give different tiles different
// kernels (§VII-A). Kind labels the tile for per-kind breakdowns; empty
// defaults to the core config's name.
type TileSpec struct {
	Cfg   config.CoreConfig
	Kind  string
	Graph *ddg.Graph
	TT    *trace.TileTrace
}

// Fabric is the Interleaver's message transport: bounded per-(src,dst) FIFOs
// with a fixed transfer latency (§II-C; Table II communication buffers).
// With a NoC configured, transfers additionally pay per-hop latency for the
// Manhattan distance between the tiles on a 2D mesh — the "message module"
// the paper lists as the natural extension of the tile model (§V-A).
//
// Every queue is single-producer/single-consumer (the producer is the source
// tile, the consumer the destination tile) and every statistic is sharded
// per tile, so tiles stepping on different workers send and receive
// concurrently while the totals merge deterministically; DESIGN.md §5e has
// the full parallel-stepping contract.
type Fabric struct {
	Capacity int
	Latency  int64
	// Tiles is the system's tile count (barrier membership and shard width).
	Tiles int
	// MeshWidth > 0 arranges tiles on a 2D mesh of that width; HopCycles is
	// the per-hop link latency.
	MeshWidth int
	HopCycles int64
	// Slots pins tile i to mesh slot Slots[i] (row-major); nil places tiles
	// row-major by tile ID.
	Slots []int

	queues map[[2]int]*msgQueue

	arrivals []int64 // per-tile barrier arrival counts
	// participants marks the tiles that execute barrier ops; nil means every
	// tile in [0, Tiles) does (the legacy rule for hand-built fabrics).
	participants []bool

	// Per-tile statistic shards, indexed by the tile that earns the count
	// (the sender, except recvs). Sequential stepping only ever bumped the
	// old global counters from the stepping tile, so summing the shards is
	// bit-identical at any worker count.
	sends     []int64
	recvs     []int64
	fullStall []int64
	hops      []int64

	// engine is non-nil while System.Run is stepping tiles in parallel; it
	// selects the epoch capacity rule and forbids lazy queue creation.
	engine *stepEngine
	// dirty lists, per receiving tile, the queues that tile popped since the
	// last epoch commit; commitEpoch publishes their pop counts to senders.
	dirty [][]*msgQueue
	// pushDirty lists, per sending tile, the same-cycle queues that tile
	// pushed into since the last epoch commit; commitEpoch publishes their
	// push counts to receivers.
	pushDirty [][]*msgQueue
}

// transferCost returns the fabric latency from src to dst — including NoC
// hops when a mesh is configured — and the hop count. It is a pure query:
// hop accounting is charged by the successful-send paths, so horizon probes
// and rejected sends never mutate statistics.
func (f *Fabric) transferCost(src, dst int) (lat, hops int64) {
	lat = f.Latency
	if f.MeshWidth <= 0 {
		return lat, 0
	}
	if f.Slots != nil {
		if src >= len(f.Slots) || dst >= len(f.Slots) {
			panic(fmt.Sprintf("soc: fabric Slots pins %d tiles but tile %d sends to tile %d (Fabric.Validate rejects this before a run)",
				len(f.Slots), src, dst))
		}
		src, dst = f.Slots[src], f.Slots[dst]
	}
	sx, sy := src%f.MeshWidth, src/f.MeshWidth
	dx, dy := dst%f.MeshWidth, dst/f.MeshWidth
	hops = int64(abs(sx-dx) + abs(sy-dy))
	return lat + hops*f.HopCycles, hops
}

// Validate checks the fabric's NoC geometry up front: a short, off-grid, or
// duplicated Slots table is reported as a construction-time error (the same
// rule topology.Build applies to declarative configs) instead of an opaque
// index panic mid-run. System.Run calls it before the first cycle.
func (f *Fabric) Validate() error {
	if f.MeshWidth <= 0 {
		if f.Slots != nil {
			return fmt.Errorf("soc: fabric pins %d mesh slots but configures no mesh (MeshWidth = %d)", len(f.Slots), f.MeshWidth)
		}
		return nil
	}
	if f.Slots == nil {
		if f.Tiles > f.MeshWidth*f.MeshWidth {
			return fmt.Errorf("soc: a %dx%d mesh cannot place %d tiles", f.MeshWidth, f.MeshWidth, f.Tiles)
		}
		return nil
	}
	if f.Tiles > len(f.Slots) {
		return fmt.Errorf("soc: fabric has %d tiles but Slots pins only %d; every tile needs a mesh slot", f.Tiles, len(f.Slots))
	}
	seen := map[int]int{}
	for i, s := range f.Slots {
		if s < 0 || s >= f.MeshWidth*f.MeshWidth {
			return fmt.Errorf("soc: tile %d pinned to mesh slot %d outside the %dx%d mesh", i, s, f.MeshWidth, f.MeshWidth)
		}
		if j, dup := seen[s]; dup {
			return fmt.Errorf("soc: tiles %d and %d both pinned to mesh slot %d", j, i, s)
		}
		seen[s] = i
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// msgQueue is the FIFO of in-flight arrival cycles for one (src,dst) pair: a
// single-producer (src tile) / single-consumer (dst tile) ring sized to the
// fabric capacity, so its buffer is never reallocated. Arrival cycles are
// accessed atomically — a TrySendFuture reservation matures in place while
// the receiver may be probing the front — and the cumulative push/pop counts
// implement the epoch capacity rule for parallel stepping (sendHasRoom).
type msgQueue struct {
	buf  []int64 // arrival cycles; futureArrival = reserved, not yet matured
	head int     // receiver-owned
	tail int     // sender-owned

	pushes int64        // sender-owned cumulative push count
	pops   atomic.Int64 // cumulative pop count, published by the receiver
	// popsCommitted is pops as of the last epoch commit (the end of the
	// previous stepped cycle); senders on other workers read it instead of
	// the live count so capacity decisions match sequential stepping.
	popsCommitted atomic.Int64
	// pushesCommitted is pushes as of the last epoch commit. Only receivers
	// of same-cycle (zero-transfer-cost) pairs read it: with latency >= 1
	// the arrival-cycle test already excludes this cycle's pushes, but a
	// zero-cost message matures the cycle it is sent, so a receiver that
	// steps before its sender must bound its view by the committed count.
	pushesCommitted atomic.Int64
	n               atomic.Int64 // current occupancy

	dirtyMark     bool // receiver-owned: queue already on its dirty list
	pushDirtyMark bool // sender-owned: queue already on its push-dirty list
	// sameCycle marks a cross-tile pair whose transfer cost is zero
	// (classified at engine start): its messages are receivable the cycle
	// they are sent, so TryRecv applies the epoch visibility rules.
	sameCycle bool
}

// push appends an arrival cycle and returns the ring slot it occupies.
// Capacity is the caller's problem (sendHasRoom); the ring can never
// overflow because occupancy is bounded by Capacity == len(buf).
func (q *msgQueue) push(at int64) (slot int) {
	slot = q.tail
	atomic.StoreInt64(&q.buf[slot], at)
	if q.tail++; q.tail == len(q.buf) {
		q.tail = 0
	}
	q.pushes++
	q.n.Add(1)
	return slot
}

// NewFabric builds a fabric with the given buffer capacity (entries per
// direction pair) and transfer latency in cycles.
func NewFabric(capacity int, latency int64) *Fabric {
	if capacity <= 0 {
		capacity = 512
	}
	return &Fabric{Capacity: capacity, Latency: latency, queues: map[[2]int]*msgQueue{}}
}

// sizeTiles presizes the per-tile statistic shards and dirty lists so the
// parallel step phase never grows a shared slice. Hand-built fabrics that
// skip it (tests) grow shards on demand — they only ever step sequentially.
func (f *Fabric) sizeTiles(n int) {
	f.Tiles = n
	f.sends = make([]int64, n)
	f.recvs = make([]int64, n)
	f.fullStall = make([]int64, n)
	f.hops = make([]int64, n)
	f.dirty = make([][]*msgQueue, n)
	f.pushDirty = make([][]*msgQueue, n)
}

// bump adds d to tile i's shard of counter s, growing the shard for
// hand-built fabrics that never called sizeTiles.
func (f *Fabric) bump(s *[]int64, i int, d int64) {
	for len(*s) <= i {
		*s = append(*s, 0)
	}
	(*s)[i] += d
}

func sumShards(s []int64) int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

// Sends is the total number of accepted sends across all tiles.
func (f *Fabric) Sends() int64 { return sumShards(f.sends) }

// Recvs is the total number of consumed messages across all tiles.
func (f *Fabric) Recvs() int64 { return sumShards(f.recvs) }

// FullStall counts send attempts rejected by a full buffer.
func (f *Fabric) FullStall() int64 { return sumShards(f.fullStall) }

// HopsTotal counts NoC hops traversed by accepted sends.
func (f *Fabric) HopsTotal() int64 { return sumShards(f.hops) }

// fullStallOf reads tile i's shard of the full-buffer stall counter — the
// only slice of FullStall a step by tile i can advance, which makes it the
// right bracketing sample for frozen-step replay.
func (f *Fabric) fullStallOf(i int) int64 {
	if i < len(f.fullStall) {
		return f.fullStall[i]
	}
	return 0
}

// addFullStall replays k frozen steps' worth of full-buffer stalls for tile
// i (event-horizon cycle-skip replay).
func (f *Fabric) addFullStall(i int, d int64) { f.bump(&f.fullStall, i, d) }

// queue returns the FIFO for one (src,dst) pair, allocating on first use.
// During a parallel step phase the map is read-only — every communicating
// pair was pre-created from the traces at system construction — because a
// lazy insert from a worker would race other tiles' lookups.
func (f *Fabric) queue(src, dst int) *msgQueue {
	if q := f.queues[[2]int{src, dst}]; q != nil {
		return q
	}
	if f.engine != nil {
		panic(fmt.Sprintf("soc: fabric queue %d->%d missing during parallel stepping (send not derived from the comm trace)", src, dst))
	}
	return f.ensureQueue(src, dst)
}

// ensureQueue creates (or returns) the FIFO for one (src,dst) pair.
func (f *Fabric) ensureQueue(src, dst int) *msgQueue {
	key := [2]int{src, dst}
	q := f.queues[key]
	if q == nil {
		q = &msgQueue{buf: make([]int64, f.Capacity)}
		f.queues[key] = q
	}
	return q
}

// sendHasRoom applies the capacity check. Sequentially it is the plain
// occupancy test. In a parallel step phase the sender must observe exactly
// the pops sequential tile-order stepping would have seen at this moment:
//
//   - dst steps later this cycle (dst > src): none of this cycle's pops —
//     the committed count from the last epoch boundary.
//   - dst already stepped (dst < src): all of them — wait for the
//     receiver's step to finish, then read the live count. The wait targets
//     a strictly lower tile position, so it cannot deadlock.
//   - self-sends (src == dst) always read the live count: the tile is its
//     own receiver, and waiting on itself would deadlock.
//
// A queue under committed capacity is accepted immediately: pops only shrink
// occupancy, so the committed and sequential views agree on acceptance.
func (f *Fabric) sendHasRoom(q *msgQueue, src, dst int) bool {
	cap64 := int64(f.Capacity)
	if f.engine == nil || src == dst {
		return q.pushes-q.pops.Load() < cap64
	}
	if q.pushes-q.popsCommitted.Load() < cap64 {
		return true
	}
	if dst < src {
		f.engine.waitCore(dst)
		return q.pushes-q.pops.Load() < cap64
	}
	return false
}

// markPushDirty puts a same-cycle queue on src's push-dirty list so the next
// epoch commit publishes its push count to the receiver. Latency >= 1 pairs
// never need it: their receivers see this cycle's pushes only next cycle,
// by the arrival test alone.
func (f *Fabric) markPushDirty(q *msgQueue, src int) {
	if f.engine != nil && q.sameCycle && !q.pushDirtyMark {
		q.pushDirtyMark = true
		f.pushDirty[src] = append(f.pushDirty[src], q)
	}
}

// TrySend implements core.Fabric.
func (f *Fabric) TrySend(src, dst int, now int64) bool {
	q := f.queue(src, dst)
	if !f.sendHasRoom(q, src, dst) {
		f.bump(&f.fullStall, src, 1)
		return false
	}
	lat, hops := f.transferCost(src, dst)
	q.push(now + lat)
	f.markPushDirty(q, src)
	f.bump(&f.sends, src, 1)
	f.bump(&f.hops, src, hops)
	return true
}

// futureArrival is the arrival-cycle sentinel for a reserved slot whose
// maturity cycle is not yet known (TrySendFuture).
const futureArrival = int64(1<<62 - 1)

// TrySendFuture implements core.Fabric: reserves a slot that matures when
// the returned setter is called (DeSC terminal-load-buffer sends whose data
// is still in flight). The slot index stays valid until the setter fires:
// an immature message blocks the FIFO front, so the ring cannot recycle it.
func (f *Fabric) TrySendFuture(src, dst int) (func(int64), bool) {
	q := f.queue(src, dst)
	if !f.sendHasRoom(q, src, dst) {
		f.bump(&f.fullStall, src, 1)
		return nil, false
	}
	slot := q.push(futureArrival)
	f.markPushDirty(q, src)
	lat, hops := f.transferCost(src, dst)
	f.bump(&f.sends, src, 1)
	f.bump(&f.hops, src, hops)
	return func(at int64) { atomic.StoreInt64(&q.buf[slot], at+lat) }, true
}

// TryRecv implements core.Fabric. During a parallel phase a same-cycle
// (zero-transfer-cost) queue needs explicit epoch ordering — its messages
// are receivable the cycle they are sent, so worker timing could otherwise
// decide whether one is seen:
//
//   - sender steps first sequentially (src < dst): wait for its step, then
//     the live queue is exactly the sequential view.
//   - receiver steps first (dst < src): this cycle's pushes are invisible —
//     bound the view by the committed push count — and so are maturations
//     the sender's concurrent step fires (TrySendFuture setters). On a
//     zero-cost pair every arrival value equals the cycle it was written
//     (push stores now+0; a setter stores the firing core's now+0), so
//     arrival >= now identifies exactly the writes sequential receiver-first
//     order would not have seen yet.
//
// Latency >= 1 queues need neither rule: arrivals land strictly after the
// cycle they are written, so the plain arrival test already matches
// sequential order. Self-sends are never same-cycle — the tile is its own
// sender, so program order is the sequential order.
func (f *Fabric) TryRecv(dst, src int, now int64) bool {
	q := f.queues[[2]int{src, dst}]
	if q == nil {
		return false
	}
	if f.engine != nil && q.sameCycle {
		if dst > src {
			f.engine.waitCore(src)
		} else if q.pushesCommitted.Load()-q.pops.Load() <= 0 {
			return false
		} else if atomic.LoadInt64(&q.buf[q.head]) >= now {
			return false
		}
	}
	if q.n.Load() == 0 || atomic.LoadInt64(&q.buf[q.head]) > now {
		return false
	}
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.n.Add(-1)
	q.pops.Add(1)
	f.bump(&f.recvs, dst, 1)
	if f.engine != nil && !q.dirtyMark {
		q.dirtyMark = true
		f.dirty[dst] = append(f.dirty[dst], q)
	}
	return true
}

// commitEpoch publishes this cycle's pops to senders and this cycle's pushes
// (same-cycle queues only) to receivers. It runs in the serial phase at the
// per-cycle join, freezing the occupancy and visibility views the next
// cycle's capacity checks and same-cycle receives read.
func (f *Fabric) commitEpoch() {
	for i := range f.dirty {
		for j, q := range f.dirty[i] {
			q.popsCommitted.Store(q.pops.Load())
			q.dirtyMark = false
			f.dirty[i][j] = nil
		}
		f.dirty[i] = f.dirty[i][:0]
	}
	for i := range f.pushDirty {
		for j, q := range f.pushDirty[i] {
			q.pushesCommitted.Store(q.pushes)
			q.pushDirtyMark = false
			f.pushDirty[i][j] = nil
		}
		f.pushDirty[i] = f.pushDirty[i][:0]
	}
}

// prepareParallel readies every queue for parallel stepping (engine start,
// or reuse of a system that already ran sequentially): committed counters
// align with the live ones and each pair is classified as same-cycle or not
// from its transfer cost, which is constant per pair.
func (f *Fabric) prepareParallel() {
	for key, q := range f.queues {
		q.popsCommitted.Store(q.pops.Load())
		q.pushesCommitted.Store(q.pushes)
		lat, _ := f.transferCost(key[0], key[1])
		q.sameCycle = lat <= 0 && key[0] != key[1]
	}
}

// BarrierArrive implements core.Fabric: registers one tile's arrival at its
// next barrier and returns that barrier's sequence number.
func (f *Fabric) BarrierArrive(tile int) int64 {
	for len(f.arrivals) <= tile {
		f.arrivals = append(f.arrivals, 0)
	}
	f.arrivals[tile]++
	return f.arrivals[tile] - 1
}

// SetBarrierParticipants registers which tiles take part in barriers.
// System construction derives this from the traces: a tile whose trace
// executes no barrier ops never arrives, and requiring it (as the legacy
// all-tiles rule did) deadlocks the whole system until the cycle limit.
func (f *Fabric) SetBarrierParticipants(parts []bool) {
	f.participants = parts
	f.arrivals = make([]int64, len(parts))
}

// BarrierReleased implements core.Fabric: true once every participating tile
// has arrived at barrier seq.
func (f *Fabric) BarrierReleased(seq int64) bool {
	if f.participants != nil {
		for tile, in := range f.participants {
			if in && (tile >= len(f.arrivals) || f.arrivals[tile] <= seq) {
				return false
			}
		}
		return true
	}
	// Legacy rule for hand-built fabrics: every tile in [0, Tiles)
	// participates.
	if f.Tiles <= 0 {
		return true
	}
	if len(f.arrivals) < f.Tiles {
		return false
	}
	for _, a := range f.arrivals {
		if a <= seq {
			return false
		}
	}
	return true
}

// Pending reports messages still buffered anywhere.
func (f *Fabric) Pending() int {
	n := 0
	for _, q := range f.queues {
		n += int(q.n.Load())
	}
	return n
}

// frontArrivals calls fn(dst, at) with the front arrival cycle of every
// non-empty queue. Only the front can be consumed (FIFO), so it alone bounds
// the queue's next event; slots reserved by TrySendFuture (arrival unknown)
// are skipped — they mature through a load completion, which the owning
// core's horizon already covers.
func (f *Fabric) frontArrivals(fn func(dst int, at int64)) {
	for key, q := range f.queues {
		if q.n.Load() == 0 {
			continue
		}
		if at := atomic.LoadInt64(&q.buf[q.head]); at < futureArrival {
			fn(key[1], at)
		}
	}
}

// System is a complete simulated SoC: a tile list the Interleaver steps
// generically plus the shared memory hierarchy and message fabric.
type System struct {
	Name   string
	Cores  []*core.Core
	Hier   *mem.Hierarchy
	Fabric *Fabric

	// tiles is the Interleaver's step order: the accelerator manager first
	// (due invocations must retire before any core can re-invoke on the
	// same cycle), then cores in tile-ID order. tilePos maps a core/tile ID
	// to its index in tiles, for horizon bookkeeping.
	tiles   []Tile
	tilePos []int
	accel   *AccelTile

	Cycles int64

	// SteppedCycles counts Interleaver iterations actually simulated;
	// SkippedCycles counts cycles advanced arithmetically by event-horizon
	// skipping. Their sum is the simulated cycle count.
	SteppedCycles int64
	SkippedCycles int64
	// DisableCycleSkipping forces the naive cycle-by-cycle loop (the
	// equivalence-test reference and the -noskip flag).
	DisableCycleSkipping bool
	// StepWorkers shards tile stepping — and the private slice of the
	// hierarchy tick — across up to this many goroutines within each
	// Interleaver iteration (0 or 1 = sequential). Results are bit-identical
	// to sequential stepping at any worker count for every topology,
	// including directory-coherent hierarchies (invalidations are staged and
	// committed in tile order at the serial join) and zero-latency fabrics
	// (same-cycle delivery follows the epoch visibility rules); see
	// DESIGN.md §5e.
	StepWorkers int
	// ParallelPhases counts Interleaver iterations the parallel stepper
	// executed (0 when stepping sequentially). It is an observability hook
	// for tests and benchmarks, deliberately outside Result so parallel and
	// sequential runs stay byte-identical.
	ParallelPhases int64
	// recorder, when non-nil, observes accelerator invocations and certified
	// quiet windows during Run so a replay engine can re-evaluate the
	// recorded schedule under new timing parameters (see SetRecorder).
	recorder ScheduleRecorder
	// OnProgress, when non-nil, is called from the simulating goroutine at
	// interleave boundaries (every ctxCheckInterval loop iterations) with
	// where the run stands, plus once — with Final set — on every Run exit
	// path. It exists for serving frontends that stream live progress; it
	// must be cheap — the simulator does not throttle it beyond the
	// interleave cadence — and it must not retain the update.
	OnProgress func(ProgressUpdate)
}

// ProgressUpdate is a point-in-time snapshot of a running simulation handed
// to System.OnProgress: the current cycle plus the stepped/skipped split
// (stepped + skipped cycles account for every simulated cycle so far).
type ProgressUpdate struct {
	Cycle   int64
	Stepped int64
	Skipped int64
	// Final marks the terminal update each Run exit path (completion,
	// cancellation, cycle limit) emits, so the last streamed position is
	// never stale by up to the poll interval plus the final horizon jump.
	Final bool
}

// ParallelEligibility reports whether Run will shard stepping across
// workers, with a human-readable reason either way. Since the epoch-ordered
// coherence commit and same-cycle delivery rules (DESIGN.md §5e), every
// topology is eligible — the only sequential fallbacks left are an explicit
// worker budget <= 1 and a system too small to shard.
func (s *System) ParallelEligibility() (bool, string) {
	if s.StepWorkers <= 1 {
		return false, "step-workers <= 1 requests sequential stepping"
	}
	if len(s.tiles) <= 1 {
		return false, "fewer than two tiles to shard"
	}
	return true, "sharded stepping; coherence and same-cycle delivery are epoch-ordered"
}

// finalProgress emits the terminal progress update on a Run exit path.
func (s *System) finalProgress(cycle int64) {
	if s.OnProgress != nil {
		s.OnProgress(ProgressUpdate{Cycle: cycle, Stepped: s.SteppedCycles, Skipped: s.SkippedCycles, Final: true})
	}
}

// accelEvent schedules the release of one outstanding accelerator
// invocation at its simulated completion cycle.
type accelEvent struct {
	at   int64
	name string
}

type accelEventHeap []accelEvent

func (h accelEventHeap) Len() int { return len(h) }

// push and pop follow container/heap's exact sift sequence (equal-time events
// keep the same pop order) without boxing an accelEvent per operation.
func (h *accelEventHeap) push(v accelEvent) {
	a := append(*h, v)
	*h = a
	j := len(a) - 1
	for j > 0 {
		i := (j - 1) / 2
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *accelEventHeap) pop() accelEvent {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && a[j2].at < a[j].at {
			j = j2
		}
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	v := a[n]
	a[n] = accelEvent{}
	*h = a[:n]
	return v
}

// AccelEnergy is the total accelerator dynamic energy in pJ.
func (s *System) AccelEnergy() float64 { return s.accel.EnergyPJ }

// AccelBytes is the total traffic accelerators moved to/from memory.
func (s *System) AccelBytes() int64 { return s.accel.Bytes }

// AccelCalls is the total number of accelerator invocations.
func (s *System) AccelCalls() int64 { return s.accel.Calls }

type memPort struct {
	h    *mem.Hierarchy
	core int
}

func (p memPort) Access(addr uint64, size int, kind mem.Kind, now int64, done func(int64)) {
	p.h.AccessAt(p.core, addr, size, kind, now, done)
}

type accelPort struct {
	t *AccelTile
}

// Invoke implements core.AccelInvoker: it queries the accelerator tile for
// latency and resource usage (§IV-A) and schedules the completion, which is
// delivered through the invoking core's completion queue via done.
func (p accelPort) Invoke(name string, params []int64, now int64, done func(int64)) error {
	at, err := p.t.invoke(name, params, now)
	if err != nil {
		return err
	}
	done(at)
	return nil
}

// New builds a system from per-tile specs, a memory configuration, and
// accelerator models (may be nil).
func New(name string, tiles []TileSpec, memCfg config.MemConfig, accels map[string]AccelModel) (*System, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("soc: system %q has no tiles", name)
	}
	maxClock := 0
	for _, t := range tiles {
		if t.Cfg.ClockMHz <= 0 {
			return nil, fmt.Errorf("soc: tile %q has no clock", t.Cfg.Name)
		}
		if t.Cfg.ClockMHz > maxClock {
			maxClock = t.Cfg.ClockMHz
		}
	}
	s := &System{
		Name:  name,
		Hier:  mem.NewHierarchy(memCfg, len(tiles), maxClock),
		accel: newAccelTile(accels, maxClock),
	}
	cap := tiles[0].Cfg.MaxMessages
	s.Fabric = NewFabric(cap, 1)
	s.Fabric.sizeTiles(len(tiles))
	// Pre-create every communicating (src,dst) queue from the traces: the
	// parallel step phase must never insert into the queue map (a worker's
	// lazy insert would race other tiles' lookups).
	for pr := range commPairs(tiles) {
		s.Fabric.ensureQueue(pr[0], pr[1])
	}
	// Register barrier participants from the traces: a tile whose trace
	// executes no barrier ops must not be waited on, and participating
	// tiles with unequal barrier counts would deadlock — report that here
	// instead of burning the cycle limit.
	counts := barrierCounts(tiles)
	parts := make([]bool, len(tiles))
	ref := -1
	for i, n := range counts {
		parts[i] = n > 0
		if n == 0 {
			continue
		}
		if ref < 0 {
			ref = i
		} else if counts[ref] != n {
			return nil, fmt.Errorf(
				"soc: system %q would deadlock at a barrier: tile %d (%s) executes %d barrier ops but tile %d (%s) executes %d",
				name, ref, tiles[ref].Cfg.Name, counts[ref], i, tiles[i].Cfg.Name, n)
		}
	}
	s.Fabric.SetBarrierParticipants(parts)
	// The accelerator manager steps first each cycle: due invocations must
	// retire before any core observes outstanding[] (a core invoking at the
	// cycle a prior invocation completes must see it released).
	s.tiles = append(s.tiles, s.accel)
	s.tilePos = make([]int, len(tiles))
	for i, t := range tiles {
		c := core.New(i, t.Cfg, t.Graph, t.TT, memPort{h: s.Hier, core: i}, s.Fabric, accelPort{t: s.accel})
		c.SetClockScale(int64(maxClock), int64(t.Cfg.ClockMHz))
		s.Cores = append(s.Cores, c)
		kind := t.Kind
		if kind == "" {
			kind = t.Cfg.Name
		}
		s.tilePos[i] = len(s.tiles)
		s.tiles = append(s.tiles, &CoreTile{C: c, fabric: s.Fabric, kind: kind})
	}
	return s, nil
}

// barrierCounts returns, per tile, how many barrier ops its trace executes:
// the per-block barrier count of its kernel graph summed along its traced
// block path. Graphs are scanned once even when tiles share them (SPMD).
func barrierCounts(tiles []TileSpec) []int64 {
	perGraph := map[*ddg.Graph][]int64{}
	counts := make([]int64, len(tiles))
	for i, t := range tiles {
		per, ok := perGraph[t.Graph]
		if !ok {
			per = make([]int64, len(t.Graph.Blocks))
			for b, bg := range t.Graph.Blocks {
				for _, sn := range bg.Nodes {
					if sn.Instr.Op == ir.OpCall && sn.Instr.Callee == "barrier" {
						per[b]++
					}
				}
			}
			perGraph[t.Graph] = per
		}
		var total int64
		for _, b := range t.TT.BBPath {
			total += per[b]
		}
		counts[i] = total
	}
	return counts
}

// commPairs derives every (src,dst) message-queue pair a set of traced tiles
// will use: each tile's block path is walked consuming its comm events in
// the same per-block node order the core's launch path does, so a send by
// tile i to partner p yields pair (i,p) and a recv pair (p,i).
func commPairs(tiles []TileSpec) map[[2]int]bool {
	// Per graph, per block: the block's comm ops in node order
	// (true = send, false = recv).
	perGraph := map[*ddg.Graph][][]bool{}
	pairs := map[[2]int]bool{}
	for i, t := range tiles {
		per, ok := perGraph[t.Graph]
		if !ok {
			per = make([][]bool, len(t.Graph.Blocks))
			for b, bg := range t.Graph.Blocks {
				for _, sn := range bg.Nodes {
					if sn.Instr.Op == ir.OpCall && (sn.Instr.Callee == "send" || sn.Instr.Callee == "recv") {
						per[b] = append(per[b], sn.Instr.Callee == "send")
					}
				}
			}
			perGraph[t.Graph] = per
		}
		cursor := 0
		for _, b := range t.TT.BBPath {
			for _, isSend := range per[b] {
				if cursor >= len(t.TT.Comm) {
					break
				}
				p := int(t.TT.Comm[cursor].Partner)
				cursor++
				if p < 0 || p >= len(tiles) {
					continue
				}
				if isSend {
					pairs[[2]int{i, p}] = true
				} else {
					pairs[[2]int{p, i}] = true
				}
			}
		}
	}
	return pairs
}

// NewSPMD builds a homogeneous SPMD system: every core of cfg runs the same
// kernel graph against its own tile trace. It is a thin wrapper over the
// declarative topology builder (Build).
func NewSPMD(cfg *config.SystemConfig, g *ddg.Graph, tr *trace.Trace, accels map[string]AccelModel) (*System, error) {
	return Build(cfg, Binding{Graph: g, Trace: tr}, accels)
}

// DefaultCycleLimit guards Run(ctx, 0) against runaway simulations.
const DefaultCycleLimit = int64(1) << 40

// ctxCheckInterval is how many Interleaver iterations pass between context
// polls. Iterations are sub-microsecond even on wide systems — and stay
// around 100µs under the race detector's instrumentation — so a cancel is
// observed well inside the engine's 100ms promptness contract without paying
// a context read per simulated cycle (one ctx.Err() per 128 cycles is noise
// against the cost of stepping the cores and the hierarchy).
const ctxCheckInterval = 128

// cancelErr wraps a context error with where the simulation stood, reporting
// the effective deadline (when one was set) alongside the cycle limit so a
// timed-out run shows both budgets it was running under. The context error
// stays in the chain for errors.Is(err, context.Canceled / DeadlineExceeded).
func (s *System) cancelErr(ctx context.Context, cause error, cycle, effLimit int64) error {
	if dl, ok := ctx.Deadline(); ok && errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("soc: system %q timed out at cycle %d (deadline %s, cycle limit %d): %w",
			s.Name, cycle, dl.Format("15:04:05.000"), effLimit, cause)
	}
	return fmt.Errorf("soc: system %q canceled at cycle %d (cycle limit %d): %w",
		s.Name, cycle, effLimit, cause)
}

// Run advances the system until every tile retires its trace and the memory
// hierarchy drains, or the cycle limit is hit (limit <= 0 selects
// DefaultCycleLimit). Run honors ctx: cancellation is polled at
// horizon-jump and interleave boundaries, so a cancel or deadline returns
// promptly even mid-simulation with an error wrapping the context's, and a
// nil ctx is treated as context.Background().
//
// The Interleaver normally busy-ticks every tile and the hierarchy each
// cycle. When an iteration makes zero forward progress and every live tile
// has confirmed a frozen step, the loop instead jumps to the minimum
// next-event horizon across all components (event-horizon cycle skipping),
// advancing the per-tile clock accumulators arithmetically and replaying the
// per-cycle stall counters so results are bit-identical to the naive loop.
//
// With StepWorkers > 1 the per-iteration tile loop is sharded across a
// worker pool and joined at the per-cycle boundary where the hierarchy ticks
// and the skipper evaluates freeze confirmation; the fabric's epoch rules
// keep results bit-identical to sequential stepping (DESIGN.md §5e).
func (s *System) Run(ctx context.Context, limit int64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Fabric.Validate(); err != nil {
		return err
	}
	effLimit := limit
	if effLimit <= 0 {
		effLimit = DefaultCycleLimit
	}
	ctxCountdown := int64(ctxCheckInterval)
	nt := len(s.tiles)
	var maxClock int64
	for _, t := range s.tiles {
		if m := int64(t.ClockMHz()); m > maxClock {
			maxClock = m
		}
	}
	strides := make([]int64, nt)
	accum := make([]int64, nt)
	uniformClocks := true
	for _, t := range s.tiles {
		if t.ClockMHz() != s.tiles[0].ClockMHz() {
			uniformClocks = false
			break
		}
	}
	// Event-horizon bookkeeping: idleOK[i] records that tile i stepped
	// without making progress since the last progress event anywhere, and
	// stallDelta holds the stall-sample increments of that frozen step
	// (constant while the state stays frozen).
	idleOK := make([]bool, nt)
	stallDelta := make([]StallSample, nt)
	for i, t := range s.tiles {
		strides[i] = int64(t.ClockMHz())
		accum[i] = maxClock // step every tile on cycle 0
	}
	eng := s.startEngine(accum, strides, idleOK, stallDelta, maxClock)
	if eng != nil {
		defer eng.stop()
	}
	progress := func() uint64 {
		p := uint64(s.Hier.Progress())
		for _, t := range s.tiles {
			p += t.Progress()
		}
		return p
	}
	last := progress()
	for cycle := int64(0); cycle <= effLimit; cycle++ {
		// Interleave-boundary cancellation poll: every ctxCheckInterval
		// iterations (stepped or jumped), not every simulated cycle.
		if ctxCountdown--; ctxCountdown <= 0 {
			ctxCountdown = ctxCheckInterval
			if err := ctx.Err(); err != nil {
				s.finalProgress(cycle)
				return s.cancelErr(ctx, err, cycle, effLimit)
			}
			if s.OnProgress != nil {
				s.OnProgress(ProgressUpdate{Cycle: cycle, Stepped: s.SteppedCycles, Skipped: s.SkippedCycles})
			}
		}
		anyActive := false
		if eng != nil {
			anyActive = eng.step(cycle)
			s.Fabric.commitEpoch()
			s.Hier.CommitStaged()
		} else {
			for i, t := range s.tiles {
				accum[i] += strides[i]
				if accum[i] >= maxClock {
					accum[i] -= maxClock
					pp := t.Progress()
					before := t.SnapshotStalls()
					if t.Step(cycle) {
						anyActive = true
					}
					if t.Progress() == pp {
						// Frozen step: its stall increments repeat verbatim
						// until something, somewhere, makes progress.
						stallDelta[i] = t.SnapshotStalls().Sub(before)
						idleOK[i] = true
					}
				} else if !t.Done() {
					anyActive = true
				}
			}
		}
		thr0 := s.Hier.ThrottleStalls()
		if eng != nil {
			// Serial slice first (shared completions fill into private
			// caches and core completion queues), then the sharded private
			// ticks with their per-worker progress/freeze reduction.
			s.Hier.TickShared(cycle)
			eng.tick(cycle)
		} else {
			s.Hier.Tick(cycle)
		}
		thrTick := s.Hier.ThrottleStalls() - thr0
		s.Cycles = cycle
		s.SteppedCycles++
		if !anyActive && !s.Hier.Busy() {
			s.finalProgress(cycle)
			return nil
		}
		if s.DisableCycleSkipping {
			continue
		}
		cur := last
		if eng != nil {
			cur = eng.tickProgress + uint64(s.Hier.ProgressShared())
		} else {
			cur = progress()
		}
		if cur != last {
			// Progress invalidates every frozen-step confirmation: a tile
			// that idled against the old state may act on the new one.
			last = cur
			for i := range idleOK {
				idleOK[i] = false
			}
			continue
		}
		confirmed := true
		if eng != nil {
			confirmed = eng.tickConfirmed
		} else {
			for i, t := range s.tiles {
				if !t.Done() && !idleOK[i] {
					confirmed = false
					break
				}
			}
		}
		if !confirmed {
			continue
		}
		// Every component is provably frozen: jump to the earliest cycle at
		// which any of them can act. A horizon past the limit (including a
		// true deadlock, HorizonNone everywhere) exits through the timeout
		// path immediately instead of burning the remaining cycles. The
		// horizon jump is also a cancellation boundary: a long frozen
		// stretch must not outlive its context.
		if err := ctx.Err(); err != nil {
			s.finalProgress(cycle)
			return s.cancelErr(ctx, err, cycle, effLimit)
		}
		target := s.horizon(cycle, accum, strides, maxClock, effLimit)
		if target > effLimit+1 {
			target = effLimit + 1
		}
		if target <= cycle+1 {
			continue
		}
		if s.recorder != nil {
			s.maybeCertify(cycle, target, stallDelta, thrTick, uniformClocks)
		}
		delta := target - 1 - cycle // whole iterations elided
		for i, t := range s.tiles {
			// Advance the clock-ratio accumulator arithmetically: k is the
			// number of (frozen) steps tile i would have taken.
			base := accum[i] / maxClock
			adv := accum[i] + delta*strides[i]
			k := adv/maxClock - base
			accum[i] = adv - k*maxClock
			if k > 0 && !t.Done() {
				t.ReplayStalls(stallDelta[i], k)
			}
		}
		s.Hier.AddThrottleStalls(thrTick * delta)
		s.SkippedCycles += delta
		s.Cycles = target - 1
		cycle = target - 1 // the loop increment lands on target
	}
	s.finalProgress(s.Cycles)
	if limit <= 0 {
		return fmt.Errorf("soc: system %q exceeded the default cycle limit of %d (2^40) without completing; pass Run a larger limit if the workload is genuinely that long", s.Name, effLimit)
	}
	return fmt.Errorf("soc: system %q exceeded the cycle limit of %d without completing", s.Name, effLimit)
}

// horizon returns the earliest global cycle > now at which any component can
// change state, given that every component is frozen at now. Core-local
// events (completions, the mispredict launch release) and inbound fabric
// messages only take effect when the owning tile's clock edge arrives, so
// they are mapped through nextEdgeCycle.
func (s *System) horizon(now int64, accum, strides []int64, maxClock, effLimit int64) int64 {
	target := mem.HorizonNone
	consider := func(idx int, ev int64) {
		if ev >= mem.HorizonNone {
			return
		}
		if ev > effLimit+1 {
			ev = effLimit + 1 // keep the edge arithmetic far from overflow
		}
		u := nextEdgeCycle(now, ev, accum[idx], strides[idx], maxClock)
		if u < target {
			target = u
		}
	}
	for i, t := range s.tiles {
		if t.Done() {
			continue
		}
		consider(i, t.NextEvent(now))
	}
	if e := s.Hier.NextEvent(now); e < mem.HorizonNone {
		if e <= now {
			e = now + 1
		}
		if e < target {
			target = e
		}
	}
	s.Fabric.frontArrivals(func(dst int, at int64) {
		// A message already mature (at <= now) is part of the frozen state:
		// the destination observed and ignored it, so it cannot trigger a
		// future change.
		if at <= now || dst < 0 || dst >= len(s.tilePos) {
			return
		}
		i := s.tilePos[dst]
		if s.tiles[i].Done() {
			return
		}
		consider(i, at)
	})
	return target
}

// nextEdgeCycle returns the first cycle u >= max(ev, now+1) at which a core
// with accumulator a (sampled after the iteration at now), stride s, and
// system clock M takes a step. The loop's recurrence steps the core at
// now+j iff floor((a+j*s)/M) > floor((a+(j-1)*s)/M).
func nextEdgeCycle(now, ev, a, s, m int64) int64 {
	j0 := ev - now
	if j0 < 1 {
		j0 = 1
	}
	c0 := (a + (j0-1)*s) / m
	j := j0
	if need := ((c0+1)*m - a + s - 1) / s; need > j {
		j = need
	}
	return now + j
}

// EnergyBreakdown attributes dynamic energy to system components.
type EnergyBreakdown struct {
	CoresPJ float64
	L1PJ    float64
	L2PJ    float64
	LLCPJ   float64
	DRAMPJ  float64
	AccelPJ float64
}

// TotalPJ sums the components.
func (e EnergyBreakdown) TotalPJ() float64 {
	return e.CoresPJ + e.L1PJ + e.L2PJ + e.LLCPJ + e.DRAMPJ + e.AccelPJ
}

// Result summarizes a finished run.
type Result struct {
	Cycles     int64
	Instrs     int64
	IPC        float64
	EnergyPJ   float64
	Energy     EnergyBreakdown
	CoreStats  []core.Stats
	L1         mem.CacheStats
	L2         mem.CacheStats
	LLC        mem.CacheStats
	DRAM       mem.DRAMStats
	AccelCalls int64
	AccelBytes int64
}

// Result collects the system-wide estimate (§II "total system estimates").
func (s *System) Result() Result {
	r := Result{Cycles: s.Cycles}
	for _, c := range s.Cores {
		r.CoreStats = append(r.CoreStats, c.Stats)
		r.Instrs += c.Stats.Instrs
		r.EnergyPJ += c.Stats.EnergyPJ
	}
	if s.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(s.Cycles)
	}
	r.L1 = mem.TotalStats(s.Hier.L1s)
	r.L2 = mem.TotalStats(s.Hier.L2s)
	if s.Hier.LLC != nil {
		r.LLC = s.Hier.LLC.Stats
	}
	r.DRAM = mem.DRAMStatsOf(s.Hier.DRAM)
	// Per-component dynamic energy (§III-B instruction energies plus
	// per-access memory-system costs).
	r.Energy = EnergyBreakdown{
		CoresPJ: r.EnergyPJ,
		L1PJ:    float64(r.L1.Accesses) * config.EnergyL1AccessPJ,
		L2PJ:    float64(r.L2.Accesses) * config.EnergyL2AccessPJ,
		LLCPJ:   float64(r.LLC.Accesses) * config.EnergyLLCAccessPJ,
		DRAMPJ:  float64(r.DRAM.Reads+r.DRAM.Writebacks) * config.EnergyDRAMAccessPJ,
		AccelPJ: s.accel.EnergyPJ,
	}
	r.EnergyPJ = r.Energy.TotalPJ()
	r.AccelCalls = s.accel.Calls
	r.AccelBytes = s.accel.Bytes
	return r
}
