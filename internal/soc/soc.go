// Package soc implements MosaicSim-Go's Interleaver (§II): it composes tile
// models (cores and accelerators), advances them cycle by cycle with
// per-tile clock ratios, carries inter-tile messages through bounded
// communication buffers, and drives the shared memory hierarchy —
// "combining module behaviors into system-wide performance estimates".
package soc

import (
	"context"
	"errors"
	"fmt"

	"mosaicsim/internal/config"
	"mosaicsim/internal/core"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/mem"
	"mosaicsim/internal/trace"
)

// AccelResult is what an accelerator performance model reports for one
// invocation (§IV-A): clock cycles, bytes moved to/from memory, and average
// energy.
type AccelResult struct {
	Cycles   int64
	Bytes    int64
	EnergyPJ float64
}

// AccelModel is a pluggable accelerator tile model. Invoke receives the
// traced invocation parameters and the number of already-outstanding
// invocations of the same accelerator, so models can scale execution under
// memory-bandwidth sharing (§IV-B).
type AccelModel interface {
	Invoke(params []int64, concurrent int) (AccelResult, error)
}

// TileSpec instantiates one tile: its core configuration, the kernel DDG it
// replays, and its dynamic trace. DAE systems give different tiles different
// kernels (§VII-A). Kind labels the tile for per-kind breakdowns; empty
// defaults to the core config's name.
type TileSpec struct {
	Cfg   config.CoreConfig
	Kind  string
	Graph *ddg.Graph
	TT    *trace.TileTrace
}

// Fabric is the Interleaver's message transport: bounded per-(src,dst) FIFOs
// with a fixed transfer latency (§II-C; Table II communication buffers).
// With a NoC configured, transfers additionally pay per-hop latency for the
// Manhattan distance between the tiles on a 2D mesh — the "message module"
// the paper lists as the natural extension of the tile model (§V-A).
type Fabric struct {
	Capacity int
	Latency  int64
	// Tiles is the number of tiles participating in barriers.
	Tiles int
	// MeshWidth > 0 arranges tiles on a 2D mesh of that width; HopCycles is
	// the per-hop link latency.
	MeshWidth int
	HopCycles int64
	// Slots pins tile i to mesh slot Slots[i] (row-major); nil places tiles
	// row-major by tile ID.
	Slots []int

	queues map[[2]int]*msgRing // arrival cycles (pointers so futures can mature in place)

	arrivals []int64 // per-tile barrier arrival counts
	// participants marks the tiles that execute barrier ops; nil means every
	// tile in [0, Tiles) does (the legacy rule for hand-built fabrics).
	participants []bool

	Sends     int64
	Recvs     int64
	FullStall int64
	HopsTotal int64
}

// transferLatency returns the fabric latency from src to dst, including NoC
// hops when a mesh is configured.
func (f *Fabric) transferLatency(src, dst int) int64 {
	lat := f.Latency
	if f.MeshWidth > 0 {
		if f.Slots != nil {
			src, dst = f.Slots[src], f.Slots[dst]
		}
		sx, sy := src%f.MeshWidth, src/f.MeshWidth
		dx, dy := dst%f.MeshWidth, dst/f.MeshWidth
		hops := int64(abs(sx-dx) + abs(sy-dy))
		f.HopsTotal += hops
		lat += hops * f.HopCycles
	}
	return lat
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// msgRing is a FIFO of in-flight message arrival cycles backed by a ring
// buffer. The previous append/[1:] slice pattern kept the whole backing
// array reachable across a run and re-allocated on every wraparound; the
// ring reuses one buffer at steady state.
type msgRing struct {
	buf  []*int64
	head int
	n    int
}

func (r *msgRing) len() int { return r.n }

func (r *msgRing) push(p *int64) {
	if r.n == len(r.buf) {
		grown := make([]*int64, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = p
	r.n++
}

func (r *msgRing) front() *int64 { return r.buf[r.head] }

func (r *msgRing) pop() {
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

// NewFabric builds a fabric with the given buffer capacity (entries per
// direction pair) and transfer latency in cycles.
func NewFabric(capacity int, latency int64) *Fabric {
	if capacity <= 0 {
		capacity = 512
	}
	return &Fabric{Capacity: capacity, Latency: latency, queues: map[[2]int]*msgRing{}}
}

// queue returns (allocating on first use) the FIFO for one (src,dst) pair.
func (f *Fabric) queue(src, dst int) *msgRing {
	key := [2]int{src, dst}
	q := f.queues[key]
	if q == nil {
		q = &msgRing{}
		f.queues[key] = q
	}
	return q
}

// TrySend implements core.Fabric.
func (f *Fabric) TrySend(src, dst int, now int64) bool {
	q := f.queue(src, dst)
	if q.len() >= f.Capacity {
		f.FullStall++
		return false
	}
	arrival := now + f.transferLatency(src, dst)
	q.push(&arrival)
	f.Sends++
	return true
}

// futureArrival is the arrival-cycle sentinel for a reserved slot whose
// maturity cycle is not yet known (TrySendFuture).
const futureArrival = int64(1<<62 - 1)

// TrySendFuture implements core.Fabric: reserves a slot that matures when
// the returned setter is called (DeSC terminal-load-buffer sends whose data
// is still in flight).
func (f *Fabric) TrySendFuture(src, dst int) (func(int64), bool) {
	q := f.queue(src, dst)
	if q.len() >= f.Capacity {
		f.FullStall++
		return nil, false
	}
	pending := futureArrival
	slot := &pending
	q.push(slot)
	f.Sends++
	lat := f.transferLatency(src, dst)
	return func(at int64) { *slot = at + lat }, true
}

// TryRecv implements core.Fabric.
func (f *Fabric) TryRecv(dst, src int, now int64) bool {
	q := f.queues[[2]int{src, dst}]
	if q == nil || q.len() == 0 || *q.front() > now {
		return false
	}
	q.pop()
	f.Recvs++
	return true
}

// BarrierArrive implements core.Fabric: registers one tile's arrival at its
// next barrier and returns that barrier's sequence number.
func (f *Fabric) BarrierArrive(tile int) int64 {
	for len(f.arrivals) <= tile {
		f.arrivals = append(f.arrivals, 0)
	}
	f.arrivals[tile]++
	return f.arrivals[tile] - 1
}

// SetBarrierParticipants registers which tiles take part in barriers.
// System construction derives this from the traces: a tile whose trace
// executes no barrier ops never arrives, and requiring it (as the legacy
// all-tiles rule did) deadlocks the whole system until the cycle limit.
func (f *Fabric) SetBarrierParticipants(parts []bool) {
	f.participants = parts
	f.arrivals = make([]int64, len(parts))
}

// BarrierReleased implements core.Fabric: true once every participating tile
// has arrived at barrier seq.
func (f *Fabric) BarrierReleased(seq int64) bool {
	if f.participants != nil {
		for tile, in := range f.participants {
			if in && (tile >= len(f.arrivals) || f.arrivals[tile] <= seq) {
				return false
			}
		}
		return true
	}
	// Legacy rule for hand-built fabrics: every tile in [0, Tiles)
	// participates.
	if f.Tiles <= 0 {
		return true
	}
	if len(f.arrivals) < f.Tiles {
		return false
	}
	for _, a := range f.arrivals {
		if a <= seq {
			return false
		}
	}
	return true
}

// Pending reports messages still buffered anywhere.
func (f *Fabric) Pending() int {
	n := 0
	for _, q := range f.queues {
		n += q.len()
	}
	return n
}

// frontArrivals calls fn(dst, at) with the front arrival cycle of every
// non-empty queue. Only the front can be consumed (FIFO), so it alone bounds
// the queue's next event; slots reserved by TrySendFuture (arrival unknown)
// are skipped — they mature through a load completion, which the owning
// core's horizon already covers.
func (f *Fabric) frontArrivals(fn func(dst int, at int64)) {
	for key, q := range f.queues {
		if q.len() == 0 {
			continue
		}
		if at := *q.front(); at < futureArrival {
			fn(key[1], at)
		}
	}
}

// System is a complete simulated SoC: a tile list the Interleaver steps
// generically plus the shared memory hierarchy and message fabric.
type System struct {
	Name   string
	Cores  []*core.Core
	Hier   *mem.Hierarchy
	Fabric *Fabric

	// tiles is the Interleaver's step order: the accelerator manager first
	// (due invocations must retire before any core can re-invoke on the
	// same cycle), then cores in tile-ID order. tilePos maps a core/tile ID
	// to its index in tiles, for horizon bookkeeping.
	tiles   []Tile
	tilePos []int
	accel   *AccelTile

	Cycles int64

	// SteppedCycles counts Interleaver iterations actually simulated;
	// SkippedCycles counts cycles advanced arithmetically by event-horizon
	// skipping. Their sum is the simulated cycle count.
	SteppedCycles int64
	SkippedCycles int64
	// DisableCycleSkipping forces the naive cycle-by-cycle loop (the
	// equivalence-test reference and the -noskip flag).
	DisableCycleSkipping bool
	// OnProgress, when non-nil, is called from the simulating goroutine at
	// interleave boundaries (every ctxCheckInterval loop iterations) with
	// where the run stands. It exists for serving frontends that stream
	// live progress; it must be cheap — the simulator does not throttle it
	// beyond the interleave cadence — and it must not retain the update.
	OnProgress func(ProgressUpdate)
}

// ProgressUpdate is a point-in-time snapshot of a running simulation handed
// to System.OnProgress: the current cycle plus the stepped/skipped split
// (stepped + skipped cycles account for every simulated cycle so far).
type ProgressUpdate struct {
	Cycle   int64
	Stepped int64
	Skipped int64
}

// accelEvent schedules the release of one outstanding accelerator
// invocation at its simulated completion cycle.
type accelEvent struct {
	at   int64
	name string
}

type accelEventHeap []accelEvent

func (h accelEventHeap) Len() int { return len(h) }

// push and pop follow container/heap's exact sift sequence (equal-time events
// keep the same pop order) without boxing an accelEvent per operation.
func (h *accelEventHeap) push(v accelEvent) {
	a := append(*h, v)
	*h = a
	j := len(a) - 1
	for j > 0 {
		i := (j - 1) / 2
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *accelEventHeap) pop() accelEvent {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && a[j2].at < a[j].at {
			j = j2
		}
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	v := a[n]
	a[n] = accelEvent{}
	*h = a[:n]
	return v
}

// AccelEnergy is the total accelerator dynamic energy in pJ.
func (s *System) AccelEnergy() float64 { return s.accel.EnergyPJ }

// AccelBytes is the total traffic accelerators moved to/from memory.
func (s *System) AccelBytes() int64 { return s.accel.Bytes }

// AccelCalls is the total number of accelerator invocations.
func (s *System) AccelCalls() int64 { return s.accel.Calls }

type memPort struct {
	h    *mem.Hierarchy
	core int
}

func (p memPort) Access(addr uint64, size int, kind mem.Kind, now int64, done func(int64)) {
	p.h.AccessAt(p.core, addr, size, kind, now, done)
}

type accelPort struct {
	t *AccelTile
}

// Invoke implements core.AccelInvoker: it queries the accelerator tile for
// latency and resource usage (§IV-A) and schedules the completion, which is
// delivered through the invoking core's completion queue via done.
func (p accelPort) Invoke(name string, params []int64, now int64, done func(int64)) error {
	at, err := p.t.invoke(name, params, now)
	if err != nil {
		return err
	}
	done(at)
	return nil
}

// New builds a system from per-tile specs, a memory configuration, and
// accelerator models (may be nil).
func New(name string, tiles []TileSpec, memCfg config.MemConfig, accels map[string]AccelModel) (*System, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("soc: system %q has no tiles", name)
	}
	maxClock := 0
	for _, t := range tiles {
		if t.Cfg.ClockMHz <= 0 {
			return nil, fmt.Errorf("soc: tile %q has no clock", t.Cfg.Name)
		}
		if t.Cfg.ClockMHz > maxClock {
			maxClock = t.Cfg.ClockMHz
		}
	}
	s := &System{
		Name:  name,
		Hier:  mem.NewHierarchy(memCfg, len(tiles), maxClock),
		accel: newAccelTile(accels, maxClock),
	}
	cap := tiles[0].Cfg.MaxMessages
	s.Fabric = NewFabric(cap, 1)
	s.Fabric.Tiles = len(tiles)
	// Register barrier participants from the traces: a tile whose trace
	// executes no barrier ops must not be waited on, and participating
	// tiles with unequal barrier counts would deadlock — report that here
	// instead of burning the cycle limit.
	counts := barrierCounts(tiles)
	parts := make([]bool, len(tiles))
	ref := -1
	for i, n := range counts {
		parts[i] = n > 0
		if n == 0 {
			continue
		}
		if ref < 0 {
			ref = i
		} else if counts[ref] != n {
			return nil, fmt.Errorf(
				"soc: system %q would deadlock at a barrier: tile %d (%s) executes %d barrier ops but tile %d (%s) executes %d",
				name, ref, tiles[ref].Cfg.Name, counts[ref], i, tiles[i].Cfg.Name, n)
		}
	}
	s.Fabric.SetBarrierParticipants(parts)
	// The accelerator manager steps first each cycle: due invocations must
	// retire before any core observes outstanding[] (a core invoking at the
	// cycle a prior invocation completes must see it released).
	s.tiles = append(s.tiles, s.accel)
	s.tilePos = make([]int, len(tiles))
	for i, t := range tiles {
		c := core.New(i, t.Cfg, t.Graph, t.TT, memPort{h: s.Hier, core: i}, s.Fabric, accelPort{t: s.accel})
		c.SetClockScale(int64(maxClock), int64(t.Cfg.ClockMHz))
		s.Cores = append(s.Cores, c)
		kind := t.Kind
		if kind == "" {
			kind = t.Cfg.Name
		}
		s.tilePos[i] = len(s.tiles)
		s.tiles = append(s.tiles, &CoreTile{C: c, fabric: s.Fabric, kind: kind})
	}
	return s, nil
}

// barrierCounts returns, per tile, how many barrier ops its trace executes:
// the per-block barrier count of its kernel graph summed along its traced
// block path. Graphs are scanned once even when tiles share them (SPMD).
func barrierCounts(tiles []TileSpec) []int64 {
	perGraph := map[*ddg.Graph][]int64{}
	counts := make([]int64, len(tiles))
	for i, t := range tiles {
		per, ok := perGraph[t.Graph]
		if !ok {
			per = make([]int64, len(t.Graph.Blocks))
			for b, bg := range t.Graph.Blocks {
				for _, sn := range bg.Nodes {
					if sn.Instr.Op == ir.OpCall && sn.Instr.Callee == "barrier" {
						per[b]++
					}
				}
			}
			perGraph[t.Graph] = per
		}
		var total int64
		for _, b := range t.TT.BBPath {
			total += per[b]
		}
		counts[i] = total
	}
	return counts
}

// NewSPMD builds a homogeneous SPMD system: every core of cfg runs the same
// kernel graph against its own tile trace. It is a thin wrapper over the
// declarative topology builder (Build).
func NewSPMD(cfg *config.SystemConfig, g *ddg.Graph, tr *trace.Trace, accels map[string]AccelModel) (*System, error) {
	return Build(cfg, Binding{Graph: g, Trace: tr}, accels)
}

// DefaultCycleLimit guards Run(ctx, 0) against runaway simulations.
const DefaultCycleLimit = int64(1) << 40

// ctxCheckInterval is how many Interleaver iterations pass between context
// polls. Iterations are sub-microsecond even on wide systems — and stay
// around 100µs under the race detector's instrumentation — so a cancel is
// observed well inside the engine's 100ms promptness contract without paying
// a context read per simulated cycle (one ctx.Err() per 128 cycles is noise
// against the cost of stepping the cores and the hierarchy).
const ctxCheckInterval = 128

// cancelErr wraps a context error with where the simulation stood, reporting
// the effective deadline (when one was set) alongside the cycle limit so a
// timed-out run shows both budgets it was running under. The context error
// stays in the chain for errors.Is(err, context.Canceled / DeadlineExceeded).
func (s *System) cancelErr(ctx context.Context, cause error, cycle, effLimit int64) error {
	if dl, ok := ctx.Deadline(); ok && errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("soc: system %q timed out at cycle %d (deadline %s, cycle limit %d): %w",
			s.Name, cycle, dl.Format("15:04:05.000"), effLimit, cause)
	}
	return fmt.Errorf("soc: system %q canceled at cycle %d (cycle limit %d): %w",
		s.Name, cycle, effLimit, cause)
}

// Run advances the system until every tile retires its trace and the memory
// hierarchy drains, or the cycle limit is hit (limit <= 0 selects
// DefaultCycleLimit). Run honors ctx: cancellation is polled at
// horizon-jump and interleave boundaries, so a cancel or deadline returns
// promptly even mid-simulation with an error wrapping the context's, and a
// nil ctx is treated as context.Background().
//
// The Interleaver normally busy-ticks every tile and the hierarchy each
// cycle. When an iteration makes zero forward progress and every live tile
// has confirmed a frozen step, the loop instead jumps to the minimum
// next-event horizon across all components (event-horizon cycle skipping),
// advancing the per-tile clock accumulators arithmetically and replaying the
// per-cycle stall counters so results are bit-identical to the naive loop.
func (s *System) Run(ctx context.Context, limit int64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	effLimit := limit
	if effLimit <= 0 {
		effLimit = DefaultCycleLimit
	}
	ctxCountdown := int64(ctxCheckInterval)
	nt := len(s.tiles)
	var maxClock int64
	for _, t := range s.tiles {
		if m := int64(t.ClockMHz()); m > maxClock {
			maxClock = m
		}
	}
	strides := make([]int64, nt)
	accum := make([]int64, nt)
	// Event-horizon bookkeeping: idleOK[i] records that tile i stepped
	// without making progress since the last progress event anywhere, and
	// stallDelta holds the stall-sample increments of that frozen step
	// (constant while the state stays frozen).
	idleOK := make([]bool, nt)
	stallDelta := make([]StallSample, nt)
	for i, t := range s.tiles {
		strides[i] = int64(t.ClockMHz())
		accum[i] = maxClock // step every tile on cycle 0
	}
	progress := func() uint64 {
		p := uint64(s.Hier.Progress())
		for _, t := range s.tiles {
			p += t.Progress()
		}
		return p
	}
	last := progress()
	for cycle := int64(0); cycle <= effLimit; cycle++ {
		// Interleave-boundary cancellation poll: every ctxCheckInterval
		// iterations (stepped or jumped), not every simulated cycle.
		if ctxCountdown--; ctxCountdown <= 0 {
			ctxCountdown = ctxCheckInterval
			if err := ctx.Err(); err != nil {
				return s.cancelErr(ctx, err, cycle, effLimit)
			}
			if s.OnProgress != nil {
				s.OnProgress(ProgressUpdate{Cycle: cycle, Stepped: s.SteppedCycles, Skipped: s.SkippedCycles})
			}
		}
		anyActive := false
		for i, t := range s.tiles {
			accum[i] += strides[i]
			if accum[i] >= maxClock {
				accum[i] -= maxClock
				pp := t.Progress()
				before := t.SnapshotStalls()
				if t.Step(cycle) {
					anyActive = true
				}
				if t.Progress() == pp {
					// Frozen step: its stall increments repeat verbatim
					// until something, somewhere, makes progress.
					stallDelta[i] = t.SnapshotStalls().Sub(before)
					idleOK[i] = true
				}
			} else if !t.Done() {
				anyActive = true
			}
		}
		thr0 := s.Hier.ThrottleStalls()
		s.Hier.Tick(cycle)
		thrTick := s.Hier.ThrottleStalls() - thr0
		s.Cycles = cycle
		s.SteppedCycles++
		if !anyActive && !s.Hier.Busy() {
			return nil
		}
		if s.DisableCycleSkipping {
			continue
		}
		if cur := progress(); cur != last {
			// Progress invalidates every frozen-step confirmation: a tile
			// that idled against the old state may act on the new one.
			last = cur
			for i := range idleOK {
				idleOK[i] = false
			}
			continue
		}
		confirmed := true
		for i, t := range s.tiles {
			if !t.Done() && !idleOK[i] {
				confirmed = false
				break
			}
		}
		if !confirmed {
			continue
		}
		// Every component is provably frozen: jump to the earliest cycle at
		// which any of them can act. A horizon past the limit (including a
		// true deadlock, HorizonNone everywhere) exits through the timeout
		// path immediately instead of burning the remaining cycles. The
		// horizon jump is also a cancellation boundary: a long frozen
		// stretch must not outlive its context.
		if err := ctx.Err(); err != nil {
			return s.cancelErr(ctx, err, cycle, effLimit)
		}
		target := s.horizon(cycle, accum, strides, maxClock, effLimit)
		if target > effLimit+1 {
			target = effLimit + 1
		}
		if target <= cycle+1 {
			continue
		}
		delta := target - 1 - cycle // whole iterations elided
		for i, t := range s.tiles {
			// Advance the clock-ratio accumulator arithmetically: k is the
			// number of (frozen) steps tile i would have taken.
			base := accum[i] / maxClock
			adv := accum[i] + delta*strides[i]
			k := adv/maxClock - base
			accum[i] = adv - k*maxClock
			if k > 0 && !t.Done() {
				t.ReplayStalls(stallDelta[i], k)
			}
		}
		s.Hier.AddThrottleStalls(thrTick * delta)
		s.SkippedCycles += delta
		s.Cycles = target - 1
		cycle = target - 1 // the loop increment lands on target
	}
	if limit <= 0 {
		return fmt.Errorf("soc: system %q exceeded the default cycle limit of %d (2^40) without completing; pass Run a larger limit if the workload is genuinely that long", s.Name, effLimit)
	}
	return fmt.Errorf("soc: system %q exceeded the cycle limit of %d without completing", s.Name, effLimit)
}

// horizon returns the earliest global cycle > now at which any component can
// change state, given that every component is frozen at now. Core-local
// events (completions, the mispredict launch release) and inbound fabric
// messages only take effect when the owning tile's clock edge arrives, so
// they are mapped through nextEdgeCycle.
func (s *System) horizon(now int64, accum, strides []int64, maxClock, effLimit int64) int64 {
	target := mem.HorizonNone
	consider := func(idx int, ev int64) {
		if ev >= mem.HorizonNone {
			return
		}
		if ev > effLimit+1 {
			ev = effLimit + 1 // keep the edge arithmetic far from overflow
		}
		u := nextEdgeCycle(now, ev, accum[idx], strides[idx], maxClock)
		if u < target {
			target = u
		}
	}
	for i, t := range s.tiles {
		if t.Done() {
			continue
		}
		consider(i, t.NextEvent(now))
	}
	if e := s.Hier.NextEvent(now); e < mem.HorizonNone {
		if e <= now {
			e = now + 1
		}
		if e < target {
			target = e
		}
	}
	s.Fabric.frontArrivals(func(dst int, at int64) {
		// A message already mature (at <= now) is part of the frozen state:
		// the destination observed and ignored it, so it cannot trigger a
		// future change.
		if at <= now || dst < 0 || dst >= len(s.tilePos) {
			return
		}
		i := s.tilePos[dst]
		if s.tiles[i].Done() {
			return
		}
		consider(i, at)
	})
	return target
}

// nextEdgeCycle returns the first cycle u >= max(ev, now+1) at which a core
// with accumulator a (sampled after the iteration at now), stride s, and
// system clock M takes a step. The loop's recurrence steps the core at
// now+j iff floor((a+j*s)/M) > floor((a+(j-1)*s)/M).
func nextEdgeCycle(now, ev, a, s, m int64) int64 {
	j0 := ev - now
	if j0 < 1 {
		j0 = 1
	}
	c0 := (a + (j0-1)*s) / m
	j := j0
	if need := ((c0+1)*m - a + s - 1) / s; need > j {
		j = need
	}
	return now + j
}

// EnergyBreakdown attributes dynamic energy to system components.
type EnergyBreakdown struct {
	CoresPJ float64
	L1PJ    float64
	L2PJ    float64
	LLCPJ   float64
	DRAMPJ  float64
	AccelPJ float64
}

// TotalPJ sums the components.
func (e EnergyBreakdown) TotalPJ() float64 {
	return e.CoresPJ + e.L1PJ + e.L2PJ + e.LLCPJ + e.DRAMPJ + e.AccelPJ
}

// Result summarizes a finished run.
type Result struct {
	Cycles     int64
	Instrs     int64
	IPC        float64
	EnergyPJ   float64
	Energy     EnergyBreakdown
	CoreStats  []core.Stats
	L1         mem.CacheStats
	L2         mem.CacheStats
	LLC        mem.CacheStats
	DRAM       mem.DRAMStats
	AccelCalls int64
	AccelBytes int64
}

// Result collects the system-wide estimate (§II "total system estimates").
func (s *System) Result() Result {
	r := Result{Cycles: s.Cycles}
	for _, c := range s.Cores {
		r.CoreStats = append(r.CoreStats, c.Stats)
		r.Instrs += c.Stats.Instrs
		r.EnergyPJ += c.Stats.EnergyPJ
	}
	if s.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(s.Cycles)
	}
	r.L1 = mem.TotalStats(s.Hier.L1s)
	r.L2 = mem.TotalStats(s.Hier.L2s)
	if s.Hier.LLC != nil {
		r.LLC = s.Hier.LLC.Stats
	}
	r.DRAM = mem.DRAMStatsOf(s.Hier.DRAM)
	// Per-component dynamic energy (§III-B instruction energies plus
	// per-access memory-system costs).
	r.Energy = EnergyBreakdown{
		CoresPJ: r.EnergyPJ,
		L1PJ:    float64(r.L1.Accesses) * config.EnergyL1AccessPJ,
		L2PJ:    float64(r.L2.Accesses) * config.EnergyL2AccessPJ,
		LLCPJ:   float64(r.LLC.Accesses) * config.EnergyLLCAccessPJ,
		DRAMPJ:  float64(r.DRAM.Reads+r.DRAM.Writebacks) * config.EnergyDRAMAccessPJ,
		AccelPJ: s.accel.EnergyPJ,
	}
	r.EnergyPJ = r.Energy.TotalPJ()
	r.AccelCalls = s.accel.Calls
	r.AccelBytes = s.accel.Bytes
	return r
}
