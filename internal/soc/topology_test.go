package soc

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mosaicsim/internal/config"
)

// TestConfigsDirectoryTopologies loads every example topology shipped under
// configs/, validates it, resolves its tile kinds, and checks it stays in
// sync with the preset of the same name. This is the CI gate for the
// example files: an edit that breaks a file (or drifts from the preset)
// fails here.
func TestConfigsDirectoryTopologies(t *testing.T) {
	paths, err := filepath.Glob("../../configs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected the three example topologies under configs/, found %v", paths)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			sc, err := config.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("%s does not validate: %v", path, err)
			}
			rts, err := ExpandTiles(sc)
			if err != nil {
				t.Fatalf("%s does not expand: %v", path, err)
			}
			if len(rts) == 0 {
				t.Fatalf("%s expands to no tiles", path)
			}
			preset, err := config.TopologyPreset(name)
			if err != nil {
				t.Fatalf("no preset backs %s: %v", path, err)
			}
			want, err := ExpandTiles(preset)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rts, want) {
				t.Errorf("%s drifted from preset %q:\n file: %+v\npreset: %+v", path, name, rts, want)
			}
			fileMem, _ := json.Marshal(sc.Mem)
			presetMem, _ := json.Marshal(preset.Mem)
			if string(fileMem) != string(presetMem) {
				t.Errorf("%s memory config drifted from preset %q", path, name)
			}
		})
	}
}

func TestUnknownTileKindDidYouMean(t *testing.T) {
	sc := &config.SystemConfig{
		Name:  "typo",
		Tiles: []config.TileDef{{Kind: "oo"}},
		Mem:   config.TableIIMem(),
	}
	_, err := ExpandTiles(sc)
	if err == nil || !strings.Contains(err.Error(), `did you mean "ooo"`) {
		t.Errorf("want did-you-mean for kind \"oo\", got %v", err)
	}
	if _, err := Roles(sc); err == nil {
		t.Error("Roles accepted an unknown kind")
	}
}

func TestBadClockRejected(t *testing.T) {
	cases := []config.TileDef{
		{Kind: "ooo", ClockMHz: -5},
		{Core: &config.CoreConfig{Name: "clockless", IssueWidth: 1, WindowSize: 8, LSQSize: 4}},
	}
	for i, td := range cases {
		sc := &config.SystemConfig{Name: "badclock", Tiles: []config.TileDef{td}, Mem: config.TableIIMem()}
		if _, err := ExpandTiles(sc); err == nil || !strings.Contains(err.Error(), "clock must be positive") {
			t.Errorf("case %d: want positive-clock error, got %v", i, err)
		}
	}
}

func TestOverridesAreStrict(t *testing.T) {
	sc := &config.SystemConfig{
		Name: "strict",
		Tiles: []config.TileDef{{
			Kind:      "inorder",
			Overrides: json.RawMessage(`{"window_sise": 64}`),
		}},
		Mem: config.TableIIMem(),
	}
	if _, err := ExpandTiles(sc); err == nil || !strings.Contains(err.Error(), "bad overrides") {
		t.Errorf("want strict-decode error for misspelled override, got %v", err)
	}
}

// TestDeclarativeMatchesLegacy pins the refactor's core promise at the soc
// layer: the same machine declared as a legacy Cores list and as a
// declarative Tiles list produces the same system and identical results.
func TestDeclarativeMatchesLegacy(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(512), nil)
	run := func(sc *config.SystemConfig) Result {
		t.Helper()
		sys, err := Build(sc, Binding{Graph: g, Trace: tr}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 200_000_000); err != nil {
			t.Fatal(err)
		}
		return sys.Result()
	}
	legacy := run(&config.SystemConfig{
		Name:  "m",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 2}},
		Mem:   config.TableIIMem(),
	})
	declarative := run(&config.SystemConfig{
		Name:  "m",
		Tiles: []config.TileDef{{Kind: "ooo", Count: 2}},
		Mem:   config.TableIIMem(),
	})
	lb, _ := json.Marshal(legacy)
	db, _ := json.Marshal(declarative)
	if string(lb) != string(db) {
		t.Errorf("declarative result diverges from legacy:\n legacy: %s\n  tiles: %s", lb, db)
	}
}

// TestMeshGeometryValidated covers the NoC construction checks: an
// undersized mesh is rejected at Build (never silent off-grid placement),
// and pinned slots must be all-or-none, in-grid, and unique.
func TestMeshGeometryValidated(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(256), nil)
	slot := func(s int) *int { return &s }
	build := func(tiles []config.TileDef, noc *config.NoCConfig) error {
		sc := &config.SystemConfig{Name: "mesh", Tiles: tiles, Mem: config.TableIIMem(), NoC: noc}
		_, err := Build(sc, Binding{Graph: g, Trace: tr}, nil)
		return err
	}
	two := []config.TileDef{{Kind: "ooo"}, {Kind: "ooo"}}

	if err := build(two, &config.NoCConfig{MeshWidth: 1, HopCycles: 4}); err == nil ||
		!strings.Contains(err.Error(), "cannot place") {
		t.Errorf("undersized mesh accepted: %v", err)
	}
	if err := build([]config.TileDef{{Kind: "ooo", MeshSlot: slot(0)}, {Kind: "ooo"}},
		&config.NoCConfig{MeshWidth: 2, HopCycles: 4}); err == nil ||
		!strings.Contains(err.Error(), "every tile pins") {
		t.Errorf("partial pinning accepted: %v", err)
	}
	if err := build([]config.TileDef{{Kind: "ooo", MeshSlot: slot(0)}, {Kind: "ooo", MeshSlot: slot(4)}},
		&config.NoCConfig{MeshWidth: 2, HopCycles: 4}); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Errorf("off-grid slot accepted: %v", err)
	}
	if err := build([]config.TileDef{{Kind: "ooo", MeshSlot: slot(1)}, {Kind: "ooo", MeshSlot: slot(1)}},
		&config.NoCConfig{MeshWidth: 2, HopCycles: 4}); err == nil ||
		!strings.Contains(err.Error(), "pinned twice") {
		t.Errorf("duplicate slot accepted: %v", err)
	}
	if err := build([]config.TileDef{{Kind: "ooo", MeshSlot: slot(3)}, {Kind: "ooo", MeshSlot: slot(0)}},
		&config.NoCConfig{MeshWidth: 2, HopCycles: 4}); err != nil {
		t.Errorf("valid pinned placement rejected: %v", err)
	}

	// The same undersized geometry is already rejected by config.Validate,
	// before any trace exists.
	sc := &config.SystemConfig{Name: "mesh", Tiles: two, Mem: config.TableIIMem(),
		NoC: &config.NoCConfig{MeshWidth: 1, HopCycles: 4}}
	if err := sc.Validate(); err == nil {
		t.Error("config.Validate accepted an undersized mesh")
	}
}

// TestPinnedMeshPlacementChangesLatency runs the same two-tile DAE-free
// system with default row-major placement and with the tiles pinned to
// opposite mesh corners; the pinned layout must change hop distance and be
// deterministic.
func TestPinnedMeshSlotsApplyToFabric(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 2, vecSetup(256), nil)
	slot := func(s int) *int { return &s }
	sc := &config.SystemConfig{
		Name: "pinned",
		Tiles: []config.TileDef{
			{Kind: "ooo", MeshSlot: slot(0)},
			{Kind: "ooo", MeshSlot: slot(3)},
		},
		Mem: config.TableIIMem(),
		NoC: &config.NoCConfig{MeshWidth: 2, HopCycles: 4},
	}
	sys, err := Build(sc, Binding{Graph: g, Trace: tr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 3}; !reflect.DeepEqual(sys.Fabric.Slots, want) {
		t.Errorf("Fabric.Slots = %v, want %v", sys.Fabric.Slots, want)
	}
	if err := sys.Run(context.Background(), 200_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestTileBreakdown checks the per-kind rollup on a heterogeneous system:
// kinds aggregate in first-appearance order, tile counts and instruction
// totals add up, and the idle accelerator manager is omitted.
func TestTileBreakdown(t *testing.T) {
	g, tr := traceSPMD(t, spmdVecAdd, 3, vecSetup(768), nil)
	sc := &config.SystemConfig{
		Name: "hetero",
		Tiles: []config.TileDef{
			{Kind: "ooo", Count: 2},
			{Kind: "inorder"},
		},
		Mem: config.TableIIMem(),
	}
	sys, err := Build(sc, Binding{Graph: g, Trace: tr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 200_000_000); err != nil {
		t.Fatal(err)
	}
	bks := sys.TileBreakdown()
	if len(bks) != 2 || bks[0].Kind != "ooo" || bks[1].Kind != "inorder" {
		t.Fatalf("breakdown kinds = %+v, want [ooo inorder]", bks)
	}
	if bks[0].Tiles != 2 || bks[1].Tiles != 1 {
		t.Errorf("tile counts = %d/%d, want 2/1", bks[0].Tiles, bks[1].Tiles)
	}
	var instrs int64
	for _, b := range bks {
		if b.Instrs <= 0 || b.ActiveCycles <= 0 {
			t.Errorf("kind %s has empty stats: %+v", b.Kind, b)
		}
		instrs += b.Instrs
	}
	if total := sys.Result().Instrs; instrs != total {
		t.Errorf("breakdown instrs %d != system total %d", instrs, total)
	}
}

func TestReferenceClockAndRoles(t *testing.T) {
	sc, err := config.TopologyPreset("core-accel")
	if err != nil {
		t.Fatal(err)
	}
	mhz, err := ReferenceClockMHz(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want := config.OutOfOrderCore().ClockMHz; mhz != want {
		t.Errorf("reference clock = %d, want first tile's %d", mhz, want)
	}
	dae, err := config.TopologyPreset("dae-pair")
	if err != nil {
		t.Fatal(err)
	}
	roles, err := Roles(dae)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{config.RoleAccess, config.RoleExecute}; !reflect.DeepEqual(roles, want) {
		t.Errorf("roles = %v, want %v", roles, want)
	}
}
