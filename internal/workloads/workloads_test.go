package workloads

import (
	"context"
	"testing"

	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
)

// TestAllWorkloadsCompile ensures every kernel source compiles to verified IR.
func TestAllWorkloadsCompile(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Kernel(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestAllWorkloadsExecuteAndVerify runs every workload functionally at Tiny
// scale on 1 and 4 tiles; each workload's Check validates results against a
// Go reference implementation.
func TestAllWorkloadsExecuteAndVerify(t *testing.T) {
	for _, w := range All() {
		for _, tiles := range []int{1, 4} {
			g, tr, err := w.Trace(tiles, Tiny)
			if err != nil {
				t.Errorf("%s tiles=%d: %v", w.Name, tiles, err)
				continue
			}
			if len(tr.Tiles) != tiles {
				t.Errorf("%s: trace has %d tiles, want %d", w.Name, len(tr.Tiles), tiles)
			}
			if tr.TotalDynInstrs() == 0 {
				t.Errorf("%s: empty trace", w.Name)
			}
			if g.Stats().Nodes == 0 {
				t.Errorf("%s: empty DDG", w.Name)
			}
		}
	}
}

// TestWorkloadsSimulate smoke-tests the full timing pipeline for every
// workload at Tiny scale.
func TestWorkloadsSimulate(t *testing.T) {
	accels := DefaultAccelModels(2000)
	for _, w := range All() {
		g, tr, err := w.Trace(1, Tiny)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		sys, err := soc.NewSPMD(&config.SystemConfig{
			Name:  w.Name,
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
			Mem:   config.TableIIMem(),
		}, g, tr, accels)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := sys.Run(context.Background(), 2_000_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r := sys.Result()
		if r.Cycles <= 0 || r.Instrs != tr.TotalDynInstrs() {
			t.Errorf("%s: cycles=%d instrs=%d (trace %d)", w.Name, r.Cycles, r.Instrs, tr.TotalDynInstrs())
		}
	}
}

// TestBoundednessCharacter checks that the suite exhibits the paper's
// characterization contrasts (Fig. 6): compute-bound kernels achieve higher
// IPC than the latency-bound ones.
func TestBoundednessCharacter(t *testing.T) {
	ipc := map[string]float64{}
	for _, name := range []string{"bfs", "sgemm", "sad", "ewsd"} {
		w := ByName(name)
		g, tr, err := w.Trace(1, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := soc.NewSPMD(config.XeonSystem(1), g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 2_000_000_000); err != nil {
			t.Fatal(err)
		}
		ipc[name] = sys.Result().IPC
	}
	t.Logf("IPC: %+v", ipc)
	if ipc["sgemm"] <= ipc["bfs"] {
		t.Errorf("compute-bound sgemm IPC (%.2f) should beat latency-bound bfs (%.2f)", ipc["sgemm"], ipc["bfs"])
	}
	if ipc["sad"] <= ipc["ewsd"] {
		t.Errorf("compute-bound sad IPC (%.2f) should beat latency-bound ewsd (%.2f)", ipc["sad"], ipc["ewsd"])
	}
}

func TestByName(t *testing.T) {
	if ByName("sgemm") == nil || ByName("mri-gridding") == nil {
		t.Error("registry lookup failed")
	}
	if ByName("nope") != nil {
		t.Error("registry invented a workload")
	}
	if len(Parboil()) != 11 {
		t.Errorf("Parboil suite has %d kernels, want 11", len(Parboil()))
	}
}

// TestDeterministicSetup: two setups of the same workload produce identical
// traces (required for reproducible experiments).
func TestDeterministicSetup(t *testing.T) {
	w1, w2 := SPMV(), SPMV()
	_, tr1, err := w1.Trace(2, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := w2.Trace(2, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.TotalDynInstrs() != tr2.TotalDynInstrs() || tr1.TotalMemEvents() != tr2.TotalMemEvents() {
		t.Error("workload setup is not deterministic")
	}
}

// TestCombinedKernelMixes: the fused alternating kernel agrees directionally
// with the harmonic composition used by Fig. 13 — sparse-heavy mixes favor
// systems that tolerate gather latency.
func TestCombinedKernelMixes(t *testing.T) {
	run := func(w *Workload, core config.CoreConfig, tiles int) int64 {
		g, tr, err := w.Trace(tiles, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := soc.NewSPMD(&config.SystemConfig{
			Name:  w.Name,
			Cores: []config.CoreSpec{{Core: core, Count: tiles}},
			Mem:   config.TableIIMem(),
		}, g, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles
	}
	for _, mix := range []struct {
		name  string
		dense float64
	}{
		{"combined-dense", 0.75}, {"combined-sparse", 0.25},
	} {
		w := Combined(mix.name, mix.dense)
		base := run(w, config.InOrderCore(), 1)
		quad := run(Combined(mix.name, mix.dense), config.InOrderCore(), 4)
		if quad >= base {
			t.Errorf("%s: 4 cores (%d) not faster than 1 (%d)", mix.name, quad, base)
		}
	}
	// Dense-heavy spends a larger share of single-core time in SGEMM than
	// sparse-heavy (the mix knob actually steers the dataset).
	dh := Combined("combined-dense", 0.75)
	sh := Combined("combined-sparse", 0.25)
	gd, trd, err := dh.Trace(1, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	gs, trs, err := sh.Trace(1, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	_ = gd
	_ = gs
	// Proxy: the dense-heavy variant executes more FP multiply work, the
	// sparse-heavy variant more gathers per instruction.
	ratioD := float64(trd.TotalMemEvents()) / float64(trd.TotalDynInstrs())
	ratioS := float64(trs.TotalMemEvents()) / float64(trs.TotalDynInstrs())
	if ratioS <= ratioD {
		t.Errorf("sparse-heavy mix should be more memory-intensive: %f vs %f", ratioS, ratioD)
	}
}
