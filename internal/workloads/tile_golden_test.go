package workloads

// Seed-golden lock for the tile-interface Interleaver refactor.
//
// testdata/tile_seed_results.json holds the soc.Result JSON the pre-refactor
// (seed) Interleaver produced for every built-in workload and for the config
// matrix whose timing paths differ most (in-order cores, banked DRAM,
// directory coherence, a NoC mesh, unequal clocks, DAE pairs). The test
// regenerates every entry with cycle skipping both off and on and requires
// all three byte streams — golden, naive, skipping — to be identical, so the
// tile loop is provably a pure restructuring, never a model change.
//
// Regenerate (only when a model change is intentional) with:
//
//	go test ./internal/workloads -run TestTileSeedGolden -update-tile-golden

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
)

var updateTileGolden = flag.Bool("update-tile-golden", false,
	"rewrite testdata/tile_seed_results.json from the current simulator")

const tileGoldenPath = "testdata/tile_seed_results.json"

// goldenCase is one (workload, system) matrix entry. build returns a fresh
// system over a freshly traced artifact; it is invoked twice, once per
// skipping mode.
type goldenCase struct {
	key   string
	build func(t *testing.T) *soc.System
}

// spmdCase traces w on tiles tiles and builds it over sc.
func spmdCase(key string, w *Workload, tiles int, sc *config.SystemConfig) goldenCase {
	return goldenCase{key: key, build: func(t *testing.T) *soc.System {
		t.Helper()
		g, tr, err := w.Trace(tiles, Tiny)
		if err != nil {
			t.Fatalf("trace %s: %v", w.Name, err)
		}
		sys, err := soc.NewSPMD(sc, g, tr, DefaultAccelModels(sc.Cores[0].Core.ClockMHz))
		if err != nil {
			t.Fatalf("build %s: %v", key, err)
		}
		return sys
	}}
}

// daeCase slices w and builds the heterogeneous access/execute pair system
// with the same DeSC core configuration the experiment harness uses.
func daeCase(key string, w *Workload, pairs int) goldenCase {
	return goldenCase{key: key, build: func(t *testing.T) *soc.System {
		t.Helper()
		f, err := w.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		sl, err := dae.Slice(f)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.TracePairs(sl.Access, sl.Execute, pairs, Tiny)
		if err != nil {
			t.Fatal(err)
		}
		ino := config.InOrderCore()
		ino.DecoupledSupply = true
		ino.WindowSize = 64
		ino.LSQSize = 12
		ag, eg := ddg.Build(sl.Access), ddg.Build(sl.Execute)
		tiles := make([]soc.TileSpec, 2*pairs)
		for i := range tiles {
			g := ag
			if i%2 == 1 {
				g = eg
			}
			tiles[i] = soc.TileSpec{Cfg: ino, Graph: g, TT: tr.Tiles[i]}
		}
		sys, err := soc.New(key, tiles, config.TableIIMem(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}}
}

// zeroLatCase is daeCase on an idealized same-cycle fabric: messages mature
// the cycle they are sent. DAE pairs are the only built-in workloads that
// communicate — and their fused sends reserve future slots — so this case
// pins the parallel stepper's same-cycle visibility rules against the seed.
func zeroLatCase(key string, w *Workload, pairs int) goldenCase {
	base := daeCase(key, w, pairs)
	return goldenCase{key: key, build: func(t *testing.T) *soc.System {
		sys := base.build(t)
		sys.Fabric.Latency = 0
		return sys
	}}
}

// tileGoldenCases builds the full (workload, system) matrix. wrap is applied
// to every workload before tracing — identity for the seed lock, an explicit
// opt config for the O0-bit-identity leg.
func tileGoldenCases(t *testing.T, wrap func(*Workload) *Workload) []goldenCase {
	ooo2 := func(name string) *config.SystemConfig {
		return &config.SystemConfig{
			Name:  name,
			Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 2}},
			Mem:   config.TableIIMem(),
		}
	}
	var cases []goldenCase
	for _, w := range All() {
		cases = append(cases, spmdCase("spmd/"+w.Name, wrap(w), 2, ooo2(w.Name)))
	}

	inorder := ooo2("cfg-inorder")
	inorder.Cores[0].Core = config.InOrderCore()
	banked := ooo2("cfg-banked")
	banked.Mem.DRAM = config.BankedDRAMDefaults(banked.Mem.DRAM.BandwidthGBs)
	coherent := ooo2("cfg-coherence")
	coherent.Mem.Directory = true
	mesh := &config.SystemConfig{
		Name:  "cfg-mesh",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 4}},
		Mem:   config.TableIIMem(),
		NoC:   &config.NoCConfig{MeshWidth: 2, HopCycles: 4},
	}
	slow := config.OutOfOrderCore()
	slow.ClockMHz /= 2
	mixed := &config.SystemConfig{
		Name:  "cfg-mixed-clocks",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}, {Core: slow, Count: 1}},
		Mem:   config.TableIIMem(),
	}
	cases = append(cases,
		spmdCase("cfg/inorder", wrap(ByName("spmv")), 2, inorder),
		spmdCase("cfg/banked-dram", wrap(ByName("bfs")), 2, banked),
		spmdCase("cfg/coherence", wrap(ByName("sgemm")), 2, coherent),
		spmdCase("cfg/mesh", wrap(ByName("bfs")), 4, mesh),
		spmdCase("cfg/mixed-clocks", wrap(ByName("spmv")), 2, mixed),
		daeCase("dae/projection-1pair", wrap(Projection()), 1),
		daeCase("dae/projection-2pair", wrap(Projection()), 2),
		zeroLatCase("dae/projection-2pair-zerolat", wrap(Projection()), 2),
	)
	return cases
}

// runGolden builds and runs one case with the chosen skipping mode and
// step-worker count and returns its compact Result JSON.
func runGolden(t *testing.T, gc goldenCase, noskip bool, workers int) []byte {
	t.Helper()
	sys := gc.build(t)
	sys.DisableCycleSkipping = noskip
	sys.StepWorkers = workers
	if err := sys.Run(context.Background(), 0); err != nil {
		t.Fatalf("run %s (noskip=%v, workers=%d): %v", gc.key, noskip, workers, err)
	}
	data, err := json.Marshal(sys.Result())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTileSeedGolden(t *testing.T) {
	cases := tileGoldenCases(t, func(w *Workload) *Workload { return w })

	if *updateTileGolden {
		out := map[string]json.RawMessage{}
		for _, gc := range cases {
			out[gc.key] = runGolden(t, gc, true, 1)
		}
		keys := make([]string, 0, len(out))
		for k := range out {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := map[string]json.RawMessage{}
		for _, k := range keys {
			ordered[k] = out[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(tileGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tileGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", tileGoldenPath, len(out))
		return
	}

	raw, err := os.ReadFile(tileGoldenPath)
	if err != nil {
		t.Fatalf("missing seed golden (regenerate with -update-tile-golden): %v", err)
	}
	var golden map[string]json.RawMessage
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) != len(cases) {
		t.Fatalf("golden has %d cases, matrix has %d (regenerate with -update-tile-golden)", len(golden), len(cases))
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.key, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[gc.key]
			if !ok {
				t.Fatalf("no golden entry for %s", gc.key)
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, want); err != nil {
				t.Fatal(err)
			}
			// Every (skipping mode, step-worker count) leg must reproduce
			// the seed byte stream: the tile loop restructuring, the
			// skipper, and the parallel stepper are all provably pure
			// restructurings, never model changes.
			for _, workers := range []int{1, 2, 8} {
				naive := runGolden(t, gc, true, workers)
				skip := runGolden(t, gc, false, workers)
				if !bytes.Equal(buf.Bytes(), naive) {
					t.Errorf("naive loop (workers=%d) diverged from the seed simulator:\nseed: %s\ngot:  %s", workers, buf.Bytes(), naive)
				}
				if !bytes.Equal(buf.Bytes(), skip) {
					t.Errorf("skipping loop (workers=%d) diverged from the seed simulator:\nseed: %s\ngot:  %s", workers, buf.Bytes(), skip)
				}
			}
		})
	}
}

// TestTileSeedGoldenO0 pins the pass pipeline's O0 contract against the
// committed seed golden: building every matrix workload with an explicit
// O0 opt config must produce byte-identical Result JSON to the default
// build, because O0 runs an empty pipeline — same IR, same trace, same
// timing. Any divergence means the pipeline hook mutated the module even
// when no passes were requested.
func TestTileSeedGoldenO0(t *testing.T) {
	if *updateTileGolden {
		t.Skip("golden regeneration runs through TestTileSeedGolden")
	}
	cases := tileGoldenCases(t, func(w *Workload) *Workload {
		return w.WithOpt(ir.OptConfig{Level: "O0"})
	})
	raw, err := os.ReadFile(tileGoldenPath)
	if err != nil {
		t.Fatalf("missing seed golden (regenerate with -update-tile-golden): %v", err)
	}
	var golden map[string]json.RawMessage
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.key, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[gc.key]
			if !ok {
				t.Fatalf("no golden entry for %s", gc.key)
			}
			var buf bytes.Buffer
			if err := json.Compact(&buf, want); err != nil {
				t.Fatal(err)
			}
			got := runGolden(t, gc, true, 1)
			if !bytes.Equal(buf.Bytes(), got) {
				t.Errorf("explicit O0 diverged from the seed simulator:\nseed: %s\ngot:  %s", buf.Bytes(), got)
			}
		})
	}
}
