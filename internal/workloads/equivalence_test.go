package workloads

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
)

// buildAndRun simulates one traced workload with cycle skipping on or off and
// returns the full Result plus the number of cycles the Interleaver elided.
func buildAndRun(t *testing.T, sc *config.SystemConfig, w *Workload, tiles int, noskip bool) (soc.Result, int64) {
	t.Helper()
	g, tr, err := w.Trace(tiles, Tiny)
	if err != nil {
		t.Fatalf("trace %s: %v", w.Name, err)
	}
	accels := DefaultAccelModels(sc.Cores[0].Core.ClockMHz)
	sys, err := soc.NewSPMD(sc, g, tr, accels)
	if err != nil {
		t.Fatalf("build %s: %v", w.Name, err)
	}
	sys.DisableCycleSkipping = noskip
	if err := sys.Run(context.Background(), 0); err != nil {
		t.Fatalf("run %s: %v", w.Name, err)
	}
	return sys.Result(), sys.SkippedCycles
}

// TestCycleSkippingEquivalence runs every built-in workload with
// event-horizon cycle skipping forced off and then on, asserting the two
// Result structs are deeply equal — cycles, IPC, energy, per-core stall
// counters, cache and DRAM stats. This is the tentpole's bit-identity
// contract: skipping is an execution strategy, never a model change.
func TestCycleSkippingEquivalence(t *testing.T) {
	var totalSkipped atomic.Int64
	const tiles = 2
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			sc := &config.SystemConfig{
				Name:  w.Name,
				Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: tiles}},
				Mem:   config.TableIIMem(),
			}
			ref, refSkipped := buildAndRun(t, sc, w, tiles, true)
			if refSkipped != 0 {
				t.Fatalf("naive loop reported %d skipped cycles", refSkipped)
			}
			opt, skipped := buildAndRun(t, sc, w, tiles, false)
			totalSkipped.Add(skipped)
			if !reflect.DeepEqual(ref, opt) {
				t.Errorf("results diverge with cycle skipping enabled:\nnaive: %+v\nskip:  %+v", ref, opt)
			}
		})
	}
	t.Cleanup(func() {
		if totalSkipped.Load() == 0 {
			t.Error("cycle skipping never engaged on any workload; the equivalence check is vacuous")
		}
	})
}

// TestCycleSkippingEquivalenceConfigs re-checks bit-identity on the system
// shapes whose timing paths differ most from the default: in-order cores,
// banked DRAM, the directory coherence extension, a NoC mesh, and tiles with
// unequal clocks (where skipped cycles must advance the clock-ratio
// accumulators arithmetically).
func TestCycleSkippingEquivalenceConfigs(t *testing.T) {
	cases := []struct {
		name     string
		workload string
		tiles    int
		mutate   func(*config.SystemConfig)
	}{
		{"inorder", "spmv", 2, func(sc *config.SystemConfig) {
			sc.Cores[0].Core = config.InOrderCore()
		}},
		{"banked-dram", "bfs", 2, func(sc *config.SystemConfig) {
			sc.Mem.DRAM = config.BankedDRAMDefaults(sc.Mem.DRAM.BandwidthGBs)
		}},
		{"coherence", "sgemm", 2, func(sc *config.SystemConfig) {
			sc.Mem.Directory = true
		}},
		{"mesh", "bfs", 4, func(sc *config.SystemConfig) {
			sc.NoC = &config.NoCConfig{MeshWidth: 2, HopCycles: 4}
		}},
		{"mixed-clocks", "spmv", 2, func(sc *config.SystemConfig) {
			slow := sc.Cores[0].Core
			slow.ClockMHz = sc.Cores[0].Core.ClockMHz / 2
			sc.Cores = []config.CoreSpec{{Core: sc.Cores[0].Core, Count: 1}, {Core: slow, Count: 1}}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w := ByName(tc.workload)
			if w == nil {
				t.Fatalf("unknown workload %q", tc.workload)
			}
			sc := &config.SystemConfig{
				Name:  tc.name,
				Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: tc.tiles}},
				Mem:   config.TableIIMem(),
			}
			tc.mutate(sc)
			total := 0
			for _, cs := range sc.Cores {
				total += cs.Count
			}
			ref, _ := buildAndRun(t, sc, w, total, true)
			opt, _ := buildAndRun(t, sc, w, total, false)
			if !reflect.DeepEqual(ref, opt) {
				t.Errorf("results diverge with cycle skipping enabled:\nnaive: %+v\nskip:  %+v", ref, opt)
			}
		})
	}
}
