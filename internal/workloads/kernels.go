package workloads

// Kernel sources in the mini-C kernel language. All kernels are SPMD: they
// partition work by tile_id()/num_tiles() in contiguous blocks, use
// barrier() for level synchronization, and atomic_add for shared updates —
// matching how the Parboil kernels are parallelized with OpenMP in the
// paper's toolchain (§II-B).

// partition boilerplate: computes [lo,hi) for this tile over n items.
const partition = `
  long tid = tile_id();
  long nt = num_tiles();
  long chunk = (n + nt - 1) / nt;
  long lo = tid * chunk;
  long hi = lo + chunk;
  if (hi > n) { hi = n; }
`

// bfsSrc: level-synchronous breadth-first search over a CSR graph; the
// frontier-update atomics make it memory-latency-bound (§VI-A: BFS is
// latency-bound and the hardest to model due to atomic RMW).
const bfsSrc = `
void kernel(long* rowptr, long* cols, long* levels, long* visited, long n, long depth) {
` + partition + `
  for (long lvl = 0; lvl < depth; lvl++) {
    for (long u = lo; u < hi; u++) {
      if (levels[u] == lvl) {
        for (long e = rowptr[u]; e < rowptr[u+1]; e++) {
          long v = cols[e];
          if (levels[v] < 0) {
            levels[v] = lvl + 1;
            atomic_add(visited, 1);
          }
        }
      }
    }
    barrier();
  }
}
`

// cutcpSrc: cutoff Coulombic potential on a 3D grid (compute-bound; inverse
// square roots dominate).
const cutcpSrc = `
void kernel(double* ax, double* ay, double* az, double* aq, double* grid,
            long natoms, long g, double h, double cut2) {
  long n = g * g * g;
` + partition + `
  for (long p = lo; p < hi; p++) {
    long iz = p / (g * g);
    long rem = p % (g * g);
    long iy = rem / g;
    long ix = rem % g;
    double x = (double)ix * h;
    double y = (double)iy * h;
    double z = (double)iz * h;
    double acc = 0.0;
    for (long a = 0; a < natoms; a++) {
      double dx = ax[a] - x;
      double dy = ay[a] - y;
      double dz = az[a] - z;
      double r2 = dx*dx + dy*dy + dz*dz;
      if (r2 < cut2 && r2 > 0.000001) {
        acc += aq[a] * (1.0 / sqrt(r2) - 1.0 / sqrt(cut2));
      }
    }
    grid[p] = acc;
  }
}
`

// histoSrc: saturating histogram (§VI-A's second accelerator kernel);
// scattered atomic increments with a 255 saturation check.
const histoSrc = `
void kernel(int* img, int* hist, long n, long bins) {
` + partition + `
  for (long i = lo; i < hi; i++) {
    long v = (long)img[i];
    if (v < 0) { v = 0; }
    if (v >= bins) { v = bins - 1; }
    if (hist[v] < 255) {
      atomic_add(hist + v, 1);
    }
  }
}
`

// lbmSrc: lattice-Boltzmann-style streaming/collision over five distribution
// planes of a 2D lattice (bandwidth-bound: ~10 doubles of traffic per cell
// per sweep).
const lbmSrc = `
void kernel(double* src, double* dst, long nx, long ny) {
  long n = (nx - 2) * (ny - 2);
` + partition + `
  long plane = nx * ny;
  for (long p = lo; p < hi; p++) {
    long iy = p / (nx - 2) + 1;
    long ix = p % (nx - 2) + 1;
    long c = iy * nx + ix;
    double f0 = src[c];
    double fe = src[plane + c - 1];
    double fw = src[2*plane + c + 1];
    double fn = src[3*plane + c + nx];
    double fs = src[4*plane + c - nx];
    double rho = f0 + fe + fw + fn + fs;
    double eq = rho * 0.2;
    double omega = 0.6;
    dst[c] = f0 + omega * (eq - f0);
    dst[plane + c] = fe + omega * (eq - fe);
    dst[2*plane + c] = fw + omega * (eq - fw);
    dst[3*plane + c] = fn + omega * (eq - fn);
    dst[4*plane + c] = fs + omega * (eq - fs);
  }
}
`

// griddingSrc: MRI gridding — scattered k-space samples splatted onto a 2D
// grid with bilinear weights via atomic accumulation (irregular writes).
const griddingSrc = `
void kernel(double* sx, double* sy, double* sv, double* grid, long n, long g) {
` + partition + `
  for (long s = lo; s < hi; s++) {
    double gx = sx[s];
    double gy = sy[s];
    long ix = (long)gx;
    long iy = (long)gy;
    if (ix < 0) { ix = 0; }
    if (iy < 0) { iy = 0; }
    if (ix > g - 2) { ix = g - 2; }
    if (iy > g - 2) { iy = g - 2; }
    double fx = gx - (double)ix;
    double fy = gy - (double)iy;
    double v = sv[s];
    atomic_add(grid + (iy * g + ix), v * (1.0 - fx) * (1.0 - fy));
    atomic_add(grid + (iy * g + ix + 1), v * fx * (1.0 - fy));
    atomic_add(grid + ((iy + 1) * g + ix), v * (1.0 - fx) * fy);
    atomic_add(grid + ((iy + 1) * g + ix + 1), v * fx * fy);
  }
}
`

// mriqSrc: MRI Q-matrix computation — per-voxel trigonometric accumulation
// over all k-space samples (heavily compute-bound).
const mriqSrc = `
void kernel(double* kx, double* ky, double* kz, double* phi,
            double* vx, double* vy, double* vz,
            double* outR, double* outI, long n, long nk) {
` + partition + `
  for (long v = lo; v < hi; v++) {
    double x = vx[v];
    double y = vy[v];
    double z = vz[v];
    double qr = 0.0;
    double qi = 0.0;
    for (long k = 0; k < nk; k++) {
      double ph = 6.283185307179586 * (kx[k]*x + ky[k]*y + kz[k]*z);
      qr += phi[k] * cos(ph);
      qi += phi[k] * sin(ph);
    }
    outR[v] = qr;
    outI[v] = qi;
  }
}
`

// sadSrc: sums of absolute differences for block matching between two
// frames (integer compute-bound; §VI-A's highest-IPC kernel).
const sadSrc = `
void kernel(int* cur, int* ref, long* best, long w, long bdim, long win) {
  long nbx = (w - 2 * win) / bdim;
  long n = nbx * nbx;
` + partition + `
  for (long b = lo; b < hi; b++) {
    long by = (b / nbx) * bdim + win;
    long bx = (b % nbx) * bdim + win;
    long bestSad = 1000000000;
    for (long dy = -win; dy <= win; dy++) {
      for (long dx = -win; dx <= win; dx++) {
        long sad = 0;
        for (long j = 0; j < bdim; j++) {
          for (long i = 0; i < bdim; i++) {
            long cc = (long)cur[(by + j) * w + bx + i];
            long rr = (long)ref[(by + j + dy) * w + bx + i + dx];
            long d = cc - rr;
            if (d < 0) { d = -d; }
            sad += d;
          }
        }
        if (sad < bestSad) { bestSad = sad; }
      }
    }
    best[b] = bestSad;
  }
}
`

// sgemmSrc: single-precision dense matrix multiplication (compute-bound,
// near-linear scaling in the paper's Fig. 8).
const sgemmSrc = `
void kernel(float* A, float* B, float* C, long dim) {
  long n = dim;
` + partition + `
  for (long i = lo; i < hi; i++) {
    for (long j = 0; j < dim; j++) {
      float acc = 0.0;
      for (long k = 0; k < dim; k++) {
        acc += A[i*dim+k] * B[k*dim+j];
      }
      C[i*dim+j] = acc;
    }
  }
}
`

// sgemmAccelSrc: the same product offloaded to the §VI-A matrix-multiply
// accelerator; tile 0 invokes, the rest idle (Fig. 12's accelerator bar).
const sgemmAccelSrc = `
void kernel(float* A, float* B, float* C, long dim) {
  long tid = tile_id();
  if (tid == 0) {
    acc_sgemm(A, B, C, dim, dim, dim);
  }
}
`

// spmvSrc: CSR sparse matrix-vector product (bandwidth-bound with an
// irregular gather of x; sublinear scaling in the paper's Fig. 9).
const spmvSrc = `
void kernel(long* rowptr, long* cols, double* vals, double* x, double* y, long n) {
` + partition + `
  for (long r = lo; r < hi; r++) {
    double acc = 0.0;
    for (long e = rowptr[r]; e < rowptr[r+1]; e++) {
      acc += vals[e] * x[cols[e]];
    }
    y[r] = acc;
  }
}
`

// stencilSrc: 2D 5-point Jacobi sweep (bandwidth-bound).
const stencilSrc = `
void kernel(double* src, double* dst, long nx, long ny) {
  long n = (nx - 2) * (ny - 2);
` + partition + `
  for (long p = lo; p < hi; p++) {
    long iy = p / (nx - 2) + 1;
    long ix = p % (nx - 2) + 1;
    long c = iy * nx + ix;
    dst[c] = 0.2 * (src[c] + src[c-1] + src[c+1] + src[c-nx] + src[c+nx]);
  }
}
`

// tpacfSrc: two-point angular correlation — all-pairs dot products binned
// into a shared histogram (compute plus atomics).
const tpacfSrc = `
void kernel(double* px, double* py, double* pz, long* hist, long n, long bins) {
` + partition + `
  for (long i = lo; i < hi; i++) {
    double xi = px[i];
    double yi = py[i];
    double zi = pz[i];
    for (long j = i + 1; j < n; j++) {
      double dot = xi*px[j] + yi*py[j] + zi*pz[j];
      double ang = sqrt(fabs(2.0 - 2.0 * dot));
      long bin = (long)(ang * (double)bins * 0.5);
      if (bin >= bins) { bin = bins - 1; }
      if (bin < 0) { bin = 0; }
      atomic_add(hist + bin, 1);
    }
  }
}
`

// projectionSrc: bipartite graph projection (§VII-A) — every pair of edges
// of a left-side vertex updates a projection edge. Updates are partitioned
// owner-computes (tile = u mod num_tiles) so the irregular read-modify-write
// of the projection matrix needs no atomics; each update's load is the
// memory-latency bottleneck the DAE case study tolerates.
const projectionSrc = `
void kernel(long* rows, long* cols, double* wts, double* proj, long nA, long nP) {
  long tid = tile_id();
  long nt = num_tiles();
  for (long a = 0; a < nA; a++) {
    long start = rows[a];
    long end = rows[a+1];
    for (long e1 = start; e1 < end; e1++) {
      long u = cols[e1];
      if (u % nt == tid) {
        double w1 = wts[e1];
        for (long e2 = start; e2 < end; e2++) {
          long v = cols[e2];
          if (u != v) {
            long idx = u * nP + v;
            proj[idx] = proj[idx] + w1 * wts[e2];
          }
        }
      }
    }
  }
}
`

// combinedSrc: the §VII-B combined kernel — Sinkhorn-style alternation of a
// dense SGEMM phase and a sparse EWSD phase, separated by barriers. The
// dense phase partitions output rows; the sparse phase partitions nonzeros.
const combinedSrc = `
void kernel(float* A, float* B, float* C, long dim,
            long* pos, double* vals, double* dense, double* out,
            long nnz, long iters) {
  long tid = tile_id();
  long nt = num_tiles();
  long rchunk = (dim + nt - 1) / nt;
  long rlo = tid * rchunk;
  long rhi = rlo + rchunk;
  if (rhi > dim) { rhi = dim; }
  long schunk = (nnz + nt - 1) / nt;
  long slo = tid * schunk;
  long shi = slo + schunk;
  if (shi > nnz) { shi = nnz; }
  for (long it = 0; it < iters; it++) {
    for (long i = rlo; i < rhi; i++) {
      for (long j = 0; j < dim; j++) {
        float acc = 0.0;
        for (long k = 0; k < dim; k++) {
          acc += A[i*dim+k] * B[k*dim+j];
        }
        C[i*dim+j] = acc;
      }
    }
    barrier();
    for (long s = slo; s < shi; s++) {
      out[s] = vals[s] * dense[pos[s]];
    }
    barrier();
  }
}
`

// ewsdSrc: element-wise sparse⊙dense product (§VII-B): for each stored
// nonzero, gather the dense operand at an irregular position and scale —
// memory-latency-bound.
const ewsdSrc = `
void kernel(long* pos, double* vals, double* dense, double* out, long n) {
` + partition + `
  for (long k = lo; k < hi; k++) {
    long idx = pos[k];
    out[k] = vals[k] * dense[idx];
  }
}
`
