// Package workloads provides MosaicSim-Go's benchmark suite: the eleven
// Parboil-style kernels of the paper's accuracy study (§VI-A), plus the
// case-study kernels — bipartite graph projection (§VII-A), the element-wise
// sparse⊙dense product EWSD, and the dense SGEMM microbenchmarks with and
// without accelerator offload (§VII-B). Each workload carries its kernel
// source, a deterministic synthetic input generator, and a correctness check
// against a plain Go implementation.
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/cc"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trace"
)

// Scale selects a workload size.
type Scale int

// Workload scales: Tiny for unit tests, Small for the experiment harness,
// Large for longer studies.
const (
	Tiny Scale = iota
	Small
	Large
)

// pick returns the scale-appropriate value.
func pick[T any](s Scale, tiny, small, large T) T {
	switch s {
	case Tiny:
		return tiny
	case Large:
		return large
	default:
		return small
	}
}

// Instance is one generated run of a workload.
type Instance struct {
	Args []uint64
	// Check validates simulated memory against a Go reference; nil-safe.
	Check func(mem *interp.Memory) error
	// Acc maps accelerator intrinsics the kernel calls to functional
	// implementations for the DTG.
	Acc map[string]interp.AccFunc
}

// Workload is one benchmark.
type Workload struct {
	Name string
	Desc string
	Src  string
	// Setup allocates and fills inputs deterministically.
	Setup func(mem *interp.Memory, s Scale) Instance
	// Mem overrides the simulated-memory image size in bytes (0 = MemBytes).
	// Ad-hoc workloads whose inputs outgrow the default image (e.g. lowered
	// DNN training steps) set it to their own footprint.
	Mem int64
	// Opt selects the compiler optimization pipeline folded into the
	// compiled module. The zero value is O0 (no passes); sim.KeyFor mixes
	// Opt's canonical hash into the source hash, so cache artifacts and
	// recorded replay schedules at different opt levels never alias.
	Opt ir.OptConfig

	once sync.Once
	mod  *ir.Module
	err  error
}

// Kernel compiles (once) and returns the workload's kernel function, with
// the workload's optimization pipeline applied.
func (w *Workload) Kernel() (*ir.Function, error) {
	w.once.Do(func() {
		w.mod, w.err = cc.CompileWithOpt(w.Src, w.Name, w.Opt)
	})
	if w.err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, w.err)
	}
	return w.mod.Func("kernel"), nil
}

// WithOpt returns a copy of the workload carrying the given optimization
// config, with a fresh compile cache so the pipeline actually runs (the
// original is untouched and may already be compiled).
func (w *Workload) WithOpt(opt ir.OptConfig) *Workload {
	return &Workload{
		Name:  w.Name,
		Desc:  w.Desc,
		Src:   w.Src,
		Setup: w.Setup,
		Mem:   w.Mem,
		Opt:   opt,
	}
}

// MemBytes is the simulated-memory image size used for workload runs.
const MemBytes = 1 << 26

// memBytes returns the workload's image size, honoring the Mem override.
func (w *Workload) memBytes() int64 {
	if w.Mem > 0 {
		return w.Mem
	}
	return MemBytes
}

// Trace compiles, sets up, and natively executes the workload on the given
// tile count, returning the DDG and dynamic trace (running the correctness
// check first).
func (w *Workload) Trace(tiles int, s Scale) (*ddg.Graph, *trace.Trace, error) {
	f, err := w.Kernel()
	if err != nil {
		return nil, nil, err
	}
	tr, err := w.TraceWith(f, tiles, s)
	if err != nil {
		return nil, nil, err
	}
	return ddg.Build(f), tr, nil
}

// TraceWith sets up and natively executes an already-compiled kernel of this
// workload SPMD on the given tile count (the Dynamic Trace Generator),
// running the correctness check before returning the trace. It is the
// driver glue the session engine (internal/sim) shares with Trace, so the
// setup/check/release discipline lives in exactly one place.
func (w *Workload) TraceWith(f *ir.Function, tiles int, s Scale) (*trace.Trace, error) {
	mem := interp.NewMemory(w.memBytes())
	inst := w.Setup(mem, s)
	res, err := interp.Run(f, mem, inst.Args, interp.Options{NumTiles: tiles, Acc: inst.Acc})
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(mem); err != nil {
			return nil, fmt.Errorf("workload %s: result check: %w", w.Name, err)
		}
	}
	// The trace records addresses, never data: the image is dead once the
	// result check passes, so its buffer goes back to the interp pool.
	mem.Release()
	return res.Trace, nil
}

// TracePairs natively executes DAE access/execute slices of this workload on
// pairs of tiles sharing one memory image (even tiles access, odd tiles
// execute), with the same setup/check/release discipline as TraceWith.
func (w *Workload) TracePairs(access, execute *ir.Function, pairs int, s Scale) (*trace.Trace, error) {
	fns := make([]*ir.Function, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		fns = append(fns, access, execute)
	}
	mem := interp.NewMemory(w.memBytes())
	inst := w.Setup(mem, s)
	res, err := interp.RunTiles(fns, mem, inst.Args, interp.Options{Acc: inst.Acc})
	if err != nil {
		return nil, fmt.Errorf("workload %s (dae): %w", w.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(mem); err != nil {
			return nil, fmt.Errorf("workload %s (dae): result check: %w", w.Name, err)
		}
	}
	mem.Release()
	return res.Trace, nil
}

func rng(name string) *rand.Rand {
	var seed int64 = 42
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return rand.New(rand.NewSource(seed))
}

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// BFS builds the bfs workload.
func BFS() *Workload {
	return &Workload{
		Name: "bfs",
		Desc: "level-synchronous breadth-first search (latency-bound, atomics)",
		Src:  bfsSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			// Sized so the Small working set (cols+levels) overflows the
			// private caches, keeping BFS memory-latency-bound as in the
			// paper's characterization.
			n := pick(s, 200, 60000, 400000)
			deg := 4
			r := rng("bfs")
			rowptr := make([]int64, n+1)
			var cols []int64
			for u := 0; u < n; u++ {
				rowptr[u] = int64(len(cols))
				// A ring edge keeps the graph connected; extra random edges
				// make the frontier irregular.
				cols = append(cols, int64((u+1)%n))
				for d := 1; d < deg; d++ {
					cols = append(cols, int64(r.Intn(n)))
				}
			}
			rowptr[n] = int64(len(cols))
			levels := make([]int64, n)
			for i := range levels {
				levels[i] = -1
			}
			levels[0] = 0
			// Reference BFS and its depth.
			want := goBFS(rowptr, cols, n)
			depth := int64(0)
			for _, l := range want {
				if l > depth {
					depth = l
				}
			}
			pr := mem.AllocI64(rowptr)
			pc := mem.AllocI64(cols)
			pl := mem.AllocI64(levels)
			pv := mem.AllocI64([]int64{0})
			return Instance{
				Args: []uint64{pr, pc, pl, pv, uint64(n), uint64(depth + 1)},
				Check: func(mem *interp.Memory) error {
					got := mem.I64Slice(pl, n)
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("levels[%d] = %d, want %d", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

func goBFS(rowptr, cols []int64, n int) []int64 {
	levels := make([]int64, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[0] = 0
	frontier := []int64{0}
	for lvl := int64(0); len(frontier) > 0; lvl++ {
		var next []int64
		for _, u := range frontier {
			for e := rowptr[u]; e < rowptr[u+1]; e++ {
				v := cols[e]
				if levels[v] < 0 {
					levels[v] = lvl + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return levels
}

// CUTCP builds the cutoff-Coulombic-potential workload.
func CUTCP() *Workload {
	return &Workload{
		Name: "cutcp",
		Desc: "cutoff Coulombic potential on a 3D grid (compute-bound)",
		Src:  cutcpSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			g := pick(s, 6, 12, 24)
			natoms := pick(s, 32, 128, 512)
			h, cut2 := 0.5, 4.0
			r := rng("cutcp")
			ax := make([]float64, natoms)
			ay := make([]float64, natoms)
			az := make([]float64, natoms)
			aq := make([]float64, natoms)
			for i := 0; i < natoms; i++ {
				ax[i] = r.Float64() * float64(g) * h
				ay[i] = r.Float64() * float64(g) * h
				az[i] = r.Float64() * float64(g) * h
				aq[i] = r.Float64()*2 - 1
			}
			pax, pay, paz, paq := mem.AllocF64(ax), mem.AllocF64(ay), mem.AllocF64(az), mem.AllocF64(aq)
			np := g * g * g
			pg := mem.Alloc(int64(np)*8, 64)
			return Instance{
				Args: []uint64{pax, pay, paz, paq, pg, uint64(natoms), uint64(g), interp.ArgF64(h), interp.ArgF64(cut2)},
				Check: func(mem *interp.Memory) error {
					// Spot-check a handful of grid points.
					for _, p := range []int{0, np / 3, np - 1} {
						ix, iy, iz := p%g, (p/g)%g, p/(g*g)
						x, y, z := float64(ix)*h, float64(iy)*h, float64(iz)*h
						want := 0.0
						for a := 0; a < natoms; a++ {
							dx, dy, dz := ax[a]-x, ay[a]-y, az[a]-z
							r2 := dx*dx + dy*dy + dz*dz
							if r2 < cut2 && r2 > 1e-6 {
								want += aq[a] * (1/math.Sqrt(r2) - 1/math.Sqrt(cut2))
							}
						}
						if got := mem.ReadF64(pg + uint64(p)*8); !approxEq(got, want) {
							return fmt.Errorf("grid[%d] = %g, want %g", p, got, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// HISTO builds the saturating-histogram workload.
func HISTO() *Workload {
	return &Workload{
		Name: "histo",
		Desc: "saturating image histogram (scattered atomics)",
		Src:  histoSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			n := pick(s, 2000, 40000, 400000)
			bins := 256
			r := rng("histo")
			img := make([]int32, n)
			want := make([]int32, bins)
			for i := range img {
				// Skewed distribution saturates hot bins, as in Parboil.
				v := int32(r.NormFloat64()*30 + 128)
				if v < 0 {
					v = 0
				}
				if v >= int32(bins) {
					v = int32(bins) - 1
				}
				img[i] = v
				if want[v] < 255 {
					want[v]++
				}
			}
			pi := mem.AllocI32(img)
			ph := mem.AllocI32(make([]int32, bins))
			return Instance{
				Args: []uint64{pi, ph, uint64(n), uint64(bins)},
				Check: func(mem *interp.Memory) error {
					got := mem.I32Slice(ph, bins)
					for b := range want {
						if got[b] != want[b] {
							return fmt.Errorf("hist[%d] = %d, want %d", b, got[b], want[b])
						}
					}
					return nil
				},
			}
		},
	}
}

// LBM builds the lattice-Boltzmann workload.
func LBM() *Workload {
	return &Workload{
		Name: "lbm",
		Desc: "lattice-Boltzmann collide/stream sweep (bandwidth-bound)",
		Src:  lbmSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			nx := pick(s, 18, 66, 258)
			ny := nx
			cells := nx * ny
			r := rng("lbm")
			src := make([]float64, 5*cells)
			for i := range src {
				src[i] = r.Float64()
			}
			ps := mem.AllocF64(src)
			pd := mem.Alloc(int64(5*cells)*8, 64)
			return Instance{
				Args: []uint64{ps, pd, uint64(nx), uint64(ny)},
				Check: func(mem *interp.Memory) error {
					// Check one interior cell's relaxation.
					ix, iy := nx/2, ny/2
					c := iy*nx + ix
					f := [5]float64{
						src[c], src[cells+c-1], src[2*cells+c+1],
						src[3*cells+c+nx], src[4*cells+c-nx],
					}
					rho := f[0] + f[1] + f[2] + f[3] + f[4]
					eq := rho * 0.2
					want := f[0] + 0.6*(eq-f[0])
					if got := mem.ReadF64(pd + uint64(c)*8); !approxEq(got, want) {
						return fmt.Errorf("dst[%d] = %g, want %g", c, got, want)
					}
					return nil
				},
			}
		},
	}
}

// MRIGridding builds the MRI gridding workload.
func MRIGridding() *Workload {
	return &Workload{
		Name: "mri-gridding",
		Desc: "k-space sample gridding with bilinear splatting (irregular atomics)",
		Src:  griddingSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			n := pick(s, 500, 10000, 100000)
			g := pick(s, 16, 64, 128)
			r := rng("mri-gridding")
			sx := make([]float64, n)
			sy := make([]float64, n)
			sv := make([]float64, n)
			want := make([]float64, g*g)
			for i := 0; i < n; i++ {
				sx[i] = r.Float64() * float64(g-1)
				sy[i] = r.Float64() * float64(g-1)
				sv[i] = r.Float64()
				ix, iy := int(sx[i]), int(sy[i])
				if ix > g-2 {
					ix = g - 2
				}
				if iy > g-2 {
					iy = g - 2
				}
				fx, fy := sx[i]-float64(ix), sy[i]-float64(iy)
				want[iy*g+ix] += sv[i] * (1 - fx) * (1 - fy)
				want[iy*g+ix+1] += sv[i] * fx * (1 - fy)
				want[(iy+1)*g+ix] += sv[i] * (1 - fx) * fy
				want[(iy+1)*g+ix+1] += sv[i] * fx * fy
			}
			px, py, pv := mem.AllocF64(sx), mem.AllocF64(sy), mem.AllocF64(sv)
			pg := mem.Alloc(int64(g*g)*8, 64)
			return Instance{
				Args: []uint64{px, py, pv, pg, uint64(n), uint64(g)},
				Check: func(mem *interp.Memory) error {
					got := mem.F64Slice(pg, g*g)
					for i := range want {
						if !approxEq(got[i], want[i]) {
							return fmt.Errorf("grid[%d] = %g, want %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

// MRIQ builds the MRI Q-matrix workload.
func MRIQ() *Workload {
	return &Workload{
		Name: "mri-q",
		Desc: "MRI Q-matrix trigonometric accumulation (compute-bound)",
		Src:  mriqSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			n := pick(s, 24, 128, 1024)  // voxels
			nk := pick(s, 64, 256, 2048) // k-space samples
			r := rng("mri-q")
			mk := func(count int, scale float64) []float64 {
				v := make([]float64, count)
				for i := range v {
					v[i] = (r.Float64()*2 - 1) * scale
				}
				return v
			}
			kx, ky, kz, phi := mk(nk, 0.5), mk(nk, 0.5), mk(nk, 0.5), mk(nk, 1)
			vx, vy, vz := mk(n, 1), mk(n, 1), mk(n, 1)
			pkx, pky, pkz, pphi := mem.AllocF64(kx), mem.AllocF64(ky), mem.AllocF64(kz), mem.AllocF64(phi)
			pvx, pvy, pvz := mem.AllocF64(vx), mem.AllocF64(vy), mem.AllocF64(vz)
			pr := mem.Alloc(int64(n)*8, 64)
			pi := mem.Alloc(int64(n)*8, 64)
			return Instance{
				Args: []uint64{pkx, pky, pkz, pphi, pvx, pvy, pvz, pr, pi, uint64(n), uint64(nk)},
				Check: func(mem *interp.Memory) error {
					for _, v := range []int{0, n / 2, n - 1} {
						var qr, qi float64
						for k := 0; k < nk; k++ {
							ph := 2 * math.Pi * (kx[k]*vx[v] + ky[k]*vy[v] + kz[k]*vz[v])
							qr += phi[k] * math.Cos(ph)
							qi += phi[k] * math.Sin(ph)
						}
						if got := mem.ReadF64(pr + uint64(v)*8); !approxEq(got, qr) {
							return fmt.Errorf("outR[%d] = %g, want %g", v, got, qr)
						}
						if got := mem.ReadF64(pi + uint64(v)*8); !approxEq(got, qi) {
							return fmt.Errorf("outI[%d] = %g, want %g", v, got, qi)
						}
					}
					return nil
				},
			}
		},
	}
}

// SAD builds the block-matching workload.
func SAD() *Workload {
	return &Workload{
		Name: "sad",
		Desc: "block-matching sums of absolute differences (integer compute-bound)",
		Src:  sadSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			w := pick(s, 32, 64, 128)
			bdim, win := 8, 2
			r := rng("sad")
			cur := make([]int32, w*w)
			ref := make([]int32, w*w)
			for i := range cur {
				cur[i] = int32(r.Intn(256))
				ref[i] = int32(r.Intn(256))
			}
			nbx := (w - 2*win) / bdim
			nb := nbx * nbx
			pc, pr := mem.AllocI32(cur), mem.AllocI32(ref)
			pb := mem.Alloc(int64(nb)*8, 64)
			return Instance{
				Args: []uint64{pc, pr, pb, uint64(w), uint64(bdim), uint64(win)},
				Check: func(mem *interp.Memory) error {
					for _, b := range []int{0, nb - 1} {
						by := (b/nbx)*bdim + win
						bx := (b%nbx)*bdim + win
						best := int64(1000000000)
						for dy := -win; dy <= win; dy++ {
							for dx := -win; dx <= win; dx++ {
								var sad int64
								for j := 0; j < bdim; j++ {
									for i := 0; i < bdim; i++ {
										d := int64(cur[(by+j)*w+bx+i]) - int64(ref[(by+j+dy)*w+bx+i+dx])
										if d < 0 {
											d = -d
										}
										sad += d
									}
								}
								if sad < best {
									best = sad
								}
							}
						}
						if got := mem.ReadI64(pb + uint64(b)*8); got != best {
							return fmt.Errorf("best[%d] = %d, want %d", b, got, best)
						}
					}
					return nil
				},
			}
		},
	}
}

// SGEMM builds the dense matrix-multiply workload.
func SGEMM() *Workload {
	return &Workload{
		Name: "sgemm",
		Desc: "single-precision dense matrix multiplication (compute-bound)",
		Src:  sgemmSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			return sgemmSetup(mem, s)
		},
	}
}

func sgemmSetup(mem *interp.Memory, s Scale) Instance {
	dim := pick(s, 12, 40, 160)
	r := rng("sgemm")
	a := make([]float32, dim*dim)
	b := make([]float32, dim*dim)
	for i := range a {
		a[i] = r.Float32()
		b[i] = r.Float32()
	}
	pa, pb := mem.AllocF32(a), mem.AllocF32(b)
	pc := mem.Alloc(int64(dim*dim)*4, 64)
	return Instance{
		Args: []uint64{pa, pb, pc, uint64(dim)},
		Acc:  accel.FuncRegistry(),
		Check: func(mem *interp.Memory) error {
			for _, idx := range []int{0, dim*dim/2 + dim/3, dim*dim - 1} {
				i, j := idx/dim, idx%dim
				var want float32
				for k := 0; k < dim; k++ {
					want += a[i*dim+k] * b[k*dim+j]
				}
				got := mem.ReadF32(pc + uint64(idx)*4)
				if math.Abs(float64(got-want)) > 1e-3 {
					return fmt.Errorf("C[%d] = %g, want %g", idx, got, want)
				}
			}
			return nil
		},
	}
}

// SGEMMAccel builds the accelerator-offloaded SGEMM microbenchmark.
func SGEMMAccel() *Workload {
	return &Workload{
		Name: "sgemm-accel",
		Desc: "SGEMM offloaded to the fixed-function accelerator (§VII-B)",
		Src:  sgemmAccelSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			return sgemmSetup(mem, s)
		},
	}
}

// SPMV builds the sparse matrix-vector workload.
func SPMV() *Workload {
	return &Workload{
		Name: "spmv",
		Desc: "CSR sparse matrix-vector product (bandwidth-bound)",
		Src:  spmvSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			// A rectangular matrix: few rows over a huge column space, so
			// the x-vector gathers exceed the LLC and 8 streaming cores
			// oversubscribe DRAM bandwidth (Fig. 9's sublinear scaling).
			n := pick(s, 300, 16000, 60000)
			m := pick(s, 1<<15, 1<<22, 1<<22) // x-vector length
			nnzPerRow := pick(s, 8, 12, 12)
			r := rng("spmv")
			rowptr := make([]int64, n+1)
			var cols []int64
			var vals []float64
			for row := 0; row < n; row++ {
				rowptr[row] = int64(len(cols))
				for k := 0; k < nnzPerRow; k++ {
					cols = append(cols, int64(r.Intn(m)))
					vals = append(vals, r.Float64())
				}
			}
			rowptr[n] = int64(len(cols))
			x := make([]float64, m)
			for i := range x {
				x[i] = r.Float64()
			}
			pr := mem.AllocI64(rowptr)
			pc := mem.AllocI64(cols)
			pv := mem.AllocF64(vals)
			px := mem.AllocF64(x)
			py := mem.Alloc(int64(n)*8, 64)
			return Instance{
				Args: []uint64{pr, pc, pv, px, py, uint64(n)},
				Check: func(mem *interp.Memory) error {
					for _, row := range []int{0, n / 2, n - 1} {
						want := 0.0
						for e := rowptr[row]; e < rowptr[row+1]; e++ {
							want += vals[e] * x[cols[e]]
						}
						if got := mem.ReadF64(py + uint64(row)*8); !approxEq(got, want) {
							return fmt.Errorf("y[%d] = %g, want %g", row, got, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// Stencil builds the Jacobi-stencil workload.
func Stencil() *Workload {
	return &Workload{
		Name: "stencil",
		Desc: "2D 5-point Jacobi sweep (bandwidth-bound)",
		Src:  stencilSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			nx := pick(s, 20, 130, 512)
			ny := nx
			r := rng("stencil")
			src := make([]float64, nx*ny)
			for i := range src {
				src[i] = r.Float64()
			}
			ps := mem.AllocF64(src)
			pd := mem.Alloc(int64(nx*ny)*8, 64)
			return Instance{
				Args: []uint64{ps, pd, uint64(nx), uint64(ny)},
				Check: func(mem *interp.Memory) error {
					for _, p := range []int{nx + 1, nx*ny/2 + 3, nx*ny - nx - 2} {
						want := 0.2 * (src[p] + src[p-1] + src[p+1] + src[p-nx] + src[p+nx])
						if got := mem.ReadF64(pd + uint64(p)*8); !approxEq(got, want) {
							return fmt.Errorf("dst[%d] = %g, want %g", p, got, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// TPACF builds the two-point angular-correlation workload.
func TPACF() *Workload {
	return &Workload{
		Name: "tpacf",
		Desc: "two-point angular correlation histogram (compute + atomics)",
		Src:  tpacfSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			n := pick(s, 48, 300, 2000)
			bins := 32
			r := rng("tpacf")
			px := make([]float64, n)
			py := make([]float64, n)
			pz := make([]float64, n)
			for i := 0; i < n; i++ {
				// Random unit vectors.
				x, y, z := r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
				norm := math.Sqrt(x*x + y*y + z*z)
				px[i], py[i], pz[i] = x/norm, y/norm, z/norm
			}
			want := make([]int64, bins)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					dot := px[i]*px[j] + py[i]*py[j] + pz[i]*pz[j]
					ang := math.Sqrt(math.Abs(2 - 2*dot))
					bin := int(ang * float64(bins) * 0.5)
					if bin >= bins {
						bin = bins - 1
					}
					if bin < 0 {
						bin = 0
					}
					want[bin]++
				}
			}
			ppx, ppy, ppz := mem.AllocF64(px), mem.AllocF64(py), mem.AllocF64(pz)
			ph := mem.AllocI64(make([]int64, bins))
			return Instance{
				Args: []uint64{ppx, ppy, ppz, ph, uint64(n), uint64(bins)},
				Check: func(mem *interp.Memory) error {
					got := mem.I64Slice(ph, bins)
					for b := range want {
						if got[b] != want[b] {
							return fmt.Errorf("hist[%d] = %d, want %d", b, got[b], want[b])
						}
					}
					return nil
				},
			}
		},
	}
}

// Projection builds the bipartite graph projection workload (§VII-A).
func Projection() *Workload {
	return &Workload{
		Name: "projection",
		Desc: "bipartite graph projection (memory-latency-bound, §VII-A)",
		Src:  projectionSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			// The projection matrix (nP² doubles) deliberately exceeds the
			// private caches so the irregular updates are latency-bound.
			nA := pick(s, 60, 400, 2000)
			deg := 6
			nP := pick(s, 768, 1024, 2048)
			r := rng("projection")
			rows := make([]int64, nA+1)
			var cols []int64
			var wts []float64
			for a := 0; a < nA; a++ {
				rows[a] = int64(len(cols))
				for d := 0; d < deg; d++ {
					cols = append(cols, int64(r.Intn(nP)))
					wts = append(wts, r.Float64())
				}
			}
			rows[nA] = int64(len(cols))
			want := make([]float64, nP*nP)
			for a := 0; a < nA; a++ {
				for e1 := rows[a]; e1 < rows[a+1]; e1++ {
					for e2 := rows[a]; e2 < rows[a+1]; e2++ {
						u, v := cols[e1], cols[e2]
						if u != v {
							want[u*int64(nP)+v] += wts[e1] * wts[e2]
						}
					}
				}
			}
			pr := mem.AllocI64(rows)
			pc := mem.AllocI64(cols)
			pw := mem.AllocF64(wts)
			pp := mem.Alloc(int64(nP*nP)*8, 64)
			return Instance{
				Args: []uint64{pr, pc, pw, pp, uint64(nA), uint64(nP)},
				Check: func(mem *interp.Memory) error {
					got := mem.F64Slice(pp, nP*nP)
					for i := range want {
						if !approxEq(got[i], want[i]) {
							return fmt.Errorf("proj[%d] = %g, want %g", i, got[i], want[i])
						}
					}
					return nil
				},
			}
		},
	}
}

// EWSD builds the element-wise sparse⊙dense workload (§VII-B).
func EWSD() *Workload {
	return &Workload{
		Name: "ewsd",
		Desc: "element-wise sparse⊙dense product (memory-latency-bound, §VII-B)",
		Src:  ewsdSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			// The dense operand exceeds the private caches so each gather is
			// a long-latency access (the EWSD premise of §VII-B).
			nnz := pick(s, 600, 8000, 100000)
			denseN := pick(s, 1<<19, 1<<20, 1<<22)
			r := rng("ewsd")
			pos := make([]int64, nnz)
			vals := make([]float64, nnz)
			for i := range pos {
				pos[i] = int64(r.Intn(denseN))
				vals[i] = r.Float64()
			}
			dense := make([]float64, denseN)
			for i := range dense {
				dense[i] = r.Float64()
			}
			pp := mem.AllocI64(pos)
			pv := mem.AllocF64(vals)
			pd := mem.AllocF64(dense)
			po := mem.Alloc(int64(nnz)*8, 64)
			return Instance{
				Args: []uint64{pp, pv, pd, po, uint64(nnz)},
				Check: func(mem *interp.Memory) error {
					for _, k := range []int{0, nnz / 2, nnz - 1} {
						want := vals[k] * dense[pos[k]]
						if got := mem.ReadF64(po + uint64(k)*8); !approxEq(got, want) {
							return fmt.Errorf("out[%d] = %g, want %g", k, got, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// Combined builds the §VII-B combined kernel: alternating dense (SGEMM) and
// sparse (EWSD) phases. denseFrac steers the dataset mix: the fraction of
// single-core cycles spent in the dense phase (the paper's dense-heavy /
// equal / sparse-heavy kernels use 0.75 / 0.5 / 0.25).
func Combined(name string, denseFrac float64) *Workload {
	return &Workload{
		Name: name,
		Desc: fmt.Sprintf("alternating SGEMM/EWSD phases (%d%% dense, §VII-B)", int(denseFrac*100)),
		Src:  combinedSrc,
		Setup: func(mem *interp.Memory, s Scale) Instance {
			// Baseline single-core costs scale as dim³ (dense) and nnz·L
			// (sparse, L ≈ DRAM latency); sizes below hold the requested
			// mix approximately at Small scale.
			dim := pick(s, 10, 24, 48)
			nnzBase := pick(s, 300, 3000, 20000)
			nnz := int(float64(nnzBase) * (1 - denseFrac) * 2)
			if nnz < 64 {
				nnz = 64
			}
			dim = int(float64(dim) * (0.6 + denseFrac))
			denseN := pick(s, 1<<18, 1<<20, 1<<22)
			iters := 2
			r := rng(name)
			a := make([]float32, dim*dim)
			bm := make([]float32, dim*dim)
			for i := range a {
				a[i] = r.Float32()
				bm[i] = r.Float32()
			}
			pos := make([]int64, nnz)
			vals := make([]float64, nnz)
			for i := range pos {
				pos[i] = int64(r.Intn(denseN))
				vals[i] = r.Float64()
			}
			dvec := make([]float64, denseN)
			for i := range dvec {
				dvec[i] = r.Float64()
			}
			pa, pb := mem.AllocF32(a), mem.AllocF32(bm)
			pc := mem.Alloc(int64(dim*dim)*4, 64)
			pp := mem.AllocI64(pos)
			pv := mem.AllocF64(vals)
			pd := mem.AllocF64(dvec)
			po := mem.Alloc(int64(nnz)*8, 64)
			return Instance{
				Args: []uint64{pa, pb, pc, uint64(dim), pp, pv, pd, po, uint64(nnz), uint64(iters)},
				Check: func(mem *interp.Memory) error {
					for _, idx := range []int{0, dim*dim - 1} {
						i, j := idx/dim, idx%dim
						var want float32
						for k := 0; k < dim; k++ {
							want += a[i*dim+k] * bm[k*dim+j]
						}
						if got := mem.ReadF32(pc + uint64(idx)*4); math.Abs(float64(got-want)) > 1e-3 {
							return fmt.Errorf("C[%d] = %g, want %g", idx, got, want)
						}
					}
					for _, k := range []int{0, nnz - 1} {
						want := vals[k] * dvec[pos[k]]
						if got := mem.ReadF64(po + uint64(k)*8); !approxEq(got, want) {
							return fmt.Errorf("out[%d] = %g, want %g", k, got, want)
						}
					}
					return nil
				},
			}
		},
	}
}

// Parboil returns the eleven Parboil-style kernels in the paper's Fig. 5
// order.
func Parboil() []*Workload {
	return []*Workload{
		BFS(), CUTCP(), HISTO(), LBM(), MRIGridding(), MRIQ(),
		SAD(), SGEMM(), SPMV(), Stencil(), TPACF(),
	}
}

// All returns every workload, Parboil plus the case-study kernels.
func All() []*Workload {
	return append(Parboil(), SGEMMAccel(), Projection(), EWSD(),
		Combined("combined-equal", 0.5))
}

// DefaultAccelModels returns closed-form performance models for the three
// §VI-A accelerators, scaled to the given system clock. The design point
// (large PLM, modest 4-lane datapath) is the one whose speedup over an
// in-order software baseline matches the paper's Fig. 12 accelerator bar.
func DefaultAccelModels(systemMHz int) map[string]soc.AccelModel {
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 4}
	out := map[string]soc.AccelModel{}
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		out[name] = &accel.Model{
			Acc:       accel.ByName(name, dp),
			Mode:      accel.ModeClosedForm,
			SystemMHz: systemMHz,
			MaxMemGBs: 24,
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Names lists every workload name.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Resolve finds a workload by name, or fails immediately with a did-you-mean
// suggestion so an unknown name in a sweep list errors up front instead of
// mid-sweep after earlier legs have run.
func Resolve(name string) (*Workload, error) {
	if w := ByName(name); w != nil {
		return w, nil
	}
	if s := stats.Closest(name, Names()); s != "" {
		return nil, fmt.Errorf("unknown workload %q (did you mean %q? see -list)", name, s)
	}
	return nil, fmt.Errorf("unknown workload %q (see -list)", name)
}
