// Package config defines MosaicSim-Go's core, memory, and system
// configuration ("a comprehensive set of both core and system configuration
// files", §VI-B), JSON load/save, and presets reproducing the paper's
// Table I evaluation system and Table II DAE case-study parameters.
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// InstrClass buckets instructions for latency, energy, and functional-unit
// accounting.
type InstrClass uint8

// Instruction classes.
const (
	ClassIntALU InstrClass = iota
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassMem     // loads/stores/atomics: dynamic latency from the hierarchy
	ClassBranch  // terminators
	ClassCast    // conversions / moves
	ClassSpecial // intrinsic calls, send/recv
	NumClasses
)

var classNames = [NumClasses]string{
	"int_alu", "int_mul", "int_div", "fp_alu", "fp_mul", "fp_div",
	"mem", "branch", "cast", "special",
}

func (c InstrClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// BranchPredictor selects the control-speculation model (§III-C). The paper's
// current release supports static and perfect prediction.
type BranchPredictor string

// Branch predictor kinds.
const (
	// BranchStatic predicts backward-taken/forward-not-taken and pays the
	// misprediction penalty when the traced path disagrees.
	BranchStatic BranchPredictor = "static"
	// BranchPerfect always follows the traced path with no penalty.
	BranchPerfect BranchPredictor = "perfect"
	// BranchDynamic is a gshare predictor (global history XOR branch PC into
	// a table of 2-bit counters) trained on the dynamic stream — the
	// "more realistic dynamic branch predictor" the paper defers to future
	// work (§III-C, footnote 2).
	BranchDynamic BranchPredictor = "dynamic"
	// BranchNone waits for the terminator to complete before launching the
	// next DBB (no control speculation at all).
	BranchNone BranchPredictor = "none"
)

// CoreConfig holds the microarchitectural resource limits of one core tile
// (§III-A).
type CoreConfig struct {
	Name string `json:"name"`
	// IssueWidth is the superscalar width W.
	IssueWidth int `json:"issue_width"`
	// WindowSize is the sliding instruction window (ROB) size.
	WindowSize int `json:"window_size"`
	// LSQSize is the Memory Address Orderer capacity.
	LSQSize int `json:"lsq_size"`
	// MaxLiveDBB caps live DBBs per static basic block (0 = unlimited). For
	// accelerator tiles this mimics replicated loop-body circuits (§III-A).
	MaxLiveDBB int `json:"max_live_dbb"`
	// FunctionalUnits caps in-flight instructions per class (0 = unlimited).
	FunctionalUnits map[string]int `json:"functional_units,omitempty"`
	// Branch selects the control-speculation model.
	Branch BranchPredictor `json:"branch"`
	// MispredictPenalty is the extra launch latency on a mispredicted DBB.
	MispredictPenalty int64 `json:"mispredict_penalty"`
	// PerfectAliasSpec enables perfect memory-alias speculation from the
	// trace (§III-C).
	PerfectAliasSpec bool `json:"perfect_alias_spec"`
	// InOrder selects in-order issue with out-of-order completion
	// (scoreboarded stall-on-use); false models full out-of-order issue
	// within the window.
	InOrder bool `json:"in_order"`
	// DecoupledSupply enables the DeSC structures of §VII-A: the terminal
	// load buffer (loads feeding sends are fire-and-forget) and the store
	// value buffer (stores drain when their communicated value arrives,
	// without stalling the core).
	DecoupledSupply bool `json:"decoupled_supply"`
	// ClockMHz is the tile clock; the Interleaver scales tiles with
	// different clocks (§II).
	ClockMHz int `json:"clock_mhz"`
	// AreaMM2 is the tile area from McPAT-style tables (Table II).
	AreaMM2 float64 `json:"area_mm2"`
	// Latencies overrides per-class fixed instruction latencies in cycles;
	// missing classes use defaults.
	Latencies map[string]int64 `json:"latencies,omitempty"`
	// MaxMessages is the inter-tile communication buffer capacity in
	// entries (Table II "Comm. Buffer Sizes"); 0 = default 512.
	MaxMessages int `json:"max_messages"`
	// AtomicExtraLatency adds cycles to every atomic RMW completion. The
	// hardware-reference model uses it for locked-operation and contention
	// costs that MosaicSim's memory system does not capture (§VI-A: BFS
	// accuracy suffers because atomics are "difficult to accurately model").
	AtomicExtraLatency int64 `json:"atomic_extra_latency"`
}

// DefaultLatencies are the fixed per-class instruction latencies in cycles.
var DefaultLatencies = map[InstrClass]int64{
	ClassIntALU: 1, ClassIntMul: 3, ClassIntDiv: 18,
	ClassFPALU: 3, ClassFPMul: 4, ClassFPDiv: 18,
	ClassBranch: 1, ClassCast: 1, ClassSpecial: 1,
}

// Latency resolves the fixed latency for a class under this config.
func (c *CoreConfig) Latency(cl InstrClass) int64 {
	if c.Latencies != nil {
		if v, ok := c.Latencies[cl.String()]; ok {
			return v
		}
	}
	if v, ok := DefaultLatencies[cl]; ok {
		return v
	}
	return 1
}

// FULimit resolves the functional-unit cap for a class (0 = unlimited).
func (c *CoreConfig) FULimit(cl InstrClass) int {
	if c.FunctionalUnits == nil {
		return 0
	}
	return c.FunctionalUnits[cl.String()]
}

// CacheConfig configures one cache (§V-A).
type CacheConfig struct {
	Name      string `json:"name"`
	SizeKB    int    `json:"size_kb"`
	LineBytes int    `json:"line_bytes"`
	Assoc     int    `json:"assoc"`
	// LatencyCycles is the access (hit/tag) latency.
	LatencyCycles int64 `json:"latency_cycles"`
	// MSHRs is the miss-status holding register count (coalescing).
	MSHRs int `json:"mshrs"`
	// PortsPerCycle bounds requests accepted per cycle.
	PortsPerCycle int `json:"ports_per_cycle"`
	// PrefetchDegree is the number of lines prefetched on a detected stream
	// (0 disables the prefetcher).
	PrefetchDegree int `json:"prefetch_degree"`
}

// DRAMModel selects the memory model (§V-B).
type DRAMModel string

// DRAM model kinds.
const (
	// DRAMSimple is the paper's in-house SimpleDRAM: minimum latency plus
	// epoch-based maximum-bandwidth throttling.
	DRAMSimple DRAMModel = "simple"
	// DRAMBanked is the cycle-accurate bank/row model standing in for
	// DRAMSim2: slower to simulate, bank-conflict- and row-locality-aware.
	DRAMBanked DRAMModel = "banked"
)

// DRAMConfig configures the DRAM model.
type DRAMConfig struct {
	Model DRAMModel `json:"model"`
	// MinLatency is SimpleDRAM's fixed minimum latency in core cycles.
	MinLatency int64 `json:"min_latency"`
	// BandwidthGBs is the peak bandwidth enforced per epoch.
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// EpochCycles is the bandwidth-accounting window.
	EpochCycles int64 `json:"epoch_cycles"`
	// Banked-model timing (DDR-style, in cycles).
	Channels int   `json:"channels"`
	Banks    int   `json:"banks"`
	RowBytes int   `json:"row_bytes"`
	TCAS     int64 `json:"t_cas"`
	TRCD     int64 `json:"t_rcd"`
	TRP      int64 `json:"t_rp"`
	TBurst   int64 `json:"t_burst"`
}

// MemConfig is a complete memory hierarchy configuration.
type MemConfig struct {
	L1   CacheConfig  `json:"l1"`
	L2   *CacheConfig `json:"l2,omitempty"`  // private per-core, optional
	LLC  *CacheConfig `json:"llc,omitempty"` // shared, optional
	DRAM DRAMConfig   `json:"dram"`
	// Directory enables the MSI-style directory coherence extension over
	// the private cache stacks (§V-A future work).
	Directory bool `json:"directory,omitempty"`
	// DirInvCycles is the invalidation round-trip latency (default 30).
	DirInvCycles int64 `json:"dir_inv_cycles,omitempty"`
}

// NoCConfig arranges tiles on a 2D mesh whose links add per-hop latency to
// inter-tile messages (§V-A's future-work "message module").
type NoCConfig struct {
	MeshWidth int   `json:"mesh_width"`
	HopCycles int64 `json:"hop_cycles"`
}

// SystemConfig describes a whole simulated SoC. Tiles are declared either
// through Cores (the legacy homogeneous form: full inline core configs) or
// through Tiles (the declarative form: preset kinds with overrides, roles,
// and NoC placement); exactly one of the two must be set.
type SystemConfig struct {
	Name  string     `json:"name"`
	Cores []CoreSpec `json:"cores,omitempty"`
	Tiles []TileDef  `json:"tiles,omitempty"`
	Mem   MemConfig  `json:"mem"`
	NoC   *NoCConfig `json:"noc,omitempty"`
	// StepWorkers shards tile stepping across that many goroutines per
	// simulation, joined at every cycle boundary; results are bit-identical
	// to sequential stepping for every topology — directory-coherent
	// hierarchies and zero-latency fabrics included (their cross-core
	// effects are epoch-ordered; DESIGN.md §5e). 0 or 1 steps sequentially.
	StepWorkers int `json:"step_workers,omitempty"`
	// FabricLatency overrides the base inter-tile transfer latency in
	// cycles (NoC hop costs add on top). nil keeps the default of 1; 0
	// models an idealized same-cycle fabric.
	FabricLatency *int64 `json:"fabric_latency,omitempty"`
}

// EffectiveFabricLatency resolves the FabricLatency override (default 1).
func (sc *SystemConfig) EffectiveFabricLatency() int64 {
	if sc.FabricLatency != nil {
		return *sc.FabricLatency
	}
	return 1
}

// CoreSpec instantiates Count copies of a core configuration.
type CoreSpec struct {
	Core  CoreConfig `json:"core"`
	Count int        `json:"count"`
}

// Tile roles. A role binds a tile to one of the kernel artifacts the
// topology is simulated against: RoleSPMD tiles replay the whole kernel,
// RoleAccess/RoleExecute tiles replay the DAE slices (§VII-A). Access and
// execute tiles must alternate access-first — tile 2i pairs with tile 2i+1,
// which is the pairing the DAE slicer's tile_id()/2 rewriting assumes.
const (
	RoleSPMD    = "spmd"
	RoleAccess  = "access"
	RoleExecute = "execute"
)

// TileDef declares Count tiles of one kind in a heterogeneous topology.
type TileDef struct {
	// Kind names a registered tile preset ("ooo", "inorder", "xeon",
	// "accel", ...); the registry lives in internal/soc. Ignored when Core
	// is set.
	Kind string `json:"kind,omitempty"`
	// Count instantiates that many identical tiles (0 means 1).
	Count int `json:"count,omitempty"`
	// Role selects the kernel artifact the tile replays; empty means
	// RoleSPMD.
	Role string `json:"role,omitempty"`
	// ClockMHz overrides the preset's clock.
	ClockMHz int `json:"clock_mhz,omitempty"`
	// MeshSlot pins the tile to a fixed slot on the NoC mesh (row-major).
	// Requires Count <= 1; when any tile pins a slot, all must.
	MeshSlot *int `json:"mesh_slot,omitempty"`
	// Overrides is a partial CoreConfig JSON object merged field-by-field
	// onto the preset (e.g. {"issue_width": 2, "max_live_dbb": 4}).
	Overrides json.RawMessage `json:"overrides,omitempty"`
	// Core is a complete explicit core configuration, bypassing Kind and
	// Overrides.
	Core *CoreConfig `json:"core,omitempty"`
}

// TileCount is the number of tiles the config instantiates, over either
// declaration form.
func (sc *SystemConfig) TileCount() int {
	n := 0
	for _, cs := range sc.Cores {
		n += cs.Count
	}
	for _, td := range sc.Tiles {
		n += td.count()
	}
	return n
}

// count is the effective tile count of one TileDef.
func (td *TileDef) count() int {
	if td.Count == 0 {
		return 1
	}
	return td.Count
}

// Load reads a SystemConfig from a JSON file.
func Load(path string) (*SystemConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc SystemConfig
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	return &sc, nil
}

// Save writes a SystemConfig as indented JSON.
func (sc *SystemConfig) Save(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks a configuration for structural errors. Tile-kind names
// are resolved later, by the tile registry in internal/soc, which owns the
// set of registered kinds.
func (sc *SystemConfig) Validate() error {
	if len(sc.Cores) == 0 && len(sc.Tiles) == 0 {
		return fmt.Errorf("config %q: no cores or tiles", sc.Name)
	}
	if len(sc.Cores) > 0 && len(sc.Tiles) > 0 {
		return fmt.Errorf("config %q: declare tiles through either cores or tiles, not both", sc.Name)
	}
	if sc.StepWorkers < 0 {
		return fmt.Errorf("config %q: step_workers must be >= 0, got %d", sc.Name, sc.StepWorkers)
	}
	if sc.FabricLatency != nil && *sc.FabricLatency < 0 {
		return fmt.Errorf("config %q: fabric_latency must be >= 0, got %d", sc.Name, *sc.FabricLatency)
	}
	for _, cs := range sc.Cores {
		if cs.Count <= 0 {
			return fmt.Errorf("config %q: core %q count must be positive", sc.Name, cs.Core.Name)
		}
		if cs.Core.IssueWidth <= 0 || cs.Core.WindowSize <= 0 || cs.Core.LSQSize <= 0 {
			return fmt.Errorf("config %q: core %q needs positive issue width, window, and LSQ", sc.Name, cs.Core.Name)
		}
	}
	if err := sc.validateTiles(); err != nil {
		return err
	}
	for _, cc := range []*CacheConfig{&sc.Mem.L1, sc.Mem.L2, sc.Mem.LLC} {
		if cc == nil {
			continue
		}
		if cc.SizeKB <= 0 || cc.LineBytes <= 0 || cc.Assoc <= 0 {
			return fmt.Errorf("config %q: cache %q needs positive size, line, assoc", sc.Name, cc.Name)
		}
		lines := cc.SizeKB * 1024 / cc.LineBytes
		if lines%cc.Assoc != 0 {
			return fmt.Errorf("config %q: cache %q sets are not integral (%d lines / %d ways)", sc.Name, cc.Name, lines, cc.Assoc)
		}
	}
	if sc.Mem.DRAM.Model == "" {
		return fmt.Errorf("config %q: DRAM model unset", sc.Name)
	}
	return sc.validateNoC()
}

// validateTiles checks the declarative tile list: counts, roles, clocks,
// explicit core configs, the DAE pairing constraint, and mesh-slot shape.
func (sc *SystemConfig) validateTiles() error {
	var roles []string
	pinned, unpinned := 0, 0
	for i, td := range sc.Tiles {
		if td.Count < 0 {
			return fmt.Errorf("config %q: tile %d: negative count %d", sc.Name, i, td.Count)
		}
		if td.Kind == "" && td.Core == nil {
			return fmt.Errorf("config %q: tile %d: needs a kind or an explicit core config", sc.Name, i)
		}
		if td.ClockMHz < 0 {
			return fmt.Errorf("config %q: tile %d (%s): negative clock %d MHz", sc.Name, i, td.label(), td.ClockMHz)
		}
		switch td.Role {
		case "", RoleSPMD, RoleAccess, RoleExecute:
		default:
			return fmt.Errorf("config %q: tile %d (%s): unknown role %q (want %s, %s, or %s)",
				sc.Name, i, td.label(), td.Role, RoleSPMD, RoleAccess, RoleExecute)
		}
		if td.Core != nil {
			if td.Core.IssueWidth <= 0 || td.Core.WindowSize <= 0 || td.Core.LSQSize <= 0 {
				return fmt.Errorf("config %q: tile %d (%s): explicit core needs positive issue width, window, and LSQ", sc.Name, i, td.label())
			}
		}
		if td.MeshSlot != nil {
			if td.count() > 1 {
				return fmt.Errorf("config %q: tile %d (%s): mesh_slot requires count 1, got %d", sc.Name, i, td.label(), td.count())
			}
			pinned++
		} else {
			unpinned += td.count()
		}
		for k := 0; k < td.count(); k++ {
			roles = append(roles, td.Role)
		}
	}
	if pinned > 0 && unpinned > 0 {
		return fmt.Errorf("config %q: either every tile pins a mesh_slot or none does (%d pinned, %d not)", sc.Name, pinned, unpinned)
	}
	if pinned > 0 && sc.NoC == nil {
		return fmt.Errorf("config %q: mesh_slot set but no NoC configured", sc.Name)
	}
	return validateRoles(sc.Name, roles)
}

// validateRoles enforces the DAE pairing constraint: once any tile takes an
// access or execute role, the whole topology must be alternating
// access/execute pairs, because the slicer's tile_id()/2 rewriting pairs
// tile 2i with tile 2i+1.
func validateRoles(name string, roles []string) error {
	dae := false
	for _, r := range roles {
		if r == RoleAccess || r == RoleExecute {
			dae = true
			break
		}
	}
	if !dae {
		return nil
	}
	if len(roles)%2 != 0 {
		return fmt.Errorf("config %q: access/execute tiles must form pairs, got %d tiles", name, len(roles))
	}
	for i, r := range roles {
		want := RoleAccess
		if i%2 == 1 {
			want = RoleExecute
		}
		if r != want {
			return fmt.Errorf("config %q: tile %d must have role %q (access/execute tiles alternate, access first), got %q", name, i, want, r)
		}
	}
	return nil
}

// validateNoC rejects mesh geometries that cannot place every tile: before
// this check, an undersized MeshWidth silently computed off-grid coordinates
// in Fabric.transferLatency and charged nonsense hop counts.
func (sc *SystemConfig) validateNoC() error {
	if sc.NoC == nil {
		return nil
	}
	w := sc.NoC.MeshWidth
	if w <= 0 {
		return fmt.Errorf("config %q: NoC mesh width must be positive, got %d", sc.Name, w)
	}
	if sc.NoC.HopCycles < 0 {
		return fmt.Errorf("config %q: NoC hop latency must be non-negative, got %d", sc.Name, sc.NoC.HopCycles)
	}
	n := sc.TileCount()
	if w*w < n {
		return fmt.Errorf("config %q: a %dx%d mesh has %d slots but the system has %d tiles", sc.Name, w, w, w*w, n)
	}
	slots := map[int]bool{}
	for i, td := range sc.Tiles {
		if td.MeshSlot == nil {
			continue
		}
		s := *td.MeshSlot
		if s < 0 || s >= w*w {
			return fmt.Errorf("config %q: tile %d (%s): mesh_slot %d outside the %dx%d mesh", sc.Name, i, td.label(), s, w, w)
		}
		if slots[s] {
			return fmt.Errorf("config %q: mesh_slot %d pinned twice", sc.Name, s)
		}
		slots[s] = true
	}
	return nil
}

// label names a tile def for error messages.
func (td *TileDef) label() string {
	if td.Core != nil && td.Core.Name != "" {
		return td.Core.Name
	}
	if td.Kind != "" {
		return td.Kind
	}
	return "?"
}
