// Package config defines MosaicSim-Go's core, memory, and system
// configuration ("a comprehensive set of both core and system configuration
// files", §VI-B), JSON load/save, and presets reproducing the paper's
// Table I evaluation system and Table II DAE case-study parameters.
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// InstrClass buckets instructions for latency, energy, and functional-unit
// accounting.
type InstrClass uint8

// Instruction classes.
const (
	ClassIntALU InstrClass = iota
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassMem     // loads/stores/atomics: dynamic latency from the hierarchy
	ClassBranch  // terminators
	ClassCast    // conversions / moves
	ClassSpecial // intrinsic calls, send/recv
	NumClasses
)

var classNames = [NumClasses]string{
	"int_alu", "int_mul", "int_div", "fp_alu", "fp_mul", "fp_div",
	"mem", "branch", "cast", "special",
}

func (c InstrClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// BranchPredictor selects the control-speculation model (§III-C). The paper's
// current release supports static and perfect prediction.
type BranchPredictor string

// Branch predictor kinds.
const (
	// BranchStatic predicts backward-taken/forward-not-taken and pays the
	// misprediction penalty when the traced path disagrees.
	BranchStatic BranchPredictor = "static"
	// BranchPerfect always follows the traced path with no penalty.
	BranchPerfect BranchPredictor = "perfect"
	// BranchDynamic is a gshare predictor (global history XOR branch PC into
	// a table of 2-bit counters) trained on the dynamic stream — the
	// "more realistic dynamic branch predictor" the paper defers to future
	// work (§III-C, footnote 2).
	BranchDynamic BranchPredictor = "dynamic"
	// BranchNone waits for the terminator to complete before launching the
	// next DBB (no control speculation at all).
	BranchNone BranchPredictor = "none"
)

// CoreConfig holds the microarchitectural resource limits of one core tile
// (§III-A).
type CoreConfig struct {
	Name string `json:"name"`
	// IssueWidth is the superscalar width W.
	IssueWidth int `json:"issue_width"`
	// WindowSize is the sliding instruction window (ROB) size.
	WindowSize int `json:"window_size"`
	// LSQSize is the Memory Address Orderer capacity.
	LSQSize int `json:"lsq_size"`
	// MaxLiveDBB caps live DBBs per static basic block (0 = unlimited). For
	// accelerator tiles this mimics replicated loop-body circuits (§III-A).
	MaxLiveDBB int `json:"max_live_dbb"`
	// FunctionalUnits caps in-flight instructions per class (0 = unlimited).
	FunctionalUnits map[string]int `json:"functional_units,omitempty"`
	// Branch selects the control-speculation model.
	Branch BranchPredictor `json:"branch"`
	// MispredictPenalty is the extra launch latency on a mispredicted DBB.
	MispredictPenalty int64 `json:"mispredict_penalty"`
	// PerfectAliasSpec enables perfect memory-alias speculation from the
	// trace (§III-C).
	PerfectAliasSpec bool `json:"perfect_alias_spec"`
	// InOrder selects in-order issue with out-of-order completion
	// (scoreboarded stall-on-use); false models full out-of-order issue
	// within the window.
	InOrder bool `json:"in_order"`
	// DecoupledSupply enables the DeSC structures of §VII-A: the terminal
	// load buffer (loads feeding sends are fire-and-forget) and the store
	// value buffer (stores drain when their communicated value arrives,
	// without stalling the core).
	DecoupledSupply bool `json:"decoupled_supply"`
	// ClockMHz is the tile clock; the Interleaver scales tiles with
	// different clocks (§II).
	ClockMHz int `json:"clock_mhz"`
	// AreaMM2 is the tile area from McPAT-style tables (Table II).
	AreaMM2 float64 `json:"area_mm2"`
	// Latencies overrides per-class fixed instruction latencies in cycles;
	// missing classes use defaults.
	Latencies map[string]int64 `json:"latencies,omitempty"`
	// MaxMessages is the inter-tile communication buffer capacity in
	// entries (Table II "Comm. Buffer Sizes"); 0 = default 512.
	MaxMessages int `json:"max_messages"`
	// AtomicExtraLatency adds cycles to every atomic RMW completion. The
	// hardware-reference model uses it for locked-operation and contention
	// costs that MosaicSim's memory system does not capture (§VI-A: BFS
	// accuracy suffers because atomics are "difficult to accurately model").
	AtomicExtraLatency int64 `json:"atomic_extra_latency"`
}

// DefaultLatencies are the fixed per-class instruction latencies in cycles.
var DefaultLatencies = map[InstrClass]int64{
	ClassIntALU: 1, ClassIntMul: 3, ClassIntDiv: 18,
	ClassFPALU: 3, ClassFPMul: 4, ClassFPDiv: 18,
	ClassBranch: 1, ClassCast: 1, ClassSpecial: 1,
}

// Latency resolves the fixed latency for a class under this config.
func (c *CoreConfig) Latency(cl InstrClass) int64 {
	if c.Latencies != nil {
		if v, ok := c.Latencies[cl.String()]; ok {
			return v
		}
	}
	if v, ok := DefaultLatencies[cl]; ok {
		return v
	}
	return 1
}

// FULimit resolves the functional-unit cap for a class (0 = unlimited).
func (c *CoreConfig) FULimit(cl InstrClass) int {
	if c.FunctionalUnits == nil {
		return 0
	}
	return c.FunctionalUnits[cl.String()]
}

// CacheConfig configures one cache (§V-A).
type CacheConfig struct {
	Name      string `json:"name"`
	SizeKB    int    `json:"size_kb"`
	LineBytes int    `json:"line_bytes"`
	Assoc     int    `json:"assoc"`
	// LatencyCycles is the access (hit/tag) latency.
	LatencyCycles int64 `json:"latency_cycles"`
	// MSHRs is the miss-status holding register count (coalescing).
	MSHRs int `json:"mshrs"`
	// PortsPerCycle bounds requests accepted per cycle.
	PortsPerCycle int `json:"ports_per_cycle"`
	// PrefetchDegree is the number of lines prefetched on a detected stream
	// (0 disables the prefetcher).
	PrefetchDegree int `json:"prefetch_degree"`
}

// DRAMModel selects the memory model (§V-B).
type DRAMModel string

// DRAM model kinds.
const (
	// DRAMSimple is the paper's in-house SimpleDRAM: minimum latency plus
	// epoch-based maximum-bandwidth throttling.
	DRAMSimple DRAMModel = "simple"
	// DRAMBanked is the cycle-accurate bank/row model standing in for
	// DRAMSim2: slower to simulate, bank-conflict- and row-locality-aware.
	DRAMBanked DRAMModel = "banked"
)

// DRAMConfig configures the DRAM model.
type DRAMConfig struct {
	Model DRAMModel `json:"model"`
	// MinLatency is SimpleDRAM's fixed minimum latency in core cycles.
	MinLatency int64 `json:"min_latency"`
	// BandwidthGBs is the peak bandwidth enforced per epoch.
	BandwidthGBs float64 `json:"bandwidth_gbs"`
	// EpochCycles is the bandwidth-accounting window.
	EpochCycles int64 `json:"epoch_cycles"`
	// Banked-model timing (DDR-style, in cycles).
	Channels int   `json:"channels"`
	Banks    int   `json:"banks"`
	RowBytes int   `json:"row_bytes"`
	TCAS     int64 `json:"t_cas"`
	TRCD     int64 `json:"t_rcd"`
	TRP      int64 `json:"t_rp"`
	TBurst   int64 `json:"t_burst"`
}

// MemConfig is a complete memory hierarchy configuration.
type MemConfig struct {
	L1   CacheConfig  `json:"l1"`
	L2   *CacheConfig `json:"l2,omitempty"`  // private per-core, optional
	LLC  *CacheConfig `json:"llc,omitempty"` // shared, optional
	DRAM DRAMConfig   `json:"dram"`
	// Directory enables the MSI-style directory coherence extension over
	// the private cache stacks (§V-A future work).
	Directory bool `json:"directory,omitempty"`
	// DirInvCycles is the invalidation round-trip latency (default 30).
	DirInvCycles int64 `json:"dir_inv_cycles,omitempty"`
}

// NoCConfig arranges tiles on a 2D mesh whose links add per-hop latency to
// inter-tile messages (§V-A's future-work "message module").
type NoCConfig struct {
	MeshWidth int   `json:"mesh_width"`
	HopCycles int64 `json:"hop_cycles"`
}

// SystemConfig describes a whole simulated SoC.
type SystemConfig struct {
	Name  string     `json:"name"`
	Cores []CoreSpec `json:"cores"`
	Mem   MemConfig  `json:"mem"`
	NoC   *NoCConfig `json:"noc,omitempty"`
}

// CoreSpec instantiates Count copies of a core configuration.
type CoreSpec struct {
	Core  CoreConfig `json:"core"`
	Count int        `json:"count"`
}

// Load reads a SystemConfig from a JSON file.
func Load(path string) (*SystemConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc SystemConfig
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("config %s: %w", path, err)
	}
	return &sc, nil
}

// Save writes a SystemConfig as indented JSON.
func (sc *SystemConfig) Save(path string) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate checks a configuration for structural errors.
func (sc *SystemConfig) Validate() error {
	if len(sc.Cores) == 0 {
		return fmt.Errorf("config %q: no cores", sc.Name)
	}
	for _, cs := range sc.Cores {
		if cs.Count <= 0 {
			return fmt.Errorf("config %q: core %q count must be positive", sc.Name, cs.Core.Name)
		}
		if cs.Core.IssueWidth <= 0 || cs.Core.WindowSize <= 0 || cs.Core.LSQSize <= 0 {
			return fmt.Errorf("config %q: core %q needs positive issue width, window, and LSQ", sc.Name, cs.Core.Name)
		}
	}
	for _, cc := range []*CacheConfig{&sc.Mem.L1, sc.Mem.L2, sc.Mem.LLC} {
		if cc == nil {
			continue
		}
		if cc.SizeKB <= 0 || cc.LineBytes <= 0 || cc.Assoc <= 0 {
			return fmt.Errorf("config %q: cache %q needs positive size, line, assoc", sc.Name, cc.Name)
		}
		lines := cc.SizeKB * 1024 / cc.LineBytes
		if lines%cc.Assoc != 0 {
			return fmt.Errorf("config %q: cache %q sets are not integral (%d lines / %d ways)", sc.Name, cc.Name, lines, cc.Assoc)
		}
	}
	if sc.Mem.DRAM.Model == "" {
		return fmt.Errorf("config %q: DRAM model unset", sc.Name)
	}
	return nil
}
