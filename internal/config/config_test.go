package config

import (
	"path/filepath"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	systems := []*SystemConfig{
		XeonSystem(1),
		XeonSystem(8),
		{Name: "dae", Cores: []CoreSpec{{Core: InOrderCore(), Count: 8}}, Mem: TableIIMem()},
		{Name: "ooo", Cores: []CoreSpec{{Core: OutOfOrderCore(), Count: 1}}, Mem: TableIIMem()},
		{Name: "accel", Cores: []CoreSpec{{Core: AcceleratorTileCore(8), Count: 1}}, Mem: TableIIMem()},
	}
	for _, sc := range systems {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
}

func TestTableIIParameters(t *testing.T) {
	ooo := OutOfOrderCore()
	if ooo.IssueWidth != 4 || ooo.WindowSize != 128 || ooo.LSQSize != 128 {
		t.Errorf("OoO core does not match Table II: %+v", ooo)
	}
	if ooo.ClockMHz != 2000 || ooo.AreaMM2 != 8.44 {
		t.Errorf("OoO clock/area mismatch: %+v", ooo)
	}
	ino := InOrderCore()
	if ino.IssueWidth != 1 || ino.AreaMM2 != 1.01 {
		t.Errorf("InO core does not match Table II: %+v", ino)
	}
	// Equal-area comparison from §VII-A: 8 InO cores ≈ 1 OoO core.
	if ratio := ooo.AreaMM2 / ino.AreaMM2; ratio < 7.5 || ratio > 9 {
		t.Errorf("area ratio = %.2f, want ~8.4", ratio)
	}
	mem := TableIIMem()
	if mem.L1.SizeKB != 32 || mem.L2.SizeKB != 2048 {
		t.Errorf("Table II cache sizes wrong: %+v", mem)
	}
	if mem.DRAM.BandwidthGBs != 24 || mem.DRAM.MinLatency != 200 {
		t.Errorf("Table II DRAM wrong: %+v", mem.DRAM)
	}
}

func TestTableIParameters(t *testing.T) {
	sc := XeonSystem(8)
	if sc.Mem.L1.SizeKB != 32 || sc.Mem.L1.Assoc != 8 {
		t.Errorf("Table I L1 wrong: %+v", sc.Mem.L1)
	}
	if sc.Mem.L2.SizeKB != 2048 || sc.Mem.L2.Assoc != 8 {
		t.Errorf("Table I L2 wrong: %+v", sc.Mem.L2)
	}
	if sc.Mem.LLC.SizeKB != 20480 || sc.Mem.LLC.Assoc != 20 {
		t.Errorf("Table I LLC wrong: %+v", sc.Mem.LLC)
	}
	if sc.Mem.DRAM.BandwidthGBs != 68 {
		t.Errorf("Table I DRAM bandwidth wrong: %+v", sc.Mem.DRAM)
	}
	if sc.Cores[0].Core.ClockMHz != 3200 {
		t.Errorf("Table I frequency wrong: %d", sc.Cores[0].Core.ClockMHz)
	}
}

func TestLatencyResolution(t *testing.T) {
	c := OutOfOrderCore()
	if c.Latency(ClassIntALU) != 1 {
		t.Errorf("default int_alu latency = %d", c.Latency(ClassIntALU))
	}
	c.Latencies = map[string]int64{"fp_mul": 7}
	if c.Latency(ClassFPMul) != 7 {
		t.Errorf("override fp_mul latency = %d", c.Latency(ClassFPMul))
	}
	if c.Latency(ClassFPDiv) != DefaultLatencies[ClassFPDiv] {
		t.Error("non-overridden class must fall back to default")
	}
}

func TestFULimit(t *testing.T) {
	c := InOrderCore()
	if c.FULimit(ClassFPMul) != 0 {
		t.Error("unset FU limit must be unlimited (0)")
	}
	c.FunctionalUnits = map[string]int{"fp_mul": 2}
	if c.FULimit(ClassFPMul) != 2 {
		t.Errorf("FU limit = %d, want 2", c.FULimit(ClassFPMul))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.json")
	sc := XeonSystem(4)
	if err := sc.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != sc.Name || len(got.Cores) != 1 || got.Cores[0].Count != 4 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Mem.LLC == nil || got.Mem.LLC.SizeKB != sc.Mem.LLC.SizeKB {
		t.Errorf("LLC lost in round trip: %+v", got.Mem.LLC)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := XeonSystem(1)
	bad.Cores[0].Count = 0
	if bad.Validate() == nil {
		t.Error("zero-count core accepted")
	}
	bad2 := XeonSystem(1)
	bad2.Mem.L1.Assoc = 7 // 512 lines not divisible by 7
	if bad2.Validate() == nil {
		t.Error("non-integral sets accepted")
	}
	bad3 := &SystemConfig{Name: "empty"}
	if bad3.Validate() == nil {
		t.Error("empty system accepted")
	}
	bad4 := XeonSystem(1)
	bad4.Cores[0].Core.IssueWidth = 0
	if bad4.Validate() == nil {
		t.Error("zero issue width accepted")
	}
}

func TestInstrClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := InstrClass(0); c < NumClasses; c++ {
		n := c.String()
		if n == "" || seen[n] {
			t.Errorf("class %d has bad/duplicate name %q", c, n)
		}
		seen[n] = true
	}
	for c := InstrClass(0); c < NumClasses; c++ {
		if _, ok := EnergyPerClassPJ[c]; !ok {
			t.Errorf("class %s missing energy entry", c)
		}
	}
}

func TestExtensionFieldsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ext.json")
	sc := XeonSystem(4)
	sc.Mem.Directory = true
	sc.Mem.DirInvCycles = 44
	sc.NoC = &NoCConfig{MeshWidth: 2, HopCycles: 7}
	sc.Cores[0].Core.Branch = BranchDynamic
	sc.Cores[0].Core.DecoupledSupply = true
	sc.Cores[0].Core.AtomicExtraLatency = 55
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Mem.Directory || got.Mem.DirInvCycles != 44 {
		t.Errorf("directory fields lost: %+v", got.Mem)
	}
	if got.NoC == nil || got.NoC.MeshWidth != 2 || got.NoC.HopCycles != 7 {
		t.Errorf("NoC fields lost: %+v", got.NoC)
	}
	c := got.Cores[0].Core
	if c.Branch != BranchDynamic || !c.DecoupledSupply || c.AtomicExtraLatency != 55 {
		t.Errorf("core extension fields lost: %+v", c)
	}
}
