package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTopologyRoundTrip checks Save → Load is lossless for every named
// topology preset: the reloaded config validates and marshals to the same
// bytes as the original.
func TestTopologyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range TopologyPresets() {
		sc, err := TopologyPreset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("preset %s does not validate: %v", name, err)
		}
		path := filepath.Join(dir, name+".json")
		if err := sc.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("reloaded %s does not validate: %v", name, err)
		}
		want, _ := json.Marshal(sc)
		have, _ := json.Marshal(got)
		if string(want) != string(have) {
			t.Errorf("%s round-trip lost information:\nbefore: %s\n after: %s", name, want, have)
		}
	}
}

func TestTopologyPresetDidYouMean(t *testing.T) {
	if _, err := TopologyPreset("dae-par"); err == nil ||
		!strings.Contains(err.Error(), `did you mean "dae-pair"`) {
		t.Errorf("want did-you-mean for preset, got %v", err)
	}
}

// TestTileDefValidation walks the declarative form's rejection paths: every
// malformed topology must fail Validate with a message naming the problem.
func TestTileDefValidation(t *testing.T) {
	mem := TableIIMem()
	slot := func(s int) *int { return &s }
	cases := []struct {
		name string
		sc   SystemConfig
		want string
	}{
		{"empty", SystemConfig{Name: "x", Mem: mem}, "no cores or tiles"},
		{"both forms", SystemConfig{Name: "x", Mem: mem,
			Cores: []CoreSpec{{Core: InOrderCore(), Count: 1}},
			Tiles: []TileDef{{Kind: "ooo"}}}, "not both"},
		{"negative count", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", Count: -2}}}, "negative count"},
		{"kindless", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{}}}, "needs a kind"},
		{"negative clock", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", ClockMHz: -1}}}, "negative clock"},
		{"bad role", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", Role: "acess"}}}, "unknown role"},
		{"unpaired dae", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "inorder", Role: RoleAccess}}}, "must form pairs"},
		{"execute first", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{
				{Kind: "inorder", Role: RoleExecute},
				{Kind: "inorder", Role: RoleAccess}}}, "alternate"},
		{"slot multi-count", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", Count: 2, MeshSlot: slot(0)}},
			NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 1}}, "requires count 1"},
		{"slot without noc", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", MeshSlot: slot(0)}}}, "no NoC"},
		{"partial pinning", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", MeshSlot: slot(0)}, {Kind: "ooo"}},
			NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 1}}, "every tile pins"},
		{"undersized mesh", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", Count: 5}},
			NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 1}}, "4 slots but the system has 5 tiles"},
		{"off-grid slot", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", MeshSlot: slot(4)}},
			NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 1}}, "outside"},
		{"duplicate slot", SystemConfig{Name: "x", Mem: mem,
			Tiles: []TileDef{{Kind: "ooo", MeshSlot: slot(1)}, {Kind: "ooo", MeshSlot: slot(1)}},
			NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 1}}, "pinned twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestLegacyMeshStillValidated keeps the geometry check on the legacy Cores
// form too: an undersized mesh is an error regardless of declaration style.
func TestLegacyMeshStillValidated(t *testing.T) {
	sc := SystemConfig{
		Name:  "legacy",
		Cores: []CoreSpec{{Core: OutOfOrderCore(), Count: 5}},
		Mem:   TableIIMem(),
		NoC:   &NoCConfig{MeshWidth: 2, HopCycles: 4},
	}
	if err := sc.Validate(); err == nil {
		t.Error("legacy Cores config with undersized mesh validated")
	}
}

// FuzzTopologyLoad drives the topology loader with arbitrary JSON: Load must
// never panic, and anything that loads and validates must survive a
// Save → Load → marshal round trip unchanged.
func FuzzTopologyLoad(f *testing.F) {
	for _, name := range TopologyPresets() {
		sc, err := TopologyPreset(name)
		if err != nil {
			f.Fatal(err)
		}
		b, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name":"x","tiles":[{"kind":"oo"}]}`))
	f.Add([]byte(`{"name":"x","tiles":[{"kind":"ooo","mesh_slot":9}]}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"name":"x","cores":[{"count":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "in.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		sc, err := Load(path)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := sc.Validate(); err != nil {
			return
		}
		out := filepath.Join(dir, "out.json")
		if err := sc.Save(out); err != nil {
			t.Fatalf("valid config failed to save: %v", err)
		}
		back, err := Load(out)
		if err != nil {
			t.Fatalf("saved config failed to reload: %v", err)
		}
		want, _ := json.Marshal(sc)
		have, _ := json.Marshal(back)
		if string(want) != string(have) {
			t.Errorf("round trip not stable:\nbefore: %s\n after: %s", want, have)
		}
	})
}
