package config

import (
	"encoding/json"
	"fmt"
	"sort"

	"mosaicsim/internal/stats"
)

// Presets reproducing the paper's configurations.

// OutOfOrderCore returns the Table II out-of-order core: 4-wide, 128-entry
// window/ROB/LSQ, 2 GHz, 8.44 mm².
func OutOfOrderCore() CoreConfig {
	return CoreConfig{
		Name:              "ooo",
		IssueWidth:        4,
		WindowSize:        128,
		LSQSize:           128,
		Branch:            BranchStatic,
		MispredictPenalty: 10,
		PerfectAliasSpec:  true,
		ClockMHz:          2000,
		AreaMM2:           8.44,
		MaxMessages:       512,
	}
}

// InOrderCore returns the Table II in-order core: single-issue in-order
// (scoreboarded: issue stalls on use of a pending value, but independent
// instructions behind a miss keep issuing), 2 GHz, 1.01 mm².
func InOrderCore() CoreConfig {
	return CoreConfig{
		Name:              "inorder",
		IssueWidth:        1,
		WindowSize:        32,
		LSQSize:           8,
		InOrder:           true,
		Branch:            BranchNone,
		MispredictPenalty: 4,
		ClockMHz:          2000,
		AreaMM2:           1.01,
		MaxMessages:       512,
	}
}

// XeonLikeCore approximates one core of the Table I Intel Xeon E5-2667 v3
// used in the accuracy study: aggressive out-of-order at 3.2 GHz.
func XeonLikeCore() CoreConfig {
	c := OutOfOrderCore()
	c.Name = "xeon"
	c.IssueWidth = 4
	c.WindowSize = 192
	c.LSQSize = 96
	c.ClockMHz = 3200
	c.PerfectAliasSpec = true
	c.Branch = BranchPerfect
	return c
}

// AcceleratorTileCore returns a pre-RTL accelerator tile configuration
// (§III-A, §IV): relaxed window, wide issue, bounded loop-body replication.
func AcceleratorTileCore(unroll int) CoreConfig {
	return CoreConfig{
		Name:        "accel-tile",
		IssueWidth:  16,
		WindowSize:  512,
		LSQSize:     256,
		MaxLiveDBB:  unroll,
		Branch:      BranchPerfect,
		ClockMHz:    1000,
		AreaMM2:     2.0,
		MaxMessages: 512,
	}
}

// TableIMem returns the Table I Xeon-like memory hierarchy: 32 KB 8-way L1,
// 2 MB 8-way private L2, 20 MB 20-way shared LLC, 68 GB/s DRAM.
func TableIMem() MemConfig {
	l2 := CacheConfig{Name: "L2", SizeKB: 2048, LineBytes: 64, Assoc: 8, LatencyCycles: 6, MSHRs: 16, PortsPerCycle: 1, PrefetchDegree: 2}
	llc := CacheConfig{Name: "LLC", SizeKB: 20480, LineBytes: 64, Assoc: 20, LatencyCycles: 18, MSHRs: 32, PortsPerCycle: 2}
	return MemConfig{
		L1:  CacheConfig{Name: "L1", SizeKB: 32, LineBytes: 64, Assoc: 8, LatencyCycles: 1, MSHRs: 8, PortsPerCycle: 2, PrefetchDegree: 2},
		L2:  &l2,
		LLC: &llc,
		DRAM: DRAMConfig{
			Model:        DRAMSimple,
			MinLatency:   180,
			BandwidthGBs: 68,
			EpochCycles:  100,
		},
	}
}

// TableIIMem returns the Table II DAE case-study memory parameters: 32 KB
// 8-way 1-cycle L1, 2 MB 8-way 6-cycle L2, DDR3L 24 GB/s 200-cycle DRAM.
func TableIIMem() MemConfig {
	l2 := CacheConfig{Name: "L2", SizeKB: 2048, LineBytes: 64, Assoc: 8, LatencyCycles: 6, MSHRs: 16, PortsPerCycle: 1}
	return MemConfig{
		L1: CacheConfig{Name: "L1", SizeKB: 32, LineBytes: 64, Assoc: 8, LatencyCycles: 1, MSHRs: 8, PortsPerCycle: 2},
		L2: &l2,
		DRAM: DRAMConfig{
			Model:        DRAMSimple,
			MinLatency:   200,
			BandwidthGBs: 24,
			EpochCycles:  100,
		},
	}
}

// BankedDRAMDefaults fills DDR-style timing for the banked (DRAMSim2
// stand-in) model at the given peak bandwidth.
func BankedDRAMDefaults(bandwidthGBs float64) DRAMConfig {
	return DRAMConfig{
		Model:        DRAMBanked,
		MinLatency:   60,
		BandwidthGBs: bandwidthGBs,
		EpochCycles:  100,
		Channels:     2,
		Banks:        8,
		RowBytes:     2048,
		TCAS:         28,
		TRCD:         28,
		TRP:          28,
		TBurst:       8,
	}
}

// XeonSystem returns the Table I system with n cores.
func XeonSystem(n int) *SystemConfig {
	return &SystemConfig{
		Name:  "xeon-e5-2667v3",
		Cores: []CoreSpec{{Core: XeonLikeCore(), Count: n}},
		Mem:   TableIMem(),
	}
}

// DeSCOverrides is the partial core config that turns the in-order tile
// into a DAE (DeSC-style) core: decoupled supply structures plus the
// extended run-ahead window of the Fig. 11 study (§VII-A).
const DeSCOverrides = `{"decoupled_supply": true, "window_size": 64, "lsq_size": 12}`

// topologyPresets are the named declarative topologies mosaicd and the CLI
// accept. Each returns a fresh SystemConfig, so callers may mutate.
var topologyPresets = map[string]func() *SystemConfig{
	// spmd-xeon: the Table I accuracy-study machine, four Xeon-like cores
	// over the Xeon memory hierarchy.
	"spmd-xeon": func() *SystemConfig {
		return &SystemConfig{
			Name:  "spmd-xeon",
			Tiles: []TileDef{{Kind: "xeon", Count: 4}},
			Mem:   TableIMem(),
		}
	},
	// dae-pair: one decoupled access/execute pair of DeSC in-order cores
	// over the Table II memory system (§VII-A).
	"dae-pair": func() *SystemConfig {
		return &SystemConfig{
			Name: "dae-pair",
			Tiles: []TileDef{
				{Kind: "inorder", Role: RoleAccess, Overrides: json.RawMessage(DeSCOverrides)},
				{Kind: "inorder", Role: RoleExecute, Overrides: json.RawMessage(DeSCOverrides)},
			},
			Mem: TableIIMem(),
		}
	},
	// core-accel: a heterogeneous SoC — an out-of-order host core next to a
	// pre-RTL accelerator tile at a slower clock (§III-A, §VII-B).
	"core-accel": func() *SystemConfig {
		return &SystemConfig{
			Name: "core-accel",
			Tiles: []TileDef{
				{Kind: "ooo"},
				{Kind: "accel-tile", ClockMHz: 1000},
			},
			Mem: TableIIMem(),
		}
	},
}

// TopologyPresets lists the named topology presets, sorted.
func TopologyPresets() []string {
	out := make([]string, 0, len(topologyPresets))
	for k := range topologyPresets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TopologyPreset returns a fresh copy of a named topology, or an error with
// a did-you-mean suggestion.
func TopologyPreset(name string) (*SystemConfig, error) {
	if f, ok := topologyPresets[name]; ok {
		return f(), nil
	}
	names := TopologyPresets()
	if s := stats.Closest(name, names); s != "" {
		return nil, fmt.Errorf("config: unknown topology preset %q (did you mean %q?)", name, s)
	}
	return nil, fmt.Errorf("config: unknown topology preset %q (available: %v)", name, names)
}

// EnergyPerClassPJ is the per-instruction-class dynamic energy in picojoules
// used for instruction energy costs (§III-B) and the power model.
var EnergyPerClassPJ = map[InstrClass]float64{
	ClassIntALU: 8, ClassIntMul: 25, ClassIntDiv: 120,
	ClassFPALU: 20, ClassFPMul: 35, ClassFPDiv: 160,
	ClassMem: 30, ClassBranch: 6, ClassCast: 4, ClassSpecial: 10,
}

// Cache and DRAM access energies in picojoules for the power model.
const (
	EnergyL1AccessPJ   = 25
	EnergyL2AccessPJ   = 80
	EnergyLLCAccessPJ  = 250
	EnergyDRAMAccessPJ = 2600
)
