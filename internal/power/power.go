// Package power converts simulation results into energy and energy-delay
// product (EDP) estimates, the metric of the paper's TensorFlow case study
// (§VII-C), combining per-instruction dynamic energy (§III-B), memory-system
// access energy, accelerator power, and area-proportional static leakage.
package power

// Summary captures what the EDP computation needs from a run.
type Summary struct {
	Cycles    int64
	ClockMHz  int
	DynamicPJ float64 // accumulated dynamic energy
	AreaMM2   float64 // active silicon, for leakage
}

// LeakageWPerMM2 is the static power density applied to active area.
const LeakageWPerMM2 = 0.08

// Seconds returns wall-clock time of the run.
func (s Summary) Seconds() float64 {
	if s.ClockMHz <= 0 {
		return 0
	}
	return float64(s.Cycles) / (float64(s.ClockMHz) * 1e6)
}

// EnergyJ returns total energy in joules: dynamic plus leakage over time.
func (s Summary) EnergyJ() float64 {
	return s.DynamicPJ*1e-12 + LeakageWPerMM2*s.AreaMM2*s.Seconds()
}

// EDP returns the energy-delay product in joule-seconds.
func (s Summary) EDP() float64 { return s.EnergyJ() * s.Seconds() }

// Improvement returns how much better (×) opt is than base in EDP;
// >1 means opt wins.
func Improvement(base, opt Summary) float64 {
	o := opt.EDP()
	if o == 0 {
		return 0
	}
	return base.EDP() / o
}
