package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSecondsAndEnergy(t *testing.T) {
	s := Summary{Cycles: 2_000_000, ClockMHz: 2000, DynamicPJ: 1e9, AreaMM2: 1}
	if got := s.Seconds(); got != 1e-3 {
		t.Errorf("Seconds = %g, want 1e-3", got)
	}
	wantE := 1e9*1e-12 + LeakageWPerMM2*1*1e-3
	if got := s.EnergyJ(); math.Abs(got-wantE) > 1e-12 {
		t.Errorf("EnergyJ = %g, want %g", got, wantE)
	}
	if got := s.EDP(); math.Abs(got-wantE*1e-3) > 1e-15 {
		t.Errorf("EDP = %g", got)
	}
}

func TestZeroClock(t *testing.T) {
	s := Summary{Cycles: 100, DynamicPJ: 5}
	if s.Seconds() != 0 {
		t.Error("zero clock should yield zero time")
	}
}

func TestImprovement(t *testing.T) {
	base := Summary{Cycles: 8_000_000, ClockMHz: 2000, DynamicPJ: 8e9, AreaMM2: 8.44}
	opt := Summary{Cycles: 1_000_000, ClockMHz: 2000, DynamicPJ: 1e9, AreaMM2: 8.44}
	imp := Improvement(base, opt)
	if imp <= 1 {
		t.Errorf("faster+cheaper run must improve EDP, got %.2f", imp)
	}
	if Improvement(base, Summary{}) != 0 {
		t.Error("zero-EDP opt should report 0")
	}
}

// Property: halving both time and energy improves EDP by ~4x (quadratic in
// delay, linear in energy => here both shrink).
func TestImprovementScaling(t *testing.T) {
	f := func(cyc uint32, pj uint32) bool {
		c := int64(cyc%1_000_000) + 1000
		e := float64(pj%1_000_000) + 1000
		base := Summary{Cycles: 2 * c, ClockMHz: 1000, DynamicPJ: 2 * e}
		opt := Summary{Cycles: c, ClockMHz: 1000, DynamicPJ: e}
		imp := Improvement(base, opt)
		return imp > 3.9 && imp < 4.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
