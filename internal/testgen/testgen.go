// Package testgen generates random, well-typed mini-C kernels and checks
// that the optimization pipeline preserves their behavior. It is the
// standing differential-testing harness for the whole cc→ir pipeline: a
// generated kernel is compiled at several opt levels, each module is run
// through the interpreter on identical inputs, and the resulting memory
// images must match bit for bit.
//
// Kernels are safe by construction rather than by checking:
//
//   - every array index is masked with `& 63` against the fixed array
//     length N, so loads and stores cannot go out of bounds;
//   - every integer divisor is forced odd with `| 1`, so sdiv/srem can
//     never trap on zero;
//   - shift amounts are masked with `& 15`;
//   - loops iterate over compile-time constant bounds, so every kernel
//     terminates.
//
// Because safety is structural, any interpreter error or output mismatch is
// a real compiler bug, not a property of the input.
package testgen

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
)

// N is the element count of each kernel array argument. Indices are masked
// with N-1, so it must stay a power of two.
const N = 64

// Levels are the opt configs every generated kernel is checked across.
func Levels() []ir.OptConfig {
	return []ir.OptConfig{
		{Level: "O0"},
		{Level: "O1"},
		{Level: "O2"},
		{Level: "O2", Unroll: 2},
	}
}

// Source returns a deterministic random kernel for seed with the fixed
// signature `void kernel(long* A, long* B, double* F, long n)`.
func Source(seed int64) string {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	return g.kernel()
}

type gen struct {
	rng    *rand.Rand
	sb     strings.Builder
	indent int
	ints   []string // int (long) locals readable in scope
	muts   []string // subset of ints that may be assigned (no loop vars)
	floats []string // double locals in scope
	nvar   int
	budget int // statements remaining
	depth  int // loop/if nesting depth
	fuel   int // expression nodes remaining for the current statement
}

func (g *gen) kernel() string {
	g.sb.WriteString("void kernel(long* A, long* B, double* F, long n) {\n")
	g.indent = 1
	g.budget = 12 + g.rng.Intn(14)
	// Seed a few locals so expressions have material from the start.
	for i := 0; i < 2; i++ {
		g.declInt()
		g.declFloat()
	}
	for g.budget > 0 {
		g.stmt()
	}
	// Make every top-level local observable: without these stores, DCE could
	// legally delete a miscompiled computation before it ever disagrees.
	for i, v := range g.ints {
		g.linef("A[%d] = %s;", (40+i)&(N-1), v)
	}
	for i, v := range g.floats {
		g.linef("F[%d] = %s;", (40+i)&(N-1), v)
	}
	g.sb.WriteString("}\n")
	return g.sb.String()
}

func (g *gen) linef(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("  ", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) declInt() string {
	name := fmt.Sprintf("x%d", g.nvar)
	g.nvar++
	g.linef("long %s = %s;", name, g.intExpr(2))
	g.ints = append(g.ints, name)
	g.muts = append(g.muts, name)
	return name
}

func (g *gen) declFloat() string {
	name := fmt.Sprintf("f%d", g.nvar)
	g.nvar++
	g.linef("double %s = %s;", name, g.floatExpr(2))
	g.floats = append(g.floats, name)
	return name
}

func (g *gen) stmt() {
	g.budget--
	g.fuel = 40
	switch r := g.rng.Intn(12); {
	case r < 2 && g.depth < 2:
		g.forLoop()
	case r < 4 && g.depth < 2:
		g.ifStmt()
	case r == 4:
		g.declInt()
	case r == 5:
		g.declFloat()
	case r < 8:
		// Compound assignment to an existing local. Loop induction
		// variables are never assignment targets — termination depends on
		// the loop header alone controlling them.
		if g.rng.Intn(2) == 0 {
			v := g.muts[g.rng.Intn(len(g.muts))]
			ops := []string{"=", "+=", "-=", "*=", "^=", "&="}
			g.linef("%s %s %s;", v, ops[g.rng.Intn(len(ops))], g.intExpr(2))
		} else {
			v := g.floats[g.rng.Intn(len(g.floats))]
			ops := []string{"=", "+=", "-=", "*="}
			g.linef("%s %s %s;", v, ops[g.rng.Intn(len(ops))], g.floatExpr(2))
		}
	default:
		// Array store — the main observable effect.
		switch g.rng.Intn(3) {
		case 0:
			g.linef("A[%s] = %s;", g.indexExpr(), g.intExpr(2))
		case 1:
			g.linef("B[%s] = %s;", g.indexExpr(), g.intExpr(2))
		default:
			g.linef("F[%s] = %s;", g.indexExpr(), g.floatExpr(2))
		}
	}
}

func (g *gen) forLoop() {
	iv := fmt.Sprintf("i%d", g.nvar)
	g.nvar++
	bound := 1 + g.rng.Intn(N)
	g.linef("for (long %s = 0; %s < %d; %s++) {", iv, iv, bound, iv)
	g.indent++
	g.depth++
	// The loop variable and anything declared in the body leave scope when
	// the loop closes; restore the visible-variable state afterwards.
	savedI, savedM, savedF := len(g.ints), len(g.muts), len(g.floats)
	g.ints = append(g.ints, iv)
	body := 1 + g.rng.Intn(3)
	for i := 0; i < body && g.budget > -4; i++ {
		g.stmt()
	}
	g.ints, g.muts, g.floats = g.ints[:savedI], g.muts[:savedM], g.floats[:savedF]
	g.depth--
	g.indent--
	g.linef("}")
}

func (g *gen) ifStmt() {
	g.linef("if (%s) {", g.condExpr())
	g.indent++
	g.depth++
	savedI, savedM, savedF := len(g.ints), len(g.muts), len(g.floats)
	body := 1 + g.rng.Intn(2)
	for i := 0; i < body && g.budget > -4; i++ {
		g.stmt()
	}
	g.ints, g.muts, g.floats = g.ints[:savedI], g.muts[:savedM], g.floats[:savedF]
	if g.rng.Intn(2) == 0 {
		g.indent--
		g.linef("} else {")
		g.indent++
		for i := 0; i < 1+g.rng.Intn(2) && g.budget > -4; i++ {
			g.stmt()
		}
		g.ints, g.muts, g.floats = g.ints[:savedI], g.muts[:savedM], g.floats[:savedF]
	}
	g.depth--
	g.indent--
	g.linef("}")
}

// indexExpr yields an always-in-bounds array index.
func (g *gen) indexExpr() string {
	return fmt.Sprintf("(%s) & %d", g.intExpr(1), N-1)
}

// simpleInt is the recursion-free leaf: a constant or an in-scope local.
func (g *gen) simpleInt() string {
	if len(g.ints) == 0 || g.rng.Intn(3) == 0 {
		return fmt.Sprint(g.rng.Int63n(2048) - 1024)
	}
	return g.ints[g.rng.Intn(len(g.ints))]
}

func (g *gen) intLeaf() string {
	g.fuel--
	if g.fuel <= 0 {
		return g.simpleInt()
	}
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprint(g.rng.Int63n(2048) - 1024)
	case 1:
		// Small power-of-two-ish constants feed the strength-reduction pass.
		return fmt.Sprint([]int{0, 1, 2, 4, 8, 16, 64}[g.rng.Intn(7)])
	case 2:
		return fmt.Sprintf("A[%s]", g.indexExpr())
	case 3:
		return fmt.Sprintf("B[%s]", g.indexExpr())
	default:
		return g.simpleInt()
	}
}

func (g *gen) intExpr(d int) string {
	if d <= 0 {
		return g.intLeaf()
	}
	switch g.rng.Intn(12) {
	case 0, 1:
		ops := []string{"+", "-", "*"}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1), ops[g.rng.Intn(3)], g.intExpr(d-1))
	case 2:
		// Divisor forced odd: never zero.
		return fmt.Sprintf("(%s / (%s | 1))", g.intExpr(d-1), g.intExpr(d-1))
	case 3:
		return fmt.Sprintf("(%s %% (%s | 1))", g.intExpr(d-1), g.intExpr(d-1))
	case 4:
		ops := []string{"&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(d-1), ops[g.rng.Intn(3)], g.intExpr(d-1))
	case 5:
		ops := []string{"<<", ">>"}
		return fmt.Sprintf("(%s %s (%s & 15))", g.intExpr(d-1), ops[g.rng.Intn(2)], g.intExpr(d-1))
	case 6:
		// Wrap the operand so a leading negative literal cannot fuse into
		// `--` and lex as a decrement.
		ops := []string{"-", "~"}
		return fmt.Sprintf("(%s(%s))", ops[g.rng.Intn(2)], g.intExpr(d-1))
	case 7:
		return fmt.Sprintf("(%s ? %s : %s)", g.condExpr(), g.intExpr(d-1), g.intExpr(d-1))
	case 8:
		return fmt.Sprintf("(long)(%s)", g.floatExpr(d-1))
	default:
		return g.intLeaf()
	}
}

// simpleFloat is the recursion-free leaf: a literal or an in-scope local.
func (g *gen) simpleFloat() string {
	if len(g.floats) == 0 || g.rng.Intn(3) == 0 {
		return fmt.Sprintf("%.4f", g.rng.Float64()*64.0-32.0)
	}
	return g.floats[g.rng.Intn(len(g.floats))]
}

func (g *gen) floatLeaf() string {
	g.fuel--
	if g.fuel <= 0 {
		return g.simpleFloat()
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%.4f", g.rng.Float64()*64.0-32.0)
	case 1:
		return fmt.Sprintf("F[%s]", g.indexExpr())
	case 2:
		return fmt.Sprintf("(double)(%s)", g.intLeaf())
	default:
		return g.simpleFloat()
	}
}

func (g *gen) floatExpr(d int) string {
	if d <= 0 {
		return g.floatLeaf()
	}
	switch g.rng.Intn(8) {
	case 0, 1:
		ops := []string{"+", "-", "*", "/"}
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(d-1), ops[g.rng.Intn(4)], g.floatExpr(d-1))
	case 2:
		return fmt.Sprintf("fabs(%s)", g.floatExpr(d-1))
	case 3:
		return fmt.Sprintf("sqrt(fabs(%s))", g.floatExpr(d-1))
	case 4:
		return fmt.Sprintf("fmin(%s, %s)", g.floatExpr(d-1), g.floatExpr(d-1))
	case 5:
		return fmt.Sprintf("(double)(%s)", g.intExpr(d-1))
	default:
		return g.floatLeaf()
	}
}

func (g *gen) condExpr() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	op := ops[g.rng.Intn(len(ops))]
	if g.rng.Intn(4) == 0 {
		return fmt.Sprintf("(%s %s %s)", g.floatExpr(1), op, g.floatExpr(1))
	}
	return fmt.Sprintf("(%s %s %s)", g.intExpr(1), op, g.intExpr(1))
}

// Snapshot compiles src at opt, runs its `kernel` function in the
// interpreter on a fixed deterministic input image, and returns the raw
// bit patterns of the A, B, and F arrays afterwards. Two opt configs are
// behaviorally equivalent for src exactly when their snapshots match.
func Snapshot(src string, opt ir.OptConfig) ([]uint64, error) {
	mod, err := cc.CompileWithOpt(src, "testgen", opt)
	if err != nil {
		return nil, err
	}
	f := mod.Func("kernel")
	if f == nil {
		return nil, errors.New("testgen: generated module has no kernel function")
	}
	mem := interp.NewMemory(1 << 20)
	defer mem.Release()

	a := make([]int64, N)
	b := make([]int64, N)
	fl := make([]float64, N)
	for i := range a {
		a[i] = int64(i*i - 3*i + 7)
		b[i] = int64((i * 2654435761) % 1000003)
		if i%5 == 0 {
			a[i] = -a[i]
		}
		fl[i] = float64(i)*1.5 - 40.0
	}
	pa := mem.AllocI64(a)
	pb := mem.AllocI64(b)
	pf := mem.AllocF64(fl)
	args := []uint64{interp.ArgPtr(pa), interp.ArgPtr(pb), interp.ArgPtr(pf), interp.ArgI64(N)}
	if _, err := interp.Run(f, mem, args, interp.Options{MaxSteps: 1 << 26}); err != nil {
		return nil, fmt.Errorf("testgen: interp at %s: %w", opt, err)
	}

	out := make([]uint64, 0, 3*N)
	for i := 0; i < N; i++ {
		out = append(out, mem.LoadScalar(pa+uint64(8*i), ir.I64))
	}
	for i := 0; i < N; i++ {
		out = append(out, mem.LoadScalar(pb+uint64(8*i), ir.I64))
	}
	for i := 0; i < N; i++ {
		out = append(out, mem.LoadScalar(pf+uint64(8*i), ir.F64))
	}
	return out, nil
}
