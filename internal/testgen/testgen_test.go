package testgen

import (
	"fmt"
	"testing"

	"mosaicsim/internal/ir"
)

// TestGeneratedKernelEquivalence is the tentpole differential test: 200
// random kernels, each compiled at every standard opt level, must produce
// bit-identical memory images in the interpreter.
func TestGeneratedKernelEquivalence(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		seed := int64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			checkSeed(t, seed)
		})
	}
}

func checkSeed(t *testing.T, seed int64) {
	t.Helper()
	src := Source(seed)
	base, err := Snapshot(src, ir.OptConfig{Level: "O0"})
	if err != nil {
		t.Fatalf("seed %d: O0 failed: %v\nsource:\n%s", seed, err, src)
	}
	for _, opt := range Levels()[1:] {
		got, err := Snapshot(src, opt)
		if err != nil {
			t.Fatalf("seed %d: %s failed: %v\nsource:\n%s", seed, opt, err, src)
		}
		for i := range base {
			if got[i] != base[i] {
				region, idx := "A", i
				if i >= 2*N {
					region, idx = "F", i-2*N
				} else if i >= N {
					region, idx = "B", i-N
				}
				t.Fatalf("seed %d: %s diverges from O0 at %s[%d]: %#x != %#x\nsource:\n%s",
					seed, opt, region, idx, got[i], base[i], src)
			}
		}
	}
}

// TestSourceDeterministic pins the generator contract: same seed, same
// kernel — required for fuzz-corpus reproducibility.
func TestSourceDeterministic(t *testing.T) {
	if Source(7) != Source(7) {
		t.Fatal("Source is not deterministic for a fixed seed")
	}
	if Source(7) == Source(8) {
		t.Fatal("Source ignores its seed")
	}
}

// TestSnapshotRejectsBadSource checks that compile failures surface as
// errors, not panics — the contract the fuzz target relies on.
func TestSnapshotRejectsBadSource(t *testing.T) {
	if _, err := Snapshot("void kernel(long* A) { A[0] = ; }", ir.OptConfig{}); err == nil {
		t.Fatal("expected a compile error for malformed source")
	}
}

// FuzzPassPipeline drives the full pipeline from a fuzzed seed: generate a
// kernel, run it at every opt level, and require interp-equivalence. The
// fuzzer explores the seed space rather than raw source text so every
// input is a well-typed, in-bounds, terminating kernel; any failure is a
// compiler bug by construction.
func FuzzPassPipeline(f *testing.F) {
	for s := int64(0); s < 16; s++ {
		f.Add(s)
	}
	f.Add(int64(-1))
	f.Add(int64(1) << 40)
	f.Fuzz(func(t *testing.T, seed int64) {
		checkSeed(t, seed)
	})
}
