// Package cc is MosaicSim-Go's kernel front-end: a small C-like language that
// compiles to the simulator's IR. It stands in for the paper's Clang/LLVM
// front-end (§II): kernels are written as source, compiled to SSA IR, and
// from there the static DDG and dynamic traces are produced.
//
// The language covers what the paper's kernels need: scalar types (bool,
// char, int, long, float, double), pointers, arrays via indexing, structured
// control flow (if/else, for, while, break, continue), short-circuit logic,
// and the simulator intrinsics (tile_id, num_tiles, send/recv, atomic_add,
// math builtins, and the acc_* accelerator API).
package cc

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct   // operators and delimiters
	tokKeyword // reserved words
)

var keywords = map[string]bool{
	"void": true, "bool": true, "char": true, "int": true, "long": true,
	"float": true, "double": true, "if": true, "else": true, "for": true,
	"while": true, "break": true, "continue": true, "return": true,
	"true": true, "false": true, "global": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string { return fmt.Sprintf("%q@%d", t.text, t.line) }

// punctuation, longest first so the scanner is greedy.
var puncts = []string{
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
}

type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("cc: line %d: %s", e.line, e.msg) }

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, &lexError{line, "unterminated block comment"}
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, line})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			isFloat := false
			for j < n {
				ch := src[j]
				if unicode.IsDigit(rune(ch)) {
					j++
				} else if ch == '.' {
					isFloat = true
					j++
				} else if ch == 'e' || ch == 'E' {
					isFloat = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
				} else if ch == 'x' || ch == 'X' {
					j++
				} else if (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F') {
					// hex digits (only meaningful after 0x; harmless otherwise)
					j++
				} else {
					break
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[i:j], line})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tokPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
