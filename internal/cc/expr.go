package cc

import (
	"fmt"
	"strings"

	"mosaicsim/internal/ir"
)

// genExpr generates code for an expression, returning its SSA value and
// front-end type.
func (c *compiler) genExpr(e Expr) (ir.Value, CType, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.Value >= -(1<<31) && x.Value < 1<<31 {
			return ir.ConstInt(ir.I32, x.Value), scalar(ir.I32), nil
		}
		return ir.ConstInt(ir.I64, x.Value), scalar(ir.I64), nil
	case *FloatLit:
		return ir.ConstFloat(ir.F64, x.Value), scalar(ir.F64), nil
	case *BoolLit:
		return ir.ConstBool(x.Value), scalar(ir.I1), nil
	case *Ident:
		if v := c.lookup(x.Name); v != nil {
			return v.cur, v.ty, nil
		}
		if g, ok := c.globals[x.Name]; ok {
			return g, pointer(g.Elem), nil
		}
		return nil, CType{}, errf(x.Line, "undeclared identifier %q", x.Name)
	case *IndexExpr, *DerefExpr:
		addr, elemTy, err := c.genAddr(e)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Load(elemTy.irType(), addr), elemTy, nil
	case *CastExpr:
		v, ty, err := c.genExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		cv, err := c.convert(x.Line, v, ty, x.To)
		if err != nil {
			return nil, CType{}, err
		}
		return cv, x.To, nil
	case *UnaryExpr:
		return c.genUnary(x)
	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return c.genShortCircuit(x)
		}
		lv, lt, err := c.genExpr(x.L)
		if err != nil {
			return nil, CType{}, err
		}
		rv, rt, err := c.genExpr(x.R)
		if err != nil {
			return nil, CType{}, err
		}
		return c.genBinOp(x.Line, x.Op, lv, lt, rv, rt)
	case *CondExpr:
		cond, err := c.genCond(x.Cond)
		if err != nil {
			return nil, CType{}, err
		}
		tv, tt, err := c.genExpr(x.Then)
		if err != nil {
			return nil, CType{}, err
		}
		ev, et, err := c.genExpr(x.Else)
		if err != nil {
			return nil, CType{}, err
		}
		common, err := c.promote(x.Line, tt, et)
		if err != nil {
			return nil, CType{}, err
		}
		tv, err = c.convert(x.Line, tv, tt, common)
		if err != nil {
			return nil, CType{}, err
		}
		ev, err = c.convert(x.Line, ev, et, common)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Select(cond, tv, ev), common, nil
	case *CallExpr:
		return c.genCall(x)
	default:
		return nil, CType{}, errf(0, "unhandled expression %T", e)
	}
}

func (c *compiler) genUnary(x *UnaryExpr) (ir.Value, CType, error) {
	v, ty, err := c.genExpr(x.X)
	if err != nil {
		return nil, CType{}, err
	}
	switch x.Op {
	case "-":
		if ty.Ptr {
			return nil, CType{}, errf(x.Line, "cannot negate a pointer")
		}
		if ty.Kind.IsFloat() {
			return c.b.FSub(ir.ConstFloat(ty.Kind, 0), v), ty, nil
		}
		return c.b.Sub(ir.ConstInt(ty.Kind, 0), v), ty, nil
	case "!":
		b, err := c.toBool(x.Line, v, ty)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Bin(ir.OpXor, b, ir.ConstBool(true)), scalar(ir.I1), nil
	case "~":
		if !ty.Kind.IsInt() || ty.Ptr {
			return nil, CType{}, errf(x.Line, "~ requires an integer")
		}
		return c.b.Bin(ir.OpXor, v, ir.ConstInt(ty.Kind, -1)), ty, nil
	default:
		return nil, CType{}, errf(x.Line, "unknown unary operator %q", x.Op)
	}
}

// genShortCircuit lowers && and || with proper control flow; the result is an
// i1 phi. Operand expressions cannot assign variables, so no variable-state
// merging is needed.
func (c *compiler) genShortCircuit(x *BinaryExpr) (ir.Value, CType, error) {
	lhs, err := c.genCond(x.L)
	if err != nil {
		return nil, CType{}, err
	}
	lhsEnd := c.b.Cur
	rhsB := c.newBlock("sc.rhs")
	joinB := c.newBlock("sc.join")
	if x.Op == "&&" {
		c.b.CondBr(lhs, rhsB, joinB)
	} else {
		c.b.CondBr(lhs, joinB, rhsB)
	}
	c.b.SetBlock(rhsB)
	rhs, err := c.genCond(x.R)
	if err != nil {
		return nil, CType{}, err
	}
	rhsEnd := c.b.Cur
	c.b.Br(joinB)
	c.b.SetBlock(joinB)
	phi := c.b.Phi(ir.I1)
	ir.AddIncoming(phi, ir.ConstBool(x.Op == "||"), lhsEnd)
	ir.AddIncoming(phi, rhs, rhsEnd)
	return phi, scalar(ir.I1), nil
}

// promote computes the common type of a binary operation per C-like rules:
// double > float > long > int (char and bool promote to int).
func (c *compiler) promote(line int, a, b CType) (CType, error) {
	if a.Ptr || b.Ptr {
		return CType{}, errf(line, "invalid pointer operands to arithmetic promotion")
	}
	switch {
	case a.Kind == ir.F64 || b.Kind == ir.F64:
		return scalar(ir.F64), nil
	case a.Kind == ir.F32 || b.Kind == ir.F32:
		return scalar(ir.F32), nil
	case a.Kind == ir.I64 || b.Kind == ir.I64:
		return scalar(ir.I64), nil
	default:
		return scalar(ir.I32), nil
	}
}

var cmpPreds = map[string]ir.CmpPred{
	"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredLT,
	"<=": ir.PredLE, ">": ir.PredGT, ">=": ir.PredGE,
}

var intOps = map[string]ir.Opcode{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

var floatOps = map[string]ir.Opcode{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}

func (c *compiler) genBinOp(line int, op string, lv ir.Value, lt CType, rv ir.Value, rt CType) (ir.Value, CType, error) {
	// Pointer arithmetic: ptr +/- int scales by the pointee size.
	if lt.Ptr || rt.Ptr {
		if pred, isCmp := cmpPreds[op]; isCmp {
			// Pointer comparisons; an integer operand (e.g. 0) compares as a
			// raw address.
			if !lt.Ptr {
				cv, err := c.convert(line, lv, lt, scalar(ir.I64))
				if err != nil {
					return nil, CType{}, err
				}
				lv = cv
			}
			if !rt.Ptr {
				cv, err := c.convert(line, rv, rt, scalar(ir.I64))
				if err != nil {
					return nil, CType{}, err
				}
				rv = cv
			}
			return c.b.ICmp(pred, lv, rv), scalar(ir.I1), nil
		}
		if (op == "+" || op == "-") && lt.Ptr != rt.Ptr {
			ptr, ptrTy, idx, idxTy := lv, lt, rv, rt
			if rt.Ptr {
				if op == "-" {
					return nil, CType{}, errf(line, "cannot subtract a pointer from an integer")
				}
				ptr, ptrTy, idx, idxTy = rv, rt, lv, lt
			}
			idx64, err := c.convert(line, idx, idxTy, scalar(ir.I64))
			if err != nil {
				return nil, CType{}, err
			}
			if op == "-" {
				idx64 = c.b.Sub(ir.ConstInt(ir.I64, 0), idx64)
			}
			return c.b.GEP(ptr, idx64, ptrTy.Kind.Size()), ptrTy, nil
		}
		return nil, CType{}, errf(line, "invalid pointer operation %q", op)
	}

	common, err := c.promote(line, lt, rt)
	if err != nil {
		return nil, CType{}, err
	}
	if lv, err = c.convert(line, lv, lt, common); err != nil {
		return nil, CType{}, err
	}
	if rv, err = c.convert(line, rv, rt, common); err != nil {
		return nil, CType{}, err
	}
	if pred, isCmp := cmpPreds[op]; isCmp {
		if common.Kind.IsFloat() {
			return c.b.FCmp(pred, lv, rv), scalar(ir.I1), nil
		}
		return c.b.ICmp(pred, lv, rv), scalar(ir.I1), nil
	}
	if common.Kind.IsFloat() {
		opc, ok := floatOps[op]
		if !ok {
			return nil, CType{}, errf(line, "operator %q is not defined for floats", op)
		}
		return c.b.Bin(opc, lv, rv), common, nil
	}
	opc, ok := intOps[op]
	if !ok {
		return nil, CType{}, errf(line, "unknown operator %q", op)
	}
	return c.b.Bin(opc, lv, rv), common, nil
}

// genCond evaluates an expression as an i1 condition (non-bool numerics
// compare against zero).
func (c *compiler) genCond(e Expr) (ir.Value, error) {
	v, ty, err := c.genExpr(e)
	if err != nil {
		return nil, err
	}
	return c.toBool(exprLine(e), v, ty)
}

func (c *compiler) toBool(line int, v ir.Value, ty CType) (ir.Value, error) {
	switch {
	case !ty.Ptr && ty.Kind == ir.I1:
		return v, nil
	case ty.Ptr:
		return c.b.ICmp(ir.PredNE, v, &ir.Const{Ty: ir.Ptr, Bits: 0}), nil
	case ty.Kind.IsFloat():
		return c.b.FCmp(ir.PredNE, v, ir.ConstFloat(ty.Kind, 0)), nil
	case ty.Kind.IsInt():
		return c.b.ICmp(ir.PredNE, v, ir.ConstInt(ty.Kind, 0)), nil
	default:
		return nil, errf(line, "expression of type %s is not a condition", ty)
	}
}

// convert emits a conversion from one front-end type to another.
func (c *compiler) convert(line int, v ir.Value, from, to CType) (ir.Value, error) {
	if from == to {
		return v, nil
	}
	if from.Ptr || to.Ptr {
		if from.Ptr && to.Ptr {
			// Pointer casts are free reinterpretation (e.g. char* -> int*).
			return v, nil
		}
		return nil, errf(line, "cannot convert %s to %s", from, to)
	}
	f, t := from.Kind, to.Kind
	switch {
	case f == t:
		return v, nil
	case f.IsInt() && t.IsInt():
		// Constant-fold trivial literal conversions for readable IR.
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstInt(t, cst.Int()), nil
		}
		if t.Size() < f.Size() {
			return c.b.CastTo(ir.CastTrunc, t, v), nil
		}
		if f == ir.I1 {
			return c.b.CastTo(ir.CastZExt, t, v), nil
		}
		return c.b.CastTo(ir.CastSExt, t, v), nil
	case f.IsInt() && t.IsFloat():
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstFloat(t, float64(cst.Int())), nil
		}
		return c.b.CastTo(ir.CastSIToFP, t, v), nil
	case f.IsFloat() && t.IsInt():
		return c.b.CastTo(ir.CastFPToSI, t, v), nil
	case f == ir.F32 && t == ir.F64:
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstFloat(t, cst.Float()), nil
		}
		return c.b.CastTo(ir.CastFPExt, t, v), nil
	case f == ir.F64 && t == ir.F32:
		if cst, ok := v.(*ir.Const); ok {
			return ir.ConstFloat(t, cst.Float()), nil
		}
		return c.b.CastTo(ir.CastFPTrunc, t, v), nil
	default:
		return nil, errf(line, "cannot convert %s to %s", from, to)
	}
}

// inlineCall expands a user-defined function at its call site (the front end
// always inlines, as LLVM -O3 does for small kernel helpers). Parameters are
// passed by value as fresh locals; returns assign a hidden result variable
// and converge on a continuation block.
func (c *compiler) inlineCall(x *CallExpr, fd *FuncDecl, argVals []ir.Value, argTys []CType) (ir.Value, CType, error) {
	for _, active := range c.inlines {
		if active.name == fd.Name {
			return nil, CType{}, errf(x.Line, "recursive call to %q cannot be inlined", fd.Name)
		}
	}
	if len(c.inlines) >= 16 {
		return nil, CType{}, errf(x.Line, "inline depth limit exceeded at call to %q", fd.Name)
	}
	if len(x.Args) != len(fd.Params) {
		return nil, CType{}, errf(x.Line, "%s expects %d arguments, got %d", fd.Name, len(fd.Params), len(x.Args))
	}

	// The hidden result variable lives in the caller's current scope so the
	// continuation merge sees it.
	var retVar *variable
	if fd.Ret.Kind != ir.Void {
		c.retNames++
		v, err := c.declare(x.Line, fmt.Sprintf("$ret%d", c.retNames), fd.Ret, zeroValue(fd.Ret))
		if err != nil {
			return nil, CType{}, err
		}
		retVar = v
	}
	cont := c.newBlock("inl.cont")
	ic := &inlineCtx{name: fd.Name, retTy: fd.Ret, retVar: retVar, cont: cont}

	// Parameters become fresh locals in a new scope; the callee must not see
	// the caller's loops (break/continue cannot cross the call).
	c.pushScope()
	for i, pd := range fd.Params {
		cv, err := c.convert(x.Line, argVals[i], argTys[i], pd.Type)
		if err != nil {
			return nil, CType{}, err
		}
		if _, err := c.declare(x.Line, pd.Name, pd.Type, cv); err != nil {
			return nil, CType{}, err
		}
	}
	savedLoops := c.loops
	c.loops = nil
	c.inlines = append(c.inlines, ic)

	err := c.genBlock(fd.Body)

	c.inlines = c.inlines[:len(c.inlines)-1]
	c.loops = savedLoops
	if err != nil {
		c.popScope()
		return nil, CType{}, err
	}
	if !c.terminated {
		if fd.Ret.Kind != ir.Void {
			c.popScope()
			return nil, CType{}, errf(x.Line, "function %q may fall off the end without returning a value", fd.Name)
		}
		ic.edges = append(ic.edges, edge{from: c.b.Cur, env: c.snapshot()})
		c.b.Br(cont)
	}
	c.popScope()

	c.mergeInto(cont, ic.edges)
	if len(ic.edges) == 0 {
		// Every path diverged (e.g. infinite loop): the continuation is
		// unreachable but must stay well formed.
		c.b.Ret(zeroRet(c.fd.Ret))
		c.terminated = true
		return zeroValue(scalar(ir.I64)), scalar(ir.I64), nil
	}
	if retVar != nil {
		return retVar.cur, fd.Ret, nil
	}
	return ir.ConstInt(ir.I64, 0), scalar(ir.Void), nil
}

func zeroRet(t CType) ir.Value {
	if t.Kind == ir.Void {
		return nil
	}
	return zeroValue(t)
}

func exprLine(e Expr) int {
	switch x := e.(type) {
	case *Ident:
		return x.Line
	case *IntLit:
		return x.Line
	case *FloatLit:
		return x.Line
	case *BoolLit:
		return x.Line
	case *BinaryExpr:
		return x.Line
	case *UnaryExpr:
		return x.Line
	case *CallExpr:
		return x.Line
	case *IndexExpr:
		return x.Line
	case *DerefExpr:
		return x.Line
	case *CastExpr:
		return x.Line
	case *CondExpr:
		return x.Line
	}
	return 0
}

// Intrinsic signatures. A nil parameter type means "any scalar, passed
// unchanged"; math builtins convert arguments to double.
func (c *compiler) genCall(x *CallExpr) (ir.Value, CType, error) {
	argVals := make([]ir.Value, len(x.Args))
	argTys := make([]CType, len(x.Args))
	for i, a := range x.Args {
		v, ty, err := c.genExpr(a)
		if err != nil {
			return nil, CType{}, err
		}
		argVals[i] = v
		argTys[i] = ty
	}
	need := func(n int) error {
		if len(x.Args) != n {
			return errf(x.Line, "%s expects %d arguments, got %d", x.Name, n, len(x.Args))
		}
		return nil
	}
	toF64 := func(i int) (ir.Value, error) {
		return c.convert(x.Line, argVals[i], argTys[i], scalar(ir.F64))
	}

	switch x.Name {
	case "barrier":
		if err := need(0); err != nil {
			return nil, CType{}, err
		}
		return c.b.Call("barrier", ir.Void), scalar(ir.Void), nil
	case "tile_id", "num_tiles":
		if err := need(0); err != nil {
			return nil, CType{}, err
		}
		return c.b.Call(x.Name, ir.I64), scalar(ir.I64), nil
	case "send":
		if err := need(2); err != nil {
			return nil, CType{}, err
		}
		dst, err := c.convert(x.Line, argVals[0], argTys[0], scalar(ir.I64))
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Call("send", ir.Void, dst, argVals[1]), scalar(ir.Void), nil
	case "recv_long", "recv_int", "recv_double", "recv_float":
		if err := need(1); err != nil {
			return nil, CType{}, err
		}
		src, err := c.convert(x.Line, argVals[0], argTys[0], scalar(ir.I64))
		if err != nil {
			return nil, CType{}, err
		}
		retTy := map[string]ir.Type{
			"recv_long": ir.I64, "recv_int": ir.I32,
			"recv_double": ir.F64, "recv_float": ir.F32,
		}[x.Name]
		return c.b.Call("recv", retTy, src), scalar(retTy), nil
	case "atomic_add":
		if err := need(2); err != nil {
			return nil, CType{}, err
		}
		if !argTys[0].Ptr {
			return nil, CType{}, errf(x.Line, "atomic_add needs a pointer first argument")
		}
		elem := scalar(argTys[0].Kind)
		delta, err := c.convert(x.Line, argVals[1], argTys[1], elem)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.AtomicAdd(argVals[0], delta), elem, nil
	case "sqrt", "exp", "log", "sin", "cos", "fabs", "floor":
		if err := need(1); err != nil {
			return nil, CType{}, err
		}
		a, err := toF64(0)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Call(x.Name, ir.F64, a), scalar(ir.F64), nil
	case "pow", "fmin", "fmax":
		if err := need(2); err != nil {
			return nil, CType{}, err
		}
		a, err := toF64(0)
		if err != nil {
			return nil, CType{}, err
		}
		b, err := toF64(1)
		if err != nil {
			return nil, CType{}, err
		}
		return c.b.Call(x.Name, ir.F64, a, b), scalar(ir.F64), nil
	default:
		if fd, ok := c.allFuncs[x.Name]; ok {
			if fd == c.fd {
				return nil, CType{}, errf(x.Line, "recursive call to %q cannot be inlined", x.Name)
			}
			return c.inlineCall(x, fd, argVals, argTys)
		}
		if strings.HasPrefix(x.Name, "acc_") {
			// Accelerator API (§II-B): pointers pass through, numerics are
			// widened to long; the DTG records them as invocation parameters.
			args := make([]ir.Value, len(x.Args))
			for i := range x.Args {
				if argTys[i].Ptr {
					args[i] = argVals[i]
					continue
				}
				v, err := c.convert(x.Line, argVals[i], argTys[i], scalar(ir.I64))
				if err != nil {
					return nil, CType{}, err
				}
				args[i] = v
			}
			return c.b.Call(x.Name, ir.Void, args...), scalar(ir.Void), nil
		}
		return nil, CType{}, errf(x.Line, "unknown function %q", x.Name)
	}
}
