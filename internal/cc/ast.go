package cc

import (
	"fmt"

	"mosaicsim/internal/ir"
)

// CType is a front-end type: a scalar IR type, optionally a pointer to one.
type CType struct {
	Kind ir.Type
	Ptr  bool
}

func (t CType) String() string {
	if t.Ptr {
		return t.Kind.String() + "*"
	}
	return t.Kind.String()
}

// IsNumeric reports whether values of the type participate in arithmetic.
func (t CType) IsNumeric() bool {
	return !t.Ptr && (t.Kind.IsInt() || t.Kind.IsFloat())
}

func scalar(k ir.Type) CType  { return CType{Kind: k} }
func pointer(k ir.Type) CType { return CType{Kind: k, Ptr: true} }

// File is a parsed source file.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a module-level array: `global double lut[256];`.
type GlobalDecl struct {
	Name  string
	Elem  ir.Type
	Count int64
	Line  int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    CType
	Params []ParamDecl
	Body   *BlockStmt
	Line   int
}

// ParamDecl is one formal parameter.
type ParamDecl struct {
	Name string
	Type CType
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	Name string
	Type CType
	Init Expr // nil means zero value
	Line int
}

// AssignStmt assigns to an identifier or an indexed location. Op is "=" or a
// compound operator ("+=", "<<=", ...).
type AssignStmt struct {
	Target Expr // *Ident or *IndexExpr or *DerefExpr
	Op     string
	Value  Expr
	Line   int
}

// IncDecStmt is `x++;` / `x--;` (statement-level only).
type IncDecStmt struct {
	Target Expr
	Inc    bool
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Line int
}

// ForStmt is a C-style for loop. Init/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt, AssignStmt or IncDecStmt
	Cond Expr // nil means true
	Post Stmt
	Body *BlockStmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// ReturnStmt returns from the kernel. Value may be nil.
type ReturnStmt struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates an expression for side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Ident references a variable, parameter, or global.
type Ident struct {
	Name string
	Line int
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Line  int
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value float64
	Line  int
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Line  int
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnaryExpr is -x, !x, ~x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr invokes an intrinsic or accelerator.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// IndexExpr is base[idx]; base must be a pointer.
type IndexExpr struct {
	Base Expr
	Idx  Expr
	Line int
}

// DerefExpr is *p, equivalent to p[0].
type DerefExpr struct {
	X    Expr
	Line int
}

// CastExpr is a C-style cast `(double)x`.
type CastExpr struct {
	To   CType
	X    Expr
	Line int
}

// CondExpr is the ternary `c ? a : b`. Both arms are evaluated (they must be
// side-effect free); selection uses the IR select instruction.
type CondExpr struct {
	Cond, Then, Else Expr
	Line             int
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*DerefExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}
func (*CondExpr) exprNode()   {}

// Error is a front-end compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
