package cc

import (
	"strconv"

	"mosaicsim/internal/ir"
)

// ParseFile parses mini-C source into an AST.
func ParseFile(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &fileParser{toks: toks}
	return p.parseFile()
}

type fileParser struct {
	toks []token
	pos  int
}

func (p *fileParser) cur() token  { return p.toks[p.pos] }
func (p *fileParser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *fileParser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *fileParser) accept(text string) bool {
	if p.cur().text == text && p.cur().kind != tokEOF {
		p.advance()
		return true
	}
	return false
}

func (p *fileParser) expect(text string) (token, error) {
	if p.cur().text != text {
		return token{}, errf(p.cur().line, "expected %q, found %q", text, p.cur().text)
	}
	return p.advance(), nil
}

var typeNames = map[string]ir.Type{
	"bool": ir.I1, "char": ir.I8, "int": ir.I32, "long": ir.I64,
	"float": ir.F32, "double": ir.F64, "void": ir.Void,
}

// peekType reports whether the current token begins a type.
func (p *fileParser) peekType() bool {
	_, ok := typeNames[p.cur().text]
	return ok && p.cur().kind == tokKeyword
}

func (p *fileParser) parseType() (CType, error) {
	t := p.cur()
	k, ok := typeNames[t.text]
	if !ok {
		return CType{}, errf(t.line, "expected a type, found %q", t.text)
	}
	p.advance()
	ct := CType{Kind: k}
	if p.accept("*") {
		if k == ir.Void {
			return CType{}, errf(t.line, "void* is not supported")
		}
		ct.Ptr = true
	}
	return ct, nil
}

func (p *fileParser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().kind != tokEOF {
		if p.cur().text == "global" {
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
			continue
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	return f, nil
}

// global double lut[256];
func (p *fileParser) parseGlobal() (*GlobalDecl, error) {
	line := p.advance().line // consume 'global'
	ct, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if ct.Ptr || ct.Kind == ir.Void {
		return nil, errf(line, "global must be an array of scalars")
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errf(name.line, "expected global name, found %q", name.text)
	}
	p.advance()
	if _, err := p.expect("["); err != nil {
		return nil, err
	}
	sz := p.cur()
	if sz.kind != tokInt {
		return nil, errf(sz.line, "global size must be an integer literal")
	}
	p.advance()
	count, err := strconv.ParseInt(sz.text, 0, 64)
	if err != nil || count <= 0 {
		return nil, errf(sz.line, "bad global size %q", sz.text)
	}
	if _, err := p.expect("]"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &GlobalDecl{Name: name.text, Elem: ct.Kind, Count: count, Line: line}, nil
}

func (p *fileParser) parseFunc() (*FuncDecl, error) {
	line := p.cur().line
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errf(name.line, "expected function name, found %q", name.text)
	}
	p.advance()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Ret: ret, Line: line}
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn := p.cur()
		if pn.kind != tokIdent {
			return nil, errf(pn.line, "expected parameter name, found %q", pn.text)
		}
		p.advance()
		fn.Params = append(fn.Params, ParamDecl{Name: pn.text, Type: pt})
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *fileParser) parseBlock() (*BlockStmt, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: open.line}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(open.line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *fileParser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.text == "{":
		return p.parseBlock()
	case t.text == "if":
		return p.parseIf()
	case t.text == "for":
		return p.parseFor()
	case t.text == "while":
		return p.parseWhile()
	case t.text == "break":
		p.advance()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case t.text == "continue":
		p.advance()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case t.text == "return":
		p.advance()
		var v Expr
		if p.cur().text != ";" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v = e
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Line: t.line}, nil
	case p.peekType():
		return p.parseDecl()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *fileParser) parseDecl() (Stmt, error) {
	line := p.cur().line
	ct, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if ct.Kind == ir.Void && !ct.Ptr {
		return nil, errf(line, "cannot declare a void variable")
	}
	name := p.cur()
	if name.kind != tokIdent {
		return nil, errf(name.line, "expected variable name, found %q", name.text)
	}
	p.advance()
	var init Expr
	if p.accept("=") {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &DeclStmt{Name: name.text, Type: ct, Init: init, Line: line}, nil
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon), as used both standalone and in for
// clauses.
func (p *fileParser) parseSimpleStmt() (Stmt, error) {
	line := p.cur().line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch op := p.cur().text; op {
	case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lhs, Op: op, Value: rhs, Line: line}, nil
	case "++", "--":
		p.advance()
		return &IncDecStmt{Target: lhs, Inc: op == "++", Line: line}, nil
	default:
		return &ExprStmt{X: lhs, Line: line}, nil
	}
}

func (p *fileParser) parseIf() (Stmt, error) {
	line := p.advance().line
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.accept("else") {
		if p.cur().text == "if" {
			e, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = e
		} else {
			e, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = e
		}
	}
	return st, nil
}

func (p *fileParser) parseFor() (Stmt, error) {
	line := p.advance().line
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: line}
	if !p.accept(";") {
		if p.peekType() {
			// declaration initializer (consumes its own ';')
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if p.cur().text != ")" {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = s
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *fileParser) parseWhile() (Stmt, error) {
	line := p.advance().line
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *fileParser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *fileParser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	line := p.cur().line
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: line}, nil
}

func (p *fileParser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().text
		prec, ok := binPrec[op]
		if !ok || prec < minPrec || p.cur().kind != tokPunct {
			return lhs, nil
		}
		line := p.advance().line
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs, Line: line}
	}
}

func (p *fileParser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.text {
	case "-", "!", "~":
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
	case "*":
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &DerefExpr{X: x, Line: t.line}, nil
	case "(":
		// Either a cast or a parenthesized expression.
		if _, isType := typeNames[p.peek().text]; isType && p.peek().kind == tokKeyword {
			p.advance() // '('
			ct, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{To: ct, X: x, Line: t.line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *fileParser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().text {
		case "[":
			line := p.advance().line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Base: x, Idx: idx, Line: line}
		default:
			return x, nil
		}
	}
}

func (p *fileParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.text == "(":
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, errf(t.line, "bad integer literal %q", t.text)
		}
		return &IntLit{Value: v, Line: t.line}, nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.line, "bad float literal %q", t.text)
		}
		return &FloatLit{Value: v, Line: t.line}, nil
	case t.text == "true" || t.text == "false":
		p.advance()
		return &BoolLit{Value: t.text == "true", Line: t.line}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.cur().text == "(" {
			p.advance()
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	default:
		return nil, errf(t.line, "unexpected token %q", t.text)
	}
}
