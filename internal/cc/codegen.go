package cc

import (
	"errors"
	"fmt"

	"mosaicsim/internal/ir"
)

// VerifyError reports a compiled module that fails IR verification — always
// a compiler or pass bug, never a property of the source program. Pass names
// the optimization pass whose output failed, or is empty when the front end's
// own build failed verification.
type VerifyError struct {
	Module string // module name
	Pass   string // pass that produced the invalid IR, "" for the front end
	Err    error  // the underlying *ir.VerifyError / *ir.PassError
}

func (e *VerifyError) Error() string {
	if e.Pass != "" {
		return fmt.Sprintf("cc: internal error, module %s fails verification after pass %q: %v", e.Module, e.Pass, e.Err)
	}
	return fmt.Sprintf("cc: internal error, generated IR for module %s fails verification: %v", e.Module, e.Err)
}

func (e *VerifyError) Unwrap() error { return e.Err }

// Compile parses and compiles mini-C source into a verified IR module at O0.
// Every function in the file becomes an IR function; scalars are fully
// promoted to SSA registers (the front end emits no loads/stores for locals,
// mirroring LLVM -O3 kernels, so the memory trace contains only real array
// traffic).
func Compile(src, moduleName string) (*ir.Module, error) {
	return CompileWithOpt(src, moduleName, ir.OptConfig{})
}

// CompileWithOpt is Compile followed by the optimization pipeline opt
// selects: the front end builds and verifies the module, then ir.Pipeline
// runs the resolved pass list with re-verification after every pass. The
// zero OptConfig (O0) runs no passes and is bit-identical to Compile.
func CompileWithOpt(src, moduleName string, opt ir.OptConfig) (*ir.Module, error) {
	file, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return CompileASTWithOpt(file, moduleName, opt)
}

// CompileAST compiles an already-built AST at O0; other front ends (e.g. the
// Python/Numba-style one) produce the same AST and share this code
// generator, exactly as LLVM front ends share the middle end.
func CompileAST(file *File, moduleName string) (*ir.Module, error) {
	return CompileASTWithOpt(file, moduleName, ir.OptConfig{})
}

// CompileASTWithOpt compiles an AST and runs the optimization pipeline.
func CompileASTWithOpt(file *File, moduleName string, opt ir.OptConfig) (*ir.Module, error) {
	mod, err := compileASTO0(file, moduleName)
	if err != nil {
		return nil, err
	}
	pipe, err := ir.NewPipeline(opt)
	if err != nil {
		return nil, fmt.Errorf("cc: %w", err)
	}
	if err := pipe.Run(mod); err != nil {
		ve := &VerifyError{Module: moduleName, Err: err}
		var pe *ir.PassError
		if errors.As(err, &pe) {
			ve.Pass = pe.Pass
		}
		return nil, ve
	}
	return mod, nil
}

// compileASTO0 lowers the AST to verified, unoptimized IR.
func compileASTO0(file *File, moduleName string) (*ir.Module, error) {
	mod := ir.NewModule(moduleName)
	globals := map[string]*ir.Global{}
	for _, g := range file.Globals {
		if globals[g.Name] != nil {
			return nil, errf(g.Line, "duplicate global %q", g.Name)
		}
		globals[g.Name] = mod.AddGlobal(g.Name, g.Elem, g.Count)
	}
	allFuncs := map[string]*FuncDecl{}
	for _, fd := range file.Funcs {
		if allFuncs[fd.Name] != nil {
			return nil, errf(fd.Line, "duplicate function %q", fd.Name)
		}
		allFuncs[fd.Name] = fd
	}
	for _, fd := range file.Funcs {
		c := &compiler{mod: mod, globals: globals, fd: fd, allFuncs: allFuncs}
		if err := c.compileFunc(); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyModule(mod); err != nil {
		return nil, &VerifyError{Module: moduleName, Err: err}
	}
	return mod, nil
}

// MustCompile is Compile that panics on error; for tests and embedded kernels.
func MustCompile(src, moduleName string) *ir.Module {
	m, err := Compile(src, moduleName)
	if err != nil {
		panic(err)
	}
	return m
}

// variable is one declared local (or parameter): its front-end type and the
// SSA value currently reaching the point of compilation.
type variable struct {
	name string
	ty   CType
	cur  ir.Value
}

// scope is an ordered name table; order keeps generated phis deterministic.
type scope struct {
	names []string
	vars  map[string]*variable
}

func newScope() *scope { return &scope{vars: map[string]*variable{}} }

// inlineCtx is one active function inlining: returns in the body assign the
// result variable and branch to the continuation.
type inlineCtx struct {
	name   string
	retTy  CType
	retVar *variable // nil for void
	cont   *ir.Block
	edges  []edge
}

type loopCtx struct {
	latchB     *ir.Block // continue target (runs the post statement)
	exitB      *ir.Block // break target
	exitEdges  []edge    // break sites
	latchEdges []edge    // continue sites and natural body fallthrough
}

// edge is a control-flow edge into a join point with the variable state that
// flows along it.
type edge struct {
	from *ir.Block
	env  map[*variable]ir.Value
}

type compiler struct {
	mod      *ir.Module
	globals  map[string]*ir.Global
	fd       *FuncDecl
	allFuncs map[string]*FuncDecl
	b        *ir.Builder
	scopes   []*scope
	loops    []*loopCtx
	// inlines tracks active user-function inlining (calls are always
	// inlined, as an optimizing compiler would for kernel helpers).
	inlines  []*inlineCtx
	retNames int
	// terminated is true when the current block already ended (return,
	// break, continue); remaining statements in the enclosing block are dead
	// code and skipped.
	terminated bool
	nblk       int
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, newScope()) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *compiler) lookup(name string) *variable {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i].vars[name]; ok {
			return v
		}
	}
	return nil
}

func (c *compiler) declare(line int, name string, ty CType, val ir.Value) (*variable, error) {
	s := c.scopes[len(c.scopes)-1]
	if _, dup := s.vars[name]; dup {
		return nil, errf(line, "redeclaration of %q", name)
	}
	v := &variable{name: name, ty: ty, cur: val}
	s.vars[name] = v
	s.names = append(s.names, name)
	return v, nil
}

// snapshot records the reaching value of every in-scope variable.
func (c *compiler) snapshot() map[*variable]ir.Value {
	m := map[*variable]ir.Value{}
	for _, s := range c.scopes {
		for _, n := range s.names {
			v := s.vars[n]
			m[v] = v.cur
		}
	}
	return m
}

// restore resets every variable in snap to its recorded value.
func (c *compiler) restore(snap map[*variable]ir.Value) {
	for v, val := range snap {
		v.cur = val
	}
}

// liveVars lists the in-scope variables in deterministic declaration order.
func (c *compiler) liveVars() []*variable {
	var out []*variable
	for _, s := range c.scopes {
		for _, n := range s.names {
			out = append(out, s.vars[n])
		}
	}
	return out
}

func (c *compiler) newBlock(hint string) *ir.Block {
	c.nblk++
	name := fmt.Sprintf("%s%d", hint, c.nblk)
	// Create without making current.
	blk := &ir.Block{Ident: name, Parent: c.b.Fn}
	c.b.Fn.Blocks = append(c.b.Fn.Blocks, blk)
	return blk
}

// mergeInto makes target the current block and merges the variable states of
// the incoming edges, inserting phis where values differ. Every edge's
// terminator must already branch to target. Variables are merged only if
// present in every edge's snapshot.
func (c *compiler) mergeInto(target *ir.Block, edges []edge) {
	c.b.SetBlock(target)
	c.terminated = false
	if len(edges) == 0 {
		// Unreachable join; leave variable state as-is and emit an
		// unreachable terminator later via normal flow.
		return
	}
	for _, v := range c.liveVars() {
		first, ok := edges[0].env[v]
		if !ok {
			continue
		}
		same := true
		for _, e := range edges[1:] {
			val, ok := e.env[v]
			if !ok {
				same = false
				break
			}
			if val != first {
				same = false
				break
			}
		}
		if same {
			v.cur = first
			continue
		}
		phi := c.b.Phi(v.ty.irType())
		for _, e := range edges {
			val, ok := e.env[v]
			if !ok {
				val = first
			}
			ir.AddIncoming(phi, val, e.from)
		}
		v.cur = phi
	}
}

func (t CType) irType() ir.Type {
	if t.Ptr {
		return ir.Ptr
	}
	return t.Kind
}

func (c *compiler) compileFunc() error {
	fd := c.fd
	var params []*ir.Param
	for _, pd := range fd.Params {
		params = append(params, ir.NewParam(pd.Name, pd.Type.irType()))
	}
	c.b = ir.NewBuilder(c.mod)
	c.b.NewFunc(fd.Name, params...)
	c.pushScope()
	for i, pd := range fd.Params {
		if _, err := c.declare(fd.Line, pd.Name, pd.Type, params[i]); err != nil {
			return err
		}
	}
	if err := c.genBlock(fd.Body); err != nil {
		return err
	}
	if !c.terminated {
		if fd.Ret.Kind != ir.Void {
			return errf(fd.Line, "function %q may fall off the end without returning a value", fd.Name)
		}
		c.b.Ret(nil)
	}
	c.popScope()
	return nil
}

func (c *compiler) genBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if c.terminated {
			// Dead code after return/break/continue is skipped, as a
			// compiler would eliminate it.
			break
		}
		if err := c.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.genBlock(st)
	case *DeclStmt:
		return c.genDecl(st)
	case *AssignStmt:
		return c.genAssign(st)
	case *IncDecStmt:
		op := "+="
		if !st.Inc {
			op = "-="
		}
		return c.genAssign(&AssignStmt{Target: st.Target, Op: op, Value: &IntLit{Value: 1, Line: st.Line}, Line: st.Line})
	case *IfStmt:
		return c.genIf(st)
	case *ForStmt:
		return c.genFor(st)
	case *WhileStmt:
		// while (c) body  ==  for (; c; ) body
		return c.genFor(&ForStmt{Cond: st.Cond, Body: st.Body, Line: st.Line})
	case *BreakStmt:
		if len(c.loops) == 0 {
			return errf(st.Line, "break outside a loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.exitEdges = append(lc.exitEdges, edge{from: c.b.Cur, env: c.snapshot()})
		c.b.Br(lc.exitB)
		c.terminated = true
		return nil
	case *ContinueStmt:
		if len(c.loops) == 0 {
			return errf(st.Line, "continue outside a loop")
		}
		lc := c.loops[len(c.loops)-1]
		lc.latchEdges = append(lc.latchEdges, edge{from: c.b.Cur, env: c.snapshot()})
		c.b.Br(lc.latchB)
		c.terminated = true
		return nil
	case *ReturnStmt:
		if len(c.inlines) > 0 {
			// Return from an inlined function: assign the result and branch
			// to the continuation.
			ic := c.inlines[len(c.inlines)-1]
			if st.Value == nil {
				if ic.retTy.Kind != ir.Void {
					return errf(st.Line, "return without a value in non-void function %q", ic.name)
				}
			} else {
				if ic.retTy.Kind == ir.Void {
					return errf(st.Line, "return with a value in void function %q", ic.name)
				}
				v, ty, err := c.genExpr(st.Value)
				if err != nil {
					return err
				}
				cv, err := c.convert(st.Line, v, ty, ic.retTy)
				if err != nil {
					return err
				}
				ic.retVar.cur = cv
			}
			ic.edges = append(ic.edges, edge{from: c.b.Cur, env: c.snapshot()})
			c.b.Br(ic.cont)
			c.terminated = true
			return nil
		}
		if st.Value == nil {
			if c.fd.Ret.Kind != ir.Void {
				return errf(st.Line, "return without a value in non-void function")
			}
			c.b.Ret(nil)
		} else {
			if c.fd.Ret.Kind == ir.Void {
				return errf(st.Line, "return with a value in void function")
			}
			v, ty, err := c.genExpr(st.Value)
			if err != nil {
				return err
			}
			cv, err := c.convert(st.Line, v, ty, c.fd.Ret)
			if err != nil {
				return err
			}
			c.b.Ret(cv)
		}
		c.terminated = true
		return nil
	case *ExprStmt:
		_, _, err := c.genExpr(st.X)
		return err
	default:
		return errf(0, "unhandled statement %T", s)
	}
}

func (c *compiler) genDecl(st *DeclStmt) error {
	declTy := st.Type
	var val ir.Value
	if st.Init != nil {
		v, ty, err := c.genExpr(st.Init)
		if err != nil {
			return err
		}
		if declTy.Kind == ir.Void && !declTy.Ptr {
			// Inferred declaration (Python-style front ends): take the
			// initializer's type, widening small ints to long.
			declTy = ty
			if !declTy.Ptr && declTy.Kind == ir.I32 {
				declTy = scalar(ir.I64)
			}
		}
		cv, err := c.convert(st.Line, v, ty, declTy)
		if err != nil {
			return err
		}
		val = cv
	} else {
		if declTy.Kind == ir.Void && !declTy.Ptr {
			return errf(st.Line, "cannot infer the type of %q without an initializer", st.Name)
		}
		val = zeroValue(declTy)
	}
	_, err := c.declare(st.Line, st.Name, declTy, val)
	return err
}

func zeroValue(t CType) ir.Value {
	if t.Ptr {
		return &ir.Const{Ty: ir.Ptr, Bits: 0}
	}
	if t.Kind.IsFloat() {
		return ir.ConstFloat(t.Kind, 0)
	}
	return ir.ConstInt(t.Kind, 0)
}

func (c *compiler) genAssign(st *AssignStmt) error {
	binOp := ""
	if st.Op != "=" {
		binOp = st.Op[:len(st.Op)-1] // "+=" -> "+"
	}
	switch target := st.Target.(type) {
	case *Ident:
		v := c.lookup(target.Name)
		if v == nil {
			return errf(st.Line, "assignment to undeclared variable %q", target.Name)
		}
		rhs := st.Value
		if binOp != "" {
			rhs = &BinaryExpr{Op: binOp, L: target, R: st.Value, Line: st.Line}
		}
		val, ty, err := c.genExpr(rhs)
		if err != nil {
			return err
		}
		cv, err := c.convert(st.Line, val, ty, v.ty)
		if err != nil {
			return err
		}
		v.cur = cv
		return nil
	case *IndexExpr, *DerefExpr:
		addr, elemTy, err := c.genAddr(st.Target)
		if err != nil {
			return err
		}
		var val ir.Value
		var ty CType
		if binOp == "" {
			val, ty, err = c.genExpr(st.Value)
		} else {
			old := c.b.Load(elemTy.irType(), addr)
			rv, rty, e2 := c.genExpr(st.Value)
			if e2 != nil {
				return e2
			}
			val, ty, err = c.genBinOp(st.Line, binOp, old, elemTy, rv, rty)
		}
		if err != nil {
			return err
		}
		cv, err := c.convert(st.Line, val, ty, elemTy)
		if err != nil {
			return err
		}
		c.b.Store(cv, addr)
		return nil
	default:
		return errf(st.Line, "invalid assignment target")
	}
}

// genAddr computes the address and element type of an lvalue.
func (c *compiler) genAddr(e Expr) (ir.Value, CType, error) {
	switch x := e.(type) {
	case *IndexExpr:
		base, bty, err := c.genExpr(x.Base)
		if err != nil {
			return nil, CType{}, err
		}
		if !bty.Ptr {
			return nil, CType{}, errf(x.Line, "indexing a non-pointer (%s)", bty)
		}
		idx, ity, err := c.genExpr(x.Idx)
		if err != nil {
			return nil, CType{}, err
		}
		idx64, err := c.convert(x.Line, idx, ity, scalar(ir.I64))
		if err != nil {
			return nil, CType{}, err
		}
		addr := c.b.GEP(base, idx64, bty.Kind.Size())
		return addr, scalar(bty.Kind), nil
	case *DerefExpr:
		p, pty, err := c.genExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		if !pty.Ptr {
			return nil, CType{}, errf(x.Line, "dereferencing a non-pointer (%s)", pty)
		}
		return p, scalar(pty.Kind), nil
	default:
		return nil, CType{}, errf(0, "expression is not addressable")
	}
}

func (c *compiler) genIf(st *IfStmt) error {
	cond, err := c.genCond(st.Cond)
	if err != nil {
		return err
	}
	thenB := c.newBlock("if.then")
	var elseB *ir.Block
	joinB := c.newBlock("if.join")
	if st.Else != nil {
		elseB = c.newBlock("if.else")
		c.b.CondBr(cond, thenB, elseB)
	} else {
		c.b.CondBr(cond, thenB, joinB)
	}
	base := c.snapshot()
	var edges []edge
	if st.Else == nil {
		edges = append(edges, edge{from: c.b.Cur, env: c.snapshot()})
	}

	c.b.SetBlock(thenB)
	c.terminated = false
	if err := c.genBlock(st.Then); err != nil {
		return err
	}
	if !c.terminated {
		edges = append(edges, edge{from: c.b.Cur, env: c.snapshot()})
		c.b.Br(joinB)
	}
	c.restore(base)

	if st.Else != nil {
		c.b.SetBlock(elseB)
		c.terminated = false
		if err := c.genStmt(st.Else); err != nil {
			return err
		}
		if !c.terminated {
			edges = append(edges, edge{from: c.b.Cur, env: c.snapshot()})
			c.b.Br(joinB)
		}
		c.restore(base)
	}

	c.mergeInto(joinB, edges)
	if len(edges) == 0 {
		// Both arms terminated: the join is unreachable but must still be a
		// well-formed block.
		c.b.Ret(nil)
		if c.fd.Ret.Kind != ir.Void {
			// Keep verifier-clean even for non-void kernels.
			joinB.Instrs = joinB.Instrs[:0]
			c.b.SetBlock(joinB)
			c.b.Ret(zeroValue(c.fd.Ret))
		}
		c.terminated = true
	}
	return nil
}

// genFor lowers a C for loop:
//
//	preheader: init; br header
//	header:    phis for loop-carried vars; cond; condbr body, exit
//	body:      ...; falls through / continue -> latch
//	latch:     post; br header      (the only back edge)
//	exit:      merge of cond-false and break edges
func (c *compiler) genFor(st *ForStmt) error {
	c.pushScope() // scope for init declarations, spans the whole loop
	defer c.popScope()
	if st.Init != nil {
		if err := c.genStmt(st.Init); err != nil {
			return err
		}
	}

	assigned := c.assignedIn(st)
	headerB := c.newBlock("loop.head")
	preBlock := c.b.Cur
	c.b.Br(headerB)
	c.b.SetBlock(headerB)

	// Loop-carried variables get header phis; the back-edge value is wired
	// after the latch is generated.
	phis := make(map[*variable]*ir.Instr)
	var phiOrder []*variable
	for _, v := range c.liveVars() {
		if !assigned[v] {
			continue
		}
		phi := c.b.Phi(v.ty.irType())
		ir.AddIncoming(phi, v.cur, preBlock)
		v.cur = phi
		phis[v] = phi
		phiOrder = append(phiOrder, v)
	}

	var cond ir.Value
	var err error
	if st.Cond != nil {
		cond, err = c.genCond(st.Cond)
		if err != nil {
			return err
		}
	} else {
		cond = ir.ConstBool(true)
	}
	bodyB := c.newBlock("loop.body")
	latchB := c.newBlock("loop.latch")
	exitB := c.newBlock("loop.exit")
	condEnd := c.b.Cur // short-circuit conditions may have split blocks
	c.b.CondBr(cond, bodyB, exitB)
	headerEnv := c.snapshot()

	lc := &loopCtx{latchB: latchB, exitB: exitB}
	lc.exitEdges = append(lc.exitEdges, edge{from: condEnd, env: headerEnv})
	c.loops = append(c.loops, lc)

	c.b.SetBlock(bodyB)
	c.terminated = false
	if err := c.genBlock(st.Body); err != nil {
		return err
	}
	if !c.terminated {
		lc.latchEdges = append(lc.latchEdges, edge{from: c.b.Cur, env: c.snapshot()})
		c.b.Br(latchB)
	}
	c.loops = c.loops[:len(c.loops)-1]

	// Latch: merge continue edges, run the post statement, take the back edge.
	if len(lc.latchEdges) == 0 {
		// Body always breaks or returns; the latch is unreachable but the
		// header phis still need a well-typed back-edge value.
		c.restore(headerEnv)
		c.b.SetBlock(latchB)
		c.terminated = false
	} else {
		c.mergeInto(latchB, lc.latchEdges)
	}
	if st.Post != nil {
		if err := c.genStmt(st.Post); err != nil {
			return err
		}
	}
	latchEnd := c.b.Cur
	c.b.Br(headerB)
	for _, v := range phiOrder {
		ir.AddIncoming(phis[v], v.cur, latchEnd)
	}

	c.mergeInto(exitB, lc.exitEdges)
	return nil
}

// assignedIn returns the set of currently-visible variables assigned anywhere
// in the loop (cond, post, or body), respecting shadowing by inner
// declarations.
func (c *compiler) assignedIn(st *ForStmt) map[*variable]bool {
	out := map[*variable]bool{}
	shadow := map[string]int{}
	var walkStmt func(Stmt)
	noteAssign := func(name string) {
		if shadow[name] > 0 {
			return
		}
		if v := c.lookup(name); v != nil {
			out[v] = true
		}
	}
	var walkTarget func(Expr)
	walkTarget = func(e Expr) {
		if id, ok := e.(*Ident); ok {
			noteAssign(id.Name)
		}
	}
	walkStmt = func(s Stmt) {
		switch x := s.(type) {
		case nil:
		case *BlockStmt:
			declared := []string{}
			for _, inner := range x.Stmts {
				if d, ok := inner.(*DeclStmt); ok {
					shadow[d.Name]++
					declared = append(declared, d.Name)
				}
				walkStmt(inner)
			}
			for _, n := range declared {
				shadow[n]--
			}
		case *DeclStmt:
			// declaration itself creates a new variable; not an assignment
		case *AssignStmt:
			walkTarget(x.Target)
		case *IncDecStmt:
			walkTarget(x.Target)
		case *IfStmt:
			walkStmt(x.Then)
			walkStmt(x.Else)
		case *ForStmt:
			if d, ok := x.Init.(*DeclStmt); ok {
				shadow[d.Name]++
				walkStmt(x.Cond0())
				walkStmt(x.Post)
				walkStmt(x.Body)
				shadow[d.Name]--
			} else {
				walkStmt(x.Init)
				walkStmt(x.Post)
				walkStmt(x.Body)
			}
		case *WhileStmt:
			walkStmt(x.Body)
		}
	}
	walkStmt(st.Body)
	walkStmt(st.Post)
	return out
}

// Cond0 adapts the condition for assignedIn's statement walk (conditions are
// expressions and cannot assign, so it is always nil).
func (st *ForStmt) Cond0() Stmt { return nil }
