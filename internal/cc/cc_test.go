package cc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
)

// compileAndRun compiles src, runs `kernel` with the given args, and returns
// the memory image for inspection.
func compileAndRun(t *testing.T, src string, mem *interp.Memory, args []uint64, opts interp.Options) *interp.Result {
	t.Helper()
	mod, err := Compile(src, "test")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := mod.Func("kernel")
	if f == nil {
		t.Fatal("no kernel function")
	}
	res, err := interp.Run(f, mem, args, opts)
	if err != nil {
		t.Fatalf("Run: %v\nIR:\n%s", err, f.String())
	}
	return res
}

func TestVecAdd(t *testing.T) {
	src := `
void kernel(double* A, double* B, double* C, long n) {
  for (long i = 0; i < n; i++) {
    C[i] = A[i] + B[i];
  }
}
`
	mem := interp.NewMemory(1 << 20)
	const n = 32
	a, b := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = 100 - float64(i)
	}
	pa, pb := mem.AllocF64(a), mem.AllocF64(b)
	pc := mem.Alloc(n*8, 64)
	compileAndRun(t, src, mem, []uint64{pa, pb, pc, n}, interp.Options{})
	for i := 0; i < n; i++ {
		if got := mem.ReadF64(pc + uint64(i)*8); got != 100 {
			t.Errorf("C[%d] = %g, want 100", i, got)
		}
	}
}

func TestNoLocalMemoryTraffic(t *testing.T) {
	// Scalar locals must live in SSA registers: the memory trace contains
	// only the array traffic, as with LLVM -O3 kernels.
	src := `
void kernel(double* A, long n) {
  double acc = 0.0;
  long count = 0;
  for (long i = 0; i < n; i++) {
    acc = acc + A[i];
    count++;
  }
  A[0] = acc + (double)count;
}
`
	mem := interp.NewMemory(1 << 20)
	const n = 8
	pa := mem.AllocF64(make([]float64, n))
	res := compileAndRun(t, src, mem, []uint64{pa, n}, interp.Options{})
	// n loads + 1 store, nothing else.
	if got := len(res.Trace.Tiles[0].Mem); got != n+1 {
		t.Errorf("memory events = %d, want %d (locals must not hit memory)", got, n+1)
	}
	if got := mem.ReadF64(pa); got != float64(n) {
		t.Errorf("A[0] = %g, want %d", got, n)
	}
}

func TestIfElsePhi(t *testing.T) {
	src := `
void kernel(long* out, long x) {
  long r = 0;
  if (x > 10) {
    r = 1;
  } else if (x > 5) {
    r = 2;
  } else {
    r = 3;
  }
  out[0] = r;
}
`
	for _, tc := range []struct{ x, want int64 }{{20, 1}, {7, 2}, {1, 3}} {
		mem := interp.NewMemory(1 << 20)
		out := mem.Alloc(8, 8)
		compileAndRun(t, src, mem, []uint64{out, uint64(tc.x)}, interp.Options{})
		if got := mem.ReadI64(out); got != tc.want {
			t.Errorf("x=%d: got %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
void kernel(long* out, long n) {
  long sum = 0;
  for (long i = 0; i < n; i++) {
    if (i % 2 == 0) {
      continue;
    }
    if (i > 20) {
      break;
    }
    sum += i;
  }
  out[0] = sum;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 100}, interp.Options{})
	want := int64(1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19)
	if got := mem.ReadI64(out); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
void kernel(long* out, long n) {
  long v = n;
  long steps = 0;
  while (v != 1) {
    if (v % 2 == 0) {
      v = v / 2;
    } else {
      v = 3 * v + 1;
    }
    steps++;
  }
  out[0] = steps;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 27}, interp.Options{})
	if got := mem.ReadI64(out); got != 111 {
		t.Errorf("collatz(27) steps = %d, want 111", got)
	}
}

func TestShortCircuitAndTernary(t *testing.T) {
	src := `
void kernel(long* out, long a, long b) {
  bool both = a > 0 && b > 0;
  bool either = a > 0 || b > 0;
  out[0] = both ? 1 : 0;
  out[1] = either ? 1 : 0;
  out[2] = (a > b) ? a : b;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(24, 8)
	negThree := int64(-3)
	compileAndRun(t, src, mem, []uint64{out, 5, uint64(negThree)}, interp.Options{})
	if got := mem.ReadI64(out); got != 0 {
		t.Errorf("both = %d, want 0", got)
	}
	if got := mem.ReadI64(out + 8); got != 1 {
		t.Errorf("either = %d, want 1", got)
	}
	if got := mem.ReadI64(out + 16); got != 5 {
		t.Errorf("max = %d, want 5", got)
	}
}

func TestNestedLoopsMatrixMultiply(t *testing.T) {
	src := `
void kernel(float* A, float* B, float* C, long n) {
  for (long i = 0; i < n; i++) {
    for (long j = 0; j < n; j++) {
      float acc = 0.0;
      for (long k = 0; k < n; k++) {
        acc += A[i*n+k] * B[k*n+j];
      }
      C[i*n+j] = acc;
    }
  }
}
`
	const n = 5
	rng := rand.New(rand.NewSource(7))
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	mem := interp.NewMemory(1 << 20)
	pa, pb := mem.AllocF32(a), mem.AllocF32(b)
	pc := mem.Alloc(n*n*4, 64)
	compileAndRun(t, src, mem, []uint64{pa, pb, pc, n}, interp.Options{})
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float32
			for k := 0; k < n; k++ {
				want += a[i*n+k] * b[k*n+j]
			}
			got := mem.ReadF32(pc + uint64(i*n+j)*4)
			if math.Abs(float64(got-want)) > 1e-5 {
				t.Errorf("C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestPointerArithmeticAndDeref(t *testing.T) {
	src := `
void kernel(long* A, long n) {
  long* p = A + 2;
  *p = 42;
  long* q = p + 1;
  *q = *p + 1;
  A[0] = q - 0 > 0 ? 1 : 0;
}
`
	mem := interp.NewMemory(1 << 20)
	pa := mem.AllocI64(make([]int64, 8))
	compileAndRun(t, src, mem, []uint64{pa, 8}, interp.Options{})
	if got := mem.ReadI64(pa + 16); got != 42 {
		t.Errorf("A[2] = %d, want 42", got)
	}
	if got := mem.ReadI64(pa + 24); got != 43 {
		t.Errorf("A[3] = %d, want 43", got)
	}
}

func TestGlobalsAndChar(t *testing.T) {
	src := `
global char table[256];

void kernel(long* out, long n) {
  for (long i = 0; i < n; i++) {
    table[i] = (char)(i * 3);
  }
  long sum = 0;
  for (long i = 0; i < n; i++) {
    sum += (long)table[i];
  }
  out[0] = sum;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 10}, interp.Options{})
	want := int64(0)
	for i := int64(0); i < 10; i++ {
		want += int64(int8(i * 3))
	}
	if got := mem.ReadI64(out); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestIntrinsicsSPMD(t *testing.T) {
	src := `
void kernel(double* hist, double* data, long n) {
  long tid = tile_id();
  long nt = num_tiles();
  for (long i = tid; i < n; i += nt) {
    double v = sqrt(data[i]);
    atomic_add(hist, v);
  }
}
`
	mem := interp.NewMemory(1 << 20)
	const n = 64
	data := make([]float64, n)
	want := 0.0
	for i := range data {
		data[i] = float64(i)
		want += math.Sqrt(float64(i))
	}
	hist := mem.AllocF64([]float64{0})
	pd := mem.AllocF64(data)
	compileAndRun(t, src, mem, []uint64{hist, pd, n}, interp.Options{NumTiles: 4})
	if got := mem.ReadF64(hist); math.Abs(got-want) > 1e-9 {
		t.Errorf("hist = %g, want %g", got, want)
	}
}

func TestSendRecvDAEPattern(t *testing.T) {
	// Access tile streams A[i] to the execute tile, which accumulates.
	src := `
void kernel(double* A, double* out, long n) {
  long tid = tile_id();
  if (tid == 0) {
    for (long i = 0; i < n; i++) {
      send(1, A[i]);
    }
  } else {
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
      acc += recv_double(0);
    }
    out[0] = acc;
  }
}
`
	mem := interp.NewMemory(1 << 20)
	const n = 100
	vals := make([]float64, n)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i) * 0.5
		want += vals[i]
	}
	pa := mem.AllocF64(vals)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{pa, out, n}, interp.Options{NumTiles: 2})
	if got := mem.ReadF64(out); got != want {
		t.Errorf("acc = %g, want %g", got, want)
	}
}

func TestAcceleratorCall(t *testing.T) {
	src := `
void kernel(float* A, float* B, float* C, long m, long n, long k) {
  acc_sgemm(A, B, C, m, n, k);
}
`
	mod, err := Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	var accCall *ir.Instr
	for _, in := range mod.Func("kernel").Instrs() {
		if in.Op == ir.OpCall && in.Callee == "acc_sgemm" {
			accCall = in
		}
	}
	if accCall == nil {
		t.Fatal("acc_sgemm call not emitted")
	}
	if len(accCall.Args) != 6 {
		t.Errorf("acc call has %d args, want 6", len(accCall.Args))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", "void kernel() { x = 1; }", "undeclared"},
		{"redeclared", "void kernel() { long x = 1; long x = 2; }", "redeclaration"},
		{"bad call", "void kernel() { frobnicate(); }", "unknown function"},
		{"break outside", "void kernel() { break; }", "break outside"},
		{"continue outside", "void kernel() { continue; }", "continue outside"},
		{"void var", "void kernel() { void x; }", "void"},
		{"non-pointer index", "void kernel(long a) { a[0] = 1; }", "non-pointer"},
		{"missing return", "long kernel() { long x = 1; }", "fall off"},
		{"return value in void", "void kernel() { return 1; }", "void function"},
		{"atomic non-pointer", "void kernel(long a) { atomic_add(a, 1); }", "pointer"},
		{"lex error", "void kernel() { $ }", "unexpected character"},
		{"unterminated comment", "void kernel() { /* }", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "t")
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTypePromotionSemantics(t *testing.T) {
	src := `
void kernel(double* out, int a, long b, float f) {
  out[0] = (double)(a + b);      // int + long -> long
  out[1] = a / 2;                // int division
  out[2] = (double)f * 2.0;      // float -> double
  out[3] = (double)(a % 3);
  out[4] = (double)(7 / 2);      // integer constant division
  out[5] = 7.0 / 2.0;            // float division
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(48, 8)
	compileAndRun(t, src, mem, []uint64{out, uint64(uint32(7)), uint64(1000), interp.ArgF32(1.5)}, interp.Options{})
	checks := []float64{1007, 3, 3, 1, 3, 3.5}
	for i, want := range checks {
		if got := mem.ReadF64(out + uint64(i)*8); got != want {
			t.Errorf("out[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestLoopSumProperty checks compiled loop arithmetic against Go for random
// inputs (property-based end-to-end front-end test).
func TestLoopSumProperty(t *testing.T) {
	src := `
void kernel(long* A, long* out, long n) {
  long even = 0;
  long odd = 0;
  for (long i = 0; i < n; i++) {
    if (A[i] % 2 == 0) {
      even += A[i];
    } else {
      odd += A[i];
    }
  }
  out[0] = even;
  out[1] = odd;
}
`
	mod, err := Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	prop := func(vals []int32) bool {
		mem := interp.NewMemory(1 << 22)
		data := make([]int64, len(vals))
		var even, odd int64
		for i, v := range vals {
			data[i] = int64(v)
			if int64(v)%2 == 0 {
				even += int64(v)
			} else {
				odd += int64(v)
			}
		}
		pa := mem.AllocI64(data)
		if len(data) == 0 {
			pa = mem.Alloc(8, 8)
		}
		out := mem.Alloc(16, 8)
		if _, err := interp.Run(f, mem, []uint64{pa, out, uint64(len(data))}, interp.Options{}); err != nil {
			return false
		}
		return mem.ReadI64(out) == even && mem.ReadI64(out+8) == odd
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeadCodeAfterReturnSkipped(t *testing.T) {
	src := `
void kernel(long* out) {
  out[0] = 1;
  return;
  out[0] = 2;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out}, interp.Options{})
	if got := mem.ReadI64(out); got != 1 {
		t.Errorf("out = %d, want 1", got)
	}
}

func TestLoopWithOnlyBreakTermination(t *testing.T) {
	src := `
void kernel(long* out, long n) {
  long i = 0;
  while (true) {
    if (i >= n) {
      break;
    }
    i++;
  }
  out[0] = i;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 17}, interp.Options{})
	if got := mem.ReadI64(out); got != 17 {
		t.Errorf("i = %d, want 17", got)
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	src := `
void kernel(long* out, long n) {
  long x = 1;
  for (long i = 0; i < n; i++) {
    long x = 100;   // shadows outer x; must not create a loop phi for outer
    x += i;
  }
  out[0] = x;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 5}, interp.Options{})
	if got := mem.ReadI64(out); got != 1 {
		t.Errorf("outer x = %d, want 1", got)
	}
}

func TestUserFunctionInlining(t *testing.T) {
	src := `
double hypot2(double x, double y) {
  return sqrt(x * x + y * y);
}

long clampi(long v, long lo, long hi) {
  if (v < lo) { return lo; }
  if (v > hi) { return hi; }
  return v;
}

void kernel(double* out, long n) {
  for (long i = 0; i < n; i++) {
    long j = clampi(i - 2, 0, n - 1);
    out[i] = hypot2((double)i, (double)j);
  }
}
`
	mem := interp.NewMemory(1 << 20)
	const n = 12
	out := mem.Alloc(n*8, 64)
	compileAndRun(t, src, mem, []uint64{out, n}, interp.Options{})
	for i := 0; i < n; i++ {
		j := i - 2
		if j < 0 {
			j = 0
		}
		if j > n-1 {
			j = n - 1
		}
		want := math.Hypot(float64(i), float64(j))
		if got := mem.ReadF64(out + uint64(i)*8); math.Abs(got-want) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestNestedInlining(t *testing.T) {
	src := `
long sq(long x) { return x * x; }
long quad(long x) { return sq(sq(x)); }

void kernel(long* out, long n) {
  out[0] = quad(n);
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 3}, interp.Options{})
	if got := mem.ReadI64(out); got != 81 {
		t.Errorf("quad(3) = %d, want 81", got)
	}
}

func TestVoidHelperWithSideEffects(t *testing.T) {
	src := `
void bump(long* p, long d) {
  if (d == 0) {
    return;
  }
  p[0] += d;
}

void kernel(long* out, long n) {
  for (long i = 0; i < n; i++) {
    bump(out, i % 3);
  }
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 9}, interp.Options{})
	want := int64(3 * (0 + 1 + 2))
	if got := mem.ReadI64(out); got != want {
		t.Errorf("out = %d, want %d", got, want)
	}
}

func TestInliningInLoopCondition(t *testing.T) {
	src := `
bool below(long i, long n) { return i < n; }

void kernel(long* out, long n) {
  long count = 0;
  for (long i = 0; below(i, n); i++) {
    count++;
  }
  out[0] = count;
}
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	compileAndRun(t, src, mem, []uint64{out, 23}, interp.Options{})
	if got := mem.ReadI64(out); got != 23 {
		t.Errorf("count = %d, want 23", got)
	}
}

func TestRecursionRejected(t *testing.T) {
	src := `
long fact(long n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
void kernel(long* out) { out[0] = fact(5); }
`
	_, err := Compile(src, "t")
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("want recursion error, got %v", err)
	}
}

func TestInlineArgCountChecked(t *testing.T) {
	src := `
long add2(long a, long b) { return a + b; }
void kernel(long* out) { out[0] = add2(1); }
`
	_, err := Compile(src, "t")
	if err == nil || !strings.Contains(err.Error(), "expects 2 arguments") {
		t.Errorf("want arity error, got %v", err)
	}
}

func TestBreakCannotCrossInlineBoundary(t *testing.T) {
	src := `
void helper() { break; }
void kernel(long* out, long n) {
  for (long i = 0; i < n; i++) { helper(); }
}
`
	_, err := Compile(src, "t")
	if err == nil || !strings.Contains(err.Error(), "break outside") {
		t.Errorf("want break-outside-loop error, got %v", err)
	}
}
