package cc

// Differential property tests: randomly generated programs are compiled and
// interpreted, then checked against a direct Go evaluation.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mosaicsim/internal/interp"
)

// exprGen builds a random integer expression over the variables a..f
// (declared long) and small literals, together with a Go evaluator.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) gen(depth int) (string, func(env []int64) int64) {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(4) == 0 {
			v := int64(g.rng.Intn(199) - 99)
			// Written as a long literal so C-style int promotion rules do
			// not diverge from the evaluator.
			return fmt.Sprintf("(long)%d", v), func([]int64) int64 { return v }
		}
		idx := g.rng.Intn(6)
		return string(rune('a' + idx)), func(env []int64) int64 { return env[idx] }
	}
	ops := []struct {
		sym string
		fn  func(x, y int64) int64
	}{
		{"+", func(x, y int64) int64 { return x + y }},
		{"-", func(x, y int64) int64 { return x - y }},
		{"*", func(x, y int64) int64 { return x * y }},
		{"&", func(x, y int64) int64 { return x & y }},
		{"|", func(x, y int64) int64 { return x | y }},
		{"^", func(x, y int64) int64 { return x ^ y }},
	}
	op := ops[g.rng.Intn(len(ops))]
	ls, lf := g.gen(depth - 1)
	rs, rf := g.gen(depth - 1)
	return fmt.Sprintf("(%s %s %s)", ls, op.sym, rs),
		func(env []int64) int64 { return op.fn(lf(env), rf(env)) }
}

// genTernary wraps an expression in a comparison-driven ternary now and then.
func (g *exprGen) genTop() (string, func(env []int64) int64) {
	s, f := g.gen(4)
	if g.rng.Intn(2) == 0 {
		cs, cf := g.gen(2)
		es, ef := g.gen(3)
		return fmt.Sprintf("((%s > (long)0) ? %s : %s)", cs, s, es),
			func(env []int64) int64 {
				if cf(env) > 0 {
					return f(env)
				}
				return ef(env)
			}
	}
	return s, f
}

func TestRandomExpressionsMatchGo(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &exprGen{rng: rng}
		const nExprs = 6
		var exprs []string
		var evals []func([]int64) int64
		for i := 0; i < nExprs; i++ {
			s, f := g.genTop()
			exprs = append(exprs, s)
			evals = append(evals, f)
		}
		var sb strings.Builder
		sb.WriteString("void kernel(long* out, long a, long b, long c, long d, long e, long f) {\n")
		for i, e := range exprs {
			fmt.Fprintf(&sb, "  out[%d] = %s;\n", i, e)
		}
		sb.WriteString("}\n")
		mod, err := Compile(sb.String(), "prop")
		if err != nil {
			t.Logf("compile failed for:\n%s\n%v", sb.String(), err)
			return false
		}
		env := make([]int64, 6)
		for i := range env {
			env[i] = int64(rng.Intn(2001) - 1000)
		}
		mem := interp.NewMemory(1 << 20)
		out := mem.Alloc(nExprs*8, 8)
		args := []uint64{out}
		for _, v := range env {
			args = append(args, uint64(v))
		}
		if _, err := interp.Run(mod.Func("kernel"), mem, args, interp.Options{}); err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		for i, f := range evals {
			want := f(env)
			if got := mem.ReadI64(out + uint64(i)*8); got != want {
				t.Logf("expr %q = %d, want %d (env %v)", exprs[i], got, want, env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomLoopReductions checks compiled reduction loops with random
// strides and bounds against Go.
func TestRandomLoopReductions(t *testing.T) {
	src := `
void kernel(long* A, long* out, long n, long stride, long start) {
  long sum = 0;
  long count = 0;
  for (long i = start; i < n; i += stride) {
    sum += A[i];
    if (A[i] % 2 == 0) {
      count++;
    }
  }
  out[0] = sum;
  out[1] = count;
}
`
	mod, err := Compile(src, "red")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		stride := 1 + rng.Intn(7)
		start := rng.Intn(n)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000) - 500)
		}
		var sum, count int64
		for i := start; i < n; i += stride {
			sum += vals[i]
			if vals[i]%2 == 0 {
				count++
			}
		}
		mem := interp.NewMemory(1 << 22)
		pa := mem.AllocI64(vals)
		out := mem.Alloc(16, 8)
		if _, err := interp.Run(f, mem, []uint64{pa, out, uint64(n), uint64(stride), uint64(start)}, interp.Options{}); err != nil {
			return false
		}
		return mem.ReadI64(out) == sum && mem.ReadI64(out+8) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
