package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"mosaicsim/internal/store"
)

// This file binds the manager to the disk store (internal/store). The
// contract is write-through, read-at-startup: every admitted job lands a
// record under its content address, every emitted event appends one NDJSON
// line (under the job lock, so the log order is the observed order), and a
// restarted manager rebuilds its table from the store — terminal jobs replay
// their event streams byte-identically (the lines were written verbatim and
// Event round-trips exactly), live jobs re-queue and run again. Store
// failures never fail a job: persistence degrades to in-memory operation
// and counts mosaicd_store_errors_total.

// bindStore computes j's content address, persists its admission record,
// and wires its event appender. Called under m.mu so records land in
// admission order. No-op without a store; on record-write failure the job
// proceeds unpersisted.
func (m *Manager) bindStore(j *Job) {
	st := m.opts.Store
	if st == nil {
		return
	}
	specJSON, err := json.Marshal(j.Spec)
	if err != nil {
		m.mStoreErrors.Inc()
		return
	}
	j.digest = store.Digest(j.ID, specJSON)
	rec := store.JobRecord{
		ID:        j.ID,
		Digest:    j.digest,
		Tenant:    j.Spec.Tenant,
		Priority:  j.Spec.Priority,
		Submitted: j.submitted,
		Spec:      specJSON,
	}
	if err := st.CreateJob(rec); err != nil {
		m.mStoreErrors.Inc()
		j.digest = ""
		return
	}
	m.bindAppender(j)
}

// bindAppender wires j's per-event persistence hook (emit calls it under
// the job lock with the marshalled line).
func (m *Manager) bindAppender(j *Job) {
	st := m.opts.Store
	j.persist = func(line []byte) {
		if err := st.AppendEvent(j.digest, line); err != nil {
			m.mStoreErrors.Inc()
		}
	}
}

// recover rebuilds the job table from the store at startup (before the
// worker pool exists, so it runs single-threaded). Terminal jobs are
// reloaded as records whose event streams replay exactly as served before
// the restart; live jobs (queued, or running when the process died) are
// re-queued — a job mid-run at the kill gets a fresh queued edge appended
// so its log explains the rerun. The ID counter resumes past the highest
// recovered ID, so new admissions never collide with stored directories.
func (m *Manager) recover() {
	snaps, err := m.opts.Store.Jobs()
	if err != nil {
		m.mStoreErrors.Inc()
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, snap := range snaps {
		var spec Spec
		if err := json.Unmarshal(snap.Rec.Spec, &spec); err != nil {
			m.mStoreErrors.Inc()
			continue
		}
		j := &Job{
			ID:        snap.Rec.ID,
			Spec:      spec,
			affinity:  spec.AffinityHash(),
			digest:    snap.Rec.Digest,
			state:     StateQueued,
			notify:    make(chan struct{}),
			submitted: snap.Rec.Submitted,
		}
		j.ctx, j.cancel = context.WithCancel(m.root)
		last := StateQueued
		lastErr := ""
		for _, line := range snap.Events {
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				continue
			}
			j.events = append(j.events, e)
			if e.Type != "state" {
				continue
			}
			last = e.State
			lastErr = e.Error
			switch {
			case e.State == StateRunning:
				j.started = e.Time
				if e.Attempt > j.attempts {
					j.attempts = e.Attempt
				} else {
					j.attempts++
				}
			case e.State.Terminal():
				j.finished = e.Time
			}
		}
		var n int
		if _, err := fmt.Sscanf(snap.Rec.ID, "j%d", &n); err == nil && n > m.nextID {
			m.nextID = n
		}
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		if last.Terminal() {
			j.state = last
			if last == StateDone {
				j.report = snap.Report
			} else if lastErr != "" {
				j.err = errors.New(lastErr)
			}
			m.mRecovered.Inc()
			continue
		}
		// Live at the kill: resume. The appender continues the existing log
		// (sequence numbers pick up where the intact prefix ended).
		m.bindAppender(j)
		m.tenantLive[spec.Tenant]++
		if last == StateRunning {
			j.emit(Event{Type: "state", State: StateQueued, Error: "requeued after restart"})
		}
		m.enqueueLocked(j, false)
		m.mResumed.Inc()
	}
}
