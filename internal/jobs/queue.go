package jobs

import "math"

// The admission priority classes, highest first. A queued high job always
// dequeues before a normal one, and normal before low; within a class the
// queue is FIFO. Classes are fixed (not a numeric priority) so starvation
// analysis and per-class metrics stay tractable.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// priorityClasses lists the classes in dequeue order.
var priorityClasses = []string{PriorityHigh, PriorityNormal, PriorityLow}

// classRank maps a priority class to its queue index (unknown names were
// rejected at admission; the default class is normal).
func classRank(p string) int {
	switch p {
	case PriorityHigh:
		return 0
	case PriorityLow:
		return 2
	default:
		return 1
	}
}

// queueDepthLocked is the number of waiting jobs across all classes.
func (m *Manager) queueDepthLocked() int {
	n := 0
	for i := range m.queues {
		n += len(m.queues[i])
	}
	return n
}

// enqueueLocked adds a queued job to its class queue (front-of-class when
// requeueing after a lost lease, so recovery latency is not paid twice) and
// wakes one waiting local worker.
func (m *Manager) enqueueLocked(j *Job, front bool) {
	c := classRank(j.Spec.Priority)
	if front {
		m.queues[c] = append([]*Job{j}, m.queues[c]...)
	} else {
		m.queues[c] = append(m.queues[c], j)
	}
	m.noteDepthLocked()
	m.cond.Signal()
}

// popLocked removes and returns the front of the highest nonempty class
// (nil when every class is empty).
func (m *Manager) popLocked() *Job {
	for c := range m.queues {
		if len(m.queues[c]) > 0 {
			j := m.queues[c][0]
			m.queues[c] = m.queues[c][1:]
			m.noteDepthLocked()
			return j
		}
	}
	return nil
}

// removeQueuedLocked drops a specific job from its class queue (cancelled
// while queued). It reports whether the job was found.
func (m *Manager) removeQueuedLocked(j *Job) bool {
	c := classRank(j.Spec.Priority)
	for i, q := range m.queues[c] {
		if q == j {
			m.queues[c] = append(m.queues[c][:i], m.queues[c][i+1:]...)
			m.noteDepthLocked()
			return true
		}
	}
	return false
}

// noteDepthLocked refreshes the queue-depth gauges.
func (m *Manager) noteDepthLocked() {
	m.mQueueDepth.Set(int64(m.queueDepthLocked()))
	for i, p := range priorityClasses {
		m.mClassDepth[p].Set(int64(len(m.queues[i])))
	}
}

// dequeue blocks until a job is available for the local pool or the queue is
// closed (returns nil). Jobs cancelled while queued are skipped here and by
// runJob's own state check.
func (m *Manager) dequeue() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if j := m.popLocked(); j != nil {
			return j
		}
		if m.qclosed {
			return nil
		}
		m.cond.Wait()
	}
}

// QueueStats is a point-in-time admission snapshot, shaped for health and
// readiness probes: Accepting is false exactly when a submission right now
// would be shed (draining or at capacity).
type QueueStats struct {
	Depth     int  `json:"queueDepth"`
	Capacity  int  `json:"queueCapacity"`
	Running   int  `json:"running"`
	Leased    int  `json:"leased"`
	Draining  bool `json:"draining"`
	Accepting bool `json:"accepting"`
}

// QueueStats snapshots the admission queue.
func (m *Manager) QueueStats() QueueStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := QueueStats{
		Depth:    m.queueDepthLocked(),
		Capacity: m.opts.QueueDepth,
		Running:  int(m.mInflight.Value()),
		Leased:   m.leasedLocked(),
		Draining: m.draining,
	}
	st.Accepting = !m.draining && st.Depth < st.Capacity
	return st
}

// leasedLocked counts jobs currently leased to remote workers.
func (m *Manager) leasedLocked() int {
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.leased {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// RetryAfter derives the Retry-After hint (in whole seconds) a shed
// submission should carry: the estimated time for the current backlog to
// drain through the available execution slots, using the observed mean run
// time. It replaces the old hardcoded 1s — under a deep queue of slow jobs a
// 1s retry storm only amplifies the overload. Clamped to [1, 60]; a
// draining manager answers 30 (clients should find another replica).
func (m *Manager) RetryAfter() int {
	m.mu.Lock()
	depth := m.queueDepthLocked()
	draining := m.draining
	slots := m.opts.Workers
	m.mu.Unlock()
	if draining {
		return 30
	}
	slots += m.leasedSlots()
	if slots < 1 {
		slots = 1
	}
	mean := 1.0 // no completed run yet: assume a second
	if h := m.mStage["run"]; h != nil && h.Count() > 0 {
		mean = h.Sum() / float64(h.Count())
	}
	est := int(math.Ceil(float64(depth+1) * mean / float64(slots)))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// leasedSlots estimates remote capacity: the number of active leases (each
// lease is a remote worker slot proven to exist).
func (m *Manager) leasedSlots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leasedLocked()
}
