package jobs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

// Spec is one simulation submission: the workload plus the scale, tile, and
// system options the CLI exposes as flags. The zero value of every optional
// field selects the same default the CLI would (small scale, 1 tile, OoO
// cores, Table II memory, SPMD).
type Spec struct {
	// Workload names a built-in workload (see `mosaicsim -list`). Required.
	Workload string `json:"workload"`
	// Scale is the input size: tiny, small, or large (default small).
	Scale string `json:"scale,omitempty"`
	// Tiles is the SPMD tile count (default 1).
	Tiles int `json:"tiles,omitempty"`
	// Core is the tile core model: ooo, inorder, or xeon (default ooo).
	Core string `json:"core,omitempty"`
	// Mem selects the memory hierarchy: tab2 (DAE study) or tab1
	// (Xeon-like); default tab2.
	Mem string `json:"mem,omitempty"`
	// Slicing maps the kernel onto tiles: spmd or dae (default spmd).
	Slicing string `json:"slicing,omitempty"`
	// Topology is an inline declarative system description (heterogeneous
	// tile list, memory, NoC). It replaces Core/Mem/Tiles; setting both is
	// an error. Access/execute roles in the topology select DAE slicing.
	Topology *config.SystemConfig `json:"topology,omitempty"`
	// Preset names a built-in topology (see config.TopologyPresets):
	// spmd-xeon, dae-pair, core-accel. Mutually exclusive with Topology.
	Preset string `json:"preset,omitempty"`
	// Opt names the compiler optimization level for the workload build:
	// O0, O1, or O2 (default O0). Different levels never share cached
	// artifacts or recorded schedules — the cache key carries the
	// pass-config hash.
	Opt string `json:"opt,omitempty"`
	// Passes overrides Opt with an explicit comma-separated pass list
	// (e.g. "constfold,dce"). Mutually exclusive with Opt.
	Passes string `json:"passes,omitempty"`
	// Unroll sets the loop-unroll factor when the unroll pass runs
	// (0 = the pipeline default).
	Unroll int `json:"unroll,omitempty"`
	// Limit bounds the simulated cycles (0 = the engine default).
	Limit int64 `json:"limit,omitempty"`
	// NoSkip disables event-horizon cycle skipping.
	NoSkip bool `json:"noskip,omitempty"`
	// Replay controls schedule-capture timing replay for this job: answer a
	// timing-only re-submission analytically from a recorded schedule
	// (bit-identical to full simulation). Unset inherits the daemon's
	// default (Options.Replay).
	Replay *bool `json:"replay,omitempty"`
	// StepWorkers shards tile stepping across that many goroutines
	// (bit-identical to sequential; 1 forces sequential). 0 inherits the
	// daemon's default (Options.StepWorkers).
	StepWorkers int `json:"step_workers,omitempty"`
	// Timeout is an optional per-job wall-clock budget as a Go duration
	// string ("30s"); the manager's per-job timeout still caps it.
	Timeout string `json:"timeout,omitempty"`
	// Tenant attributes the job to a client for quota accounting and
	// per-tenant metrics. Servers fill it from the X-Mosaic-Tenant header
	// when the body leaves it empty ("" = the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the admission class: high, normal, or low (default
	// normal). Higher classes always dequeue first; within a class the
	// queue is FIFO.
	Priority string `json:"priority,omitempty"`
}

// suggest renders a validation error with a did-you-mean candidate drawn
// from the allowed values, mirroring workloads.Resolve's behavior.
func suggest(field, got string, allowed []string) error {
	if s := stats.Closest(got, allowed); s != "" {
		return fmt.Errorf("jobs: unknown %s %q (did you mean %q?)", field, got, s)
	}
	return fmt.Errorf("jobs: unknown %s %q (allowed: %v)", field, got, allowed)
}

// Normalize fills defaults and validates every field up front — an invalid
// submission is rejected at admission with a did-you-mean error, never after
// it has consumed a queue slot. It returns the normalized spec.
func (s Spec) Normalize() (Spec, error) {
	if s.Workload == "" {
		return s, fmt.Errorf("jobs: spec needs a workload (see mosaicsim -list)")
	}
	if _, err := workloads.Resolve(s.Workload); err != nil {
		return s, fmt.Errorf("jobs: %w", err)
	}
	if s.Scale == "" {
		s.Scale = "small"
	}
	switch s.Scale {
	case "tiny", "small", "large":
	default:
		return s, suggest("scale", s.Scale, []string{"tiny", "small", "large"})
	}
	if s.Topology != nil || s.Preset != "" {
		if s.Topology != nil && s.Preset != "" {
			return s, fmt.Errorf("jobs: topology and preset are mutually exclusive")
		}
		if s.Tiles != 0 || s.Core != "" || s.Mem != "" || s.Slicing != "" {
			return s, fmt.Errorf("jobs: tiles/core/mem/slicing are implied by the topology; drop them")
		}
		sc, err := s.topology()
		if err != nil {
			return s, fmt.Errorf("jobs: %w", err)
		}
		if err := sc.Validate(); err != nil {
			return s, fmt.Errorf("jobs: %w", err)
		}
		// Resolve tile kinds now so an unknown kind is rejected at
		// admission with a did-you-mean, not after queuing.
		if _, err := soc.ExpandTiles(sc); err != nil {
			return s, fmt.Errorf("jobs: %w", err)
		}
	} else {
		if s.Tiles == 0 {
			s.Tiles = 1
		}
		if s.Tiles < 0 {
			return s, fmt.Errorf("jobs: negative tile count %d", s.Tiles)
		}
		if s.Core == "" {
			s.Core = "ooo"
		}
		switch s.Core {
		case "ooo", "inorder", "xeon":
		default:
			return s, suggest("core", s.Core, []string{"ooo", "inorder", "xeon"})
		}
		if s.Mem == "" {
			s.Mem = "tab2"
		}
		switch s.Mem {
		case "tab1", "tab2":
		default:
			return s, suggest("mem", s.Mem, []string{"tab1", "tab2"})
		}
		if s.Slicing == "" {
			s.Slicing = "spmd"
		}
		switch s.Slicing {
		case "spmd":
		case "dae":
			if s.Tiles%2 != 0 {
				return s, fmt.Errorf("jobs: dae slicing needs an even tile count (access/execute pairs), got %d", s.Tiles)
			}
		default:
			return s, suggest("slicing", s.Slicing, []string{"spmd", "dae"})
		}
	}
	if s.Opt != "" && s.Passes != "" {
		return s, fmt.Errorf("jobs: opt and passes are mutually exclusive")
	}
	if _, err := ir.ParseOptConfig(s.Opt, s.Passes, s.Unroll); err != nil {
		return s, fmt.Errorf("jobs: %w", err)
	}
	if s.Limit < 0 {
		return s, fmt.Errorf("jobs: negative cycle limit %d", s.Limit)
	}
	if s.StepWorkers < 0 {
		return s, fmt.Errorf("jobs: negative step-worker count %d", s.StepWorkers)
	}
	if s.Timeout != "" {
		d, err := time.ParseDuration(s.Timeout)
		if err != nil {
			return s, fmt.Errorf("jobs: bad timeout %q: %w", s.Timeout, err)
		}
		if d <= 0 {
			return s, fmt.Errorf("jobs: non-positive timeout %q", s.Timeout)
		}
	}
	if s.Priority == "" {
		s.Priority = PriorityNormal
	}
	switch s.Priority {
	case PriorityHigh, PriorityNormal, PriorityLow:
	default:
		return s, suggest("priority", s.Priority, []string{PriorityHigh, PriorityNormal, PriorityLow})
	}
	return s, nil
}

// AffinityHash is a stable hash over the spec fields that select cached
// artifacts — workload, scale, shape, and the opt pipeline, the same
// dimensions sim.Key carries. Two specs with equal hashes reuse each
// other's traces and recorded schedules, so the coordinator prefers
// leasing a job to a worker whose cache is already warm for its hash.
// Tenant, priority, timeout, limit, and execution knobs are deliberately
// excluded: they change scheduling or bounds, not artifacts.
func (s Spec) AffinityHash() uint64 {
	h := fnv.New64a()
	for _, f := range []string{s.Workload, s.Scale, s.Core, s.Mem, s.Slicing, s.Preset, s.Opt, s.Passes} {
		h.Write([]byte(f))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "%d|%d", s.Tiles, s.Unroll)
	if s.Topology != nil {
		if b, err := json.Marshal(s.Topology); err == nil {
			h.Write(b)
		}
	}
	return h.Sum64()
}

// timeout returns the spec's parsed per-job budget (0 = none). The spec must
// already be normalized.
func (s Spec) timeout() time.Duration {
	if s.Timeout == "" {
		return 0
	}
	d, _ := time.ParseDuration(s.Timeout)
	return d
}

// topology resolves the spec's declarative system description: the inline
// Topology if present, else the named Preset. It returns nil when the spec
// uses the flat Tiles/Core/Mem form.
func (s Spec) topology() (*config.SystemConfig, error) {
	if s.Topology != nil {
		return s.Topology, nil
	}
	if s.Preset != "" {
		return config.TopologyPreset(s.Preset)
	}
	return nil, nil
}

// scale maps the normalized scale name onto the workloads enum.
func (s Spec) scale() workloads.Scale {
	switch s.Scale {
	case "tiny":
		return workloads.Tiny
	case "large":
		return workloads.Large
	default:
		return workloads.Small
	}
}

// SessionOptions lowers a normalized spec into the engine options the CLI
// would build for the same flags, bound to the given shared cache. Keeping
// this lowering in one place is what makes the HTTP path and the CLI path
// byte-identical for the same submission (the golden seam test).
func (s Spec) SessionOptions(cache *sim.Cache) (sim.Options, error) {
	w, err := workloads.Resolve(s.Workload)
	if err != nil {
		return sim.Options{}, err
	}
	opt, err := ir.ParseOptConfig(s.Opt, s.Passes, s.Unroll)
	if err != nil {
		return sim.Options{}, err
	}
	if !opt.IsDefault() {
		w = w.WithOpt(opt)
	}
	if sc, err := s.topology(); err != nil {
		return sim.Options{}, err
	} else if sc != nil {
		if err := sc.Validate(); err != nil {
			return sim.Options{}, err
		}
		refClock, err := soc.ReferenceClockMHz(sc)
		if err != nil {
			return sim.Options{}, err
		}
		// Slicing is inferred by the session from the topology's roles.
		return sim.Options{
			Workload:             w,
			Scale:                s.scale(),
			Config:               sc,
			Accels:               workloads.DefaultAccelModels(refClock),
			Limit:                s.Limit,
			DisableCycleSkipping: s.NoSkip,
			Replay:               s.Replay != nil && *s.Replay,
			StepWorkers:          s.StepWorkers,
			Cache:                cache,
		}, nil
	}
	var core config.CoreConfig
	switch s.Core {
	case "inorder":
		core = config.InOrderCore()
	case "xeon":
		core = config.XeonLikeCore()
	default:
		core = config.OutOfOrderCore()
	}
	mem := config.TableIIMem()
	if s.Mem == "tab1" {
		mem = config.TableIMem()
	}
	sc := &config.SystemConfig{
		Name:  fmt.Sprintf("%s-%dx%s", w.Name, s.Tiles, s.Core),
		Cores: []config.CoreSpec{{Core: core, Count: s.Tiles}},
		Mem:   mem,
	}
	if err := sc.Validate(); err != nil {
		return sim.Options{}, err
	}
	slicing := sim.SliceNone
	if s.Slicing == "dae" {
		slicing = sim.SliceDAE
	}
	return sim.Options{
		Workload:             w,
		Scale:                s.scale(),
		Config:               sc,
		Slicing:              slicing,
		Accels:               workloads.DefaultAccelModels(sc.Cores[0].Core.ClockMHz),
		Limit:                s.Limit,
		DisableCycleSkipping: s.NoSkip,
		Replay:               s.Replay != nil && *s.Replay,
		StepWorkers:          s.StepWorkers,
		Cache:                cache,
	}, nil
}
