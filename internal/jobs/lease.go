package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// This file is the coordinator half of the fleet lease protocol. A remote
// worker (internal/cluster) leases a queued job, renews the lease through
// heartbeats while executing, forwards stage/progress events, and completes
// with the report. The coordinator owns every lifecycle edge — workers only
// ever contribute stage and progress events — so one process decides each
// job's history and the persisted log stays a single total order. A lease
// that outlives its TTL is presumed lost (worker SIGKILL, partition): the
// job requeues at the front of its class, bounded by MaxAttempts so a
// poison job cannot cycle through the fleet forever.

// Lease is one granted execution claim on a job.
type Lease struct {
	JobID string `json:"jobId"`
	Spec  Spec   `json:"spec"`
	// Affinity is the job's artifact-affinity hash. Workers remember the
	// hashes of jobs they have executed and send them with lease requests,
	// so the coordinator can route repeat work to warm caches.
	Affinity uint64 `json:"affinity"`
	// Attempt numbers this execution (1-based across requeues).
	Attempt int `json:"attempt"`
	// Expires is when the lease lapses unless renewed.
	Expires time.Time `json:"expires"`
}

// LeaseJob grants worker a lease on one queued job, preferring a job whose
// affinity hash the worker already holds (warm trace/schedule caches) and
// otherwise stealing the front of the highest-priority class. It returns
// (nil, false) when nothing is queued or the manager is draining.
func (m *Manager) LeaseJob(worker string, affinity map[uint64]bool, ttl time.Duration) (*Lease, bool) {
	if worker == "" || ttl <= 0 {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, false
	}
	var (
		j      *Job
		affine bool
	)
	for {
		j, affine = m.popAffineLocked(affinity)
		if j == nil {
			return nil, false
		}
		j.mu.Lock()
		if j.state == StateQueued {
			break // claim it below, still holding j.mu
		}
		j.mu.Unlock() // raced with a cancel: skip and keep popping
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.attempts++
	j.leased = true
	j.leaseWorker = worker
	j.leaseExpiry = time.Now().Add(ttl)
	lease := &Lease{
		JobID:    j.ID,
		Spec:     j.Spec,
		Affinity: j.affinity,
		Attempt:  j.attempts,
		Expires:  j.leaseExpiry,
	}
	j.mu.Unlock()
	m.mStates[StateRunning].Inc()
	m.mLeasesActive.Add(1)
	if affine {
		m.mAffinity.Inc()
	} else if len(affinity) > 0 {
		m.mSteals.Inc()
	}
	j.emit(Event{Type: "state", State: StateRunning, Worker: worker, Attempt: lease.Attempt})
	return lease, true
}

// popAffineLocked removes and returns the best queued job for a worker
// holding the given affinity hashes: the first match scanning classes in
// priority order, else the plain front of the queue (a steal). The second
// result reports whether the pick was an affinity match.
func (m *Manager) popAffineLocked(affinity map[uint64]bool) (*Job, bool) {
	if len(affinity) > 0 {
		for c := range m.queues {
			for i, j := range m.queues[c] {
				if affinity[j.affinity] {
					m.queues[c] = append(m.queues[c][:i], m.queues[c][i+1:]...)
					m.noteDepthLocked()
					return j, true
				}
			}
		}
	}
	return m.popLocked(), false
}

// leaseHeld reports whether worker currently holds id's lease.
func (m *Manager) leaseHeld(id, worker string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	held := j.leased && j.leaseWorker == worker && j.state == StateRunning
	j.mu.Unlock()
	if !held {
		return nil, fmt.Errorf("%w: job %s is not leased to %q", ErrLeaseLost, id, worker)
	}
	return j, nil
}

// RenewLease extends worker's lease on id by ttl. ErrLeaseLost means the
// lease expired (the job requeued or finished elsewhere) or the job was
// cancelled; the worker must abandon the run.
func (m *Manager) RenewLease(id, worker string, ttl time.Duration) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.leased || j.leaseWorker != worker || j.state != StateRunning {
		return fmt.Errorf("%w: job %s is not leased to %q", ErrLeaseLost, id, worker)
	}
	j.leaseExpiry = time.Now().Add(ttl)
	return nil
}

// AppendRemote forwards one stage or progress event from the leased
// worker's local run into the coordinator's event log (and stage metrics).
// Lifecycle edges are rejected: the coordinator emits its own.
func (m *Manager) AppendRemote(id, worker string, e Event) error {
	if e.Type == "state" {
		return errors.New("jobs: workers do not emit lifecycle edges")
	}
	j, err := m.leaseHeld(id, worker)
	if err != nil {
		return err
	}
	// Re-stamp: only the payload fields cross the wire; seq and time are
	// assigned here so the log stays a single total order.
	j.emit(Event{
		Type:     e.Type,
		Stage:    e.Stage,
		CacheHit: e.CacheHit,
		Seconds:  e.Seconds,
		Cycle:    e.Cycle,
		Stepped:  e.Stepped,
		Skipped:  e.Skipped,
		Final:    e.Final,
	})
	if e.Type == "stage" {
		if h := m.mStage[e.Stage]; h != nil {
			h.Observe(e.Seconds)
		}
	}
	return nil
}

// CompleteLease finishes a leased job: done with the worker's report, or
// failed with its error message. The claim check runs under the job lock,
// so a completion racing lease expiry resolves to exactly one outcome; the
// loser gets ErrLeaseLost.
func (m *Manager) CompleteLease(id, worker string, report json.RawMessage, errMsg string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	claim := func(j *Job) bool {
		return j.leased && j.leaseWorker == worker && j.state == StateRunning
	}
	var ok bool
	if errMsg == "" {
		ok = m.finish(j, claim, StateDone, nil, report, "")
	} else {
		ok = m.finish(j, claim, StateFailed, errors.New(errMsg), nil, "")
	}
	if !ok {
		return fmt.Errorf("%w: job %s is not leased to %q", ErrLeaseLost, id, worker)
	}
	return nil
}

// ExpireLeases requeues (or, past MaxAttempts, fails) every leased job
// whose lease lapsed before now, and returns how many it reclaimed. A
// requeued job goes to the front of its class so the latency already paid
// is not paid twice. The coordinator calls this periodically.
func (m *Manager) ExpireLeases(now time.Time) int {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	maxAttempts := m.opts.MaxAttempts
	m.mu.Unlock()
	n := 0
	for _, j := range jobs {
		j.mu.Lock()
		if !j.leased || j.state != StateRunning || !now.After(j.leaseExpiry) {
			j.mu.Unlock()
			continue
		}
		worker, attempts := j.leaseWorker, j.attempts
		if attempts >= maxAttempts {
			j.mu.Unlock()
			m.mLeaseExpired.Inc()
			claim := func(j *Job) bool { return j.leased && j.leaseWorker == worker }
			m.finish(j, claim, StateFailed,
				fmt.Errorf("jobs: lease expired on worker %q after %d attempts", worker, attempts), nil, "")
			n++
			continue
		}
		j.leased = false
		j.state = StateQueued
		j.mu.Unlock()
		m.mLeaseExpired.Inc()
		m.mRequeued.Inc()
		m.mLeasesActive.Add(-1)
		m.mStates[StateQueued].Inc()
		j.emit(Event{Type: "state", State: StateQueued, Worker: worker, Attempt: attempts,
			Error: "lease expired; requeued"})
		m.mu.Lock()
		if !m.draining {
			m.enqueueLocked(j, true)
			m.mu.Unlock()
		} else {
			m.mu.Unlock()
			m.finish(j, nil, StateCancelled, nil, nil, "cancelled before start")
		}
		n++
	}
	return n
}

// TakeCancels drains and returns the IDs of leased jobs cancelled while
// worker held them. Heartbeat responses carry them so workers abort
// promptly instead of discovering ErrLeaseLost at completion.
func (m *Manager) TakeCancels(worker string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := m.cancels[worker]
	delete(m.cancels, worker)
	return ids
}
