// Package jobs is MosaicSim-Go's bounded simulation job manager: the layer
// that turns the cancellable session engine (internal/sim) into a
// long-running service substrate. Each submitted Spec becomes a Job with an
// ID, a per-job context, and a lifecycle state machine
//
//	queued → running → done | failed | cancelled
//
// driven by a fixed worker pool. Admission control is explicit: the queue is
// bounded, and a submission past the bound is shed immediately with
// ErrQueueFull instead of growing memory without limit. All jobs share one
// sim.Cache, so identical submissions singleflight their compile/trace work,
// and every lifecycle edge, stage transition, and progress tick is published
// both as a per-job event stream (for live observers) and as metrics
// (internal/metrics) for scraping.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mosaicsim/internal/metrics"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
)

// State is a job's lifecycle position.
type State string

// The lifecycle states. Queued and Running are live; the rest are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Typed admission and lookup errors. Servers map these onto status codes
// (429, 503, 404); they survive errors.Is through any wrapping.
var (
	// ErrQueueFull sheds a submission that found the bounded queue at
	// capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown rejects submissions after drain has begun.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
)

// Event is one entry in a job's ordered event log: a lifecycle edge
// (type "state"), a pipeline stage completion (type "stage", with cache
// attribution and elapsed seconds), or an in-flight progress tick
// (type "progress", with the cycle position and stepped/skipped split).
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Type  string    `json:"type"`
	State State     `json:"state,omitempty"`
	Stage string    `json:"stage,omitempty"`
	// CacheHit, on stage events that consult the artifact cache, reports
	// whether the stage's inputs were already resident.
	CacheHit *bool   `json:"cacheHit,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Cycle    int64   `json:"cycle,omitempty"`
	Stepped  int64   `json:"stepped,omitempty"`
	Skipped  int64   `json:"skipped,omitempty"`
	// Final marks the terminal progress event the engine emits when a run
	// exits (done, cancelled, or cycle-limited): the cycle position is the
	// run's last, never a stale throttled tick.
	Final bool   `json:"final,omitempty"`
	Error string `json:"error,omitempty"`
}

// Status is a point-in-time snapshot of a job for API responses.
type Status struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Spec      Spec            `json:"spec"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
}

// Job is one submission moving through the lifecycle. All mutable state is
// guarded by mu; the event log is append-only and notify is closed and
// replaced on every append, so observers wait without polling.
type Job struct {
	ID   string
	Spec Spec // normalized

	ctx    context.Context // per-job; cancelled by Cancel, Shutdown, or the root
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	err       error
	report    json.RawMessage
	events    []Event
	notify    chan struct{}
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while live or done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Report returns the finished job's JSON report (nil before done).
func (j *Job) Report() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Submitted: j.submitted,
		Report:    j.report,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// emit appends one event (stamping its sequence number and time) and wakes
// every waiting observer.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events)
	e.Time = time.Now().UTC()
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// EventsSince returns the events with sequence >= after, a channel closed
// when the log next grows, and whether the stream is complete (the job is
// terminal and every event has been returned). Observers loop: drain,
// then wait on the channel (or their own context) unless done.
func (j *Job) EventsSince(after int) (evs []Event, more <-chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.notify, j.state.Terminal() && after+len(evs) == len(j.events)
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it shed
	// with ErrQueueFull (default 64).
	QueueDepth int
	// JobTimeout caps each job's run wall-clock time, and also caps any
	// smaller per-spec timeout (0 = unbounded).
	JobTimeout time.Duration
	// MaxJobs bounds retained job records: beyond it, the oldest terminal
	// jobs are forgotten (default 4096; their IDs then return ErrNotFound).
	MaxJobs int
	// Cache is the shared artifact cache (nil builds a private unbounded
	// one). Daemons pass a bounded cache so identical submissions
	// singleflight while memory stays capped.
	Cache *sim.Cache
	// Registry receives the manager's metrics (nil builds a private one).
	Registry *metrics.Registry
	// Runner executes one job and returns its JSON report. Nil selects the
	// sim-backed runner; tests substitute a controllable stub.
	Runner Runner
	// StepWorkers is the default per-simulation tile-stepping parallelism
	// applied to specs that leave step_workers unset (0 or 1 = sequential).
	// Results are bit-identical either way.
	StepWorkers int
	// Replay is the default for specs that leave replay unset: answer
	// timing-only re-submissions analytically from recorded schedules
	// (bit-identical to full simulation).
	Replay bool
}

// Runner executes one running job under ctx, emitting events through job,
// and returns the job's final JSON report.
type Runner func(ctx context.Context, job *Job) (json.RawMessage, error)

// Manager owns the queue, the worker pool, the shared cache, and the job
// table.
type Manager struct {
	opts  Options
	root  context.Context
	stop  context.CancelFunc
	cache *sim.Cache
	reg   *metrics.Registry
	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for retention eviction
	nextID   int
	draining bool

	mSubmitted  *metrics.Counter
	mRejected   *metrics.Counter
	mStates     map[State]*metrics.Counter
	mQueueDepth *metrics.Gauge
	mInflight   *metrics.Gauge
	mStage      map[string]*metrics.Histogram
	mTileActive map[string]*metrics.Counter
	mTileStall  map[string]*metrics.Counter
	mTileInstrs map[string]*metrics.Counter
}

// runStages names the instrumented pipeline stages, in order: artifact
// covers Compile→DDG→Trace (the cached layers), run covers
// BuildSystem→Run, report covers result marshalling.
var runStages = []string{"artifact", "run", "report"}

// NewManager builds a manager, registers its metrics, and starts its
// workers. Callers must Shutdown it to release them.
func NewManager(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.Cache == nil {
		opts.Cache = sim.NewCache()
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:  opts,
		root:  root,
		stop:  stop,
		cache: opts.Cache,
		reg:   opts.Registry,
		queue: make(chan *Job, opts.QueueDepth),
		jobs:  map[string]*Job{},
	}
	if m.opts.Runner == nil {
		m.opts.Runner = m.simRun
	}
	reg := m.reg
	m.mSubmitted = reg.Counter("mosaicd_jobs_submitted_total", "Jobs admitted to the queue.", nil)
	m.mRejected = reg.Counter("mosaicd_jobs_rejected_total", "Submissions shed by admission control (queue full or draining).", nil)
	m.mStates = map[State]*metrics.Counter{}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		m.mStates[st] = reg.Counter("mosaicd_jobs_total", "Job lifecycle transitions by entered state.", metrics.Labels{"state": string(st)})
	}
	m.mQueueDepth = reg.Gauge("mosaicd_queue_depth", "Jobs waiting in the admission queue.", nil)
	m.mInflight = reg.Gauge("mosaicd_jobs_inflight", "Simulations currently running.", nil)
	reg.Gauge("mosaicd_step_workers", "Default per-simulation tile-stepping parallelism (0 or 1 = sequential).", nil).
		Set(int64(opts.StepWorkers))
	m.mStage = map[string]*metrics.Histogram{}
	for _, stage := range runStages {
		m.mStage[stage] = reg.Histogram("mosaicd_stage_seconds", "Pipeline stage latency.", metrics.Labels{"stage": stage}, nil)
	}
	// Per-tile-kind simulated-time breakdowns. The registry rejects lazy
	// duplicate registration, so every kind the tile registry can produce is
	// registered up front; kinds registered after startup (custom tile
	// factories) fold into "other".
	m.mTileActive = map[string]*metrics.Counter{}
	m.mTileStall = map[string]*metrics.Counter{}
	m.mTileInstrs = map[string]*metrics.Counter{}
	for _, kind := range append(soc.TileKinds(), "accel", "other") {
		l := metrics.Labels{"kind": kind}
		m.mTileActive[kind] = reg.Counter("mosaicd_tile_active_cycles_total", "Simulated active cycles by tile kind, summed over finished jobs.", l)
		m.mTileStall[kind] = reg.Counter("mosaicd_tile_stall_cycles_total", "Simulated stall cycles by tile kind, summed over finished jobs.", l)
		m.mTileInstrs[kind] = reg.Counter("mosaicd_tile_instrs_total", "Committed instructions by tile kind, summed over finished jobs.", l)
	}
	reg.CounterFunc("mosaicd_cache_hits_total", "Artifact-cache lookups served from cache (singleflight joins included).", nil,
		func() int64 { return m.cache.Counters().Hits })
	reg.CounterFunc("mosaicd_cache_misses_total", "Artifact-cache lookups that built.", nil,
		func() int64 { return m.cache.Counters().Misses })
	reg.CounterFunc("mosaicd_cache_evictions_total", "Artifact-cache LRU evictions.", nil,
		func() int64 { return m.cache.Counters().Evictions })
	// The mosaicd_artifact_cache_* series mirror mosaicd_cache_* under the
	// namespaced names dashboards expect next to the replay series below;
	// the legacy names stay registered for existing scrapes.
	reg.CounterFunc("mosaicd_artifact_cache_hits_total", "Artifact-cache lookups served from cache (singleflight joins included).", nil,
		func() int64 { return m.cache.Counters().Hits })
	reg.CounterFunc("mosaicd_artifact_cache_misses_total", "Artifact-cache lookups that built.", nil,
		func() int64 { return m.cache.Counters().Misses })
	reg.CounterFunc("mosaicd_artifact_cache_evictions_total", "Artifact-cache LRU evictions.", nil,
		func() int64 { return m.cache.Counters().Evictions })
	reg.CounterFunc("mosaicd_replay_hits_total", "Runs answered analytically from a recorded timing schedule.", nil,
		func() int64 { return m.cache.ReplayCounters().Hits })
	reg.CounterFunc("mosaicd_replay_fallbacks_total", "Runs that found a schedule but fell back to full simulation (ineligible delta).", nil,
		func() int64 { return m.cache.ReplayCounters().Fallbacks })
	reg.CounterFunc("mosaicd_schedules_recorded_total", "Timing schedules captured and published to the cache.", nil,
		func() int64 { return m.cache.ReplayCounters().Recorded })
	reg.GaugeFunc("mosaicd_replay_hit_ratio", "Fraction of replay-attempted runs answered from a schedule (hits / (hits + fallbacks)).", nil,
		func() float64 {
			rc := m.cache.ReplayCounters()
			if rc.Hits+rc.Fallbacks == 0 {
				return 0
			}
			return float64(rc.Hits) / float64(rc.Hits+rc.Fallbacks)
		})
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the manager's metrics registry (for /metrics handlers).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Cache returns the shared artifact cache.
func (m *Manager) Cache() *sim.Cache { return m.cache }

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Submit validates spec, admits it to the bounded queue, and returns the
// new job. It never blocks: a full queue sheds the submission with
// ErrQueueFull (wrapped with the configured depth), and a draining manager
// rejects with ErrShuttingDown.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, ErrShuttingDown
	}
	m.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", m.nextID),
		Spec:      spec,
		state:     StateQueued,
		notify:    make(chan struct{}),
		submitted: time.Now().UTC(),
	}
	j.ctx, j.cancel = context.WithCancel(m.root)
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		j.cancel()
		m.mRejected.Inc()
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.opts.QueueDepth)
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictRecordsLocked()
	m.mu.Unlock()
	m.mSubmitted.Inc()
	m.mStates[StateQueued].Inc()
	m.mQueueDepth.Set(int64(len(m.queue)))
	j.emit(Event{Type: "state", State: StateQueued})
	return j, nil
}

// evictRecordsLocked forgets the oldest terminal job records beyond
// MaxJobs, so a long-running daemon's job table stays bounded. Live jobs
// are never evicted.
func (m *Manager) evictRecordsLocked() {
	if len(m.jobs) <= m.opts.MaxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > m.opts.MaxJobs && j.State().Terminal() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// List returns every retained job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a job and returns immediately — before
// the job's context error surfaces in its status. A queued job transitions
// to cancelled on the spot (it will never run); a running job's context is
// cancelled and the worker records the terminal state asynchronously;
// cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.finished = time.Now().UTC()
		j.mu.Unlock()
		m.mStates[StateCancelled].Inc()
		j.emit(Event{Type: "state", State: StateCancelled, Error: "cancelled before start"})
	} else {
		j.mu.Unlock()
	}
	j.cancel()
	return j, nil
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mQueueDepth.Set(int64(len(m.queue)))
		m.runJob(j)
	}
}

// runJob drives one dequeued job through running to a terminal state.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while queued: never run it.
		j.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.state = StateCancelled
		j.finished = time.Now().UTC()
		j.mu.Unlock()
		m.mStates[StateCancelled].Inc()
		j.emit(Event{Type: "state", State: StateCancelled, Error: "cancelled before start"})
		return
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.mu.Unlock()
	m.mStates[StateRunning].Inc()
	m.mInflight.Add(1)
	defer m.mInflight.Add(-1)
	j.emit(Event{Type: "state", State: StateRunning})

	ctx := j.ctx
	budget := m.opts.JobTimeout
	if d := j.Spec.timeout(); d > 0 && (budget == 0 || d < budget) {
		budget = d
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	report, err := m.opts.Runner(ctx, j)

	j.mu.Lock()
	j.finished = time.Now().UTC()
	var final State
	switch {
	case err == nil:
		final = StateDone
		j.report = report
	case errors.Is(err, context.Canceled):
		final = StateCancelled
		j.err = err
	default:
		final = StateFailed
		j.err = err
	}
	j.state = final
	j.mu.Unlock()
	m.mStates[final].Inc()
	ev := Event{Type: "state", State: final}
	if err != nil {
		ev.Error = err.Error()
	}
	j.emit(ev)
}

// simRun is the production Runner: it lowers the spec onto a sim.Session
// bound to the shared cache, runs the pipeline stage by stage, and emits
// stage events (with cache attribution), throttled progress events, and
// stage-latency metrics along the way. Its report is exactly
// json.Marshal(soc.Result) — byte-identical to what the CLI/Session path
// produces for the same submission.
func (m *Manager) simRun(ctx context.Context, j *Job) (json.RawMessage, error) {
	opts, err := j.Spec.SessionOptions(m.cache)
	if err != nil {
		return nil, err
	}
	if opts.StepWorkers == 0 {
		opts.StepWorkers = m.opts.StepWorkers
	}
	if j.Spec.Replay == nil {
		opts.Replay = m.opts.Replay
	}
	// Progress events: at most ~10/s regardless of simulation speed, except
	// the terminal update, which always goes out (it carries the run's final
	// cycle position). The hook runs on the simulating goroutine, so
	// lastTick needs no lock.
	var lastTick time.Time
	opts.Progress = func(u soc.ProgressUpdate) {
		now := time.Now()
		if !u.Final && now.Sub(lastTick) < 100*time.Millisecond {
			return
		}
		lastTick = now
		j.emit(Event{Type: "progress", Cycle: u.Cycle, Stepped: u.Stepped, Skipped: u.Skipped, Final: u.Final})
	}
	s, err := sim.NewSession(opts)
	if err != nil {
		return nil, err
	}
	hit := m.cache.HasArtifact(s.Key())
	t0 := time.Now()
	if _, err := s.Artifact(ctx); err != nil {
		return nil, err
	}
	d := time.Since(t0).Seconds()
	m.mStage["artifact"].Observe(d)
	j.emit(Event{Type: "stage", Stage: "artifact", CacheHit: &hit, Seconds: d})

	t0 = time.Now()
	res, err := s.Run(ctx)
	if err != nil {
		return nil, err
	}
	d = time.Since(t0).Seconds()
	m.mStage["run"].Observe(d)
	// A replayed run has no live system behind it: stepped/skipped come
	// from the replay outcome and there is no per-tile breakdown to
	// observe (the result is bit-identical to a full run regardless).
	stepped, skipped := s.Replay().Stepped, s.Replay().Skipped
	if sys := s.System(); sys != nil {
		stepped, skipped = sys.SteppedCycles, sys.SkippedCycles
		m.observeTiles(sys.TileBreakdown())
	}
	j.emit(Event{Type: "stage", Stage: "run", Seconds: d,
		Cycle: res.Cycles, Stepped: stepped, Skipped: skipped})

	t0 = time.Now()
	report, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	d = time.Since(t0).Seconds()
	m.mStage["report"].Observe(d)
	j.emit(Event{Type: "stage", Stage: "report", Seconds: d})
	return report, nil
}

// observeTiles folds one finished run's per-kind breakdown into the tile
// metrics. Kinds outside the startup registration set land in "other".
func (m *Manager) observeTiles(bs []soc.KindBreakdown) {
	for _, b := range bs {
		k := b.Kind
		if _, ok := m.mTileActive[k]; !ok {
			k = "other"
		}
		m.mTileActive[k].Add(b.ActiveCycles)
		m.mTileStall[k].Add(b.StallCycles)
		m.mTileInstrs[k].Add(b.Instrs)
	}
}

// Shutdown drains the manager: admission closes immediately
// (ErrShuttingDown), still-queued jobs are cancelled without running, and
// running jobs get until ctx's deadline to finish before their contexts are
// cancelled. It returns nil on a clean drain, or ctx's error if the
// deadline forced cancellation. Shutdown is idempotent only in effect —
// call it once.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.draining = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	// Cancel queued jobs: a drain finishes what is running, it does not
	// start new work. Workers skip them on dequeue.
	for _, j := range jobs {
		if j.State() == StateQueued {
			_, _ = m.Cancel(j.ID)
		}
	}
	close(m.queue)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("jobs: drain deadline hit, cancelling in-flight jobs: %w", ctx.Err())
		m.stop() // cancels every per-job context through the root
		<-done
	}
	m.stop()
	return err
}
