// Package jobs is MosaicSim-Go's bounded simulation job manager: the layer
// that turns the cancellable session engine (internal/sim) into a
// long-running service substrate. Each submitted Spec becomes a Job with an
// ID, a per-job context, and a lifecycle state machine
//
//	queued → running → done | failed | cancelled
//
// driven by a fixed worker pool and, in a fleet, by remote workers holding
// leases (see lease.go). Admission control is explicit: the queue is bounded
// and class-prioritised, per-tenant quotas cap any one client's live jobs,
// and a submission past either bound is shed immediately (ErrQueueFull,
// ErrTenantQuota) instead of growing memory without limit. All jobs share
// one sim.Cache, so identical submissions singleflight their compile/trace
// work, and every lifecycle edge, stage transition, and progress tick is
// published as a per-job event stream (for live observers), as metrics
// (internal/metrics) for scraping, and — when a store is attached — as an
// append-only NDJSON log (internal/store) that survives restarts.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mosaicsim/internal/metrics"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/store"
)

// State is a job's lifecycle position.
type State string

// The lifecycle states. Queued and Running are live; the rest are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Typed admission and lookup errors. Servers map these onto status codes
// (429, 503, 404); they survive errors.Is through any wrapping.
var (
	// ErrQueueFull sheds a submission that found the bounded queue at
	// capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrTenantQuota sheds a submission whose tenant is at its live-job
	// quota while other tenants still have headroom.
	ErrTenantQuota = errors.New("jobs: tenant quota exceeded")
	// ErrShuttingDown rejects submissions after drain has begun.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrLeaseLost tells a remote worker its lease is no longer valid (it
	// expired and the job was requeued, or the job was cancelled). The
	// worker must stop reporting for that job.
	ErrLeaseLost = errors.New("jobs: lease lost")
)

// Event is one entry in a job's ordered event log: a lifecycle edge
// (type "state"), a pipeline stage completion (type "stage", with cache
// attribution and elapsed seconds), or an in-flight progress tick
// (type "progress", with the cycle position and stepped/skipped split).
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Type  string    `json:"type"`
	State State     `json:"state,omitempty"`
	Stage string    `json:"stage,omitempty"`
	// CacheHit, on stage events that consult the artifact cache, reports
	// whether the stage's inputs were already resident.
	CacheHit *bool   `json:"cacheHit,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Cycle    int64   `json:"cycle,omitempty"`
	Stepped  int64   `json:"stepped,omitempty"`
	Skipped  int64   `json:"skipped,omitempty"`
	// Final marks the terminal progress event the engine emits when a run
	// exits (done, cancelled, or cycle-limited): the cycle position is the
	// run's last, never a stale throttled tick.
	Final bool   `json:"final,omitempty"`
	Error string `json:"error,omitempty"`
	// Worker and Attempt appear on lifecycle edges of leased jobs: which
	// remote worker held the lease, and which execution attempt this is.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Status is a point-in-time snapshot of a job for API responses.
type Status struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Spec      Spec            `json:"spec"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Error     string          `json:"error,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
	// Attempts counts execution starts (local or leased); >1 means the job
	// was requeued after a lost lease or a daemon restart.
	Attempts int `json:"attempts,omitempty"`
	// Worker names the remote worker holding (or last holding) the lease.
	Worker string `json:"worker,omitempty"`
}

// Job is one submission moving through the lifecycle. All mutable state is
// guarded by mu; the event log is append-only and notify is closed and
// replaced on every append, so observers wait without polling.
type Job struct {
	ID   string
	Spec Spec // normalized

	ctx    context.Context // per-job; cancelled by Cancel, Shutdown, or the root
	cancel context.CancelFunc

	digest   string            // content address in the store ("" = not persisted)
	persist  func(line []byte) // appends one event line to the store (nil = none)
	affinity uint64            // Spec.AffinityHash(), computed once at admission

	mu          sync.Mutex
	state       State
	err         error
	report      json.RawMessage
	events      []Event
	notify      chan struct{}
	submitted   time.Time
	started     time.Time
	finished    time.Time
	attempts    int
	leased      bool      // held by a remote worker right now
	leaseWorker string    // current (or last) lease holder
	leaseExpiry time.Time // lease deadline; past it the job is requeueable
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while live or done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Report returns the finished job's JSON report (nil before done).
func (j *Job) Report() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		Submitted: j.submitted,
		Report:    j.report,
		Attempts:  j.attempts,
		Worker:    j.leaseWorker,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// emit appends one event (stamping its sequence number and time), persists
// it if a store is attached, and wakes every waiting observer. Persisting
// under the job lock keeps the on-disk log in exact append order.
func (j *Job) emit(e Event) {
	j.mu.Lock()
	e.Seq = len(j.events)
	e.Time = time.Now().UTC()
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	if j.persist != nil {
		if line, err := json.Marshal(e); err == nil {
			j.persist(line)
		}
	}
	j.mu.Unlock()
}

// EventsSince returns the events with sequence >= after, a channel closed
// when the log next grows, and whether the stream is complete (the job is
// terminal and every event has been returned). Observers loop: drain,
// then wait on the channel (or their own context) unless done.
func (j *Job) EventsSince(after int) (evs []Event, more <-chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.notify, j.state.Terminal() && after+len(evs) == len(j.events)
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of concurrent local simulations (default
	// GOMAXPROCS). Negative means no local pool at all: jobs queue until a
	// remote worker leases them (coordinator mode).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it shed
	// with ErrQueueFull (default 64).
	QueueDepth int
	// JobTimeout caps each job's run wall-clock time, and also caps any
	// smaller per-spec timeout (0 = unbounded).
	JobTimeout time.Duration
	// MaxJobs bounds retained job records: beyond it, the oldest terminal
	// jobs are forgotten (default 4096; their IDs then return ErrNotFound).
	MaxJobs int
	// TenantQuota caps each tenant's live (queued + running + leased)
	// jobs; 0 disables per-tenant quotas.
	TenantQuota int
	// MaxAttempts bounds execution attempts per job (default 3): a job
	// whose lease expires at the bound fails instead of requeueing, so a
	// poison job cannot cycle through the fleet forever.
	MaxAttempts int
	// Store persists jobs and event logs for crash-restart resume (nil =
	// in-memory only). The manager recovers the store's jobs at startup;
	// the caller retains ownership and closes it after Shutdown.
	Store *store.Store
	// Cache is the shared artifact cache (nil builds a private unbounded
	// one). Daemons pass a bounded cache so identical submissions
	// singleflight while memory stays capped.
	Cache *sim.Cache
	// Registry receives the manager's metrics (nil builds a private one).
	Registry *metrics.Registry
	// Runner executes one job and returns its JSON report. Nil selects the
	// sim-backed runner; tests substitute a controllable stub.
	Runner Runner
	// StepWorkers is the default per-simulation tile-stepping parallelism
	// applied to specs that leave step_workers unset (0 or 1 = sequential).
	// Results are bit-identical either way.
	StepWorkers int
	// Replay is the default for specs that leave replay unset: answer
	// timing-only re-submissions analytically from recorded schedules
	// (bit-identical to full simulation).
	Replay bool
}

// Runner executes one running job under ctx, emitting events through job,
// and returns the job's final JSON report.
type Runner func(ctx context.Context, job *Job) (json.RawMessage, error)

// Manager owns the queue, the worker pool, the shared cache, and the job
// table.
type Manager struct {
	opts  Options
	root  context.Context
	stop  context.CancelFunc
	cache *sim.Cache
	reg   *metrics.Registry
	wg    sync.WaitGroup

	mu         sync.Mutex
	cond       *sync.Cond // signals queue growth and close to dequeue()
	queues     [3][]*Job  // one FIFO per priority class, indexed by classRank
	qclosed    bool
	jobs       map[string]*Job
	order      []string // submission order, for retention eviction
	nextID     int
	draining   bool
	tenantLive map[string]int      // live (non-terminal) jobs per tenant
	cancels    map[string][]string // pending cancel notices per worker

	mSubmitted      *metrics.Counter
	mRejected       *metrics.Counter
	mStates         map[State]*metrics.Counter
	mQueueDepth     *metrics.Gauge
	mClassDepth     map[string]*metrics.Gauge
	mInflight       *metrics.Gauge
	mLeasesActive   *metrics.Gauge
	mLeaseExpired   *metrics.Counter
	mRequeued       *metrics.Counter
	mSteals         *metrics.Counter
	mAffinity       *metrics.Counter
	mRecovered      *metrics.Counter
	mResumed        *metrics.Counter
	mStoreErrors    *metrics.Counter
	mTenantJobs     *metrics.CounterVec
	mTenantRejected *metrics.CounterVec
	mStage          map[string]*metrics.Histogram
	mTileActive     map[string]*metrics.Counter
	mTileStall      map[string]*metrics.Counter
	mTileInstrs     map[string]*metrics.Counter

	// parallelPhases / parallelStepped accumulate, over finished live
	// (non-replayed) runs, how many Interleaver iterations the sharded
	// stepper executed versus iterations simulated in total — the
	// mosaicd_parallel_phase_ratio gauge.
	parallelPhases  atomic.Int64
	parallelStepped atomic.Int64
}

// runStages names the instrumented pipeline stages, in order: artifact
// covers Compile→DDG→Trace (the cached layers), run covers
// BuildSystem→Run, report covers result marshalling.
var runStages = []string{"artifact", "run", "report"}

// NewManager builds a manager, registers its metrics, recovers any persisted
// jobs from the store, and starts its workers. Callers must Shutdown it to
// release them.
func NewManager(opts Options) *Manager {
	localWorkers := opts.Workers
	if localWorkers == 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	if localWorkers < 0 {
		localWorkers = 0 // coordinator mode: remote leases only
	}
	opts.Workers = localWorkers
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.Cache == nil {
		opts.Cache = sim.NewCache()
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	root, stop := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		root:       root,
		stop:       stop,
		cache:      opts.Cache,
		reg:        opts.Registry,
		jobs:       map[string]*Job{},
		tenantLive: map[string]int{},
		cancels:    map[string][]string{},
	}
	m.cond = sync.NewCond(&m.mu)
	if m.opts.Runner == nil {
		m.opts.Runner = m.simRun
	}
	reg := m.reg
	m.mSubmitted = reg.Counter("mosaicd_jobs_submitted_total", "Jobs admitted to the queue.", nil)
	m.mRejected = reg.Counter("mosaicd_jobs_rejected_total", "Submissions shed by admission control (queue full, tenant quota, or draining).", nil)
	m.mStates = map[State]*metrics.Counter{}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		m.mStates[st] = reg.Counter("mosaicd_jobs_total", "Job lifecycle transitions by entered state.", metrics.Labels{"state": string(st)})
	}
	m.mQueueDepth = reg.Gauge("mosaicd_queue_depth", "Jobs waiting in the admission queue.", nil)
	m.mClassDepth = map[string]*metrics.Gauge{}
	for _, p := range priorityClasses {
		m.mClassDepth[p] = reg.Gauge("mosaicd_queue_depth", "Jobs waiting in the admission queue.", metrics.Labels{"class": p})
	}
	m.mInflight = reg.Gauge("mosaicd_jobs_inflight", "Simulations currently running locally.", nil)
	m.mLeasesActive = reg.Gauge("mosaicd_leases_active", "Jobs currently leased to remote workers.", nil)
	m.mLeaseExpired = reg.Counter("mosaicd_leases_expired_total", "Leases that expired without completion (worker lost).", nil)
	m.mRequeued = reg.Counter("mosaicd_jobs_requeued_total", "Jobs returned to the queue after a lost lease.", nil)
	m.mSteals = reg.Counter("mosaicd_lease_steals_total", "Leases granted to a worker with no affinity match (work stealing).", nil)
	m.mAffinity = reg.Counter("mosaicd_lease_affinity_hits_total", "Leases granted to a worker already holding the job's artifacts.", nil)
	m.mRecovered = reg.Counter("mosaicd_jobs_recovered_total", "Terminal jobs reloaded from the store at startup.", nil)
	m.mResumed = reg.Counter("mosaicd_jobs_resumed_total", "Live jobs re-queued from the store at startup.", nil)
	m.mStoreErrors = reg.Counter("mosaicd_store_errors_total", "Persistence operations that failed (jobs continue in memory).", nil)
	m.mTenantJobs = reg.CounterVec("mosaicd_tenant_jobs_total", "Jobs admitted, by tenant.", "tenant", nil)
	m.mTenantRejected = reg.CounterVec("mosaicd_tenant_rejected_total", "Submissions shed by per-tenant quota.", "tenant", nil)
	reg.Gauge("mosaicd_step_workers", "Default per-simulation tile-stepping parallelism (0 or 1 = sequential).", nil).
		Set(int64(opts.StepWorkers))
	m.mStage = map[string]*metrics.Histogram{}
	for _, stage := range runStages {
		m.mStage[stage] = reg.Histogram("mosaicd_stage_seconds", "Pipeline stage latency.", metrics.Labels{"stage": stage}, nil)
	}
	// Per-tile-kind simulated-time breakdowns. The registry rejects lazy
	// duplicate registration, so every kind the tile registry can produce is
	// registered up front; kinds registered after startup (custom tile
	// factories) fold into "other".
	m.mTileActive = map[string]*metrics.Counter{}
	m.mTileStall = map[string]*metrics.Counter{}
	m.mTileInstrs = map[string]*metrics.Counter{}
	for _, kind := range append(soc.TileKinds(), "accel", "other") {
		l := metrics.Labels{"kind": kind}
		m.mTileActive[kind] = reg.Counter("mosaicd_tile_active_cycles_total", "Simulated active cycles by tile kind, summed over finished jobs.", l)
		m.mTileStall[kind] = reg.Counter("mosaicd_tile_stall_cycles_total", "Simulated stall cycles by tile kind, summed over finished jobs.", l)
		m.mTileInstrs[kind] = reg.Counter("mosaicd_tile_instrs_total", "Committed instructions by tile kind, summed over finished jobs.", l)
	}
	reg.CounterFunc("mosaicd_cache_hits_total", "Artifact-cache lookups served from cache (singleflight joins included).", nil,
		func() int64 { return m.cache.Counters().Hits })
	reg.CounterFunc("mosaicd_cache_misses_total", "Artifact-cache lookups that built.", nil,
		func() int64 { return m.cache.Counters().Misses })
	reg.CounterFunc("mosaicd_cache_evictions_total", "Artifact-cache LRU evictions.", nil,
		func() int64 { return m.cache.Counters().Evictions })
	// The mosaicd_artifact_cache_* series mirror mosaicd_cache_* under the
	// namespaced names dashboards expect next to the replay series below;
	// the legacy names stay registered for existing scrapes.
	reg.CounterFunc("mosaicd_artifact_cache_hits_total", "Artifact-cache lookups served from cache (singleflight joins included).", nil,
		func() int64 { return m.cache.Counters().Hits })
	reg.CounterFunc("mosaicd_artifact_cache_misses_total", "Artifact-cache lookups that built.", nil,
		func() int64 { return m.cache.Counters().Misses })
	reg.CounterFunc("mosaicd_artifact_cache_evictions_total", "Artifact-cache LRU evictions.", nil,
		func() int64 { return m.cache.Counters().Evictions })
	reg.CounterFunc("mosaicd_replay_hits_total", "Runs answered analytically from a recorded timing schedule.", nil,
		func() int64 { return m.cache.ReplayCounters().Hits })
	reg.CounterFunc("mosaicd_replay_fallbacks_total", "Runs that found a schedule but fell back to full simulation (ineligible delta).", nil,
		func() int64 { return m.cache.ReplayCounters().Fallbacks })
	reg.CounterFunc("mosaicd_schedules_recorded_total", "Timing schedules captured and published to the cache.", nil,
		func() int64 { return m.cache.ReplayCounters().Recorded })
	reg.GaugeFunc("mosaicd_replay_hit_ratio", "Fraction of replay-attempted runs answered from a schedule (hits / (hits + fallbacks)).", nil,
		func() float64 {
			rc := m.cache.ReplayCounters()
			if rc.Hits+rc.Fallbacks == 0 {
				return 0
			}
			return float64(rc.Hits) / float64(rc.Hits+rc.Fallbacks)
		})
	reg.GaugeFunc("mosaicd_parallel_phase_ratio", "Fraction of simulated Interleaver iterations executed by the sharded parallel stepper, over finished live runs.", nil,
		func() float64 {
			stepped := m.parallelStepped.Load()
			if stepped == 0 {
				return 0
			}
			return float64(m.parallelPhases.Load()) / float64(stepped)
		})
	if m.opts.Store != nil {
		m.recover()
	}
	for i := 0; i < localWorkers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the manager's metrics registry (for /metrics handlers).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Cache returns the shared artifact cache.
func (m *Manager) Cache() *sim.Cache { return m.cache }

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// tenantLabel renders a tenant name for metrics ("" shows as "default").
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// Submit validates spec, admits it to the bounded priority queue, and
// returns the new job. It never blocks: a full queue sheds the submission
// with ErrQueueFull (wrapped with the configured depth), a tenant at quota
// sheds with ErrTenantQuota, and a draining manager rejects with
// ErrShuttingDown.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, ErrShuttingDown
	}
	if q := m.opts.TenantQuota; q > 0 && m.tenantLive[spec.Tenant] >= q {
		m.mu.Unlock()
		m.mRejected.Inc()
		m.mTenantRejected.With(tenantLabel(spec.Tenant)).Inc()
		return nil, fmt.Errorf("%w: tenant %q has %d live jobs (quota %d)",
			ErrTenantQuota, tenantLabel(spec.Tenant), q, q)
	}
	if m.queueDepthLocked() >= m.opts.QueueDepth {
		m.mu.Unlock()
		m.mRejected.Inc()
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.opts.QueueDepth)
	}
	m.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", m.nextID),
		Spec:      spec,
		affinity:  spec.AffinityHash(),
		state:     StateQueued,
		notify:    make(chan struct{}),
		submitted: time.Now().UTC(),
	}
	j.ctx, j.cancel = context.WithCancel(m.root)
	m.bindStore(j)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.evictRecordsLocked()
	m.tenantLive[spec.Tenant]++
	m.mSubmitted.Inc()
	m.mTenantJobs.With(tenantLabel(spec.Tenant)).Inc()
	m.mStates[StateQueued].Inc()
	// Emit the queued edge before the job becomes poppable, so event logs
	// always open with it (seq 0) even if a worker grabs the job instantly.
	j.emit(Event{Type: "state", State: StateQueued})
	m.enqueueLocked(j, false)
	m.mu.Unlock()
	return j, nil
}

// evictRecordsLocked forgets the oldest terminal job records beyond
// MaxJobs, so a long-running daemon's job table stays bounded. Live jobs
// are never evicted.
func (m *Manager) evictRecordsLocked() {
	if len(m.jobs) <= m.opts.MaxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > m.opts.MaxJobs && j.State().Terminal() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// List returns every retained job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// Cancel requests cancellation of a job and returns immediately — before
// the job's context error surfaces in its status. A queued job transitions
// to cancelled on the spot (it will never run); a locally running job's
// context is cancelled and the worker records the terminal state
// asynchronously; a leased job is marked cancelled at the coordinator and
// the holding worker learns through its next heartbeat (and ErrLeaseLost on
// any later report). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	j.mu.Lock()
	state, leased, worker := j.state, j.leased, j.leaseWorker
	j.mu.Unlock()
	removed := false
	if state == StateQueued {
		removed = m.removeQueuedLocked(j)
	}
	if leased {
		m.cancels[worker] = append(m.cancels[worker], j.ID)
	}
	m.mu.Unlock()
	if removed {
		m.finish(j, nil, StateCancelled, nil, nil, "cancelled before start")
	} else if leased {
		m.finish(j, nil, StateCancelled, context.Canceled, nil, "cancelled by client")
	}
	j.cancel()
	return j, nil
}

// finish moves j to a terminal state: it claims the transition under the
// job lock (checking the optional claim predicate there, so lease
// completion and expiry cannot race each other), updates tenant accounting
// and metrics, persists the report (done jobs, before the terminal edge so
// a crash between the two replays as still-running, never as
// done-without-report), emits the terminal event, and releases the store
// appender. It reports whether this call performed the transition.
func (m *Manager) finish(j *Job, claim func(*Job) bool, final State, err error, report json.RawMessage, note string) bool {
	j.mu.Lock()
	if j.state.Terminal() || (claim != nil && !claim(j)) {
		j.mu.Unlock()
		return false
	}
	wasLeased := j.leased
	j.leased = false
	j.state = final
	j.finished = time.Now().UTC()
	j.err = err
	if final == StateDone {
		j.report = report
	}
	j.mu.Unlock()
	m.mStates[final].Inc()
	if wasLeased {
		m.mLeasesActive.Add(-1)
	}
	m.mu.Lock()
	if m.tenantLive[j.Spec.Tenant]--; m.tenantLive[j.Spec.Tenant] <= 0 {
		delete(m.tenantLive, j.Spec.Tenant)
	}
	m.mu.Unlock()
	if st := m.opts.Store; st != nil && j.digest != "" && final == StateDone {
		if perr := st.PutReport(j.digest, report); perr != nil {
			m.mStoreErrors.Inc()
		}
	}
	ev := Event{Type: "state", State: final}
	if note != "" {
		ev.Error = note
	} else if err != nil {
		ev.Error = err.Error()
	}
	j.emit(ev)
	if st := m.opts.Store; st != nil && j.digest != "" {
		st.CloseJob(j.digest)
	}
	return true
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.dequeue()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

// runJob drives one dequeued job through running to a terminal state.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while queued: never run it.
		j.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.mu.Unlock()
		m.finish(j, nil, StateCancelled, nil, nil, "cancelled before start")
		return
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.attempts++
	j.mu.Unlock()
	m.mStates[StateRunning].Inc()
	m.mInflight.Add(1)
	defer m.mInflight.Add(-1)
	j.emit(Event{Type: "state", State: StateRunning})

	ctx := j.ctx
	budget := m.opts.JobTimeout
	if d := j.Spec.timeout(); d > 0 && (budget == 0 || d < budget) {
		budget = d
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	report, err := m.opts.Runner(ctx, j)

	switch {
	case err == nil:
		m.finish(j, nil, StateDone, nil, report, "")
	case errors.Is(err, context.Canceled):
		m.finish(j, nil, StateCancelled, err, nil, "")
	default:
		m.finish(j, nil, StateFailed, err, nil, "")
	}
}

// simRun is the production Runner: it lowers the spec onto a sim.Session
// bound to the shared cache, runs the pipeline stage by stage, and emits
// stage events (with cache attribution), throttled progress events, and
// stage-latency metrics along the way. Its report is exactly
// json.Marshal(soc.Result) — byte-identical to what the CLI/Session path
// produces for the same submission.
func (m *Manager) simRun(ctx context.Context, j *Job) (json.RawMessage, error) {
	opts, err := j.Spec.SessionOptions(m.cache)
	if err != nil {
		return nil, err
	}
	if opts.StepWorkers == 0 {
		opts.StepWorkers = m.opts.StepWorkers
	}
	if j.Spec.Replay == nil {
		opts.Replay = m.opts.Replay
	}
	// Progress events: at most ~10/s regardless of simulation speed, except
	// the terminal update, which always goes out (it carries the run's final
	// cycle position). The hook runs on the simulating goroutine, so
	// lastTick needs no lock.
	var lastTick time.Time
	opts.Progress = func(u soc.ProgressUpdate) {
		now := time.Now()
		if !u.Final && now.Sub(lastTick) < 100*time.Millisecond {
			return
		}
		lastTick = now
		j.emit(Event{Type: "progress", Cycle: u.Cycle, Stepped: u.Stepped, Skipped: u.Skipped, Final: u.Final})
	}
	s, err := sim.NewSession(opts)
	if err != nil {
		return nil, err
	}
	hit := m.cache.HasArtifact(s.Key())
	t0 := time.Now()
	if _, err := s.Artifact(ctx); err != nil {
		return nil, err
	}
	d := time.Since(t0).Seconds()
	m.mStage["artifact"].Observe(d)
	j.emit(Event{Type: "stage", Stage: "artifact", CacheHit: &hit, Seconds: d})

	t0 = time.Now()
	res, err := s.Run(ctx)
	if err != nil {
		return nil, err
	}
	d = time.Since(t0).Seconds()
	m.mStage["run"].Observe(d)
	// A replayed run has no live system behind it: stepped/skipped come
	// from the replay outcome and there is no per-tile breakdown to
	// observe (the result is bit-identical to a full run regardless).
	stepped, skipped := s.Replay().Stepped, s.Replay().Skipped
	if sys := s.System(); sys != nil {
		stepped, skipped = sys.SteppedCycles, sys.SkippedCycles
		m.observeTiles(sys.TileBreakdown())
		m.parallelPhases.Add(sys.ParallelPhases)
		m.parallelStepped.Add(sys.SteppedCycles)
	}
	j.emit(Event{Type: "stage", Stage: "run", Seconds: d,
		Cycle: res.Cycles, Stepped: stepped, Skipped: skipped})

	t0 = time.Now()
	report, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	d = time.Since(t0).Seconds()
	m.mStage["report"].Observe(d)
	j.emit(Event{Type: "stage", Stage: "report", Seconds: d})
	return report, nil
}

// observeTiles folds one finished run's per-kind breakdown into the tile
// metrics. Kinds outside the startup registration set land in "other".
func (m *Manager) observeTiles(bs []soc.KindBreakdown) {
	for _, b := range bs {
		k := b.Kind
		if _, ok := m.mTileActive[k]; !ok {
			k = "other"
		}
		m.mTileActive[k].Add(b.ActiveCycles)
		m.mTileStall[k].Add(b.StallCycles)
		m.mTileInstrs[k].Add(b.Instrs)
	}
}

// Shutdown drains the manager: admission closes immediately
// (ErrShuttingDown), still-queued jobs are cancelled without running, and
// running jobs — local and leased — get until ctx's deadline to finish
// before their contexts are cancelled (leased jobs are marked cancelled at
// the coordinator; their workers learn via ErrLeaseLost). It returns nil on
// a clean drain, or ctx's error if the deadline forced cancellation.
// Shutdown is idempotent only in effect — call it once.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.draining = true
	// Pop everything still queued: a drain finishes what is running, it
	// does not start new work.
	var queued []*Job
	for {
		j := m.popLocked()
		if j == nil {
			break
		}
		queued = append(queued, j)
	}
	m.qclosed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range queued {
		m.finish(j, nil, StateCancelled, nil, nil, "cancelled before start")
		j.cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("jobs: drain deadline hit, cancelling in-flight jobs: %w", ctx.Err())
		m.stop() // cancels every per-job context through the root
		<-done
	}
	// Remote leases share the deadline: wait for workers to complete their
	// jobs, then cancel whatever is still out.
	for m.leasedSlots() > 0 {
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("jobs: drain deadline hit, cancelling leased jobs: %w", ctx.Err())
			}
			m.mu.Lock()
			leased := make([]*Job, 0)
			for _, j := range m.jobs {
				j.mu.Lock()
				if j.leased {
					leased = append(leased, j)
				}
				j.mu.Unlock()
			}
			m.mu.Unlock()
			for _, j := range leased {
				m.finish(j, nil, StateCancelled, context.Canceled, nil, "cancelled at shutdown")
				j.cancel()
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	m.stop()
	return err
}
