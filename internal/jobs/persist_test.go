package jobs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mosaicsim/internal/store"
)

// marshalEvents re-serializes a served event stream the way the API and the
// persisted log do — one JSON line per event — so byte-identity across a
// restart can be asserted on the whole stream at once.
func marshalEvents(t *testing.T, evs []Event) string {
	t.Helper()
	var sb strings.Builder
	for _, e := range evs {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCrashRestartResume is the durability contract of the job store: kill
// the manager with work in flight (simulated by closing the store out from
// under it, so nothing terminal persists — exactly what SIGKILL leaves),
// reopen the same data directory, and the done job replays byte-identically
// while the interrupted and queued jobs resume and complete.
func TestCrashRestartResume(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 4)
	release := make(chan struct{}, 4)
	m := NewManager(Options{Workers: 1, QueueDepth: 8,
		Runner: blockingRunner(started, release), Store: st})

	j1, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // j1 running
	j2, err := m.Submit(Spec{Workload: "spmv", Scale: "tiny", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := m.Submit(Spec{Workload: "bfs", Scale: "tiny", Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}

	release <- struct{}{} // j1 completes cleanly before the crash
	if s := waitTerminal(t, j1, 5*time.Second); s != StateDone {
		t.Fatalf("j1 finished %s", s)
	}
	evs1, _, _ := j1.EventsSince(0)
	wantLog1 := marshalEvents(t, evs1)
	wantReport1 := string(j1.Report())
	// The worker drains by priority: high-class j3 runs next (its running
	// edge persists before the runner starts); normal-class j2 stays queued.
	if id := <-started; id != j3.ID {
		t.Fatalf("worker picked %s next, want the high-priority %s", id, j3.ID)
	}

	// Crash: the store dies first (no terminal event or cancellation below
	// reaches disk), then the manager is torn down with a short deadline so
	// the blocked j2 is force-cancelled in memory only.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = m.Shutdown(ctx)
	cancel()

	// Restart against the same directory, with a runner that completes
	// immediately so resumed jobs drain.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	resumedReport := json.RawMessage(`{"resumed":true}`)
	m2 := NewManager(Options{Workers: 1, QueueDepth: 8, Store: st2,
		Runner: func(ctx context.Context, j *Job) (json.RawMessage, error) {
			return resumedReport, nil
		}})
	defer shutdown(t, m2)

	// j1: recovered terminal, report and event stream byte-identical.
	r1, err := m2.Get(j1.ID)
	if err != nil {
		t.Fatalf("done job lost across restart: %v", err)
	}
	if r1.State() != StateDone {
		t.Fatalf("recovered j1 state = %s, want done", r1.State())
	}
	if got := string(r1.Report()); got != wantReport1 {
		t.Errorf("recovered report differs:\n got %s\nwant %s", got, wantReport1)
	}
	revs1, _, done := r1.EventsSince(0)
	if !done {
		t.Error("recovered j1 event stream not terminal")
	}
	if got := marshalEvents(t, revs1); got != wantLog1 {
		t.Errorf("recovered event log not byte-identical:\n got %s\nwant %s", got, wantLog1)
	}

	// j3 (killed mid-run) and j2 (killed while queued) resume and complete.
	for _, id := range []string{j2.ID, j3.ID} {
		rj, err := m2.Get(id)
		if err != nil {
			t.Fatalf("live job %s lost across restart: %v", id, err)
		}
		if s := waitTerminal(t, rj, 5*time.Second); s != StateDone {
			t.Fatalf("resumed job %s finished %s: %s", id, s, rj.Status().Error)
		}
		if got := string(rj.Report()); got != string(resumedReport) {
			t.Errorf("resumed job %s report = %s", id, got)
		}
	}

	// The interrupted job's log records the interruption: queued, running
	// (attempt 1), requeued-after-restart, running again, done — and its
	// attempt counter reflects both executions.
	r3, _ := m2.Get(j3.ID)
	if a := r3.Status().Attempts; a != 2 {
		t.Errorf("j3 attempts = %d, want 2 (one per side of the crash)", a)
	}
	revs3, _, _ := r3.EventsSince(0)
	var sawRequeue bool
	for _, e := range revs3 {
		if e.Type == "state" && e.State == StateQueued && e.Error == "requeued after restart" {
			sawRequeue = true
		}
	}
	if !sawRequeue {
		t.Errorf("j3 log lacks the requeued-after-restart edge: %s", marshalEvents(t, revs3))
	}
	if a := func() int { r2, _ := m2.Get(j2.ID); return r2.Status().Attempts }(); a != 1 {
		t.Errorf("j2 attempts = %d, want 1 (never ran before the crash)", a)
	}

	// Tenant accounting recovered with the live jobs and released as they
	// finished: the tenant can submit again up to its quota.
	// ID allocation continues past recovered jobs instead of colliding.
	j4, err := m2.Submit(Spec{Workload: "sgemm", Scale: "tiny", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range []string{j1.ID, j2.ID, j3.ID} {
		if j4.ID == old {
			t.Fatalf("post-restart ID %s collides with a recovered job", j4.ID)
		}
	}
	if s := waitTerminal(t, j4, 5*time.Second); s != StateDone {
		t.Fatalf("post-restart submission finished %s", s)
	}
}

// TestRecoveredDoneJobsServeWithoutStore: a restart with no runner activity
// still serves recovered terminal jobs (status, report, full event stream)
// — recovery is read-path complete before any worker does anything.
func TestRecoveredDoneJobsServeWithoutStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 1)
	release := make(chan struct{}, 1)
	m := NewManager(Options{Workers: 1, Runner: blockingRunner(started, release), Store: st})
	j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	release <- struct{}{}
	if s := waitTerminal(t, j, 5*time.Second); s != StateDone {
		t.Fatalf("job finished %s", s)
	}
	shutdown(t, m)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := NewManager(Options{Workers: 1, Store: st2,
		Runner: blockingRunner(nil, make(chan struct{}))})
	defer shutdown(t, m2)
	r, err := m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	st3 := r.Status()
	if st3.State != StateDone || st3.Report == nil || st3.Started == nil || st3.Finished == nil {
		t.Errorf("recovered status incomplete: %+v", st3)
	}
	evs, _, done := r.EventsSince(0)
	if !done || len(evs) < 3 {
		t.Errorf("recovered stream done=%v with %d events", done, len(evs))
	}
}
