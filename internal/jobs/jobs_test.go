package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mosaicsim/internal/sim"
)

// waitTerminal blocks until the job reaches a terminal state (through its
// own event stream, so the wait is notification-driven, not polling).
func waitTerminal(t *testing.T, j *Job, timeout time.Duration) State {
	t.Helper()
	deadline := time.After(timeout)
	next := 0
	for {
		evs, more, done := j.EventsSince(next)
		next += len(evs)
		if done {
			return j.State()
		}
		select {
		case <-more:
		case <-deadline:
			t.Fatalf("job %s not terminal after %v (state %s)", j.ID, timeout, j.State())
		}
	}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// blockingRunner returns a stub Runner that signals started, then blocks
// until released or its context dies (returning the context error, as the
// sim-backed runner does).
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, j *Job) (json.RawMessage, error) {
		if started != nil {
			started <- j.ID
		}
		select {
		case <-release:
			return json.RawMessage(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestSpecValidationDidYouMean(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "needs a workload"},
		{Spec{Workload: "sgem"}, `did you mean "sgemm"`},
		{Spec{Workload: "sgemm", Scale: "tinny"}, `did you mean "tiny"`},
		{Spec{Workload: "sgemm", Core: "oo"}, `did you mean "ooo"`},
		{Spec{Workload: "sgemm", Mem: "tab3"}, "unknown mem"},
		{Spec{Workload: "sgemm", Slicing: "spdm"}, `did you mean "spmd"`},
		{Spec{Workload: "sgemm", Slicing: "dae", Tiles: 3}, "even tile count"},
		{Spec{Workload: "sgemm", Tiles: -1}, "negative tile count"},
		{Spec{Workload: "sgemm", Timeout: "bogus"}, "bad timeout"},
	}
	for _, c := range cases {
		if _, err := c.spec.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Normalize(%+v) = %v, want error containing %q", c.spec, err, c.want)
		}
	}
	norm, err := Spec{Workload: "sgemm"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Scale != "small" || norm.Tiles != 1 || norm.Core != "ooo" || norm.Mem != "tab2" || norm.Slicing != "spmd" {
		t.Errorf("defaults not filled: %+v", norm)
	}
}

func TestQueueFullShedsWithTypedError(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m := NewManager(Options{Workers: 1, QueueDepth: 1, Runner: blockingRunner(started, release)})
	defer func() { close(release); shutdown(t, m) }()

	a, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // a is running, queue empty
	if _, err := m.Submit(Spec{Workload: "spmv", Scale: "tiny"}); err != nil {
		t.Fatalf("queued submission rejected: %v", err)
	}
	_, err = m.Submit(Spec{Workload: "bfs", Scale: "tiny"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission error = %v, want ErrQueueFull", err)
	}
	if got := m.Registry(); got != nil {
		var sb strings.Builder
		got.WriteText(&sb)
		if !strings.Contains(sb.String(), "mosaicd_jobs_rejected_total 1") {
			t.Errorf("shed not counted:\n%s", sb.String())
		}
	}
	_ = a
}

func TestCancelWhileQueuedNeverRuns(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	var ran atomic.Int32
	runner := func(ctx context.Context, j *Job) (json.RawMessage, error) {
		ran.Add(1)
		return blockingRunner(started, release)(ctx, j)
	}
	m := NewManager(Options{Workers: 1, QueueDepth: 4, Runner: runner})
	defer func() { shutdown(t, m) }()

	a, _ := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	<-started // worker occupied by a
	b, err := m.Submit(Spec{Workload: "spmv", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != StateCancelled {
		t.Fatalf("cancelled-while-queued state = %s, want cancelled immediately", st)
	}
	close(release) // let a finish; the worker must skip b
	if st := waitTerminal(t, a, 5*time.Second); st != StateDone {
		t.Fatalf("job a state = %s, want done", st)
	}
	// Give the worker a beat to (incorrectly) pick b up if it were going to.
	time.Sleep(20 * time.Millisecond)
	if n := ran.Load(); n != 1 {
		t.Fatalf("runner invoked %d times, want 1 (cancelled-while-queued job ran)", n)
	}
}

func TestCancelWhileRunningUnwindsFast(t *testing.T) {
	started := make(chan string, 1)
	m := NewManager(Options{Workers: 1, QueueDepth: 1, Runner: blockingRunner(started, nil)})
	defer func() { shutdown(t, m) }()

	j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	t0 := time.Now()
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, time.Second); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Fatalf("cancel-while-running unwound in %v, want < 100ms", d)
	}
	if err := j.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled in chain", err)
	}
}

func TestCancelReturnsBeforeStatusSettles(t *testing.T) {
	started := make(chan string, 1)
	runner := func(ctx context.Context, j *Job) (json.RawMessage, error) {
		started <- j.ID
		<-ctx.Done()
		// Deliberately lag so the DELETE response races ahead of the
		// terminal transition, as a real mid-simulation unwind would.
		time.Sleep(30 * time.Millisecond)
		return nil, ctx.Err()
	}
	m := NewManager(Options{Workers: 1, QueueDepth: 1, Runner: runner})
	defer func() { shutdown(t, m) }()

	j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// Cancel has returned; the context error must not have surfaced yet.
	if st := j.State(); st != StateRunning {
		t.Fatalf("state right after Cancel = %s, want still running", st)
	}
	if st := waitTerminal(t, j, time.Second); st != StateCancelled {
		t.Fatalf("final state = %s, want cancelled", st)
	}
}

func TestPerJobTimeoutFails(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1, JobTimeout: 20 * time.Millisecond,
		Runner: blockingRunner(nil, nil)})
	defer func() { shutdown(t, m) }()
	j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 5*time.Second); st != StateFailed {
		t.Fatalf("timed-out job state = %s, want failed", st)
	}
	if err := j.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job error = %v, want DeadlineExceeded in chain", err)
	}
}

func TestSpecTimeoutCappedByManager(t *testing.T) {
	// The spec asks for a minute; the manager caps at 20ms.
	m := NewManager(Options{Workers: 1, QueueDepth: 1, JobTimeout: 20 * time.Millisecond,
		Runner: blockingRunner(nil, nil)})
	defer func() { shutdown(t, m) }()
	j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny", Timeout: "1m"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 5*time.Second); st != StateFailed {
		t.Fatalf("state = %s, want failed (manager cap must win)", st)
	}
}

func TestShutdownDrainsRunningCancelsQueued(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m := NewManager(Options{Workers: 1, QueueDepth: 4, Runner: blockingRunner(started, release)})

	running, _ := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	<-started
	queued, _ := m.Submit(Spec{Workload: "spmv", Scale: "tiny"})

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// Draining: new submissions are rejected with the typed error.
	deadline := time.After(2 * time.Second)
	for {
		if m.Draining() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("manager never started draining")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if _, err := m.Submit(Spec{Workload: "bfs", Scale: "tiny"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit while draining = %v, want ErrShuttingDown", err)
	}
	close(release) // running job finishes inside the drain budget
	if err := <-done; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if st := running.State(); st != StateDone {
		t.Errorf("running job drained to %s, want done", st)
	}
	if st := queued.State(); st != StateCancelled {
		t.Errorf("queued job drained to %s, want cancelled", st)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	started := make(chan string, 1)
	m := NewManager(Options{Workers: 1, QueueDepth: 1, Runner: blockingRunner(started, nil)})
	j, _ := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); err == nil {
		t.Fatal("deadline-forced drain returned nil, want error")
	}
	if st := j.State(); st != StateCancelled {
		t.Errorf("in-flight job after forced drain = %s, want cancelled", st)
	}
}

func TestRecordRetentionBound(t *testing.T) {
	release := make(chan struct{})
	close(release)
	m := NewManager(Options{Workers: 1, QueueDepth: 8, MaxJobs: 3, Runner: blockingRunner(nil, release)})
	defer func() { shutdown(t, m) }()
	var last *Job
	for i := 0; i < 6; i++ {
		j, err := m.Submit(Spec{Workload: "sgemm", Scale: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j, 5*time.Second)
		last = j
	}
	if n := len(m.List()); n > 3 {
		t.Fatalf("retained %d job records, want <= 3", n)
	}
	if _, err := m.Get(last.ID); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	if _, err := m.Get("j000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job lookup = %v, want ErrNotFound", err)
	}
}

// TestConcurrentMixedSubmissions is the acceptance-scale integration test:
// >= 32 concurrent submissions of mixed workloads through the real
// sim-backed runner, deduplicated through one shared cache. Run under
// -race in CI.
func TestConcurrentMixedSubmissions(t *testing.T) {
	cache := sim.NewCache()
	cache.SetMaxEntries(64)
	m := NewManager(Options{Workers: 4, QueueDepth: 64, Cache: cache})
	defer func() { shutdown(t, m) }()

	names := []string{"sgemm", "spmv", "bfs"}
	const n = 36
	js := make([]*Job, n)
	for i := 0; i < n; i++ {
		j, err := m.Submit(Spec{Workload: names[i%len(names)], Scale: "tiny", Tiles: 1 + i%2})
		if err != nil {
			t.Fatal(err)
		}
		js[i] = j
	}
	for i, j := range js {
		if st := waitTerminal(t, j, 120*time.Second); st != StateDone {
			t.Fatalf("job %d (%s) state = %s, err = %v", i, j.Spec.Workload, st, j.Err())
		}
		if len(j.Report()) == 0 {
			t.Fatalf("job %d has no report", i)
		}
	}
	// 36 submissions over 6 distinct shapes: the shared cache must have
	// deduplicated most artifact builds.
	c := cache.Counters()
	if c.Hits == 0 {
		t.Fatalf("cache hits = 0 over %d identical-shape submissions; dedup broken (misses %d)", n, c.Misses)
	}
	// Identical submissions must produce byte-identical reports.
	byShape := map[string]json.RawMessage{}
	for _, j := range js {
		key := fmt.Sprintf("%s/%d", j.Spec.Workload, j.Spec.Tiles)
		if prev, ok := byShape[key]; ok {
			if string(prev) != string(j.Report()) {
				t.Fatalf("reports for identical submissions %s differ", key)
			}
		} else {
			byShape[key] = j.Report()
		}
	}
}

// TestSimRunnerEmitsStageEvents checks the event stream a real job
// produces: lifecycle edges, the three stages with cache attribution, and
// that a repeat submission reports the artifact stage as a cache hit.
func TestSimRunnerEmitsStageEvents(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 4})
	defer func() { shutdown(t, m) }()

	spec := Spec{Workload: "sgemm", Scale: "tiny", Tiles: 2}
	first, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first, 60*time.Second)
	evs, _, _ := first.EventsSince(0)
	var stages []string
	var firstHit *bool
	for _, e := range evs {
		if e.Type == "stage" {
			stages = append(stages, e.Stage)
			if e.Stage == "artifact" {
				firstHit = e.CacheHit
			}
		}
	}
	if want := []string{"artifact", "run", "report"}; fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("stage events = %v, want %v", stages, want)
	}
	if firstHit == nil || *firstHit {
		t.Fatalf("first submission artifact cacheHit = %v, want false", firstHit)
	}
	// The engine's terminal progress update bypasses the runner's throttle,
	// so every finished job's last progress event is Final and sits at the
	// run's true end cycle — never a stale throttled tick.
	var lastProgress *Event
	for i := range evs {
		if evs[i].Type == "progress" {
			lastProgress = &evs[i]
		}
	}
	if lastProgress == nil || !lastProgress.Final {
		t.Fatalf("no final progress event (last = %+v)", lastProgress)
	}
	var report struct {
		Cycles int64 `json:"cycles"`
	}
	if err := json.Unmarshal(first.Report(), &report); err != nil {
		t.Fatal(err)
	}
	if lastProgress.Cycle != report.Cycles {
		t.Fatalf("final progress cycle = %d, report cycles = %d", lastProgress.Cycle, report.Cycles)
	}

	second, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, second, 60*time.Second)
	evs, _, _ = second.EventsSince(0)
	for _, e := range evs {
		if e.Type == "stage" && e.Stage == "artifact" {
			if e.CacheHit == nil || !*e.CacheHit {
				t.Fatalf("repeat submission artifact cacheHit = %v, want true", e.CacheHit)
			}
		}
	}
}
