// Package trace defines MosaicSim-Go's dynamic trace artifacts: the
// control-flow path (sequence of basic-block IDs), the memory-address stream
// of every load/store/atomic, and recorded accelerator-invocation parameters.
//
// These are the two trace files the paper's Dynamic Trace Generator writes
// after the instrumented native run (§II-A), plus the accelerator-parameter
// trace used to match accelerator calls during simulation (§II-B). A compact
// binary serialization supports the storage study of §VI-B.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Memory-access kinds.
const (
	KindLoad uint8 = iota
	KindStore
	KindAtomic
)

// MemEvent is one dynamic memory access.
type MemEvent struct {
	Instr int32  // static instruction index within the kernel
	Addr  uint64 // simulated byte address
	Size  uint8  // access size in bytes
	Kind  uint8  // KindLoad, KindStore, or KindAtomic
}

// AccCall records the parameters of one accelerator invocation, captured by
// the DTG so the simulator can configure the accelerator model (§II-B).
type AccCall struct {
	Name   string
	Params []int64
}

// CommEvent records the partner tile of one dynamic send or recv (§II-C).
// The timing simulator replays these to match messages through the
// Interleaver without evaluating operand values.
type CommEvent struct {
	Instr   int32 // static instruction index
	Partner int32 // destination tile for send, source tile for recv
}

// TileTrace holds the dynamic trace of a single tile's kernel execution.
type TileTrace struct {
	Tile      int32
	BBPath    []int32     // basic-block IDs in launch order
	Mem       []MemEvent  // memory accesses in program order
	Acc       []AccCall   // accelerator invocations in program order
	Comm      []CommEvent // send/recv partners in program order
	DynInstrs int64       // dynamic instruction count
}

// Trace is the complete dynamic trace of one kernel run across all tiles.
type Trace struct {
	Kernel string
	Tiles  []*TileTrace
}

// TotalDynInstrs returns the dynamic instruction count summed over tiles.
func (t *Trace) TotalDynInstrs() int64 {
	var n int64
	for _, tt := range t.Tiles {
		n += tt.DynInstrs
	}
	return n
}

// TotalMemEvents returns the number of memory accesses summed over tiles.
func (t *Trace) TotalMemEvents() int64 {
	var n int64
	for _, tt := range t.Tiles {
		n += int64(len(tt.Mem))
	}
	return n
}

const (
	magic   = "MSTR"
	version = 1
)

// WriteTo serializes the trace in the compact binary format. Control-flow IDs
// are written as uvarints and addresses as zigzag deltas, mirroring how the
// original traces stay "typically less than 1 GB" for the control path while
// memory traces dominate (§VI-B).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	putI := func(v int64) error {
		n := binary.PutVarint(buf, v)
		_, err := cw.Write(buf[:n])
		return err
	}
	putStr := func(s string) error {
		if err := put(uint64(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}

	if _, err := io.WriteString(cw, magic); err != nil {
		return cw.n, err
	}
	if err := put(version); err != nil {
		return cw.n, err
	}
	if err := putStr(t.Kernel); err != nil {
		return cw.n, err
	}
	if err := put(uint64(len(t.Tiles))); err != nil {
		return cw.n, err
	}
	for _, tt := range t.Tiles {
		if err := put(uint64(tt.Tile)); err != nil {
			return cw.n, err
		}
		if err := put(uint64(tt.DynInstrs)); err != nil {
			return cw.n, err
		}
		if err := put(uint64(len(tt.BBPath))); err != nil {
			return cw.n, err
		}
		for _, id := range tt.BBPath {
			if err := put(uint64(id)); err != nil {
				return cw.n, err
			}
		}
		if err := put(uint64(len(tt.Mem))); err != nil {
			return cw.n, err
		}
		var prev uint64
		for _, ev := range tt.Mem {
			if err := put(uint64(ev.Instr)); err != nil {
				return cw.n, err
			}
			if err := putI(int64(ev.Addr) - int64(prev)); err != nil {
				return cw.n, err
			}
			prev = ev.Addr
			if _, err := cw.Write([]byte{ev.Size, ev.Kind}); err != nil {
				return cw.n, err
			}
		}
		if err := put(uint64(len(tt.Acc))); err != nil {
			return cw.n, err
		}
		for _, ac := range tt.Acc {
			if err := putStr(ac.Name); err != nil {
				return cw.n, err
			}
			if err := put(uint64(len(ac.Params))); err != nil {
				return cw.n, err
			}
			for _, p := range ac.Params {
				if err := putI(p); err != nil {
					return cw.n, err
				}
			}
		}
		if err := put(uint64(len(tt.Comm))); err != nil {
			return cw.n, err
		}
		for _, ce := range tt.Comm {
			if err := put(uint64(ce.Instr)); err != nil {
				return cw.n, err
			}
			if err := put(uint64(ce.Partner)); err != nil {
				return cw.n, err
			}
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// EncodedSize returns the serialized size in bytes without retaining the
// encoding (used by the §VI-B storage-requirements experiment).
func (t *Trace) EncodedSize() (int64, error) {
	return t.WriteTo(io.Discard)
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, errors.New("trace: bad magic")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	getStr := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	t := &Trace{}
	if t.Kernel, err = getStr(); err != nil {
		return nil, err
	}
	ntiles, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ntiles; i++ {
		tt := &TileTrace{}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tt.Tile = int32(v)
		if v, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		tt.DynInstrs = int64(v)
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		tt.BBPath = make([]int32, n)
		for j := range tt.BBPath {
			if v, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
			tt.BBPath[j] = int32(v)
		}
		if n, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		tt.Mem = make([]MemEvent, n)
		var prev uint64
		for j := range tt.Mem {
			if v, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			addr := uint64(int64(prev) + d)
			prev = addr
			var sk [2]byte
			if _, err := io.ReadFull(br, sk[:]); err != nil {
				return nil, err
			}
			tt.Mem[j] = MemEvent{Instr: int32(v), Addr: addr, Size: sk[0], Kind: sk[1]}
		}
		if n, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		tt.Acc = make([]AccCall, n)
		for j := range tt.Acc {
			name, err := getStr()
			if err != nil {
				return nil, err
			}
			np, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			params := make([]int64, np)
			for k := range params {
				if params[k], err = binary.ReadVarint(br); err != nil {
					return nil, err
				}
			}
			tt.Acc[j] = AccCall{Name: name, Params: params}
		}
		if n, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		tt.Comm = make([]CommEvent, n)
		for j := range tt.Comm {
			if v, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
			p, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			tt.Comm[j] = CommEvent{Instr: int32(v), Partner: int32(p)}
		}
		t.Tiles = append(t.Tiles, tt)
	}
	return t, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
