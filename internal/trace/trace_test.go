package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Kernel: "vecadd",
		Tiles: []*TileTrace{
			{
				Tile:      0,
				BBPath:    []int32{0, 2, 2, 2, 1},
				Mem:       []MemEvent{{Instr: 3, Addr: 4096, Size: 8, Kind: KindLoad}, {Instr: 7, Addr: 8192, Size: 8, Kind: KindStore}},
				Acc:       []AccCall{{Name: "acc_sgemm", Params: []int64{64, 64, 64}}},
				DynInstrs: 46,
			},
			{
				Tile:      1,
				BBPath:    []int32{0, 1},
				Mem:       []MemEvent{{Instr: 5, Addr: 100, Size: 4, Kind: KindAtomic}},
				DynInstrs: 9,
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Kernel != tr.Kernel || len(got.Tiles) != len(tr.Tiles) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Tiles {
		w, g := tr.Tiles[i], got.Tiles[i]
		if w.Tile != g.Tile || w.DynInstrs != g.DynInstrs {
			t.Errorf("tile %d header mismatch", i)
		}
		if !reflect.DeepEqual(w.BBPath, g.BBPath) {
			t.Errorf("tile %d bbpath mismatch: %v vs %v", i, w.BBPath, g.BBPath)
		}
		if !reflect.DeepEqual(w.Mem, g.Mem) {
			t.Errorf("tile %d mem mismatch: %v vs %v", i, w.Mem, g.Mem)
		}
		if len(w.Acc) != len(g.Acc) {
			t.Fatalf("tile %d acc count mismatch", i)
		}
		for j := range w.Acc {
			if w.Acc[j].Name != g.Acc[j].Name || !reflect.DeepEqual(w.Acc[j].Params, g.Acc[j].Params) {
				t.Errorf("tile %d acc %d mismatch", i, j)
			}
		}
	}
}

func TestEncodedSizeMatchesWrite(t *testing.T) {
	tr := sampleTrace()
	sz, err := tr.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if sz != int64(buf.Len()) {
		t.Errorf("EncodedSize = %d, written = %d", sz, buf.Len())
	}
}

func TestTotals(t *testing.T) {
	tr := sampleTrace()
	if tr.TotalDynInstrs() != 55 {
		t.Errorf("TotalDynInstrs = %d, want 55", tr.TotalDynInstrs())
	}
	if tr.TotalMemEvents() != 3 {
		t.Errorf("TotalMemEvents = %d, want 3", tr.TotalMemEvents())
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated stream.
	var buf bytes.Buffer
	if _, err := sampleTrace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should fail")
	}
}

// TestDeltaEncodingProperty checks round-tripping of arbitrary address
// streams, including address deltas that go backwards and wrap widely.
func TestDeltaEncodingProperty(t *testing.T) {
	f := func(addrs []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := &TileTrace{Tile: 0}
		for i, a := range addrs {
			// Keep addresses in a plausible 48-bit space so the int64 delta
			// arithmetic used by the format is exact.
			a &= (1 << 47) - 1
			tt.Mem = append(tt.Mem, MemEvent{
				Instr: int32(i % 1024),
				Addr:  a,
				Size:  uint8(1 << (rng.Intn(4))),
				Kind:  uint8(rng.Intn(3)),
			})
		}
		tr := &Trace{Kernel: "p", Tiles: []*TileTrace{tt}}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(tt.Mem) == 0 {
			return len(got.Tiles[0].Mem) == 0
		}
		return reflect.DeepEqual(got.Tiles[0].Mem, tt.Mem)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBBPathProperty checks arbitrary control-flow paths survive round trips.
func TestBBPathProperty(t *testing.T) {
	f := func(path []int32) bool {
		for i := range path {
			if path[i] < 0 {
				path[i] = -path[i]
			}
		}
		tr := &Trace{Kernel: "p", Tiles: []*TileTrace{{BBPath: path}}}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		g := got.Tiles[0].BBPath
		if len(path) == 0 {
			return len(g) == 0
		}
		return reflect.DeepEqual(g, path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
