package ddg

import (
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/ir"
)

func analyzeKernel(t *testing.T, src string) Estimate {
	t.Helper()
	mod, err := cc.Compile(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	return Build(mod.Func("kernel")).Estimate(UnitLatency)
}

func TestSerialChainHasNoILP(t *testing.T) {
	// A fully serial dependence chain: critical path == node count for the
	// chain, ILP near 1.
	est := analyzeKernel(t, `
void kernel(long* out, long x) {
  long a = x + 1;
  long b = a * 3;
  long c = b - 7;
  long d = c * c;
  out[0] = d;
}
`)
	var body BlockAnalysis
	for _, b := range est.Blocks {
		if b.Nodes > body.Nodes {
			body = b
		}
	}
	if body.ILP > 1.7 {
		t.Errorf("serial chain reports ILP %.2f, want ~1", body.ILP)
	}
}

func TestParallelWorkHasHighILP(t *testing.T) {
	est := analyzeKernel(t, `
void kernel(long* out, long x, long y) {
  out[0] = x + 1;
  out[1] = y + 2;
  out[2] = x * 3;
  out[3] = y * 4;
  out[4] = x - 5;
  out[5] = y - 6;
}
`)
	if est.MaxILP < 2.5 {
		t.Errorf("independent statements report MaxILP %.2f, want > 2.5", est.MaxILP)
	}
}

func TestLoopCarriedRecurrence(t *testing.T) {
	// The accumulator chain acc += ... is the loop recurrence; the induction
	// variable is another. MinII must be positive and below the block's
	// critical path for a body with independent work.
	est := analyzeKernel(t, `
void kernel(double* A, double* out, long n) {
  double acc = 0.0;
  for (long i = 0; i < n; i++) {
    acc += A[i] * 2.0 + 1.0;
  }
  out[0] = acc;
}
`)
	if est.MinII <= 0 {
		t.Fatal("loop kernel reports no recurrence")
	}
	// Reduction recurrence: phi -> fadd chain, a short II.
	if est.MinII > 6 {
		t.Errorf("MinII = %d, implausibly long for an add recurrence", est.MinII)
	}
}

func TestRecurrenceFreeLoopBody(t *testing.T) {
	// vecadd's only recurrences are the induction variable; the value
	// computation is fully parallel across iterations, so MinII is tiny.
	est := analyzeKernel(t, `
void kernel(double* A, double* B, double* C, long n) {
  for (long i = 0; i < n; i++) {
    C[i] = A[i] + B[i];
  }
}
`)
	if est.MinII <= 0 || est.MinII > 3 {
		t.Errorf("vecadd MinII = %d, want 1-3 (induction only)", est.MinII)
	}
}

func TestLatencyModelChangesEstimate(t *testing.T) {
	src := `
void kernel(double* out, double x) {
  out[0] = x * x * x * x;
}
`
	mod, err := cc.Compile(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	g := Build(mod.Func("kernel"))
	unit := g.Estimate(UnitLatency)
	heavy := g.Estimate(func(in *ir.Instr) int64 {
		if in.Op == ir.OpFMul {
			return 4
		}
		return 1
	})
	var unitCP, heavyCP int64
	for i := range unit.Blocks {
		if unit.Blocks[i].CriticalPath > unitCP {
			unitCP = unit.Blocks[i].CriticalPath
		}
		if heavy.Blocks[i].CriticalPath > heavyCP {
			heavyCP = heavy.Blocks[i].CriticalPath
		}
	}
	if heavyCP <= unitCP {
		t.Errorf("4-cycle multiplies should lengthen the critical path: %d vs %d", heavyCP, unitCP)
	}
}
