package ddg

import "mosaicsim/internal/ir"

// The paper notes the compiler's dependency graphs can be analyzed directly
// "for lightweight performance estimation" (§II) before any trace exists.
// This file implements that static analysis: per-block critical paths and
// ILP bounds under a latency model, the cheapest possible early-stage
// estimate of whether a kernel is dependence-limited.

// LatencyModel gives a static per-instruction latency for analysis.
type LatencyModel func(in *ir.Instr) int64

// UnitLatency treats every instruction as one cycle (a pure dataflow-ILP
// measure).
func UnitLatency(*ir.Instr) int64 { return 1 }

// BlockAnalysis is the static estimate for one basic block.
type BlockAnalysis struct {
	Block *ir.Block
	// Nodes is the static instruction count.
	Nodes int
	// CriticalPath is the longest latency chain through one dynamic
	// instance of the block (intra-DBB edges only).
	CriticalPath int64
	// LoopCarried is the longest chain ending at a value consumed by the
	// next instance of this block (its recurrence bound): for a loop body
	// this is the minimum initiation interval imposed by data flow.
	LoopCarried int64
	// ILP is Nodes·latency / CriticalPath — the parallelism available to an
	// ideal machine within one instance.
	ILP float64
}

// Analyze computes per-block static estimates under the latency model.
func (g *Graph) Analyze(lat LatencyModel) []BlockAnalysis {
	out := make([]BlockAnalysis, 0, len(g.Blocks))
	for _, bg := range g.Blocks {
		a := BlockAnalysis{Block: bg.Block, Nodes: len(bg.Nodes)}
		base := bg.Block.Instrs[0].Idx
		finish := make([]int64, len(bg.Nodes)) // completion time per node
		var total int64
		for pos, n := range bg.Nodes {
			l := lat(n.Instr)
			total += l
			start := int64(0)
			for _, d := range n.Deps {
				if d.Kind == DepIntra {
					if f := finish[d.Instr-base]; f > start {
						start = f
					}
				}
			}
			finish[pos] = start + l
			if finish[pos] > a.CriticalPath {
				a.CriticalPath = finish[pos]
			}
		}
		if a.CriticalPath > 0 {
			a.ILP = float64(total) / float64(a.CriticalPath)
		}
		out = append(out, a)
	}
	g.fillRecurrences(lat, out)
	return out
}

// fillRecurrences computes each block's loop-carried recurrence: for every
// phi, the longest latency chain from the phi to the producer feeding it
// back around the loop. Chains may span blocks (the increment usually lives
// in the latch), so this is a function-level longest-path DP over the
// phi-stripped (acyclic) dependence graph, seeded at one phi at a time.
func (g *Graph) fillRecurrences(lat LatencyModel, out []BlockAnalysis) {
	n := g.Fn.NumInstrs()
	// Dependence edges def -> user, excluding phi incoming edges (which are
	// the only cycles).
	type edgeT struct{ def, user int }
	var edges []edgeT
	for _, bg := range g.Blocks {
		for _, node := range bg.Nodes {
			for _, d := range node.Deps {
				edges = append(edges, edgeT{d.Instr, node.Instr.Idx})
			}
		}
	}
	lats := make([]int64, n)
	for _, bg := range g.Blocks {
		for _, node := range bg.Nodes {
			lats[node.Instr.Idx] = lat(node.Instr)
		}
	}
	dist := make([]int64, n)
	for bi, bg := range g.Blocks {
		for _, node := range bg.Nodes {
			if node.Instr.Op != ir.OpPhi {
				continue
			}
			phiIdx := node.Instr.Idx
			for i := range dist {
				dist[i] = -1
			}
			dist[phiIdx] = lats[phiIdx]
			// Relax; the phi-stripped graph is acyclic, so |blocks|+2
			// passes over layout order converge.
			for pass := 0; pass < len(g.Blocks)+2; pass++ {
				changed := false
				for _, e := range edges {
					if dist[e.def] < 0 {
						continue
					}
					cand := dist[e.def] + lats[e.user]
					if cand > dist[e.user] {
						dist[e.user] = cand
						changed = true
					}
				}
				if !changed {
					break
				}
			}
			for _, pc := range node.PhiCases {
				if pc.Dep == nil {
					continue
				}
				// Only back edges count: the producing instruction must be
				// reachable FROM the phi (i.e. part of the cycle).
				if d := dist[pc.Dep.Instr]; d > out[bi].LoopCarried {
					out[bi].LoopCarried = d
				}
			}
		}
	}
}

// Estimate is the whole-kernel static summary.
type Estimate struct {
	Blocks []BlockAnalysis
	// MaxILP is the highest per-block ILP (the best case for wide issue).
	MaxILP float64
	// MinII is the largest loop-carried recurrence across blocks — a lower
	// bound on cycles per iteration of the hottest loop on any machine.
	MinII int64
}

// Estimate runs Analyze and summarizes.
func (g *Graph) Estimate(lat LatencyModel) Estimate {
	e := Estimate{Blocks: g.Analyze(lat)}
	for _, b := range e.Blocks {
		if b.ILP > e.MaxILP {
			e.MaxILP = b.ILP
		}
		if b.LoopCarried > e.MinII {
			e.MinII = b.LoopCarried
		}
	}
	return e
}
