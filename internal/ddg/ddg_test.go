package ddg

import (
	"strings"
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/ir"
)

const vecAddC = `
void kernel(double* A, double* B, double* C, long n) {
  for (long i = 0; i < n; i++) {
    C[i] = A[i] + B[i];
  }
}
`

func buildVecAdd(t *testing.T) *Graph {
	t.Helper()
	mod, err := cc.Compile(vecAddC, "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	return Build(mod.Func("kernel"))
}

func TestGraphCoversAllInstructions(t *testing.T) {
	g := buildVecAdd(t)
	total := 0
	for _, bg := range g.Blocks {
		total += len(bg.Nodes)
		if len(bg.Nodes) != len(bg.Block.Instrs) {
			t.Errorf("block %s: %d nodes for %d instructions", bg.Block.Ident, len(bg.Nodes), len(bg.Block.Instrs))
		}
		if bg.TermPos != len(bg.Nodes)-1 {
			t.Errorf("block %s: TermPos = %d", bg.Block.Ident, bg.TermPos)
		}
		if !bg.Nodes[bg.TermPos].Instr.IsTerminator() {
			t.Errorf("block %s: terminator node is %s", bg.Block.Ident, bg.Nodes[bg.TermPos].Instr.Op)
		}
	}
	if total != g.Fn.NumInstrs() {
		t.Errorf("graph has %d nodes, function has %d instructions", total, g.Fn.NumInstrs())
	}
}

func TestLoopBodyDeps(t *testing.T) {
	g := buildVecAdd(t)
	// Find the loop body block: it contains the store.
	var body *BlockGraph
	for _, bg := range g.Blocks {
		for _, n := range bg.Nodes {
			if n.Instr.Op == ir.OpStore {
				body = bg
			}
		}
	}
	if body == nil {
		t.Fatal("no block with a store")
	}
	if len(body.MemOps) != 3 {
		t.Errorf("loop body MemOps = %d, want 3 (2 loads + 1 store)", len(body.MemOps))
	}
	// The store must depend intra-DBB on the fadd and the gep.
	var storeNode *Node
	for i, n := range body.Nodes {
		if n.Instr.Op == ir.OpStore {
			storeNode = &body.Nodes[i]
		}
	}
	if len(storeNode.Deps) != 2 {
		t.Fatalf("store deps = %d, want 2", len(storeNode.Deps))
	}
	for _, d := range storeNode.Deps {
		if d.Kind != DepIntra {
			t.Errorf("store dep on instr %d should be intra-DBB", d.Instr)
		}
	}
	// The loop-header phi must have one case per incoming edge; the back-edge
	// case depends (cross-DBB) on the increment.
	var phiNode *Node
	for _, bg := range g.Blocks {
		for i, n := range bg.Nodes {
			if n.Instr.Op == ir.OpPhi {
				phiNode = &bg.Nodes[i]
			}
		}
	}
	if phiNode == nil {
		t.Fatal("loop has no phi (induction variable)")
	}
	if len(phiNode.PhiCases) != 2 {
		t.Fatalf("phi cases = %d, want 2", len(phiNode.PhiCases))
	}
	foundBackEdge := false
	for _, pc := range phiNode.PhiCases {
		if pc.Dep != nil {
			if pc.Dep.Kind != DepCross {
				t.Error("loop-carried phi dep must be cross-DBB")
			}
			foundBackEdge = true
		}
	}
	if !foundBackEdge {
		t.Error("no loop-carried phi dependence found")
	}
}

func TestCrossBlockDepKind(t *testing.T) {
	src := `
void kernel(long* out, long a) {
  long x = a * 2;
  if (a > 0) {
    out[0] = x + 1;
  }
}
`
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	g := Build(mod.Func("kernel"))
	// The add inside the if uses the mul from the entry block: cross edge.
	found := false
	for _, bg := range g.Blocks {
		for _, n := range bg.Nodes {
			if n.Instr.Op != ir.OpAdd {
				continue
			}
			for _, d := range n.Deps {
				if prod := g.Fn.InstrByIdx(d.Instr); prod.Op == ir.OpMul {
					if d.Kind != DepCross {
						t.Error("cross-block dependence misclassified as intra")
					}
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("cross-block mul->add dependence not found")
	}
}

func TestStats(t *testing.T) {
	g := buildVecAdd(t)
	s := g.Stats()
	if s.Blocks != len(g.Fn.Blocks) {
		t.Errorf("Blocks = %d", s.Blocks)
	}
	if s.Nodes != g.Fn.NumInstrs() {
		t.Errorf("Nodes = %d, want %d", s.Nodes, g.Fn.NumInstrs())
	}
	if s.MemOps != 3 {
		t.Errorf("MemOps = %d, want 3", s.MemOps)
	}
	if s.IntraEdges == 0 || s.PhiEdges == 0 {
		t.Errorf("edge counts look empty: %+v", s)
	}
}

func TestDOTOutput(t *testing.T) {
	g := buildVecAdd(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "cluster_0", "style=dashed", "style=dotted", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("DOT output not closed")
	}
}

func TestConstOperandsProduceNoDeps(t *testing.T) {
	src := "void kernel(long* out) { out[0] = 1 + 2; }"
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	g := Build(mod.Func("kernel"))
	for _, bg := range g.Blocks {
		for _, n := range bg.Nodes {
			if n.Instr.Op == ir.OpStore {
				// store of constant-folded or computed value; its deps must
				// reference only instructions, never constants.
				for _, d := range n.Deps {
					if g.Fn.InstrByIdx(d.Instr) == nil {
						t.Errorf("dep on nonexistent instruction %d", d.Instr)
					}
				}
			}
		}
	}
}
