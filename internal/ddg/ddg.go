// Package ddg builds MosaicSim-Go's static Data Dependence Graph (§II-A of
// the paper): per-basic-block graphs whose nodes are static instructions and
// whose edges capture data flow within and across dynamic basic blocks
// (DBBs), with the block terminator identified as the control-flow launch
// point for successor DBBs.
//
// The simulator replays the graph dynamically: a DBB is stamped out per
// control-trace entry, intra-block edges connect nodes inside one DBB, and
// cross edges bind to the most recent dynamic instance of the producing
// static instruction (covering loop-carried phis and cross-block values).
package ddg

import (
	"fmt"
	"sort"
	"strings"

	"mosaicsim/internal/ir"
)

// DepKind classifies a data-dependence edge.
type DepKind uint8

const (
	// DepIntra is an edge from an earlier instruction in the same DBB.
	DepIntra DepKind = iota
	// DepCross is an edge to the most recent dynamic instance of a static
	// instruction outside this DBB (cross-block values, loop-carried phis).
	DepCross
)

// Dep is one data dependence of an instruction on a producing instruction,
// identified by its static instruction index within the function.
type Dep struct {
	Kind  DepKind
	Instr int
}

// PhiCase is a phi node's dependence for one incoming control-flow edge; Dep
// is nil when the incoming value is a constant, parameter, or global.
type PhiCase struct {
	FromBlock int
	Dep       *Dep
}

// Node is the static-DDG node for one instruction.
type Node struct {
	Instr    *ir.Instr
	Deps     []Dep     // non-phi data dependencies
	PhiCases []PhiCase // phi dependencies, selected by the traced edge
}

// BlockGraph is the per-basic-block slice of the DDG.
type BlockGraph struct {
	Block *ir.Block
	Nodes []Node
	// MemOps lists positions (into Nodes) of memory instructions in static
	// order; the simulator pops traced addresses for them at DBB launch.
	MemOps []int
	// TermPos is the position of the terminator node within Nodes.
	TermPos int
}

// Graph is the static DDG of one function.
type Graph struct {
	Fn     *ir.Function
	Blocks []*BlockGraph // indexed by block ID
}

// Build constructs the static DDG. The function must verify.
func Build(f *ir.Function) *Graph {
	f.AssignIDs()
	g := &Graph{Fn: f, Blocks: make([]*BlockGraph, len(f.Blocks))}
	for _, b := range f.Blocks {
		bg := &BlockGraph{Block: b, TermPos: len(b.Instrs) - 1}
		for pos, in := range b.Instrs {
			n := Node{Instr: in}
			if in.Op == ir.OpPhi {
				for i, from := range in.Incoming {
					pc := PhiCase{FromBlock: from.ID}
					if d, ok := in.Args[i].(*ir.Instr); ok {
						// A phi's producers are always outside this dynamic
						// instance of the block: either a different block or
						// the previous iteration of this one.
						pc.Dep = &Dep{Kind: DepCross, Instr: d.Idx}
					}
					n.PhiCases = append(n.PhiCases, pc)
				}
			} else {
				for _, a := range in.Args {
					d, ok := a.(*ir.Instr)
					if !ok {
						continue
					}
					kind := DepCross
					if d.Parent == b && posOf(b, d) < pos {
						kind = DepIntra
					}
					n.Deps = append(n.Deps, Dep{Kind: kind, Instr: d.Idx})
				}
			}
			if in.IsMemory() {
				bg.MemOps = append(bg.MemOps, pos)
			}
			bg.Nodes = append(bg.Nodes, n)
		}
		g.Blocks[b.ID] = bg
	}
	return g
}

func posOf(b *ir.Block, in *ir.Instr) int {
	// Instruction Idx values are assigned in layout order, so relative order
	// within one block follows from Idx.
	return in.Idx - b.Instrs[0].Idx
}

// Stats summarizes graph shape (reported by the DDG tool).
type Stats struct {
	Blocks     int
	Nodes      int
	IntraEdges int
	CrossEdges int
	PhiEdges   int
	MemOps     int
}

// Stats computes summary statistics for the graph.
func (g *Graph) Stats() Stats {
	s := Stats{Blocks: len(g.Blocks)}
	for _, bg := range g.Blocks {
		s.Nodes += len(bg.Nodes)
		s.MemOps += len(bg.MemOps)
		for _, n := range bg.Nodes {
			for _, d := range n.Deps {
				if d.Kind == DepIntra {
					s.IntraEdges++
				} else {
					s.CrossEdges++
				}
			}
			s.PhiEdges += len(n.PhiCases)
		}
	}
	return s
}

// DOT renders the static DDG in Graphviz format: one cluster per basic block,
// solid edges for intra-DBB data flow, dashed for cross-DBB flow, and dotted
// block-level control edges from terminators to successor blocks.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontsize=10];\n", g.Fn.Ident)
	name := func(idx int) string { return fmt.Sprintf("n%d", idx) }
	for _, bg := range g.Blocks {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", bg.Block.ID, bg.Block.Ident)
		for _, n := range bg.Nodes {
			label := n.Instr.Op.String()
			if n.Instr.Ident != "" {
				label = "%" + n.Instr.Ident + " = " + label
			}
			if n.Instr.Op == ir.OpCall {
				label += " " + n.Instr.Callee
			}
			shape := ""
			if n.Instr.IsTerminator() {
				shape = ", style=bold"
			}
			fmt.Fprintf(&sb, "    %s [label=%q%s];\n", name(n.Instr.Idx), label, shape)
		}
		sb.WriteString("  }\n")
	}
	for _, bg := range g.Blocks {
		for _, n := range bg.Nodes {
			for _, d := range n.Deps {
				style := "solid"
				if d.Kind == DepCross {
					style = "dashed"
				}
				fmt.Fprintf(&sb, "  %s -> %s [style=%s];\n", name(d.Instr), name(n.Instr.Idx), style)
			}
			for _, pc := range n.PhiCases {
				if pc.Dep != nil {
					fmt.Fprintf(&sb, "  %s -> %s [style=dashed, label=\"from %d\"];\n", name(pc.Dep.Instr), name(n.Instr.Idx), pc.FromBlock)
				}
			}
		}
		term := bg.Nodes[bg.TermPos].Instr
		targets := append([]*ir.Block(nil), term.Targets...)
		sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
		for _, t := range targets {
			fmt.Fprintf(&sb, "  %s -> %s [style=dotted, color=gray];\n", name(term.Idx), name(t.Instrs[0].Idx))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
