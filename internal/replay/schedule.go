// Package replay implements schedule-capture timing replay: during one full
// timing simulation a compact event schedule is recorded (accelerator
// invocations with their certified quiet windows, per-core stall rates, the
// DRAM arrival log, and the final Result); a later run whose configuration
// differs only in *provably inert or rigidly shiftable* timing parameters is
// then answered analytically from the schedule — bit-exactly equal to what a
// full re-simulation would produce — instead of re-stepping cycle by cycle.
//
// The engine is deliberately conservative. Classify admits exactly three
// delta families, each with a machine-checkable soundness argument:
//
//   - inert knobs: a changed parameter that the recorded run provably never
//     read (binding counts derived from the recorded Result are zero — e.g.
//     MispredictPenalty with zero mispredicts, a cache latency with zero
//     accesses, the never-consulted mem-class latency). By determinism and
//     first-divergence induction the re-run is identical, so the recorded
//     Result is returned verbatim.
//   - dram-refit: SimpleDRAM bandwidth/epoch changes with recorded traffic.
//     The recorded run never throttled, and re-bucketing the recorded
//     arrival log under the new epoch budget shows the new run would not
//     throttle either — so every request still completes at arrival +
//     MinLatency and timing is unchanged.
//   - accel-shift: an accelerator model delta. Each recorded invocation is
//     re-invoked against the new model with the recorded inputs; a latency
//     delta is sound only when the invocation's completion was certified as
//     the sole event ending a globally quiet window (soc.ScheduleRecorder),
//     the shifted completion stays strictly inside that window's margin,
//     and the DRAM model admits time translation (banked: banks quiesce
//     within the margin; simple: the shifted arrival log re-fits the epoch
//     budget). Everything after the completion is then a rigid time
//     translation, and the Result adjustment is exact arithmetic.
//
// Everything else — anything that could reorder the schedule — falls back to
// full simulation with a declared reason: never a silently wrong number.
package replay

import (
	"encoding/json"
	"fmt"

	"mosaicsim/internal/config"
	"mosaicsim/internal/core"
	"mosaicsim/internal/soc"
)

// Invocation is one recorded accelerator call: the model inputs, the timing
// the recorded run observed, and — when the cycle skipper certified the
// window it terminated — the quiet-window evidence an accel-shift replay
// needs.
type Invocation struct {
	Name       string
	Params     []int64
	Concurrent int
	Issue      int64 // cycle the call was issued
	Complete   int64 // Issue + Cycles
	Cycles     int64
	Bytes      int64
	EnergyPJ   float64

	// Certified invocations completed as the sole event ending a globally
	// quiet window starting at QuietFrom; CoreStalls holds each core's
	// per-cycle stall increments across that window (Cores order, zero for
	// retired cores), the rate at which stall counters scale when the window
	// is stretched or shrunk by a latency delta.
	Certified  bool
	QuietFrom  int64
	CoreStalls []soc.StallSample
}

// Schedule is everything one recorded run exposes for analytic re-evaluation:
// the resolved structural configuration it ran under, its full Result, and
// the recorded event evidence.
type Schedule struct {
	Tiles []soc.ResolvedTile // resolved per-tile configs, tile-ID order
	Mem   config.MemConfig
	NoC   *config.NoCConfig

	Result  soc.Result
	Stepped int64
	Skipped int64

	ClockMHz  int // system (max tile) clock: DRAM budget math
	LineBytes int // DRAM line size: DRAM budget math
	HopsTotal int64
	// FabricLat is the effective base fabric latency the run was recorded
	// under. It is structural: a latency delta reorders message arrivals,
	// so schedules recorded at different fabric latencies must never alias
	// (old persisted schedules decode as 0 and conservatively mismatch the
	// default of 1).
	FabricLat int64

	Invocations  []Invocation
	DRAMArrivals []int64 // SimpleDRAM arrival cycles, arrival order
}

// Recorder implements soc.ScheduleRecorder: it accumulates invocations and
// quiet-window certificates during a run, and Build assembles the Schedule
// once the run completes.
type Recorder struct {
	invs []Invocation
}

// NewRecorder returns an empty recorder; attach it with soc.SetRecorder
// before Run.
func NewRecorder() *Recorder { return &Recorder{} }

// RecordInvoke implements soc.ScheduleRecorder.
func (r *Recorder) RecordInvoke(name string, params []int64, concurrent int, issue, complete int64, res soc.AccelResult) {
	r.invs = append(r.invs, Invocation{
		Name:       name,
		Params:     append([]int64(nil), params...),
		Concurrent: concurrent,
		Issue:      issue,
		Complete:   complete,
		Cycles:     res.Cycles,
		Bytes:      res.Bytes,
		EnergyPJ:   res.EnergyPJ,
	})
}

// RecordQuietJump implements soc.ScheduleRecorder: it attaches the window
// certificate to the unique in-flight invocation completing at target. If
// the match is not unique (two recorded invocations sharing the completion
// cycle, which the sole-event certificate upstream should already exclude),
// none is certified — conservatism costs only a fallback.
func (r *Recorder) RecordQuietJump(from, target int64, coreStalls []soc.StallSample) {
	match := -1
	for i := range r.invs {
		inv := &r.invs[i]
		if inv.Complete == target && inv.Issue <= from && !inv.Certified {
			if match >= 0 {
				return
			}
			match = i
		}
	}
	if match < 0 {
		return
	}
	inv := &r.invs[match]
	inv.Certified = true
	inv.QuietFrom = from
	inv.CoreStalls = append([]soc.StallSample(nil), coreStalls...)
}

// Build assembles the Schedule for a completed run: the resolved structural
// config (deep-copied — callers may mutate their config between sweep legs),
// the Result, and the recorded evidence read back from the system.
func (r *Recorder) Build(cfg *config.SystemConfig, sys *soc.System, res soc.Result) (*Schedule, error) {
	rts, err := soc.ExpandTiles(cfg)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	maxClock := 0
	for _, rt := range rts {
		if rt.Cfg.ClockMHz > maxClock {
			maxClock = rt.Cfg.ClockMHz
		}
	}
	s := &Schedule{
		Tiles:        deepCopyTiles(rts),
		Mem:          deepCopyMem(cfg.Mem),
		NoC:          copyNoC(cfg.NoC),
		Result:       deepCopyResult(res),
		Stepped:      sys.SteppedCycles,
		Skipped:      sys.SkippedCycles,
		ClockMHz:     maxClock,
		LineBytes:    cfg.Mem.L1.LineBytes,
		HopsTotal:    sys.Fabric.HopsTotal(),
		FabricLat:    cfg.EffectiveFabricLatency(),
		Invocations:  r.invs,
		DRAMArrivals: append([]int64(nil), sys.Hier.DRAMAccessLog()...),
	}
	return s, nil
}

// deepCopyTiles copies resolved tiles through JSON so no map (Latencies,
// FunctionalUnits) is shared with the caller's live config.
func deepCopyTiles(rts []soc.ResolvedTile) []soc.ResolvedTile {
	b, err := json.Marshal(rts)
	if err != nil {
		return append([]soc.ResolvedTile(nil), rts...)
	}
	var out []soc.ResolvedTile
	if json.Unmarshal(b, &out) != nil {
		return append([]soc.ResolvedTile(nil), rts...)
	}
	return out
}

func deepCopyMem(m config.MemConfig) config.MemConfig {
	if m.L2 != nil {
		l2 := *m.L2
		m.L2 = &l2
	}
	if m.LLC != nil {
		llc := *m.LLC
		m.LLC = &llc
	}
	return m
}

func copyNoC(n *config.NoCConfig) *config.NoCConfig {
	if n == nil {
		return nil
	}
	c := *n
	return &c
}

func deepCopyResult(r soc.Result) soc.Result {
	r.CoreStats = append([]core.Stats(nil), r.CoreStats...)
	return r
}
