package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"mosaicsim/internal/config"
	"mosaicsim/internal/mem"
	"mosaicsim/internal/soc"
)

// Decision is the classifier's verdict on one config delta: either the delta
// is replayable (Eligible, with the per-invocation evaluation payload) or it
// must fall back to full simulation for the stated Reason.
type Decision struct {
	Eligible bool
	// Families names the delta families the eligible replay composes:
	// "identical", "inert-knob", "dram-refit", "accel-shift".
	Families []string
	// Reason explains a fallback (empty when Eligible).
	Reason string

	newInvs    []newInv
	shifts     []shiftPoint
	deltaTotal int64
}

// newInv is the new accelerator model's answer for one recorded invocation.
type newInv struct {
	Cycles   int64
	Bytes    int64
	EnergyPJ float64
	Delta    int64 // Cycles - recorded Cycles
}

// shiftPoint applies a rigid time shift Delta to everything at or after the
// recorded cycle At (a certified invocation's recorded completion).
type shiftPoint struct {
	At    int64
	Delta int64
}

// shiftAt returns the cumulative shift applying to recorded cycle t.
func shiftAt(shifts []shiftPoint, t int64) int64 {
	var a int64
	for _, sp := range shifts {
		if sp.At <= t {
			a += sp.Delta
		}
	}
	return a
}

// Classify decides whether the delta between a recorded schedule and a new
// (config, accelerator models, cycle limit) triple is replayable. It is the
// explicit eligibility check the replay contract requires: every admitted
// delta carries a soundness argument checkable from recorded evidence, and
// everything else falls back with a reason.
func Classify(s *Schedule, cfg *config.SystemConfig, accels map[string]soc.AccelModel, limit int64) Decision {
	fb := func(format string, args ...any) Decision {
		return Decision{Reason: fmt.Sprintf(format, args...)}
	}
	newRts, err := soc.ExpandTiles(cfg)
	if err != nil {
		return fb("config: %v", err)
	}
	if len(newRts) != len(s.Tiles) {
		return fb("structural: %d tiles recorded, %d requested", len(s.Tiles), len(newRts))
	}
	if len(s.Result.CoreStats) != len(s.Tiles) {
		return fb("schedule: core stats missing")
	}
	// Structural gate: the canonical forms must match exactly. The schedule
	// cache already keys on StructHash, but Classify re-proves it so direct
	// callers get the same guarantee (and hash collisions cannot admit a
	// structurally different config).
	oldCanon, err := canonJSON(s.Tiles, s.Mem, s.NoC, s.FabricLat)
	if err != nil {
		return fb("schedule: %v", err)
	}
	newCanon, err := canonJSON(newRts, cfg.Mem, cfg.NoC, cfg.EffectiveFabricLatency())
	if err != nil {
		return fb("config: %v", err)
	}
	if !bytes.Equal(oldCanon, newCanon) {
		return fb("structural: configurations differ beyond replayable timing knobs")
	}

	fams := map[string]bool{}
	// Per-core knobs: eligible only when the recorded run provably never
	// read them (binding counts from the recorded Result are zero).
	for i := range newRts {
		o, n := s.Tiles[i].Cfg, newRts[i].Cfg
		st := s.Result.CoreStats[i]
		if o.MispredictPenalty != n.MispredictPenalty {
			if st.Mispredict != 0 {
				return fb("bound knob: tile %d mispredict_penalty was read (%d mispredicts)", i, st.Mispredict)
			}
			fams["inert-knob"] = true
		}
		if o.AtomicExtraLatency != n.AtomicExtraLatency {
			if st.Atomics != 0 {
				return fb("bound knob: tile %d atomic_extra_latency was read (%d atomics)", i, st.Atomics)
			}
			fams["inert-knob"] = true
		}
		if o.Latency(config.ClassMem) != n.Latency(config.ClassMem) {
			// Never consulted: memory ops take their timing from the
			// hierarchy, not the per-class latency table.
			fams["inert-knob"] = true
		}
	}

	// Memory-hierarchy knobs.
	om, nm := s.Mem, cfg.Mem
	r := s.Result
	cacheKnob := func(level string, o, n *config.CacheConfig, st mem.CacheStats) (Decision, bool) {
		if o == nil || n == nil || o.LatencyCycles == n.LatencyCycles {
			return Decision{}, true
		}
		if st.Accesses != 0 || st.PrefetchIssued != 0 {
			return fb("bound knob: %s latency_cycles was read (%d accesses)", level, st.Accesses+st.PrefetchIssued), false
		}
		fams["inert-knob"] = true
		return Decision{}, true
	}
	if d, ok := cacheKnob("l1", &om.L1, &nm.L1, r.L1); !ok {
		return d
	}
	if d, ok := cacheKnob("l2", om.L2, nm.L2, r.L2); !ok {
		return d
	}
	if d, ok := cacheKnob("llc", om.LLC, nm.LLC, r.LLC); !ok {
		return d
	}
	dramTraffic := r.DRAM.Reads + r.DRAM.Writebacks
	banked := om.DRAM.Model == config.DRAMBanked
	if om.DRAM.MinLatency != nm.DRAM.MinLatency {
		// The banked model never reads MinLatency; the simple model reads it
		// per request.
		if !banked && dramTraffic != 0 {
			return fb("bound knob: dram min_latency was read (%d requests)", dramTraffic)
		}
		fams["inert-knob"] = true
	}
	refitBudget := false
	if banked {
		if om.DRAM.TCAS != nm.DRAM.TCAS || om.DRAM.TRCD != nm.DRAM.TRCD ||
			om.DRAM.TRP != nm.DRAM.TRP || om.DRAM.TBurst != nm.DRAM.TBurst {
			if dramTraffic != 0 {
				return fb("bound knob: banked DRAM timing was read (%d requests)", dramTraffic)
			}
			fams["inert-knob"] = true
		}
		if om.DRAM.BandwidthGBs != nm.DRAM.BandwidthGBs || om.DRAM.EpochCycles != nm.DRAM.EpochCycles {
			fams["inert-knob"] = true // banked model ignores the bandwidth cap
		}
	} else {
		if om.DRAM.TCAS != nm.DRAM.TCAS || om.DRAM.TRCD != nm.DRAM.TRCD ||
			om.DRAM.TRP != nm.DRAM.TRP || om.DRAM.TBurst != nm.DRAM.TBurst ||
			om.DRAM.Channels != nm.DRAM.Channels || om.DRAM.Banks != nm.DRAM.Banks ||
			om.DRAM.RowBytes != nm.DRAM.RowBytes {
			fams["inert-knob"] = true // simple model ignores the banked set
		}
		if om.DRAM.BandwidthGBs != nm.DRAM.BandwidthGBs || om.DRAM.EpochCycles != nm.DRAM.EpochCycles {
			eo, mo := mem.SimpleDRAMBudget(om.DRAM, s.ClockMHz, s.LineBytes)
			en, mn := mem.SimpleDRAMBudget(nm.DRAM, s.ClockMHz, s.LineBytes)
			switch {
			case eo == en && mo == mn:
				fams["inert-knob"] = true // quantized budget unchanged
			case dramTraffic == 0:
				fams["inert-knob"] = true
			default:
				refitBudget = true
				fams["dram-refit"] = true
			}
		}
	}
	if om.DirInvCycles != nm.DirInvCycles {
		if om.Directory {
			return fb("bound knob: dir_inv_cycles under directory coherence")
		}
		fams["inert-knob"] = true
	}
	if hopCycles(s.NoC) != hopCycles(cfg.NoC) {
		if s.HopsTotal != 0 {
			return fb("bound knob: hop_cycles was read (%d hops)", s.HopsTotal)
		}
		fams["inert-knob"] = true
	}

	// Accelerator models: re-invoke the new model per recorded invocation
	// with the recorded inputs. A latency delta needs the quiet-window
	// certificate plus the translation margin; result-only deltas (bytes,
	// energy) need no certificate — totals are recomputed.
	margin := int64(0)
	if banked {
		// Bounds how far past the window start a bank can stay busy: the
		// worst single-request service time. Old and new agree here (a
		// banked timing delta with traffic already fell back above).
		margin = om.DRAM.TRP + om.DRAM.TRCD + om.DRAM.TCAS + om.DRAM.TBurst
	}
	newInvs := make([]newInv, len(s.Invocations))
	var shifts []shiftPoint
	var dTot int64
	for k, inv := range s.Invocations {
		m := accels[inv.Name]
		if m == nil {
			return fb("accel: no model registered for %q", inv.Name)
		}
		resN, err := m.Invoke(append([]int64(nil), inv.Params...), inv.Concurrent)
		if err != nil {
			return fb("accel: %q invocation %d: %v", inv.Name, k, err)
		}
		ni := newInv{Cycles: resN.Cycles, Bytes: resN.Bytes, EnergyPJ: resN.EnergyPJ, Delta: resN.Cycles - inv.Cycles}
		newInvs[k] = ni
		if ni.Bytes != inv.Bytes || ni.EnergyPJ != inv.EnergyPJ || ni.Delta != 0 {
			fams["accel-shift"] = true
		}
		if ni.Delta == 0 {
			continue
		}
		if !inv.Certified {
			return fb("accel: latency delta on uncertified invocation %q #%d", inv.Name, k)
		}
		// Both the recorded and the shifted completion must land strictly
		// past the quiet window's start plus the DRAM quiesce margin, so the
		// post-completion tail is a rigid translation in both frames (the
		// check uses recorded times and is therefore invariant under the
		// cumulative shift of earlier segments).
		if inv.Complete <= inv.QuietFrom+margin || inv.Issue+ni.Cycles <= inv.QuietFrom+margin {
			return fb("accel: shifted completion of %q #%d leaves the certified quiet margin", inv.Name, k)
		}
		if len(inv.CoreStalls) != len(s.Result.CoreStats) {
			return fb("schedule: stall samples missing for invocation %d", k)
		}
		shifts = append(shifts, shiftPoint{At: inv.Complete, Delta: ni.Delta})
		dTot += ni.Delta
	}
	sort.Slice(shifts, func(i, j int) bool { return shifts[i].At < shifts[j].At })

	// SimpleDRAM translation soundness: shifting requests across the
	// absolute epoch grid (or changing the budget itself) is only inert if
	// the recorded run never throttled and the re-bucketed arrival log stays
	// within the (possibly new) per-epoch budget.
	if !banked && dramTraffic != 0 && (refitBudget || len(shifts) > 0) {
		if r.DRAM.Throttled != 0 {
			return fb("dram: recorded run was bandwidth-throttled (%d stalls)", r.DRAM.Throttled)
		}
		if int64(len(s.DRAMArrivals)) != dramTraffic {
			return fb("dram: arrival log incomplete (%d logged, %d requests)", len(s.DRAMArrivals), dramTraffic)
		}
		en, mn := mem.SimpleDRAMBudget(nm.DRAM, s.ClockMHz, s.LineBytes)
		if !refits(s.DRAMArrivals, shifts, om.DRAM.MinLatency, en, mn) {
			return fb("dram: shifted schedule would exceed the bandwidth budget")
		}
		if len(shifts) > 0 {
			fams["dram-refit"] = true
		}
	}

	// The replayed run must still complete within the new cycle limit; a
	// full simulation would otherwise error out instead of producing it.
	newEff := limit
	if newEff <= 0 {
		newEff = soc.DefaultCycleLimit
	}
	if r.Cycles+dTot > newEff {
		return fb("limit: replayed run needs %d cycles, limit is %d", r.Cycles+dTot, newEff)
	}

	if len(fams) == 0 {
		fams["identical"] = true
	}
	names := make([]string, 0, len(fams))
	for f := range fams {
		names = append(names, f)
	}
	sort.Strings(names)
	return Decision{
		Eligible:   true,
		Families:   names,
		newInvs:    newInvs,
		shifts:     shifts,
		deltaTotal: dTot,
	}
}

// refits re-buckets the recorded arrival log — shifted by the certified
// segments — onto the epoch grid and checks every bucket stays within the
// budget. Bucketing by completion (arrival + MinLatency) matches the model:
// with no throttling, each request is served exactly at its ready tick, so
// bucket(e) <= budget for all e implies — inductively over ready order —
// that the shifted run never throttles either.
func refits(arrivals []int64, shifts []shiftPoint, minLat, epoch, budget int64) bool {
	counts := map[int64]int64{}
	si, acc := 0, int64(0)
	for _, a := range arrivals {
		for si < len(shifts) && shifts[si].At <= a {
			acc += shifts[si].Delta
			si++
		}
		e := (a + acc + minLat) / epoch
		counts[e]++
		if counts[e] > budget {
			return false
		}
	}
	return true
}

func hopCycles(n *config.NoCConfig) int64 {
	if n == nil {
		return 0
	}
	return n.HopCycles
}

// canonJSON renders the canonical form of an already-resolved topology.
func canonJSON(rts []soc.ResolvedTile, m config.MemConfig, noc *config.NoCConfig, fabricLat int64) ([]byte, error) {
	cf := &canonForm{Mem: canonMem(m), NoC: canonNoC(noc), FabricLat: fabricLat}
	for _, rt := range rts {
		cf.Tiles = append(cf.Tiles, canonTile{
			Kind:     rt.Kind,
			Role:     rt.Role,
			MeshSlot: rt.MeshSlot,
			Core:     canonCoreCfg(rt.Cfg),
		})
	}
	return json.Marshal(cf)
}
