package replay

import "mosaicsim/internal/soc"

// Evaluate produces the Result a full re-simulation under the classified
// delta would produce, by exact arithmetic on the recorded schedule. It must
// only be called with an Eligible decision from Classify on the same
// Schedule. The returned stepped/skipped pair mirrors the cycle-skipper
// accounting of the hypothetical run: stepped cycles are identical (every
// shift happens inside an elided quiet window), skipped cycles absorb the
// total shift.
func Evaluate(s *Schedule, d Decision) (soc.Result, int64, int64) {
	r := deepCopyResult(s.Result)

	// Rigid time shifts from certified accelerator-latency deltas. The
	// global finish is at or after every recorded completion, so it moves by
	// the full delta; each core's last-step cycle moves by the cumulative
	// shift of the segments it lived through; stall counters accrue (or shed)
	// the certified window's per-cycle increments over each stretched
	// (shrunk) window.
	if d.deltaTotal != 0 || len(d.shifts) > 0 {
		r.Cycles += d.deltaTotal
		for i := range r.CoreStats {
			r.CoreStats[i].Cycles += shiftAt(d.shifts, s.Result.CoreStats[i].Cycles)
		}
		for k, inv := range s.Invocations {
			delta := d.newInvs[k].Delta
			if delta == 0 || !inv.Certified {
				continue
			}
			for i := range r.CoreStats {
				st := inv.CoreStalls[i].Core
				r.CoreStats[i].MAOStalls += st.MAO * delta
				r.CoreStats[i].FUStalls += st.FU * delta
				r.CoreStats[i].WindowStalls += st.Window * delta
				r.CoreStats[i].CommStalls += st.Comm * delta
			}
		}
	}

	// Accelerator traffic and energy totals come from the new model's
	// answers; everything memory-side is unchanged by construction (inert or
	// refit-proven), so only the accel component of the energy breakdown —
	// and the total that includes it — is recomputed.
	if len(s.Invocations) > 0 {
		var bytes int64
		var pj float64
		for _, ni := range d.newInvs {
			bytes += ni.Bytes
			pj += ni.EnergyPJ
		}
		r.AccelBytes = bytes
		r.Energy.AccelPJ = pj
		r.EnergyPJ = r.Energy.TotalPJ()
	}

	if r.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(r.Cycles)
	} else {
		r.IPC = 0
	}
	return r, s.Stepped, s.Skipped + d.deltaTotal
}
