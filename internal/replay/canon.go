package replay

// Canonical configuration form and structural hash. Two system configs that
// differ only in replay-classifiable timing knobs must hash equal (so a
// sweep leg finds the recorded schedule), and configs that differ in
// anything that could reorder the schedule — tile counts, roles, queue
// capacities, cache geometry, the DRAM model — must hash differently (so
// the leg provably misses and falls back to full simulation).
//
// The canonical form is computed over the RESOLVED topology (declarative
// tile definitions carry raw-JSON overrides, so only the expanded per-tile
// core configs compare meaningfully) with every classifiable knob
// normalized away:
//
//   - names and StepWorkers (never affect timing; StepWorkers is proven
//     bit-identical at any worker count);
//   - per-core MispredictPenalty, AtomicExtraLatency, and the mem-class
//     latency (classified by binding counts — the other per-class latencies
//     stay structural because the recorded Result carries no per-class
//     instruction counts to prove them unread);
//   - cache LatencyCycles per level, DRAM MinLatency, DirInvCycles, NoC
//     HopCycles;
//   - the DRAM knobs the selected model never reads (the banked model
//     ignores MinLatency/Bandwidth/Epoch; the simple model ignores the
//     banked timing set), plus SimpleDRAM bandwidth/epoch, which classify
//     via the recorded arrival log.

import (
	"encoding/json"
	"hash/fnv"

	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
)

// canonCore is a core config with classifiable knobs normalized away plus
// the effective per-class latency vector (so an override equal to the
// default compares equal to an absent override).
type canonCore struct {
	Cfg    config.CoreConfig
	EffLat [config.NumClasses]int64
}

type canonTile struct {
	Kind     string
	Role     string
	MeshSlot int
	Core     canonCore
}

type canonForm struct {
	Tiles []canonTile
	Mem   config.MemConfig
	NoC   *config.NoCConfig
	// FabricLat stays structural (not normalized away): a base fabric
	// latency delta reorders message arrivals, which no replay family can
	// re-evaluate analytically.
	FabricLat int64
}

func canonCoreCfg(cfg config.CoreConfig) canonCore {
	c := canonCore{Cfg: cfg}
	c.Cfg.Name = ""
	c.Cfg.MispredictPenalty = 0
	c.Cfg.AtomicExtraLatency = 0
	c.Cfg.Latencies = nil
	for cl := config.InstrClass(0); cl < config.NumClasses; cl++ {
		c.EffLat[cl] = cfg.Latency(cl)
	}
	// The mem-class entry is never consulted (memory ops take their latency
	// from the hierarchy), so it is classifiable and normalized away.
	c.EffLat[config.ClassMem] = 0
	return c
}

func canonCache(c config.CacheConfig) config.CacheConfig {
	c.Name = ""
	c.LatencyCycles = 0
	return c
}

func canonMem(m config.MemConfig) config.MemConfig {
	m = deepCopyMem(m)
	m.L1 = canonCache(m.L1)
	if m.L2 != nil {
		c := canonCache(*m.L2)
		m.L2 = &c
	}
	if m.LLC != nil {
		c := canonCache(*m.LLC)
		m.LLC = &c
	}
	d := m.DRAM
	d.MinLatency = 0
	d.BandwidthGBs = 0
	d.EpochCycles = 0
	if d.Model == config.DRAMBanked {
		// DDR timing knobs classify by traffic count; channel/bank/row
		// geometry shapes the address mapping and stays structural.
		d.TCAS, d.TRCD, d.TRP, d.TBurst = 0, 0, 0, 0
	} else {
		d.Model = config.DRAMSimple // "" selects simple: normalize the alias
		d.Channels, d.Banks, d.RowBytes = 0, 0, 0
		d.TCAS, d.TRCD, d.TRP, d.TBurst = 0, 0, 0, 0
	}
	m.DRAM = d
	m.DirInvCycles = 0
	return m
}

func canonNoC(n *config.NoCConfig) *config.NoCConfig {
	if n == nil {
		return nil
	}
	c := *n
	c.HopCycles = 0
	return &c
}

// canonicalize resolves and normalizes a system config.
func canonicalize(sc *config.SystemConfig) (*canonForm, []soc.ResolvedTile, error) {
	rts, err := soc.ExpandTiles(sc)
	if err != nil {
		return nil, nil, err
	}
	cf := &canonForm{Mem: canonMem(sc.Mem), NoC: canonNoC(sc.NoC), FabricLat: sc.EffectiveFabricLatency()}
	for _, rt := range rts {
		cf.Tiles = append(cf.Tiles, canonTile{
			Kind:     rt.Kind,
			Role:     rt.Role,
			MeshSlot: rt.MeshSlot,
			Core:     canonCoreCfg(rt.Cfg),
		})
	}
	return cf, rts, nil
}

// StructHash returns the structural hash of a system config: equal for
// configs whose differences the replay classifier can examine, different for
// anything that could reorder a recorded schedule. It keys the schedule
// layer of sim.Cache alongside the workload key.
func StructHash(sc *config.SystemConfig) (uint64, error) {
	cf, _, err := canonicalize(sc)
	if err != nil {
		return 0, err
	}
	b, err := json.Marshal(cf)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64(), nil
}
