// Package accel implements MosaicSim-Go's accelerator simulation (§IV of the
// paper): loosely-coupled, fixed-function accelerators with a pipelined
// load / compute / store structure over a double-buffered private local
// memory (PLM), evaluated at three fidelity levels:
//
//   - SimulatePipeline — a cycle-level model of the module pipeline, standing
//     in for RTL simulation of the HLS-generated design.
//   - ClosedForm — the paper's generic performance model (§IV-B): processes,
//     loops per process, back-annotated per-iteration latencies, and
//     iteration counts derived from the invocation parameters.
//   - EmulateFPGA — the pipeline model plus Linux-driver invocation overhead
//     and DMA derating, standing in for full-system FPGA emulation.
//
// Accelerators are non-coherent and communicate directly with main memory
// (§IV-B "Communication Model").
package accel

import (
	"fmt"
	"slices"

	"mosaicsim/internal/soc"
)

// Chunk is one pipeline step: a DMA load, a compute burst, and a DMA store.
type Chunk struct {
	LoadBytes     int64
	ComputeCycles int64
	StoreBytes    int64
}

// Group is a run of identical pipeline chunks; plans use groups so that
// multi-million-chunk workloads stay compact and the pipeline model can
// fast-forward through steady state exactly.
type Group struct {
	Chunk
	Count int64
}

// DesignPoint is one HLS design point of an accelerator (§IV-B "Design Space
// Exploration"): the PLM size and compute parallelism, with a synthesized
// area model.
type DesignPoint struct {
	PLMBytes int
	Lanes    int // parallel MACs / ALU lanes in the compute process
}

// Accelerator is one fixed-function accelerator at a chosen design point.
// The plan memo makes an Accelerator single-system state, like soc.System:
// share design points across systems, not Accelerator values.
type Accelerator struct {
	Name string
	DP   DesignPoint
	// Plan tiles an invocation into pipeline chunk groups.
	Plan func(params []int64, dp DesignPoint) ([]Group, error)

	// memoParams/memoGroups cache the most recent Plan result: one Invoke
	// needs the groups two to three times (timing model + transferred bytes),
	// and workloads invoke an accelerator with identical parameters over and
	// over, so a single entry captures nearly all repetition.
	memoParams []int64
	memoGroups []Group
	// PowerW is the average power (the paper back-annotates it from RTL
	// switching activity; here it scales with lanes and PLM).
	PowerW float64
	// ClockMHz is the accelerator clock.
	ClockMHz int
	// DMABytesPerCycle is the memory interface width×rate per direction.
	DMABytesPerCycle int64
	// NoCHops is the average hop count to the memory controller; each chunk
	// transfer pays a per-hop latency (§IV-B communication model).
	NoCHops int
}

const (
	nocHopCycles   = 4
	dmaSetupCycles = 64   // DMA transaction initiation per transfer
	driverOverhead = 2000 // cycles: Linux device-driver invocation (§VI-A)
	fpgaDMADerate  = 1.05 // FPGA DMA efficiency loss vs idealized RTL testbench
	computeFill    = 12   // per-chunk compute-pipeline fill cycles
)

// dmaCycles returns the DMA time for one transfer of n bytes, including the
// transaction setup and NoC traversal.
func (a *Accelerator) dmaCycles(n int64) int64 {
	if n == 0 {
		return 0
	}
	bpc := a.DMABytesPerCycle
	if bpc <= 0 {
		bpc = 16
	}
	return (n+bpc-1)/bpc + dmaSetupCycles + int64(a.NoCHops*nocHopCycles)
}

// plan returns the chunk groups for params, consulting the single-entry memo
// before calling the accelerator's Plan function.
func (a *Accelerator) plan(params []int64) ([]Group, error) {
	if a.memoGroups != nil && slices.Equal(a.memoParams, params) {
		return a.memoGroups, nil
	}
	groups, err := a.Plan(params, a.DP)
	if err != nil {
		return nil, err
	}
	a.memoParams = append(a.memoParams[:0], params...)
	a.memoGroups = groups
	return groups, nil
}

// pipeState carries the three process completion times through the chunk
// recurrence.
type pipeState struct {
	loadDone, compDone, storeDone int64
}

func (a *Accelerator) stepChunk(s pipeState, ch Chunk) pipeState {
	loadDone := s.loadDone + a.dmaCycles(ch.LoadBytes)
	compStart := max64(loadDone, s.compDone)
	compDone := compStart + computeFill + ch.ComputeCycles
	storeStart := max64(compDone, s.storeDone)
	storeDone := storeStart + a.dmaCycles(ch.StoreBytes)
	return pipeState{loadDone, compDone, storeDone}
}

// SimulatePipeline runs the cycle-level pipeline model: load(i+1) overlaps
// compute(i) overlaps store(i-1) through the double-buffered PLM. Uniform
// chunk runs are fast-forwarded after the recurrence reaches steady state,
// which keeps the result exact. Cycles are at the accelerator clock.
func (a *Accelerator) SimulatePipeline(params []int64) (int64, error) {
	groups, err := a.plan(params)
	if err != nil {
		return 0, err
	}
	var s pipeState
	for _, g := range groups {
		remaining := g.Count
		var prev pipeState
		// Simulate a few chunks explicitly; once per-chunk increments are
		// constant (steady state), jump.
		for i := int64(0); i < remaining; i++ {
			next := a.stepChunk(s, g.Chunk)
			if i >= 2 {
				dl := next.loadDone - s.loadDone
				dc := next.compDone - s.compDone
				ds := next.storeDone - s.storeDone
				pl := s.loadDone - prev.loadDone
				pc := s.compDone - prev.compDone
				ps := s.storeDone - prev.storeDone
				if dl == pl && dc == pc && ds == ps {
					left := remaining - i - 1
					next.loadDone += dl * left
					next.compDone += dc * left
					next.storeDone += ds * left
					prev, s = s, next
					break
				}
			}
			prev, s = s, next
		}
	}
	return max64(s.storeDone, s.compDone), nil
}

// ClosedForm evaluates the generic performance model (§IV-B): each process's
// total time is its back-annotated per-iteration latency times its iteration
// count; the pipeline time is the bottleneck total plus fill/drain of the
// other processes.
func (a *Accelerator) ClosedForm(params []int64) (int64, error) {
	groups, err := a.plan(params)
	if err != nil {
		return 0, err
	}
	var loadTotal, compTotal, storeTotal int64
	var loadIter, compIter, storeIter int64
	for _, g := range groups {
		l := a.dmaCycles(g.LoadBytes)
		c := computeFill + g.ComputeCycles
		st := a.dmaCycles(g.StoreBytes)
		loadTotal += l * g.Count
		compTotal += c * g.Count
		storeTotal += st * g.Count
		if loadIter == 0 {
			loadIter, compIter, storeIter = l, c, st
		}
	}
	bottleneck := max64(loadTotal, max64(compTotal, storeTotal))
	fill := int64(0)
	if loadTotal != bottleneck {
		fill += loadIter
	} else if compTotal != bottleneck {
		fill += compIter
	}
	drain := int64(0)
	if storeTotal != bottleneck {
		drain += storeIter
	}
	return fill + bottleneck + drain, nil
}

// EmulateFPGA runs the pipeline model with full-system effects: driver
// invocation overhead and FPGA DMA derating.
func (a *Accelerator) EmulateFPGA(params []int64) (int64, error) {
	base, err := a.SimulatePipeline(params)
	if err != nil {
		return 0, err
	}
	groups, err := a.plan(params)
	if err != nil {
		return 0, err
	}
	var dma int64
	for _, g := range groups {
		dma += (a.dmaCycles(g.LoadBytes) + a.dmaCycles(g.StoreBytes)) * g.Count
	}
	extra := int64(float64(dma) * (fpgaDMADerate - 1))
	return base + driverOverhead + extra, nil
}

// Bytes returns the total bytes an invocation transfers to/from memory
// ("an expression to calculate the number of bytes transferred", §IV-B).
func (a *Accelerator) Bytes(params []int64) (int64, error) {
	groups, err := a.plan(params)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, g := range groups {
		total += (g.LoadBytes + g.StoreBytes) * g.Count
	}
	return total, nil
}

// AreaUM2 models synthesized area for the design point (Fig. 10 y-axis): a
// base cell area plus PLM SRAM and compute lanes.
func (a *Accelerator) AreaUM2() float64 {
	return 6e4 + 3.2*float64(a.DP.PLMBytes) + 9e3*float64(a.DP.Lanes)
}

// EnergyPJ converts a cycle count at the accelerator clock to energy.
func (a *Accelerator) EnergyPJ(cycles int64) float64 {
	hz := float64(a.ClockMHz) * 1e6
	if hz == 0 {
		hz = 1e9
	}
	return a.PowerW * (float64(cycles) / hz) * 1e12
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mode selects which fidelity level backs a soc.AccelModel.
type Mode uint8

// Accelerator model fidelity levels.
const (
	ModeClosedForm Mode = iota
	ModePipeline
	ModeFPGA
)

// Model adapts an Accelerator to the Interleaver's AccelModel interface.
// Returned cycles are scaled to the invoking system's clock and stretched
// when concurrent invocations oversubscribe memory bandwidth (§IV-B).
type Model struct {
	Acc       *Accelerator
	Mode      Mode
	SystemMHz int
	MaxMemGBs float64
}

// Invoke implements soc.AccelModel.
func (m *Model) Invoke(params []int64, concurrent int) (soc.AccelResult, error) {
	var cycles int64
	var err error
	switch m.Mode {
	case ModePipeline:
		cycles, err = m.Acc.SimulatePipeline(params)
	case ModeFPGA:
		cycles, err = m.Acc.EmulateFPGA(params)
	default:
		cycles, err = m.Acc.ClosedForm(params)
	}
	if err != nil {
		return soc.AccelResult{}, err
	}
	bytes, err := m.Acc.Bytes(params)
	if err != nil {
		return soc.AccelResult{}, err
	}
	if m.MaxMemGBs > 0 && concurrent > 0 {
		accHz := float64(m.Acc.ClockMHz) * 1e6
		demand := float64(m.Acc.DMABytesPerCycle) * accHz * float64(concurrent+1)
		budget := m.MaxMemGBs * 1e9
		if demand > budget {
			cycles = int64(float64(cycles) * demand / budget)
		}
	}
	sysMHz := m.SystemMHz
	if sysMHz <= 0 {
		sysMHz = m.Acc.ClockMHz
	}
	sysCycles := cycles * int64(sysMHz) / int64(m.Acc.ClockMHz)
	return soc.AccelResult{
		Cycles:   sysCycles,
		Bytes:    bytes,
		EnergyPJ: m.Acc.EnergyPJ(cycles),
	}, nil
}

var _ soc.AccelModel = (*Model)(nil)

// errParams builds a consistent invocation-parameter error.
func errParams(name string, want int, got []int64) error {
	return fmt.Errorf("accel %s: expected %d invocation parameters, got %d", name, want, len(got))
}

// plmChunkElems returns how many elements of the given size fit one PLM
// buffer half (double buffering) split across nbuf concurrent streams.
func plmChunkElems(plmBytes, elemSize, nbuf int) int64 {
	n := int64(plmBytes) / int64(2*nbuf*elemSize)
	if n < 1 {
		n = 1
	}
	return n
}

// ceilDiv is ceiling division for positive operands.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
