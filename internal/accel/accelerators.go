package accel

import (
	"math"

	"mosaicsim/internal/interp"
)

// The three fixed-function accelerators of §VI-A: matrix multiplication,
// saturating histogram, and element-wise arithmetic. Each supports any input
// size and carries a functional implementation used by the Dynamic Trace
// Generator so simulated memory reflects the accelerated computation.

// PLMSweep returns the Fig. 10 PLM design points: 4 KB, 16 KB, 64 KB, 256 KB.
func PLMSweep() []DesignPoint {
	return []DesignPoint{
		{PLMBytes: 4 << 10, Lanes: 16},
		{PLMBytes: 16 << 10, Lanes: 16},
		{PLMBytes: 64 << 10, Lanes: 16},
		{PLMBytes: 256 << 10, Lanes: 16},
	}
}

// WorkloadSweep returns the Fig. 10 workload sizes in bytes of total data:
// 256 KB, 1 MB, 4 MB, 16 MB.
func WorkloadSweep() []int64 {
	return []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

// NewSGEMM builds the matrix-multiplication accelerator at a design point.
// Invocation parameters: (A, B, C, M, N, K) — f32 row-major matrices.
func NewSGEMM(dp DesignPoint) *Accelerator {
	return &Accelerator{
		Name: "acc_sgemm",
		DP:   dp,
		Plan: planSGEMM,
		// ~0.2 W base plus lanes; PLM SRAM leakage folded in.
		PowerW:           0.18 + 0.012*float64(dp.Lanes) + 0.3e-6*float64(dp.PLMBytes),
		ClockMHz:         1000,
		DMABytesPerCycle: 16,
		NoCHops:          2,
	}
}

// planSGEMM tiles C[M×N] = A[M×K]·B[K×N] into b×b blocks with A- and B-tiles
// resident in the PLM; each output tile accumulates over K/b chunk-multiplies
// and stores once.
func planSGEMM(params []int64, dp DesignPoint) ([]Group, error) {
	if len(params) != 6 {
		return nil, errParams("acc_sgemm", 6, params)
	}
	m, n, k := params[3], params[4], params[5]
	// 2 input tiles + 1 accumulator tile of b² f32 each must fit half the
	// PLM: 3·b²·4 ≤ PLM/2.
	b := int64(math.Sqrt(float64(dp.PLMBytes) / 24))
	if b < 4 {
		b = 4
	}
	mt, nt, kt := ceilDiv(m, b), ceilDiv(n, b), ceilDiv(k, b)
	tiles := mt * nt
	chunks := tiles * kt
	// Exact totals distributed over the chunk schedule: A is streamed once
	// per column-tile of B, B once per row-tile of A, C stored once.
	totalLoad := m*k*4*nt + k*n*4*mt
	totalMACs := m * n * k
	compute := ceilDiv(totalMACs, int64(dp.Lanes)*chunks)
	loadBytes := ceilDiv(totalLoad, chunks)
	storeBytes := ceilDiv(m*n*4, tiles)
	var groups []Group
	if kt > 1 {
		groups = append(groups, Group{Chunk: Chunk{LoadBytes: loadBytes, ComputeCycles: compute}, Count: (kt - 1) * tiles})
	}
	groups = append(groups, Group{Chunk: Chunk{LoadBytes: loadBytes, ComputeCycles: compute, StoreBytes: storeBytes}, Count: tiles})
	return groups, nil
}

// SGEMMFunc is the functional implementation for the DTG: C = A·B in f32.
func SGEMMFunc(mem *interp.Memory, params []int64) {
	a, b, c := uint64(params[0]), uint64(params[1]), uint64(params[2])
	m, n, k := int(params[3]), int(params[4]), int(params[5])
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for l := 0; l < k; l++ {
				acc += mem.ReadF32(a+uint64(i*k+l)*4) * mem.ReadF32(b+uint64(l*n+j)*4)
			}
			mem.WriteF32(c+uint64(i*n+j)*4, acc)
		}
	}
}

// NewHistogram builds the saturating-histogram accelerator.
// Invocation parameters: (in, n, hist, bins) — i32 input, i32 bins saturating
// at 255.
func NewHistogram(dp DesignPoint) *Accelerator {
	return &Accelerator{
		Name:             "acc_histo",
		DP:               dp,
		Plan:             planHistogram,
		PowerW:           0.11 + 0.006*float64(dp.Lanes) + 0.3e-6*float64(dp.PLMBytes),
		ClockMHz:         1000,
		DMABytesPerCycle: 16,
		NoCHops:          2,
	}
}

func planHistogram(params []int64, dp DesignPoint) ([]Group, error) {
	if len(params) != 4 {
		return nil, errParams("acc_histo", 4, params)
	}
	n, bins := params[1], params[3]
	chunkElems := plmChunkElems(dp.PLMBytes, 4, 1)
	nchunks := ceilDiv(n, chunkElems)
	// Histogram updates serialize on bin-bank conflicts: ~4 lanes effective
	// out of the multi-banked PLM (§IV "multi-port, multi-bank").
	lanes := int64(4)
	var groups []Group
	if nchunks > 1 {
		groups = append(groups, Group{
			Chunk: Chunk{LoadBytes: chunkElems * 4, ComputeCycles: ceilDiv(chunkElems, lanes)},
			Count: nchunks - 1,
		})
	}
	last := n - (nchunks-1)*chunkElems
	groups = append(groups, Group{
		Chunk: Chunk{LoadBytes: last * 4, ComputeCycles: ceilDiv(last, lanes), StoreBytes: bins * 4},
		Count: 1,
	})
	return groups, nil
}

// HistogramFunc is the functional implementation: saturating (at 255)
// histogram of i32 values into i32 bins; out-of-range values are clamped.
func HistogramFunc(mem *interp.Memory, params []int64) {
	in, hist := uint64(params[0]), uint64(params[2])
	n, bins := int(params[1]), int32(params[3])
	for i := 0; i < n; i++ {
		v := mem.ReadI32(in + uint64(i)*4)
		if v < 0 {
			v = 0
		}
		if v >= bins {
			v = bins - 1
		}
		addr := hist + uint64(v)*4
		if cur := mem.ReadI32(addr); cur < 255 {
			mem.WriteI32(addr, cur+1)
		}
	}
}

// NewElementwise builds the element-wise arithmetic accelerator.
// Invocation parameters: (A, B, C, n) — f32 vectors, C = A ⊕ B.
func NewElementwise(dp DesignPoint) *Accelerator {
	return &Accelerator{
		Name:             "acc_elementwise",
		DP:               dp,
		Plan:             planElementwise,
		PowerW:           0.09 + 0.008*float64(dp.Lanes) + 0.3e-6*float64(dp.PLMBytes),
		ClockMHz:         1000,
		DMABytesPerCycle: 16,
		NoCHops:          2,
	}
}

func planElementwise(params []int64, dp DesignPoint) ([]Group, error) {
	if len(params) != 4 {
		return nil, errParams("acc_elementwise", 4, params)
	}
	n := params[3]
	chunkElems := plmChunkElems(dp.PLMBytes, 4, 3) // A, B in; C out
	nchunks := ceilDiv(n, chunkElems)
	lanes := int64(dp.Lanes)
	var groups []Group
	if nchunks > 1 {
		groups = append(groups, Group{
			Chunk: Chunk{LoadBytes: 2 * chunkElems * 4, ComputeCycles: ceilDiv(chunkElems, lanes), StoreBytes: chunkElems * 4},
			Count: nchunks - 1,
		})
	}
	last := n - (nchunks-1)*chunkElems
	groups = append(groups, Group{
		Chunk: Chunk{LoadBytes: 2 * last * 4, ComputeCycles: ceilDiv(last, lanes), StoreBytes: last * 4},
		Count: 1,
	})
	return groups, nil
}

// ElementwiseFunc is the functional implementation: C = A + B in f32.
func ElementwiseFunc(mem *interp.Memory, params []int64) {
	a, b, c := uint64(params[0]), uint64(params[1]), uint64(params[2])
	n := int(params[3])
	for i := 0; i < n; i++ {
		mem.WriteF32(c+uint64(i)*4, mem.ReadF32(a+uint64(i)*4)+mem.ReadF32(b+uint64(i)*4))
	}
}

// FuncRegistry returns the functional implementations for the DTG.
func FuncRegistry() map[string]interp.AccFunc {
	return map[string]interp.AccFunc{
		"acc_sgemm":       SGEMMFunc,
		"acc_histo":       HistogramFunc,
		"acc_elementwise": ElementwiseFunc,
	}
}

// ByName builds an accelerator by its intrinsic name at a design point.
func ByName(name string, dp DesignPoint) *Accelerator {
	switch name {
	case "acc_sgemm":
		return NewSGEMM(dp)
	case "acc_histo":
		return NewHistogram(dp)
	case "acc_elementwise":
		return NewElementwise(dp)
	}
	return nil
}
