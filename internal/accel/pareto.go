package accel

import (
	"sort"

	"mosaicsim/internal/parallel"
)

// Design-space exploration helpers (§IV-B): "HLS allows for seamless
// generation and evaluation of multiple RTL implementations ... The SoC
// designer can then choose which specific design point(s) to instantiate."
// Evaluated points are ranked and filtered to the area/performance Pareto
// front.

// EvaluatedPoint is one design point with its evaluated cost/performance.
type EvaluatedPoint struct {
	DP     DesignPoint
	AreaUM float64
	Cycles int64
}

// Evaluate runs the pipeline model of the accelerator built by mk at every
// design point for the given invocation parameters. Points are independent,
// so they fan out across the sweep engine's shared worker pool; results are
// collected by index, keeping the output order deterministic.
func Evaluate(mk func(DesignPoint) *Accelerator, points []DesignPoint, params []int64) ([]EvaluatedPoint, error) {
	out := make([]EvaluatedPoint, len(points))
	err := parallel.ForErr(0, len(points), func(i int) error {
		a := mk(points[i])
		cycles, err := a.SimulatePipeline(params)
		if err != nil {
			return err
		}
		out[i] = EvaluatedPoint{DP: points[i], AreaUM: a.AreaUM2(), Cycles: cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParetoFront returns the points not dominated in (area, cycles): a point is
// kept if no other point is at least as good in both dimensions and strictly
// better in one. The result is sorted by ascending area.
func ParetoFront(points []EvaluatedPoint) []EvaluatedPoint {
	var front []EvaluatedPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.AreaUM <= p.AreaUM && q.Cycles <= p.Cycles &&
				(q.AreaUM < p.AreaUM || q.Cycles < p.Cycles) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].AreaUM != front[j].AreaUM {
			return front[i].AreaUM < front[j].AreaUM
		}
		return front[i].Cycles < front[j].Cycles
	})
	// Drop duplicates in both dimensions.
	out := front[:0]
	for i, p := range front {
		if i > 0 && p.AreaUM == front[i-1].AreaUM && p.Cycles == front[i-1].Cycles {
			continue
		}
		out = append(out, p)
	}
	return out
}

// CheapestWithin returns the smallest-area point whose execution time is
// within slack (e.g. 1.1 = 10% slower) of the fastest point, the common
// design-selection rule.
func CheapestWithin(points []EvaluatedPoint, slack float64) (EvaluatedPoint, bool) {
	if len(points) == 0 {
		return EvaluatedPoint{}, false
	}
	best := points[0].Cycles
	for _, p := range points {
		if p.Cycles < best {
			best = p.Cycles
		}
	}
	limit := int64(float64(best) * slack)
	var chosen EvaluatedPoint
	found := false
	for _, p := range points {
		if p.Cycles > limit {
			continue
		}
		if !found || p.AreaUM < chosen.AreaUM {
			chosen = p
			found = true
		}
	}
	return chosen, found
}
