package accel

import (
	"math"
	"testing"
	"testing/quick"

	"mosaicsim/internal/interp"
)

func sgemmParams(dim int64) []int64 { return []int64{0, 0, 0, dim, dim, dim} }

func TestPipelineFastForwardMatchesExplicit(t *testing.T) {
	// The fast-forwarded pipeline recurrence must equal chunk-by-chunk
	// simulation. Re-simulate explicitly with Count split into unit groups.
	acc := NewSGEMM(DesignPoint{PLMBytes: 16 << 10, Lanes: 16})
	params := sgemmParams(96)
	fast, err := acc.SimulatePipeline(params)
	if err != nil {
		t.Fatal(err)
	}
	groups, _ := acc.Plan(params, acc.DP)
	explicit := &Accelerator{
		Name: acc.Name, DP: acc.DP, PowerW: acc.PowerW, ClockMHz: acc.ClockMHz,
		DMABytesPerCycle: acc.DMABytesPerCycle, NoCHops: acc.NoCHops,
		Plan: func([]int64, DesignPoint) ([]Group, error) {
			var out []Group
			for _, g := range groups {
				for i := int64(0); i < g.Count; i++ {
					out = append(out, Group{Chunk: g.Chunk, Count: 1})
				}
			}
			return out, nil
		},
	}
	slow, err := explicit.SimulatePipeline(params)
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow {
		t.Errorf("fast-forward %d != explicit %d", fast, slow)
	}
}

func TestClosedFormTracksPipeline(t *testing.T) {
	// Fig. 10d: the generic model is 97-100% accurate vs RTL simulation.
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		for _, dp := range PLMSweep() {
			acc := ByName(name, dp)
			for _, wl := range WorkloadSweep() {
				params := paramsForWorkload(name, wl)
				pipe, err := acc.SimulatePipeline(params)
				if err != nil {
					t.Fatal(err)
				}
				cf, err := acc.ClosedForm(params)
				if err != nil {
					t.Fatal(err)
				}
				ratio := float64(cf) / float64(pipe)
				if ratio < 0.9 || ratio > 1.1 {
					t.Errorf("%s plm=%d wl=%d: closed-form/pipeline = %.3f (pipe=%d cf=%d)",
						name, dp.PLMBytes, wl, ratio, pipe, cf)
				}
			}
		}
	}
}

// paramsForWorkload builds invocation parameters whose total data volume is
// approximately total bytes (as in Fig. 10's workload sizes).
func paramsForWorkload(name string, totalBytes int64) []int64 {
	switch name {
	case "acc_sgemm":
		// 3 square f32 matrices: 3·d²·4 = total.
		d := int64(math.Sqrt(float64(totalBytes) / 12))
		return []int64{0, 0, 0, d, d, d}
	case "acc_histo":
		return []int64{0, totalBytes / 4, 0, 256}
	default: // elementwise: 3 vectors
		return []int64{0, 0, 0, totalBytes / 12}
	}
}

func TestFPGASlowerThanPipeline(t *testing.T) {
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		acc := ByName(name, DesignPoint{PLMBytes: 64 << 10, Lanes: 16})
		params := paramsForWorkload(name, 1<<20)
		pipe, _ := acc.SimulatePipeline(params)
		fpga, _ := acc.EmulateFPGA(params)
		if fpga <= pipe {
			t.Errorf("%s: FPGA emulation (%d) must exceed RTL pipeline (%d)", name, fpga, pipe)
		}
		ratio := float64(pipe) / float64(fpga)
		if ratio < 0.8 {
			t.Errorf("%s: model-vs-FPGA accuracy %.2f implausibly low", name, ratio)
		}
	}
}

func TestLargerPLMIsFasterOrEqual(t *testing.T) {
	// Fig. 10a-c: bigger PLMs reduce execution time (fewer, larger chunks).
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		var prev int64 = math.MaxInt64
		for _, dp := range PLMSweep() {
			acc := ByName(name, dp)
			cycles, err := acc.SimulatePipeline(paramsForWorkload(name, 4<<20))
			if err != nil {
				t.Fatal(err)
			}
			if cycles > prev {
				t.Errorf("%s: PLM %d slower (%d) than smaller PLM (%d)", name, dp.PLMBytes, cycles, prev)
			}
			prev = cycles
		}
	}
}

func TestAreaGrowsWithPLM(t *testing.T) {
	var prev float64
	for _, dp := range PLMSweep() {
		a := NewSGEMM(dp).AreaUM2()
		if a <= prev {
			t.Errorf("area not monotone in PLM: %g after %g", a, prev)
		}
		prev = a
	}
	// Fig. 10 plots areas in the 1e5..1e6 um² band.
	small := NewSGEMM(PLMSweep()[0]).AreaUM2()
	big := NewSGEMM(PLMSweep()[3]).AreaUM2()
	if small < 5e4 || big > 5e6 {
		t.Errorf("area band off: %g .. %g", small, big)
	}
}

func TestBytesExpression(t *testing.T) {
	acc := NewElementwise(DesignPoint{PLMBytes: 64 << 10, Lanes: 16})
	n := int64(100000)
	bytes, err := acc.Bytes([]int64{0, 0, 0, n})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * n * 4 // two loads + one store per element
	if bytes != want {
		t.Errorf("bytes = %d, want %d", bytes, want)
	}
}

func TestModelConcurrencyStretch(t *testing.T) {
	acc := NewSGEMM(DesignPoint{PLMBytes: 64 << 10, Lanes: 16})
	m := &Model{Acc: acc, Mode: ModeClosedForm, SystemMHz: 2000, MaxMemGBs: 24}
	solo, err := m.Invoke(sgemmParams(128), 0)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := m.Invoke(sgemmParams(128), 7)
	if err != nil {
		t.Fatal(err)
	}
	if crowded.Cycles <= solo.Cycles {
		t.Errorf("8-way concurrent invocation (%d) should be slower than solo (%d)", crowded.Cycles, solo.Cycles)
	}
	if solo.EnergyPJ <= 0 || solo.Bytes <= 0 {
		t.Errorf("missing energy/bytes: %+v", solo)
	}
	// System-clock scaling: 2 GHz system counts 2x the 1 GHz accelerator cycles.
	raw, _ := acc.ClosedForm(sgemmParams(128))
	if solo.Cycles != raw*2 {
		t.Errorf("clock scaling wrong: sys=%d acc=%d", solo.Cycles, raw)
	}
}

func TestParamValidation(t *testing.T) {
	acc := NewSGEMM(PLMSweep()[0])
	if _, err := acc.SimulatePipeline([]int64{1, 2}); err == nil {
		t.Error("short parameter list accepted")
	}
}

func TestFunctionalSGEMM(t *testing.T) {
	mem := interp.NewMemory(1 << 20)
	a := mem.AllocF32([]float32{1, 2, 3, 4}) // 2x2
	b := mem.AllocF32([]float32{5, 6, 7, 8}) // 2x2
	c := mem.Alloc(16, 64)
	SGEMMFunc(mem, []int64{int64(a), int64(b), int64(c), 2, 2, 2})
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if got := mem.ReadF32(c + uint64(i)*4); got != w {
			t.Errorf("C[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestFunctionalHistogramSaturates(t *testing.T) {
	mem := interp.NewMemory(1 << 22)
	vals := make([]int32, 1000)
	for i := range vals {
		vals[i] = 3 // all in one bin; must saturate at 255
	}
	vals[0] = -5   // clamps to bin 0
	vals[1] = 9999 // clamps to last bin
	in := mem.AllocI32(vals)
	hist := mem.AllocI32(make([]int32, 16))
	HistogramFunc(mem, []int64{int64(in), int64(len(vals)), int64(hist), 16})
	if got := mem.ReadI32(hist + 3*4); got != 255 {
		t.Errorf("bin 3 = %d, want saturation at 255", got)
	}
	if got := mem.ReadI32(hist); got != 1 {
		t.Errorf("bin 0 = %d, want 1 (clamped negative)", got)
	}
	if got := mem.ReadI32(hist + 15*4); got != 1 {
		t.Errorf("bin 15 = %d, want 1 (clamped overflow)", got)
	}
}

func TestFunctionalElementwise(t *testing.T) {
	mem := interp.NewMemory(1 << 20)
	a := mem.AllocF32([]float32{1, 2, 3})
	b := mem.AllocF32([]float32{10, 20, 30})
	c := mem.Alloc(12, 64)
	ElementwiseFunc(mem, []int64{int64(a), int64(b), int64(c), 3})
	for i, w := range []float32{11, 22, 33} {
		if got := mem.ReadF32(c + uint64(i)*4); got != w {
			t.Errorf("C[%d] = %g, want %g", i, got, w)
		}
	}
}

// TestPipelineMonotoneInWorkload is a property: more work never takes fewer
// cycles.
func TestPipelineMonotoneInWorkload(t *testing.T) {
	acc := NewElementwise(DesignPoint{PLMBytes: 16 << 10, Lanes: 16})
	f := func(n1, n2 uint32) bool {
		a := int64(n1%1_000_000) + 1
		b := int64(n2%1_000_000) + 1
		if a > b {
			a, b = b, a
		}
		ca, err1 := acc.SimulatePipeline([]int64{0, 0, 0, a})
		cb, err2 := acc.SimulatePipeline([]int64{0, 0, 0, b})
		return err1 == nil && err2 == nil && ca <= cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := FuncRegistry()
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		if reg[name] == nil {
			t.Errorf("functional registry missing %s", name)
		}
		if ByName(name, PLMSweep()[0]) == nil {
			t.Errorf("ByName missing %s", name)
		}
	}
	if ByName("acc_nope", PLMSweep()[0]) != nil {
		t.Error("ByName invented an accelerator")
	}
}

func TestEvaluateAndParetoFront(t *testing.T) {
	points := append(PLMSweep(),
		DesignPoint{PLMBytes: 4 << 10, Lanes: 64}, // fast but big
		DesignPoint{PLMBytes: 64 << 10, Lanes: 4}, // slow and mid-size
	)
	eval, err := Evaluate(NewSGEMM, points, sgemmParams(256))
	if err != nil {
		t.Fatal(err)
	}
	if len(eval) != len(points) {
		t.Fatalf("evaluated %d of %d points", len(eval), len(points))
	}
	front := ParetoFront(eval)
	if len(front) == 0 || len(front) > len(eval) {
		t.Fatalf("front size %d", len(front))
	}
	// Front must be sorted by area with strictly improving cycles.
	for i := 1; i < len(front); i++ {
		if front[i].AreaUM < front[i-1].AreaUM {
			t.Error("front not sorted by area")
		}
		if front[i].Cycles >= front[i-1].Cycles {
			t.Errorf("front point %d does not improve cycles (%d vs %d)", i, front[i].Cycles, front[i-1].Cycles)
		}
	}
	// No front point may be dominated by any evaluated point.
	for _, p := range front {
		for _, q := range eval {
			if q.AreaUM < p.AreaUM && q.Cycles < p.Cycles {
				t.Errorf("front point (%g, %d) dominated by (%g, %d)", p.AreaUM, p.Cycles, q.AreaUM, q.Cycles)
			}
		}
	}
}

func TestCheapestWithin(t *testing.T) {
	eval, err := Evaluate(NewElementwise, PLMSweep(), []int64{0, 0, 0, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	chosen, ok := CheapestWithin(eval, 1.10)
	if !ok {
		t.Fatal("no design point selected")
	}
	var fastest int64 = 1 << 62
	for _, p := range eval {
		if p.Cycles < fastest {
			fastest = p.Cycles
		}
	}
	if float64(chosen.Cycles) > 1.10*float64(fastest) {
		t.Errorf("chosen point %d cycles exceeds 10%% slack over %d", chosen.Cycles, fastest)
	}
	for _, p := range eval {
		if float64(p.Cycles) <= 1.10*float64(fastest) && p.AreaUM < chosen.AreaUM {
			t.Errorf("cheaper compliant point exists: %g < %g", p.AreaUM, chosen.AreaUM)
		}
	}
	if _, ok := CheapestWithin(nil, 1.1); ok {
		t.Error("empty evaluation should select nothing")
	}
}
