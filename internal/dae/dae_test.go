package dae

import (
	"context"
	"strings"
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
)

// runOriginal executes the undecoupled kernel on P tiles and returns the
// interesting memory region.
func runKernel(t *testing.T, fns []*ir.Function, setup func(m *interp.Memory) ([]uint64, uint64, int)) []float64 {
	t.Helper()
	m := interp.NewMemory(1 << 24)
	args, outAddr, outLen := setup(m)
	if _, err := interp.RunTiles(fns, m, args, interp.Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.F64Slice(outAddr, outLen)
}

// expand duplicates the kernel for p SPMD tiles; pair expands the slices for
// p pairs (access on even tiles, execute on odd).
func expand(f *ir.Function, p int) []*ir.Function {
	fns := make([]*ir.Function, p)
	for i := range fns {
		fns[i] = f
	}
	return fns
}

func pairFns(s *Slices, pairs int) []*ir.Function {
	var fns []*ir.Function
	for i := 0; i < pairs; i++ {
		fns = append(fns, s.Access, s.Execute)
	}
	return fns
}

const computeKernel = `
void kernel(double* A, double* B, double* C, long n) {
  long tid = tile_id();
  long nt = num_tiles();
  long chunk = (n + nt - 1) / nt;
  long lo = tid * chunk;
  long hi = lo + chunk;
  if (hi > n) { hi = n; }
  for (long i = lo; i < hi; i++) {
    double x = A[i];
    double y = B[i];
    C[i] = sqrt(x * x + y * y) + (double)i * 0.5;
  }
}
`

func computeSetup(n int) func(m *interp.Memory) ([]uint64, uint64, int) {
	return func(m *interp.Memory) ([]uint64, uint64, int) {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i%17) * 0.25
			b[i] = float64(i%13) * 0.75
		}
		pa, pb := m.AllocF64(a), m.AllocF64(b)
		pc := m.Alloc(int64(n)*8, 64)
		return []uint64{pa, pb, pc, uint64(n)}, pc, n
	}
}

func mustSlice(t *testing.T, src string) (*ir.Function, *Slices) {
	t.Helper()
	mod, err := cc.Compile(src, "k")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := mod.Func("kernel")
	s, err := Slice(f)
	if err != nil {
		t.Fatalf("slice: %v\nIR:\n%s", err, f.String())
	}
	return f, s
}

func TestSliceStructure(t *testing.T) {
	_, s := mustSlice(t, computeKernel)
	countCalls := func(f *ir.Function, callee string) int {
		n := 0
		for _, in := range f.Instrs() {
			if in.Op == ir.OpCall && in.Callee == callee {
				n++
			}
		}
		return n
	}
	countOp := func(f *ir.Function, op ir.Opcode) int {
		n := 0
		for _, in := range f.Instrs() {
			if in.Op == op {
				n++
			}
		}
		return n
	}
	// Access: 2 loads each sent, 1 store receiving its value, no compute sqrt.
	if got := countOp(s.Access, ir.OpLoad); got != 2 {
		t.Errorf("access loads = %d, want 2", got)
	}
	if got := countCalls(s.Access, "send"); got != 2 {
		t.Errorf("access sends = %d, want 2", got)
	}
	if got := countCalls(s.Access, "recv"); got != 1 {
		t.Errorf("access recvs = %d, want 1 (store value)", got)
	}
	if got := countOp(s.Access, ir.OpStore); got != 1 {
		t.Errorf("access stores = %d, want 1", got)
	}
	if got := countCalls(s.Access, "sqrt"); got != 0 {
		t.Errorf("access must not compute sqrt, found %d", got)
	}
	// Execute: receives 2 loads, computes, sends the store value, no memory.
	if got := countOp(s.Execute, ir.OpLoad) + countOp(s.Execute, ir.OpStore); got != 0 {
		t.Errorf("execute has %d memory ops, want 0", got)
	}
	if got := countCalls(s.Execute, "recv"); got != 2 {
		t.Errorf("execute recvs = %d, want 2", got)
	}
	if got := countCalls(s.Execute, "send"); got != 1 {
		t.Errorf("execute sends = %d, want 1", got)
	}
	if got := countCalls(s.Execute, "sqrt"); got != 1 {
		t.Errorf("execute sqrt calls = %d, want 1", got)
	}
	if s.CommLoads != 2 || s.CommStores != 1 {
		t.Errorf("comm counts: loads=%d stores=%d, want 2/1", s.CommLoads, s.CommStores)
	}
}

func TestSliceEquivalenceSinglePair(t *testing.T) {
	f, s := mustSlice(t, computeKernel)
	want := runKernel(t, expand(f, 1), computeSetup(300))
	got := runKernel(t, pairFns(s, 1), computeSetup(300))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("C[%d]: original %g, DAE %g", i, want[i], got[i])
		}
	}
}

func TestSliceEquivalenceMultiPair(t *testing.T) {
	f, s := mustSlice(t, computeKernel)
	want := runKernel(t, expand(f, 4), computeSetup(1000))
	got := runKernel(t, pairFns(s, 4), computeSetup(1000))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("C[%d]: original %g, DAE %g", i, want[i], got[i])
		}
	}
}

// The bipartite graph projection kernel (§VII-A): irregular accesses and an
// atomic accumulation whose delta is compute-owned.
const projectionKernel = `
void kernel(long* rows, long* cols, double* wts, double* proj, long nA, long nP) {
  long tid = tile_id();
  long nt = num_tiles();
  for (long a = tid; a < nA; a += nt) {
    long start = rows[a];
    long end = rows[a+1];
    for (long e1 = start; e1 < end; e1++) {
      for (long e2 = start; e2 < end; e2++) {
        long u = cols[e1];
        long v = cols[e2];
        if (u != v) {
          double w = wts[e1] * wts[e2];
          atomic_add(proj + (u * nP + v) % (nP * nP), w);
        }
      }
    }
  }
}
`

func projectionSetup(nA, deg, nP int) func(m *interp.Memory) ([]uint64, uint64, int) {
	return func(m *interp.Memory) ([]uint64, uint64, int) {
		rows := make([]int64, nA+1)
		var cols []int64
		var wts []float64
		for a := 0; a < nA; a++ {
			rows[a] = int64(len(cols))
			for d := 0; d < deg; d++ {
				cols = append(cols, int64((a*7+d*13)%nP))
				wts = append(wts, float64((a+d)%5)*0.5)
			}
		}
		rows[nA] = int64(len(cols))
		pr := m.AllocI64(rows)
		pc := m.AllocI64(cols)
		pw := m.AllocF64(wts)
		pp := m.Alloc(int64(nP*nP)*8, 64)
		return []uint64{pr, pc, pw, pp, uint64(nA), uint64(nP)}, pp, nP * nP
	}
}

func TestProjectionEquivalence(t *testing.T) {
	f, s := mustSlice(t, projectionKernel)
	want := runKernel(t, expand(f, 2), projectionSetup(40, 6, 16))
	got := runKernel(t, pairFns(s, 2), projectionSetup(40, 6, 16))
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("proj[%d]: original %g, DAE %g", i, want[i], got[i])
		}
	}
}

// Data-dependent control: the branch condition depends on a loaded value, so
// the execute slice must receive it.
const dataDepControl = `
void kernel(double* A, double* C, long n) {
  double acc = 0.0;
  for (long i = 0; i < n; i++) {
    if (A[i] > 0.5) {
      acc += A[i] * 2.0;
    } else {
      acc -= 1.0;
    }
  }
  C[0] = acc;
}
`

func TestDataDependentControlEquivalence(t *testing.T) {
	f, s := mustSlice(t, dataDepControl)
	setup := func(m *interp.Memory) ([]uint64, uint64, int) {
		vals := make([]float64, 200)
		for i := range vals {
			vals[i] = float64(i%10) / 9.0
		}
		pa := m.AllocF64(vals)
		pc := m.Alloc(8, 8)
		return []uint64{pa, pc, 200}, pc, 1
	}
	want := runKernel(t, expand(f, 1), setup)
	got := runKernel(t, pairFns(s, 1), setup)
	if want[0] != got[0] {
		t.Fatalf("original %g, DAE %g", want[0], got[0])
	}
}

// A pure copy kernel: no value computation, so no communication at all.
const copyKernel = `
void kernel(double* A, double* B, long n) {
  for (long i = 0; i < n; i++) {
    B[i] = A[i];
  }
}
`

func TestCopyKernelNeedsNoCommunication(t *testing.T) {
	f, s := mustSlice(t, copyKernel)
	if s.CommLoads != 0 || s.CommStores != 0 {
		t.Errorf("copy kernel comm: loads=%d stores=%d, want 0/0", s.CommLoads, s.CommStores)
	}
	setup := func(m *interp.Memory) ([]uint64, uint64, int) {
		vals := make([]float64, 64)
		for i := range vals {
			vals[i] = float64(i)
		}
		pa := m.AllocF64(vals)
		pb := m.Alloc(64*8, 64)
		return []uint64{pa, pb, 64}, pb, 64
	}
	want := runKernel(t, expand(f, 1), setup)
	got := runKernel(t, pairFns(s, 1), setup)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("B[%d]: original %g, DAE %g", i, want[i], got[i])
		}
	}
}

func TestRejectsAlreadyDecoupled(t *testing.T) {
	src := `
void kernel(double* A, long n) {
  send(1, A[0]);
}
`
	mod, err := cc.Compile(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Slice(mod.Func("kernel"))
	if err == nil || !strings.Contains(err.Error(), "already uses explicit communication") {
		t.Errorf("want explicit-communication error, got %v", err)
	}
}

// TestDAETimingSpeedup: one DAE pair of in-order cores beats a single
// in-order core on a latency-bound kernel (the §VII-A premise).
func TestDAETimingSpeedup(t *testing.T) {
	f, s := mustSlice(t, dataDepControl)
	setup := func(m *interp.Memory) []uint64 {
		vals := make([]float64, 3000)
		for i := range vals {
			vals[i] = float64(i%10) / 9.0
		}
		return []uint64{m.AllocF64(vals), m.Alloc(8, 8), 3000}
	}
	memCfg := config.TableIIMem()

	runSys := func(fns []*ir.Function, cfgs []config.CoreConfig) int64 {
		m := interp.NewMemory(1 << 24)
		args := setup(m)
		res, err := interp.RunTiles(fns, m, args, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var tiles []soc.TileSpec
		for i, fn := range fns {
			tiles = append(tiles, soc.TileSpec{Cfg: cfgs[i], Graph: ddg.Build(fn), TT: res.Trace.Tiles[i]})
		}
		sys, err := soc.New("t", tiles, memCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(context.Background(), 500_000_000); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles
	}

	ino := config.InOrderCore()
	single := runSys([]*ir.Function{f}, []config.CoreConfig{ino})
	daeCore := ino
	daeCore.DecoupledSupply = true
	pair := runSys([]*ir.Function{s.Access, s.Execute}, []config.CoreConfig{daeCore, daeCore})
	if pair >= single {
		t.Errorf("DAE pair (%d cycles) did not beat single InO core (%d cycles)", pair, single)
	}
}
