// Package dae implements the Decoupled Access/Execute compiler pass of the
// paper's first case study (§VII-A): it slices a kernel into an access slice
// (all memory accesses, address computation, and control flow) and an
// execute slice (value computation), wired together through the
// Interleaver's message buffers — loads push their data to the execute
// slice, stores receive their values from it, exactly as in DeSC.
//
// Tile pairing convention: a DAE system runs 2P tiles; even tiles run the
// access slice, odd tiles the execute slice, and tile 2i pairs with 2i+1.
// Inside a slice, tile_id() and num_tiles() are rewritten to pair-local
// values (tile_id()/2 and num_tiles()/2) so SPMD work partitioning is by
// pair.
package dae

import (
	"fmt"

	"mosaicsim/internal/ir"
)

// Slices is the result of decoupling one kernel.
type Slices struct {
	Access  *ir.Function
	Execute *ir.Function
	// CommLoads counts loads whose values are communicated to the execute
	// slice; CommStores counts stores whose values come from it.
	CommLoads  int
	CommStores int
}

// Slice decouples kernel f into access and execute slices, appended to a new
// module (alongside the globals of f's module).
func Slice(f *ir.Function) (*Slices, error) {
	f.AssignIDs()
	for _, in := range f.Instrs() {
		if in.Op == ir.OpCall && (in.Callee == "send" || in.Callee == "recv") {
			return nil, fmt.Errorf("dae: kernel @%s already uses explicit communication", f.Ident)
		}
	}

	// 1. Access set: backward closure of every memory address and branch
	//    condition; memory operations themselves are access-owned.
	accessSet := map[*ir.Instr]bool{}
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok || accessSet[in] {
			return
		}
		accessSet[in] = true
		for _, a := range in.Args {
			mark(a)
		}
	}
	for _, in := range f.Instrs() {
		switch {
		case in.IsMemory():
			accessSet[in] = true
			mark(in.AddrOperand())
			if in.Op == ir.OpAtomicAdd {
				// The address closure only; the delta may be compute-owned.
			}
		case in.Op == ir.OpCondBr:
			mark(in.Args[0])
		}
	}

	computeOwned := func(in *ir.Instr) bool {
		return !accessSet[in] && !in.IsMemory() && !in.IsTerminator() && !isTileQuery(in)
	}

	// 2. Values the execute slice needs: operands of compute-owned
	//    instructions and of duplicated terminators. Access-owned arithmetic
	//    is duplicated; loads/atomics bottom out as communicated values.
	dupl := map[*ir.Instr]bool{}
	commLoads := map[*ir.Instr]bool{}
	var need func(v ir.Value)
	need = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok {
			return
		}
		switch {
		case in.Op == ir.OpLoad || in.Op == ir.OpAtomicAdd:
			commLoads[in] = true
		case computeOwned(in) || isTileQuery(in):
			// Emitted in execute anyway; its operands are needed there too.
			if !dupl[in] {
				dupl[in] = true
				for _, a := range in.Args {
					need(a)
				}
			}
		case in.Op == ir.OpStore || in.IsTerminator():
			// Not values; nothing to do.
		default:
			if !dupl[in] {
				dupl[in] = true
				for _, a := range in.Args {
					need(a)
				}
			}
		}
	}
	commStores := map[*ir.Instr]bool{}
	for _, in := range f.Instrs() {
		switch {
		case computeOwned(in):
			for _, a := range in.Args {
				need(a)
			}
		case in.IsTerminator():
			for _, a := range in.Args {
				need(a)
			}
		case in.Op == ir.OpStore:
			if p, ok := in.Args[0].(*ir.Instr); ok && computeOwned(p) {
				commStores[in] = true
				need(in.Args[0])
			}
		case in.Op == ir.OpAtomicAdd:
			if p, ok := in.Args[1].(*ir.Instr); ok && computeOwned(p) {
				commStores[in] = true
				need(in.Args[1])
			}
		}
	}

	mod := ir.NewModule(moduleName(f))
	if f.Parent != nil {
		mod.Globals = append(mod.Globals, f.Parent.Globals...)
	}
	cls := classification{
		accessSet:  accessSet,
		dupl:       dupl,
		commLoads:  commLoads,
		commStores: commStores,
		compute:    computeOwned,
	}
	access, err := emitSlice(mod, f, cls, true)
	if err != nil {
		return nil, err
	}
	execute, err := emitSlice(mod, f, cls, false)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyModule(mod); err != nil {
		return nil, fmt.Errorf("dae: generated slices fail verification: %w", err)
	}
	return &Slices{
		Access:     access,
		Execute:    execute,
		CommLoads:  len(commLoads),
		CommStores: len(commStores),
	}, nil
}

func moduleName(f *ir.Function) string {
	if f.Parent != nil {
		return f.Parent.Ident + ".dae"
	}
	return f.Ident + ".dae"
}

func isTileQuery(in *ir.Instr) bool {
	return in.Op == ir.OpCall && (in.Callee == "tile_id" || in.Callee == "num_tiles")
}

type classification struct {
	accessSet  map[*ir.Instr]bool
	dupl       map[*ir.Instr]bool
	commLoads  map[*ir.Instr]bool
	commStores map[*ir.Instr]bool
	compute    func(*ir.Instr) bool
}

// pending defers operand/target resolution until all instructions of a slice
// exist (SSA allows forward references through phis).
type pending struct {
	copy     *ir.Instr
	origArgs []ir.Value
	origInc  []*ir.Block
	origTgt  []*ir.Block
}

// emitSlice builds one slice function. For the access slice (isAccess):
// memory ops and access-owned instructions are kept, communicated loads gain
// a send, stores of compute-owned values gain a recv. For the execute slice:
// compute-owned and duplicated instructions are kept, communicated loads
// become recvs, communicated stores become sends.
func emitSlice(mod *ir.Module, f *ir.Function, cls classification, isAccess bool) (*ir.Function, error) {
	suffix := ".access"
	if !isAccess {
		suffix = ".execute"
	}
	nf := &ir.Function{Ident: f.Ident + suffix, Parent: mod}
	mod.Funcs = append(mod.Funcs, nf)

	paramMap := map[*ir.Param]*ir.Param{}
	for _, p := range f.Params {
		np := &ir.Param{Ident: p.Ident, Ty: p.Ty}
		nf.Params = append(nf.Params, np)
		paramMap[p] = np
	}
	blockMap := map[*ir.Block]*ir.Block{}
	for _, b := range f.Blocks {
		nb := &ir.Block{Ident: b.Ident, Parent: nf}
		nf.Blocks = append(nf.Blocks, nb)
		blockMap[b] = nb
	}

	valueMap := map[*ir.Instr]ir.Value{}
	var pend []*pending
	names := 0
	newName := func(hint string) string {
		names++
		return fmt.Sprintf("%s%d", hint, names)
	}

	// Prologue in the entry block: raw tile identity, pair-local identity,
	// and the partner tile for sends/recvs.
	entry := nf.Blocks[0]
	addTo := func(b *ir.Block, in *ir.Instr) *ir.Instr {
		in.Parent = b
		b.Instrs = append(b.Instrs, in)
		return in
	}
	rawTid := addTo(entry, &ir.Instr{Op: ir.OpCall, Ty: ir.I64, Callee: "tile_id", Ident: newName("tid.raw")})
	pairTid := addTo(entry, &ir.Instr{Op: ir.OpSDiv, Ty: ir.I64, Ident: newName("tid.pair"),
		Args: []ir.Value{rawTid, ir.ConstInt(ir.I64, 2)}})
	rawNt := addTo(entry, &ir.Instr{Op: ir.OpCall, Ty: ir.I64, Callee: "num_tiles", Ident: newName("nt.raw")})
	pairNt := addTo(entry, &ir.Instr{Op: ir.OpSDiv, Ty: ir.I64, Ident: newName("nt.pair"),
		Args: []ir.Value{rawNt, ir.ConstInt(ir.I64, 2)}})
	partnerOp := ir.OpAdd
	if !isAccess {
		partnerOp = ir.OpSub
	}
	partner := addTo(entry, &ir.Instr{Op: partnerOp, Ty: ir.I64, Ident: newName("partner"),
		Args: []ir.Value{rawTid, ir.ConstInt(ir.I64, 1)}})

	emitCopy := func(nb *ir.Block, in *ir.Instr) *ir.Instr {
		cp := &ir.Instr{
			Op: in.Op, Ty: in.Ty, Ident: in.Ident, Pred: in.Pred, Cast: in.Cast,
			Scale: in.Scale, Callee: in.Callee,
		}
		addTo(nb, cp)
		pend = append(pend, &pending{copy: cp, origArgs: in.Args, origInc: in.Incoming, origTgt: in.Targets})
		if in.HasResult() {
			valueMap[in] = cp
		}
		return cp
	}
	emitSend := func(nb *ir.Block, value ir.Value) {
		cp := &ir.Instr{Op: ir.OpCall, Ty: ir.Void, Callee: "send"}
		addTo(nb, cp)
		pend = append(pend, &pending{copy: cp, origArgs: []ir.Value{partner, value}})
	}
	emitRecv := func(nb *ir.Block, ty ir.Type) *ir.Instr {
		cp := &ir.Instr{Op: ir.OpCall, Ty: ty, Callee: "recv", Ident: newName("comm")}
		addTo(nb, cp)
		pend = append(pend, &pending{copy: cp, origArgs: []ir.Value{partner}})
		return cp
	}

	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			switch {
			case isTileQuery(in):
				// Both slices carry tile queries, remapped to pair-local
				// values.
				if in.Callee == "tile_id" {
					valueMap[in] = pairTid
				} else {
					valueMap[in] = pairNt
				}
			case in.Op == ir.OpLoad:
				if isAccess {
					cp := emitCopy(nb, in)
					if cls.commLoads[in] {
						emitSend(nb, cp)
					}
				} else if cls.commLoads[in] {
					valueMap[in] = emitRecv(nb, in.Ty)
				}
			case in.Op == ir.OpAtomicAdd:
				if isAccess {
					delta := in.Args[1]
					if cls.commStores[in] {
						delta = emitRecv(nb, in.Args[1].Type())
					}
					cp := &ir.Instr{Op: ir.OpAtomicAdd, Ty: in.Ty, Ident: in.Ident}
					addTo(nb, cp)
					pend = append(pend, &pending{copy: cp, origArgs: []ir.Value{in.Args[0], delta}})
					valueMap[in] = cp
					if cls.commLoads[in] {
						emitSend(nb, cp)
					}
				} else {
					if cls.commStores[in] {
						emitSend(nb, in.Args[1])
					}
					if cls.commLoads[in] {
						valueMap[in] = emitRecv(nb, in.Ty)
					}
				}
			case in.Op == ir.OpStore:
				if isAccess {
					value := in.Args[0]
					if cls.commStores[in] {
						value = emitRecv(nb, in.Args[0].Type())
					}
					cp := &ir.Instr{Op: ir.OpStore, Ty: ir.Void}
					addTo(nb, cp)
					pend = append(pend, &pending{copy: cp, origArgs: []ir.Value{value, in.Args[1]}})
				} else if cls.commStores[in] {
					emitSend(nb, in.Args[0])
				}
			case in.IsTerminator():
				emitCopy(nb, in)
			case isAccess && cls.accessSet[in]:
				emitCopy(nb, in)
			case !isAccess && (cls.compute(in) || cls.dupl[in]):
				emitCopy(nb, in)
			}
		}
	}

	// Resolve deferred operands and control-flow references.
	for _, p := range pend {
		for _, a := range p.origArgs {
			v, err := resolve(nf, a, valueMap, paramMap)
			if err != nil {
				return nil, fmt.Errorf("dae: %s: %w", nf.Ident, err)
			}
			p.copy.Args = append(p.copy.Args, v)
		}
		for _, ib := range p.origInc {
			p.copy.Incoming = append(p.copy.Incoming, blockMap[ib])
		}
		for _, tb := range p.origTgt {
			p.copy.Targets = append(p.copy.Targets, blockMap[tb])
		}
	}
	// Rename results uniquely (copies share original names; recv/prologue
	// instrs are already unique). Collisions only matter for printing, but
	// keep them clean.
	seen := map[string]int{}
	for _, b := range nf.Blocks {
		for _, in := range b.Instrs {
			if !in.HasResult() {
				continue
			}
			if in.Ident == "" {
				in.Ident = newName("v")
			}
			if n := seen[in.Ident]; n > 0 {
				in.Ident = fmt.Sprintf("%s.%d", in.Ident, n)
			}
			seen[in.Ident]++
		}
	}
	return nf, nil
}

// resolve maps an original operand into the slice's value space. A value is
// either a constant/global (shared), a parameter (remapped), a pre-resolved
// instruction (recv/copy/prologue), or an instruction the slice does not
// carry — which indicates a classification bug.
func resolve(nf *ir.Function, a ir.Value, valueMap map[*ir.Instr]ir.Value, paramMap map[*ir.Param]*ir.Param) (ir.Value, error) {
	switch x := a.(type) {
	case *ir.Instr:
		if v, ok := valueMap[x]; ok {
			return v, nil
		}
		// Instructions created by this slice itself (prologue, recv) are
		// passed through pending.origArgs directly.
		if x.Parent != nil && x.Parent.Parent == nf {
			return x, nil
		}
		return nil, fmt.Errorf("operand %%%s missing from slice", x.Ident)
	case *ir.Param:
		np, ok := paramMap[x]
		if !ok {
			return nil, fmt.Errorf("parameter %%%s missing from slice", x.Ident)
		}
		return np, nil
	default:
		return a, nil
	}
}
