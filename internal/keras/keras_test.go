package keras

import (
	"context"
	"testing"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
)

func TestShapesPropagate(t *testing.T) {
	m := ConvNet()
	in := m.Input
	for _, l := range m.Layers {
		out := l.Out(in)
		if out.Elems() <= 0 {
			t.Fatalf("layer %s produced empty shape %+v", l.Name(), out)
		}
		in = out
	}
	if in.C != 10 {
		t.Errorf("ConvNet output classes = %d, want 10", in.C)
	}
}

func TestConvCosts(t *testing.T) {
	c := Conv2D{Filters: 8, Kernel: 3}
	in := Shape{H: 4, W: 4, C: 2}
	f := c.Fwd(in)
	want := int64(4 * 4 * 9 * 2 * 8)
	if f.MACs != want {
		t.Errorf("conv fwd MACs = %d, want %d", f.MACs, want)
	}
	b := c.Bwd(in)
	if b.MACs != 2*want {
		t.Errorf("conv bwd MACs = %d, want %d", b.MACs, 2*want)
	}
	if c.Accelerated(false) != true || c.Accelerated(true) != false {
		t.Error("conv fwd must be accelerated, bwd must not (paper §VII-C)")
	}
}

func TestDenseCosts(t *testing.T) {
	d := Dense{Units: 100}
	f := d.Fwd(Shape{C: 50})
	if f.MACs != 5000 {
		t.Errorf("dense MACs = %d, want 5000", f.MACs)
	}
	if !d.Accelerated(true) {
		t.Error("dense backprop is accelerated")
	}
}

func TestHostStageNotAccelerated(t *testing.T) {
	h := HostStage{Kind: "random-walk", Ops: 100}
	if h.Accelerated(false) || h.Accelerated(true) {
		t.Error("host stages must not be accelerated")
	}
	if h.Bwd(Shape{C: 1}).MACs != 0 {
		t.Error("host stage has no backward pass")
	}
}

func TestEstimatesPositiveAndSoCFaster(t *testing.T) {
	core := DefaultOoOCore()
	socp := DefaultSoC(8)
	for _, m := range Apps() {
		base := m.EstimateOnCore(core, 32)
		opt := m.EstimateOnSoC(socp, 32)
		if base.Cycles <= 0 || base.EnergyPJ <= 0 {
			t.Fatalf("%s: empty core estimate %+v", m.Name, base)
		}
		if opt.Cycles <= 0 || opt.EnergyPJ <= 0 {
			t.Fatalf("%s: empty SoC estimate %+v", m.Name, opt)
		}
		if opt.Cycles >= base.Cycles {
			t.Errorf("%s: SoC (%d cycles) not faster than core (%d)", m.Name, opt.Cycles, base.Cycles)
		}
	}
}

// TestFig14Ordering checks the paper's qualitative result: RecSys (fully
// accelerated) ≫ GraphSage (sampling on host) > ConvNet (conv backprop on
// host), with magnitudes in the right bands (paper: 282×, 38×, 7.2×).
func TestFig14Ordering(t *testing.T) {
	core := DefaultOoOCore()
	socp := DefaultSoC(8)
	imp := map[string]float64{}
	for _, m := range Apps() {
		imp[m.Name] = m.EDPImprovement(core, socp, 32)
	}
	conv, sage, rec := imp["ConvNet"], imp["GraphSage"], imp["RecSys"]
	t.Logf("EDP improvements: ConvNet=%.1f GraphSage=%.1f RecSys=%.1f", conv, sage, rec)
	if !(rec > sage && sage > conv) {
		t.Fatalf("ordering violated: ConvNet=%.1f GraphSage=%.1f RecSys=%.1f", conv, sage, rec)
	}
	if conv < 2 || conv > 30 {
		t.Errorf("ConvNet improvement %.1f outside modest band (paper 7.2x)", conv)
	}
	if sage < 8 || sage > 150 {
		t.Errorf("GraphSage improvement %.1f outside band (paper 38x)", sage)
	}
	if rec < 60 || rec > 1500 {
		t.Errorf("RecSys improvement %.1f outside band (paper 282x)", rec)
	}
}

func TestMoreInstancesHelp(t *testing.T) {
	m := RecSys()
	core := DefaultOoOCore()
	one := m.EstimateOnSoC(DefaultSoC(1), 32)
	eight := m.EstimateOnSoC(DefaultSoC(8), 32)
	if eight.Cycles >= one.Cycles {
		t.Errorf("8 instances (%d cycles) not faster than 1 (%d)", eight.Cycles, one.Cycles)
	}
	_ = core
}

func TestBatchScalesLinearly(t *testing.T) {
	m := RecSys()
	core := DefaultOoOCore()
	b1 := m.EstimateOnCore(core, 1)
	b8 := m.EstimateOnCore(core, 8)
	if b8.Cycles != 8*b1.Cycles {
		t.Errorf("batch scaling: %d vs 8*%d", b8.Cycles, b1.Cycles)
	}
}

// liteModel builds a scaled-down app so the full-pipeline simulation of the
// lowered kernel stays fast.
func liteConvNet() *Model {
	return &Model{
		Name:  "ConvNet-lite",
		Input: Shape{H: 8, W: 8, C: 3},
		Layers: []Layer{
			Conv2D{Filters: 8, Kernel: 3},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Conv2D{Filters: 8, Kernel: 3},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Dense{Units: 64},
		},
	}
}

func liteRecSys() *Model {
	return &Model{
		Name:  "RecSys-lite",
		Input: Shape{C: 128},
		Layers: []Layer{
			Dense{Units: 128},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Dense{Units: 64},
		},
	}
}

// TestLoweredKernelSimulates runs a lowered model through the full compile ->
// trace -> simulate pipeline (the paper's actual §VII-C mechanism) and checks
// that accelerator invocations appear and help.
func TestLoweredKernelSimulates(t *testing.T) {
	m := liteRecSys()
	host := config.OutOfOrderCore()
	accels := map[string]soc.AccelModel{}
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 16}
	for _, name := range []string{"acc_sgemm", "acc_elementwise"} {
		accels[name] = &accel.Model{Acc: accel.ByName(name, dp), Mode: accel.ModeClosedForm, SystemMHz: host.ClockMHz, MaxMemGBs: 24}
	}
	accelRes, err := m.SimulateTrainingStep(context.Background(), 4, true, host, accels)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := m.SimulateTrainingStep(context.Background(), 4, false, host, accels)
	if err != nil {
		t.Fatal(err)
	}
	if accelRes.AccelCalls == 0 {
		t.Fatal("no accelerator invocations recorded in the lowered kernel")
	}
	if baseRes.AccelCalls != 0 {
		t.Fatal("baseline lowering must not invoke accelerators")
	}
	if accelRes.Cycles >= baseRes.Cycles {
		t.Errorf("accelerated training step (%d cycles) not faster than host-only (%d)", accelRes.Cycles, baseRes.Cycles)
	}
}

// TestLoweredOrderingMatchesAnalytic: the full-pipeline simulation agrees
// with the analytic model on which application benefits more — the fully
// accelerated RecSys-lite over the conv-backprop-limited ConvNet-lite.
func TestLoweredOrderingMatchesAnalytic(t *testing.T) {
	host := config.OutOfOrderCore()
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 16}
	accels := map[string]soc.AccelModel{}
	for _, name := range []string{"acc_sgemm", "acc_elementwise"} {
		accels[name] = &accel.Model{Acc: accel.ByName(name, dp), Mode: accel.ModeClosedForm, SystemMHz: host.ClockMHz, MaxMemGBs: 24}
	}
	speedup := func(m *Model) float64 {
		withAcc, err := m.SimulateTrainingStep(context.Background(), 4, true, host, accels)
		if err != nil {
			t.Fatal(err)
		}
		hostOnly, err := m.SimulateTrainingStep(context.Background(), 4, false, host, accels)
		if err != nil {
			t.Fatal(err)
		}
		return float64(hostOnly.Cycles) / float64(withAcc.Cycles)
	}
	conv := speedup(liteConvNet())
	rec := speedup(liteRecSys())
	t.Logf("simulated training-step speedups: ConvNet-lite %.1fx, RecSys-lite %.1fx", conv, rec)
	if rec <= conv {
		t.Errorf("RecSys-lite (%.1fx) should gain more than ConvNet-lite (%.1fx): conv backprop stays on the host", rec, conv)
	}
	if conv <= 1 {
		t.Errorf("ConvNet-lite speedup %.2fx; forward acceleration should still win", conv)
	}
}
