package keras

// The three deep-learning applications of §VII-C.

// ConvNet is the residual CNN: an initial convolution with ReLU and batch
// normalization, three residual blocks of convolutional + residual layers,
// pooling, and a fully connected classifier. The SoC has no accelerator for
// convolutional backpropagation, so its training improvement is modest.
func ConvNet() *Model {
	residual := func(ch int) []Layer {
		return []Layer{
			Conv2D{Filters: ch, Kernel: 3},
			Elementwise{Kind: "batchnorm", OpsPerElem: 2},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Conv2D{Filters: ch, Kernel: 3},
			Elementwise{Kind: "add", OpsPerElem: 1},
			Elementwise{Kind: "relu", OpsPerElem: 1},
		}
	}
	layers := []Layer{
		Conv2D{Filters: 32, Kernel: 3},
		Elementwise{Kind: "relu", OpsPerElem: 1},
		Elementwise{Kind: "batchnorm", OpsPerElem: 2},
	}
	layers = append(layers, residual(32)...)
	layers = append(layers, residual(32)...)
	layers = append(layers, residual(32)...)
	layers = append(layers,
		MaxPool{Stride: 2},
		Dense{Units: 8192},
		Elementwise{Kind: "relu", OpsPerElem: 1},
		Dense{Units: 10},
	)
	return &Model{Name: "ConvNet", Input: Shape{H: 32, W: 32, C: 3}, Layers: layers}
}

// GraphSage samples graph neighborhoods by random walk, embeds visited
// nodes, and feeds the dense vectors through fully connected + ReLU layers.
// Sampling and embedding have no accelerator and run on the host (§VII-C).
func GraphSage() *Model {
	return &Model{
		Name:  "GraphSage",
		Input: Shape{C: 2048},
		Layers: []Layer{
			HostStage{Kind: "random-walk", Ops: 800_000},
			HostStage{Kind: "embedding", Ops: 320_000},
			Dense{Units: 2048},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Dense{Units: 1024},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Dense{Units: 256},
		},
	}
}

// RecSys is the neural recommendation model: two fully connected + ReLU
// blocks with batch normalization and dropout, then a final fully connected
// output layer. Every stage is accelerator-handled, yielding the largest
// improvement.
func RecSys() *Model {
	return &Model{
		Name:  "RecSys",
		Input: Shape{C: 4096},
		Layers: []Layer{
			Dense{Units: 2048},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Elementwise{Kind: "batchnorm", OpsPerElem: 2},
			Elementwise{Kind: "dropout", OpsPerElem: 1},
			Dense{Units: 1024},
			Elementwise{Kind: "relu", OpsPerElem: 1},
			Elementwise{Kind: "batchnorm", OpsPerElem: 2},
			Elementwise{Kind: "dropout", OpsPerElem: 1},
			Dense{Units: 512},
		},
	}
}

// Apps returns the §VII-C application set in paper order.
func Apps() []*Model { return []*Model{ConvNet(), GraphSage(), RecSys()} }
