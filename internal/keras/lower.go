package keras

import (
	"context"
	"fmt"
	"strings"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

// This file implements the paper's actual §VII-C mechanism end to end:
// "the accelerator invocation calls then appear in the instrumented LLVM
// that MosaicSim operates on, so once the application is compiled and
// executed, the accelerator invocations are simulated whenever MosaicSim
// encounters their function calls." A layer graph is lowered to a kernel in
// the mini-C language — accelerated passes become acc_* invocations, host
// passes become compute loops with the same MAC count — and the kernel runs
// through the full compile → trace → simulate pipeline.

// Lowered is a model lowered to a simulatable kernel.
type Lowered struct {
	Source string
	// ArenaBytes is the scratch arena the accelerator operands live in.
	ArenaBytes int64
	// HostElems sizes the host-loop operand buffer.
	HostElems int64
}

// gemmShape describes one GEMM-like accelerated pass.
type gemmShape struct{ m, n, k int64 }

// Lower generates the training-step kernel for one batch. useAccel=false
// lowers every pass to host loops (the baseline core-only system).
func (m *Model) Lower(batch int, useAccel bool) *Lowered {
	var sb strings.Builder
	sb.WriteString("void kernel(float* arena, double* host, long hostElems) {\n")
	sb.WriteString("  double s0 = 0.0;\n  double s1 = 0.0;\n  double s2 = 0.0;\n  double s3 = 0.0;\n")
	var arena int64
	var hostLoops int
	emitGEMM := func(g gemmShape) {
		// Operands at fixed arena offsets (timing needs addresses, not data).
		aOff := int64(0)
		bOff := g.m * g.k * 4
		cOff := bOff + g.k*g.n*4
		total := cOff + g.m*g.n*4
		if total > arena {
			arena = total
		}
		fmt.Fprintf(&sb, "  acc_sgemm(arena + %d, arena + %d, arena + %d, %d, %d, %d);\n",
			aOff/4, bOff/4, cOff/4, g.m, g.n, g.k)
	}
	emitElementwise := func(n int64) {
		if 3*n*4 > arena {
			arena = 3 * n * 4
		}
		fmt.Fprintf(&sb, "  acc_elementwise(arena, arena + %d, arena + %d, %d);\n", n, 2*n, n)
	}
	emitHost := func(macs int64) {
		iters := macs / 4
		if iters < 1 {
			iters = 1
		}
		hostLoops++
		v := fmt.Sprintf("h%d", hostLoops)
		fmt.Fprintf(&sb, "  for (long %s = 0; %s < %d; %s++) {\n", v, v, iters, v)
		fmt.Fprintf(&sb, "    double x%d = host[%s %% hostElems];\n", hostLoops, v)
		fmt.Fprintf(&sb, "    s0 += x%d * 1.5;\n    s1 += x%d * 2.5;\n    s2 += x%d * 3.5;\n    s3 += x%d * 4.5;\n",
			hostLoops, hostLoops, hostLoops, hostLoops)
		sb.WriteString("  }\n")
	}

	in := m.Input
	type pass struct {
		layer Layer
		in    Shape
		bwd   bool
	}
	var passes []pass
	for _, l := range m.Layers {
		passes = append(passes, pass{l, in, false})
		in = l.Out(in)
	}
	for i := len(m.Layers) - 1; i >= 0; i-- {
		passes = append(passes, pass{passes[i].layer, passes[i].in, true})
	}
	for _, p := range passes {
		cost := p.layer.Fwd(p.in)
		if p.bwd {
			cost = p.layer.Bwd(p.in)
		}
		if cost.MACs == 0 {
			continue
		}
		if useAccel && p.layer.Accelerated(p.bwd) {
			switch l := p.layer.(type) {
			case Dense:
				g := gemmShape{m: int64(batch), n: int64(l.Units), k: p.in.Elems()}
				emitGEMM(g)
				if p.bwd {
					emitGEMM(g) // weight gradients: second GEMM
				}
			case Conv2D:
				// im2col: (batch·H·W) x (K²·Cin) times (K²·Cin) x Cout.
				g := gemmShape{
					m: int64(batch) * int64(p.in.H) * int64(p.in.W),
					n: int64(l.Filters),
					k: int64(l.Kernel*l.Kernel) * int64(p.in.C),
				}
				emitGEMM(g)
				if p.bwd {
					emitGEMM(g)
				}
			default:
				// ReLU/BatchNorm/Dropout/Add/Pool: one element-wise pass
				// over the activations.
				emitElementwise(int64(batch) * p.in.Elems())
			}
		} else {
			emitHost(int64(batch) * cost.MACs)
		}
	}
	sb.WriteString("  host[0] = s0 + s1 + s2 + s3;\n}\n")
	if arena < 4096 {
		arena = 4096
	}
	return &Lowered{Source: sb.String(), ArenaBytes: arena, HostElems: 4096}
}

// SimulateTrainingStep runs the lowered kernel through the full pipeline on
// a single host core with the given accelerator models and returns the
// system result. The lowered kernel becomes an ad-hoc workload — named by
// model, batch, and lowering variant so accelerated and host-only lowerings
// never collide in the session engine's artifact cache — and functional
// accelerator implementations execute on the arena, so the DTG records real
// invocation parameters.
func (m *Model) SimulateTrainingStep(ctx context.Context, batch int, useAccel bool, host config.CoreConfig, accels map[string]soc.AccelModel) (soc.Result, error) {
	low := m.Lower(batch, useAccel)
	variant := "host"
	if useAccel {
		variant = "accel"
	}
	// Arena + host buffer + slack.
	img := low.ArenaBytes + low.HostElems*8 + (1 << 20)
	w := &workloads.Workload{
		Name: fmt.Sprintf("%s-b%d-%s", m.Name, batch, variant),
		Desc: fmt.Sprintf("lowered %s training step (batch %d, %s)", m.Name, batch, variant),
		Src:  low.Source,
		Mem:  img * 2,
		Setup: func(mem *interp.Memory, _ workloads.Scale) workloads.Instance {
			arena := mem.Alloc(low.ArenaBytes, 64)
			hostBuf := mem.Alloc(low.HostElems*8, 64)
			return workloads.Instance{
				Args: []uint64{arena, hostBuf, uint64(low.HostElems)},
				Acc:  accel.FuncRegistry(),
			}
		},
	}
	s, err := sim.NewSession(sim.Options{
		Workload: w,
		Config: &config.SystemConfig{
			Name:  m.Name,
			Cores: []config.CoreSpec{{Core: host, Count: 1}},
			Mem:   config.TableIIMem(),
		},
		Accels: accels,
	})
	if err != nil {
		return soc.Result{}, err
	}
	return s.Run(ctx)
}
