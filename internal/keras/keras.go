// Package keras implements MosaicSim-Go's TensorFlow/Keras performance
// modeling (§VII-C of the paper): deep-learning models are layer graphs
// whose forward and backward passes lower to accelerator invocations (via
// the accelerator performance models of §IV) or, for layers without
// accelerator support, to general-purpose-core execution. The package
// reproduces the paper's energy-delay-product comparison between an
// out-of-order server core and an accelerator-oriented SoC.
package keras

import (
	"fmt"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/power"
)

// Shape is a tensor shape (trailing dims of one sample).
type Shape struct {
	H, W, C int // H×W spatial, C channels; dense layers use C only (H=W=1)
}

// Elems returns the element count of the shape.
func (s Shape) Elems() int64 { return int64(max(s.H, 1)) * int64(max(s.W, 1)) * int64(s.C) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Cost is the work of one pass of a layer for a single sample.
type Cost struct {
	MACs  int64 // multiply-accumulates
	Bytes int64 // activation + weight traffic
}

// Layer is one node of the model graph.
type Layer interface {
	Name() string
	// Out returns the output shape given the input shape.
	Out(in Shape) Shape
	// Fwd and Bwd return per-sample costs.
	Fwd(in Shape) Cost
	Bwd(in Shape) Cost
	// Accelerated reports whether the SoC has accelerator support for the
	// given pass (§VII-C: e.g. no accelerator for conv backprop).
	Accelerated(backward bool) bool
}

// Conv2D is a 2D convolution (same padding).
type Conv2D struct {
	Filters int
	Kernel  int
	// BackpropAccel reflects whether the SoC provides a conv-backprop
	// accelerator (the paper's does not).
	BackpropAccel bool
}

// Name implements Layer.
func (l Conv2D) Name() string { return fmt.Sprintf("conv%dx%d-%d", l.Kernel, l.Kernel, l.Filters) }

// Out implements Layer.
func (l Conv2D) Out(in Shape) Shape { return Shape{H: in.H, W: in.W, C: l.Filters} }

// Fwd implements Layer: MACs = H·W·K²·Cin·Cout.
func (l Conv2D) Fwd(in Shape) Cost {
	macs := int64(in.H) * int64(in.W) * int64(l.Kernel*l.Kernel) * int64(in.C) * int64(l.Filters)
	bytes := 4 * (in.Elems() + l.Out(in).Elems() + int64(l.Kernel*l.Kernel*in.C*l.Filters))
	return Cost{MACs: macs, Bytes: bytes}
}

// Bwd implements Layer: gradient wrt inputs and weights ≈ 2× forward.
func (l Conv2D) Bwd(in Shape) Cost {
	f := l.Fwd(in)
	return Cost{MACs: 2 * f.MACs, Bytes: 2 * f.Bytes}
}

// Accelerated implements Layer.
func (l Conv2D) Accelerated(backward bool) bool { return !backward || l.BackpropAccel }

// Dense is a fully connected layer.
type Dense struct{ Units int }

// Name implements Layer.
func (l Dense) Name() string { return fmt.Sprintf("dense-%d", l.Units) }

// Out implements Layer.
func (l Dense) Out(in Shape) Shape { return Shape{C: l.Units} }

// Fwd implements Layer.
func (l Dense) Fwd(in Shape) Cost {
	macs := in.Elems() * int64(l.Units)
	return Cost{MACs: macs, Bytes: 4 * (in.Elems() + int64(l.Units) + macs/64)}
}

// Bwd implements Layer.
func (l Dense) Bwd(in Shape) Cost {
	f := l.Fwd(in)
	return Cost{MACs: 2 * f.MACs, Bytes: 2 * f.Bytes}
}

// Accelerated implements Layer.
func (l Dense) Accelerated(bool) bool { return true }

// Elementwise covers ReLU, BatchNorm, Dropout, and residual adds: one or a
// few ops per element, accelerated by the element-wise unit.
type Elementwise struct {
	Kind       string // "relu", "batchnorm", "dropout", "add"
	OpsPerElem int
}

// Name implements Layer.
func (l Elementwise) Name() string { return l.Kind }

// Out implements Layer.
func (l Elementwise) Out(in Shape) Shape { return in }

// Fwd implements Layer.
func (l Elementwise) Fwd(in Shape) Cost {
	ops := int64(max(l.OpsPerElem, 1))
	return Cost{MACs: in.Elems() * ops, Bytes: 8 * in.Elems()}
}

// Bwd implements Layer.
func (l Elementwise) Bwd(in Shape) Cost { return l.Fwd(in) }

// Accelerated implements Layer.
func (l Elementwise) Accelerated(bool) bool { return true }

// MaxPool halves spatial dimensions.
type MaxPool struct{ Stride int }

// Name implements Layer.
func (l MaxPool) Name() string { return "maxpool" }

// Out implements Layer.
func (l MaxPool) Out(in Shape) Shape {
	s := max(l.Stride, 2)
	return Shape{H: max(in.H/s, 1), W: max(in.W/s, 1), C: in.C}
}

// Fwd implements Layer.
func (l MaxPool) Fwd(in Shape) Cost { return Cost{MACs: in.Elems(), Bytes: 4 * in.Elems()} }

// Bwd implements Layer.
func (l MaxPool) Bwd(in Shape) Cost { return l.Fwd(in) }

// Accelerated implements Layer.
func (l MaxPool) Accelerated(bool) bool { return true }

// HostStage models non-neural work with no accelerator: GraphSage's random
// walk sampling and embedding lookup (§VII-C).
type HostStage struct {
	Kind string
	Ops  int64 // scalar operations per sample
}

// Name implements Layer.
func (l HostStage) Name() string { return l.Kind }

// Out implements Layer.
func (l HostStage) Out(in Shape) Shape { return in }

// Fwd implements Layer.
func (l HostStage) Fwd(in Shape) Cost { return Cost{MACs: l.Ops, Bytes: 8 * l.Ops} }

// Bwd implements Layer.
func (l HostStage) Bwd(in Shape) Cost { return Cost{} }

// Accelerated implements Layer.
func (l HostStage) Accelerated(bool) bool { return false }

// Model is a sequential layer graph.
type Model struct {
	Name   string
	Input  Shape
	Layers []Layer
}

// Estimate is a performance/energy estimate for one training step.
type Estimate struct {
	Cycles   int64
	EnergyPJ float64
}

// CoreParams models the general-purpose core executing tensor math.
type CoreParams struct {
	Cfg config.CoreConfig
	// FLOPsPerCycle is the sustained MAC throughput of the core.
	FLOPsPerCycle float64
	// MemBytesPerCycle is the sustained memory bandwidth seen by the core.
	MemBytesPerCycle float64
}

// DefaultOoOCore returns the §VII-C baseline: an out-of-order server core.
func DefaultOoOCore() CoreParams {
	return CoreParams{Cfg: config.OutOfOrderCore(), FLOPsPerCycle: 2, MemBytesPerCycle: 8}
}

func (p CoreParams) costCycles(c Cost) int64 {
	compute := float64(c.MACs) / p.FLOPsPerCycle
	memory := float64(c.Bytes) / p.MemBytesPerCycle
	if compute > memory {
		return int64(compute)
	}
	return int64(memory)
}

func (p CoreParams) costEnergyPJ(c Cost) float64 {
	perMAC := config.EnergyPerClassPJ[config.ClassFPMul] + config.EnergyPerClassPJ[config.ClassFPALU]
	return float64(c.MACs)*perMAC + float64(c.Bytes)*2.5
}

// trainCosts accumulates forward+backward costs per layer.
func (m *Model) trainCosts() []struct {
	layer Layer
	fwd   Cost
	bwd   Cost
} {
	var out []struct {
		layer Layer
		fwd   Cost
		bwd   Cost
	}
	in := m.Input
	for _, l := range m.Layers {
		out = append(out, struct {
			layer Layer
			fwd   Cost
			bwd   Cost
		}{l, l.Fwd(in), l.Bwd(in)})
		in = l.Out(in)
	}
	return out
}

// EstimateOnCore estimates one training step of batch samples on the
// baseline core alone.
func (m *Model) EstimateOnCore(p CoreParams, batch int) Estimate {
	var e Estimate
	for _, lc := range m.trainCosts() {
		for _, c := range []Cost{lc.fwd, lc.bwd} {
			e.Cycles += int64(batch) * p.costCycles(c)
			e.EnergyPJ += float64(batch) * p.costEnergyPJ(c)
		}
	}
	return e
}

// SoCParams models the accelerator-oriented SoC: n accelerator instances
// sharing memory bandwidth, with unaccelerated stages falling back to the
// host core.
type SoCParams struct {
	Host      CoreParams
	Instances int
	// MACsPerCycle is the per-instance accelerator MAC throughput.
	MACsPerCycle float64
	// MemBytesPerCycle is the DMA bandwidth per instance.
	MemBytesPerCycle float64
	// PowerW is per-instance accelerator power.
	PowerW float64
	// ClockMHz is the accelerator clock.
	ClockMHz int
}

// DefaultSoC returns the §VII-C SoC with n accelerator instances built from
// the §VI-A accelerator family.
func DefaultSoC(n int) SoCParams {
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 20}
	a := accel.NewSGEMM(dp)
	return SoCParams{
		Host:             DefaultOoOCore(),
		Instances:        n,
		MACsPerCycle:     float64(dp.Lanes),
		MemBytesPerCycle: float64(a.DMABytesPerCycle),
		PowerW:           a.PowerW,
		ClockMHz:         a.ClockMHz,
	}
}

// EstimateOnSoC estimates one training step on the accelerator SoC:
// accelerated passes run across the instances; unaccelerated passes run on
// the host core (§VII-C: ConvNet backprop and GraphSage sampling fall back).
func (m *Model) EstimateOnSoC(p SoCParams, batch int) Estimate {
	var e Estimate
	inst := max(p.Instances, 1)
	for _, lc := range m.trainCosts() {
		passes := []struct {
			c        Cost
			backward bool
		}{{lc.fwd, false}, {lc.bwd, true}}
		for _, pass := range passes {
			if pass.c.MACs == 0 && pass.c.Bytes == 0 {
				continue
			}
			if lc.layer.Accelerated(pass.backward) {
				compute := float64(pass.c.MACs) * float64(batch) / (p.MACsPerCycle * float64(inst))
				memory := float64(pass.c.Bytes) * float64(batch) / (p.MemBytesPerCycle * float64(inst))
				cyc := int64(compute)
				if memory > compute {
					cyc = int64(memory)
				}
				e.Cycles += cyc
				seconds := float64(cyc) / (float64(p.ClockMHz) * 1e6)
				e.EnergyPJ += p.PowerW * float64(inst) * seconds * 1e12
			} else {
				// Host fallback runs at the host clock; convert to
				// SoC-clock cycles so the estimate stays in one domain.
				hostCyc := int64(batch) * p.Host.costCycles(pass.c)
				e.Cycles += hostCyc * int64(p.ClockMHz) / int64(p.Host.Cfg.ClockMHz)
				e.EnergyPJ += float64(batch) * p.Host.costEnergyPJ(pass.c)
			}
		}
	}
	return e
}

// EDPImprovement compares a training step on the baseline core vs the SoC
// (Fig. 14's metric).
func (m *Model) EDPImprovement(core CoreParams, socp SoCParams, batch int) float64 {
	base := m.EstimateOnCore(core, batch)
	opt := m.EstimateOnSoC(socp, batch)
	b := power.Summary{Cycles: base.Cycles, ClockMHz: core.Cfg.ClockMHz, DynamicPJ: base.EnergyPJ, AreaMM2: core.Cfg.AreaMM2}
	o := power.Summary{Cycles: opt.Cycles, ClockMHz: socp.ClockMHz, DynamicPJ: opt.EnergyPJ, AreaMM2: core.Cfg.AreaMM2}
	return power.Improvement(b, o)
}
