// Package store is mosaicd's disk-backed persistence layer: a
// content-addressed job store plus an artifact blob index, built so a
// restarted daemon resumes queued jobs, replays finished event streams
// byte-identically, and keeps its schedule-capture/trace artifacts instead
// of recomputing them.
//
// Layout under the root directory:
//
//	jobs/<digest>/job.json      the job record (ID, tenant, priority, spec)
//	jobs/<digest>/events.ndjson append-only event log, one JSON line each
//	jobs/<digest>/report.json   the final report (done jobs only)
//	artifacts/<name>            opaque blobs (traces, schedules) keyed by name
//
// <digest> is the hex SHA-256 of the job's identity (ID + canonical spec
// JSON), so a job's directory name is a content address: two stores never
// disagree about where a job lives, and a partially-created directory from a
// crash is simply re-created idempotently. Every one-shot file (job.json,
// report.json, artifact blobs) is written to a temp file and renamed into
// place, so readers never observe a torn write; the event log is an O_APPEND
// stream whose recovery path tolerates a torn final line (the only state a
// kill can leave it in).
//
// The store is deliberately ignorant of the jobs package's types: events are
// opaque JSON lines, specs are raw JSON. That keeps it a leaf dependency —
// internal/jobs persists through it, internal/sim exports artifacts into it,
// and neither import cycles back.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// JobRecord is the durable identity of one job: everything needed to rebuild
// its admission-time state after a restart. Spec is stored as the normalized
// raw JSON the manager admitted, so recovery re-runs exactly what was
// accepted (not a re-normalization under newer defaults).
type JobRecord struct {
	ID        string          `json:"id"`
	Digest    string          `json:"digest"`
	Tenant    string          `json:"tenant,omitempty"`
	Priority  string          `json:"priority,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Spec      json.RawMessage `json:"spec"`
}

// JobSnapshot is one recovered job: its record, every intact event line in
// append order, and the final report if one was written.
type JobSnapshot struct {
	Rec    JobRecord
	Events []json.RawMessage
	Report json.RawMessage
}

// Digest computes a job's content address: hex SHA-256 over the ID and the
// canonical spec JSON, separated by a newline so neither can masquerade as
// the other.
func Digest(id string, spec []byte) string {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{'\n'})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))
}

// Store is one open data directory. It is safe for concurrent use; each
// job's event appender is a single O_APPEND file handle, cached until the
// job is closed.
type Store struct {
	dir string

	mu        sync.Mutex
	appenders map[string]*os.File // digest → open events.ndjson handle
	closed    bool
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "jobs"), filepath.Join(dir, "artifacts")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir, appenders: map[string]*os.File{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobDir(digest string) string {
	return filepath.Join(s.dir, "jobs", digest)
}

// writeFileAtomic lands data at path via a temp file and rename, so a crash
// never leaves a torn file where readers look.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// isClosed reports whether Close has run. Writers check it so a closed
// store refuses everything, exactly like a dead process — which is what
// crash tests use Close to simulate.
func (s *Store) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// CreateJob persists a job record under its digest directory. It is
// idempotent: re-creating an existing job (a crash between directory
// creation and the first event) rewrites the same record.
func (s *Store) CreateJob(rec JobRecord) error {
	if s.isClosed() {
		return fmt.Errorf("store: closed")
	}
	if rec.Digest == "" {
		return fmt.Errorf("store: job %s has no digest", rec.ID)
	}
	dir := s.jobDir(rec.Digest)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "job.json"), append(b, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// AppendEvent appends one JSON line to the job's event log. The line must be
// a single complete JSON value without embedded newlines; the store adds the
// terminating newline. Appends are ordered per job by the caller (the jobs
// manager holds the job lock across emit+persist).
func (s *Store) AppendEvent(digest string, line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	f := s.appenders[digest]
	if f == nil {
		path := filepath.Join(s.jobDir(digest), "events.ndjson")
		// A crash mid-append can leave the log without a trailing newline.
		// Terminate the torn tail before appending, so the new line does not
		// glue onto it (the tear then reads as one invalid line, which
		// recovery drops; the new line stays intact).
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 && b[len(b)-1] != '\n' {
			if g, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
				_, _ = g.Write([]byte{'\n'})
				g.Close()
			}
		}
		var err error
		f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.appenders[digest] = f
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// PutReport persists a finished job's report atomically.
func (s *Store) PutReport(digest string, report []byte) error {
	if s.isClosed() {
		return fmt.Errorf("store: closed")
	}
	if err := writeFileAtomic(filepath.Join(s.jobDir(digest), "report.json"), report); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// CloseJob releases the job's event appender (terminal jobs append no more).
// Syncing the log here bounds what a subsequent crash can lose to jobs that
// were still live.
func (s *Store) CloseJob(digest string) {
	s.mu.Lock()
	f := s.appenders[digest]
	delete(s.appenders, digest)
	s.mu.Unlock()
	if f != nil {
		_ = f.Sync()
		_ = f.Close()
	}
}

// Jobs scans the store and returns every recoverable job, sorted by ID (the
// manager's IDs sort in admission order). Directories without an intact
// job.json are skipped — a crash between MkdirAll and the record rename
// leaves exactly that, and the job was never acknowledged to a client. A
// torn final event line (the only tear an O_APPEND log can suffer) is
// dropped; every intact line is returned verbatim, so replayed event logs
// are byte-identical to what was served before the restart.
func (s *Store) Jobs() ([]JobSnapshot, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []JobSnapshot
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		snap, err := s.loadJob(e.Name())
		if err != nil {
			continue // unreadable record: treat as never-acknowledged
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rec.ID < out[j].Rec.ID })
	return out, nil
}

func (s *Store) loadJob(digest string) (JobSnapshot, error) {
	dir := s.jobDir(digest)
	b, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return JobSnapshot{}, err
	}
	var snap JobSnapshot
	if err := json.Unmarshal(b, &snap.Rec); err != nil {
		return JobSnapshot{}, err
	}
	if snap.Rec.Digest != digest {
		return JobSnapshot{}, fmt.Errorf("store: record digest %q under directory %q", snap.Rec.Digest, digest)
	}
	if ev, err := os.ReadFile(filepath.Join(dir, "events.ndjson")); err == nil {
		sc := bufio.NewScanner(strings.NewReader(string(ev)))
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 || !json.Valid(line) {
				continue // torn tail (or blank): drop, keep the intact prefix
			}
			snap.Events = append(snap.Events, json.RawMessage(append([]byte(nil), line...)))
		}
	}
	if rep, err := os.ReadFile(filepath.Join(dir, "report.json")); err == nil && json.Valid(rep) {
		snap.Report = rep
	}
	return snap, nil
}

// sanitizeBlobName keeps artifact names inside the artifacts directory.
func sanitizeBlobName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("store: bad artifact name %q", name)
	}
	return nil
}

// PutArtifact lands an opaque blob under name, atomically, if absent.
// Artifact names are content addresses (they encode the sim cache key), so
// an existing blob is already the right bytes and the write is skipped.
// It reports whether the blob was newly written.
func (s *Store) PutArtifact(name string, data []byte) (bool, error) {
	if err := sanitizeBlobName(name); err != nil {
		return false, err
	}
	if s.isClosed() {
		return false, fmt.Errorf("store: closed")
	}
	path := filepath.Join(s.dir, "artifacts", name)
	if _, err := os.Stat(path); err == nil {
		return false, nil
	}
	if err := writeFileAtomic(path, data); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	return true, nil
}

// Artifacts streams every stored blob to fn. Iteration stops on the first
// error fn returns.
func (s *Store) Artifacts(fn func(name string, data []byte) error) error {
	dir := filepath.Join(s.dir, "artifacts")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue // a blob is a cache entry; unreadable means rebuildable
		}
		if err := fn(e.Name(), b); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and releases every open event appender.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var first error
	for d, f := range s.appenders {
		_ = f.Sync()
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.appenders, d)
	}
	return first
}
