package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJobRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"workload":"sgemm","scale":"tiny"}`)
	d := Digest("j000001", spec)
	rec := JobRecord{ID: "j000001", Digest: d, Tenant: "acme", Priority: "high", Spec: spec}
	if err := s.CreateJob(rec); err != nil {
		t.Fatal(err)
	}
	lines := [][]byte{
		[]byte(`{"seq":0,"type":"state","state":"queued"}`),
		[]byte(`{"seq":1,"type":"state","state":"running"}`),
		[]byte(`{"seq":2,"type":"stage","stage":"run","seconds":0.5}`),
	}
	for _, l := range lines {
		if err := s.AppendEvent(d, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutReport(d, []byte(`{"Cycles":42}`)); err != nil {
		t.Fatal(err)
	}
	s.CloseJob(d)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (a restart) and recover.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := s2.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	got := jobs[0]
	if got.Rec.ID != "j000001" || got.Rec.Tenant != "acme" || got.Rec.Priority != "high" {
		t.Errorf("record = %+v", got.Rec)
	}
	if !bytes.Equal(got.Rec.Spec, spec) {
		t.Errorf("spec = %s, want %s", got.Rec.Spec, spec)
	}
	if len(got.Events) != len(lines) {
		t.Fatalf("recovered %d events, want %d", len(got.Events), len(lines))
	}
	for i, l := range lines {
		if !bytes.Equal(got.Events[i], l) {
			t.Errorf("event %d = %s, want byte-identical %s", i, got.Events[i], l)
		}
	}
	if string(got.Report) != `{"Cycles":42}` {
		t.Errorf("report = %s", got.Report)
	}
}

// TestTornTailLineDropped simulates a kill mid-append: the final event line
// is truncated. Recovery must keep every intact line and drop only the tear.
func TestTornTailLineDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"workload":"bfs"}`)
	d := Digest("j000002", spec)
	if err := s.CreateJob(JobRecord{ID: "j000002", Digest: d, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvent(d, []byte(`{"seq":0,"type":"state","state":"queued"}`)); err != nil {
		t.Fatal(err)
	}
	s.CloseJob(d)
	// Tear: raw partial append without a newline-terminated JSON value.
	f, err := os.OpenFile(filepath.Join(dir, "jobs", d, "events.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":1,"type":"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Events) != 1 {
		t.Fatalf("jobs = %+v; want 1 job with 1 intact event", jobs)
	}
}

// TestUnacknowledgedDirectorySkipped: a crash between MkdirAll and the
// job.json rename leaves a bare directory; recovery must skip it.
func TestUnacknowledgedDirectorySkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs", "deadbeef"), 0o755); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("recovered %d jobs from a bare directory, want 0", len(jobs))
	}
}

func TestJobsSortedByID(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j000003", "j000001", "j000002"} {
		spec := []byte(fmt.Sprintf(`{"workload":"sgemm","id":%q}`, id))
		if err := s.CreateJob(JobRecord{ID: id, Digest: Digest(id, spec), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, j := range jobs {
		ids = append(ids, j.Rec.ID)
	}
	want := []string{"j000001", "j000002", "j000003"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Errorf("ids = %v, want %v", ids, want)
	}
}

func TestArtifactBlobs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wrote, err := s.PutArtifact("trace-abc123", []byte("payload"))
	if err != nil || !wrote {
		t.Fatalf("first put: wrote=%v err=%v", wrote, err)
	}
	// Content-addressed: a second put of the same name is a no-op.
	wrote, err = s.PutArtifact("trace-abc123", []byte("different"))
	if err != nil || wrote {
		t.Fatalf("second put: wrote=%v err=%v", wrote, err)
	}
	if _, err := s.PutArtifact("../escape", []byte("x")); err == nil {
		t.Error("path-escaping artifact name accepted")
	}
	got := map[string]string{}
	if err := s.Artifacts(func(name string, data []byte) error {
		got[name] = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["trace-abc123"] != "payload" {
		t.Errorf("artifacts = %v", got)
	}
}

// TestDigestBinding: the digest covers both ID and spec, and the record's
// digest must match its directory on load.
func TestDigestBinding(t *testing.T) {
	spec := []byte(`{"workload":"sgemm"}`)
	if Digest("j1", spec) == Digest("j2", spec) {
		t.Error("digest ignores the job ID")
	}
	if Digest("j1", spec) == Digest("j1", []byte(`{"workload":"bfs"}`)) {
		t.Error("digest ignores the spec")
	}
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A record whose digest disagrees with its directory is skipped.
	bad := filepath.Join(dir, "jobs", "0000")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	rec, _ := json.Marshal(JobRecord{ID: "jX", Digest: "ffff", Spec: spec})
	if err := os.WriteFile(filepath.Join(bad, "job.json"), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := s.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("mismatched-digest record recovered: %+v", jobs)
	}
}
