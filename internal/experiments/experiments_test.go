package experiments

import (
	"context"
	"strings"
	"testing"

	"mosaicsim/internal/workloads"
)

// The experiment tests run at Tiny scale to stay fast; the shape assertions
// are the ones the paper's evaluation makes. cmd/experiments and the root
// benchmarks run the same code at Small scale.

func tinyRunner() *Runner { return NewRunner(workloads.Tiny) }

func TestIDsAllRunnable(t *testing.T) {
	r := tinyRunner()
	for _, id := range IDs() {
		rep, err := r.Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id || rep.Table == nil {
			t.Errorf("%s: malformed report", id)
		}
		if len(rep.Table.String()) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	if _, err := r.Run(context.Background(), "fig99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestFig5GeomeanPlausible(t *testing.T) {
	rep, err := tinyRunner().Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	gm := rep.Values["geomean"]
	// Paper: 1.099x. The shape requirement: near 1, within a small factor.
	if gm < 0.6 || gm > 2.2 {
		t.Errorf("accuracy geomean %.3f implausible (paper 1.099)", gm)
	}
	for _, w := range workloads.Parboil() {
		if rep.Values[w.Name] <= 0 {
			t.Errorf("%s missing accuracy factor", w.Name)
		}
	}
}

func TestFig6ComputeBeatsMemoryBound(t *testing.T) {
	// At Tiny scale working sets fit in the caches, so absolute memory-bound
	// rankings (bfs lowest) only emerge at the Small scale the harness uses;
	// the robust Tiny-scale shape is compute-bound > streaming-bound.
	rep, err := tinyRunner().Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, compute := range []string{"sgemm", "sad", "mri-q", "cutcp"} {
		for _, memory := range []string{"lbm", "stencil", "spmv"} {
			if rep.Values[compute] <= rep.Values[memory] {
				t.Errorf("compute-bound %s IPC (%.2f) should beat streaming %s (%.2f)",
					compute, rep.Values[compute], memory, rep.Values[memory])
			}
		}
	}
}

func TestFig8SGEMMNearLinear(t *testing.T) {
	rep, err := tinyRunner().FigScaling(context.Background(), "fig8", "sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if sp := rep.Values["sim8"]; sp < 4 {
		t.Errorf("SGEMM 8-thread simulated speedup %.2f too sublinear (paper ~linear)", sp)
	}
	// Simulated and reference trends agree within a modest factor at every
	// point (the paper's "nearly perfectly captures" claim).
	for _, k := range []string{"2", "4", "8"} {
		sim, ref := rep.Values["sim"+k], rep.Values["ref"+k]
		if sim/ref > 1.6 || ref/sim > 1.6 {
			t.Errorf("threads=%s: sim %.2f vs ref %.2f diverge", k, sim, ref)
		}
	}
}

func TestFig9SPMVSublinear(t *testing.T) {
	rep, err := tinyRunner().FigScaling(context.Background(), "fig9", "spmv")
	if err != nil {
		t.Fatal(err)
	}
	if sp := rep.Values["sim8"]; sp > 7.5 {
		t.Errorf("SPMV 8-thread speedup %.2f should be bandwidth-throttled below linear", sp)
	}
	if sp := rep.Values["sim2"]; sp < 1.2 {
		t.Errorf("SPMV 2-thread speedup %.2f shows no scaling at all", sp)
	}
}

func TestFig10ModelAccuracy(t *testing.T) {
	rep := Fig10()
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		if a := rep.Values[name+"/rtl"]; a < 0.9 {
			t.Errorf("%s closed-form vs RTL accuracy %.3f below paper's 97-100%% band (tolerance 90%%)", name, a)
		}
		if a := rep.Values[name+"/fpga"]; a < 0.75 {
			t.Errorf("%s closed-form vs FPGA accuracy %.3f below plausible band (paper >89%%)", name, a)
		}
	}
}

func TestFig11DAEWins(t *testing.T) {
	rep, err := tinyRunner().Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ooo := rep.Values["1 OoO"]
	homo8 := rep.Values["8 InO (OoO-area-equiv homogeneous)"]
	dae4 := rep.Values["4 DAE pairs (OoO-area-equiv heterogeneous)"]
	if ooo <= 1 {
		t.Errorf("OoO speedup %.2f should beat the in-order baseline", ooo)
	}
	if dae4 <= homo8 {
		t.Errorf("heterogeneous DAE (%.2f) should beat homogeneous parallelism (%.2f) at equal area", dae4, homo8)
	}
	if dae4 < 1.4*ooo {
		t.Errorf("DAE at OoO-equal-area (%.2f) should approach 2x the OoO core (%.2f), got %.2fx", dae4, ooo, dae4/ooo)
	}
}

func TestFig12AccelDominatesSGEMM(t *testing.T) {
	rep, err := tinyRunner().Fig12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	accSp := rep.Values["sgemm/Accel"]
	if accSp < 10 {
		t.Errorf("SGEMM accelerator speedup %.1f too low (paper ~45x)", accSp)
	}
	for _, sys := range []string{"4 InO", "8 InO", "1 OoO", "4+4 InO DAE"} {
		if accSp <= rep.Values["sgemm/"+sys] {
			t.Errorf("accelerator (%.1f) should dominate %s (%.1f) on SGEMM", accSp, sys, rep.Values["sgemm/"+sys])
		}
	}
	// EWSD benefits most from DAE among single-kernel options (paper ~6x).
	dae := rep.Values["ewsd/4+4 InO DAE"]
	if dae <= rep.Values["ewsd/1 OoO"] {
		t.Errorf("EWSD DAE (%.2f) should beat 1 OoO (%.2f)", dae, rep.Values["ewsd/1 OoO"])
	}
}

func TestFig13AccelDAEBestEverywhere(t *testing.T) {
	rep, err := tinyRunner().Fig13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []string{"dense-heavy (75% SGEMM)", "equal (50/50)", "sparse-heavy (25% SGEMM)"} {
		best := rep.Values["4+4 InO DAE w/Accel/"+mix]
		for _, sys := range []string{"4 InO", "8 InO", "1 OoO", "4+4 InO DAE"} {
			if best < rep.Values[sys+"/"+mix] {
				t.Errorf("mix %q: DAE w/Accel (%.2f) beaten by %s (%.2f); paper has it best everywhere",
					mix, best, sys, rep.Values[sys+"/"+mix])
			}
		}
	}
}

func TestFig14Bands(t *testing.T) {
	rep := Fig14()
	conv, sage, rec := rep.Values["ConvNet"], rep.Values["GraphSage"], rep.Values["RecSys"]
	if !(rec > sage && sage > conv && conv > 1) {
		t.Errorf("fig14 ordering wrong: %v", rep.Values)
	}
}

func TestStorageMemoryTracesDominate(t *testing.T) {
	rep, err := tinyRunner().Storage(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table.String(), "bfs") {
		t.Error("storage table missing benchmarks")
	}
	for _, w := range workloads.Parboil() {
		if rep.Values[w.Name] <= 0 {
			t.Errorf("%s: no trace size", w.Name)
		}
	}
}

// TestParallelSweepDeterminism: the sweep engine must not change results —
// the same experiments rendered with a serial runner and an 8-worker runner
// are byte-identical.
func TestParallelSweepDeterminism(t *testing.T) {
	render := func(jobs int) string {
		r := tinyRunner()
		r.Jobs = jobs
		var sb strings.Builder
		for _, id := range []string{"fig5", "fig11", "fig12"} {
			rep, err := r.Run(context.Background(), id)
			if err != nil {
				t.Fatalf("jobs=%d %s: %v", jobs, id, err)
			}
			sb.WriteString(rep.String())
		}
		return sb.String()
	}
	serial := render(1)
	fanned := render(8)
	if serial != fanned {
		t.Errorf("jobs=1 and jobs=8 outputs differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", serial, fanned)
	}
}

func TestTablesRender(t *testing.T) {
	for _, rep := range []*Report{Fig1(), Tab1(), Tab2()} {
		out := rep.String()
		if len(out) < 100 {
			t.Errorf("%s: suspiciously short output:\n%s", rep.ID, out)
		}
	}
	if Tab2().Values["ooo_area"] != 8.44 {
		t.Error("Table II OoO area wrong")
	}
}
