package experiments

import (
	"bytes"
	"context"
	"fmt"

	"mosaicsim/internal/config"
	"mosaicsim/internal/href"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

// paperFig5 records the paper's per-benchmark accuracy factors for the
// side-by-side EXPERIMENTS.md comparison.
var paperFig5 = map[string]float64{
	"bfs": 0.97, "cutcp": 0.72, "histo": 2.21, "lbm": 0.88,
	"mri-gridding": 1.53, "mri-q": 0.16, "sad": 1.11, "sgemm": 1.65,
	"spmv": 1.37, "stencil": 1.03, "tpacf": 3.29,
}

// paperFig6 records the paper's IPC characterization.
var paperFig6 = map[string]float64{
	"bfs": 0.84, "tpacf": 1.36, "histo": 1.4, "stencil": 1.65,
	"lbm": 1.95, "spmv": 2.06, "mri-gridding": 2.35, "mri-q": 2.42,
	"cutcp": 2.48, "sgemm": 3.05, "sad": 3.7,
}

// xeonRun simulates a workload on the Table I Xeon substitute at a thread
// count; the session shares its traced artifact with the href legs through
// the runner's cache.
func (r *Runner) xeonRun(ctx context.Context, w *workloads.Workload, threads int) (soc.Result, error) {
	s, err := r.session(w, sim.Options{Config: config.XeonSystem(threads)})
	if err != nil {
		return soc.Result{}, err
	}
	return s.Run(ctx)
}

// Fig5 reproduces the accuracy study: simulated cycles over
// reference-machine cycles per Parboil benchmark, with the geomean the paper
// reports as 1.099x.
func (r *Runner) Fig5(ctx context.Context) (*Report, error) {
	tbl := stats.NewTable("Fig. 5 — runtime accuracy factor vs reference machine",
		"benchmark", "mosaic cycles", "reference cycles", "accuracy", "paper")
	values := map[string]float64{}
	ws := workloads.Parboil()
	simC := make([]int64, len(ws))
	refC := make([]int64, len(ws))
	err := parallel.ForErrCtx(ctx, r.Jobs, len(ws), func(i int) error {
		art, err := r.artifact(ctx, ws[i], 1)
		if err != nil {
			return err
		}
		res, err := r.xeonRun(ctx, ws[i], 1)
		if err != nil {
			return err
		}
		ref, err := href.MeasureCtx(ctx, art.Graph, art.Trace)
		if err != nil {
			return err
		}
		simC[i], refC[i] = res.Cycles, ref
		return nil
	})
	if err != nil {
		return nil, err
	}
	var factors []float64
	for i, w := range ws {
		acc := float64(simC[i]) / float64(refC[i])
		factors = append(factors, acc)
		values[w.Name] = acc
		tbl.Row(w.Name, simC[i], refC[i], acc, paperFig5[w.Name])
	}
	gm := stats.Geomean(factors)
	values["geomean"] = gm
	tbl.Row("geomean", "", "", gm, 1.099)
	return &Report{
		ID: "fig5", Title: "Accuracy factors", Table: tbl, Values: values,
		Notes: "reference machine is the href hardware-reference model (Table I substitute)",
	}, nil
}

// Fig6 reproduces the IPC characterization: lower IPC = memory-bound, higher
// = compute-bound, sorted ascending as in the paper.
func (r *Runner) Fig6(ctx context.Context) (*Report, error) {
	type row struct {
		name string
		ipc  float64
	}
	ws := workloads.Parboil()
	rows := make([]row, len(ws))
	values := map[string]float64{}
	err := parallel.ForErrCtx(ctx, r.Jobs, len(ws), func(i int) error {
		res, err := r.xeonRun(ctx, ws[i], 1)
		if err != nil {
			return err
		}
		rows[i] = row{ws[i].Name, res.IPC}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rw := range rows {
		values[rw.name] = rw.ipc
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].ipc < rows[i].ipc {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	tbl := stats.NewTable("Fig. 6 — IPC characterization (ascending)", "benchmark", "IPC", "paper IPC")
	for _, rw := range rows {
		tbl.Row(rw.name, rw.ipc, paperFig6[rw.name])
	}
	return &Report{
		ID: "fig6", Title: "IPC characterization", Table: tbl, Values: values,
		Notes: "lower IPC implies memory-bound, higher implies compute-bound (§VI-A)",
	}, nil
}

// FigScaling reproduces Figs. 7-9: simulated vs reference speedups for 1, 2,
// 4, 8 threads, normalized to single-thread performance per model.
func (r *Runner) FigScaling(ctx context.Context, id, workload string) (*Report, error) {
	w := workloads.ByName(workload)
	if w == nil {
		return nil, fmt.Errorf("no workload %q", workload)
	}
	threads := []int{1, 2, 4, 8}
	simCycles := map[int]int64{}
	refCycles := map[int]int64{}
	simArr := make([]int64, len(threads))
	refArr := make([]int64, len(threads))
	err := parallel.ForErrCtx(ctx, r.Jobs, len(threads), func(i int) error {
		t := threads[i]
		art, err := r.artifact(ctx, w, t)
		if err != nil {
			return err
		}
		res, err := r.xeonRun(ctx, w, t)
		if err != nil {
			return err
		}
		ref, err := href.MeasureCtx(ctx, art.Graph, art.Trace)
		if err != nil {
			return err
		}
		simArr[i], refArr[i] = res.Cycles, ref
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, t := range threads {
		simCycles[t] = simArr[i]
		refCycles[t] = refArr[i]
	}
	tbl := stats.NewTable(
		fmt.Sprintf("%s — %s scaling (speedup over 1 thread)", figTitle(id), workload),
		"threads", "reference speedup", "mosaicsim speedup")
	values := map[string]float64{}
	for _, t := range threads {
		refSp := float64(refCycles[1]) / float64(refCycles[t])
		simSp := float64(simCycles[1]) / float64(simCycles[t])
		values[fmt.Sprintf("ref%d", t)] = refSp
		values[fmt.Sprintf("sim%d", t)] = simSp
		tbl.Row(t, refSp, simSp)
	}
	return &Report{ID: id, Title: workload + " scaling", Table: tbl, Values: values}, nil
}

func figTitle(id string) string {
	switch id {
	case "fig7":
		return "Fig. 7"
	case "fig8":
		return "Fig. 8"
	case "fig9":
		return "Fig. 9"
	}
	return id
}

// Storage reproduces the §VI-B storage study: encoded trace sizes per
// benchmark.
func (r *Runner) Storage(ctx context.Context) (*Report, error) {
	tbl := stats.NewTable("§VI-B — trace storage requirements",
		"benchmark", "dyn. instrs", "mem events", "trace bytes", "bytes/instr")
	values := map[string]float64{}
	ws := workloads.Parboil()
	type sizes struct {
		bytes, instrs, events int64
	}
	rows := make([]sizes, len(ws))
	err := parallel.ForErrCtx(ctx, r.Jobs, len(ws), func(i int) error {
		art, err := r.artifact(ctx, ws[i], 1)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		n, err := art.Trace.WriteTo(&buf)
		if err != nil {
			return err
		}
		rows[i] = sizes{bytes: n, instrs: art.Trace.TotalDynInstrs(), events: art.Trace.TotalMemEvents()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, w := range ws {
		per := float64(rows[i].bytes) / float64(rows[i].instrs)
		values[w.Name] = float64(rows[i].bytes)
		tbl.Row(w.Name, rows[i].instrs, rows[i].events, rows[i].bytes, per)
	}
	return &Report{
		ID: "storage", Title: "Trace storage", Table: tbl, Values: values,
		Notes: "memory traces dominate, as in the paper (BFS 1.3 GB vs SGEMM 99 MB at Parboil reference scale)",
	}, nil
}
