// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI, §VII) on MosaicSim-Go's own substrates: the workload
// suite, the timing simulator, the hardware-reference model, the accelerator
// models, the DAE compiler pass, and the DNN performance models. Each
// experiment returns both a rendered table and machine-readable values so
// the CLI, the benchmarks, and the tests share one implementation.
package experiments

import (
	"fmt"
	"sort"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Report is one regenerated artifact.
type Report struct {
	ID     string
	Title  string
	Table  *stats.Table
	Values map[string]float64
	Notes  string
}

func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// Runner executes experiments at a chosen workload scale with caching of
// traces shared between experiments.
type Runner struct {
	Scale workloads.Scale

	traceCache map[string]*tracedKernel
}

type tracedKernel struct {
	graph *ddg.Graph
	tr    *trace.Trace
}

// NewRunner builds a Runner; Small is the scale the paper-facing harness
// uses.
func NewRunner(s workloads.Scale) *Runner {
	return &Runner{Scale: s, traceCache: map[string]*tracedKernel{}}
}

// traced returns (cached) DDG + trace for a workload at a tile count.
func (r *Runner) traced(w *workloads.Workload, tiles int) (*ddg.Graph, *trace.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d", w.Name, tiles, r.Scale)
	if c, ok := r.traceCache[key]; ok {
		return c.graph, c.tr, nil
	}
	g, tr, err := w.Trace(tiles, r.Scale)
	if err != nil {
		return nil, nil, err
	}
	r.traceCache[key] = &tracedKernel{graph: g, tr: tr}
	return g, tr, nil
}

// simulate runs a homogeneous system over a traced kernel.
func simulate(cfg *config.SystemConfig, g *ddg.Graph, tr *trace.Trace, accels map[string]soc.AccelModel) (soc.Result, error) {
	sys, err := soc.NewSPMD(cfg, g, tr, accels)
	if err != nil {
		return soc.Result{}, err
	}
	if err := sys.Run(0); err != nil {
		return soc.Result{}, err
	}
	return sys.Result(), nil
}

// system builds a homogeneous Table II style system config.
func system(name string, core config.CoreConfig, count int, mem config.MemConfig) *config.SystemConfig {
	return &config.SystemConfig{
		Name:  name,
		Cores: []config.CoreSpec{{Core: core, Count: count}},
		Mem:   mem,
	}
}

// cyclesOn runs workload w on a homogeneous system and returns cycles.
func (r *Runner) cyclesOn(w *workloads.Workload, core config.CoreConfig, count int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	g, tr, err := r.traced(w, count)
	if err != nil {
		return 0, err
	}
	res, err := simulate(system(w.Name, core, count, mem), g, tr, accels)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// daeCycles slices a workload into access/execute pairs, traces the pair
// system, and simulates it on in-order cores (§VII-A).
func (r *Runner) daeCycles(w *workloads.Workload, pairs int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	f, err := w.Kernel()
	if err != nil {
		return 0, err
	}
	s, err := dae.Slice(f)
	if err != nil {
		return 0, err
	}
	var fns []*ir.Function
	for i := 0; i < pairs; i++ {
		fns = append(fns, s.Access, s.Execute)
	}
	m := interp.NewMemory(workloads.MemBytes)
	inst := w.Setup(m, r.Scale)
	res, err := interp.RunTiles(fns, m, inst.Args, interp.Options{Acc: inst.Acc})
	if err != nil {
		return 0, fmt.Errorf("dae trace %s: %w", w.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(m); err != nil {
			return 0, fmt.Errorf("dae %s: result check: %w", w.Name, err)
		}
	}
	ag, eg := ddg.Build(s.Access), ddg.Build(s.Execute)
	ino := config.InOrderCore()
	// DAE cores carry the DeSC structures: communication queues, the
	// terminal load buffer, and the store address/value buffers (§VII-A).
	// The buffers extend the little core's run-ahead well beyond its
	// pipeline depth, which is exactly DeSC's mechanism.
	ino.DecoupledSupply = true
	ino.WindowSize = 64
	ino.LSQSize = 12
	var tiles []soc.TileSpec
	for i := 0; i < pairs; i++ {
		tiles = append(tiles,
			soc.TileSpec{Cfg: ino, Graph: ag, TT: res.Trace.Tiles[2*i]},
			soc.TileSpec{Cfg: ino, Graph: eg, TT: res.Trace.Tiles[2*i+1]})
	}
	sys, err := soc.New(w.Name+"-dae", tiles, mem, accels)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(0); err != nil {
		return 0, err
	}
	return sys.Cycles, nil
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "tab1", "tab2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "storage",
	}
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (*Report, error) {
	switch id {
	case "fig1":
		return Fig1(), nil
	case "tab1":
		return Tab1(), nil
	case "tab2":
		return Tab2(), nil
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.FigScaling("fig7", "bfs")
	case "fig8":
		return r.FigScaling("fig8", "sgemm")
	case "fig9":
		return r.FigScaling("fig9", "spmv")
	case "fig10":
		return Fig10(), nil
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig14":
		return Fig14(), nil
	case "storage":
		return r.Storage()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
