// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI, §VII) on MosaicSim-Go's own substrates: the workload
// suite, the timing simulator, the hardware-reference model, the accelerator
// models, the DAE compiler pass, and the DNN performance models. Each
// experiment returns both a rendered table and machine-readable values so
// the CLI, the benchmarks, and the tests share one implementation.
//
// All simulation legs run through the session engine (internal/sim): one
// content-keyed artifact cache per Runner replaces the former private
// trace/DAE caches, and the sweep context cancels queued legs and
// in-flight simulations alike.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

// Report is one regenerated artifact.
type Report struct {
	ID     string
	Title  string
	Table  *stats.Table
	Values map[string]float64
	Notes  string
}

func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// Runner executes experiments at a chosen workload scale. A Runner's methods
// are safe for concurrent use: independent simulation legs within one
// experiment fan out across the sweep engine's worker pool
// (internal/parallel), whole experiments may run concurrently from the CLI,
// and every leg is a sim.Session sharing the Runner's artifact cache.
type Runner struct {
	Scale workloads.Scale
	// Jobs bounds the fan-out of this runner's sweeps: 0 shares the
	// process-global parallel.SetLimit budget, 1 forces serial execution,
	// n > 1 requests a dedicated pool of n workers.
	Jobs int
	// StepWorkers shards tile stepping inside each simulation leg
	// (bit-identical to sequential stepping, so regenerated tables and
	// figures are unaffected). Legs that set their own value keep it.
	StepWorkers int
	// Opt recompiles every workload leg under this optimization config
	// before simulation (workloads that already carry a non-default opt
	// config keep their own). The artifact cache keys on the pass-config
	// hash, so sweeping Opt never aliases cached traces across levels.
	Opt ir.OptConfig
	// Replay routes every leg through schedule-capture timing replay
	// (internal/replay): the first leg of each (workload, structure) pair
	// records its schedule into the runner's cache and later legs whose
	// delta is timing-only are answered analytically, bit-exactly. Tables
	// and figures are unaffected by construction; ReplayCounters records how
	// many legs replayed versus fell back (cmd/experiments reports the
	// totals on stderr, keeping report output byte-stable at any -jobs).
	Replay bool

	cache *sim.Cache
}

// NewRunner builds a Runner with a private artifact cache; Small is the
// scale the paper-facing harness uses.
func NewRunner(s workloads.Scale) *Runner {
	return &Runner{Scale: s, cache: sim.NewCache()}
}

// session opens a sim.Session for one measurement leg against the runner's
// shared cache.
func (r *Runner) session(w *workloads.Workload, opts sim.Options) (*sim.Session, error) {
	if !r.Opt.IsDefault() && w.Opt.IsDefault() {
		w = w.WithOpt(r.Opt)
	}
	opts.Workload = w
	opts.Scale = r.Scale
	opts.Cache = r.cache
	if opts.StepWorkers == 0 {
		opts.StepWorkers = r.StepWorkers
	}
	opts.Replay = opts.Replay || r.Replay
	return sim.NewSession(opts)
}

// ReplayCounters snapshots the runner's schedule-replay activity (zero
// values when Replay is off).
func (r *Runner) ReplayCounters() sim.ReplayCounters {
	return r.cache.ReplayCounters()
}

// artifact returns the (cached) compile/DDG/trace bundle for a workload at a
// tile count.
func (r *Runner) artifact(ctx context.Context, w *workloads.Workload, tiles int) (*sim.Artifact, error) {
	s, err := r.session(w, sim.Options{Tiles: tiles})
	if err != nil {
		return nil, err
	}
	return s.Artifact(ctx)
}

// legs runs independent cycle-count measurements across the runner's worker
// pool, collecting results by index so callers stay deterministic.
// Cancelling ctx abandons queued legs and aborts running simulations.
func (r *Runner) legs(ctx context.Context, fns []func(context.Context) (int64, error)) ([]int64, error) {
	out := make([]int64, len(fns))
	err := parallel.ForErrCtx(ctx, r.Jobs, len(fns), func(i int) error {
		c, err := fns[i](ctx)
		out[i] = c
		return err
	})
	return out, err
}

// system builds a homogeneous Table II style system config as a declarative
// one-entry tile list.
func system(name string, core config.CoreConfig, count int, mem config.MemConfig) *config.SystemConfig {
	return &config.SystemConfig{
		Name:  name,
		Tiles: []config.TileDef{{Core: &core, Count: count}},
		Mem:   mem,
	}
}

// cyclesOn runs workload w on a homogeneous system and returns cycles.
func (r *Runner) cyclesOn(ctx context.Context, w *workloads.Workload, core config.CoreConfig, count int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	s, err := r.session(w, sim.Options{Config: system(w.Name, core, count, mem), Accels: accels})
	if err != nil {
		return 0, err
	}
	res, err := s.Run(ctx)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// daeCycles slices a workload into access/execute pairs, traces the pair
// system, and simulates it on in-order cores (§VII-A).
func (r *Runner) daeCycles(ctx context.Context, w *workloads.Workload, pairs int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	ino := config.InOrderCore()
	// DAE cores carry the DeSC structures: communication queues, the
	// terminal load buffer, and the store address/value buffers (§VII-A).
	// The buffers extend the little core's run-ahead well beyond its
	// pipeline depth, which is exactly DeSC's mechanism.
	ino.DecoupledSupply = true
	ino.WindowSize = 64
	ino.LSQSize = 12
	// The access/execute roles on the tile list both pick which slice each
	// tile replays and switch the session into DAE slicing.
	tiles := make([]config.TileDef, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		tiles = append(tiles,
			config.TileDef{Core: &ino, Role: config.RoleAccess},
			config.TileDef{Core: &ino, Role: config.RoleExecute},
		)
	}
	s, err := r.session(w, sim.Options{
		Config: &config.SystemConfig{Name: w.Name + "-dae", Tiles: tiles, Mem: mem},
		Accels: accels,
	})
	if err != nil {
		return 0, err
	}
	res, err := s.Run(ctx)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "tab1", "tab2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "figopt", "storage",
	}
}

// Resolve validates an experiment id up front, failing unknown ids with a
// did-you-mean suggestion instead of mid-sweep after earlier legs have run.
func Resolve(id string) error {
	for _, known := range IDs() {
		if id == known {
			return nil
		}
	}
	if s := stats.Closest(id, IDs()); s != "" {
		return fmt.Errorf("experiments: unknown id %q (did you mean %q? have %v)", id, s, IDs())
	}
	return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// Run executes one experiment by ID under ctx. Replay activity is observable
// through ReplayCounters (cmd/experiments prints the sweep-wide totals to
// stderr); it stays out of the report body because counter attribution under
// concurrently running experiments is interleaving-dependent, and report
// output must be byte-identical at every -jobs value.
func (r *Runner) Run(ctx context.Context, id string) (*Report, error) {
	return r.runID(ctx, id)
}

// runID dispatches one experiment by ID.
func (r *Runner) runID(ctx context.Context, id string) (*Report, error) {
	switch id {
	case "fig1":
		return Fig1(), nil
	case "tab1":
		return Tab1(), nil
	case "tab2":
		return Tab2(), nil
	case "fig5":
		return r.Fig5(ctx)
	case "fig6":
		return r.Fig6(ctx)
	case "fig7":
		return r.FigScaling(ctx, "fig7", "bfs")
	case "fig8":
		return r.FigScaling(ctx, "fig8", "sgemm")
	case "fig9":
		return r.FigScaling(ctx, "fig9", "spmv")
	case "fig10":
		return Fig10(), nil
	case "fig11":
		return r.Fig11(ctx)
	case "fig12":
		return r.Fig12(ctx)
	case "fig13":
		return r.Fig13(ctx)
	case "fig14":
		return Fig14(), nil
	case "figopt":
		return r.FigOpt(ctx)
	case "storage":
		return r.Storage(ctx)
	default:
		return nil, Resolve(id)
	}
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
