// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI, §VII) on MosaicSim-Go's own substrates: the workload
// suite, the timing simulator, the hardware-reference model, the accelerator
// models, the DAE compiler pass, and the DNN performance models. Each
// experiment returns both a rendered table and machine-readable values so
// the CLI, the benchmarks, and the tests share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Report is one regenerated artifact.
type Report struct {
	ID     string
	Title  string
	Table  *stats.Table
	Values map[string]float64
	Notes  string
}

func (r *Report) String() string {
	s := r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// Runner executes experiments at a chosen workload scale with caching of
// traces shared between experiments. A Runner's methods are safe for
// concurrent use: independent simulation legs within one experiment fan out
// across the sweep engine's worker pool (internal/parallel), and whole
// experiments may run concurrently from the CLI.
type Runner struct {
	Scale workloads.Scale
	// Jobs bounds the fan-out of this runner's sweeps: 0 shares the
	// process-global parallel.SetLimit budget, 1 forces serial execution,
	// n > 1 requests a dedicated pool of n workers.
	Jobs int

	mu         sync.Mutex
	traceCache map[string]*tracedKernel
	daeCache   map[string]*slicedKernel
}

type tracedKernel struct {
	once  sync.Once
	graph *ddg.Graph
	tr    *trace.Trace
	err   error
}

type slicedKernel struct {
	once   sync.Once
	slices *dae.Slices
	ag, eg *ddg.Graph
	err    error
}

// NewRunner builds a Runner; Small is the scale the paper-facing harness
// uses.
func NewRunner(s workloads.Scale) *Runner {
	return &Runner{
		Scale:      s,
		traceCache: map[string]*tracedKernel{},
		daeCache:   map[string]*slicedKernel{},
	}
}

// traced returns (cached) DDG + trace for a workload at a tile count.
// Concurrent legs asking for the same kernel share one tracing run
// (singleflight), so the cache stays effective under the parallel sweeps.
func (r *Runner) traced(w *workloads.Workload, tiles int) (*ddg.Graph, *trace.Trace, error) {
	key := fmt.Sprintf("%s/%d/%d", w.Name, tiles, r.Scale)
	r.mu.Lock()
	c, ok := r.traceCache[key]
	if !ok {
		c = &tracedKernel{}
		r.traceCache[key] = c
	}
	r.mu.Unlock()
	c.once.Do(func() { c.graph, c.tr, c.err = w.Trace(tiles, r.Scale) })
	return c.graph, c.tr, c.err
}

// sliced returns (cached) DAE access/execute slices and their DDGs for a
// workload, with the same singleflight discipline as traced.
func (r *Runner) sliced(w *workloads.Workload) (*slicedKernel, error) {
	r.mu.Lock()
	c, ok := r.daeCache[w.Name]
	if !ok {
		c = &slicedKernel{}
		r.daeCache[w.Name] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		f, err := w.Kernel()
		if err != nil {
			c.err = err
			return
		}
		s, err := dae.Slice(f)
		if err != nil {
			c.err = err
			return
		}
		c.slices = s
		c.ag, c.eg = ddg.Build(s.Access), ddg.Build(s.Execute)
	})
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// legs runs independent cycle-count measurements across the runner's worker
// pool, collecting results by index so callers stay deterministic.
func (r *Runner) legs(fns []func() (int64, error)) ([]int64, error) {
	out := make([]int64, len(fns))
	err := parallel.ForErr(r.Jobs, len(fns), func(i int) error {
		c, err := fns[i]()
		out[i] = c
		return err
	})
	return out, err
}

// simulate runs a homogeneous system over a traced kernel.
func simulate(cfg *config.SystemConfig, g *ddg.Graph, tr *trace.Trace, accels map[string]soc.AccelModel) (soc.Result, error) {
	sys, err := soc.NewSPMD(cfg, g, tr, accels)
	if err != nil {
		return soc.Result{}, err
	}
	if err := sys.Run(0); err != nil {
		return soc.Result{}, err
	}
	return sys.Result(), nil
}

// system builds a homogeneous Table II style system config.
func system(name string, core config.CoreConfig, count int, mem config.MemConfig) *config.SystemConfig {
	return &config.SystemConfig{
		Name:  name,
		Cores: []config.CoreSpec{{Core: core, Count: count}},
		Mem:   mem,
	}
}

// cyclesOn runs workload w on a homogeneous system and returns cycles.
func (r *Runner) cyclesOn(w *workloads.Workload, core config.CoreConfig, count int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	g, tr, err := r.traced(w, count)
	if err != nil {
		return 0, err
	}
	res, err := simulate(system(w.Name, core, count, mem), g, tr, accels)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// daeCycles slices a workload into access/execute pairs, traces the pair
// system, and simulates it on in-order cores (§VII-A).
func (r *Runner) daeCycles(w *workloads.Workload, pairs int, mem config.MemConfig, accels map[string]soc.AccelModel) (int64, error) {
	sk, err := r.sliced(w)
	if err != nil {
		return 0, err
	}
	s, ag, eg := sk.slices, sk.ag, sk.eg
	var fns []*ir.Function
	for i := 0; i < pairs; i++ {
		fns = append(fns, s.Access, s.Execute)
	}
	m := interp.NewMemory(workloads.MemBytes)
	inst := w.Setup(m, r.Scale)
	res, err := interp.RunTiles(fns, m, inst.Args, interp.Options{Acc: inst.Acc})
	if err != nil {
		return 0, fmt.Errorf("dae trace %s: %w", w.Name, err)
	}
	if inst.Check != nil {
		if err := inst.Check(m); err != nil {
			return 0, fmt.Errorf("dae %s: result check: %w", w.Name, err)
		}
	}
	m.Release()
	ino := config.InOrderCore()
	// DAE cores carry the DeSC structures: communication queues, the
	// terminal load buffer, and the store address/value buffers (§VII-A).
	// The buffers extend the little core's run-ahead well beyond its
	// pipeline depth, which is exactly DeSC's mechanism.
	ino.DecoupledSupply = true
	ino.WindowSize = 64
	ino.LSQSize = 12
	var tiles []soc.TileSpec
	for i := 0; i < pairs; i++ {
		tiles = append(tiles,
			soc.TileSpec{Cfg: ino, Graph: ag, TT: res.Trace.Tiles[2*i]},
			soc.TileSpec{Cfg: ino, Graph: eg, TT: res.Trace.Tiles[2*i+1]})
	}
	sys, err := soc.New(w.Name+"-dae", tiles, mem, accels)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(0); err != nil {
		return 0, err
	}
	return sys.Cycles, nil
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "tab1", "tab2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "storage",
	}
}

// Run executes one experiment by ID.
func (r *Runner) Run(id string) (*Report, error) {
	switch id {
	case "fig1":
		return Fig1(), nil
	case "tab1":
		return Tab1(), nil
	case "tab2":
		return Tab2(), nil
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.FigScaling("fig7", "bfs")
	case "fig8":
		return r.FigScaling("fig8", "sgemm")
	case "fig9":
		return r.FigScaling("fig9", "spmv")
	case "fig10":
		return Fig10(), nil
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig14":
		return Fig14(), nil
	case "storage":
		return r.Storage()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
