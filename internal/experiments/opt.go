package experiments

import (
	"context"
	"fmt"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

// FigOpt sweeps the compiler optimization level against system topology:
// the same kernel at O0/O1/O2 on a single OoO core, four OoO cores, and
// four in-order cores. The software axis (what the pass pipeline does to
// the dynamic instruction stream) and the hardware axis (how much ILP/TLP
// the system can exploit) interact — an optimization that shrinks the
// dynamic trace helps a little core more than a big one — and this figure
// makes that interaction a first-class sweep output.
func (r *Runner) FigOpt(ctx context.Context) (*Report, error) {
	w := workloads.ByName("sgemm")
	if w == nil {
		return nil, fmt.Errorf("no workload sgemm")
	}
	levels := []string{"O0", "O1", "O2"}
	type topo struct {
		name  string
		core  config.CoreConfig
		count int
	}
	topos := []topo{
		{"1xooo", config.OutOfOrderCore(), 1},
		{"4xooo", config.OutOfOrderCore(), 4},
		{"4xinorder", config.InOrderCore(), 4},
	}
	mem := config.TableIIMem()

	fns := make([]func(context.Context) (int64, error), 0, len(levels)*len(topos))
	for _, lv := range levels {
		opt, err := ir.ParseOptConfig(lv, "", 0)
		if err != nil {
			return nil, err
		}
		ow := w.WithOpt(opt)
		for _, tp := range topos {
			tp := tp
			fns = append(fns, func(ctx context.Context) (int64, error) {
				return r.cyclesOn(ctx, ow, tp.core, tp.count, mem, nil)
			})
		}
	}
	cycles, err := r.legs(ctx, fns)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Opt-level × topology — sgemm cycles",
		"opt", "1xooo", "4xooo", "4xinorder")
	values := map[string]float64{}
	for i, lv := range levels {
		row := make([]any, 0, 1+len(topos))
		row = append(row, lv)
		for j, tp := range topos {
			c := cycles[i*len(topos)+j]
			values[fmt.Sprintf("%s_%s", lv, tp.name)] = float64(c)
			row = append(row, c)
		}
		tbl.Row(row...)
	}
	return &Report{
		ID:     "figopt",
		Title:  "opt-level x topology sweep",
		Table:  tbl,
		Values: values,
		Notes:  "cycles per (opt level, system); lower is better within a column",
	}, nil
}
