package experiments

import (
	"context"
	"fmt"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/keras"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trends"
	"mosaicsim/internal/workloads"
)

// Fig1 renders the microprocessor-trend series the paper opens with.
func Fig1() *Report {
	tbl := stats.NewTable("Fig. 1 — 42 years of microprocessor trend data",
		"year", "transistors (k)", "single-thread perf", "frequency (MHz)", "power (W)", "cores")
	values := map[string]float64{}
	for _, p := range trends.Data() {
		tbl.Row(p.Year, p.TransistorsK, p.SingleThread, p.FrequencyMHz, p.PowerW, p.Cores)
		values[fmt.Sprintf("cores%d", p.Year)] = p.Cores
		values[fmt.Sprintf("freq%d", p.Year)] = p.FrequencyMHz
	}
	return &Report{ID: "fig1", Title: "Microprocessor trends", Table: tbl, Values: values,
		Notes: "recreated from the Rupp dataset the paper cites [7]"}
}

// Tab1 renders the Table I evaluation-system configuration.
func Tab1() *Report {
	sc := config.XeonSystem(16)
	tbl := stats.NewTable("Table I — evaluation system (Intel Xeon E5-2667 v3 substitute)", "parameter", "value")
	tbl.Row("Sockets, Cores", "2 sockets, 8 cores each (16 simulated tiles)")
	tbl.Row("Node Technology and Frequency", fmt.Sprintf("22nm, %d MHz", sc.Cores[0].Core.ClockMHz))
	tbl.Row("L1-D", fmt.Sprintf("%dKB private / %d-way", sc.Mem.L1.SizeKB, sc.Mem.L1.Assoc))
	tbl.Row("L2", fmt.Sprintf("%dMB private / %d-way", sc.Mem.L2.SizeKB/1024, sc.Mem.L2.Assoc))
	tbl.Row("LLC", fmt.Sprintf("%dMB shared / %d-way", sc.Mem.LLC.SizeKB/1024, sc.Mem.LLC.Assoc))
	tbl.Row("DRAM", fmt.Sprintf("%.0f GB/s, %d-cycle minimum latency", sc.Mem.DRAM.BandwidthGBs, sc.Mem.DRAM.MinLatency))
	return &Report{ID: "tab1", Title: "Evaluation system", Table: tbl,
		Values: map[string]float64{
			"l1_kb": float64(sc.Mem.L1.SizeKB), "llc_kb": float64(sc.Mem.LLC.SizeKB),
			"dram_gbs": sc.Mem.DRAM.BandwidthGBs, "clock_mhz": float64(sc.Cores[0].Core.ClockMHz),
		}}
}

// Tab2 renders the Table II DAE case-study parameters.
func Tab2() *Report {
	ooo, ino := config.OutOfOrderCore(), config.InOrderCore()
	mem := config.TableIIMem()
	tbl := stats.NewTable("Table II — DAE case-study parameters", "parameter", "out-of-order", "in-order")
	tbl.Row("Issue Width", ooo.IssueWidth, ino.IssueWidth)
	tbl.Row("Instruction Window/RoB/LSQ", fmt.Sprintf("%d/%d", ooo.WindowSize, ooo.LSQSize), fmt.Sprintf("%d/%d", ino.WindowSize, ino.LSQSize))
	tbl.Row("Frequency", fmt.Sprintf("%d MHz", ooo.ClockMHz), fmt.Sprintf("%d MHz", ino.ClockMHz))
	tbl.Row("Area (mm^2)", ooo.AreaMM2, ino.AreaMM2)
	tbl.Row("L1", fmt.Sprintf("%dKB / %d-way / %d-cycle", mem.L1.SizeKB, mem.L1.Assoc, mem.L1.LatencyCycles), "")
	tbl.Row("L2", fmt.Sprintf("%dMB / %d-way / %d-cycle", mem.L2.SizeKB/1024, mem.L2.Assoc, mem.L2.LatencyCycles), "")
	tbl.Row("DRAM", fmt.Sprintf("%.0f GB/s, %d-cycle latency", mem.DRAM.BandwidthGBs, mem.DRAM.MinLatency), "")
	tbl.Row("Comm. Buffer Sizes", fmt.Sprintf("%d entries / 1-cycle latency", ooo.MaxMessages), "")
	return &Report{ID: "tab2", Title: "DAE parameters", Table: tbl,
		Values: map[string]float64{"ooo_area": ooo.AreaMM2, "ino_area": ino.AreaMM2}}
}

// Fig10 reproduces the accelerator design-space exploration: execution time
// and area per PLM design point and workload size for the three §VI-A
// accelerators, plus the generic model's accuracy against RTL-level pipeline
// simulation and FPGA emulation (Fig. 10d).
func Fig10() *Report {
	tbl := stats.NewTable("Fig. 10 — accelerator DSE (execution time in Mcycles; area in um^2)",
		"accelerator", "PLM", "area", "wl=256KB", "wl=1MB", "wl=4MB", "wl=16MB")
	values := map[string]float64{}
	names := []string{"acc_sgemm", "acc_histo", "acc_elementwise"}
	for _, name := range names {
		for _, dp := range accel.PLMSweep() {
			a := accel.ByName(name, dp)
			row := []any{name, fmt.Sprintf("%dKB", dp.PLMBytes/1024), a.AreaUM2()}
			for _, wl := range accel.WorkloadSweep() {
				cycles, err := a.SimulatePipeline(paramsForWorkload(name, wl))
				if err != nil {
					row = append(row, "-")
					continue
				}
				m := float64(cycles) / 1e6
				row = append(row, m)
				values[fmt.Sprintf("%s/plm%d/wl%d", name, dp.PLMBytes, wl)] = m
			}
			tbl.Row(row...)
		}
	}
	// Fig. 10d: accuracy of the generic model vs RTL simulation and FPGA.
	acc := stats.NewTable("Fig. 10d — generic-model execution-time accuracy",
		"accelerator", "vs RTL simulation", "vs FPGA emulation", "paper RTL", "paper FPGA")
	paperRTL := map[string]float64{"acc_sgemm": 0.99, "acc_histo": 0.99, "acc_elementwise": 0.97}
	paperFPGA := map[string]float64{"acc_sgemm": 0.90, "acc_histo": 0.93, "acc_elementwise": 0.89}
	for _, name := range names {
		var rtlAcc, fpgaAcc []float64
		for _, dp := range accel.PLMSweep() {
			a := accel.ByName(name, dp)
			for _, wl := range accel.WorkloadSweep() {
				params := paramsForWorkload(name, wl)
				cf, err1 := a.ClosedForm(params)
				pipe, err2 := a.SimulatePipeline(params)
				fpga, err3 := a.EmulateFPGA(params)
				if err1 != nil || err2 != nil || err3 != nil {
					continue
				}
				rtlAcc = append(rtlAcc, ratioAccuracy(cf, pipe))
				fpgaAcc = append(fpgaAcc, ratioAccuracy(cf, fpga))
			}
		}
		mr, mf := stats.Mean(rtlAcc), stats.Mean(fpgaAcc)
		values[name+"/rtl"] = mr
		values[name+"/fpga"] = mf
		acc.Row(name, mr, mf, paperRTL[name], paperFPGA[name])
	}
	return &Report{ID: "fig10", Title: "Accelerator DSE", Table: tbl, Values: values,
		Notes: "accuracy sub-table:\n" + acc.String()}
}

// ratioAccuracy expresses |model/reference| as an accuracy in (0,1].
func ratioAccuracy(model, reference int64) float64 {
	if reference == 0 {
		return 0
	}
	r := float64(model) / float64(reference)
	if r > 1 {
		return 1 / r
	}
	return r
}

func paramsForWorkload(name string, totalBytes int64) []int64 {
	switch name {
	case "acc_sgemm":
		d := int64(1)
		for d*d*12 < totalBytes {
			d++
		}
		return []int64{0, 0, 0, d, d, d}
	case "acc_histo":
		return []int64{0, totalBytes / 4, 0, 256}
	default:
		return []int64{0, 0, 0, totalBytes / 12}
	}
}

// Fig11 reproduces the DAE case study on bipartite graph projection: single
// cores, homogeneous parallel scaling, and DAE pairs at OoO-area-equivalence
// (8 in-order cores = 4 DAE pairs ≈ 1 OoO core by Table II areas).
func (r *Runner) Fig11(ctx context.Context) (*Report, error) {
	w := workloads.Projection()
	mem := config.TableIIMem()
	ino, ooo := config.InOrderCore(), config.OutOfOrderCore()

	c, err := r.legs(ctx, []func(context.Context) (int64, error){
		func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 1, mem, nil) },
		func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ooo, 1, mem, nil) },
		func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 2, mem, nil) },
		func(ctx context.Context) (int64, error) { return r.daeCycles(ctx, w, 1, mem, nil) },
		func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 8, mem, nil) },
		func(ctx context.Context) (int64, error) { return r.daeCycles(ctx, w, 4, mem, nil) },
	})
	if err != nil {
		return nil, err
	}
	base, oooC, homo2, dae1, homo8, dae4 := c[0], c[1], c[2], c[3], c[4], c[5]

	sp := func(c int64) float64 { return float64(base) / float64(c) }
	tbl := stats.NewTable("Fig. 11 — graph projection speedups (vs 1 in-order core)",
		"system", "speedup", "paper (approx)")
	rows := []struct {
		name   string
		cycles int64
		paper  float64
	}{
		{"1 InO (baseline)", base, 1},
		{"1 OoO", oooC, 3.2},
		{"2 InO (homogeneous)", homo2, 1.9},
		{"1 DAE pair (2 InO)", dae1, 2.4},
		{"8 InO (OoO-area-equiv homogeneous)", homo8, 5.3},
		{"4 DAE pairs (OoO-area-equiv heterogeneous)", dae4, 6.3},
	}
	values := map[string]float64{}
	for _, row := range rows {
		s := sp(row.cycles)
		values[row.name] = s
		tbl.Row(row.name, s, row.paper)
	}
	return &Report{ID: "fig11", Title: "DAE for latency tolerance", Table: tbl, Values: values,
		Notes: "equal-area comparison: 8 InO cores (8.08 mm^2) vs 1 OoO core (8.44 mm^2)"}, nil
}

// Fig12 reproduces the sparse/dense microbenchmark study: EWSD and SGEMM
// across in-order scaling, an OoO core, DAE pairs, and (for SGEMM) the
// fixed-function accelerator.
func (r *Runner) Fig12(ctx context.Context) (*Report, error) {
	mem := config.TableIIMem()
	ino, ooo := config.InOrderCore(), config.OutOfOrderCore()
	accels := workloads.DefaultAccelModels(ino.ClockMHz)

	type sysResult map[string]float64
	// Every measurement across both workloads is an independent leg; the
	// sweep engine fans them all out at once and results are assembled by
	// index. The SGEMM 1-InO leg doubles as the accelerator bar's baseline.
	mkLegs := func(w *workloads.Workload) []func(context.Context) (int64, error) {
		return []func(context.Context) (int64, error){
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 1, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 4, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 8, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ooo, 1, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.daeCycles(ctx, w, 4, mem, accels) },
		}
	}
	legNames := []string{"1 InO", "4 InO", "8 InO", "1 OoO", "4+4 InO DAE"}
	fns := append(mkLegs(workloads.EWSD()), mkLegs(workloads.SGEMM())...)
	fns = append(fns, func(ctx context.Context) (int64, error) {
		return r.cyclesOn(ctx, workloads.SGEMMAccel(), ino, 1, mem, accels)
	})
	c, err := r.legs(ctx, fns)
	if err != nil {
		return nil, err
	}
	assemble := func(c []int64) sysResult {
		out := sysResult{"1 InO": 1}
		for i := 1; i < len(legNames); i++ {
			out[legNames[i]] = float64(c[0]) / float64(c[i])
		}
		return out
	}
	ewsd := assemble(c[:5])
	sg := assemble(c[5:10])
	// Accelerator bar: SGEMM offloaded, normalized to the same 1-InO
	// software baseline.
	sg["Accel"] = float64(c[5]) / float64(c[10])

	order := []string{"1 InO", "4 InO", "8 InO", "1 OoO", "4+4 InO DAE", "Accel"}
	paperE := map[string]float64{"1 InO": 1, "4 InO": 3.3, "8 InO": 4.8, "1 OoO": 3.6, "4+4 InO DAE": 6}
	paperS := map[string]float64{"1 InO": 1, "4 InO": 3.9, "8 InO": 7.4, "1 OoO": 2.5, "4+4 InO DAE": 5.5, "Accel": 45}
	tbl := stats.NewTable("Fig. 12 — EWSD and SGEMM speedups (vs 1 in-order core)",
		"system", "EWSD", "paper EWSD", "SGEMM", "paper SGEMM")
	values := map[string]float64{}
	for _, s := range order {
		eV, eOK := ewsd[s]
		sV := sg[s]
		values["ewsd/"+s] = eV
		values["sgemm/"+s] = sV
		eCell := any("-")
		pECell := any("-")
		if eOK {
			eCell = eV
			pECell = paperE[s]
		}
		tbl.Row(s, eCell, pECell, sV, paperS[s])
	}
	return &Report{ID: "fig12", Title: "Sparse/dense microbenchmarks", Table: tbl, Values: values,
		Notes: "EWSD favors latency-tolerant DAE; SGEMM favors the accelerator (§VII-B)"}, nil
}

// Fig13 reproduces the combined sparse/dense kernel: SGEMM and EWSD run
// serially with dataset mixes chosen by their share of baseline (1 InO)
// cycles; serial-phase composition makes each architecture's combined time
// the weighted sum of its phase times.
func (r *Runner) Fig13(ctx context.Context) (*Report, error) {
	mem := config.TableIIMem()
	ino, ooo := config.InOrderCore(), config.OutOfOrderCore()
	accels := workloads.DefaultAccelModels(ino.ClockMHz)

	sgw, ew := workloads.SGEMM(), workloads.EWSD()
	// Phase measurements for both workloads plus the SGEMM accelerator
	// offload are independent legs fanned out together.
	legNames := []string{"4 InO", "8 InO", "1 OoO", "4+4 InO DAE", "base"}
	mkLegs := func(w *workloads.Workload) []func(context.Context) (int64, error) {
		return []func(context.Context) (int64, error){
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 4, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 8, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ooo, 1, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.daeCycles(ctx, w, 4, mem, accels) },
			func(ctx context.Context) (int64, error) { return r.cyclesOn(ctx, w, ino, 1, mem, accels) },
		}
	}
	fns := append(mkLegs(sgw), mkLegs(ew)...)
	fns = append(fns, func(ctx context.Context) (int64, error) {
		return r.cyclesOn(ctx, workloads.SGEMMAccel(), ino, 1, mem, accels)
	})
	c, err := r.legs(ctx, fns)
	if err != nil {
		return nil, err
	}
	assemble := func(c []int64) map[string]int64 {
		out := map[string]int64{}
		for i, n := range legNames {
			out[n] = c[i]
		}
		return out
	}
	sgT := assemble(c[:5])
	ewT := assemble(c[5:10])
	sgT["4+4 InO DAE w/Accel"] = c[10]
	ewT["4+4 InO DAE w/Accel"] = ewT["4+4 InO DAE"]

	systems := []string{"4 InO", "8 InO", "1 OoO", "4+4 InO DAE", "4+4 InO DAE w/Accel"}
	mixes := []struct {
		name  string
		dense float64 // share of baseline cycles spent in SGEMM
	}{
		{"dense-heavy (75% SGEMM)", 0.75},
		{"equal (50/50)", 0.5},
		{"sparse-heavy (25% SGEMM)", 0.25},
	}
	tbl := stats.NewTable("Fig. 13 — combined kernel speedups (vs 1 in-order core)",
		"system", mixes[0].name, mixes[1].name, mixes[2].name)
	values := map[string]float64{}
	for _, sys := range systems {
		row := []any{sys}
		for _, mix := range mixes {
			// Scale phase datasets so the baseline splits cycles per the mix;
			// with serial phases, speedup composes harmonically.
			baseTotal := 1.0
			optTotal := mix.dense*float64(sgT[sys])/float64(sgT["base"]) +
				(1-mix.dense)*float64(ewT[sys])/float64(ewT["base"])
			sp := baseTotal / optTotal
			values[sys+"/"+mix.name] = sp
			row = append(row, sp)
		}
		tbl.Row(row...)
	}
	return &Report{ID: "fig13", Title: "Alternating sparse/dense phases", Table: tbl, Values: values,
		Notes: "phases are serial, so combined speedup composes harmonically from Fig. 12's phase measurements"}, nil
}

// Fig14 reproduces the TensorFlow/Keras EDP study: out-of-order core vs an
// SoC with 8 accelerator instances for the three DNN applications.
func Fig14() *Report {
	core := keras.DefaultOoOCore()
	socp := keras.DefaultSoC(8)
	paper := map[string]float64{"ConvNet": 7.22, "GraphSage": 38, "RecSys": 282.24}
	tbl := stats.NewTable("Fig. 14 — energy-delay improvement from accelerators",
		"application", "EDP improvement", "paper")
	values := map[string]float64{}
	for _, m := range keras.Apps() {
		imp := m.EDPImprovement(core, socp, 32)
		values[m.Name] = imp
		tbl.Row(m.Name, imp, paper[m.Name])
	}
	return &Report{ID: "fig14", Title: "DNN accelerator EDP", Table: tbl, Values: values,
		Notes: "ConvNet is limited by unaccelerated conv backprop; GraphSage by host-side sampling; RecSys is fully accelerated (§VII-C)"}
}

// Ensure soc import is exercised even if future edits drop direct uses.
var _ soc.AccelModel = (*accel.Model)(nil)
