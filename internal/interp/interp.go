package interp

import (
	"errors"
	"fmt"
	"math"

	"mosaicsim/internal/ir"
	"mosaicsim/internal/trace"
)

// AccFunc is a functional accelerator implementation: it performs the
// accelerated operation on the memory image so downstream computation and
// result verification see correct data, while the timing cost comes from the
// accelerator performance model during simulation.
type AccFunc func(mem *Memory, params []int64)

// Options configures a DTG run.
type Options struct {
	// NumTiles is the SPMD tile count T (default 1).
	NumTiles int
	// Acc maps accelerator intrinsic names (e.g. "acc_sgemm") to functional
	// implementations. Unknown accelerator calls are an error.
	Acc map[string]AccFunc
	// MaxSteps aborts runaway kernels after this many dynamic instructions
	// across all tiles (0 = 2^40).
	MaxSteps int64
	// Timeslice is the number of instructions a tile executes before the
	// round-robin moves on (default 4096). It bounds inter-tile skew in
	// functional execution; timing skew is resolved by the simulator.
	Timeslice int
	// Profile collects per-static-instruction execution counts (a hot-spot
	// profile of the kernel as it runs natively).
	Profile bool
}

// Result is the outcome of a DTG run.
type Result struct {
	Trace *trace.Trace
	// Counts holds per-tile, per-static-instruction execution counts
	// (indexed by ir.Instr.Idx) when Options.Profile is set.
	Counts [][]int64
}

// Arg helpers build the raw parameter words passed to Run.

// ArgPtr encodes a pointer kernel argument.
func ArgPtr(addr uint64) uint64 { return addr }

// ArgI64 encodes an integer kernel argument.
func ArgI64(v int64) uint64 { return uint64(v) }

// ArgF64 encodes a float64 kernel argument.
func ArgF64(v float64) uint64 { return math.Float64bits(v) }

// ArgF32 encodes a float32 kernel argument.
func ArgF32(v float32) uint64 { return uint64(math.Float32bits(v)) }

// Run natively executes kernel f with the given arguments on every tile and
// returns the per-tile traces. Globals referenced by the function's module
// must have been placed with PlaceGlobals (or the module must have none).
func Run(f *ir.Function, mem *Memory, args []uint64, opts Options) (*Result, error) {
	if opts.NumTiles <= 0 {
		opts.NumTiles = 1
	}
	fns := make([]*ir.Function, opts.NumTiles)
	for i := range fns {
		fns[i] = f
	}
	return RunTiles(fns, mem, args, opts)
}

// RunTiles executes a possibly different kernel function per tile (all with
// the same arguments) — the heterogeneous form used by Decoupled
// Access/Execute systems, where even tiles run the access slice and odd
// tiles the execute slice (§VII-A). opts.NumTiles is taken from len(fns).
func RunTiles(fns []*ir.Function, mem *Memory, args []uint64, opts Options) (*Result, error) {
	opts.NumTiles = len(fns)
	r, err := newRunner(fns, mem, args, opts)
	if err != nil {
		return nil, err
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	tr := &trace.Trace{Kernel: fns[0].Ident}
	res := &Result{Trace: tr}
	for _, t := range r.tiles {
		tr.Tiles = append(tr.Tiles, t.tt)
		if opts.Profile {
			res.Counts = append(res.Counts, t.prof)
		}
	}
	return res, nil
}

// PlaceGlobals allocates every global of m in mem and returns the address
// map. Call once per memory image before Run.
func PlaceGlobals(m *ir.Module, mem *Memory) map[*ir.Global]uint64 {
	out := make(map[*ir.Global]uint64, len(m.Globals))
	for _, g := range m.Globals {
		out[g] = mem.AllocGlobal(g)
	}
	return out
}

// runner is the cooperative multi-tile execution engine.
type runner struct {
	mem     *Memory
	opts    Options
	tiles   []*tileCtx
	queues  map[[2]int][]uint64 // (src,dst) -> FIFO of message words
	globals map[*ir.Global]uint64
	steps   int64
	maxStep int64
}

type tileCtx struct {
	id      int
	fn      *ir.Function
	r       *runner
	regs    []uint64
	cur     *ir.Block
	ip      int
	done    bool
	blocked bool
	// atBarrier marks that the tile has registered its arrival at the
	// current barrier and is waiting for the others.
	atBarrier bool
	barriers  int64 // barriers passed or arrived at
	tt        *trace.TileTrace
	prof      []int64 // per-static-instruction execution counts (optional)
}

func newRunner(fns []*ir.Function, mem *Memory, args []uint64, opts Options) (*runner, error) {
	if opts.Timeslice <= 0 {
		opts.Timeslice = 4096
	}
	r := &runner{
		mem:     mem,
		opts:    opts,
		queues:  map[[2]int][]uint64{},
		maxStep: opts.MaxSteps,
	}
	if r.maxStep == 0 {
		r.maxStep = 1 << 40
	}
	placed := map[*ir.Module]bool{}
	for i, f := range fns {
		if len(args) != len(f.Params) {
			return nil, fmt.Errorf("interp: kernel @%s takes %d args, got %d", f.Ident, len(f.Params), len(args))
		}
		f.AssignIDs()
		if f.Parent != nil && !placed[f.Parent] {
			placed[f.Parent] = true
			g := PlaceGlobals(f.Parent, mem)
			if r.globals == nil {
				r.globals = g
			} else {
				for k, v := range g {
					r.globals[k] = v
				}
			}
		}
		t := &tileCtx{
			id:   i,
			fn:   f,
			r:    r,
			regs: make([]uint64, f.NumValues()),
			cur:  f.Entry(),
			tt:   &trace.TileTrace{Tile: int32(i)},
		}
		if opts.Profile {
			t.prof = make([]int64, f.NumInstrs())
		}
		for pi, p := range f.Params {
			t.regs[p.ID] = args[pi]
		}
		t.enterBlock(f.Entry(), nil)
		r.tiles = append(r.tiles, t)
	}
	return r, nil
}

// errDeadlock is returned when every live tile is blocked on recv.
var errDeadlock = errors.New("interp: deadlock — all live tiles blocked on recv")

func (r *runner) run() error {
	for {
		progress := false
		alive := false
		for _, t := range r.tiles {
			if t.done {
				continue
			}
			alive = true
			n, err := t.step(r.opts.Timeslice)
			if err != nil {
				return err
			}
			if n > 0 {
				progress = true
			}
		}
		if !alive {
			return nil
		}
		if !progress {
			return errDeadlock
		}
		if r.steps > r.maxStep {
			return fmt.Errorf("interp: kernel @%s exceeded %d dynamic instructions", r.tiles[0].fn.Ident, r.maxStep)
		}
	}
}

// enterBlock performs the parallel phi copy for entry into b along the edge
// from prev, records the control-flow trace event, and positions the
// instruction pointer past the phis.
func (t *tileCtx) enterBlock(b *ir.Block, prev *ir.Block) {
	t.tt.BBPath = append(t.tt.BBPath, int32(b.ID))
	nphi := 0
	for _, in := range b.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		nphi++
	}
	if nphi > 0 {
		// Read all incoming values first (parallel copy semantics).
		vals := make([]uint64, nphi)
		for i := 0; i < nphi; i++ {
			phi := b.Instrs[i]
			found := false
			for j, from := range phi.Incoming {
				if from == prev {
					vals[i] = t.val(phi.Args[j])
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("interp: phi %%%s has no incoming edge from %s", phi.Ident, prev.Ident))
			}
		}
		for i := 0; i < nphi; i++ {
			t.regs[b.Instrs[i].ID] = vals[i]
		}
		// Phis executed: count them as dynamic instructions.
		t.tt.DynInstrs += int64(nphi)
		t.r.steps += int64(nphi)
		if t.prof != nil {
			for i := 0; i < nphi; i++ {
				t.prof[b.Instrs[i].Idx]++
			}
		}
	}
	t.cur = b
	t.ip = nphi
}

// val evaluates an operand to its raw 64-bit pattern.
func (t *tileCtx) val(v ir.Value) uint64 {
	switch x := v.(type) {
	case *ir.Const:
		return x.Bits
	case *ir.Param:
		return t.regs[x.ID]
	case *ir.Instr:
		return t.regs[x.ID]
	case *ir.Global:
		return t.r.globals[x]
	default:
		panic(fmt.Sprintf("interp: unknown operand kind %T", v))
	}
}

// step executes up to limit instructions, returning how many ran. It stops
// early when the tile finishes or blocks on an empty recv queue.
func (t *tileCtx) step(limit int) (int, error) {
	executed := 0
	for executed < limit && !t.done {
		in := t.cur.Instrs[t.ip]
		if t.prof != nil {
			t.prof[in.Idx]++
		}
		if in.Op == ir.OpCall && in.Callee == "barrier" {
			// SPMD barrier: register arrival, proceed once every tile has
			// arrived at (or passed) the same barrier.
			if !t.atBarrier {
				t.atBarrier = true
				t.barriers++
			}
			for _, other := range t.r.tiles {
				if other.barriers < t.barriers {
					t.blocked = true
					return executed, nil
				}
			}
			t.atBarrier = false
			t.blocked = false
			t.ip++
			executed++
			t.tt.DynInstrs++
			t.r.steps++
			continue
		}
		if in.Op == ir.OpCall && in.Callee == "recv" {
			src := int(int64(t.val(in.Args[0])))
			key := [2]int{src, t.id}
			q := t.r.queues[key]
			if len(q) == 0 {
				t.blocked = true
				return executed, nil
			}
			t.regs[in.ID] = q[0]
			t.r.queues[key] = q[1:]
			t.tt.Comm = append(t.tt.Comm, trace.CommEvent{Instr: int32(in.Idx), Partner: int32(src)})
			t.blocked = false
			t.ip++
			executed++
			t.tt.DynInstrs++
			t.r.steps++
			continue
		}
		if err := t.exec(in); err != nil {
			return executed, err
		}
		executed++
		t.tt.DynInstrs++
		t.r.steps++
	}
	return executed, nil
}

func signExt(bits uint64, ty ir.Type) int64 {
	switch ty {
	case ir.I1:
		return int64(bits & 1)
	case ir.I8:
		return int64(int8(bits))
	case ir.I32:
		return int64(int32(bits))
	default:
		return int64(bits)
	}
}

func truncTo(v uint64, ty ir.Type) uint64 {
	switch ty {
	case ir.I1:
		return v & 1
	case ir.I8:
		return v & 0xff
	case ir.I32:
		return v & 0xffffffff
	default:
		return v
	}
}

func toFloat(bits uint64, ty ir.Type) float64 {
	if ty == ir.F32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

func fromFloat(v float64, ty ir.Type) uint64 {
	if ty == ir.F32 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// exec runs one non-recv instruction and advances control flow.
func (t *tileCtx) exec(in *ir.Instr) error {
	mem := t.r.mem
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
		a := t.val(in.Args[0])
		b := t.val(in.Args[1])
		ty := in.Ty
		var res uint64
		switch in.Op {
		case ir.OpAdd:
			res = a + b
		case ir.OpSub:
			res = a - b
		case ir.OpMul:
			res = a * b
		case ir.OpSDiv:
			sb := signExt(b, ty)
			if sb == 0 {
				return fmt.Errorf("interp: division by zero in %%%s", in.Ident)
			}
			res = uint64(signExt(a, ty) / sb)
		case ir.OpSRem:
			sb := signExt(b, ty)
			if sb == 0 {
				return fmt.Errorf("interp: remainder by zero in %%%s", in.Ident)
			}
			res = uint64(signExt(a, ty) % sb)
		case ir.OpAnd:
			res = a & b
		case ir.OpOr:
			res = a | b
		case ir.OpXor:
			res = a ^ b
		case ir.OpShl:
			res = a << (b & 63)
		case ir.OpLShr:
			res = truncTo(a, ty) >> (b & 63)
		case ir.OpAShr:
			res = uint64(signExt(a, ty) >> (b & 63))
		}
		t.regs[in.ID] = truncTo(res, ty)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		ty := in.Ty
		a := toFloat(t.val(in.Args[0]), in.Args[0].Type())
		b := toFloat(t.val(in.Args[1]), in.Args[1].Type())
		var res float64
		switch in.Op {
		case ir.OpFAdd:
			res = a + b
		case ir.OpFSub:
			res = a - b
		case ir.OpFMul:
			res = a * b
		case ir.OpFDiv:
			res = a / b
		}
		t.regs[in.ID] = fromFloat(res, ty)
	case ir.OpICmp:
		a := signExt(t.val(in.Args[0]), in.Args[0].Type())
		b := signExt(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = boolBits(cmpInt(in.Pred, a, b))
	case ir.OpFCmp:
		a := toFloat(t.val(in.Args[0]), in.Args[0].Type())
		b := toFloat(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = boolBits(cmpFloat(in.Pred, a, b))
	case ir.OpSelect:
		if t.val(in.Args[0])&1 != 0 {
			t.regs[in.ID] = t.val(in.Args[1])
		} else {
			t.regs[in.ID] = t.val(in.Args[2])
		}
	case ir.OpCast:
		src := t.val(in.Args[0])
		srcTy := in.Args[0].Type()
		var res uint64
		switch in.Cast {
		case ir.CastTrunc:
			res = truncTo(src, in.Ty)
		case ir.CastZExt:
			res = truncTo(src, srcTy)
		case ir.CastSExt:
			res = truncTo(uint64(signExt(src, srcTy)), in.Ty)
		case ir.CastSIToFP:
			res = fromFloat(float64(signExt(src, srcTy)), in.Ty)
		case ir.CastFPToSI:
			res = truncTo(uint64(int64(toFloat(src, srcTy))), in.Ty)
		case ir.CastFPExt, ir.CastFPTrunc:
			res = fromFloat(toFloat(src, srcTy), in.Ty)
		case ir.CastBitcast:
			res = src
		default:
			return fmt.Errorf("interp: bad cast kind in %%%s", in.Ident)
		}
		t.regs[in.ID] = res
	case ir.OpGEP:
		base := t.val(in.Args[0])
		idx := signExt(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = uint64(int64(base) + idx*in.Scale)
	case ir.OpLoad:
		addr := t.val(in.Args[0])
		t.record(in, addr, in.Ty, trace.KindLoad)
		t.regs[in.ID] = mem.LoadScalar(addr, in.Ty)
	case ir.OpStore:
		addr := t.val(in.Args[1])
		ty := in.Args[0].Type()
		t.record(in, addr, ty, trace.KindStore)
		mem.StoreScalar(addr, ty, t.val(in.Args[0]))
	case ir.OpAtomicAdd:
		addr := t.val(in.Args[0])
		ty := in.Ty
		t.record(in, addr, ty, trace.KindAtomic)
		old := mem.LoadScalar(addr, ty)
		var updated uint64
		if ty.IsFloat() {
			updated = fromFloat(toFloat(old, ty)+toFloat(t.val(in.Args[1]), ty), ty)
		} else {
			updated = truncTo(old+t.val(in.Args[1]), ty)
		}
		mem.StoreScalar(addr, ty, updated)
		t.regs[in.ID] = old
	case ir.OpBr:
		t.enterBlock(in.Targets[0], t.cur)
		return nil
	case ir.OpCondBr:
		if t.val(in.Args[0])&1 != 0 {
			t.enterBlock(in.Targets[0], t.cur)
		} else {
			t.enterBlock(in.Targets[1], t.cur)
		}
		return nil
	case ir.OpRet:
		t.done = true
		return nil
	case ir.OpCall:
		if err := t.call(in); err != nil {
			return err
		}
	default:
		return fmt.Errorf("interp: unhandled opcode %s", in.Op)
	}
	t.ip++
	return nil
}

func (t *tileCtx) record(in *ir.Instr, addr uint64, ty ir.Type, kind uint8) {
	t.tt.Mem = append(t.tt.Mem, trace.MemEvent{
		Instr: int32(in.Idx),
		Addr:  addr,
		Size:  uint8(ty.Size()),
		Kind:  kind,
	})
}

func boolBits(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func cmpInt(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func cmpFloat(p ir.CmpPred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}
