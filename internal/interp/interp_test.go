package interp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mosaicsim/internal/ir"
	"mosaicsim/internal/trace"
)

const vecAddSrc = `
func @kernel(%A: ptr, %B: ptr, %C: ptr, %n: i64) {
entry:
  br %loop
loop:
  %i = phi i64 [0, %entry], [%i.next, %loop]
  %pa = gep %A, %i, 8
  %a = load f64, %pa
  %pb = gep %B, %i, 8
  %b = load f64, %pb
  %sum = fadd %a, %b
  %pc = gep %C, %i, 8
  store %sum, %pc
  %i.next = add %i, 1
  %done = icmp eq %i.next, %n
  condbr %done, %exit, %loop
exit:
  ret
}
`

func runVecAdd(t *testing.T, n int) (*Memory, *Result, uint64) {
	t.Helper()
	m := ir.MustParse(vecAddSrc)
	f := m.Func("kernel")
	mem := NewMemory(1 << 20)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(2 * i)
	}
	pa := mem.AllocF64(a)
	pb := mem.AllocF64(b)
	pc := mem.Alloc(int64(n)*8, 64)
	res, err := Run(f, mem, []uint64{ArgPtr(pa), ArgPtr(pb), ArgPtr(pc), ArgI64(int64(n))}, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return mem, res, pc
}

func TestVecAddComputesCorrectValues(t *testing.T) {
	mem, _, pc := runVecAdd(t, 16)
	for i := 0; i < 16; i++ {
		want := float64(i) + float64(2*i)
		if got := mem.ReadF64(pc + uint64(i)*8); got != want {
			t.Errorf("C[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestVecAddTraceShape(t *testing.T) {
	_, res, _ := runVecAdd(t, 4)
	tt := res.Trace.Tiles[0]
	// Paper Fig. 3: BB path is entry, 4x loop, exit.
	want := []int32{0, 1, 1, 1, 1, 2}
	if len(tt.BBPath) != len(want) {
		t.Fatalf("BBPath = %v, want %v", tt.BBPath, want)
	}
	for i := range want {
		if tt.BBPath[i] != want[i] {
			t.Fatalf("BBPath = %v, want %v", tt.BBPath, want)
		}
	}
	// 2 loads + 1 store per iteration.
	if len(tt.Mem) != 12 {
		t.Errorf("mem events = %d, want 12", len(tt.Mem))
	}
	loads, stores := 0, 0
	for _, ev := range tt.Mem {
		switch ev.Kind {
		case trace.KindLoad:
			loads++
		case trace.KindStore:
			stores++
		}
		if ev.Size != 8 {
			t.Errorf("access size = %d, want 8", ev.Size)
		}
	}
	if loads != 8 || stores != 4 {
		t.Errorf("loads=%d stores=%d, want 8/4", loads, stores)
	}
	// Addresses of the store stream must be consecutive doubles.
	var prev uint64
	first := true
	for _, ev := range tt.Mem {
		if ev.Kind != trace.KindStore {
			continue
		}
		if !first && ev.Addr != prev+8 {
			t.Errorf("store stream not sequential: %d after %d", ev.Addr, prev)
		}
		prev = ev.Addr
		first = false
	}
	if tt.DynInstrs == 0 {
		t.Error("DynInstrs not counted")
	}
}

// TestVecAddProperty cross-checks interpreted results against Go arithmetic
// for random inputs and lengths.
func TestVecAddProperty(t *testing.T) {
	m := ir.MustParse(vecAddSrc)
	f := m.Func("kernel")
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		mem := NewMemory(1 << 20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		pa, pb := mem.AllocF64(a), mem.AllocF64(b)
		pc := mem.Alloc(int64(n)*8, 64)
		if _, err := Run(f, mem, []uint64{pa, pb, pc, uint64(n)}, Options{}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if mem.ReadF64(pc+uint64(i)*8) != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSPMDTilePartitioning(t *testing.T) {
	// Each tile writes its tile ID over its strided partition of A.
	src := `
func @kernel(%A: ptr, %n: i64) {
entry:
  %tid = call i64 tile_id()
  %nt = call i64 num_tiles()
  br %head
head:
  %i = phi i64 [%tid, %entry], [%i.next, %body]
  %in = icmp lt %i, %n
  condbr %in, %body, %exit
body:
  %p = gep %A, %i, 8
  store %tid, %p
  %i.next = add %i, %nt
  br %head
exit:
  ret
}
`
	m := ir.MustParse(src)
	f := m.Func("kernel")
	mem := NewMemory(1 << 20)
	const n, tiles = 64, 4
	pa := mem.Alloc(n*8, 64)
	res, err := Run(f, mem, []uint64{pa, n}, Options{NumTiles: tiles})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Trace.Tiles) != tiles {
		t.Fatalf("tiles = %d", len(res.Trace.Tiles))
	}
	for i := 0; i < n; i++ {
		if got := mem.ReadI64(pa + uint64(i)*8); got != int64(i%tiles) {
			t.Errorf("A[%d] = %d, want %d", i, got, i%tiles)
		}
	}
	// Every tile must have its own control-flow path with n/tiles iterations.
	for _, tt := range res.Trace.Tiles {
		bodies := 0
		for _, bb := range tt.BBPath {
			if bb == 2 {
				bodies++
			}
		}
		if bodies != n/tiles {
			t.Errorf("tile %d executed %d bodies, want %d", tt.Tile, bodies, n/tiles)
		}
	}
}

func TestAtomicAdd(t *testing.T) {
	src := `
func @kernel(%ctr: ptr, %iters: i64) {
entry:
  br %head
head:
  %i = phi i64 [0, %entry], [%i.next, %head]
  %old = atomicadd %ctr, 1
  %i.next = add %i, 1
  %c = icmp lt %i.next, %iters
  condbr %c, %head, %exit
exit:
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	ctr := mem.Alloc(8, 8)
	const tiles, iters = 4, 100
	res, err := Run(m.Func("kernel"), mem, []uint64{ctr, iters}, Options{NumTiles: tiles})
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.ReadI64(ctr); got != tiles*iters {
		t.Errorf("counter = %d, want %d", got, tiles*iters)
	}
	for _, tt := range res.Trace.Tiles {
		atomics := 0
		for _, ev := range tt.Mem {
			if ev.Kind == trace.KindAtomic {
				atomics++
			}
		}
		if atomics != iters {
			t.Errorf("tile %d atomics = %d, want %d", tt.Tile, atomics, iters)
		}
	}
}

func TestSendRecvPipeline(t *testing.T) {
	// Tile 0 produces squares, tile 1 consumes and accumulates: the shape of
	// a decoupled access/execute pair (§VII-A).
	src := `
func @kernel(%out: ptr, %n: i64) {
entry:
  %tid = call i64 tile_id()
  %isProd = icmp eq %tid, 0
  condbr %isProd, %prod.head, %cons.head
prod.head:
  %i = phi i64 [0, %entry], [%i.next, %prod.head]
  %sq = mul %i, %i
  call void send(1, %sq)
  %i.next = add %i, 1
  %pc = icmp lt %i.next, %n
  condbr %pc, %prod.head, %exit
cons.head:
  %j = phi i64 [0, %entry], [%j.next, %cons.head]
  %acc = phi i64 [0, %entry], [%acc.next, %cons.head]
  %v = call i64 recv(0)
  %acc.next = add %acc, %v
  %j.next = add %j, 1
  %cc = icmp lt %j.next, %n
  condbr %cc, %cons.head, %cons.done
cons.done:
  store %acc.next, %out
  br %exit
exit:
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	const n = 1000
	if _, err := Run(m.Func("kernel"), mem, []uint64{out, n}, Options{NumTiles: 2, Timeslice: 7}); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(0); i < n; i++ {
		want += i * i
	}
	if got := mem.ReadI64(out); got != want {
		t.Errorf("sum of squares = %d, want %d", got, want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	src := `
func @kernel() {
entry:
  %v = call i64 recv(0)
  ret
}
`
	m := ir.MustParse(src)
	_, err := Run(m.Func("kernel"), NewMemory(0), nil, Options{NumTiles: 1})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestMathIntrinsics(t *testing.T) {
	src := `
func @kernel(%out: ptr, %x: f64, %y: f64) {
entry:
  %s = call f64 sqrt(%x)
  %e = call f64 exp(%y)
  %mx = call f64 fmax(%s, %e)
  %p = call f64 pow(%x, 2.0)
  %t0 = gep %out, 0, 8
  store %s, %t0
  %t1 = gep %out, 1, 8
  store %e, %t1
  %t2 = gep %out, 2, 8
  store %mx, %t2
  %t3 = gep %out, 3, 8
  store %p, %t3
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	out := mem.Alloc(32, 8)
	x, y := 9.0, 1.5
	if _, err := Run(m.Func("kernel"), mem, []uint64{out, ArgF64(x), ArgF64(y)}, Options{}); err != nil {
		t.Fatal(err)
	}
	checks := []float64{math.Sqrt(x), math.Exp(y), math.Max(math.Sqrt(x), math.Exp(y)), math.Pow(x, 2)}
	for i, want := range checks {
		if got := mem.ReadF64(out + uint64(i)*8); got != want {
			t.Errorf("slot %d = %g, want %g", i, got, want)
		}
	}
}

func TestAcceleratorCallRecordedAndExecuted(t *testing.T) {
	src := `
func @kernel(%A: ptr, %n: i64) {
entry:
  call void acc_double(%A, %n)
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	pa := mem.AllocF64([]float64{1, 2, 3})
	opts := Options{Acc: map[string]AccFunc{
		"acc_double": func(mem *Memory, params []int64) {
			base := uint64(params[0])
			for i := int64(0); i < params[1]; i++ {
				addr := base + uint64(i)*8
				mem.WriteF64(addr, 2*mem.ReadF64(addr))
			}
		},
	}}
	res, err := Run(m.Func("kernel"), mem, []uint64{pa, 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 4, 6} {
		if got := mem.ReadF64(pa + uint64(i)*8); got != want {
			t.Errorf("A[%d] = %g, want %g", i, got, want)
		}
	}
	acc := res.Trace.Tiles[0].Acc
	if len(acc) != 1 || acc[0].Name != "acc_double" || acc[0].Params[1] != 3 {
		t.Errorf("acc trace = %+v", acc)
	}
}

func TestUnknownAcceleratorErrors(t *testing.T) {
	src := "func @kernel() {\nentry:\n  call void acc_missing()\n  ret\n}\n"
	m := ir.MustParse(src)
	_, err := Run(m.Func("kernel"), NewMemory(0), nil, Options{})
	if err == nil || !strings.Contains(err.Error(), "acc_missing") {
		t.Errorf("want unknown-accelerator error, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	src := "func @kernel(%a: i64, %b: i64) {\nentry:\n  %q = sdiv %a, %b\n  ret\n}\n"
	m := ir.MustParse(src)
	_, err := Run(m.Func("kernel"), NewMemory(0), []uint64{4, 0}, Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero error, got %v", err)
	}
}

func TestIntegerWidthSemantics(t *testing.T) {
	src := `
func @kernel(%out: ptr) {
entry:
  %big = add i32 2147483647, 1
  %w = cast sext i64, %big
  store %w, %out
  %sh = ashr i32 -8, 1
  %sh64 = cast sext i64, %sh
  %p1 = gep %out, 1, 8
  store %sh64, %p1
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	out := mem.Alloc(16, 8)
	if _, err := Run(m.Func("kernel"), mem, []uint64{out}, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.ReadI64(out); got != math.MinInt32 {
		t.Errorf("i32 overflow wrap = %d, want %d", got, math.MinInt32)
	}
	if got := mem.ReadI64(out + 8); got != -4 {
		t.Errorf("ashr -8 >> 1 = %d, want -4", got)
	}
}

func TestGlobalsPlacedAndUsable(t *testing.T) {
	src := `
module g
global @tbl i64 8

func @kernel(%out: ptr) {
entry:
  %p = gep @tbl, 3, 8
  store i64 77, %p
  %v = load i64, %p
  store %v, %out
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	if _, err := Run(m.Func("kernel"), mem, []uint64{out}, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.ReadI64(out); got != 77 {
		t.Errorf("global round trip = %d, want 77", got)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	src := "func @kernel() {\nentry:\n  br %entry\n}\n"
	// A single self-loop block: valid IR, infinite dynamically.
	m, err := ir.Parse(src)
	if err != nil {
		t.Skipf("self-loop rejected by verifier: %v", err)
	}
	_, err = Run(m.Func("kernel"), NewMemory(0), nil, Options{MaxSteps: 10000})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("want step-limit error, got %v", err)
	}
}

func TestMemoryBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	mem := NewMemory(8192)
	mem.ReadF64(0) // null page
}

func TestMemoryAllocAlignment(t *testing.T) {
	mem := NewMemory(1 << 16)
	a := mem.Alloc(10, 64)
	if a%64 != 0 {
		t.Errorf("alloc not 64-aligned: %d", a)
	}
	b := mem.Alloc(8, 8)
	if b < a+10 {
		t.Errorf("allocations overlap: %d after %d+10", b, a)
	}
}

func TestBarrierSynchronizesTiles(t *testing.T) {
	// Tile 0 writes a flag before the barrier; every tile must observe it
	// after the barrier regardless of scheduling.
	src := `
func @kernel(%flag: ptr, %out: ptr) {
entry:
  %tid = call i64 tile_id()
  %isz = icmp eq %tid, 0
  condbr %isz, %setter, %join
setter:
  store i64 99, %flag
  br %join
join:
  call void barrier()
  %v = load i64, %flag
  %p = gep %out, %tid, 8
  store %v, %p
  ret
}
`
	m := ir.MustParse(src)
	mem := NewMemory(1 << 20)
	flag := mem.Alloc(8, 8)
	out := mem.Alloc(8*8, 8)
	const tiles = 6
	// Tiny timeslice forces many context switches across the barrier.
	if _, err := Run(m.Func("kernel"), mem, []uint64{flag, out}, Options{NumTiles: tiles, Timeslice: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tiles; i++ {
		if got := mem.ReadI64(out + uint64(i)*8); got != 99 {
			t.Errorf("tile %d observed %d before barrier release, want 99", i, got)
		}
	}
}

func TestMismatchedBarriersDeadlock(t *testing.T) {
	// Tile 0 hits a barrier no one else reaches: the runner must detect the
	// deadlock rather than hang.
	src := `
func @kernel() {
entry:
  %tid = call i64 tile_id()
  %isz = icmp eq %tid, 0
  condbr %isz, %waiter, %exit
waiter:
  call void barrier()
  br %exit
exit:
  ret
}
`
	m := ir.MustParse(src)
	_, err := Run(m.Func("kernel"), NewMemory(0), nil, Options{NumTiles: 2})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
}

func TestProfileCounts(t *testing.T) {
	m := ir.MustParse(vecAddSrc)
	f := m.Func("kernel")
	mem := NewMemory(1 << 20)
	const n = 10
	pa := mem.AllocF64(make([]float64, n))
	pb := mem.AllocF64(make([]float64, n))
	pc := mem.Alloc(n*8, 64)
	res, err := Run(f, mem, []uint64{pa, pb, pc, n}, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 1 {
		t.Fatalf("counts for %d tiles", len(res.Counts))
	}
	counts := res.Counts[0]
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != res.Trace.Tiles[0].DynInstrs {
		t.Errorf("profile total %d != dynamic instructions %d", total, res.Trace.Tiles[0].DynInstrs)
	}
	// Every loop-body instruction executed exactly n times; entry br once.
	loop := f.BlockByName("loop")
	for _, in := range loop.Instrs {
		if counts[in.Idx] != n {
			t.Errorf("loop instr %d executed %d times, want %d", in.Idx, counts[in.Idx], n)
		}
	}
	if entryBr := f.Entry().Instrs[0]; counts[entryBr.Idx] != 1 {
		t.Errorf("entry br executed %d times, want 1", counts[entryBr.Idx])
	}
	// No profile unless requested.
	res2, err := Run(f, NewMemory(1<<20), []uint64{pa, pb, pc, n}, Options{})
	if err == nil && res2.Counts != nil {
		t.Error("profile collected without Options.Profile")
	}
}
