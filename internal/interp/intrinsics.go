package interp

import (
	"fmt"
	"math"
	"strings"

	"mosaicsim/internal/ir"
	"mosaicsim/internal/trace"
)

// IsAccCall reports whether an intrinsic name denotes an accelerator
// invocation (the paper's accelerator API, §II-B).
func IsAccCall(name string) bool { return strings.HasPrefix(name, "acc_") }

// call executes an intrinsic (recv is handled by the scheduler in step).
func (t *tileCtx) call(in *ir.Instr) error {
	switch in.Callee {
	case "tile_id":
		t.regs[in.ID] = uint64(t.id)
	case "num_tiles":
		t.regs[in.ID] = uint64(t.r.opts.NumTiles)
	case "send":
		dst := int(int64(t.val(in.Args[0])))
		if dst < 0 || dst >= t.r.opts.NumTiles {
			return fmt.Errorf("interp: send to invalid tile %d", dst)
		}
		key := [2]int{t.id, dst}
		t.r.queues[key] = append(t.r.queues[key], t.val(in.Args[1]))
		t.tt.Comm = append(t.tt.Comm, trace.CommEvent{Instr: int32(in.Idx), Partner: int32(dst)})
	case "sqrt":
		t.unaryMath(in, math.Sqrt)
	case "exp":
		t.unaryMath(in, math.Exp)
	case "log":
		t.unaryMath(in, math.Log)
	case "sin":
		t.unaryMath(in, math.Sin)
	case "cos":
		t.unaryMath(in, math.Cos)
	case "fabs":
		t.unaryMath(in, math.Abs)
	case "floor":
		t.unaryMath(in, math.Floor)
	case "pow":
		a := toFloat(t.val(in.Args[0]), in.Args[0].Type())
		b := toFloat(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = fromFloat(math.Pow(a, b), in.Ty)
	case "fmin":
		a := toFloat(t.val(in.Args[0]), in.Args[0].Type())
		b := toFloat(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = fromFloat(math.Min(a, b), in.Ty)
	case "fmax":
		a := toFloat(t.val(in.Args[0]), in.Args[0].Type())
		b := toFloat(t.val(in.Args[1]), in.Args[1].Type())
		t.regs[in.ID] = fromFloat(math.Max(a, b), in.Ty)
	default:
		if IsAccCall(in.Callee) {
			return t.accCall(in)
		}
		return fmt.Errorf("interp: unknown intrinsic %q", in.Callee)
	}
	return nil
}

func (t *tileCtx) unaryMath(in *ir.Instr, f func(float64) float64) {
	v := toFloat(t.val(in.Args[0]), in.Args[0].Type())
	t.regs[in.ID] = fromFloat(f(v), in.Ty)
}

// accCall records an accelerator invocation in the trace (the DTG "records
// the relevant parameters, e.g. matrix dimensions") and runs the functional
// implementation so memory reflects the accelerated computation.
func (t *tileCtx) accCall(in *ir.Instr) error {
	params := make([]int64, len(in.Args))
	for i, a := range in.Args {
		params[i] = int64(t.val(a))
	}
	t.tt.Acc = append(t.tt.Acc, trace.AccCall{Name: in.Callee, Params: params})
	impl, ok := t.r.opts.Acc[in.Callee]
	if !ok {
		return fmt.Errorf("interp: no functional implementation registered for accelerator %q", in.Callee)
	}
	impl(t.r.mem, params)
	return nil
}
