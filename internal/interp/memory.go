// Package interp is MosaicSim-Go's Dynamic Trace Generator: a functional
// interpreter for the IR that natively executes kernels over a byte-addressed
// memory image and records the control-flow path and memory-address traces
// the timing simulator replays (§II-A of the paper).
//
// SPMD execution follows the paper's model (§II-B): one kernel function runs
// on T tiles, each querying its tile ID and the tile count. Tiles execute
// cooperatively in a deterministic round-robin so inter-tile send/recv
// (e.g. Decoupled Access/Execute slices) make progress without data races.
package interp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"mosaicsim/internal/ir"
)

// Memory is the simulated flat, little-endian, byte-addressed memory image.
// Address 0 is kept unmapped so null pointers fault.
type Memory struct {
	data []byte
	brk  uint64
	hi   uint64 // one past the highest byte ever stored (bounds pooled-reuse zeroing)
}

// bufPool recycles image backing buffers across runs. Every buffer in the
// pool is entirely zero: Release clears the stored-to prefix before putting a
// buffer back, and bytes past a buffer's previous length were never written.
var bufPool sync.Pool

// NewMemory returns a memory image of the given size in bytes with the
// allocation pointer past a small null guard page. Images are recycled
// through an internal pool when callers Release them; a trace-generation
// harness that churns through large images otherwise spends a significant
// share of its time zeroing fresh allocations.
func NewMemory(size int64) *Memory {
	if size < 8192 {
		size = 8192
	}
	if v := bufPool.Get(); v != nil {
		if buf := v.([]byte); int64(cap(buf)) >= size {
			return &Memory{data: buf[:size], brk: 4096}
		}
		// Too small for this request: drop it and let the GC take it.
	}
	return &Memory{data: make([]byte, size), brk: 4096}
}

// Release returns the image's backing buffer to the pool after zeroing the
// written prefix, detaching it from the Memory (further accesses fault). Call
// it only once the image's contents are dead — traces record addresses, not
// data, so trace generators can release as soon as result checks pass.
func (m *Memory) Release() {
	if m.data == nil {
		return
	}
	clear(m.data[:m.hi])
	buf := m.data
	m.data = nil
	bufPool.Put(buf) //nolint:staticcheck // slice header boxing is two words, not the buffer
}

// Size returns the total size of the image in bytes.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// Alloc reserves size bytes aligned to align and returns the base address.
// It panics if the image is exhausted; sizing is a harness decision.
func (m *Memory) Alloc(size, align int64) uint64 {
	if align <= 0 {
		align = 8
	}
	a := (m.brk + uint64(align) - 1) &^ (uint64(align) - 1)
	if a+uint64(size) > uint64(len(m.data)) {
		panic(fmt.Sprintf("interp: out of simulated memory (want %d bytes at %d, have %d)", size, a, len(m.data)))
	}
	m.brk = a + uint64(size)
	return a
}

// AllocGlobal reserves storage for a module global, cacheline aligned.
func (m *Memory) AllocGlobal(g *ir.Global) uint64 { return m.Alloc(g.ByteSize(), 64) }

func (m *Memory) check(addr uint64, size int64) {
	if addr < 4096 || addr+uint64(size) > uint64(len(m.data)) {
		panic(fmt.Sprintf("interp: memory access out of bounds: addr=%#x size=%d", addr, size))
	}
}

// LoadScalar reads a value of type ty at addr, returning its raw 64-bit
// pattern (floats use the IEEE bit patterns of their width).
func (m *Memory) LoadScalar(addr uint64, ty ir.Type) uint64 {
	m.check(addr, ty.Size())
	switch ty.Size() {
	case 1:
		return uint64(m.data[addr])
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr:]))
	case 8:
		return binary.LittleEndian.Uint64(m.data[addr:])
	}
	panic("interp: load of void")
}

// StoreScalar writes the raw 64-bit pattern bits as a value of type ty.
func (m *Memory) StoreScalar(addr uint64, ty ir.Type, bits uint64) {
	m.check(addr, ty.Size())
	if end := addr + uint64(ty.Size()); end > m.hi {
		m.hi = end
	}
	switch ty.Size() {
	case 1:
		m.data[addr] = byte(bits)
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(bits))
	case 8:
		binary.LittleEndian.PutUint64(m.data[addr:], bits)
	default:
		panic("interp: store of void")
	}
}

// Typed convenience accessors used by harnesses, workload generators, and
// functional accelerator implementations.

// ReadF64 reads a float64 at addr.
func (m *Memory) ReadF64(addr uint64) float64 {
	return math.Float64frombits(m.LoadScalar(addr, ir.F64))
}

// WriteF64 writes a float64 at addr.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.StoreScalar(addr, ir.F64, math.Float64bits(v))
}

// ReadF32 reads a float32 at addr.
func (m *Memory) ReadF32(addr uint64) float32 {
	return math.Float32frombits(uint32(m.LoadScalar(addr, ir.F32)))
}

// WriteF32 writes a float32 at addr.
func (m *Memory) WriteF32(addr uint64, v float32) {
	m.StoreScalar(addr, ir.F32, uint64(math.Float32bits(v)))
}

// ReadI64 reads an int64 at addr.
func (m *Memory) ReadI64(addr uint64) int64 { return int64(m.LoadScalar(addr, ir.I64)) }

// WriteI64 writes an int64 at addr.
func (m *Memory) WriteI64(addr uint64, v int64) { m.StoreScalar(addr, ir.I64, uint64(v)) }

// ReadI32 reads an int32 at addr.
func (m *Memory) ReadI32(addr uint64) int32 { return int32(m.LoadScalar(addr, ir.I32)) }

// WriteI32 writes an int32 at addr.
func (m *Memory) WriteI32(addr uint64, v int32) {
	m.StoreScalar(addr, ir.I32, uint64(uint32(v)))
}

// ReadI8 reads a byte at addr.
func (m *Memory) ReadI8(addr uint64) int8 { return int8(m.LoadScalar(addr, ir.I8)) }

// WriteI8 writes a byte at addr.
func (m *Memory) WriteI8(addr uint64, v int8) { m.StoreScalar(addr, ir.I8, uint64(uint8(v))) }

// AllocF64 allocates and fills a float64 array, returning its base address.
func (m *Memory) AllocF64(vals []float64) uint64 {
	base := m.Alloc(int64(len(vals))*8, 64)
	for i, v := range vals {
		m.WriteF64(base+uint64(i)*8, v)
	}
	return base
}

// AllocF32 allocates and fills a float32 array, returning its base address.
func (m *Memory) AllocF32(vals []float32) uint64 {
	base := m.Alloc(int64(len(vals))*4, 64)
	for i, v := range vals {
		m.WriteF32(base+uint64(i)*4, v)
	}
	return base
}

// AllocI64 allocates and fills an int64 array, returning its base address.
func (m *Memory) AllocI64(vals []int64) uint64 {
	base := m.Alloc(int64(len(vals))*8, 64)
	for i, v := range vals {
		m.WriteI64(base+uint64(i)*8, v)
	}
	return base
}

// AllocI32 allocates and fills an int32 array, returning its base address.
func (m *Memory) AllocI32(vals []int32) uint64 {
	base := m.Alloc(int64(len(vals))*4, 64)
	for i, v := range vals {
		m.WriteI32(base+uint64(i)*4, v)
	}
	return base
}

// F64Slice copies n float64 values starting at addr.
func (m *Memory) F64Slice(addr uint64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.ReadF64(addr + uint64(i)*8)
	}
	return out
}

// F32Slice copies n float32 values starting at addr.
func (m *Memory) F32Slice(addr uint64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.ReadF32(addr + uint64(i)*4)
	}
	return out
}

// I64Slice copies n int64 values starting at addr.
func (m *Memory) I64Slice(addr uint64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.ReadI64(addr + uint64(i)*8)
	}
	return out
}

// I32Slice copies n int32 values starting at addr.
func (m *Memory) I32Slice(addr uint64, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = m.ReadI32(addr + uint64(i)*4)
	}
	return out
}
