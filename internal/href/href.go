// Package href is MosaicSim-Go's hardware-reference model: the stand-in for
// the paper's "real machine" measurements (the Intel Xeon E5-2667 v3 with
// VTune kernel filtering, Table I) used by the accuracy and scaling studies
// (Figs. 5-9).
//
// The reference model is an independently-parameterized execution model that
// reproduces the paper's stated source of simulator/hardware discrepancy:
// LLVM IR instructions do not map 1:1 onto machine instructions (§VI-A —
// "LLVM IR requires two instructions ... while the x86 ISA can perform this
// with one: MOV"). Concretely it:
//
//   - fuses address computation into memory operations (gep whose only uses
//     are memory addressing costs nothing, like an x86 addressing mode);
//   - treats phi nodes and value casts as register renaming (free);
//   - fuses compare-and-branch idioms (icmp used only by condbr);
//   - runs with a hardware-grade branch predictor (modeled as perfect) and
//     its own latency table.
//
// Accuracy factors are then MosaicSim cycles / reference cycles, exactly as
// the paper divides simulated by measured cycles.
package href

import (
	"context"

	"mosaicsim/internal/config"
	"mosaicsim/internal/core"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/trace"
)

// FreeMask computes, per static instruction, whether the reference ISA fuses
// it away: phis and casts (register renaming), geps used only as memory
// addresses (addressing modes), and compares used only by a branch
// (cmp+jcc).
func FreeMask(f *ir.Function) []bool {
	f.AssignIDs()
	mask := make([]bool, f.NumInstrs())
	// Collect use sites.
	type useInfo struct {
		onlyMemAddr bool
		onlyBranch  bool
		uses        int
	}
	info := make([]useInfo, f.NumInstrs())
	for i := range info {
		info[i] = useInfo{onlyMemAddr: true, onlyBranch: true}
	}
	note := func(v ir.Value, asMemAddr, asBranch bool) {
		d, ok := v.(*ir.Instr)
		if !ok {
			return
		}
		u := &info[d.Idx]
		u.uses++
		if !asMemAddr {
			u.onlyMemAddr = false
		}
		if !asBranch {
			u.onlyBranch = false
		}
	}
	for _, in := range f.Instrs() {
		addr := in.AddrOperand()
		for _, a := range in.Args {
			note(a, in.IsMemory() && a == addr, in.Op == ir.OpCondBr)
		}
	}
	for _, in := range f.Instrs() {
		switch in.Op {
		case ir.OpPhi, ir.OpCast:
			mask[in.Idx] = true
		case ir.OpGEP:
			if info[in.Idx].uses > 0 && info[in.Idx].onlyMemAddr {
				mask[in.Idx] = true
			}
		case ir.OpICmp, ir.OpFCmp:
			if info[in.Idx].uses > 0 && info[in.Idx].onlyBranch {
				mask[in.Idx] = true
			}
		}
	}
	return mask
}

// ReferenceCore returns the reference machine's core parameters: Table I
// clock, a deep out-of-order engine, hardware branch prediction, and the
// reference latency table (x86-like: slightly slower FP, faster special
// ops).
func ReferenceCore() config.CoreConfig {
	c := config.XeonLikeCore()
	c.Name = "href"
	c.Latencies = map[string]int64{
		"int_alu": 1, "int_mul": 3, "int_div": 21,
		"fp_alu": 4, "fp_mul": 5, "fp_div": 14,
		"branch": 1, "cast": 1, "special": 1,
	}
	return c
}

// System builds the reference machine for a traced kernel: n cores of the
// Table I system with idiom fusion enabled. Atomic RMWs pay the locked-
// operation cost plus cross-core contention that grows with the core count —
// the real-machine effect MosaicSim's early-stage memory system does not
// model (§VI-A), which is what makes BFS scaling diverge in Fig. 7.
func System(g *ddg.Graph, tr *trace.Trace, accels map[string]soc.AccelModel) (*soc.System, error) {
	ref := ReferenceCore()
	ref.AtomicExtraLatency = 25 + 20*int64(len(tr.Tiles)-1)
	cfg := &config.SystemConfig{
		Name:  "href",
		Cores: []config.CoreSpec{{Core: ref, Count: len(tr.Tiles)}},
		Mem:   config.TableIMem(),
	}
	sys, err := soc.NewSPMD(cfg, g, tr, accels)
	if err != nil {
		return nil, err
	}
	mask := FreeMask(g.Fn)
	for _, c := range sys.Cores {
		c.SetFreeInstrs(mask)
	}
	return sys, nil
}

// Measure runs the reference machine on a traced kernel and returns its
// "measured" cycle count. A nil ctx is treated as context.Background().
func Measure(g *ddg.Graph, tr *trace.Trace) (int64, error) {
	return MeasureCtx(context.Background(), g, tr)
}

// MeasureCtx is Measure under a context: cancelling ctx aborts the reference
// run mid-simulation.
func MeasureCtx(ctx context.Context, g *ddg.Graph, tr *trace.Trace) (int64, error) {
	sys, err := System(g, tr, nil)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(ctx, 0); err != nil {
		return 0, err
	}
	return sys.Cycles, nil
}

// MeasureTiles is Measure for heterogeneous per-tile kernels.
func MeasureTiles(tiles []soc.TileSpec) (int64, error) {
	ref := ReferenceCore()
	for i := range tiles {
		tiles[i].Cfg = ref
	}
	sys, err := soc.New("href", tiles, config.TableIMem(), nil)
	if err != nil {
		return 0, err
	}
	for i, c := range sys.Cores {
		c.SetFreeInstrs(FreeMask(tiles[i].Graph.Fn))
	}
	if err := sys.Run(context.Background(), 0); err != nil {
		return 0, err
	}
	return sys.Cycles, nil
}

// Ensure core's free-instruction hook stays exported as used here.
var _ = (*core.Core)(nil)
