package href

import (
	"context"
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

const streamSrc = `
void kernel(double* A, double* B, long n) {
  for (long i = 0; i < n; i++) {
    B[i] = A[i] * 1.5 + 2.0;
  }
}
`

func traced(t *testing.T, src string, n int) (*ddg.Graph, *trace.Trace) {
	t.Helper()
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	m := interp.NewMemory(1 << 22)
	pa := m.AllocF64(make([]float64, n))
	pb := m.Alloc(int64(n)*8, 64)
	res, err := interp.Run(f, m, []uint64{pa, pb, uint64(n)}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ddg.Build(f), res.Trace
}

func TestFreeMaskClassification(t *testing.T) {
	mod, err := cc.Compile(streamSrc, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	mask := FreeMask(f)
	var phiFree, gepFree, cmpFree, loadFree int
	for _, in := range f.Instrs() {
		if !mask[in.Idx] {
			continue
		}
		switch in.Op {
		case ir.OpPhi:
			phiFree++
		case ir.OpGEP:
			gepFree++
		case ir.OpICmp, ir.OpFCmp:
			cmpFree++
		case ir.OpLoad, ir.OpStore:
			loadFree++
		}
	}
	if phiFree == 0 {
		t.Error("phis must be free (register renaming)")
	}
	if gepFree == 0 {
		t.Error("address-only geps must be free (addressing modes)")
	}
	if cmpFree == 0 {
		t.Error("branch-only compares must be free (cmp+jcc fusion)")
	}
	if loadFree != 0 {
		t.Error("memory operations must never be free")
	}
}

func TestGEPWithNonMemoryUseNotFree(t *testing.T) {
	src := `
void kernel(long* A, long* out, long n) {
  long* p = A + n;
  out[0] = p > A ? 1 : 0;  // gep escapes into a comparison
  out[1] = *p;
}
`
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	mask := FreeMask(f)
	for _, in := range f.Instrs() {
		if in.Op != ir.OpGEP || !mask[in.Idx] {
			continue
		}
		// Any free gep must only feed memory addresses.
		for _, user := range f.Instrs() {
			addr := user.AddrOperand()
			for _, a := range user.Args {
				if a == ir.Value(in) && a != addr {
					t.Errorf("gep %%%s is free but used outside addressing", in.Ident)
				}
			}
		}
	}
}

func TestReferenceFasterThanMosaic(t *testing.T) {
	// The reference machine retires fewer effective instructions (fusion)
	// at a higher clock-independent rate, so for the same trace its cycle
	// count must be below a plain MosaicSim Xeon-config run.
	g, tr := traced(t, streamSrc, 2048)
	refCycles, err := Measure(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.XeonSystem(1)
	sim, err := soc.NewSPMD(cfg, g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if refCycles >= sim.Cycles {
		t.Errorf("reference (%d) should be faster than unfused simulation (%d)", refCycles, sim.Cycles)
	}
	// Accuracy factor must be in a plausible band (the paper's per-benchmark
	// factors range 0.16-3.29 with geomean 1.099).
	acc := float64(sim.Cycles) / float64(refCycles)
	if acc < 0.5 || acc > 4 {
		t.Errorf("accuracy factor %.2f outside plausible band", acc)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	g, tr := traced(t, streamSrc, 512)
	a, err := Measure(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("reference model nondeterministic: %d vs %d", a, b)
	}
}

func TestMeasureTiles(t *testing.T) {
	g, tr := traced(t, streamSrc, 512)
	cycles, err := MeasureTiles([]soc.TileSpec{{Graph: g, TT: tr.Tiles[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles measured")
	}
}

func TestReferenceAtomicsSublinearScaling(t *testing.T) {
	// A kernel dominated by atomics scales sublinearly on the reference
	// machine (locked-RMW contention grows with core count) — the Fig. 7
	// divergence mechanism.
	src := `
void kernel(long* ctr, long n) {
  long tid = tile_id();
  long nt = num_tiles();
  long per = n / nt;
  for (long i = 0; i < per; i++) {
    atomic_add(ctr + (i % 64), 1);
  }
}
`
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	cycles := map[int]int64{}
	for _, tiles := range []int{1, 8} {
		m := interp.NewMemory(1 << 22)
		ctr := m.AllocI64(make([]int64, 64))
		res, err := interp.Run(f, m, []uint64{ctr, 4096}, interp.Options{NumTiles: tiles})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Measure(ddg.Build(f), res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		cycles[tiles] = c
	}
	speedup := float64(cycles[1]) / float64(cycles[8])
	if speedup > 6.5 {
		t.Errorf("atomic-heavy reference scaling %.2fx too linear; contention must bite", speedup)
	}
	if speedup < 0.8 {
		t.Errorf("reference scaling %.2fx collapsed entirely", speedup)
	}
}

func TestFreeMaskFractionOverSuite(t *testing.T) {
	// Across the whole benchmark suite, the reference ISA fuses a
	// meaningful but bounded fraction of IR instructions — the mechanism
	// behind Fig. 5's accuracy noise.
	for _, w := range workloads.Parboil() {
		f, err := w.Kernel()
		if err != nil {
			t.Fatal(err)
		}
		mask := FreeMask(f)
		free := 0
		for _, b := range mask {
			if b {
				free++
			}
		}
		frac := float64(free) / float64(len(mask))
		if frac <= 0.05 || frac >= 0.7 {
			t.Errorf("%s: fused fraction %.2f outside plausible band", w.Name, frac)
		}
	}
}
