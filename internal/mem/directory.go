package mem

// Directory implements the coherence extension the paper sketches for future
// work (§V-A: "a directory protocol can easily be implemented by treating
// the Interleaver as the directory and allowing it to communicate with the
// caches"). It is an MSI-style full-map directory over the cores' private
// cache stacks: reads register sharers, writes/atomics invalidate remote
// copies (really removing the lines, so subsequent remote accesses miss)
// and pay an invalidation round-trip latency.
type Directory struct {
	InvCycles int64
	Stats     DirStats

	entries map[uint64]*dirEntry
}

// DirStats counts coherence events.
type DirStats struct {
	Lookups       int64
	Invalidations int64 // remote copies removed
	Upgrades      int64 // write hits on shared lines
	DirtyFetches  int64 // reads that had to pull a remote dirty line
}

type dirEntry struct {
	sharers    uint64 // bitmask over cores (≤64)
	dirtyOwner int    // core holding the line modified, or -1
}

// NewDirectory builds a directory with the given invalidation latency.
func NewDirectory(invCycles int64) *Directory {
	if invCycles <= 0 {
		invCycles = 30
	}
	return &Directory{InvCycles: invCycles, entries: map[uint64]*dirEntry{}}
}

// Access records one demand access and returns the coherence penalty in
// cycles plus the cores whose private copies must be invalidated.
func (d *Directory) Access(core int, line uint64, kind Kind) (penalty int64, invalidate []int) {
	d.Stats.Lookups++
	e := d.entries[line]
	if e == nil {
		e = &dirEntry{dirtyOwner: -1}
		d.entries[line] = e
	}
	me := uint64(1) << uint(core)
	switch kind {
	case Read:
		if e.dirtyOwner >= 0 && e.dirtyOwner != core {
			// Remote dirty copy: fetch through the directory; the owner
			// demotes (modeled as invalidation of the dirty copy).
			d.Stats.DirtyFetches++
			d.Stats.Invalidations++
			invalidate = append(invalidate, e.dirtyOwner)
			e.sharers &^= uint64(1) << uint(e.dirtyOwner)
			e.dirtyOwner = -1
			penalty = d.InvCycles
		}
		e.sharers |= me
	case Write, Atomic:
		others := e.sharers &^ me
		if others != 0 {
			d.Stats.Upgrades++
			penalty = d.InvCycles
			for c := 0; others != 0; c++ {
				if others&1 != 0 {
					d.Stats.Invalidations++
					invalidate = append(invalidate, c)
				}
				others >>= 1
			}
		}
		e.sharers = me
		e.dirtyOwner = core
	}
	return penalty, invalidate
}

// Invalidate removes a resident line from the cache (a directory recall),
// reporting whether the dropped copy was dirty.
func (c *Cache) Invalidate(line uint64) bool {
	cl := c.lookup(line)
	if cl == nil {
		return false
	}
	cl.valid = false
	dirty := cl.dirty
	cl.dirty = false
	return dirty
}
