package mem

import (
	"fmt"

	"mosaicsim/internal/config"
)

// CacheStats counts cache events for reporting and the energy model.
type CacheStats struct {
	Accesses        int64
	Hits            int64
	Misses          int64
	Coalesced       int64 // merged into an existing MSHR
	MSHRStalls      int64 // retried because all MSHRs were busy
	Evictions       int64
	Writebacks      int64
	PrefetchIssued  int64
	PrefetchUseful  int64 // demand hits on prefetched lines
	WritebackMisses int64 // writebacks passed through to the next level
}

// HitRate returns hits / (hits + misses) for demand accesses.
func (s *CacheStats) HitRate() float64 {
	d := s.Hits + s.Misses
	if d == 0 {
		return 0
	}
	return float64(s.Hits) / float64(d)
}

type cacheLine struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	lastUse    int64
}

// mshr tracks one outstanding line fill and its coalesced waiters.
type mshr struct {
	waiters []*Request
	dirty   bool // a write is waiting: line fills dirty
}

// Cache is one timing cache (§V-A): write-back, write-allocate, LRU,
// configurable size/line/associativity/latency, MSHR coalescing, and an
// optional stream prefetcher.
type Cache struct {
	Name  string
	cfg   config.CacheConfig
	next  Level
	sets  [][]cacheLine
	nsets uint64
	shift uint
	Stats CacheStats

	// inq orders pending requests by (ready, arrival seq) in a min-heap, so
	// an MSHR-stall retry due at now+1 is processed before entries with
	// larger ready times queued ahead of it. (A plain FIFO head-of-line
	// blocks such retries behind not-yet-due requests, inflating miss
	// latency, and its append/[1:] slicing made Tick O(n) under retries.)
	inq   reqHeap
	inseq int64
	mshrs map[uint64]*mshr

	// freeMshrs recycles MSHR entries (waiter slices keep their capacity).
	freeMshrs []*mshr
	// events counts observable state changes (see Level.Events).
	events int64

	// stream prefetcher state (§V-A): a small table of detected streams;
	// consecutive same-stride line accesses on any tracked stream trigger
	// prefetches of subsequent lines. Multiple entries let interleaved
	// streams (stencil rows, multi-plane lattices) all be detected.
	streams [prefetchStreams]streamEntry
	clock   int64

	inflight int // requests accepted but not yet completed/forwarded
}

// NewCache builds a cache in front of next.
func NewCache(cfg config.CacheConfig, next Level) *Cache {
	lines := cfg.SizeKB * 1024 / cfg.LineBytes
	nsets := lines / cfg.Assoc
	if nsets <= 0 || lines%cfg.Assoc != 0 {
		panic(fmt.Sprintf("mem: cache %q geometry invalid (%d lines, %d ways)", cfg.Name, lines, cfg.Assoc))
	}
	c := &Cache{
		Name:  cfg.Name,
		cfg:   cfg,
		next:  next,
		nsets: uint64(nsets),
		mshrs: map[uint64]*mshr{},
	}
	// One slab for all sets: pre-sized, contiguous, no per-set allocations.
	slab := make([]cacheLine, lines)
	c.sets = make([][]cacheLine, nsets)
	for s := 0; s < nsets; s++ {
		c.sets[s] = slab[s*cfg.Assoc : (s+1)*cfg.Assoc : (s+1)*cfg.Assoc]
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.shift++
	}
	return c
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.shift }
func (c *Cache) setOf(line uint64) uint64    { return line % c.nsets }

// Access implements Level.
func (c *Cache) Access(req *Request, now int64) {
	c.inflight++
	c.events++
	c.enqueue(req, now+c.cfg.LatencyCycles)
}

// Events implements Level.
func (c *Cache) Events() int64 { return c.events }

// NextEvent implements Level: the head of the pending heap bounds the next
// self-scheduled state change. (An MSHR-full retry is re-queued at now+1, so
// a stalled cache deliberately reports an adjacent horizon: the retry itself
// mutates the queue every cycle and must be simulated, not skipped.)
func (c *Cache) NextEvent(now int64) int64 {
	if len(c.inq) == 0 {
		return HorizonNone
	}
	if r := c.inq[0].ready; r > now {
		return r
	}
	return now + 1
}

// enqueue adds a request to the pending heap at its ready time.
func (c *Cache) enqueue(req *Request, ready int64) {
	c.inseq++
	c.inq.push(reqItem{ready: ready, seq: c.inseq, req: req})
}

// Busy implements Level.
func (c *Cache) Busy() bool { return c.inflight > 0 || len(c.mshrs) > 0 }

// Tick implements Level: processes up to PortsPerCycle due requests.
func (c *Cache) Tick(now int64) {
	ports := c.cfg.PortsPerCycle
	if ports <= 0 {
		ports = 1
	}
	processed := 0
	// Pop due requests in (ready, seq) order; retries re-enter the heap with
	// a future ready time so this terminates.
	for processed < ports && len(c.inq) > 0 {
		if c.inq[0].ready > now {
			break
		}
		it := c.inq.pop()
		c.process(it.req, now)
		processed++
	}
}

func (c *Cache) process(req *Request, now int64) {
	c.events++
	line := c.lineAddr(req.Addr)
	if req.Kind == Writeback {
		// Inclusive write-back from an upper level: update the copy if
		// present, otherwise pass through.
		if cl := c.lookup(line); cl != nil {
			cl.dirty = true
			cl.lastUse = now
			putRequest(req)
		} else {
			c.Stats.WritebackMisses++
			c.next.Access(req, now)
		}
		c.inflight--
		return
	}

	if req.Kind != Prefetch {
		c.Stats.Accesses++
	}
	if cl := c.lookup(line); cl != nil {
		// Hit.
		cl.lastUse = now
		if req.Kind == Write || req.Kind == Atomic {
			cl.dirty = true
		}
		if req.Kind == Prefetch {
			c.inflight--
			putRequest(req)
			return
		}
		c.Stats.Hits++
		if cl.prefetched {
			c.Stats.PrefetchUseful++
			cl.prefetched = false
		}
		c.complete(req, now)
		return
	}

	// Miss path.
	if m, pending := c.mshrs[line]; pending {
		if req.Kind == Prefetch {
			c.inflight--
			putRequest(req)
			return
		}
		// Secondary miss: coalesced onto the pending fill, counted apart
		// from primary misses.
		c.Stats.Coalesced++
		// The waiter stays in flight until the pending fill completes it.
		m.waiters = append(m.waiters, req)
		if req.Kind == Write || req.Kind == Atomic {
			m.dirty = true
		}
		return
	}
	if c.cfg.MSHRs > 0 && len(c.mshrs) >= c.cfg.MSHRs {
		if req.Kind == Prefetch {
			c.inflight--
			putRequest(req)
			return
		}
		// All MSHRs busy: retry next cycle.
		c.Stats.MSHRStalls++
		c.enqueue(req, now+1)
		return
	}

	m := c.allocMshr()
	wasPrefetch := req.Kind == Prefetch
	if !wasPrefetch {
		c.Stats.Misses++
		m.waiters = append(m.waiters, req)
		if req.Kind == Write || req.Kind == Atomic {
			m.dirty = true
		}
		c.maybePrefetch(line, now)
	}
	c.mshrs[line] = m
	fill := getRequest()
	fill.Addr = line << c.shift
	fill.Size = c.cfg.LineBytes
	fill.Kind = Read
	fill.Done = func(t int64) { c.fill(line, wasPrefetch, t) }
	c.next.Access(fill, now)
	if wasPrefetch {
		// The prefetch request dead-ends here; only the fill lives on.
		putRequest(req)
	}
}

// allocMshr pops a recycled MSHR entry or allocates a fresh one.
func (c *Cache) allocMshr() *mshr {
	if k := len(c.freeMshrs); k > 0 {
		m := c.freeMshrs[k-1]
		c.freeMshrs = c.freeMshrs[:k-1]
		return m
	}
	return &mshr{}
}

// lookup returns the resident line or nil.
func (c *Cache) lookup(line uint64) *cacheLine {
	set := c.sets[c.setOf(line)]
	tag := line / c.nsets
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// fill installs a line returned by the next level and wakes its waiters.
func (c *Cache) fill(line uint64, prefetched bool, now int64) {
	c.events++
	set := c.sets[c.setOf(line)]
	tag := line / c.nsets
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		oldest := set[0].lastUse
		victim = 0
		for i := range set {
			if set[i].lastUse < oldest {
				oldest = set[i].lastUse
				victim = i
			}
		}
		c.Stats.Evictions++
		if set[victim].dirty {
			c.Stats.Writebacks++
			wb := getRequest()
			wb.Addr = (set[victim].tag*c.nsets + c.setOf(line)) << c.shift
			wb.Size = c.cfg.LineBytes
			wb.Kind = Writeback
			c.next.Access(wb, now)
		}
	}
	m := c.mshrs[line]
	delete(c.mshrs, line)
	set[victim] = cacheLine{tag: tag, valid: true, dirty: m != nil && m.dirty, prefetched: prefetched, lastUse: now}
	if m != nil {
		for i, w := range m.waiters {
			c.complete(w, now)
			m.waiters[i] = nil
		}
		m.waiters = m.waiters[:0]
		m.dirty = false
		c.freeMshrs = append(c.freeMshrs, m)
	}
	if prefetched {
		c.inflight-- // the prefetch request itself
	}
}

func (c *Cache) complete(req *Request, now int64) {
	c.inflight--
	if req.Done != nil {
		req.Done(now)
	}
	putRequest(req)
}

const (
	prefetchStreams   = 8
	prefetchMaxStride = 8 // in lines; larger jumps are not streams
)

type streamEntry struct {
	valid   bool
	last    uint64
	stride  int64
	streak  int
	lastUse int64
}

// maybePrefetch runs the multi-stream detector on demand misses and issues
// prefetches for subsequent lines when a constant-stride chain is seen.
func (c *Cache) maybePrefetch(line uint64, now int64) {
	if c.cfg.PrefetchDegree <= 0 {
		return
	}
	c.clock++
	// Match the miss against a tracked stream.
	for i := range c.streams {
		s := &c.streams[i]
		if !s.valid {
			continue
		}
		stride := int64(line) - int64(s.last)
		if stride == 0 || stride > prefetchMaxStride || stride < -prefetchMaxStride {
			continue
		}
		if stride == s.stride {
			s.streak++
		} else {
			s.stride = stride
			s.streak = 1
		}
		s.last = line
		s.lastUse = c.clock
		if s.streak < 2 {
			return
		}
		for k := 1; k <= c.cfg.PrefetchDegree; k++ {
			target := int64(line) + stride*int64(k)
			if target < 0 {
				break
			}
			c.Stats.PrefetchIssued++
			c.inflight++
			pr := getRequest()
			pr.Addr = uint64(target) << c.shift
			pr.Size = c.cfg.LineBytes
			pr.Kind = Prefetch
			c.enqueue(pr, now+c.cfg.LatencyCycles)
		}
		return
	}
	// No stream matched: allocate the LRU entry.
	victim := 0
	for i := range c.streams {
		if !c.streams[i].valid {
			victim = i
			break
		}
		if c.streams[i].lastUse < c.streams[victim].lastUse {
			victim = i
		}
	}
	c.streams[victim] = streamEntry{valid: true, last: line, lastUse: c.clock}
}
